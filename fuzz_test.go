// Fuzz targets feeding decoded byte streams through the identical
// invariant suite the conformance harness runs (internal/conformance
// CheckInstance): certificate feasibility, the Observation 2.1 lower
// bound, the registered guarantee against the exact oracle, and the
// metamorphic invariants. A crash or violation found here is therefore a
// real algorithm bug, not a harness artifact, and the failing instance
// prints as a reproducible Go literal.
//
// Run the smoke suite (seeds only) with `go test`, or fuzz with:
//
//	go test -fuzz FuzzMinBusy -fuzztime 30s -run '^$' .
//	go test -fuzz FuzzOnlineReplay -fuzztime 30s -run '^$' .
//
// The committed corpus under testdata/fuzz seeds each target with the
// shrunk shapes past violations reduce to (identical-job pairs for the
// duplication law, nested containment for class dispatch, the blocker
// stream that drives online FirstFit to its Ω(g) bound).
package busytime_test

import (
	"context"
	"errors"
	"testing"

	"repro/internal/conformance"
	"repro/internal/job"
	"repro/internal/registry"
)

// fuzzMaxJobs caps decoded instances so the exponential oracles in the
// invariant suite — which also run on the doubled duplication variant —
// stay in the microsecond range per execution.
const fuzzMaxJobs = 6

// decodeInstance turns an arbitrary byte stream into a small valid
// instance: byte 0 picks g in 1..4, then every 3-byte group encodes one
// job (start in 0..127, length in 1..48, weight in 1..7). It returns
// false when the stream encodes no jobs.
func decodeInstance(data []byte) (job.Instance, bool) {
	if len(data) < 4 {
		return job.Instance{}, false
	}
	in := job.Instance{G: 1 + int(data[0]%4)}
	for i := 1; i+2 < len(data) && len(in.Jobs) < fuzzMaxJobs; i += 3 {
		start := int64(data[i] % 128)
		length := 1 + int64(data[i+1]%48)
		j := job.New(len(in.Jobs), start, start+length)
		j.Weight = 1 + int64(data[i+2]%7)
		in.Jobs = append(in.Jobs, j)
	}
	if len(in.Jobs) == 0 {
		return job.Instance{}, false
	}
	return in, true
}

// fuzzSeeds are the shared seed streams: an identical-job pair (the
// duplication-law minimum), nested containment (exercises class
// dispatch and rejection paths), a miniature blocker-then-long stream
// (the Ω(g) online shape), a single job, and a g-only stream.
func fuzzSeeds(f *testing.F) {
	f.Add([]byte("\x01\x00\x10\x01\x00\x10\x01"))
	f.Add([]byte("\x02\x00\x30\x01\x08\x08\x01"))
	f.Add([]byte("\x02\x00\x02\x01\x00\x02\x01\x01\x1e\x01"))
	f.Add([]byte("\x00\x7f\x30\x07"))
	f.Add([]byte("\x03\x01\x01"))
}

// runInvariantSuite feeds the instance through every registered
// algorithm of the given kinds. Rejections (an algorithm declining an
// out-of-scope instance) are expected; any violation fails with the
// reproducible literal.
func runInvariantSuite(t *testing.T, in job.Instance, kinds ...registry.Kind) {
	t.Helper()
	ctx := context.Background()
	for _, alg := range registry.List() {
		match := false
		for _, k := range kinds {
			match = match || alg.Kind == k
		}
		if !match {
			continue
		}
		if err := conformance.CheckInstance(ctx, alg, in); err != nil && !errors.Is(err, conformance.ErrRejected) {
			t.Fatalf("%s: %v\nreproduce with:\n%s", alg.Name, err, conformance.GoLiteral(in))
		}
	}
}

// FuzzMinBusy fuzzes every registered offline 1-D algorithm (MinBusy and
// MaxThroughput kinds) through the conformance invariant suite.
func FuzzMinBusy(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		in, ok := decodeInstance(data)
		if !ok {
			return
		}
		runInvariantSuite(t, in, registry.MinBusy, registry.MaxThroughput)
	})
}

// FuzzOnlineReplay fuzzes every registered online strategy: the decoded
// stream is replayed in arrival order through Solver.Solve and checked
// against the same invariants, including the online run statistics the
// certificate verifies.
func FuzzOnlineReplay(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		in, ok := decodeInstance(data)
		if !ok {
			return
		}
		runInvariantSuite(t, in, registry.Online)
	})
}
