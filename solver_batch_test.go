package busytime_test

import (
	"context"
	"errors"
	"testing"
	"time"

	busytime "repro"
)

// batchWorkload builds n distinguishable proper instances so order
// stability is observable through Result.N.
func batchWorkload(n int) []busytime.Request {
	reqs := make([]busytime.Request, n)
	for i := range reqs {
		in := busytime.GenerateProper(int64(i+1), busytime.WorkloadConfig{
			N: 10 + i, G: 3, MaxTime: 400, MaxLen: 60,
		})
		reqs[i] = busytime.Request{Instance: in}
	}
	return reqs
}

func TestSolveBatchEmpty(t *testing.T) {
	res, err := busytime.NewSolver().SolveBatch(context.Background(), nil)
	if err != nil {
		t.Fatalf("empty batch errored: %v", err)
	}
	if len(res) != 0 {
		t.Fatalf("empty batch returned %d results", len(res))
	}
}

func TestSolveBatchMatchesSolveOrderStable(t *testing.T) {
	reqs := batchWorkload(16)
	solver := busytime.NewSolver(busytime.WithParallelism(4))
	ctx := context.Background()
	batch, err := solver.SolveBatch(ctx, reqs)
	if err != nil {
		t.Fatalf("SolveBatch: %v", err)
	}
	if len(batch) != len(reqs) {
		t.Fatalf("got %d results for %d requests", len(batch), len(reqs))
	}
	for i, res := range batch {
		if res.Err != nil {
			t.Fatalf("request %d failed: %v", i, res.Err)
		}
		if res.N != len(reqs[i].Instance.Jobs) {
			t.Fatalf("request %d: result N = %d, want %d (order not stable)", i, res.N, len(reqs[i].Instance.Jobs))
		}
		single, serr := solver.Solve(ctx, reqs[i])
		if serr != nil {
			t.Fatalf("Solve(%d): %v", i, serr)
		}
		if res.Cost != single.Cost || res.Algorithm != single.Algorithm {
			t.Fatalf("request %d: batch (%s, %d) != single (%s, %d)",
				i, res.Algorithm, res.Cost, single.Algorithm, single.Cost)
		}
		if cerr := res.Certificate(); cerr != nil {
			t.Fatalf("request %d: certificate: %v", i, cerr)
		}
	}
}

func TestSolveBatchMixedKinds(t *testing.T) {
	in := busytime.GenerateProper(7, busytime.WorkloadConfig{N: 12, G: 3, MaxTime: 300, MaxLen: 50})
	clique := busytime.GenerateClique(8, busytime.WorkloadConfig{N: 10, G: 2, MaxTime: 300, MaxLen: 50})
	rin := busytime.RectInstance{G: 2}
	for i := 0; i < 5; i++ {
		s := int64(i * 3)
		rin.Jobs = append(rin.Jobs, busytime.RectJob{ID: i, Rect: busytime.Rect{
			D1: busytime.Interval{Start: s, End: s + 4},
			D2: busytime.Interval{Start: 0, End: 2},
		}})
	}
	reqs := []busytime.Request{
		{Instance: in},
		{Instance: clique, Kind: busytime.KindMaxThroughput, Budget: clique.TotalLen()},
		{Instance: in, Kind: busytime.KindOnline},
		{Rect: &rin},
	}
	results, err := busytime.NewSolver(busytime.WithParallelism(2)).SolveBatch(context.Background(), reqs)
	if err != nil {
		t.Fatalf("SolveBatch: %v", err)
	}
	wantKinds := []busytime.ProblemKind{
		busytime.KindMinBusy, busytime.KindMaxThroughput, busytime.KindOnline, busytime.KindMinBusy2D,
	}
	for i, res := range results {
		if res.Err != nil {
			t.Fatalf("request %d (%s) failed: %v", i, wantKinds[i], res.Err)
		}
		if res.Kind != wantKinds[i] {
			t.Fatalf("request %d: kind %s, want %s", i, res.Kind, wantKinds[i])
		}
		if cerr := res.Certificate(); cerr != nil {
			t.Fatalf("request %d (%s): certificate: %v", i, res.Kind, cerr)
		}
	}
	if results[3].Rect == nil {
		t.Fatal("2-D request returned no rect schedule")
	}
}

func TestSolveBatchMalformedRequestDoesNotPoisonBatch(t *testing.T) {
	reqs := batchWorkload(6)
	bad := busytime.Instance{G: 0, Jobs: reqs[0].Instance.Jobs} // invalid capacity
	reqs[3] = busytime.Request{Instance: bad}
	results, err := busytime.NewSolver(busytime.WithParallelism(3)).SolveBatch(context.Background(), reqs)
	if err != nil {
		t.Fatalf("SolveBatch: %v", err)
	}
	for i, res := range results {
		if i == 3 {
			if res.Err == nil {
				t.Fatal("malformed request 3 reported no error")
			}
			continue
		}
		if res.Err != nil {
			t.Fatalf("healthy request %d poisoned: %v", i, res.Err)
		}
		if cerr := res.Certificate(); cerr != nil {
			t.Fatalf("request %d: certificate: %v", i, cerr)
		}
	}
}

func TestSolveBatchPreCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	results, err := busytime.NewSolver().SolveBatch(ctx, batchWorkload(4))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("batch error = %v, want context.Canceled", err)
	}
	if len(results) != 4 {
		t.Fatalf("got %d results, want 4 (order-stable even on cancellation)", len(results))
	}
	for i, res := range results {
		if !errors.Is(res.Err, context.Canceled) {
			t.Fatalf("request %d: Err = %v, want context.Canceled", i, res.Err)
		}
	}
}

// TestSolveBatchCancellationMidBatch interrupts a sequential batch whose
// first request is a multi-hundred-millisecond exact solve. The deadline
// fires inside that solve; the batch must return promptly with the
// context error on the interrupted and the never-started requests.
func TestSolveBatchCancellationMidBatch(t *testing.T) {
	slow := busytime.GenerateGeneral(3, busytime.WorkloadConfig{N: 17, G: 3, MaxTime: 500, MaxLen: 80})
	reqs := []busytime.Request{{Instance: slow}}
	reqs = append(reqs, batchWorkload(3)...)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	results, err := busytime.NewSolver(
		busytime.WithExactThreshold(18), busytime.WithParallelism(1),
	).SolveBatch(ctx, reqs)
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation not honored: batch ran %v", elapsed)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("batch error = %v, want context.DeadlineExceeded", err)
	}
	if !errors.Is(results[0].Err, context.DeadlineExceeded) {
		t.Fatalf("interrupted request Err = %v, want context.DeadlineExceeded", results[0].Err)
	}
}

// TestSolveBatchPerRequestTimeout gives one slow request its own tiny
// deadline: it must fail alone while its siblings and the batch succeed.
func TestSolveBatchPerRequestTimeout(t *testing.T) {
	slow := busytime.GenerateGeneral(3, busytime.WorkloadConfig{N: 17, G: 3, MaxTime: 500, MaxLen: 80})
	reqs := batchWorkload(3)
	reqs = append(reqs, busytime.Request{Instance: slow, Timeout: time.Millisecond})

	results, err := busytime.NewSolver(
		busytime.WithExactThreshold(18), busytime.WithParallelism(2),
	).SolveBatch(context.Background(), reqs)
	if err != nil {
		t.Fatalf("SolveBatch: %v", err)
	}
	for i := 0; i < 3; i++ {
		// The healthy siblings are small enough for the exact threshold
		// too, but carry no deadline and must succeed.
		if results[i].Err != nil {
			t.Fatalf("request %d failed: %v", i, results[i].Err)
		}
	}
	if !errors.Is(results[3].Err, context.DeadlineExceeded) {
		t.Fatalf("deadline request Err = %v, want context.DeadlineExceeded", results[3].Err)
	}
}

// TestSolveBatchExpiredTimeoutFailsFast pins the queueing semantics of
// Request.Timeout: the deadline is anchored when the batch is submitted,
// so a request whose budget has already drained while it waited behind a
// slow sibling on a 1-worker pool fails fast with DeadlineExceeded
// instead of occupying the pool slot with a doomed solve.
func TestSolveBatchExpiredTimeoutFailsFast(t *testing.T) {
	// First request: an oracle-sized exact solve that holds the single
	// worker well past the second request's 1 ns budget.
	slow := busytime.GenerateGeneral(3, busytime.WorkloadConfig{N: 17, G: 3, MaxTime: 500, MaxLen: 80})
	quick := busytime.GenerateProper(1, busytime.WorkloadConfig{N: 8, G: 2, MaxTime: 100, MaxLen: 20})
	reqs := []busytime.Request{
		{Instance: slow},
		{Instance: quick, Timeout: time.Nanosecond},
	}
	start := time.Now()
	results, err := busytime.NewSolver(
		busytime.WithExactThreshold(18), busytime.WithParallelism(1),
	).SolveBatch(context.Background(), reqs)
	if err != nil {
		t.Fatalf("SolveBatch: %v", err)
	}
	if results[0].Err != nil {
		t.Fatalf("slow request failed: %v", results[0].Err)
	}
	if !errors.Is(results[1].Err, context.DeadlineExceeded) {
		t.Fatalf("expired request Err = %v, want context.DeadlineExceeded", results[1].Err)
	}
	if results[1].Scheduled != 0 || results[1].Algorithm != "" {
		t.Errorf("expired request carries solve output: %+v", results[1])
	}
	// The second request must not have added its own solve time on top of
	// the first one's: the batch ends essentially when the slow solve
	// does. A loose sanity ceiling keeps this robust on slow CI.
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Errorf("batch took %v; expired request did not fail fast", elapsed)
	}
}
