package busytime_test

import (
	"context"
	"testing"

	busytime "repro"
	"repro/internal/trace"
)

// traceBenchInstance is the n=1000 instance the tracing-overhead pair
// solves — the same shape as the reoptimization benchmarks.
func traceBenchInstance() busytime.Instance {
	return busytime.GenerateGeneral(1, busytime.WorkloadConfig{N: 1000, G: 4, MaxTime: 8000, MaxLen: 120})
}

// BenchmarkSolve is the untraced baseline of the tracing-overhead pair.
// CI runs it next to BenchmarkSolveTraced and fails the build if the
// traced path costs more than 5% over this one: the span tree is a
// handful of allocations per solve, and it must stay that way.
func BenchmarkSolve(b *testing.B) {
	in := traceBenchInstance()
	solver := busytime.NewSolver()
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := solver.Solve(ctx, busytime.Request{Instance: in})
		if err != nil {
			b.Fatal(err)
		}
		if res.Trace != nil {
			b.Fatal("untraced solve recorded a trace")
		}
	}
}

// BenchmarkSolveTraced solves the identical instance on a
// trace-enabled context — the always-on configuration busyd serves
// every request with.
func BenchmarkSolveTraced(b *testing.B) {
	in := traceBenchInstance()
	solver := busytime.NewSolver()
	ctx := trace.Enable(context.Background())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := solver.Solve(ctx, busytime.Request{Instance: in})
		if err != nil {
			b.Fatal(err)
		}
		if res.Trace == nil {
			b.Fatal("traced solve recorded no trace")
		}
	}
}
