// Package busytime is a library for interval scheduling on parallel
// machines with bounded parallelism, minimizing total machine busy time or
// maximizing throughput under a busy-time budget.
//
// It reproduces the algorithms of Mertzios, Shalom, Voloshin, Wong and
// Zaks, "Optimizing Busy Time on Parallel Machines" (IEEE IPDPS 2012;
// Theoretical Computer Science 562, 2015):
//
//   - MinBusy: schedule all jobs on capacity-g machines minimizing the sum
//     of machine busy times. Exact polynomial algorithms for one-sided
//     cliques, proper cliques, and cliques with g = 2; a (2−1/g)-
//     approximation for proper instances; a g·H_g/(H_g+g−1)-approximation
//     for cliques; FirstFit baselines for everything else.
//   - MaxThroughput: schedule a maximum subset of jobs within busy-time
//     budget T. Exact algorithms for one-sided cliques and proper cliques
//     (including a weighted variant), a 4-approximation for cliques.
//   - Two-dimensional jobs (time × day rectangles): FirstFit2D and
//     BucketFirstFit with the paper's logarithmic guarantee.
//   - Online scheduling (beyond-paper): jobs arrive over time and are
//     committed irrevocably; strategies OnlineNaive, OnlineFirstFit and
//     OnlineBuckets replay rigid or flexible-window streams and report
//     empirical competitive ratios against the offline algorithms.
//
// The package is a facade over internal implementation packages; all
// functionality is reachable from here. The primary entry point is the
// Solver: a Request names an instance and a problem kind, Solve is
// context-cancellable, and the structured Result carries the schedule,
// the algorithm used, the detected class, cost and machine statistics,
// the Observation 2.1 lower bound with the achieved ratio, and a
// Certificate() feasibility check. Quick start:
//
//	in := busytime.NewInstance(2, [2]int64{0, 10}, [2]int64{5, 15})
//	res, err := busytime.NewSolver().Solve(context.Background(),
//		busytime.Request{Instance: in})
//	fmt.Println(res.Algorithm, res.Cost, res.Certificate())
//
// Every algorithm is registered in a central registry (Algorithms,
// LookupAlgorithm, AlgorithmFor) with its name, problem kind, applicable
// instance classes and approximation guarantee; auto dispatch and the
// CLI -algo flags resolve through it. The top-level helpers below
// (MinBusy, MaxThroughput, and the named algorithm variables) predate
// the Solver and remain as thin wrappers.
package busytime

import (
	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/igraph"
	"repro/internal/interval"
	"repro/internal/job"
	"repro/internal/localsearch"
	"repro/internal/online"
	"repro/internal/rect"
	"repro/internal/reopt"
	"repro/internal/workload"
)

// Core model types, aliased from the internal packages so values flow
// freely between the facade and internal APIs.
type (
	// Interval is a half-open time interval [Start, End) on int64 ticks.
	Interval = interval.Interval
	// Job is an interval job with optional Weight and Demand extensions.
	Job = job.Job
	// Instance is a MinBusy input (J, g).
	Instance = job.Instance
	// Schedule is a (possibly partial) job-to-machine assignment.
	Schedule = core.Schedule
	// Rect is an axis-aligned rectangle, the 2-D job shape of Section 3.4.
	Rect = rect.Rect
	// RectJob is a two-dimensional job.
	RectJob = job.RectJob
	// RectInstance is a 2-D MinBusy input.
	RectInstance = job.RectInstance
	// RectSchedule is a 2-D schedule.
	RectSchedule = core.RectSchedule
	// Class is the detected instance class used for dispatch.
	Class = igraph.Class
)

// Instance classes, from most general to most structured.
const (
	ClassGeneral        = igraph.General
	ClassProper         = igraph.Proper
	ClassClique         = igraph.Clique
	ClassProperClique   = igraph.ProperClique
	ClassOneSidedClique = igraph.OneSidedClique
)

// Unscheduled marks a job left out of a partial schedule.
const Unscheduled = core.Unscheduled

// NewJob returns a unit-weight, unit-demand job over [start, end).
func NewJob(id int, start, end int64) Job { return job.New(id, start, end) }

// NewInstance builds an instance from (start, end) pairs with capacity g.
func NewInstance(g int, spans ...[2]int64) Instance { return job.NewInstance(g, spans...) }

// Classify returns the most specific instance class of the job set.
func Classify(jobs []Job) Class { return igraph.Classify(jobs) }

// MinBusy schedules all jobs with the strongest algorithm applicable to
// the instance's class and returns the schedule and the algorithm name.
//
// Deprecated: use NewSolver().Solve with a KindMinBusy Request, which
// adds context cancellation and a structured Result. MinBusy remains for
// existing callers and dispatches identically.
func MinBusy(in Instance) (Schedule, string) { return core.MinBusyAuto(in) }

// MaxThroughput schedules a maximum subset of jobs within the busy-time
// budget using the strongest applicable algorithm, returning the schedule
// and algorithm name.
//
// Deprecated: use NewSolver().Solve with a KindMaxThroughput Request.
func MaxThroughput(in Instance, budget int64) (Schedule, string) {
	return core.ThroughputAuto(in, budget)
}

// Named MinBusy algorithms (see the paper references on each).
var (
	// NaivePerJob assigns each job its own machine (Prop 2.1 baseline).
	NaivePerJob = core.NaivePerJob
	// FirstFit is the 4-approximation baseline of [13].
	FirstFit = core.FirstFit
	// FirstFitFast is FirstFit with interval-treap threads: identical
	// assignments, O(log n) overlap checks.
	FirstFitFast = core.FirstFitFast
	// OneSidedGreedy solves one-sided cliques exactly (Observation 3.1).
	OneSidedGreedy = core.OneSidedGreedy
	// CliqueMatching solves cliques with g = 2 exactly (Lemma 3.1).
	CliqueMatching = core.CliqueMatching
	// CliqueSetCover approximates cliques within g·H_g/(H_g+g−1) (Lemma 3.2).
	CliqueSetCover = core.CliqueSetCover
	// BestCut is the (2−1/g)-approximation for proper instances (Thm 3.1).
	BestCut = core.BestCut
	// FindBestConsecutive solves proper cliques exactly (Theorem 3.2).
	FindBestConsecutive = core.FindBestConsecutive
)

// Named MaxThroughput algorithms.
var (
	// OneSidedThroughput solves one-sided cliques exactly (Prop 4.1).
	OneSidedThroughput = core.OneSidedThroughput
	// CliqueThroughput is the 4-approximation for cliques (Theorem 4.1).
	CliqueThroughput = core.CliqueThroughput
	// MostThroughputConsecutive solves proper cliques exactly (Thm 4.2).
	MostThroughputConsecutive = core.MostThroughputConsecutive
	// MostWeightConsecutive is the weighted extension (Section 5).
	MostWeightConsecutive = core.MostWeightConsecutive
	// OneSidedWeightThroughput is the weighted extension on one-sided
	// cliques (Section 5).
	OneSidedWeightThroughput = core.OneSidedWeightThroughput
	// GreedyThroughput is the general-instance heuristic fallback.
	GreedyThroughput = core.GreedyThroughput
	// MinBusyViaThroughput is the Proposition 2.2 reduction.
	MinBusyViaThroughput = core.MinBusyViaThroughput
)

// Two-dimensional algorithms (Section 3.4).
var (
	// FirstFit2D is Algorithm 3 (ratio between 6γ₁+3 and 6γ₁+4, Lemma 3.5).
	FirstFit2D = core.FirstFit2D
	// BucketFirstFit is Algorithm 4 with explicit bucket base β.
	BucketFirstFit = core.BucketFirstFit
	// BucketFirstFitAuto normalizes γ₁ ≤ γ₂ and uses the paper's β = 3.3.
	BucketFirstFitAuto = core.BucketFirstFitAuto
	// NaivePerJob2D is the per-job baseline in two dimensions.
	NaivePerJob2D = core.NaivePerJob2D
)

// Exact exponential-time oracles for small instances (n ≤ 18), used to
// measure approximation quality.
var (
	// ExactMinBusy computes an optimal total schedule.
	ExactMinBusy = exact.MinBusy
	// ExactMaxThroughput computes an optimal budgeted partial schedule.
	ExactMaxThroughput = exact.MaxThroughput
	// ExactMaxWeightThroughput is the weighted oracle.
	ExactMaxWeightThroughput = exact.MaxWeightThroughput
)

// Post-optimization.
var (
	// ImproveSchedule hill-climbs a valid schedule to a local optimum of
	// no greater cost (beyond-paper addition, experiment E15).
	ImproveSchedule = localsearch.Improve
)

// Reoptimization (beyond paper, after "Optimization and Reoptimization
// in Scheduling Problems", arXiv 1509.01630; enabled per Solver with
// WithReoptimization).
var (
	// FingerprintInstance returns the canonical-form fingerprint of an
	// instance: two instances share it exactly when they agree up to job
	// order, job IDs and a uniform time translation — the metamorphic
	// equivalence classes of the conformance harness.
	FingerprintInstance = reopt.Fingerprint
)

// Online scheduling (beyond-paper extension, after Shalom et al., "Online
// optimization of busy time on parallel machines", and Albers & van der
// Heijden, arXiv:2405.08595): jobs arrive over time and are committed to
// machines irrevocably, with busy time accruing as machines open and
// close.
type (
	// OnlineStrategy is an online placement policy fed by ReplayOnline.
	OnlineStrategy = online.Strategy
	// OnlineResult is a replayed run: committed schedule plus statistics.
	OnlineResult = online.Result
	// OnlineReport measures a strategy against the offline baselines.
	OnlineReport = online.Report
	// OnlineMachine is one open machine's state, visible to strategies.
	OnlineMachine = online.Machine
	// OnlineBudgetSetter is implemented by admission-control strategies
	// that accept a busy-time budget before the first arrival.
	OnlineBudgetSetter = online.BudgetSetter
	// OnlineSession is an incremental online run fed one arrival at a
	// time — the state behind busyd's POST /v1/stream endpoint.
	OnlineSession = online.Session
	// OnlineEvent is one streamed arrival's placement with live telemetry.
	OnlineEvent = online.Event
	// OnlineSummary is a session's closing competitive-ratio report.
	OnlineSummary = online.Summary
	// OnlineRatioTracker maintains cost, Observation 2.1 bound and their
	// ratio incrementally per admitted arrival.
	OnlineRatioTracker = online.RatioTracker
	// FlexJob is a flexible job scheduled anywhere inside its window.
	FlexJob = online.FlexJob
	// StartPolicy commits a flexible job's start time at its release.
	StartPolicy = online.StartPolicy
)

var (
	// OnlineNaive opens one machine per arrival (g-competitive baseline).
	OnlineNaive = online.Naive
	// OnlineFirstFit places each arrival on the first open machine it fits.
	OnlineFirstFit = online.FirstFit
	// OnlineBuckets runs FirstFit within doubling length classes.
	OnlineBuckets = online.Buckets
	// OnlineBestFit places each arrival where it adds the least busy time.
	OnlineBestFit = online.BestFit
	// OnlineBudgeted wraps BestFit with weighted budget admission control.
	OnlineBudgeted = online.Budgeted
	// NewOnlineSession starts an incremental session for a strategy.
	NewOnlineSession = online.NewSession
	// NewOnlineRatioTracker starts an incremental ratio tracker.
	NewOnlineRatioTracker = online.NewRatioTracker
	// ReplayOnline feeds an instance through a strategy in arrival order.
	ReplayOnline = online.Replay
	// ReplayFlexible replays flexible jobs under a start policy.
	ReplayFlexible = online.FlexReplay
	// CompareOnline reports empirical competitive ratios per strategy.
	CompareOnline = online.Compare
	// NewFlexJob builds a flexible job with a [release, deadline) window.
	NewFlexJob = online.NewFlexJob
	// StartASAP commits every flexible job at its release time.
	StartASAP = online.StartASAP
	// StartAligned delays a flexible job into an open busy period.
	StartAligned = online.StartAligned
)

// Workload generation, re-exported for examples and downstream benchmarks.
type WorkloadConfig = workload.Config

var (
	// GenerateGeneral returns an unconstrained random instance.
	GenerateGeneral = workload.General
	// GenerateClique returns a random clique instance.
	GenerateClique = workload.Clique
	// GenerateProper returns a random proper instance.
	GenerateProper = workload.Proper
	// GenerateProperClique returns a random proper clique instance.
	GenerateProperClique = workload.ProperClique
	// GenerateOneSided returns a one-sided clique instance.
	GenerateOneSided = workload.OneSided
	// GenerateCloud returns a cloud-task workload with weights.
	GenerateCloud = workload.Cloud
	// GenerateLightpaths returns an optical-network workload.
	GenerateLightpaths = workload.Lightpaths
	// GenerateBoundedGammaRects returns a 2-D workload with bounded γ₁.
	GenerateBoundedGammaRects = workload.BoundedGammaRects
	// GenerateFigure3 builds the adversarial family of Figure 3.
	GenerateFigure3 = workload.Figure3
	// GenerateArrivals returns a general instance in arrival order.
	GenerateArrivals = workload.Arrivals
	// GenerateWeightedArrivals returns an arrival stream whose jobs carry
	// throughput weights — the input of the budgeted admission strategy.
	GenerateWeightedArrivals = workload.WeightedArrivals
	// GenerateBurstyArrivals returns an arrival stream with simultaneous
	// release bursts.
	GenerateBurstyArrivals = workload.BurstyArrivals
	// GenerateAdversarialOnline builds the Ω(g) lower-bound stream for
	// online FirstFit.
	GenerateAdversarialOnline = workload.AdversarialFirstFit
)
