package busytime_test

import (
	"context"
	"errors"
	"strings"
	"testing"

	busytime "repro"
)

// TestRegistrySolverAutoMatchesMinBusy checks that the Solver's
// registry-driven auto dispatch reproduces the deprecated MinBusy
// wrapper — algorithm name and cost — on randomized instances of every
// class, including disconnected ones (the "components:" merge path).
func TestRegistrySolverAutoMatchesMinBusy(t *testing.T) {
	ctx := context.Background()
	solver := busytime.NewSolver()
	gens := map[string]func(seed int64, cfg busytime.WorkloadConfig) busytime.Instance{
		"general":       busytime.GenerateGeneral,
		"proper":        busytime.GenerateProper,
		"clique":        busytime.GenerateClique,
		"proper-clique": busytime.GenerateProperClique,
	}
	for name, gen := range gens {
		for seed := int64(0); seed < 12; seed++ {
			in := gen(seed, busytime.WorkloadConfig{N: 14, G: 3, MaxTime: 150, MaxLen: 40})
			res, err := solver.Solve(ctx, busytime.Request{Instance: in})
			if err != nil {
				t.Fatalf("%s seed %d: %v", name, seed, err)
			}
			wantSched, wantAlg := busytime.MinBusy(in)
			if res.Algorithm != wantAlg {
				t.Errorf("%s seed %d: solver chose %q, MinBusy chose %q", name, seed, res.Algorithm, wantAlg)
			}
			if res.Cost != wantSched.Cost() {
				t.Errorf("%s seed %d: solver cost %d, MinBusy cost %d", name, seed, res.Cost, wantSched.Cost())
			}
			if res.Scheduled != len(in.Jobs) {
				t.Errorf("%s seed %d: %d/%d scheduled", name, seed, res.Scheduled, len(in.Jobs))
			}
			if err := res.Certificate(); err != nil {
				t.Errorf("%s seed %d: certificate: %v", name, seed, err)
			}
		}
	}
}

// TestRegistrySolverAutoMatchesThroughput is the MaxThroughput analogue.
func TestRegistrySolverAutoMatchesThroughput(t *testing.T) {
	ctx := context.Background()
	solver := busytime.NewSolver()
	for seed := int64(0); seed < 12; seed++ {
		for _, gen := range []func(seed int64, cfg busytime.WorkloadConfig) busytime.Instance{
			busytime.GenerateGeneral, busytime.GenerateClique, busytime.GenerateProperClique,
		} {
			in := gen(seed, busytime.WorkloadConfig{N: 12, G: 2, MaxTime: 120, MaxLen: 35})
			budget := in.TotalLen() / 2
			if budget == 0 {
				continue
			}
			res, err := solver.Solve(ctx, busytime.Request{
				Instance: in, Kind: busytime.KindMaxThroughput, Budget: budget,
			})
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			wantSched, wantAlg := busytime.MaxThroughput(in, budget)
			if res.Algorithm != wantAlg {
				t.Errorf("seed %d: solver chose %q, MaxThroughput chose %q", seed, res.Algorithm, wantAlg)
			}
			if res.Scheduled != wantSched.Throughput() {
				t.Errorf("seed %d: solver scheduled %d, MaxThroughput %d", seed, res.Scheduled, wantSched.Throughput())
			}
			if res.Cost > budget {
				t.Errorf("seed %d: cost %d over budget %d", seed, res.Cost, budget)
			}
			if err := res.Certificate(); err != nil {
				t.Errorf("seed %d: certificate: %v", seed, err)
			}
		}
	}
}

// TestRegistrySolverNamedAlgorithm pins algorithms by name and alias,
// checks Result.Algorithm reports the canonical name, and checks that
// unknown names fail with the registered list (no usage string to
// hand-maintain).
func TestRegistrySolverNamedAlgorithm(t *testing.T) {
	ctx := context.Background()
	clique := busytime.GenerateClique(3, busytime.WorkloadConfig{N: 10, G: 2, MaxTime: 100, MaxLen: 30})
	for _, name := range []string{"clique-matching", "matching"} {
		res, err := busytime.NewSolver(busytime.WithAlgorithm(name)).Solve(ctx, busytime.Request{Instance: clique})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Algorithm != "clique-matching" {
			t.Errorf("%s: reported %q", name, res.Algorithm)
		}
		if err := res.Certificate(); err != nil {
			t.Errorf("%s: certificate: %v", name, err)
		}
	}
	// A pinned algorithm that rejects the instance surfaces its error.
	general := busytime.GenerateGeneral(1, busytime.WorkloadConfig{N: 10, G: 2, MaxTime: 100, MaxLen: 30})
	if _, err := busytime.NewSolver(busytime.WithAlgorithm("matching")).Solve(ctx, busytime.Request{Instance: general}); err == nil {
		t.Error("clique-matching accepted a general instance")
	}
	// Unknown names report the full algorithm list.
	_, err := busytime.NewSolver(busytime.WithAlgorithm("bogus")).Solve(ctx, busytime.Request{Instance: clique})
	if err == nil || !strings.Contains(err.Error(), "first-fit") {
		t.Errorf("unknown algorithm error does not list algorithms: %v", err)
	}
}

// TestRegistrySolverCancellation checks the two cancellation paths: the
// exact oracle aborts mid-DP, and Solve refuses to start on a dead
// context.
func TestRegistrySolverCancellation(t *testing.T) {
	in := busytime.GenerateGeneral(1, busytime.WorkloadConfig{N: 18, G: 3, MaxTime: 200, MaxLen: 60})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, opt := range []busytime.SolverOption{
		busytime.WithAlgorithm("exact"),
		busytime.WithExactThreshold(18),
	} {
		_, err := busytime.NewSolver(opt).Solve(ctx, busytime.Request{Instance: in})
		if !errors.Is(err, context.Canceled) {
			t.Errorf("want context.Canceled, got %v", err)
		}
	}
	_, err := busytime.NewSolver(busytime.WithAlgorithm("exact-throughput"), busytime.WithBudget(100)).
		Solve(ctx, busytime.Request{Instance: in, Kind: busytime.KindMaxThroughput})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("throughput oracle: want context.Canceled, got %v", err)
	}
}

// TestRegistrySolverExactThreshold routes small instances to the oracle.
func TestRegistrySolverExactThreshold(t *testing.T) {
	ctx := context.Background()
	in := busytime.GenerateGeneral(5, busytime.WorkloadConfig{N: 10, G: 3, MaxTime: 100, MaxLen: 30})
	res, err := busytime.NewSolver(busytime.WithExactThreshold(12)).Solve(ctx, busytime.Request{Instance: in})
	if err != nil {
		t.Fatal(err)
	}
	if res.Algorithm != "exact" {
		t.Fatalf("algorithm = %q, want exact", res.Algorithm)
	}
	auto, _ := busytime.MinBusy(in)
	if res.Cost > auto.Cost() {
		t.Errorf("exact cost %d worse than auto %d", res.Cost, auto.Cost())
	}
	if err := res.Certificate(); err != nil {
		t.Error(err)
	}
}

// TestRegistrySolverLocalSearch checks WithLocalSearch never worsens the
// schedule and marks the algorithm name.
func TestRegistrySolverLocalSearch(t *testing.T) {
	ctx := context.Background()
	in := busytime.GenerateGeneral(7, busytime.WorkloadConfig{N: 30, G: 3, MaxTime: 200, MaxLen: 60})
	plain, err := busytime.NewSolver().Solve(ctx, busytime.Request{Instance: in})
	if err != nil {
		t.Fatal(err)
	}
	improved, err := busytime.NewSolver(busytime.WithLocalSearch(0)).Solve(ctx, busytime.Request{Instance: in})
	if err != nil {
		t.Fatal(err)
	}
	if improved.Cost > plain.Cost {
		t.Errorf("local search worsened cost: %d > %d", improved.Cost, plain.Cost)
	}
	if !strings.HasSuffix(improved.Algorithm, "+local-search") {
		t.Errorf("algorithm %q lacks +local-search suffix", improved.Algorithm)
	}
	if err := improved.Certificate(); err != nil {
		t.Error(err)
	}
}

// TestRegistrySolverParallelism checks component-parallel solving is
// bit-identical to sequential solving on a disconnected instance.
func TestRegistrySolverParallelism(t *testing.T) {
	ctx := context.Background()
	// Widely-spaced clusters: guaranteed disconnected.
	var spans [][2]int64
	for c := int64(0); c < 6; c++ {
		base := c * 1000
		spans = append(spans, [2]int64{base, base + 50}, [2]int64{base + 10, base + 60}, [2]int64{base + 20, base + 40})
	}
	in := busytime.NewInstance(2, spans...)
	seq, err := busytime.NewSolver().Solve(ctx, busytime.Request{Instance: in})
	if err != nil {
		t.Fatal(err)
	}
	par, err := busytime.NewSolver(busytime.WithParallelism(4)).Solve(ctx, busytime.Request{Instance: in})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(seq.Algorithm, "components:") {
		t.Fatalf("expected a components merge, got %q", seq.Algorithm)
	}
	if seq.Algorithm != par.Algorithm || seq.Cost != par.Cost || seq.Machines != par.Machines {
		t.Errorf("parallel solve diverged: %q/%d/%d vs %q/%d/%d",
			seq.Algorithm, seq.Cost, seq.Machines, par.Algorithm, par.Cost, par.Machines)
	}
	wantSched, wantAlg := busytime.MinBusy(in)
	if seq.Algorithm != wantAlg || seq.Cost != wantSched.Cost() {
		t.Errorf("solver %q/%d, MinBusy %q/%d", seq.Algorithm, seq.Cost, wantAlg, wantSched.Cost())
	}
	if err := par.Certificate(); err != nil {
		t.Error(err)
	}
}

// TestRegistrySolverOnline runs the online kind through the Solver and
// cross-checks against a direct replay.
func TestRegistrySolverOnline(t *testing.T) {
	ctx := context.Background()
	in := busytime.GenerateArrivals(9, busytime.WorkloadConfig{N: 20, G: 3, MaxTime: 150, MaxLen: 40})
	res, err := busytime.NewSolver(busytime.WithAlgorithm("firstfit")).
		Solve(ctx, busytime.Request{Instance: in, Kind: busytime.KindOnline})
	if err != nil {
		t.Fatal(err)
	}
	direct, err := busytime.ReplayOnline(in, busytime.OnlineFirstFit())
	if err != nil {
		t.Fatal(err)
	}
	if res.Algorithm != "online-firstfit" || res.Cost != direct.Cost ||
		res.MachinesOpened != direct.MachinesOpened || res.PeakOpen != direct.PeakOpen {
		t.Errorf("solver online run %+v diverges from direct replay %+v", res, direct)
	}
	if err := res.Certificate(); err != nil {
		t.Error(err)
	}
	// Auto mode picks the strongest registered strategy.
	auto, err := busytime.NewSolver().Solve(ctx, busytime.Request{Instance: in, Kind: busytime.KindOnline})
	if err != nil {
		t.Fatal(err)
	}
	if auto.Algorithm != "online-bestfit" {
		t.Errorf("auto online strategy = %q", auto.Algorithm)
	}
}

// TestRegistrySolverOnlineBudgeted pins the admission-control semantics
// of the online kind: the request's budget reaches the strategy, the run
// never overspends, and the reported lower bound (and ratio) cover the
// admitted arrivals only — an admission run is not charged for what it
// rejected, and a full-instance bound would push the ratio below 1.
func TestRegistrySolverOnlineBudgeted(t *testing.T) {
	ctx := context.Background()
	in := busytime.GenerateWeightedArrivals(5, busytime.WorkloadConfig{N: 150, G: 3, MaxTime: 600, MaxLen: 50})
	budget := in.LowerBound() / 2 // tight: forces rejections
	res, err := busytime.NewSolver(busytime.WithAlgorithm("online-budget")).
		Solve(ctx, busytime.Request{Instance: in, Kind: busytime.KindOnline, Budget: budget})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rejected == 0 {
		t.Fatal("tight budget rejected nothing")
	}
	if res.Cost > budget || res.Budget != budget {
		t.Errorf("cost %d / echoed budget %d against budget %d", res.Cost, res.Budget, budget)
	}
	if res.RatioVsBound < 1 {
		t.Errorf("ratio vs bound %.4f < 1: lower bound not restricted to admitted arrivals", res.RatioVsBound)
	}
	direct, err := busytime.ReplayOnline(in, busytime.OnlineBudgeted(budget))
	if err != nil {
		t.Fatal(err)
	}
	if want := direct.Summarize().LowerBound; res.LowerBound != want {
		t.Errorf("lower bound %d, want admitted-only bound %d", res.LowerBound, want)
	}
	if err := res.Certificate(); err != nil {
		t.Error(err)
	}
	// The Solver default budget (WithBudget) is a max-throughput
	// fallback and must not leak into online runs.
	plain, err := busytime.NewSolver(busytime.WithAlgorithm("online-budget"), busytime.WithBudget(budget)).
		Solve(ctx, busytime.Request{Instance: in, Kind: busytime.KindOnline})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Rejected != 0 || plain.Budget != 0 {
		t.Errorf("WithBudget leaked into an online run: %d rejected, budget %d", plain.Rejected, plain.Budget)
	}
}

// TestRegistrySolverRect solves the 2-D kind, auto and named.
func TestRegistrySolverRect(t *testing.T) {
	ctx := context.Background()
	in := busytime.GenerateBoundedGammaRects(5, busytime.WorkloadConfig{N: 30, G: 3, MaxTime: 200, MaxLen: 60}, 4)
	auto, err := busytime.NewSolver().Solve(ctx, busytime.Request{Rect: &in})
	if err != nil {
		t.Fatal(err)
	}
	if auto.Algorithm != "bucket-first-fit" || auto.Rect == nil {
		t.Fatalf("auto 2-D solve = %q, rect %v", auto.Algorithm, auto.Rect != nil)
	}
	if err := auto.Certificate(); err != nil {
		t.Error(err)
	}
	named, err := busytime.NewSolver(busytime.WithAlgorithm("ff2d")).Solve(ctx, busytime.Request{Rect: &in})
	if err != nil {
		t.Fatal(err)
	}
	direct := busytime.FirstFit2D(in)
	if named.Cost != direct.Cost() {
		t.Errorf("named 2-D cost %d, direct %d", named.Cost, direct.Cost())
	}
}

// TestRegistrySolverBudgetOption checks WithBudget supplies the default
// and that a missing budget errors.
func TestRegistrySolverBudgetOption(t *testing.T) {
	ctx := context.Background()
	in := busytime.GenerateProperClique(2, busytime.WorkloadConfig{N: 10, G: 2, MaxTime: 100, MaxLen: 30})
	budget := in.TotalLen() / 2
	res, err := busytime.NewSolver(busytime.WithBudget(budget)).
		Solve(ctx, busytime.Request{Instance: in, Kind: busytime.KindMaxThroughput})
	if err != nil {
		t.Fatal(err)
	}
	if res.Budget != budget {
		t.Errorf("effective budget %d, want %d", res.Budget, budget)
	}
	if _, err := busytime.NewSolver().Solve(ctx, busytime.Request{
		Instance: in, Kind: busytime.KindMaxThroughput, Budget: -1,
	}); err == nil {
		t.Error("negative budget accepted")
	}
}

// TestRegistryCertificateDetectsViolations corrupts Results and expects
// Certificate to reject each corruption.
func TestRegistryCertificateDetectsViolations(t *testing.T) {
	ctx := context.Background()
	in := busytime.GenerateProperClique(4, busytime.WorkloadConfig{N: 8, G: 2, MaxTime: 80, MaxLen: 25})
	res, err := busytime.NewSolver().Solve(ctx, busytime.Request{Instance: in})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Certificate(); err != nil {
		t.Fatalf("valid result rejected: %v", err)
	}

	costLie := res
	costLie.Cost++
	if costLie.Certificate() == nil {
		t.Error("cost mismatch passed")
	}

	tputLie := res
	tputLie.Scheduled--
	if tputLie.Certificate() == nil {
		t.Error("throughput mismatch passed")
	}

	// Cram every job onto one machine: capacity violation.
	overload := res
	overload.Schedule.Machine = make([]int, len(in.Jobs))
	overload.Cost = overload.Schedule.Cost()
	if overload.Certificate() == nil && in.G < len(in.Jobs) {
		t.Error("capacity violation passed")
	}

	over := res
	over.Kind = busytime.KindMaxThroughput
	over.Budget = res.Cost - 1
	if over.Certificate() == nil {
		t.Error("budget violation passed")
	}
}

// TestRegistryFacadeViews sanity-checks the facade re-exports of the
// registry: list, kind-scoped names and the strongest-for-class view.
func TestRegistryFacadeViews(t *testing.T) {
	if len(busytime.Algorithms()) < 15 {
		t.Error("Algorithms() incomplete")
	}
	a, err := busytime.AlgorithmFor(busytime.KindMinBusy, busytime.ClassProperClique)
	if err != nil || a.Name != "find-best-consecutive" {
		t.Errorf("AlgorithmFor = %v, %v", a.Name, err)
	}
	if _, err := busytime.LookupAlgorithm("one-sided-greedy"); err != nil {
		t.Error(err)
	}
	names := busytime.AlgorithmNames(busytime.KindMinBusy2D)
	if len(names) != 4 { // three polynomial algorithms + the exact-2d oracle
		t.Errorf("2-D names = %v", names)
	}
	if _, err := busytime.LookupAlgorithm("exact-2d"); err != nil {
		t.Error(err)
	}
}

// TestRegistryResultOf checks the schedule-wrapping constructor used by
// cmd/verify.
func TestRegistryResultOf(t *testing.T) {
	in := busytime.NewInstance(2, [2]int64{0, 10}, [2]int64{5, 15})
	s, alg := busytime.MinBusy(in)
	res := busytime.ResultOf(alg, s)
	if err := res.Certificate(); err != nil {
		t.Fatal(err)
	}
	if res.Cost != s.Cost() || res.N != 2 || res.Class != busytime.ClassProperClique {
		t.Errorf("ResultOf stats wrong: %+v", res)
	}

	// A machine array longer than the job list (malformed JSON input)
	// must surface as a certificate failure, not a panic.
	bad := busytime.ResultOf("first-fit",
		busytime.Schedule{Instance: in, Machine: []int{0, 0, 0, 0, 0}})
	if err := bad.Certificate(); err == nil {
		t.Error("oversized machine array passed certification")
	}
}

// TestRegistrySolverRectKindNeedsRect pins the error for a 2-D request
// that carries no rectangle instance.
func TestRegistrySolverRectKindNeedsRect(t *testing.T) {
	_, err := busytime.NewSolver().Solve(context.Background(),
		busytime.Request{Kind: busytime.KindMinBusy2D})
	if err == nil {
		t.Fatal("KindMinBusy2D without Rect accepted")
	}
}
