package busytime_test

import (
	"context"
	"testing"

	busytime "repro"
)

func reoptInstance(seed int64, n int) busytime.Instance {
	return busytime.GenerateGeneral(seed, busytime.WorkloadConfig{N: n, G: 3, MaxTime: 400, MaxLen: 40})
}

// TestReoptHitRepairMiss walks the three cache outcomes: a cold solve
// misses and is cached, a permuted-and-translated resubmission hits, a
// small delta repairs. Every served Result must carry a certificate
// valid against the instance actually submitted.
func TestReoptHitRepairMiss(t *testing.T) {
	ctx := context.Background()
	solver := busytime.NewSolver(busytime.WithReoptimization(16))

	in := reoptInstance(1, 40)
	cold, err := solver.Solve(ctx, busytime.Request{Instance: in})
	if err != nil {
		t.Fatalf("cold solve: %v", err)
	}
	if cold.CacheOutcome != busytime.CacheMiss {
		t.Fatalf("cold outcome = %q, want %q", cold.CacheOutcome, busytime.CacheMiss)
	}
	if cold.ID == "" {
		t.Fatal("cold solve should assign a result ID")
	}
	if err := cold.Certificate(); err != nil {
		t.Fatalf("cold certificate: %v", err)
	}

	// Same canonical form, different surface: permuted, translated,
	// renumbered. Must be a hit with the cached cost, certified against
	// the resubmission (translated coordinates and all).
	resub := in.Clone()
	for i, j := 0, len(resub.Jobs)-1; i < j; i, j = i+1, j-1 {
		resub.Jobs[i], resub.Jobs[j] = resub.Jobs[j], resub.Jobs[i]
	}
	for i := range resub.Jobs {
		resub.Jobs[i].ID += 5000
		resub.Jobs[i].Interval = busytime.Interval{
			Start: resub.Jobs[i].Interval.Start + 777,
			End:   resub.Jobs[i].Interval.End + 777,
		}
	}
	hit, err := solver.Solve(ctx, busytime.Request{Instance: resub})
	if err != nil {
		t.Fatalf("hit solve: %v", err)
	}
	if hit.CacheOutcome != busytime.CacheHit {
		t.Fatalf("resubmission outcome = %q, want %q", hit.CacheOutcome, busytime.CacheHit)
	}
	if hit.Cost != cold.Cost {
		t.Errorf("hit cost %d, want cached %d", hit.Cost, cold.Cost)
	}
	if hit.ID != cold.ID {
		t.Errorf("hit ID %q, want cached %q", hit.ID, cold.ID)
	}
	if err := hit.Certificate(); err != nil {
		t.Fatalf("hit certificate: %v", err)
	}

	// Small delta: drop one job, add one. Drop the latest-starting job
	// and insert near the middle so the canonical origin (the min start)
	// is untouched and the near-hit scan can see the overlap.
	mod := in.Clone()
	drop, minStart := 0, mod.Jobs[0].Start()
	for i, j := range mod.Jobs {
		if j.Start() > mod.Jobs[drop].Start() {
			drop = i
		}
		if j.Start() < minStart {
			minStart = j.Start()
		}
	}
	mod.Jobs = append(mod.Jobs[:drop], mod.Jobs[drop+1:]...)
	mod.Jobs = append(mod.Jobs, busytime.NewJob(901, minStart+30, minStart+75))
	rep, err := solver.Solve(ctx, busytime.Request{Instance: mod})
	if err != nil {
		t.Fatalf("repair solve: %v", err)
	}
	if rep.CacheOutcome != busytime.CacheRepair {
		t.Fatalf("delta outcome = %q, want %q", rep.CacheOutcome, busytime.CacheRepair)
	}
	if rep.Algorithm != "reopt-repair" {
		t.Errorf("repair algorithm = %q, want reopt-repair", rep.Algorithm)
	}
	if rep.BaseID != cold.ID {
		t.Errorf("repair BaseID = %q, want %q", rep.BaseID, cold.ID)
	}
	if err := rep.Certificate(); err != nil {
		t.Fatalf("repair certificate: %v", err)
	}

	// The repaired result was cached under its own fingerprint, so the
	// identical resubmission upgrades to a hit.
	again, err := solver.Solve(ctx, busytime.Request{Instance: mod})
	if err != nil {
		t.Fatalf("resolve after repair: %v", err)
	}
	if again.CacheOutcome != busytime.CacheHit {
		t.Errorf("re-submitted repaired instance outcome = %q, want %q", again.CacheOutcome, busytime.CacheHit)
	}
}

// TestReoptBaseIDWarmStart: an explicit BaseID warm start repairs from
// the named incumbent even when the delta exceeds the near-hit window.
func TestReoptBaseIDWarmStart(t *testing.T) {
	ctx := context.Background()
	solver := busytime.NewSolver(busytime.WithReoptimization(16))

	in := reoptInstance(2, 32)
	cold, err := solver.Solve(ctx, busytime.Request{Instance: in})
	if err != nil {
		t.Fatalf("cold solve: %v", err)
	}

	// Delta of ~1/4 of the jobs — beyond nearLimit, so only the explicit
	// BaseID routes it through repair.
	mod := in.Clone()
	mod.Jobs = mod.Jobs[8:]
	res, err := solver.Solve(ctx, busytime.Request{Instance: mod, BaseID: cold.ID})
	if err != nil {
		t.Fatalf("BaseID solve: %v", err)
	}
	if res.CacheOutcome != busytime.CacheRepair {
		t.Fatalf("BaseID outcome = %q, want %q", res.CacheOutcome, busytime.CacheRepair)
	}
	if res.BaseID != cold.ID {
		t.Errorf("BaseID = %q, want %q", res.BaseID, cold.ID)
	}
	if err := res.Certificate(); err != nil {
		t.Fatalf("certificate: %v", err)
	}

	// An unknown BaseID degrades gracefully to a normal solve.
	fresh := reoptInstance(3, 24)
	res, err = solver.Solve(ctx, busytime.Request{Instance: fresh, BaseID: "r-999-nosuch"})
	if err != nil {
		t.Fatalf("unknown BaseID solve: %v", err)
	}
	if res.CacheOutcome != busytime.CacheMiss {
		t.Errorf("unknown BaseID outcome = %q, want %q", res.CacheOutcome, busytime.CacheMiss)
	}
}

// TestReoptTransitionBudget pins the budget semantics: negative is an
// error, a positive budget bounds Transition on the repair path.
func TestReoptTransitionBudget(t *testing.T) {
	ctx := context.Background()
	solver := busytime.NewSolver(busytime.WithReoptimization(16))

	in := reoptInstance(4, 40)
	if _, err := solver.Solve(ctx, busytime.Request{Instance: in, TransitionBudget: -1}); err == nil {
		t.Fatal("negative transition budget should be rejected")
	}

	cold, err := solver.Solve(ctx, busytime.Request{Instance: in})
	if err != nil {
		t.Fatalf("cold solve: %v", err)
	}
	mod := in.Clone()
	mod.Jobs = append(mod.Jobs, busytime.NewJob(902, 0, 400))
	res, err := solver.Solve(ctx, busytime.Request{Instance: mod, BaseID: cold.ID, TransitionBudget: 1})
	if err != nil {
		t.Fatalf("budgeted solve: %v", err)
	}
	if res.CacheOutcome != busytime.CacheRepair {
		t.Fatalf("outcome = %q, want %q", res.CacheOutcome, busytime.CacheRepair)
	}
	if res.Transition > 1 {
		t.Errorf("transition %d exceeds budget 1", res.Transition)
	}
	if err := res.Certificate(); err != nil {
		t.Fatalf("certificate: %v", err)
	}
}

// TestReoptRequiresOptIn: BaseID without WithReoptimization (or on a
// non-MinBusy kind) is a configuration error, not a silent ignore.
func TestReoptRequiresOptIn(t *testing.T) {
	ctx := context.Background()
	in := reoptInstance(5, 12)

	if _, err := busytime.NewSolver().Solve(ctx, busytime.Request{Instance: in, BaseID: "r-1-x"}); err == nil {
		t.Error("BaseID without WithReoptimization should error")
	}

	solver := busytime.NewSolver(busytime.WithReoptimization(4))
	_, err := solver.Solve(ctx, busytime.Request{
		Instance: in, Kind: busytime.KindMaxThroughput, BaseID: "r-1-x",
	})
	if err == nil {
		t.Error("BaseID on a non-MinBusy kind should error")
	}
}

// TestReoptDisabledPathUnchanged: without the option the solver ignores
// the cache machinery entirely — no IDs, no outcomes.
func TestReoptDisabledPathUnchanged(t *testing.T) {
	ctx := context.Background()
	in := reoptInstance(6, 20)
	res, err := busytime.NewSolver().Solve(ctx, busytime.Request{Instance: in})
	if err != nil {
		t.Fatalf("solve: %v", err)
	}
	if res.ID != "" || res.CacheOutcome != "" {
		t.Errorf("cache fields set without WithReoptimization: ID=%q outcome=%q", res.ID, res.CacheOutcome)
	}
}
