package busytime_test

import (
	"context"
	"reflect"
	"testing"

	busytime "repro"
)

func TestQuickstartFlow(t *testing.T) {
	in := busytime.NewInstance(2,
		[2]int64{0, 10}, [2]int64{5, 15}, [2]int64{8, 20}, [2]int64{12, 25})
	s, alg := busytime.MinBusy(in)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Throughput() != 4 {
		t.Fatalf("MinBusy left jobs unscheduled")
	}
	if alg == "" {
		t.Fatal("no algorithm name reported")
	}
	if s.Cost() < in.LowerBound() || s.Cost() > in.TotalLen() {
		t.Fatalf("cost %d outside Observation 2.1 bounds", s.Cost())
	}
}

func TestMaxThroughputDispatch(t *testing.T) {
	cases := []struct {
		in   busytime.Instance
		want string
	}{
		{busytime.GenerateOneSided(1, busytime.WorkloadConfig{N: 6, G: 2, MaxTime: 50, MaxLen: 20}, true), "one-sided-throughput"},
		{busytime.GenerateProperClique(1, busytime.WorkloadConfig{N: 6, G: 2, MaxTime: 50, MaxLen: 20}), "most-throughput-consecutive"},
		{busytime.NewInstance(2, [2]int64{0, 20}, [2]int64{1, 8}, [2]int64{2, 9}), "clique-throughput"},
		{busytime.NewInstance(2, [2]int64{0, 10}, [2]int64{2, 5}, [2]int64{40, 50}), "greedy-throughput"},
	}
	for i, c := range cases {
		s, alg := busytime.MaxThroughput(c.in, 1000)
		if alg != c.want {
			t.Errorf("case %d: dispatched to %q, want %q", i, alg, c.want)
		}
		if err := s.Validate(); err != nil {
			t.Errorf("case %d: %v", i, err)
		}
	}
}

func TestGreedyThroughputRespectsBudget(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		in := busytime.GenerateGeneral(seed, busytime.WorkloadConfig{N: 15, G: 2, MaxTime: 80, MaxLen: 25})
		for _, budget := range []int64{0, 10, 50, 200, 10000} {
			s := busytime.GreedyThroughput(in, budget)
			if err := s.Validate(); err != nil {
				t.Fatalf("seed %d budget %d: %v", seed, budget, err)
			}
			if s.Cost() > budget {
				t.Fatalf("seed %d: cost %d over budget %d", seed, s.Cost(), budget)
			}
		}
		// Generous budget must schedule everything.
		s := busytime.GreedyThroughput(in, in.TotalLen())
		if s.Throughput() != len(in.Jobs) {
			t.Errorf("seed %d: full budget scheduled %d/%d", seed, s.Throughput(), len(in.Jobs))
		}
	}
}

func TestClassifyExported(t *testing.T) {
	in := busytime.NewInstance(2, [2]int64{0, 10}, [2]int64{5, 15})
	if c := busytime.Classify(in.Jobs); c != busytime.ClassProperClique {
		t.Errorf("Classify = %v", c)
	}
}

func TestExactOracleExported(t *testing.T) {
	in := busytime.NewInstance(2, [2]int64{0, 10}, [2]int64{0, 10}, [2]int64{0, 10})
	s, err := busytime.ExactMinBusy(in)
	if err != nil {
		t.Fatal(err)
	}
	if s.Cost() != 20 {
		t.Errorf("exact cost = %d, want 20", s.Cost())
	}
	ts, err := busytime.ExactMaxThroughput(in, 10)
	if err != nil {
		t.Fatal(err)
	}
	if ts.Throughput() != 2 {
		t.Errorf("exact throughput = %d, want 2", ts.Throughput())
	}
}

func TestOnlineFacade(t *testing.T) {
	in := busytime.GenerateArrivals(1, busytime.WorkloadConfig{N: 14, G: 2, MaxTime: 80, MaxLen: 25})
	for _, st := range []busytime.OnlineStrategy{
		busytime.OnlineNaive(), busytime.OnlineFirstFit(), busytime.OnlineBuckets(),
	} {
		res, err := busytime.ReplayOnline(in, st)
		if err != nil {
			t.Fatalf("%s: %v", st.Name(), err)
		}
		if err := res.Schedule.Validate(); err != nil {
			t.Fatalf("%s: %v", st.Name(), err)
		}
		if res.Schedule.Throughput() != len(in.Jobs) {
			t.Fatalf("%s: left jobs unscheduled", st.Name())
		}
	}
	reports, err := busytime.CompareOnline(in, busytime.OnlineFirstFit())
	if err != nil {
		t.Fatal(err)
	}
	if !reports[0].HasExact || reports[0].VsExact() < 1 {
		t.Errorf("bad report %+v", reports[0])
	}

	flex := []busytime.FlexJob{
		busytime.NewFlexJob(0, 0, 30, 10),
		busytime.NewFlexJob(1, 5, 40, 8),
	}
	res, err := busytime.ReplayFlexible(2, flex, busytime.StartAligned(), busytime.OnlineFirstFit())
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Schedule.Validate(); err != nil {
		t.Fatal(err)
	}

	adv, err := busytime.GenerateAdversarialOnline(3, 30)
	if err != nil {
		t.Fatal(err)
	}
	if err := adv.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRectFacade(t *testing.T) {
	in, err := busytime.GenerateFigure3(4, 1, 1000, 1)
	if err != nil {
		t.Fatal(err)
	}
	s := busytime.FirstFit2D(in)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	b, err := busytime.BucketFirstFitAuto(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestDeprecatedFacadeByteIdentical locks the migration path from the
// deprecated facade wrappers to the Solver: MinBusy and MaxThroughput
// must produce byte-identical machine assignments (not merely equal
// costs) and the same reported algorithm as the equivalent Solver.Solve
// call, across every instance class and including disconnected
// instances that exercise the component-merge path.
func TestDeprecatedFacadeByteIdentical(t *testing.T) {
	ctx := context.Background()
	solver := busytime.NewSolver()
	gens := map[string]func(seed int64, cfg busytime.WorkloadConfig) busytime.Instance{
		"general":       busytime.GenerateGeneral,
		"proper":        busytime.GenerateProper,
		"clique":        busytime.GenerateClique,
		"proper-clique": busytime.GenerateProperClique,
		"one-sided": func(seed int64, cfg busytime.WorkloadConfig) busytime.Instance {
			return busytime.GenerateOneSided(seed, cfg, seed%2 == 0)
		},
		"cloud": busytime.GenerateCloud,
	}
	for name, gen := range gens {
		for _, g := range []int{2, 3} {
			for seed := int64(0); seed < 6; seed++ {
				in := gen(seed, busytime.WorkloadConfig{N: 14, G: g, MaxTime: 120, MaxLen: 30})

				wantSched, wantAlg := busytime.MinBusy(in)
				res, err := solver.Solve(ctx, busytime.Request{Instance: in})
				if err != nil {
					t.Fatalf("%s g=%d seed=%d: %v", name, g, seed, err)
				}
				if res.Algorithm != wantAlg {
					t.Errorf("%s g=%d seed=%d: facade ran %q, Solver ran %q", name, g, seed, wantAlg, res.Algorithm)
				}
				if !reflect.DeepEqual(wantSched.Machine, res.Schedule.Machine) {
					t.Errorf("%s g=%d seed=%d: MinBusy assignments diverge\nfacade: %v\nsolver: %v",
						name, g, seed, wantSched.Machine, res.Schedule.Machine)
				}

				budget := in.TotalLen() / 2
				wantTS, wantTAlg := busytime.MaxThroughput(in, budget)
				tres, err := solver.Solve(ctx, busytime.Request{Instance: in, Kind: busytime.KindMaxThroughput, Budget: budget})
				if err != nil {
					t.Fatalf("%s g=%d seed=%d throughput: %v", name, g, seed, err)
				}
				if tres.Algorithm != wantTAlg {
					t.Errorf("%s g=%d seed=%d: throughput facade ran %q, Solver ran %q", name, g, seed, wantTAlg, tres.Algorithm)
				}
				if !reflect.DeepEqual(wantTS.Machine, tres.Schedule.Machine) {
					t.Errorf("%s g=%d seed=%d: MaxThroughput assignments diverge\nfacade: %v\nsolver: %v",
						name, g, seed, wantTS.Machine, tres.Schedule.Machine)
				}
			}
		}
	}
}
