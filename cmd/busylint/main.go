// Command busylint is the repository's invariant checker: a multichecker
// of repo-specific analyzers that mechanize the disciplines earlier
// PRs enforced by hand review.
//
//	ctxloop          context-accepting algorithm loops must observe ctx
//	nopanic          no panic/log.Fatal/os.Exit in server handler/codec code
//	registryhygiene  every algorithm constructor registered, with classes
//	                 and a guarantee
//	detreplay        replay/conformance code stays deterministic
//	coordarith       int64 coordinate arithmetic goes through safemath
//	spanend          every trace.Start span is ended on all paths
//	locksafe         every Lock/RLock released on all paths; one lock
//	                 acquisition order per package
//	atomicmix        a field accessed via sync/atomic is never accessed bare
//	goleak           go statements in serving packages have an escape path
//	errdrop          no discarded errors on journal/file durability paths
//
// Usage:
//
//	busylint ./...               # standalone, human-readable
//	busylint -json ./...         # machine-readable (the CI artifact)
//	busylint -sarif ./...        # SARIF 2.1.0 (GitHub code scanning)
//	go vet -vettool=$(which busylint) ./...
//
// Suppress a single finding with a reasoned directive on (or right
// above) the flagged line:
//
//	//lint:ignore busylint/<analyzer> <reason>
//
// The reason is mandatory; without one the finding still fires.
package main

import (
	"os"

	"repro/internal/analysis/driver"
	"repro/internal/analysis/suite"
)

func main() {
	args := os.Args[1:]
	if driver.IsVetInvocation(args) {
		os.Exit(driver.VetMain(args, suite.All()))
	}
	os.Exit(driver.Main(args, suite.All()))
}
