// Command onlinesim replays busy-time scheduling instances through the
// online strategies in arrival order and reports each strategy's cost,
// machine usage, and empirical competitive ratio against the offline
// algorithms (and the exact oracle on small instances).
//
// Usage examples:
//
//	onlinesim -workload arrivals -n 30 -g 3 -seed 7
//	onlinesim -workload adversarial -g 4 -longlen 400
//	onlinesim -workload bursty -n 50 -g 4 -strategy firstfit -json
//	onlinesim -in instance.json -strategy all
//
// With -json the reports are printed as JSON for piping into other tools;
// otherwise a fixed-width table is printed.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	busytime "repro"
	"repro/internal/exact"
	"repro/internal/igraph"
	"repro/internal/job"
	"repro/internal/online"
	"repro/internal/stats"
	"repro/internal/workload"
)

func main() {
	var (
		workloadName = flag.String("workload", "arrivals", "workload family: "+strings.Join(workload.Names(), "|")+"|adversarial")
		n            = flag.Int("n", 20, "number of jobs")
		g            = flag.Int("g", 2, "machine capacity (parallelism parameter)")
		seed         = flag.Int64("seed", 1, "random seed")
		maxTime      = flag.Int64("maxtime", 200, "workload horizon")
		maxLen       = flag.Int64("maxlen", 50, "maximum job length")
		longLen      = flag.Int64("longlen", 0, "long-job length for the adversarial family (default 100g)")
		strategyName = flag.String("strategy", "all", "strategy: all|"+strings.Join(busytime.AlgorithmNames(busytime.KindOnline), "|"))
		budget       = flag.Int64("budget", 0, "busy-time budget for admission-control strategies (required by online-budget; without it \"all\" skips them)")
		inFile       = flag.String("in", "", "load instance JSON instead of generating")
		outJSON      = flag.Bool("json", false, "emit JSON output")
	)
	flag.Parse()

	in, err := buildInstance(*inFile, *workloadName, *seed, *longLen,
		workload.Config{N: *n, G: *g, MaxTime: *maxTime, MaxLen: *maxLen})
	if err != nil {
		fatal(err)
	}
	if err := in.Validate(); err != nil {
		fatal(err)
	}
	strategies, err := pickStrategies(*strategyName, *budget)
	if err != nil {
		fatal(err)
	}
	reports, err := online.Compare(in, strategies...)
	if err != nil {
		fatal(err)
	}

	if *outJSON {
		emitJSON(in, reports)
		return
	}
	emitText(in, reports)
}

func buildInstance(path, family string, seed, longLen int64, cfg workload.Config) (job.Instance, error) {
	if path != "" {
		data, err := os.ReadFile(path)
		if err != nil {
			return job.Instance{}, err
		}
		var in job.Instance
		if err := json.Unmarshal(data, &in); err != nil {
			return job.Instance{}, fmt.Errorf("parsing %s: %v", path, err)
		}
		return in, nil
	}
	if family == "adversarial" {
		if longLen <= 0 {
			longLen = 100 * int64(cfg.G)
		}
		return workload.AdversarialFirstFit(cfg.G, longLen)
	}
	return workload.ByName(family, seed, cfg)
}

// pickStrategies resolves -strategy through the algorithm registry:
// "all" instantiates every registered online strategy (weakest first, so
// the report table reads baseline-to-best), anything else is a name or
// alias, with unknown names reporting the registered list. A positive
// budget is handed to admission-control strategies (online-budget);
// without one they would silently degenerate to plain BestFit, so "all"
// drops them and naming one explicitly is an error.
func pickStrategies(name string, budget int64) ([]online.Strategy, error) {
	withBudget := func(st online.Strategy) online.Strategy {
		if bs, ok := st.(online.BudgetSetter); ok && budget > 0 {
			bs.SetBudget(budget)
		}
		return st
	}
	if name == "all" {
		var sts []online.Strategy
		algs := busytime.Algorithms()
		for i := len(algs) - 1; i >= 0; i-- {
			if algs[i].Kind != busytime.KindOnline {
				continue
			}
			st := algs[i].NewStrategy()
			if _, needs := st.(online.BudgetSetter); needs && budget <= 0 {
				continue // without a budget the row would just repeat BestFit
			}
			sts = append(sts, withBudget(st))
		}
		return sts, nil
	}
	info, err := busytime.LookupAlgorithmKind(busytime.KindOnline, name)
	if err != nil {
		return nil, err
	}
	st := info.NewStrategy()
	if _, ok := st.(online.BudgetSetter); ok && budget <= 0 {
		return nil, fmt.Errorf("strategy %s needs -budget (it admits everything without one)", info.Name)
	}
	return []online.Strategy{withBudget(st)}, nil
}

func emitText(in job.Instance, reports []online.Report) {
	fmt.Printf("instance: n=%d g=%d class=%s len=%d span=%d LB=%d\n",
		len(in.Jobs), in.G, igraph.Classify(in.Jobs), in.TotalLen(), in.Span(), in.LowerBound())
	if len(reports) == 0 {
		return
	}
	r0 := reports[0]
	fmt.Printf("offline: %s cost=%d", r0.OfflineAlg, r0.OfflineCost)
	if r0.HasExact {
		fmt.Printf("  exact cost=%d", r0.ExactCost)
	} else {
		fmt.Printf("  exact skipped (n > %d)", exact.MaxN)
	}
	fmt.Println()

	t := stats.Table{Header: []string{"strategy", "cost", "machines", "peak", "rejected", "vs-offline", "vs-exact", "vs-LB"}}
	for _, r := range reports {
		vsExact := "-"
		if r.HasExact {
			vsExact = fmt.Sprintf("%.3f", r.VsExact())
		}
		t.Add(r.Strategy, r.Cost, r.Machines, r.PeakOpen, r.Rejected,
			fmt.Sprintf("%.3f", r.VsOffline()), vsExact, fmt.Sprintf("%.3f", r.VsLowerBound()))
	}
	fmt.Print(t.String())
}

type output struct {
	N       int             `json:"n"`
	G       int             `json:"g"`
	Class   string          `json:"class"`
	Reports []online.Report `json:"reports"`
}

func emitJSON(in job.Instance, reports []online.Report) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(output{
		N:       len(in.Jobs),
		G:       in.G,
		Class:   igraph.Classify(in.Jobs).String(),
		Reports: reports,
	}); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "onlinesim:", err)
	os.Exit(1)
}
