package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/job"
	"repro/internal/workload"
)

func TestBuildInstanceFamilies(t *testing.T) {
	cfg := workload.Config{N: 8, G: 4, MaxTime: 100, MaxLen: 30}
	for _, family := range workload.Names() {
		in, err := buildInstance("", family, 1, 0, cfg)
		if err != nil {
			t.Fatalf("%s: %v", family, err)
		}
		if len(in.Jobs) != 8 {
			t.Errorf("%s: %d jobs", family, len(in.Jobs))
		}
		if err := in.Validate(); err != nil {
			t.Errorf("%s: %v", family, err)
		}
	}
	adv, err := buildInstance("", "adversarial", 1, 0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := adv.Validate(); err != nil {
		t.Error(err)
	}
	if _, err := buildInstance("", "nope", 1, 0, cfg); err == nil {
		t.Error("unknown family accepted")
	}
}

func TestBuildInstanceFromFile(t *testing.T) {
	in := job.NewInstance(2, [2]int64{0, 10}, [2]int64{5, 15})
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "inst.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := buildInstance(path, "ignored", 1, 0, workload.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Jobs) != 2 || got.G != 2 {
		t.Fatalf("loaded %+v", got)
	}
	if _, err := buildInstance(filepath.Join(t.TempDir(), "missing.json"), "", 1, 0, workload.Config{}); err == nil {
		t.Error("missing file accepted")
	}
}

func TestPickStrategies(t *testing.T) {
	for name, want := range map[string]int{
		"naive": 1, "firstfit": 1, "buckets": 1, "bestfit": 1, "budget": 1, // aliases
		"online-naive": 1, "online-firstfit": 1, "online-buckets": 1, // canonical
		"online-bestfit": 1, "online-budget": 1,
		"all": 5,
	} {
		sts, err := pickStrategies(name, 500)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(sts) != want {
			t.Errorf("%s: %d strategies, want %d", name, len(sts), want)
		}
	}
	_, err := pickStrategies("bogus", 0)
	if err == nil {
		t.Fatal("unknown strategy accepted")
	}
	if !strings.Contains(err.Error(), "online-firstfit") {
		t.Errorf("error does not list registered strategies: %v", err)
	}
	// Naming the admission-control strategy without a budget would
	// silently degenerate to BestFit; it must be refused instead.
	if _, err := pickStrategies("online-budget", 0); err == nil {
		t.Error("online-budget accepted without -budget")
	}
	// Without a budget "all" drops the admission-control strategy rather
	// than printing a row that is silently plain BestFit.
	if sts, err := pickStrategies("all", 0); err != nil || len(sts) != 4 {
		t.Errorf("all without budget = (%d, %v), want 4 strategies", len(sts), err)
	}
}
