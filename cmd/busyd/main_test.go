package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"testing"
	"time"

	"repro/internal/server"
	"repro/internal/workload"
)

// TestBusydEndToEnd stands the daemon up on a random port the way main
// does (server.Serve under a cancellable signal-style context), solves a
// batch over real HTTP, checks every certificate, and drains.
func TestBusydEndToEnd(t *testing.T) {
	srv, err := server.New(server.Config{Workers: 2, MaxInFlight: 16})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- srv.Serve(ctx, ln) }()
	base := "http://" + ln.Addr().String()

	waitHealthy(t, base)

	batch := server.BatchRequest{}
	for seed := int64(1); seed <= 8; seed++ {
		in := workload.Proper(seed, workload.Config{N: 15, G: 3, MaxTime: 400, MaxLen: 60})
		batch.Requests = append(batch.Requests, server.Request{Instance: &in})
	}
	data, err := json.Marshal(batch)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/solve/batch", "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out server.BatchResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != len(batch.Requests) {
		t.Fatalf("got %d results for %d requests", len(out.Results), len(batch.Requests))
	}
	for i, res := range out.Results {
		if res.Error != "" {
			t.Fatalf("request %d failed: %s", i, res.Error)
		}
		if !res.Certified {
			t.Fatalf("request %d not certified: %s", i, res.CertificateError)
		}
	}

	cancel() // SIGTERM equivalent
	select {
	case err := <-served:
		if err != nil {
			t.Fatalf("daemon exited with %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not drain")
	}
}

func waitHealthy(t *testing.T, base string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("daemon never became healthy")
}
