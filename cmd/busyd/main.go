// Command busyd is the busy-time scheduling daemon: an HTTP service
// sitting directly on the Solver API.
//
// Endpoints:
//
//	POST /v1/solve        solve one instance (JSON wire format)
//	POST /v1/solve/batch  solve a batch over the worker pool
//	POST /v1/stream       NDJSON online session: arrivals in, one
//	                      placement event per arrival out, live
//	                      competitive-ratio telemetry, close report;
//	                      ?resume=<session>&seq=<n> continues an
//	                      interrupted journaled session
//	GET  /v1/stream/journal  a session's hash-chained journal (NDJSON)
//	GET  /v1/algorithms   the algorithm registry
//	GET  /healthz         liveness
//	GET  /metrics         plain-text counters (Prometheus exposition)
//	GET  /debug/traces    last served root spans (?min_ms=&algorithm=&limit=)
//	GET  /debug/pprof     profiling (only with -pprof; mutex and block
//	                      profiles need -mutex-profile-fraction /
//	                      -block-profile-rate to be collected at all)
//
// Every response carries the Result.Certificate() verdict and the
// machine assignment, so clients can re-verify schedules locally.
//
// Every served request is traced into a bounded in-memory ring
// (-trace-ring) and the busyd_solve_phase_seconds histograms; a client
// that sends a W3C traceparent header additionally gets the span tree
// echoed in the response body. -slow-solve emits a structured log line
// with the per-phase breakdown for requests above the threshold.
//
// Usage:
//
//	busyd -addr :8080 -workers 0 -max-inflight 64 -max-jobs 10000
//	busyd -addr :8080 -algo first-fit-fast
//	busyd -addr :8080 -journal /var/lib/busyd/journal.ndjson
//
// With -journal, stream sessions survive a daemon crash: restart busyd
// on the same file and clients resume with POST /v1/stream?resume=.
//
// SIGINT/SIGTERM drain gracefully: the listener closes immediately,
// in-flight solves get -drain-timeout to finish.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/journal"
	"repro/internal/server"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		algo         = flag.String("algo", "", "pin a registered algorithm (default: auto dispatch)")
		workers      = flag.Int("workers", 0, "batch worker pool size (0 = GOMAXPROCS)")
		budget       = flag.Int64("budget", 0, "default busy-time budget for max-throughput requests")
		maxInFlight  = flag.Int("max-inflight", 256, "max concurrently admitted requests (0 = unlimited)")
		maxJobs      = flag.Int("max-jobs", 100000, "max jobs per instance (0 = unlimited)")
		maxBatch     = flag.Int("max-batch", 1024, "max requests per batch (0 = unlimited)")
		maxBody      = flag.Int64("max-body-bytes", 8<<20, "max request body bytes")
		drainTimeout = flag.Duration("drain-timeout", 10*time.Second, "graceful shutdown drain bound")
		journalPath  = flag.String("journal", "", "durable stream journal file (default: in-memory, lost on exit)")
		streamBatch  = flag.Int("stream-batch", 0, "stream micro-batch size cap (0 = default)")
		streamWait   = flag.Duration("stream-batch-wait", 0, "stream micro-batch flush deadline (0 = greedy, flush whatever queued)")
		reoptCache   = flag.Int("reopt-cache", 512, "reoptimization cache entries (0 = default 512, negative = disabled)")
		maxSessions  = flag.Int("max-closed-sessions", 4096, "closed stream sessions retained by the in-memory journal (0 = unbounded; ignored with -journal)")
		slowSolve    = flag.Duration("slow-solve", 0, "log a structured slow_solve line with a per-phase breakdown for requests at or above this duration (0 = off)")
		traceRing    = flag.Int("trace-ring", 0, "root spans retained for GET /debug/traces (0 = default 128)")
		pprofOn      = flag.Bool("pprof", false, "serve /debug/pprof (off by default)")
		mutexFrac    = flag.Int("mutex-profile-fraction", 0, "sample 1/n of mutex contention events for /debug/pprof/mutex (0 = off)")
		blockRate    = flag.Int("block-profile-rate", 0, "sample blocking events of >= n ns for /debug/pprof/block (0 = off)")
		quiet        = flag.Bool("quiet", false, "suppress the per-request JSON log on stderr")
	)
	flag.Parse()

	// Contention profiling is opt-in and independent of -pprof mounting
	// the endpoints: the runtime collects either profile only when its
	// rate is set, so the serving path pays nothing by default.
	if *mutexFrac > 0 {
		runtime.SetMutexProfileFraction(*mutexFrac)
	}
	if *blockRate > 0 {
		runtime.SetBlockProfileRate(*blockRate)
	}

	cfg := server.Config{
		Algorithm:       *algo,
		Workers:         *workers,
		Budget:          *budget,
		MaxInFlight:     *maxInFlight,
		MaxJobs:         *maxJobs,
		MaxBatch:        *maxBatch,
		MaxBodyBytes:    *maxBody,
		DrainTimeout:    *drainTimeout,
		StreamBatch:     *streamBatch,
		StreamBatchWait: *streamWait,
		ReoptCache:      *reoptCache,
		SlowSolve:       *slowSolve,
		TraceRing:       *traceRing,
		EnablePprof:     *pprofOn,
	}
	if !*quiet {
		// One JSON line per request / stream event. Stderr: stdout is
		// reserved for the machine-readable address announcement.
		cfg.RequestLog = os.Stderr
	}
	if *journalPath != "" {
		store, err := journal.OpenFileStore(*journalPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "busyd:", err)
			os.Exit(1)
		}
		defer func() {
			// The close error is the last chance to learn a buffered
			// journal write never reached disk; surface it even though
			// the process is exiting.
			if err := store.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "busyd: closing journal:", err)
			}
		}()
		cfg.Journal = store
	} else {
		// The in-memory default is retention-capped: a long-lived daemon
		// must not grow without bound as finished streams accumulate.
		cfg.Journal = journal.NewMemStoreWithRetention(*maxSessions)
	}

	srv, err := server.New(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "busyd:", err)
		os.Exit(1)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Bind before announcing so `-addr 127.0.0.1:0` reports the port the
	// kernel actually chose. The one-line stdout announcement is a
	// machine-readable contract: scripts (CI's stream smoke test) parse
	// the address from it instead of guessing a free port up front.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "busyd:", err)
		os.Exit(1)
	}
	fmt.Printf("busyd: listening on %s\n", ln.Addr())
	log.Printf("busyd: listening on %s (workers=%d max-inflight=%d max-jobs=%d)",
		ln.Addr(), *workers, *maxInFlight, *maxJobs)
	if err := srv.Serve(ctx, ln); err != nil {
		fmt.Fprintln(os.Stderr, "busyd:", err)
		os.Exit(1)
	}
	log.Printf("busyd: drained and stopped")
}
