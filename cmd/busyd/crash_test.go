package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/job"
	"repro/internal/server"
	"repro/internal/workload"
)

// buildBusyd compiles the daemon binary once into dir so the crash test
// exercises the real process boundary (SIGKILL, fsync, restart) rather
// than an in-process cancel.
func buildBusyd(t *testing.T, dir string) string {
	t.Helper()
	bin := filepath.Join(dir, "busyd")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("building busyd: %v\n%s", err, out)
	}
	return bin
}

// startBusyd launches the daemon on a kernel-chosen port with the given
// journal file and returns the process and its base URL, parsed from the
// one-line stdout announcement.
func startBusyd(t *testing.T, bin, journalFile string) (*exec.Cmd, string) {
	t.Helper()
	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-journal", journalFile, "-quiet")
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.Process != nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})
	sc := bufio.NewScanner(stdout)
	if !sc.Scan() {
		cmd.Process.Kill()
		cmd.Wait()
		t.Fatal("busyd exited before announcing its address")
	}
	line := sc.Text()
	const prefix = "busyd: listening on "
	if !strings.HasPrefix(line, prefix) {
		t.Fatalf("unexpected announcement %q", line)
	}
	go io.Copy(io.Discard, stdout)
	base := "http://" + strings.TrimPrefix(line, prefix)
	waitHealthy(t, base)
	return cmd, base
}

func encodeArrivals(t *testing.T, w io.Writer, jobs []job.Job) {
	t.Helper()
	enc := json.NewEncoder(w)
	for _, j := range jobs {
		if err := enc.Encode(server.StreamArrival{ID: j.ID, Start: j.Start(), End: j.End(), Weight: j.Weight}); err != nil {
			t.Fatal(err)
		}
	}
}

// confirmEvents feeds exactly the given arrivals into an open stream and
// blocks until each one's placement event has been emitted — which the
// daemon only does after the arrival is fsynced into the journal. The
// connection is left open: the caller supplies the crash.
func confirmEvents(t *testing.T, base string, open server.StreamOpen, jobs []job.Job) {
	t.Helper()
	pr, pw := io.Pipe()
	req, err := http.NewRequest(http.MethodPost, base+"/v1/stream", pr)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		enc := json.NewEncoder(pw)
		if enc.Encode(open) != nil {
			return
		}
		for _, j := range jobs {
			if enc.Encode(server.StreamArrival{ID: j.ID, Start: j.Start(), End: j.End(), Weight: j.Weight}) != nil {
				return
			}
		}
		// No pw.Close(): EOF would close the journal cleanly.
	}()
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close(); pw.CloseWithError(io.ErrClosedPipe) })
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("stream status %s: %s", resp.Status, body)
	}
	dec := json.NewDecoder(resp.Body)
	seen := 0
	for seen < len(jobs) {
		var ev server.StreamEvent
		if err := dec.Decode(&ev); err != nil {
			t.Fatalf("after %d confirmed events: %v", seen, err)
		}
		switch ev.Type {
		case server.StreamEventOpen:
		case server.StreamEventError:
			t.Fatalf("daemon error: %s", ev.Error)
		default:
			seen++
		}
	}
}

// streamToClose runs a stream (fresh or resumed) to its clean end and
// returns the raw NDJSON close line exactly as the daemon wrote it, plus
// the open event.
func streamToClose(t *testing.T, url string, header *server.StreamOpen, jobs []job.Job) (server.StreamEvent, []byte) {
	t.Helper()
	var body bytes.Buffer
	if header != nil {
		if err := json.NewEncoder(&body).Encode(header); err != nil {
			t.Fatal(err)
		}
	}
	encodeArrivals(t, &body, jobs)
	resp, err := http.Post(url, "application/x-ndjson", &body)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		out, _ := io.ReadAll(resp.Body)
		t.Fatalf("stream status %s: %s", resp.Status, out)
	}
	var openEv server.StreamEvent
	var closeLine []byte
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		var ev server.StreamEvent
		if err := json.Unmarshal(line, &ev); err != nil {
			t.Fatalf("decoding event line %q: %v", line, err)
		}
		switch ev.Type {
		case server.StreamEventOpen:
			openEv = ev
		case server.StreamEventError:
			t.Fatalf("daemon error: %s", ev.Error)
		case server.StreamEventClose:
			closeLine = append([]byte(nil), line...)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if closeLine == nil {
		t.Fatal("stream ended without a close event")
	}
	return openEv, closeLine
}

// TestBusydSigkillResume is the crash-durability e2e: SIGKILL the daemon
// mid-stream, restart it on the same journal file, resume the session,
// and require the close report — certificate chain included — to be
// byte-equal to the same session streamed uninterrupted against a fresh
// daemon and journal.
func TestBusydSigkillResume(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs the daemon binary")
	}
	dir := t.TempDir()
	bin := buildBusyd(t, dir)

	const session = "crash-1"
	in := workload.WeightedArrivals(11, workload.Config{N: 90, G: 4, MaxTime: 600, MaxLen: 50})
	open := server.StreamOpen{G: in.G, Strategy: "online-bestfit", Session: session}
	kill := 31

	// Phase 1: stream the first kill arrivals, confirm their events
	// (journaled + fsynced), then SIGKILL the daemon.
	journalA := filepath.Join(dir, "journal-a.ndjson")
	procA, baseA := startBusyd(t, bin, journalA)
	confirmEvents(t, baseA, open, in.Jobs[:kill])
	if err := procA.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	procA.Wait()

	// Phase 2: restart on the same journal and resume from seq kill.
	_, baseB := startBusyd(t, bin, journalA)
	resumeURL := fmt.Sprintf("%s/v1/stream?resume=%s&seq=%d", baseB, session, kill)
	openEv, closeResumed := streamToClose(t, resumeURL, nil, in.Jobs[kill:])
	if !openEv.Resumed {
		t.Fatal("resumed stream's open event does not say resumed")
	}
	if openEv.Arrivals != kill {
		t.Fatalf("journal recovered %d arrivals, want %d", openEv.Arrivals, kill)
	}

	// Phase 3: the same session uninterrupted, fresh daemon and journal.
	journalB := filepath.Join(dir, "journal-b.ndjson")
	_, baseC := startBusyd(t, bin, journalB)
	_, closeClean := streamToClose(t, baseC+"/v1/stream", &open, in.Jobs)

	if !bytes.Equal(closeResumed, closeClean) {
		t.Errorf("kill+resume close report diverges from uninterrupted run\n resumed: %s\n clean:   %s", closeResumed, closeClean)
	}
}

// TestBusydRefusesCorruptJournal flips one byte in an interior journal
// record and checks the restarted daemon refuses to serve it: durable
// state that fails verification must never be resumed silently.
func TestBusydRefusesCorruptJournal(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs the daemon binary")
	}
	dir := t.TempDir()
	bin := buildBusyd(t, dir)

	const session = "corrupt-1"
	in := workload.Arrivals(13, workload.Config{N: 40, G: 3, MaxTime: 300, MaxLen: 30})
	open := server.StreamOpen{G: in.G, Strategy: "online-firstfit", Session: session}

	journalFile := filepath.Join(dir, "journal.ndjson")
	procA, baseA := startBusyd(t, bin, journalFile)
	confirmEvents(t, baseA, open, in.Jobs[:10])
	if err := procA.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	procA.Wait()

	// Break the JSON structure of an interior line: unlike a torn tail,
	// interior corruption must not be silently truncated away.
	data, err := os.ReadFile(journalFile)
	if err != nil {
		t.Fatal(err)
	}
	first := bytes.IndexByte(data, '\n')
	if first < 0 || first+1 >= len(data) {
		t.Fatalf("journal too short to corrupt: %d bytes", len(data))
	}
	data[first+1] = 'z' // second record no longer starts with '{'
	if err := os.WriteFile(journalFile, data, 0o644); err != nil {
		t.Fatal(err)
	}

	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-journal", journalFile, "-quiet")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	cmd.Stdout = io.Discard
	err = cmd.Run()
	if err == nil {
		t.Fatal("daemon started cleanly on a corrupted journal")
	}
	if !strings.Contains(stderr.String(), "corrupted") {
		t.Errorf("stderr %q does not name the corruption", stderr.String())
	}
}
