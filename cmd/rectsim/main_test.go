package main

import (
	"strings"
	"testing"
)

func TestPickAlgorithms(t *testing.T) {
	all, err := pickAlgorithms("all")
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 3 || all[0] != "bucket-first-fit" {
		t.Errorf("all = %v, want the three 2-D algorithms strongest-first", all)
	}
	for alias, want := range map[string]string{
		"ff2d":   "first-fit-2d",
		"bucket": "bucket-first-fit",
		"naive":  "naive-2d",
	} {
		got, err := pickAlgorithms(alias)
		if err != nil {
			t.Fatalf("%s: %v", alias, err)
		}
		if len(got) != 1 || got[0] != want {
			t.Errorf("%s resolved to %v, want %s", alias, got, want)
		}
	}
	_, err = pickAlgorithms("bogus")
	if err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	if !strings.Contains(err.Error(), "bucket-first-fit") {
		t.Errorf("error does not list registered algorithms: %v", err)
	}
}

func TestBuildInstanceFamilies(t *testing.T) {
	for _, family := range []string{"rects", "fig3"} {
		in, err := buildInstance(family, 20, 4, 2, 1)
		if err != nil {
			t.Fatalf("%s: %v", family, err)
		}
		if err := in.Validate(); err != nil {
			t.Errorf("%s: %v", family, err)
		}
	}
	if _, err := buildInstance("nope", 20, 4, 2, 1); err == nil {
		t.Error("unknown family accepted")
	}
}
