// Command rectsim runs the two-dimensional (Section 3.4) busy-time
// algorithms: random bounded-γ rectangle workloads or the Figure 3
// adversarial family, solved with FirstFit2D, BucketFirstFit, or the
// per-job baseline.
//
// Usage examples:
//
//	rectsim -workload rects -n 60 -g 3 -gamma 8 -alg bucket
//	rectsim -workload fig3 -g 12 -gamma 2 -alg ff2d
//	rectsim -workload fig3 -g 12 -gamma 2 -alg all
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/job"
	"repro/internal/rect"
	"repro/internal/workload"
)

func main() {
	var (
		family = flag.String("workload", "rects", "workload: rects|fig3")
		n      = flag.Int("n", 50, "number of jobs (rects workload)")
		g      = flag.Int("g", 3, "machine capacity")
		gamma  = flag.Int64("gamma", 4, "max γ₁ (rects) / target γ₁ (fig3)")
		seed   = flag.Int64("seed", 1, "random seed (rects workload)")
		alg    = flag.String("alg", "all", "algorithm: ff2d|bucket|naive|all")
	)
	flag.Parse()

	in, err := buildInstance(*family, *n, *g, *gamma, *seed)
	if err != nil {
		fatal(err)
	}
	if err := in.Validate(); err != nil {
		fatal(err)
	}
	fmt.Printf("instance: n=%d g=%d gamma1=%.2f area=%d span=%d LB=%d\n",
		len(in.Jobs), in.G, rect.Gamma(in.Rects(), 1), in.TotalArea(), in.SpanArea(), in.LowerBound())

	runs := map[string]func() (core.RectSchedule, error){
		"ff2d":   func() (core.RectSchedule, error) { return core.FirstFit2D(in), nil },
		"bucket": func() (core.RectSchedule, error) { return core.BucketFirstFitAuto(in) },
		"naive":  func() (core.RectSchedule, error) { return core.NaivePerJob2D(in), nil },
	}
	names := []string{*alg}
	if *alg == "all" {
		names = []string{"ff2d", "bucket", "naive"}
	}
	for _, name := range names {
		run, ok := runs[name]
		if !ok {
			fatal(fmt.Errorf("unknown algorithm %q", name))
		}
		s, err := run()
		if err != nil {
			fatal(err)
		}
		if err := s.Validate(); err != nil {
			fatal(fmt.Errorf("%s produced an invalid schedule: %v", name, err))
		}
		fmt.Printf("%-7s cost=%d machines=%d cost/LB=%.3f\n",
			name, s.Cost(), s.Machines(), float64(s.Cost())/float64(in.LowerBound()))
	}
	if *family == "fig3" {
		predicted := workload.Figure3FirstFitCost(*g, *gamma, 1000, 1)
		fmt.Printf("fig3: Lemma 3.5 predicts FirstFit2D cost %d (opt UB %d)\n",
			predicted, workload.Figure3OptUpperBound(*g, *gamma, 1000, 1))
	}
}

func buildInstance(family string, n, g int, gamma, seed int64) (job.RectInstance, error) {
	switch family {
	case "rects":
		return workload.BoundedGammaRects(seed, workload.Config{N: n, G: g, MaxTime: 300, MaxLen: 80}, gamma), nil
	case "fig3":
		return workload.Figure3(g, gamma, 1000, 1)
	default:
		return job.RectInstance{}, fmt.Errorf("unknown workload %q", family)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rectsim:", err)
	os.Exit(1)
}
