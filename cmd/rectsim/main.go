// Command rectsim runs the two-dimensional (Section 3.4) busy-time
// algorithms: random bounded-γ rectangle workloads or the Figure 3
// adversarial family, solved through the Solver with any registered 2-D
// algorithm.
//
// Usage examples:
//
//	rectsim -workload rects -n 60 -g 3 -gamma 8 -alg bucket
//	rectsim -workload fig3 -g 12 -gamma 2 -alg ff2d
//	rectsim -workload fig3 -g 12 -gamma 2 -alg all
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	busytime "repro"
	"repro/internal/job"
	"repro/internal/rect"
	"repro/internal/workload"
)

func main() {
	var (
		family = flag.String("workload", "rects", "workload: rects|fig3")
		n      = flag.Int("n", 50, "number of jobs (rects workload)")
		g      = flag.Int("g", 3, "machine capacity")
		gamma  = flag.Int64("gamma", 4, "max γ₁ (rects) / target γ₁ (fig3)")
		seed   = flag.Int64("seed", 1, "random seed (rects workload)")
		alg    = flag.String("alg", "all", "algorithm: all|"+strings.Join(busytime.AlgorithmNames(busytime.KindMinBusy2D), "|"))
	)
	flag.Parse()

	in, err := buildInstance(*family, *n, *g, *gamma, *seed)
	if err != nil {
		fatal(err)
	}
	if err := in.Validate(); err != nil {
		fatal(err)
	}
	fmt.Printf("instance: n=%d g=%d gamma1=%.2f area=%d span=%d LB=%d\n",
		len(in.Jobs), in.G, rect.Gamma(in.Rects(), 1), in.TotalArea(), in.SpanArea(), in.LowerBound())

	names, err := pickAlgorithms(*alg)
	if err != nil {
		fatal(err)
	}
	ctx := context.Background()
	for _, name := range names {
		res, err := busytime.NewSolver(busytime.WithAlgorithm(name)).
			Solve(ctx, busytime.Request{Rect: &in})
		if err != nil {
			fatal(err)
		}
		if err := res.Certificate(); err != nil {
			fatal(fmt.Errorf("%s produced an uncertifiable schedule: %v", res.Algorithm, err))
		}
		fmt.Printf("%-16s cost=%d machines=%d cost/LB=%.3f\n",
			res.Algorithm, res.Cost, res.Machines, res.RatioVsBound)
	}
	if *family == "fig3" {
		predicted := workload.Figure3FirstFitCost(*g, *gamma, 1000, 1)
		fmt.Printf("fig3: Lemma 3.5 predicts FirstFit2D cost %d (opt UB %d)\n",
			predicted, workload.Figure3OptUpperBound(*g, *gamma, 1000, 1))
	}
}

// pickAlgorithms resolves -alg through the registry: "all" runs every
// registered polynomial 2-D algorithm strongest-first (the size-capped
// exact-2d oracle is reachable by name only); unknown names report the
// registered list.
func pickAlgorithms(alg string) ([]string, error) {
	if alg == "all" {
		var names []string
		for _, a := range busytime.Algorithms() {
			if a.Kind == busytime.KindMinBusy2D && !a.Oracle {
				names = append(names, a.Name)
			}
		}
		return names, nil
	}
	info, err := busytime.LookupAlgorithmKind(busytime.KindMinBusy2D, alg)
	if err != nil {
		return nil, err
	}
	return []string{info.Name}, nil
}

func buildInstance(family string, n, g int, gamma, seed int64) (job.RectInstance, error) {
	switch family {
	case "rects":
		return workload.BoundedGammaRects(seed, workload.Config{N: n, G: g, MaxTime: 300, MaxLen: 80}, gamma), nil
	case "fig3":
		return workload.Figure3(g, gamma, 1000, 1)
	default:
		return job.RectInstance{}, fmt.Errorf("unknown workload %q", family)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rectsim:", err)
	os.Exit(1)
}
