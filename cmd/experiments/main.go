// Command experiments regenerates every table in EXPERIMENTS.md by running
// the full E1…E18 experiment suite and printing the rendered results.
// E16 is the registry-driven conformance harness: it walks the algorithm
// registry, so a newly registered algorithm appears in its table
// automatically. E17 cross-checks the streaming online sessions against
// the offline replay harness. E18 measures the reoptimization layer:
// warm-started delta solves against solve-from-scratch.
//
// Usage:
//
//	experiments              # run everything
//	experiments -only E5     # run a single experiment
//	experiments -seeds 100   # more instances per configuration
//	experiments -algorithms  # print the algorithm registry and exit
package main

import (
	"flag"
	"fmt"
	"os"

	busytime "repro"
	"repro/internal/experiments"
	"repro/internal/stats"
)

func main() {
	only := flag.String("only", "", "run a single experiment by ID (e.g. E3)")
	seeds := flag.Int("seeds", experiments.Seeds, "random instances per configuration")
	listAlgs := flag.Bool("algorithms", false, "print the algorithm registry table and exit")
	flag.Parse()

	if *listAlgs {
		fmt.Print(algorithmTable())
		return
	}

	runners := map[string]func() experiments.Result{
		"E1":  func() experiments.Result { return experiments.E1(*seeds) },
		"E2":  func() experiments.Result { return experiments.E2(*seeds) },
		"E3":  func() experiments.Result { return experiments.E3(*seeds) },
		"E4":  func() experiments.Result { return experiments.E4(*seeds) },
		"E5":  experiments.E5,
		"E6":  func() experiments.Result { return experiments.E6(min(*seeds, 15)) },
		"E7":  func() experiments.Result { return experiments.E7(*seeds) },
		"E8":  func() experiments.Result { return experiments.E8(min(*seeds, 30)) },
		"E9":  func() experiments.Result { return experiments.E9(*seeds) },
		"E10": func() experiments.Result { return experiments.E10(min(*seeds, 30)) },
		"E11": func() experiments.Result { return experiments.E11(*seeds) },
		"E13": func() experiments.Result { return experiments.E13(min(*seeds, 20)) },
		"E14": func() experiments.Result { return experiments.E14(min(*seeds, 30)) },
		"E15": func() experiments.Result { return experiments.E15(min(*seeds, 30)) },
		"E16": func() experiments.Result { return experiments.E16(min(*seeds, 5)) },
		"E17": func() experiments.Result { return experiments.E17(min(*seeds, 20)) },
		"E18": func() experiments.Result { return experiments.E18(min(*seeds, 10)) },
	}
	order := []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E13", "E14", "E15", "E16", "E17", "E18"}

	if *only != "" {
		run, ok := runners[*only]
		if !ok {
			fmt.Fprintf(os.Stderr, "experiments: unknown id %q (E12 is covered by the unit test suite)\n", *only)
			os.Exit(1)
		}
		fmt.Println(run().String())
		return
	}
	for _, id := range order {
		fmt.Println(runners[id]().String())
	}
	fmt.Println(experiments.BoundTable(10).String())
	fmt.Println("note: E12 (Lemma 3.3 conflicting-triple invariant) is verified by unit tests in internal/core and internal/exact.")
}

// algorithmTable renders the algorithm registry — the same data the
// Solver dispatches on, so the printed table can never drift from the
// implementation.
func algorithmTable() string {
	t := stats.Table{Header: []string{"kind", "algorithm", "classes", "guarantee", "reference"}}
	for _, a := range busytime.Algorithms() {
		classes := "all"
		if len(a.Classes) > 0 {
			classes = ""
			for i, c := range a.Classes {
				if i > 0 {
					classes += "|"
				}
				classes += c.String()
			}
		}
		t.Add(a.Kind.String(), a.Name, classes, a.Guarantee, a.Ref)
	}
	return t.String()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
