// Command verify validates a schedule against its instance: capacity
// feasibility, the Observation 2.1 cost bounds, and (for small instances)
// the exact optimality gap. It consumes the JSON emitted by
// `busysim -json`.
//
// Usage:
//
//	busysim -workload clique -n 12 -g 2 -alg auto -json > out.json
//	verify -in out.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/igraph"
	"repro/internal/job"
)

// input mirrors the busysim -json output shape.
type input struct {
	Algorithm string       `json:"algorithm"`
	Machine   []int        `json:"machine"`
	Instance  job.Instance `json:"instance"`
}

func main() {
	inFile := flag.String("in", "", "schedule JSON produced by busysim -json (default stdin)")
	flag.Parse()

	data, err := readInput(*inFile)
	if err != nil {
		fatal(err)
	}
	var doc input
	if err := json.Unmarshal(data, &doc); err != nil {
		fatal(fmt.Errorf("parsing input: %v", err))
	}
	if err := doc.Instance.Validate(); err != nil {
		fatal(err)
	}
	s := core.Schedule{Instance: doc.Instance, Machine: doc.Machine}
	if err := s.Validate(); err != nil {
		fatal(fmt.Errorf("INVALID schedule: %v", err))
	}

	bounds := core.BoundsOf(doc.Instance)
	cost := s.Cost()
	fmt.Printf("schedule: algorithm=%s class=%s n=%d g=%d\n",
		doc.Algorithm, igraph.Classify(doc.Instance.Jobs), len(doc.Instance.Jobs), doc.Instance.G)
	fmt.Printf("valid: yes\n")
	fmt.Printf("cost=%d machines=%d scheduled=%d/%d\n",
		cost, s.Machines(), s.Throughput(), len(doc.Instance.Jobs))
	fmt.Printf("bounds: lower=%d length=%d within=%v\n",
		bounds.Lower(), bounds.Length, bounds.Contains(cost) || s.Throughput() < len(doc.Instance.Jobs))

	if s.Throughput() == len(doc.Instance.Jobs) && len(doc.Instance.Jobs) <= exact.MaxN {
		opt, err := exact.MinBusyCost(doc.Instance)
		if err == nil {
			fmt.Printf("exact optimum=%d ratio=%.4f\n", opt, float64(cost)/float64(opt))
		}
	}
}

func readInput(path string) ([]byte, error) {
	if path == "" {
		return io.ReadAll(os.Stdin)
	}
	return os.ReadFile(path)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "verify:", err)
	os.Exit(1)
}
