// Command verify validates schedules and algorithms.
//
// In its default mode it validates one schedule against its instance
// through the Solver API's Result.Certificate: schedule validity
// (capacity g respected at every time), agreement of the reported
// statistics with the schedule, and the Observation 2.1 cost bounds —
// plus, for small instances, the exact optimality gap. It consumes the
// JSON emitted by `busysim -json`.
//
// With -conformance it instead runs the registry-driven conformance
// harness (internal/conformance): every registered algorithm — or just
// the one named by -alg — is exercised on seeded instances of its
// declared classes with certificate, lower-bound, oracle-guarantee and
// metamorphic checks; violations are printed as shrunk, reproducible Go
// literals and make the command exit non-zero.
//
// Usage:
//
//	busysim -workload clique -n 12 -g 2 -alg auto -json > out.json
//	verify -in out.json
//	verify -conformance
//	verify -conformance -alg clique-set-cover -seeds 10
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	busytime "repro"
	"repro/internal/conformance"
	"repro/internal/exact"
	"repro/internal/job"
	"repro/internal/registry"
	"repro/internal/stats"
)

// input mirrors the busysim -json output shape.
type input struct {
	Algorithm string       `json:"algorithm"`
	Machine   []int        `json:"machine"`
	Instance  job.Instance `json:"instance"`
}

func main() {
	inFile := flag.String("in", "", "schedule JSON produced by busysim -json (default stdin)")
	conf := flag.Bool("conformance", false, "run the registry-driven conformance harness instead of verifying a schedule")
	algo := flag.String("alg", "", "restrict -conformance to one registered algorithm (canonical name or alias)")
	seeds := flag.Int("seeds", 0, "instances per (algorithm, class, g) in -conformance mode (default harness setting)")
	flag.Parse()

	if *conf {
		runConformance(*algo, *seeds)
		return
	}

	data, err := readInput(*inFile)
	if err != nil {
		fatal(err)
	}
	var doc input
	if err := json.Unmarshal(data, &doc); err != nil {
		fatal(fmt.Errorf("parsing input: %v", err))
	}
	if err := doc.Instance.Validate(); err != nil {
		fatal(err)
	}
	res := busytime.ResultOf(doc.Algorithm, busytime.Schedule{Instance: doc.Instance, Machine: doc.Machine})

	fmt.Printf("schedule: algorithm=%s class=%s n=%d g=%d\n",
		res.Algorithm, res.Class, res.N, doc.Instance.G)
	if err := res.Certificate(); err != nil {
		fmt.Printf("valid: NO\n")
		fatal(fmt.Errorf("INVALID schedule: %v", err))
	}
	fmt.Printf("valid: yes (certificate passed)\n")
	fmt.Printf("cost=%d machines=%d scheduled=%d/%d\n",
		res.Cost, res.Machines, res.Scheduled, res.N)
	fmt.Printf("bounds: lower=%d length=%d ratio-vs-LB=%.4f\n",
		res.LowerBound, doc.Instance.TotalLen(), res.RatioVsBound)

	if res.Scheduled == res.N && res.N <= exact.MaxN {
		opt, err := exact.MinBusyCost(doc.Instance)
		if err == nil {
			fmt.Printf("exact optimum=%d ratio=%.4f\n", opt, float64(res.Cost)/float64(opt))
		}
	}
}

// runConformance drives the conformance harness and renders one row per
// algorithm, exiting non-zero when any violation is found.
func runConformance(algo string, seeds int) {
	cfg := conformance.DefaultConfig()
	if seeds > 0 {
		cfg.Seeds = seeds
	}
	ctx := context.Background()

	var outs []conformance.Outcome
	if algo != "" {
		alg, err := registry.Lookup(algo)
		if err != nil {
			fatal(err)
		}
		out, err := conformance.CheckAlgorithm(ctx, alg, cfg)
		if err != nil {
			fatal(err)
		}
		outs = append(outs, out)
	} else {
		var err error
		outs, err = conformance.CheckAll(ctx, cfg)
		if err != nil {
			fatal(err)
		}
	}

	t := &stats.Table{Header: []string{"algorithm", "kind", "checked", "rejected", "violations"}}
	violations := 0
	for _, o := range outs {
		t.Add(o.Algorithm, o.Kind.String(), o.Checked, o.Rejected, len(o.Violations))
		violations += len(o.Violations)
	}
	fmt.Print(t.String())
	for _, o := range outs {
		for _, v := range o.Violations {
			fmt.Printf("\nVIOLATION %s\n", v)
		}
	}
	if violations > 0 {
		fatal(fmt.Errorf("%d conformance violations", violations))
	}
	fmt.Printf("conformance: all %d algorithms clean\n", len(outs))
}

func readInput(path string) ([]byte, error) {
	if path == "" {
		return io.ReadAll(os.Stdin)
	}
	return os.ReadFile(path)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "verify:", err)
	os.Exit(1)
}
