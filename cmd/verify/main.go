// Command verify validates a schedule against its instance through the
// Solver API's Result.Certificate: schedule validity (capacity g
// respected at every time), agreement of the reported statistics with
// the schedule, and the Observation 2.1 cost bounds — plus, for small
// instances, the exact optimality gap. It consumes the JSON emitted by
// `busysim -json`.
//
// Usage:
//
//	busysim -workload clique -n 12 -g 2 -alg auto -json > out.json
//	verify -in out.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	busytime "repro"
	"repro/internal/exact"
	"repro/internal/job"
)

// input mirrors the busysim -json output shape.
type input struct {
	Algorithm string       `json:"algorithm"`
	Machine   []int        `json:"machine"`
	Instance  job.Instance `json:"instance"`
}

func main() {
	inFile := flag.String("in", "", "schedule JSON produced by busysim -json (default stdin)")
	flag.Parse()

	data, err := readInput(*inFile)
	if err != nil {
		fatal(err)
	}
	var doc input
	if err := json.Unmarshal(data, &doc); err != nil {
		fatal(fmt.Errorf("parsing input: %v", err))
	}
	if err := doc.Instance.Validate(); err != nil {
		fatal(err)
	}
	res := busytime.ResultOf(doc.Algorithm, busytime.Schedule{Instance: doc.Instance, Machine: doc.Machine})

	fmt.Printf("schedule: algorithm=%s class=%s n=%d g=%d\n",
		res.Algorithm, res.Class, res.N, doc.Instance.G)
	if err := res.Certificate(); err != nil {
		fmt.Printf("valid: NO\n")
		fatal(fmt.Errorf("INVALID schedule: %v", err))
	}
	fmt.Printf("valid: yes (certificate passed)\n")
	fmt.Printf("cost=%d machines=%d scheduled=%d/%d\n",
		res.Cost, res.Machines, res.Scheduled, res.N)
	fmt.Printf("bounds: lower=%d length=%d ratio-vs-LB=%.4f\n",
		res.LowerBound, doc.Instance.TotalLen(), res.RatioVsBound)

	if res.Scheduled == res.N && res.N <= exact.MaxN {
		opt, err := exact.MinBusyCost(doc.Instance)
		if err == nil {
			fmt.Printf("exact optimum=%d ratio=%.4f\n", opt, float64(res.Cost)/float64(opt))
		}
	}
}

func readInput(path string) ([]byte, error) {
	if path == "" {
		return io.ReadAll(os.Stdin)
	}
	return os.ReadFile(path)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "verify:", err)
	os.Exit(1)
}
