package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/server"
	"repro/internal/trace"
	"repro/internal/workload"
)

// runLoadgen is the `busysim loadgen` subcommand: it fires concurrent
// solve batches at a running busyd and reports throughput and latency
// percentiles — the replay load generator of the serving layer.
func runLoadgen(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	var (
		addr        = fs.String("addr", "http://127.0.0.1:8080", "busyd base URL")
		batches     = fs.Int("batches", 32, "number of batches to fire")
		batchSize   = fs.Int("batch", 32, "requests per batch")
		concurrency = fs.Int("concurrency", 4, "concurrent in-flight batches")
		family      = fs.String("workload", "proper", "workload family: "+strings.Join(workload.Names(), "|"))
		n           = fs.Int("n", 20, "jobs per instance")
		g           = fs.Int("g", 3, "machine capacity")
		seed        = fs.Int64("seed", 1, "base random seed")
		maxTime     = fs.Int64("maxtime", 400, "workload horizon")
		maxLen      = fs.Int64("maxlen", 60, "maximum job length")
		kind        = fs.String("kind", "min-busy", "request kind: min-busy|max-throughput|online")
		budget      = fs.Int64("budget", 0, "busy-time budget for max-throughput requests")
		algo        = fs.String("algo", "", "pin a batch algorithm (default: auto dispatch)")
		timeoutMS   = fs.Int64("timeout-ms", 0, "per-request solve deadline")
		traceOn     = fs.Bool("trace", false, "send a traceparent per batch and report the slowest solve's phase breakdown")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *batches < 1 || *batchSize < 1 || *concurrency < 1 {
		return fmt.Errorf("loadgen: batches, batch and concurrency must be positive")
	}

	// Pre-build every batch body so the measured loop is pure HTTP + solve.
	bodies := make([][]byte, *batches)
	for b := 0; b < *batches; b++ {
		batch := server.BatchRequest{Algorithm: *algo}
		for r := 0; r < *batchSize; r++ {
			in, err := workload.ByName(*family, *seed+int64(b**batchSize+r), workload.Config{
				N: *n, G: *g, MaxTime: *maxTime, MaxLen: *maxLen,
			})
			if err != nil {
				return err
			}
			inst := in
			batch.Requests = append(batch.Requests, server.Request{
				Kind: *kind, Instance: &inst, Budget: *budget, TimeoutMS: *timeoutMS,
			})
		}
		data, err := json.Marshal(batch)
		if err != nil {
			return err
		}
		bodies[b] = data
	}

	// latencies[b] > 0 only for batches that came back 200 and decoded —
	// rejected or failed round-trips must not dilute the percentiles,
	// and throughput counts only requests the daemon actually solved.
	var (
		latencies   = make([]time.Duration, *batches)
		completed   atomic.Int64 // requests solved and certified
		httpErrs    atomic.Int64
		solveErrs   atomic.Int64
		uncertified atomic.Int64
		next        atomic.Int64
		wg          sync.WaitGroup

		// Under -trace the daemon echoes each request's span tree; the
		// workers race to keep the slowest one for the closing report.
		slowMu    sync.Mutex
		slowTrace *trace.Node
		slowAlg   string
	)
	client := &http.Client{Timeout: 5 * time.Minute}
	start := time.Now()
	for w := 0; w < *concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				b := int(next.Add(1)) - 1
				if b >= *batches {
					return
				}
				t0 := time.Now()
				req, err := http.NewRequest(http.MethodPost, *addr+"/v1/solve/batch", bytes.NewReader(bodies[b]))
				if err != nil {
					httpErrs.Add(1)
					continue
				}
				req.Header.Set("Content-Type", "application/json")
				if *traceOn {
					req.Header.Set(trace.TraceparentHeader, newTraceparent())
				}
				resp, err := client.Do(req)
				if err != nil {
					httpErrs.Add(1)
					continue
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					httpErrs.Add(1)
					continue
				}
				var out server.BatchResponse
				if err := json.Unmarshal(body, &out); err != nil {
					httpErrs.Add(1)
					continue
				}
				latencies[b] = time.Since(t0)
				for _, res := range out.Results {
					switch {
					case res.Error != "":
						solveErrs.Add(1)
					case !res.Certified:
						uncertified.Add(1)
					default:
						completed.Add(1)
					}
					if res.Trace != nil {
						slowMu.Lock()
						if slowTrace == nil || res.Trace.DurationNS > slowTrace.DurationNS {
							slowTrace, slowAlg = res.Trace, res.Algorithm
						}
						slowMu.Unlock()
					}
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	done := make([]time.Duration, 0, len(latencies))
	for _, d := range latencies {
		if d > 0 {
			done = append(done, d)
		}
	}
	sort.Slice(done, func(i, j int) bool { return done[i] < done[j] })
	sent := int64(*batches) * int64(*batchSize)
	fmt.Fprintf(out, "loadgen: %d batches × %d requests, concurrency %d against %s\n",
		*batches, *batchSize, *concurrency, *addr)
	fmt.Fprintf(out, "elapsed=%v sent=%d completed=%d throughput=%.1f req/s (%.1f batches/s)\n",
		elapsed.Round(time.Millisecond), sent, completed.Load(),
		float64(completed.Load())/elapsed.Seconds(),
		float64(len(done))/elapsed.Seconds())
	if len(done) > 0 {
		fmt.Fprintf(out, "batch latency p50=%v p90=%v p99=%v max=%v\n",
			percentile(done, 0.50), percentile(done, 0.90),
			percentile(done, 0.99), done[len(done)-1])
	}
	if *traceOn && slowTrace != nil {
		fmt.Fprintf(out, "slowest solve: %.3fms algorithm=%s phases: %s\n",
			float64(slowTrace.DurationNS)/1e6, slowAlg, phaseBreakdown(slowTrace))
	}
	fmt.Fprintf(out, "errors: http=%d solve=%d uncertified=%d\n",
		httpErrs.Load(), solveErrs.Load(), uncertified.Load())
	if httpErrs.Load() > 0 || solveErrs.Load() > 0 || uncertified.Load() > 0 {
		return fmt.Errorf("loadgen: %d transport errors, %d solve errors, %d uncertified results",
			httpErrs.Load(), solveErrs.Load(), uncertified.Load())
	}
	return nil
}

// percentile returns the p-th percentile of the sorted latency sample
// using the nearest-rank definition: the smallest value with at least
// p·n samples at or below it. Truncating interpolation (the previous
// i = ⌊p·(n−1)⌋) reads the wrong rank for tail percentiles — p99 of 50
// samples landed on index 48, under-reporting the tail by one slot.
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(math.Ceil(p*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}
