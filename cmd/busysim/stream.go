package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	busytime "repro"
	"repro/internal/server"
	"repro/internal/workload"
)

// runStream is the `busysim stream` subcommand: it replays a generated
// workload as a live NDJSON arrival stream against a running busyd
// (POST /v1/stream), prints the daemon's per-event and closing
// competitive-ratio telemetry, and — unless -verify=false — replays the
// same stream through the in-process offline harness and requires the
// daemon's close report to match it byte for byte.
func runStream(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("stream", flag.ContinueOnError)
	var (
		addr     = fs.String("addr", "http://127.0.0.1:8080", "busyd base URL")
		family   = fs.String("workload", "arrivals", "workload family: "+strings.Join(workload.Names(), "|"))
		n        = fs.Int("n", 200, "arrivals per stream")
		g        = fs.Int("g", 4, "machine capacity")
		seed     = fs.Int64("seed", 1, "random seed")
		maxTime  = fs.Int64("maxtime", 2000, "workload horizon")
		maxLen   = fs.Int64("maxlen", 80, "maximum job length")
		strategy = fs.String("strategy", "", "online strategy (default: daemon's strongest)")
		budget   = fs.Int64("budget", 0, "busy-time budget for admission-control strategies")
		events   = fs.Bool("events", false, "print every assignment event, not just the close report")
		verify   = fs.Bool("verify", true, "cross-check the close report against an offline replay")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	in, err := workload.ByName(*family, *seed, workload.Config{N: *n, G: *g, MaxTime: *maxTime, MaxLen: *maxLen})
	if err != nil {
		return err
	}
	// Stream in arrival order: the online model reveals jobs by start time.
	in = in.SortedByStart()

	// Feed the daemon over a pipe so arrivals and assignments genuinely
	// interleave on one connection (chunked request, streamed response).
	pr, pw := io.Pipe()
	req, err := http.NewRequest(http.MethodPost, *addr+"/v1/stream", pr)
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	go func() {
		enc := json.NewEncoder(pw)
		if err := enc.Encode(server.StreamOpen{G: in.G, Strategy: *strategy, Budget: *budget}); err != nil {
			pw.CloseWithError(err)
			return
		}
		for _, j := range in.Jobs {
			if err := enc.Encode(server.StreamArrival{ID: j.ID, Start: j.Start(), End: j.End(), Weight: j.Weight}); err != nil {
				pw.CloseWithError(err)
				return
			}
		}
		pw.Close()
	}()

	client := &http.Client{Timeout: 5 * time.Minute}
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("stream: %s: %s", resp.Status, strings.TrimSpace(string(body)))
	}

	var closeEv *server.StreamEvent
	got := 0
	dec := json.NewDecoder(resp.Body)
	for {
		var ev server.StreamEvent
		if err := dec.Decode(&ev); err != nil {
			if err == io.EOF {
				break
			}
			return fmt.Errorf("stream: decoding event: %v", err)
		}
		switch ev.Type {
		case server.StreamEventError:
			return fmt.Errorf("stream: daemon error after %d events: %s", got, ev.Error)
		case server.StreamEventClose:
			e := ev
			closeEv = &e
		default:
			got++
			if *events {
				fmt.Fprintf(out, "event %d: job %d %s machine=%d opened=%v marginal=%d cost=%d LB=%d ratio=%.4f open=%d\n",
					ev.Seq, ev.JobID, ev.Type, ev.Machine, ev.Opened, ev.Marginal, ev.Cost, ev.LowerBound, ev.Ratio, ev.Open)
			}
		}
	}
	if closeEv == nil {
		return fmt.Errorf("stream: connection ended after %d events without a close report", got)
	}
	if got != len(in.Jobs) {
		return fmt.Errorf("stream: %d arrivals sent but %d events received", len(in.Jobs), got)
	}
	fmt.Fprintf(out, "stream: %d arrivals (workload %s, n=%d g=%d seed=%d) via %s\n",
		closeEv.Arrivals, *family, *n, *g, *seed, *addr)
	fmt.Fprintf(out, "strategy=%s admitted=%d rejected=%d cost=%d machines=%d peak=%d LB=%d ratio=%.4f\n",
		closeEv.Strategy, closeEv.Admitted, closeEv.Rejected, closeEv.Cost,
		closeEv.MachinesOpened, closeEv.PeakOpen, closeEv.LowerBound, closeEv.Ratio)

	if !*verify {
		return nil
	}
	want, err := offlineClose(in, closeEv.Strategy, *budget)
	if err != nil {
		return fmt.Errorf("stream: offline replay: %v", err)
	}
	gotLine, err := json.Marshal(closeEv)
	if err != nil {
		return err
	}
	wantLine, err := json.Marshal(want)
	if err != nil {
		return err
	}
	if !bytes.Equal(gotLine, wantLine) {
		return fmt.Errorf("stream: close report diverges from offline replay\n streamed: %s\n offline:  %s", gotLine, wantLine)
	}
	fmt.Fprintf(out, "verify: streamed close report byte-equal to offline replay\n")
	return nil
}

// offlineClose replays the instance through the named strategy with the
// in-process harness and renders the close event a stream of the same
// arrivals must produce.
func offlineClose(in busytime.Instance, strategy string, budget int64) (server.StreamEvent, error) {
	info, err := busytime.LookupAlgorithmKind(busytime.KindOnline, strategy)
	if err != nil {
		return server.StreamEvent{}, err
	}
	st := info.NewStrategy()
	if budget > 0 {
		bs, ok := st.(busytime.OnlineBudgetSetter)
		if !ok {
			return server.StreamEvent{}, fmt.Errorf("strategy %s does not support a budget", info.Name)
		}
		bs.SetBudget(budget)
	}
	res, err := busytime.ReplayOnline(in, st)
	if err != nil {
		return server.StreamEvent{}, err
	}
	return server.WireStreamClose(res.Summarize()), nil
}
