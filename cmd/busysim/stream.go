package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/job"
	"repro/internal/journal"
	"repro/internal/server"
	"repro/internal/trace"
	"repro/internal/workload"
)

// runStream is the `busysim stream` subcommand: it replays a generated
// workload as a live NDJSON arrival stream against a running busyd
// (POST /v1/stream), prints the daemon's per-event and closing
// competitive-ratio telemetry, and — unless -verify=false — re-derives
// the expected close report (including the journal certificate chain)
// with the in-process offline harness, requires the daemon's to match it
// byte for byte, then fetches the session journal and verifies the hash
// chain independently.
//
// Two extra modes exercise durable sessions end to end:
//
//	-session run1 -kill-after 250   send arrivals until 250 events are
//	                                confirmed, then drop the connection
//	                                (the simulated client crash)
//	-session run1 -resume 250       continue that session: the daemon
//	                                replays the journal tail from seq
//	                                250 and the stream picks up where
//	                                the journal left off
func runStream(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("stream", flag.ContinueOnError)
	var (
		addr      = fs.String("addr", "http://127.0.0.1:8080", "busyd base URL")
		family    = fs.String("workload", "arrivals", "workload family: "+strings.Join(workload.Names(), "|"))
		n         = fs.Int("n", 200, "arrivals per stream")
		g         = fs.Int("g", 4, "machine capacity")
		seed      = fs.Int64("seed", 1, "random seed")
		maxTime   = fs.Int64("maxtime", 2000, "workload horizon")
		maxLen    = fs.Int64("maxlen", 80, "maximum job length")
		strategy  = fs.String("strategy", "", "online strategy (default: daemon's strongest)")
		budget    = fs.Int64("budget", 0, "busy-time budget for admission-control strategies")
		events    = fs.Bool("events", false, "print every assignment event, not just the close report")
		verify    = fs.Bool("verify", true, "cross-check the close report and journal chain against an offline replay")
		traceOn   = fs.Bool("trace", false, "send a traceparent and print the session's stage breakdown from the close report")
		sessionID = fs.String("session", "", "stable session id (required to resume; default: server-generated)")
		killAfter = fs.Int("kill-after", -1, "drop the connection once this many events are confirmed (simulated crash)")
		resumeAt  = fs.Int("resume", -1, "resume the -session stream, replaying journaled events from this seq")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	resume := *resumeAt >= 0
	if resume && *sessionID == "" {
		return fmt.Errorf("stream: -resume needs -session")
	}

	in, err := workload.ByName(*family, *seed, workload.Config{N: *n, G: *g, MaxTime: *maxTime, MaxLen: *maxLen})
	if err != nil {
		return err
	}
	// Stream in arrival order: the online model reveals jobs by start time.
	in = in.SortedByStart()

	url := *addr + "/v1/stream"
	if resume {
		url += "?resume=" + *sessionID + "&seq=" + strconv.Itoa(*resumeAt)
	}

	// Feed the daemon over a pipe so arrivals and assignments genuinely
	// interleave on one connection (chunked request, streamed response).
	// On a resume the sender waits for the open event: the daemon
	// reports how many arrivals its journal already holds, and sending
	// restarts from exactly there.
	pr, pw := io.Pipe()
	req, err := http.NewRequest(http.MethodPost, url, pr)
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	if *traceOn {
		req.Header.Set(trace.TraceparentHeader, newTraceparent())
	}
	startCh := make(chan int, 1)
	if !resume {
		startCh <- 0
	}
	go func() {
		start := <-startCh
		enc := json.NewEncoder(pw)
		if !resume {
			if err := enc.Encode(server.StreamOpen{G: in.G, Strategy: *strategy, Budget: *budget, Session: *sessionID}); err != nil {
				pw.CloseWithError(err)
				return
			}
		}
		limit := len(in.Jobs)
		if *killAfter >= 0 && *killAfter < limit {
			limit = *killAfter
		}
		if start > limit {
			start = limit
		}
		for _, j := range in.Jobs[start:limit] {
			if err := enc.Encode(server.StreamArrival{ID: j.ID, Start: j.Start(), End: j.End(), Weight: j.Weight}); err != nil {
				pw.CloseWithError(err)
				return
			}
		}
		if limit == len(in.Jobs) {
			pw.Close()
		}
		// Under -kill-after the pipe stays open: the "crash" is the
		// reader dropping the connection, not a clean end of stream
		// (which would close the session for good).
	}()

	client := &http.Client{Timeout: 5 * time.Minute}
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("stream: %s: %s", resp.Status, strings.TrimSpace(string(body)))
	}

	var closeEv *server.StreamEvent
	session := *sessionID
	got := 0
	if resume {
		got = *resumeAt // events confirmed before the interruption
	}
	dec := json.NewDecoder(resp.Body)
	for closeEv == nil {
		var ev server.StreamEvent
		if err := dec.Decode(&ev); err != nil {
			if err == io.EOF {
				break
			}
			return fmt.Errorf("stream: decoding event: %v", err)
		}
		switch ev.Type {
		case server.StreamEventOpen:
			session = ev.Session
			if resume {
				fmt.Fprintf(out, "stream: resumed session %s at %d journaled arrivals (replaying from seq %d)\n",
					ev.Session, ev.Arrivals, *resumeAt)
				startCh <- ev.Arrivals
			}
		case server.StreamEventError:
			return fmt.Errorf("stream: daemon error after %d events: %s", got, ev.Error)
		case server.StreamEventClose:
			e := ev
			closeEv = &e
		default:
			got++
			if *events {
				fmt.Fprintf(out, "event %d: job %d %s machine=%d opened=%v marginal=%d cost=%d LB=%d ratio=%.4f open=%d replay=%v\n",
					ev.Seq, ev.JobID, ev.Type, ev.Machine, ev.Opened, ev.Marginal, ev.Cost, ev.LowerBound, ev.Ratio, ev.Open, ev.Replay)
			}
			if *killAfter >= 0 && got >= *killAfter {
				// The simulated crash: drop the connection with the
				// session mid-stream. Every confirmed event is journaled
				// (the daemon appends before it emits), so a later
				// -resume run continues from exactly here.
				fmt.Fprintf(out, "stream: killed connection after %d confirmed events (session %s); resume with -session %s -resume %d\n",
					got, session, session, got)
				return nil
			}
		}
	}
	if closeEv == nil {
		return fmt.Errorf("stream: connection ended after %d events without a close report", got)
	}
	if got != len(in.Jobs) {
		return fmt.Errorf("stream: %d arrivals sent but %d events received", len(in.Jobs), got)
	}
	fmt.Fprintf(out, "stream: %d arrivals (workload %s, n=%d g=%d seed=%d) via %s [session %s]\n",
		closeEv.Arrivals, *family, *n, *g, *seed, *addr, closeEv.Session)
	fmt.Fprintf(out, "strategy=%s admitted=%d rejected=%d cost=%d machines=%d peak=%d LB=%d ratio=%.4f chain=%s\n",
		closeEv.Strategy, closeEv.Admitted, closeEv.Rejected, closeEv.Cost,
		closeEv.MachinesOpened, closeEv.PeakOpen, closeEv.LowerBound, closeEv.Ratio, closeEv.Chain)
	if *traceOn && closeEv.Trace != nil {
		fmt.Fprintf(out, "trace: session %.3fms stages: %s\n",
			float64(closeEv.Trace.DurationNS)/1e6, phaseBreakdown(closeEv.Trace))
	}
	// The echoed trace is serving telemetry riding the close event, not
	// part of the journaled close report — drop it before the byte-level
	// comparison with the offline replay.
	closeEv.Trace = nil

	if !*verify {
		return nil
	}
	want, err := offlineClose(in, *closeEv, *budget)
	if err != nil {
		return fmt.Errorf("stream: offline replay: %v", err)
	}
	gotLine, err := json.Marshal(closeEv)
	if err != nil {
		return err
	}
	wantLine, err := json.Marshal(want)
	if err != nil {
		return err
	}
	if !bytes.Equal(gotLine, wantLine) {
		return fmt.Errorf("stream: close report diverges from offline replay\n streamed: %s\n offline:  %s", gotLine, wantLine)
	}
	fmt.Fprintf(out, "verify: streamed close report byte-equal to offline replay (chain included)\n")
	if err := verifyJournal(client, *addr, *closeEv); err != nil {
		return err
	}
	fmt.Fprintf(out, "verify: fetched journal replays and certifies chain %s\n", closeEv.Chain)
	return nil
}

// offlineClose rebuilds the close event the stream must have produced —
// summary AND certificate chain — by journaling the same arrivals
// through the offline harness (journal.Certify replays and verifies the
// result internally). The strategy comes from the close event, which
// carries the canonical name the daemon resolved.
func offlineClose(in job.Instance, closeEv server.StreamEvent, budget int64) (server.StreamEvent, error) {
	arrivals := make([]journal.Arrival, len(in.Jobs))
	for i, j := range in.Jobs {
		arrivals[i] = journal.ArrivalOf(j)
	}
	p := journal.OpenParams{G: in.G, Strategy: closeEv.Strategy, Budget: budget}
	_, cert, err := journal.Certify(closeEv.Session, p, arrivals)
	if err != nil {
		return server.StreamEvent{}, err
	}
	return server.WireStreamClose(cert.Summary, closeEv.Session, cert.Chain), nil
}

// verifyJournal fetches the session's journal from the daemon and
// verifies the hash chain and replay equivalence locally, independent of
// the close report.
func verifyJournal(client *http.Client, addr string, closeEv server.StreamEvent) error {
	resp, err := client.Get(addr + "/v1/stream/journal?session=" + closeEv.Session)
	if err != nil {
		return fmt.Errorf("stream: fetching journal: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("stream: fetching journal: %s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	recs, err := journal.DecodeRecords(resp.Body)
	if err != nil {
		return fmt.Errorf("stream: decoding journal: %v", err)
	}
	cert, err := journal.Verify(recs)
	if err != nil {
		return fmt.Errorf("stream: journal verification failed: %v", err)
	}
	if cert.Chain != closeEv.Chain {
		return fmt.Errorf("stream: journal chain %s does not match the close report's %s", cert.Chain, closeEv.Chain)
	}
	return nil
}
