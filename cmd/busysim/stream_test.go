package main

import (
	"bytes"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/server"
)

// TestStreamAgainstServer drives the stream subcommand against an
// in-process daemon for each served strategy and requires the built-in
// verification to hold: the daemon's close report must be byte-equal to
// the offline replay of the same seeded stream.
func TestStreamAgainstServer(t *testing.T) {
	s, err := server.New(server.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cases := []struct {
		name string
		args []string
	}{
		{"auto strategy", nil},
		{"firstfit", []string{"-strategy", "online-firstfit"}},
		{"buckets", []string{"-strategy", "buckets"}},
		{"budgeted weighted", []string{"-workload", "weighted", "-strategy", "online-budget", "-budget", "900"}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var out bytes.Buffer
			args := append([]string{"-addr", ts.URL, "-n", "120", "-g", "3", "-seed", "4"}, c.args...)
			if err := runStream(args, &out); err != nil {
				t.Fatalf("stream: %v\n%s", err, out.String())
			}
			report := out.String()
			for _, want := range []string{"strategy=", "ratio=", "byte-equal to offline replay"} {
				if !strings.Contains(report, want) {
					t.Fatalf("report missing %q:\n%s", want, report)
				}
			}
		})
	}
}

// TestStreamRejectionsReported checks a tight budget surfaces rejections
// in the close report (and still verifies against the offline harness).
func TestStreamRejectionsReported(t *testing.T) {
	s, err := server.New(server.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var out bytes.Buffer
	err = runStream([]string{
		"-addr", ts.URL, "-workload", "weighted", "-n", "200", "-g", "3",
		"-seed", "2", "-strategy", "online-budget", "-budget", "400",
	}, &out)
	if err != nil {
		t.Fatalf("stream: %v\n%s", err, out.String())
	}
	if strings.Contains(out.String(), "rejected=0 ") {
		t.Fatalf("tight budget rejected nothing:\n%s", out.String())
	}
}
