package main

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/trace"
)

// newTraceparent mints a fresh W3C traceparent header value — the
// client-side root both subcommands send under -trace to opt into the
// daemon echoing its span tree.
func newTraceparent() string {
	return trace.Traceparent(trace.NewTraceID(), trace.NewSpanID())
}

// structuralNames mirrors the server's grouping spans: their durations
// are their children's, so a phase breakdown skips them.
var structuralNames = map[string]bool{"request": true, "solve": true, "batch": true}

// phaseBreakdown renders one span tree as "phase=duration" pairs sorted
// slowest-first — the shape printed next to the latency percentiles.
func phaseBreakdown(node *trace.Node) string {
	totals := map[string]int64{}
	node.Walk(func(n *trace.Node) {
		if !structuralNames[n.Name] {
			totals[n.Name] += n.DurationNS
		}
	})
	type phase struct {
		name string
		ns   int64
	}
	phases := make([]phase, 0, len(totals))
	for name, ns := range totals {
		phases = append(phases, phase{name, ns})
	}
	sort.Slice(phases, func(i, j int) bool {
		if phases[i].ns != phases[j].ns {
			return phases[i].ns > phases[j].ns
		}
		return phases[i].name < phases[j].name
	})
	parts := make([]string, len(phases))
	for i, p := range phases {
		parts[i] = fmt.Sprintf("%s=%.3fms", p.name, float64(p.ns)/1e6)
	}
	return strings.Join(parts, " ")
}
