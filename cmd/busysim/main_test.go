package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/job"
	"repro/internal/workload"
)

func TestBuildInstanceFamilies(t *testing.T) {
	cfg := workload.Config{N: 8, G: 2, MaxTime: 100, MaxLen: 30}
	for _, family := range workload.Names() {
		in, err := buildInstance("", family, 1, cfg)
		if err != nil {
			t.Fatalf("%s: %v", family, err)
		}
		if len(in.Jobs) != 8 {
			t.Errorf("%s: %d jobs", family, len(in.Jobs))
		}
		if err := in.Validate(); err != nil {
			t.Errorf("%s: %v", family, err)
		}
	}
	if _, err := buildInstance("", "nope", 1, cfg); err == nil {
		t.Error("unknown family accepted")
	}
}

func TestBuildInstanceFromFile(t *testing.T) {
	in := job.NewInstance(2, [2]int64{0, 10}, [2]int64{5, 15})
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "inst.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := buildInstance(path, "ignored", 1, workload.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Jobs) != 2 || got.G != 2 {
		t.Fatalf("loaded %+v", got)
	}
	if _, err := buildInstance(filepath.Join(t.TempDir(), "missing.json"), "", 1, workload.Config{}); err == nil {
		t.Error("missing file accepted")
	}
}

func TestSolveDispatch(t *testing.T) {
	clique := workload.Clique(1, workload.Config{N: 8, G: 2, MaxTime: 100, MaxLen: 30})
	properClique := workload.ProperClique(1, workload.Config{N: 8, G: 2, MaxTime: 100, MaxLen: 30})
	oneSided := workload.OneSided(1, workload.Config{N: 8, G: 2, MaxTime: 100, MaxLen: 30}, true)
	proper := workload.Proper(1, workload.Config{N: 8, G: 2, MaxTime: 100, MaxLen: 30})

	cases := []struct {
		alg    string
		in     job.Instance
		budget int64
		want   string // canonical name the registry resolves to ("" = any)
	}{
		{"auto", clique, -1, ""},
		{"naive", clique, -1, "naive-per-job"},
		{"firstfit", proper, -1, "first-fit"},
		{"bestcut", proper, -1, "best-cut"},
		{"matching", clique, -1, "clique-matching"},
		{"setcover", clique, -1, "clique-set-cover"},
		{"consecutive", properClique, -1, "find-best-consecutive"},
		{"onesided", oneSided, -1, "one-sided-greedy"},
		{"exact", clique, -1, "exact"},
		{"throughput", properClique, 100, ""},
		{"throughput-exact", clique, 100, "exact-throughput"},
		{"greedy-throughput", clique, 100, "greedy-throughput"},
	}
	for _, c := range cases {
		res, err := solve(c.alg, c.in, c.budget, false)
		if err != nil {
			t.Fatalf("%s: %v", c.alg, err)
		}
		if res.Algorithm == "" {
			t.Errorf("%s: empty algorithm name", c.alg)
		}
		if c.want != "" && res.Algorithm != c.want {
			t.Errorf("%s: resolved to %q, want %q", c.alg, res.Algorithm, c.want)
		}
		if err := res.Certificate(); err != nil {
			t.Errorf("%s: %v", c.alg, err)
		}
	}
}

func TestSolveErrors(t *testing.T) {
	in := workload.General(1, workload.Config{N: 6, G: 2, MaxTime: 50, MaxLen: 20})
	_, err := solve("bogus", in, -1, false)
	if err == nil {
		t.Error("unknown algorithm accepted")
	}
	if !strings.Contains(err.Error(), "first-fit") || !strings.Contains(err.Error(), "greedy-throughput") {
		t.Errorf("error does not list the registry: %v", err)
	}
	if _, err := solve("throughput", in, -1, false); err == nil {
		t.Error("throughput without budget accepted")
	}
	if _, err := solve("matching", in, -1, false); err == nil {
		t.Error("matching on non-clique accepted")
	}
}

func TestSolveLocalSearch(t *testing.T) {
	in := workload.General(3, workload.Config{N: 20, G: 3, MaxTime: 150, MaxLen: 50})
	plain, err := solve("auto", in, -1, false)
	if err != nil {
		t.Fatal(err)
	}
	improved, err := solve("auto", in, -1, true)
	if err != nil {
		t.Fatal(err)
	}
	if improved.Cost > plain.Cost {
		t.Errorf("-improve worsened cost: %d > %d", improved.Cost, plain.Cost)
	}
}
