package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/job"
	"repro/internal/workload"
)

func TestBuildInstanceFamilies(t *testing.T) {
	cfg := workload.Config{N: 8, G: 2, MaxTime: 100, MaxLen: 30}
	for _, family := range workload.Names() {
		in, err := buildInstance("", family, 1, cfg)
		if err != nil {
			t.Fatalf("%s: %v", family, err)
		}
		if len(in.Jobs) != 8 {
			t.Errorf("%s: %d jobs", family, len(in.Jobs))
		}
		if err := in.Validate(); err != nil {
			t.Errorf("%s: %v", family, err)
		}
	}
	if _, err := buildInstance("", "nope", 1, cfg); err == nil {
		t.Error("unknown family accepted")
	}
}

func TestBuildInstanceFromFile(t *testing.T) {
	in := job.NewInstance(2, [2]int64{0, 10}, [2]int64{5, 15})
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "inst.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := buildInstance(path, "ignored", 1, workload.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Jobs) != 2 || got.G != 2 {
		t.Fatalf("loaded %+v", got)
	}
	if _, err := buildInstance(filepath.Join(t.TempDir(), "missing.json"), "", 1, workload.Config{}); err == nil {
		t.Error("missing file accepted")
	}
}

func TestRunAlgorithmDispatch(t *testing.T) {
	clique := workload.Clique(1, workload.Config{N: 8, G: 2, MaxTime: 100, MaxLen: 30})
	properClique := workload.ProperClique(1, workload.Config{N: 8, G: 2, MaxTime: 100, MaxLen: 30})
	oneSided := workload.OneSided(1, workload.Config{N: 8, G: 2, MaxTime: 100, MaxLen: 30}, true)
	proper := workload.Proper(1, workload.Config{N: 8, G: 2, MaxTime: 100, MaxLen: 30})

	cases := []struct {
		alg    string
		in     job.Instance
		budget int64
	}{
		{"auto", clique, -1},
		{"naive", clique, -1},
		{"firstfit", proper, -1},
		{"bestcut", proper, -1},
		{"matching", clique, -1},
		{"setcover", clique, -1},
		{"consecutive", properClique, -1},
		{"onesided", oneSided, -1},
		{"exact", clique, -1},
		{"throughput", properClique, 100},
		{"throughput-exact", clique, 100},
	}
	for _, c := range cases {
		s, name, err := runAlgorithm(c.alg, c.in, c.budget)
		if err != nil {
			t.Fatalf("%s: %v", c.alg, err)
		}
		if name == "" {
			t.Errorf("%s: empty algorithm name", c.alg)
		}
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", c.alg, err)
		}
	}
}

func TestRunAlgorithmErrors(t *testing.T) {
	in := workload.General(1, workload.Config{N: 6, G: 2, MaxTime: 50, MaxLen: 20})
	if _, _, err := runAlgorithm("bogus", in, -1); err == nil {
		t.Error("unknown algorithm accepted")
	}
	if _, _, err := runAlgorithm("throughput", in, -1); err == nil {
		t.Error("throughput without budget accepted")
	}
	if _, _, err := runAlgorithm("matching", in, -1); err == nil {
		t.Error("matching on non-clique accepted")
	}
}
