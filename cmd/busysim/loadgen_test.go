package main

import (
	"bytes"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/server"
)

// TestLoadgenAgainstServer drives the loadgen subcommand against an
// in-process daemon and checks the report: all requests certified, no
// transport errors, percentiles printed.
func TestLoadgenAgainstServer(t *testing.T) {
	s, err := server.New(server.Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var out bytes.Buffer
	err = runLoadgen([]string{
		"-addr", ts.URL,
		"-batches", "6", "-batch", "4", "-concurrency", "3",
		"-workload", "proper", "-n", "12", "-g", "3",
	}, &out)
	if err != nil {
		t.Fatalf("loadgen: %v\n%s", err, out.String())
	}
	report := out.String()
	for _, want := range []string{"throughput=", "p50=", "p99=", "errors: http=0 solve=0 uncertified=0"} {
		if !strings.Contains(report, want) {
			t.Fatalf("report missing %q:\n%s", want, report)
		}
	}
}

// TestLoadgenBadFlags checks argument validation.
func TestLoadgenBadFlags(t *testing.T) {
	var out bytes.Buffer
	if err := runLoadgen([]string{"-batches", "0"}, &out); err == nil {
		t.Fatal("zero batches accepted")
	}
	if err := runLoadgen([]string{"-workload", "nope"}, &out); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

// TestPercentileNearestRank pins the nearest-rank definition on known
// samples. The regression case is the tail: with 50 samples, p99 must
// read the maximum (rank 50, index 49) — the old truncating
// interpolation read index 48.
func TestPercentileNearestRank(t *testing.T) {
	if percentile(nil, 0.99) != 0 {
		t.Fatal("empty sample should report 0")
	}

	// samples[i] = (i+1) ms, so the value at rank k is k ms.
	samples := make([]time.Duration, 50)
	for i := range samples {
		samples[i] = time.Duration(i+1) * time.Millisecond
	}
	cases := []struct {
		p    float64
		want time.Duration
	}{
		{0.50, 25 * time.Millisecond}, // ⌈0.50·50⌉ = rank 25
		{0.90, 45 * time.Millisecond}, // ⌈0.90·50⌉ = rank 45
		{0.99, 50 * time.Millisecond}, // ⌈0.99·50⌉ = rank 50: the max
		{1.00, 50 * time.Millisecond},
	}
	for _, c := range cases {
		if got := percentile(samples, c.p); got != c.want {
			t.Errorf("percentile(50 samples, %v) = %v, want %v", c.p, got, c.want)
		}
	}

	// Odd-sized sample: p50 of 5 values is rank 3, the true median.
	odd := []time.Duration{1, 2, 3, 4, 5}
	if got := percentile(odd, 0.50); got != 3 {
		t.Errorf("median of 5 = %v, want 3", got)
	}
}
