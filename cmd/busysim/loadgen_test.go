package main

import (
	"bytes"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/server"
)

// TestLoadgenAgainstServer drives the loadgen subcommand against an
// in-process daemon and checks the report: all requests certified, no
// transport errors, percentiles printed.
func TestLoadgenAgainstServer(t *testing.T) {
	s, err := server.New(server.Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var out bytes.Buffer
	err = runLoadgen([]string{
		"-addr", ts.URL,
		"-batches", "6", "-batch", "4", "-concurrency", "3",
		"-workload", "proper", "-n", "12", "-g", "3",
	}, &out)
	if err != nil {
		t.Fatalf("loadgen: %v\n%s", err, out.String())
	}
	report := out.String()
	for _, want := range []string{"throughput=", "p50=", "p99=", "errors: http=0 solve=0 uncertified=0"} {
		if !strings.Contains(report, want) {
			t.Fatalf("report missing %q:\n%s", want, report)
		}
	}
}

// TestLoadgenBadFlags checks argument validation.
func TestLoadgenBadFlags(t *testing.T) {
	var out bytes.Buffer
	if err := runLoadgen([]string{"-batches", "0"}, &out); err == nil {
		t.Fatal("zero batches accepted")
	}
	if err := runLoadgen([]string{"-workload", "nope"}, &out); err == nil {
		t.Fatal("unknown workload accepted")
	}
}
