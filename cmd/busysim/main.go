// Command busysim generates or loads busy-time scheduling instances, runs
// a chosen algorithm, and reports cost, throughput, machine count and
// validity.
//
// Usage examples:
//
//	busysim -workload clique -n 20 -g 2 -seed 7 -alg auto
//	busysim -workload proper -n 50 -g 4 -alg bestcut -json
//	busysim -in instance.json -alg firstfit
//	busysim -workload proper-clique -n 30 -g 3 -alg throughput -budget 500
//	busysim -workload general -n 12 -g 2 -alg exact
//
// With -json the instance and schedule are printed as JSON for piping into
// other tools; otherwise a human-readable summary is printed.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/igraph"
	"repro/internal/job"
	"repro/internal/render"
	"repro/internal/workload"
)

func main() {
	var (
		workloadName = flag.String("workload", "general", "workload family: "+strings.Join(workload.Names(), "|"))
		n            = flag.Int("n", 20, "number of jobs")
		g            = flag.Int("g", 2, "machine capacity (parallelism parameter)")
		seed         = flag.Int64("seed", 1, "random seed")
		maxTime      = flag.Int64("maxtime", 200, "workload horizon")
		maxLen       = flag.Int64("maxlen", 50, "maximum job length")
		alg          = flag.String("alg", "auto", "algorithm: auto|naive|firstfit|bestcut|matching|setcover|consecutive|onesided|exact|throughput|throughput-exact")
		budget       = flag.Int64("budget", -1, "busy-time budget for throughput algorithms")
		inFile       = flag.String("in", "", "load instance JSON instead of generating")
		outJSON      = flag.Bool("json", false, "emit JSON output")
		gantt        = flag.Bool("gantt", false, "draw an ASCII Gantt chart of the schedule")
		width        = flag.Int("width", 80, "Gantt chart width in columns")
		dump         = flag.Bool("dump", false, "print the instance JSON and exit without solving")
	)
	flag.Parse()

	in, err := buildInstance(*inFile, *workloadName, *seed, workload.Config{N: *n, G: *g, MaxTime: *maxTime, MaxLen: *maxLen})
	if err != nil {
		fatal(err)
	}
	if err := in.Validate(); err != nil {
		fatal(err)
	}
	if *dump {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(in); err != nil {
			fatal(err)
		}
		return
	}

	s, name, err := runAlgorithm(*alg, in, *budget)
	if err != nil {
		fatal(err)
	}
	if err := s.Validate(); err != nil {
		fatal(fmt.Errorf("algorithm %s produced an invalid schedule: %v", name, err))
	}

	if *outJSON {
		emitJSON(in, s, name)
		return
	}
	emitText(in, s, name)
	if *gantt {
		fmt.Print(render.Gantt(s, *width))
	}
}

func buildInstance(path, family string, seed int64, cfg workload.Config) (job.Instance, error) {
	if path != "" {
		data, err := os.ReadFile(path)
		if err != nil {
			return job.Instance{}, err
		}
		var in job.Instance
		if err := json.Unmarshal(data, &in); err != nil {
			return job.Instance{}, fmt.Errorf("parsing %s: %v", path, err)
		}
		return in, nil
	}
	return workload.ByName(family, seed, cfg)
}

func runAlgorithm(alg string, in job.Instance, budget int64) (core.Schedule, string, error) {
	needBudget := func() (int64, error) {
		if budget < 0 {
			return 0, fmt.Errorf("algorithm %q needs -budget", alg)
		}
		return budget, nil
	}
	switch alg {
	case "auto":
		s, name := core.MinBusyAuto(in)
		return s, name, nil
	case "naive":
		return core.NaivePerJob(in), "naive", nil
	case "firstfit":
		return core.FirstFit(in), "firstfit", nil
	case "bestcut":
		s, err := core.BestCut(in)
		return s, "bestcut", err
	case "matching":
		s, err := core.CliqueMatching(in)
		return s, "matching", err
	case "setcover":
		s, err := core.CliqueSetCover(in)
		return s, "setcover", err
	case "consecutive":
		s, err := core.FindBestConsecutive(in)
		return s, "consecutive", err
	case "onesided":
		s, err := core.OneSidedGreedy(in)
		return s, "onesided", err
	case "exact":
		s, err := exact.MinBusy(in)
		return s, "exact", err
	case "throughput":
		b, err := needBudget()
		if err != nil {
			return core.Schedule{}, "", err
		}
		s, name := core.ThroughputAuto(in, b)
		return s, name, nil
	case "throughput-exact":
		b, err := needBudget()
		if err != nil {
			return core.Schedule{}, "", err
		}
		s, err := exact.MaxThroughput(in, b)
		return s, "throughput-exact", err
	default:
		return core.Schedule{}, "", fmt.Errorf("unknown algorithm %q", alg)
	}
}

func emitText(in job.Instance, s core.Schedule, name string) {
	fmt.Printf("instance: n=%d g=%d class=%s len=%d span=%d LB=%d\n",
		len(in.Jobs), in.G, igraph.Classify(in.Jobs), in.TotalLen(), in.Span(), in.LowerBound())
	fmt.Printf("algorithm: %s\n", name)
	fmt.Printf("cost=%d machines=%d scheduled=%d/%d saving=%d\n",
		s.Cost(), s.Machines(), s.Throughput(), len(in.Jobs), s.Saving())
}

type output struct {
	Algorithm string       `json:"algorithm"`
	Class     string       `json:"class"`
	Cost      int64        `json:"cost"`
	Machines  int          `json:"machines"`
	Scheduled int          `json:"scheduled"`
	N         int          `json:"n"`
	Machine   []int        `json:"machine"`
	Instance  job.Instance `json:"instance"`
}

func emitJSON(in job.Instance, s core.Schedule, name string) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(output{
		Algorithm: name,
		Class:     igraph.Classify(in.Jobs).String(),
		Cost:      s.Cost(),
		Machines:  s.Machines(),
		Scheduled: s.Throughput(),
		N:         len(in.Jobs),
		Machine:   s.CompactMachines().Machine,
		Instance:  in,
	}); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "busysim:", err)
	os.Exit(1)
}
