// Command busysim generates or loads busy-time scheduling instances, runs
// a chosen algorithm through the Solver API, and reports cost,
// throughput, machine count and validity.
//
// Usage examples:
//
//	busysim -workload clique -n 20 -g 2 -seed 7 -alg auto
//	busysim -workload proper -n 50 -g 4 -alg best-cut -json
//	busysim -in instance.json -alg first-fit
//	busysim -workload proper-clique -n 30 -g 3 -alg throughput -budget 500
//	busysim -workload general -n 12 -g 2 -alg exact
//
// The loadgen subcommand replays generated batches against a running
// busyd daemon and reports throughput and latency percentiles:
//
//	busysim loadgen -addr http://127.0.0.1:8080 -batches 64 -batch 32 -concurrency 8
//
// The stream subcommand replays a workload as a live NDJSON arrival
// stream against busyd's POST /v1/stream, prints the daemon's live
// competitive-ratio telemetry, and cross-checks the close report against
// an offline replay of the same stream:
//
//	busysim stream -addr http://127.0.0.1:8080 -workload weighted -n 500 -g 4 -strategy online-budget -budget 2000
//
// -alg accepts any registered algorithm name or alias (the historical
// short spellings keep working), plus "auto" (MinBusy dispatch) and
// "throughput" (MaxThroughput dispatch, needs -budget). An unknown name
// lists the registry. With -json the instance and schedule are printed
// as JSON for piping into other tools (cmd/verify consumes it);
// otherwise a human-readable summary is printed.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	busytime "repro"
	"repro/internal/job"
	"repro/internal/render"
	"repro/internal/workload"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "loadgen" {
		if err := runLoadgen(os.Args[2:], os.Stdout); err != nil {
			fatal(err)
		}
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "stream" {
		if err := runStream(os.Args[2:], os.Stdout); err != nil {
			fatal(err)
		}
		return
	}
	var (
		workloadName = flag.String("workload", "general", "workload family: "+strings.Join(workload.Names(), "|"))
		n            = flag.Int("n", 20, "number of jobs")
		g            = flag.Int("g", 2, "machine capacity (parallelism parameter)")
		seed         = flag.Int64("seed", 1, "random seed")
		maxTime      = flag.Int64("maxtime", 200, "workload horizon")
		maxLen       = flag.Int64("maxlen", 50, "maximum job length")
		alg          = flag.String("alg", "auto", "algorithm: auto|throughput|<registered name or alias>")
		budget       = flag.Int64("budget", -1, "busy-time budget for throughput algorithms")
		localSearch  = flag.Bool("improve", false, "hill-climb the schedule after solving")
		inFile       = flag.String("in", "", "load instance JSON instead of generating")
		outJSON      = flag.Bool("json", false, "emit JSON output")
		gantt        = flag.Bool("gantt", false, "draw an ASCII Gantt chart of the schedule")
		width        = flag.Int("width", 80, "Gantt chart width in columns")
		dump         = flag.Bool("dump", false, "print the instance JSON and exit without solving")
	)
	flag.Parse()

	in, err := buildInstance(*inFile, *workloadName, *seed, workload.Config{N: *n, G: *g, MaxTime: *maxTime, MaxLen: *maxLen})
	if err != nil {
		fatal(err)
	}
	if err := in.Validate(); err != nil {
		fatal(err)
	}
	if *dump {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(in); err != nil {
			fatal(err)
		}
		return
	}

	res, err := solve(*alg, in, *budget, *localSearch)
	if err != nil {
		fatal(err)
	}
	if err := res.Certificate(); err != nil {
		fatal(fmt.Errorf("algorithm %s produced an uncertifiable schedule: %v", res.Algorithm, err))
	}

	if *outJSON {
		emitJSON(in, res)
		return
	}
	emitText(in, res)
	if *gantt {
		fmt.Print(render.Gantt(res.Schedule, *width))
	}
}

func buildInstance(path, family string, seed int64, cfg workload.Config) (job.Instance, error) {
	if path != "" {
		data, err := os.ReadFile(path)
		if err != nil {
			return job.Instance{}, err
		}
		var in job.Instance
		if err := json.Unmarshal(data, &in); err != nil {
			return job.Instance{}, fmt.Errorf("parsing %s: %v", path, err)
		}
		return in, nil
	}
	return workload.ByName(family, seed, cfg)
}

// solve maps the -alg flag onto a Solver run: "auto" and "throughput"
// use auto dispatch for their kinds, anything else resolves through the
// algorithm registry (which reports the full list on unknown names).
func solve(alg string, in job.Instance, budget int64, localSearch bool) (busytime.Result, error) {
	req := busytime.Request{Instance: in}
	var opts []busytime.SolverOption
	switch alg {
	case "auto":
		// MinBusy auto dispatch: no pinned algorithm.
	case "throughput":
		req.Kind = busytime.KindMaxThroughput
	default:
		info, err := lookupEither(alg)
		if err != nil {
			return busytime.Result{}, err
		}
		req.Kind = info.Kind
		opts = append(opts, busytime.WithAlgorithm(info.Name))
	}
	if req.Kind == busytime.KindMaxThroughput {
		if budget < 0 {
			return busytime.Result{}, fmt.Errorf("algorithm %q needs -budget", alg)
		}
		req.Budget = budget
	}
	if localSearch {
		opts = append(opts, busytime.WithLocalSearch(0))
	}
	return busytime.NewSolver(opts...).Solve(context.Background(), req)
}

// lookupEither resolves a name against the MinBusy registry first, then
// MaxThroughput, so both kinds' algorithms are reachable from one flag.
func lookupEither(name string) (busytime.AlgorithmInfo, error) {
	if info, err := busytime.LookupAlgorithmKind(busytime.KindMinBusy, name); err == nil {
		return info, nil
	}
	info, err := busytime.LookupAlgorithmKind(busytime.KindMaxThroughput, name)
	if err == nil {
		return info, nil
	}
	return busytime.AlgorithmInfo{}, fmt.Errorf("unknown algorithm %q; available: auto throughput %s %s",
		name,
		strings.Join(busytime.AlgorithmNames(busytime.KindMinBusy), " "),
		strings.Join(busytime.AlgorithmNames(busytime.KindMaxThroughput), " "))
}

func emitText(in job.Instance, res busytime.Result) {
	fmt.Printf("instance: n=%d g=%d class=%s len=%d span=%d LB=%d\n",
		res.N, in.G, res.Class, in.TotalLen(), in.Span(), res.LowerBound)
	fmt.Printf("algorithm: %s (%v)\n", res.Algorithm, res.Elapsed.Round(1000))
	fmt.Printf("cost=%d machines=%d scheduled=%d/%d saving=%d ratio-vs-LB=%.3f\n",
		res.Cost, res.Machines, res.Scheduled, res.N, res.Schedule.Saving(), res.RatioVsBound)
}

type output struct {
	Algorithm    string       `json:"algorithm"`
	Class        string       `json:"class"`
	Cost         int64        `json:"cost"`
	Machines     int          `json:"machines"`
	Scheduled    int          `json:"scheduled"`
	N            int          `json:"n"`
	LowerBound   int64        `json:"lower_bound"`
	RatioVsBound float64      `json:"ratio_vs_bound"`
	ElapsedNS    int64        `json:"elapsed_ns"`
	Machine      []int        `json:"machine"`
	Instance     job.Instance `json:"instance"`
}

func emitJSON(in job.Instance, res busytime.Result) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(output{
		Algorithm:    res.Algorithm,
		Class:        res.Class.String(),
		Cost:         res.Cost,
		Machines:     res.Machines,
		Scheduled:    res.Scheduled,
		N:            res.N,
		LowerBound:   res.LowerBound,
		RatioVsBound: res.RatioVsBound,
		ElapsedNS:    res.Elapsed.Nanoseconds(),
		Machine:      res.Schedule.CompactMachines().Machine,
		Instance:     in,
	}); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "busysim:", err)
	os.Exit(1)
}
