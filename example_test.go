package busytime_test

import (
	"fmt"

	busytime "repro"
)

// Schedule a proper clique instance: the dispatcher selects the optimal
// O(n·g) dynamic program of Theorem 3.2.
func ExampleMinBusy() {
	in := busytime.NewInstance(2,
		[2]int64{0, 10},
		[2]int64{2, 12},
		[2]int64{4, 14},
		[2]int64{6, 16},
	)
	s, algorithm := busytime.MinBusy(in)
	fmt.Println(algorithm)
	fmt.Println("cost:", s.Cost())
	fmt.Println("machines:", s.Machines())
	// Output:
	// find-best-consecutive
	// cost: 24
	// machines: 2
}

// Budgeted throughput on the same instance: with busy-time budget 12 only
// one machine's worth of jobs fits.
func ExampleMaxThroughput() {
	in := busytime.NewInstance(2,
		[2]int64{0, 10},
		[2]int64{2, 12},
		[2]int64{4, 14},
		[2]int64{6, 16},
	)
	s, algorithm := busytime.MaxThroughput(in, 12)
	fmt.Println(algorithm)
	fmt.Println("scheduled:", s.Throughput(), "cost:", s.Cost())
	// Output:
	// most-throughput-consecutive
	// scheduled: 2 cost: 12
}

// Clique instances with g = 2 are solved exactly by maximum-weight
// matching on the overlap graph (Lemma 3.1).
func ExampleCliqueMatching() {
	in := busytime.NewInstance(2,
		[2]int64{0, 100}, // long job
		[2]int64{40, 60}, // nested short jobs all overlap it
		[2]int64{45, 65},
		[2]int64{50, 70},
	)
	s, err := busytime.CliqueMatching(in)
	if err != nil {
		panic(err)
	}
	fmt.Println("cost:", s.Cost())
	// Output:
	// cost: 125
}

// Instance classes drive algorithm dispatch.
func ExampleClassify() {
	oneSided := busytime.NewInstance(2, [2]int64{0, 5}, [2]int64{0, 9})
	nested := busytime.NewInstance(2, [2]int64{0, 9}, [2]int64{2, 5})
	fmt.Println(busytime.Classify(oneSided.Jobs))
	fmt.Println(busytime.Classify(nested.Jobs))
	// Output:
	// one-sided-clique
	// clique
}
