// Benchmarks regenerating every experiment of EXPERIMENTS.md (one bench
// per paper table/figure, named after the experiment index) plus scaling
// benches documenting the implemented complexities.
//
// Run with:
//
//	go test -bench=. -benchmem
package busytime_test

import (
	"fmt"
	"testing"

	busytime "repro"
	"repro/internal/core"
	"repro/internal/demand"
	"repro/internal/exact"
	"repro/internal/experiments"
	"repro/internal/matching"
	"repro/internal/topology/ring"
	"repro/internal/workload"
)

// E1 — Lemma 3.1: clique g=2 exact matching.
func BenchmarkE1CliqueMatching(b *testing.B) {
	in := workload.Clique(1, workload.Config{N: 100, G: 2, MaxTime: 1000, MaxLen: 300})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := busytime.CliqueMatching(in); err != nil {
			b.Fatal(err)
		}
	}
}

// E2 — Lemma 3.2: clique set-cover approximation.
func BenchmarkE2CliqueSetCover(b *testing.B) {
	in := workload.Clique(1, workload.Config{N: 30, G: 3, MaxTime: 1000, MaxLen: 300})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := busytime.CliqueSetCover(in); err != nil {
			b.Fatal(err)
		}
	}
}

// E3 — Theorem 3.1: BestCut on proper instances.
func BenchmarkE3BestCut(b *testing.B) {
	in := workload.Proper(1, workload.Config{N: 1000, G: 4, MaxTime: 10000, MaxLen: 300})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := busytime.BestCut(in); err != nil {
			b.Fatal(err)
		}
	}
}

// E4 — Theorem 3.2: proper clique MinBusy DP.
func BenchmarkE4ProperCliqueDP(b *testing.B) {
	in := workload.ProperClique(1, workload.Config{N: 1000, G: 4, MaxTime: 10000, MaxLen: 300})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := busytime.FindBestConsecutive(in); err != nil {
			b.Fatal(err)
		}
	}
}

// E5 — Figure 3 / Lemma 3.5: FirstFit2D on the adversarial family.
func BenchmarkE5Fig3LowerBound(b *testing.B) {
	in, err := workload.Figure3(12, 2, 1000, 1)
	if err != nil {
		b.Fatal(err)
	}
	want := workload.Figure3FirstFitCost(12, 2, 1000, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := busytime.FirstFit2D(in)
		if s.Cost() != want {
			b.Fatalf("cost %d, prediction %d", s.Cost(), want)
		}
	}
}

// E6 — Theorem 3.3: BucketFirstFit on bounded-γ rectangles.
func BenchmarkE6BucketFirstFit(b *testing.B) {
	in := workload.BoundedGammaRects(1, workload.Config{N: 200, G: 4, MaxTime: 1000, MaxLen: 100}, 16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := busytime.BucketFirstFitAuto(in); err != nil {
			b.Fatal(err)
		}
	}
}

// E7 — Theorem 4.1: clique throughput 4-approximation.
func BenchmarkE7CliqueThroughput(b *testing.B) {
	in := workload.Clique(1, workload.Config{N: 200, G: 3, MaxTime: 1000, MaxLen: 300})
	budget := in.TotalLen() / 4
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := busytime.CliqueThroughput(in, budget); err != nil {
			b.Fatal(err)
		}
	}
}

// E8 — Theorem 4.2: proper clique throughput DP (and weighted variant).
func BenchmarkE8ThroughputDP(b *testing.B) {
	in := workload.ProperClique(1, workload.Config{N: 300, G: 3, MaxTime: 3000, MaxLen: 200})
	budget := in.TotalLen() / 3
	b.Run("unweighted", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := busytime.MostThroughputConsecutive(in, budget); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("weighted", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := busytime.MostWeightConsecutive(in, budget); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// E9 — Observation 2.1 bounds: the auto dispatcher on general workloads.
func BenchmarkE9Bounds(b *testing.B) {
	in := workload.General(1, workload.Config{N: 500, G: 4, MaxTime: 5000, MaxLen: 300})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s, _ := busytime.MinBusy(in)
		if s.Cost() < in.LowerBound() {
			b.Fatal("cost below lower bound")
		}
	}
}

// E10 — Proposition 2.2: MinBusy via MaxThroughput binary search.
func BenchmarkE10Reduction(b *testing.B) {
	in := workload.ProperClique(1, workload.Config{N: 200, G: 3, MaxTime: 2000, MaxLen: 150})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := busytime.MinBusyViaThroughput(in, busytime.MostThroughputConsecutive); err != nil {
			b.Fatal(err)
		}
	}
}

// E11 — Observation 3.1 / Proposition 4.1: one-sided exact algorithms.
func BenchmarkE11OneSided(b *testing.B) {
	in := workload.OneSided(1, workload.Config{N: 1000, G: 5, MaxTime: 5000, MaxLen: 400}, true)
	budget := in.TotalLen() / 2
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := busytime.OneSidedGreedy(in); err != nil {
			b.Fatal(err)
		}
		if _, err := core.OneSidedThroughput(in, budget); err != nil {
			b.Fatal(err)
		}
	}
}

// E13 — Section 5 extensions: ring FirstFit and demand-aware FirstFit.
func BenchmarkE13Extensions(b *testing.B) {
	b.Run("ring-firstfit", func(b *testing.B) {
		in := ring.Instance{C: 1000, G: 4}
		for i := 0; i < 150; i++ {
			v := int64(i)
			in.Jobs = append(in.Jobs, ring.Job{
				ID:     i,
				Arc:    ring.Arc{Start: (v * 97) % 1000, Length: 1 + (v*53)%400},
				TStart: (v * 31) % 200,
				TEnd:   (v*31)%200 + 1 + (v*17)%100,
			})
		}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ring.FirstFit(in)
		}
	})
	b.Run("demand-firstfit", func(b *testing.B) {
		base := workload.General(1, workload.Config{N: 300, G: 4, MaxTime: 3000, MaxLen: 200})
		in := workload.WithDemands(2, base, 3)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			demand.FirstFit(in)
		}
	})
}

// BenchmarkExperimentSuite times the full table regeneration (what
// cmd/experiments does), one experiment per sub-bench with reduced seeds.
func BenchmarkExperimentSuite(b *testing.B) {
	subs := []struct {
		name string
		run  func()
	}{
		{"E1", func() { experiments.E1(5) }},
		{"E2", func() { experiments.E2(5) }},
		{"E3", func() { experiments.E3(5) }},
		{"E4", func() { experiments.E4(5) }},
		{"E5", func() { experiments.E5() }},
		{"E7", func() { experiments.E7(5) }},
		{"E8", func() { experiments.E8(5) }},
	}
	for _, s := range subs {
		b.Run(s.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s.run()
			}
		})
	}
}

// Scaling benches: document the implemented complexity of each major
// algorithm across instance sizes.

func BenchmarkScaleBestCut(b *testing.B) {
	for _, n := range []int{100, 1000, 10000} {
		in := workload.Proper(1, workload.Config{N: n, G: 4, MaxTime: int64(n) * 10, MaxLen: 300})
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := busytime.BestCut(in); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkScaleProperCliqueDP(b *testing.B) {
	for _, n := range []int{100, 1000, 10000} {
		in := workload.ProperClique(1, workload.Config{N: n, G: 4, MaxTime: int64(n) * 10, MaxLen: 300})
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := busytime.FindBestConsecutive(in); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkScaleThroughputDP(b *testing.B) {
	for _, n := range []int{50, 200, 800} {
		in := workload.ProperClique(1, workload.Config{N: n, G: 3, MaxTime: int64(n) * 10, MaxLen: 200})
		budget := in.TotalLen() / 3
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := busytime.MostThroughputConsecutive(in, budget); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkScaleMatching(b *testing.B) {
	for _, n := range []int{20, 60, 140} {
		in := workload.Clique(1, workload.Config{N: n, G: 2, MaxTime: 1000, MaxLen: 300})
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := busytime.CliqueMatching(in); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkScaleBlossomRaw(b *testing.B) {
	for _, n := range []int{16, 48, 96} {
		var edges []matching.Edge
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				edges = append(edges, matching.Edge{U: i, V: j, Weight: int64((i*j)%97 + 1)})
			}
		}
		b.Run(fmt.Sprintf("K%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				matching.Max(n, edges)
			}
		})
	}
}

func BenchmarkScaleFirstFit(b *testing.B) {
	for _, n := range []int{100, 1000, 4000} {
		in := workload.General(1, workload.Config{N: n, G: 4, MaxTime: int64(n) * 5, MaxLen: 200})
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				busytime.FirstFit(in)
			}
		})
	}
}

func BenchmarkScaleFirstFitFast(b *testing.B) {
	for _, n := range []int{1000, 4000} {
		in := workload.General(1, workload.Config{N: n, G: 4, MaxTime: int64(n) * 5, MaxLen: 200})
		b.Run(fmt.Sprintf("linear/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				busytime.FirstFit(in)
			}
		})
		b.Run(fmt.Sprintf("treap/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				busytime.FirstFitFast(in)
			}
		})
	}
}

// E15 — local-search post-optimization.
func BenchmarkE15LocalSearch(b *testing.B) {
	in := workload.General(1, workload.Config{N: 200, G: 3, MaxTime: 1500, MaxLen: 120})
	base := busytime.FirstFit(in)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := busytime.ImproveSchedule(base, 0)
		if s.Cost() > base.Cost() {
			b.Fatal("local search worsened the schedule")
		}
	}
}

func BenchmarkScaleExactOracle(b *testing.B) {
	for _, n := range []int{10, 14, 17} {
		in := workload.General(1, workload.Config{N: n, G: 3, MaxTime: 100, MaxLen: 40})
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := exact.MinBusyCost(in); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkScaleUnionArea(b *testing.B) {
	for _, n := range []int{100, 400, 1600} {
		in := workload.BoundedGammaRects(1, workload.Config{N: n, G: 4, MaxTime: 2000, MaxLen: 200}, 8)
		rects := in.Rects()
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = in.SpanArea()
			}
			_ = rects
		})
	}
}
