package busytime_test

import (
	"context"
	"testing"

	busytime "repro"
)

// BenchmarkSolverDispatch measures the full Solver path — registry
// lookup, class dispatch, result assembly — against the direct facade
// call it replaced. CI tracks this pair: the Solver's overhead must stay
// within noise of the direct call, since dispatch runs once per request
// while the algorithm dominates.
func BenchmarkSolverDispatch(b *testing.B) {
	in := busytime.GenerateProper(1, busytime.WorkloadConfig{N: 200, G: 4, MaxTime: 2000, MaxLen: 100})
	solver := busytime.NewSolver()
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := solver.Solve(ctx, busytime.Request{Instance: in})
		if err != nil {
			b.Fatal(err)
		}
		if res.Cost == 0 {
			b.Fatal("zero cost")
		}
	}
}

// BenchmarkSolverDispatchDirect is the baseline: the deprecated MinBusy
// wrapper calling core dispatch with no registry or Result assembly.
func BenchmarkSolverDispatchDirect(b *testing.B) {
	in := busytime.GenerateProper(1, busytime.WorkloadConfig{N: 200, G: 4, MaxTime: 2000, MaxLen: 100})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, _ := busytime.MinBusy(in)
		if s.Cost() == 0 {
			b.Fatal("zero cost")
		}
	}
}

// batchRequests builds the 64-instance batch shared by the SolveBatch
// benchmarks: large enough that the ≥ 32-instance acceptance comparison
// holds, varied seeds so no two requests are identical.
func batchRequests(n int) []busytime.Request {
	reqs := make([]busytime.Request, n)
	for i := range reqs {
		reqs[i] = busytime.Request{Instance: busytime.GenerateProper(int64(i+1),
			busytime.WorkloadConfig{N: 200, G: 4, MaxTime: 2000, MaxLen: 100})}
	}
	return reqs
}

// BenchmarkSolveBatch measures the batching path: one SolveBatch call
// sharding 64 requests across the worker pool. CI uploads this next to
// BenchmarkSolveSequential; batching must beat N sequential Solve calls
// on ≥ 32-instance batches.
func BenchmarkSolveBatch(b *testing.B) {
	reqs := batchRequests(64)
	solver := busytime.NewSolver(busytime.WithParallelism(0))
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results, err := solver.SolveBatch(ctx, reqs)
		if err != nil {
			b.Fatal(err)
		}
		for _, res := range results {
			if res.Err != nil {
				b.Fatal(res.Err)
			}
		}
	}
}

// BenchmarkSolveSequential is the baseline the batch path must beat: the
// same 64 requests through one Solve call each.
func BenchmarkSolveSequential(b *testing.B) {
	reqs := batchRequests(64)
	solver := busytime.NewSolver()
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, req := range reqs {
			if _, err := solver.Solve(ctx, req); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// reoptBenchDelta builds the single-job delta the reoptimization
// benchmarks solve: the base with its latest-starting job replaced by an
// interior job, so the canonical origin — and with it the near-hit
// detection — is preserved.
func reoptBenchDelta(base busytime.Instance) busytime.Instance {
	delta := base.Clone()
	latest, minStart := 0, delta.Jobs[0].Interval.Start
	for i, j := range delta.Jobs {
		if j.Interval.Start > delta.Jobs[latest].Interval.Start {
			latest = i
		}
		if j.Interval.Start < minStart {
			minStart = j.Interval.Start
		}
	}
	delta.Jobs[latest] = busytime.NewJob(2_000_000, minStart+31, minStart+83)
	return delta
}

// BenchmarkReoptimize measures the warm-started delta solve at n=1000: a
// single-job delta repaired against the cached base via BaseID. CI
// uploads this next to BenchmarkReoptimizeScratch; the repair must beat
// the from-scratch solve of the same instance (E18 tracks the same
// claim across delta sizes). The explicit BaseID keeps every iteration
// on the repair path — an exact fingerprint lookup would upgrade the
// second and later iterations to hits and benchmark the wrong thing.
func BenchmarkReoptimize(b *testing.B) {
	base := busytime.GenerateGeneral(1, busytime.WorkloadConfig{N: 1000, G: 4, MaxTime: 8000, MaxLen: 120})
	solver := busytime.NewSolver(busytime.WithReoptimization(8))
	ctx := context.Background()
	cold, err := solver.Solve(ctx, busytime.Request{Instance: base})
	if err != nil {
		b.Fatal(err)
	}
	delta := reoptBenchDelta(base)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := solver.Solve(ctx, busytime.Request{Instance: delta, BaseID: cold.ID})
		if err != nil {
			b.Fatal(err)
		}
		if res.CacheOutcome != busytime.CacheRepair {
			b.Fatalf("outcome = %q, want %q", res.CacheOutcome, busytime.CacheRepair)
		}
	}
}

// BenchmarkReoptimizeScratch is the baseline the repair path must beat:
// the same single-job-delta instance solved cold every iteration.
func BenchmarkReoptimizeScratch(b *testing.B) {
	base := busytime.GenerateGeneral(1, busytime.WorkloadConfig{N: 1000, G: 4, MaxTime: 8000, MaxLen: 120})
	delta := reoptBenchDelta(base)
	solver := busytime.NewSolver()
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := solver.Solve(ctx, busytime.Request{Instance: delta}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSolverDispatchSmall isolates the dispatch overhead itself on
// a tiny instance where the algorithm's own work is negligible.
func BenchmarkSolverDispatchSmall(b *testing.B) {
	in := busytime.NewInstance(2, [2]int64{0, 10}, [2]int64{5, 15}, [2]int64{8, 20})
	solver := busytime.NewSolver()
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := solver.Solve(ctx, busytime.Request{Instance: in}); err != nil {
			b.Fatal(err)
		}
	}
}
