package busytime_test

import (
	"testing"

	busytime "repro"
)

// lemma32Bound is the approximation factor Lemma 3.2 of the paper claims
// for the clique set-cover algorithm: g·H_g/(H_g + g − 1).
func lemma32Bound(g int) float64 {
	h := 0.0
	for i := 1; i <= g; i++ {
		h += 1 / float64(i)
	}
	return float64(g) * h / (h + float64(g) - 1)
}

// harmonic is H_g, the proven factor the registry claims instead.
func harmonic(g int) float64 {
	h := 0.0
	for i := 1; i <= g; i++ {
		h += 1 / float64(i)
	}
	return h
}

// TestLemma32Erratum documents the Lemma 3.2 gap as a paper erratum with
// two parametric families of 2-job counterexamples (see the README
// "Paper erratum" section). The shipped CliqueSetCover implements the
// modified-weight partition step of the paper, whose g·H_g/(H_g+g−1)
// charging argument does not carry over: g·span − len is not monotone
// under subsets. Every family member must
//
//	(a) exceed the paper's claimed Lemma 3.2 bound — the erratum —
//	(b) while respecting the classical H_g set-cover bound the registry
//	    claims instead, so the conformance harness stays sound.
//
// Both families are dilation-closed: scaling all coordinates by k scales
// cost and OPT alike, so the violating ratio is constant in k.
func TestLemma32Erratum(t *testing.T) {
	type family struct {
		name string
		// spans builds the 2-job clique at scale k. Job order matters:
		// the greedy cover is order-sensitive, and the violating shapes
		// list the job that seeds the bad cover first.
		spans func(k int64) [][2]int64
		ratio float64 // expected cost/OPT, constant across scales
	}
	families := []family{
		{
			// A short job nested at the tail of a long one: the modified
			// weight g·span − len makes the singleton {long} cheaper than
			// the pair, so the cover pays span(long) + span(short).
			name:  "nested-tail",
			spans: func(k int64) [][2]int64 { return [][2]int64{{0, 10 * k}, {7 * k, 10 * k}} },
			ratio: 13.0 / 10.0,
		},
		{
			// The fuzzer's pinned find (seed-setcover-h-g-ratio), scaled:
			// a short job overhanging the long job's tail.
			name:  "pinned-overhang",
			spans: func(k int64) [][2]int64 { return [][2]int64{{7 * k, 11 * k}, {0, 10 * k}} },
			ratio: 14.0 / 11.0,
		},
	}

	const g = 2
	claimed := lemma32Bound(g) // 1.2 at g = 2
	proven := harmonic(g)      // 1.5 at g = 2
	for _, fam := range families {
		for k := int64(1); k <= 6; k++ {
			in := busytime.NewInstance(g, fam.spans(k)...)
			if class := busytime.Classify(in.Jobs); class != busytime.ClassClique && class != busytime.ClassProperClique && class != busytime.ClassOneSidedClique {
				t.Fatalf("%s k=%d: class %s is not a clique; the family is malformed", fam.name, k, class)
			}
			sch, err := busytime.CliqueSetCover(in)
			if err != nil {
				t.Fatalf("%s k=%d: %v", fam.name, k, err)
			}
			if err := sch.Validate(); err != nil {
				t.Fatalf("%s k=%d: invalid schedule: %v", fam.name, k, err)
			}
			opt, err := busytime.ExactMinBusy(in)
			if err != nil {
				t.Fatalf("%s k=%d: oracle: %v", fam.name, k, err)
			}
			cost, optCost := sch.Cost(), opt.Cost()
			ratio := float64(cost) / float64(optCost)

			// (a) The erratum: the paper's Lemma 3.2 bound is violated.
			if float64(cost) <= claimed*float64(optCost)+1e-9 {
				t.Errorf("%s k=%d: cost %d, OPT %d (ratio %.4f) no longer violates the Lemma 3.2 bound %.4f — erratum fixed? update README and the registry guarantee",
					fam.name, k, cost, optCost, ratio, claimed)
			}
			// (b) The proven H_g bound the registry claims instead holds.
			if float64(cost) > proven*float64(optCost)+1e-9 {
				t.Errorf("%s k=%d: cost %d exceeds even the H_g bound %.4f·%d — the registry guarantee is wrong too",
					fam.name, k, cost, proven, optCost)
			}
			// The family's ratio is dilation-invariant.
			if diff := ratio - fam.ratio; diff > 1e-9 || diff < -1e-9 {
				t.Errorf("%s k=%d: ratio %.6f, want the scale-invariant %.6f", fam.name, k, ratio, fam.ratio)
			}
		}
	}
}
