package busytime

import (
	"context"
	"fmt"
	"strconv"
	"time"

	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/igraph"
	"repro/internal/localsearch"
	"repro/internal/online"
	"repro/internal/parallel"
	"repro/internal/registry"
	"repro/internal/reopt"
	"repro/internal/stats"
	"repro/internal/trace"
)

// ProblemKind is the problem family a Request asks the Solver to solve.
type ProblemKind = registry.Kind

// Problem kinds.
const (
	// KindMinBusy schedules every job, minimizing total busy time. It is
	// the zero value, so a Request{Instance: in} asks for MinBusy.
	KindMinBusy = registry.MinBusy
	// KindMaxThroughput schedules a maximum subset within Budget.
	KindMaxThroughput = registry.MaxThroughput
	// KindMinBusy2D solves the Section 3.4 rectangle variant of Rect.
	KindMinBusy2D = registry.MinBusy2D
	// KindOnline replays the instance through an online strategy in
	// arrival order, committing placements irrevocably.
	KindOnline = registry.Online
)

// AlgorithmInfo describes one registered algorithm: name, aliases,
// problem kind, applicable instance classes and approximation guarantee.
type AlgorithmInfo = registry.Algorithm

// Algorithms lists every registered algorithm, ordered by kind then
// strength — the single source of truth behind CLI usage strings and the
// README table.
func Algorithms() []AlgorithmInfo { return registry.List() }

// LookupAlgorithm resolves a canonical algorithm name (or unambiguous
// alias) across all problem kinds.
func LookupAlgorithm(name string) (AlgorithmInfo, error) { return registry.Lookup(name) }

// LookupAlgorithmKind resolves a name or alias within one problem kind.
func LookupAlgorithmKind(kind ProblemKind, name string) (AlgorithmInfo, error) {
	return registry.LookupKind(kind, name)
}

// AlgorithmFor returns the strongest registered polynomial algorithm for
// the detected instance class — the Solver's first choice in auto mode.
func AlgorithmFor(kind ProblemKind, class Class) (AlgorithmInfo, error) {
	return registry.For(kind, class)
}

// AlgorithmNames returns the sorted canonical algorithm names of a kind.
func AlgorithmNames(kind ProblemKind) []string { return registry.Names(kind) }

// Request is one solve call: an instance plus the problem kind and its
// parameters. The zero Kind is KindMinBusy; a non-nil Rect implies
// KindMinBusy2D.
type Request struct {
	// Instance is the 1-D input for KindMinBusy, KindMaxThroughput and
	// KindOnline.
	Instance Instance
	// Rect is the 2-D input for KindMinBusy2D.
	Rect *RectInstance
	// Kind selects the problem family (default KindMinBusy).
	Kind ProblemKind
	// Budget is the busy-time budget for KindMaxThroughput. When zero,
	// the Solver-level WithBudget value applies.
	Budget int64
	// Timeout, when positive, bounds this request's wall-clock solve
	// time: Solve derives a per-request deadline from the caller's ctx,
	// so one slow request in a SolveBatch cannot hold its worker beyond
	// its own budget. Zero means no per-request deadline.
	Timeout time.Duration
	// BaseID names a prior Result (its Result.ID) to warm-start from:
	// the solver keeps the incumbent assignment for jobs shared with the
	// base and repairs locally around the delta, reporting the
	// transition cost. Requires WithReoptimization and KindMinBusy. A
	// base that is unknown (evicted) or incompatible degrades to a
	// normal solve instead of failing — a client cannot know whether its
	// base survived cache eviction.
	BaseID string
	// TransitionBudget, when positive, caps the number of carried-over
	// jobs a warm-started repair may reassign. Zero means unbudgeted.
	TransitionBudget int
}

// EffectiveKind resolves the problem kind the Solver will dispatch on:
// a non-nil Rect promotes the zero Kind to KindMinBusy2D.
func (r Request) EffectiveKind() ProblemKind {
	if r.Rect != nil {
		return KindMinBusy2D
	}
	return r.Kind
}

// Result is a structured solve outcome: the schedule itself plus the
// algorithm that produced it, the detected instance class, cost and
// machine statistics, the Observation 2.1 lower bound with the achieved
// ratio against it, and wall-clock timing.
type Result struct {
	// Schedule is the produced assignment (1-D kinds).
	Schedule Schedule `json:"-"`
	// Rect is the produced 2-D assignment (KindMinBusy2D only).
	Rect *RectSchedule `json:"-"`
	// Algorithm is the canonical name of the algorithm that ran; auto
	// dispatch over disconnected instances reports "components:a+b".
	Algorithm string `json:"algorithm"`
	// Kind echoes the request's problem kind.
	Kind ProblemKind `json:"kind"`
	// Class is the detected class of the input instance.
	Class Class `json:"class"`
	// Cost is the schedule's total busy time (area for 2-D).
	Cost int64 `json:"cost"`
	// Scheduled and N count scheduled jobs and instance size.
	Scheduled int `json:"scheduled"`
	N         int `json:"n"`
	// Machines counts distinct machines used.
	Machines int `json:"machines"`
	// MachinesOpened and PeakOpen are online-run statistics: machines
	// ever opened and the maximum simultaneously open (zero offline).
	MachinesOpened int `json:"machines_opened,omitempty"`
	PeakOpen       int `json:"peak_open,omitempty"`
	// Rejected counts arrivals an online admission-control strategy
	// declined (always zero offline and for non-rejecting strategies).
	Rejected int `json:"rejected,omitempty"`
	// LowerBound is the Observation 2.1 bound max(span, ⌈len/g⌉) (area
	// form for 2-D), and RatioVsBound is Cost/LowerBound — an upper
	// bound on the true approximation ratio.
	LowerBound   int64   `json:"lower_bound"`
	RatioVsBound float64 `json:"ratio_vs_bound"`
	// Budget echoes the effective budget (KindMaxThroughput only).
	Budget int64 `json:"budget,omitempty"`
	// Elapsed is the wall-clock solve time.
	Elapsed time.Duration `json:"elapsed"`
	// ID identifies this result in the reoptimization cache; a later
	// Request.BaseID may reference it for a warm-started delta solve.
	// Empty when reoptimization is disabled or the schedule was not
	// cacheable.
	ID string `json:"id,omitempty"`
	// BaseID echoes the cached result a repair actually warm-started
	// from (the requested BaseID, or the nearest cached instance).
	BaseID string `json:"base_id,omitempty"`
	// Transition counts the carried-over jobs a warm-started repair
	// reassigned relative to the base incumbent (zero on hit and miss).
	Transition int `json:"transition,omitempty"`
	// CacheOutcome reports how the reoptimization layer served this
	// request: CacheHit, CacheRepair or CacheMiss. Empty when
	// reoptimization is disabled or the kind bypasses it.
	CacheOutcome string `json:"cache,omitempty"`
	// Err is the per-request failure of a SolveBatch item. Solve reports
	// errors through its second return value and leaves Err nil; in a
	// batch, one malformed or timed-out request must not poison its
	// siblings, so each Result carries its own error instead. A Result
	// with non-nil Err holds no schedule.
	Err error `json:"-"`
	// Trace is the span tree of this solve — phase names, durations and
	// attributes — recorded only when the caller's ctx was trace-enabled
	// (trace.Enable, or any request served by busyd). Nil otherwise.
	Trace *trace.Node `json:"trace,omitempty"`
}

// Reoptimization cache outcomes reported in Result.CacheOutcome (and on
// the wire as the X-Busytime-Cache response header).
const (
	// CacheHit: the submitted instance matched a cached canonical form
	// exactly (up to job order, IDs and time translation); the cached
	// assignment was remapped onto the submitted jobs and re-certified
	// against them.
	CacheHit = "hit"
	// CacheRepair: a cached near-identical instance (small symmetric
	// difference of job sets, or an explicit BaseID) seeded a local
	// repair around the delta.
	CacheRepair = "repair"
	// CacheMiss: no usable cached base; the instance was solved from
	// scratch and cached.
	CacheMiss = "miss"
)

// Certificate re-derives the quality claims of the Result from the
// schedule itself and returns the first violation: schedule validity
// (no machine ever exceeds capacity g), agreement of the reported cost
// and throughput with the schedule, the Observation 2.1 cost bounds for
// total schedules, and budget compliance for throughput runs. A nil
// error certifies the Result is internally consistent and feasible.
func (r Result) Certificate() error {
	if r.Rect != nil {
		if err := r.Rect.Validate(); err != nil {
			return err
		}
		if c := r.Rect.Cost(); c != r.Cost {
			return fmt.Errorf("busytime: reported cost %d, schedule costs %d", r.Cost, c)
		}
		if r.Cost < r.LowerBound {
			return fmt.Errorf("busytime: cost %d below lower bound %d", r.Cost, r.LowerBound)
		}
		return nil
	}
	if err := r.Schedule.Validate(); err != nil {
		return err
	}
	if c := r.Schedule.Cost(); c != r.Cost {
		return fmt.Errorf("busytime: reported cost %d, schedule costs %d", r.Cost, c)
	}
	if got := r.Schedule.Throughput(); got != r.Scheduled {
		return fmt.Errorf("busytime: reported %d scheduled jobs, schedule has %d", r.Scheduled, got)
	}
	in := r.Schedule.Instance
	if r.Scheduled == len(in.Jobs) && len(in.Jobs) > 0 {
		if b := core.BoundsOf(in); !b.Contains(r.Cost) {
			return fmt.Errorf("busytime: cost %d outside Observation 2.1 bounds [%d, %d]", r.Cost, b.Lower(), b.Length)
		}
	}
	if r.Kind == KindMaxThroughput && r.Cost > r.Budget {
		return fmt.Errorf("busytime: cost %d exceeds budget %d", r.Cost, r.Budget)
	}
	if r.Kind == KindOnline {
		// An online replay commits every arrival irrevocably, so the run
		// statistics must be internally consistent: every job is either
		// scheduled or was rejected by admission control, every distinct
		// machine was opened, the peak of simultaneously open machines
		// never exceeds the number ever opened, and a budgeted run never
		// overspends its budget.
		if r.Scheduled+r.Rejected != len(in.Jobs) {
			return fmt.Errorf("busytime: online run scheduled %d and rejected %d of %d jobs", r.Scheduled, r.Rejected, len(in.Jobs))
		}
		if r.Budget > 0 && r.Cost > r.Budget {
			return fmt.Errorf("busytime: online run cost %d exceeds admission budget %d", r.Cost, r.Budget)
		}
		if r.MachinesOpened < r.Machines {
			return fmt.Errorf("busytime: online run reports %d machines opened but %d distinct machines used", r.MachinesOpened, r.Machines)
		}
		if r.PeakOpen > r.MachinesOpened {
			return fmt.Errorf("busytime: online run peak %d exceeds %d machines opened", r.PeakOpen, r.MachinesOpened)
		}
	}
	return nil
}

// ResultOf wraps an existing 1-D schedule in a Result so callers holding
// only a schedule (e.g. one parsed from JSON) can use Certificate and
// the structured statistics without re-running a Solver.
func ResultOf(algorithm string, s Schedule) Result {
	in := s.Instance
	res := Result{
		Schedule:   s,
		Algorithm:  algorithm,
		Kind:       KindMinBusy,
		Class:      igraph.Classify(in.Jobs),
		N:          len(in.Jobs),
		LowerBound: in.LowerBound(),
	}
	// A machine array that does not match the job list (e.g. truncated or
	// padded JSON) cannot be charged for cost or throughput; leave the
	// stats zero so Certificate reports the Validate error instead of
	// panicking here.
	if len(s.Machine) != len(in.Jobs) {
		return res
	}
	res.Cost = s.Cost()
	res.Scheduled = s.Throughput()
	res.Machines = s.Machines()
	res.RatioVsBound = stats.Ratio(res.Cost, res.LowerBound)
	return res
}

// Solver executes Requests. The zero value auto-dispatches like
// MinBusy/MaxThroughput always have; options pin a named algorithm,
// set a default budget, enable local-search post-optimization, route
// small instances to the exact oracle, solve connected components in
// parallel, or keep a reoptimization cache of prior solves. A Solver's
// configuration is immutable after construction and it is safe for
// concurrent use (the reoptimization cache is internally locked).
type Solver struct {
	algorithm      string
	budget         int64
	localSearch    bool
	searchRounds   int
	exactThreshold int
	parallelism    int
	reopt          *reopt.Cache
}

// SolverOption configures a Solver at construction.
type SolverOption func(*Solver)

// NewSolver builds a Solver from options.
func NewSolver(opts ...SolverOption) *Solver {
	s := &Solver{parallelism: 1}
	for _, opt := range opts {
		opt(s)
	}
	return s
}

// WithAlgorithm pins a registered algorithm (canonical name or alias)
// instead of auto dispatch. For KindOnline it names the strategy.
func WithAlgorithm(name string) SolverOption {
	return func(s *Solver) { s.algorithm = name }
}

// WithBudget sets the default busy-time budget applied to
// KindMaxThroughput requests that carry no budget of their own.
func WithBudget(budget int64) SolverOption {
	return func(s *Solver) { s.budget = budget }
}

// WithLocalSearch enables hill-climbing post-optimization of 1-D
// schedules (experiment E15); maxRounds ≤ 0 climbs to a local optimum.
// The reported algorithm name gains a "+local-search" suffix.
func WithLocalSearch(maxRounds int) SolverOption {
	return func(s *Solver) { s.localSearch = true; s.searchRounds = maxRounds }
}

// WithExactThreshold routes auto-dispatched instances with at most n
// jobs to the exponential exact oracle (capped at 18) instead of the
// polynomial algorithms — the configuration experiments use to measure
// optimality gaps inline.
func WithExactThreshold(n int) SolverOption {
	return func(s *Solver) {
		if n > exact.MaxN {
			n = exact.MaxN
		}
		s.exactThreshold = n
	}
}

// WithParallelism solves the connected components of disconnected
// MinBusy instances with up to workers goroutines (0 selects
// GOMAXPROCS). The default is 1: fully sequential and deterministic.
func WithParallelism(workers int) SolverOption {
	return func(s *Solver) { s.parallelism = workers }
}

// WithReoptimization keeps an instance-fingerprint cache of up to
// capacity prior KindMinBusy solves. Submissions whose canonical form
// (jobs sorted to the paper's J1 ≤ … ≤ Jn order, translated to a zero
// origin, IDs dropped) matches a cached instance are served from cache;
// submissions within a small symmetric difference of a cached job set —
// or naming a prior result via Request.BaseID — warm-start from the
// cached assignment and repair locally around the delta. Every served
// schedule is re-certified against the submitted instance, never the
// cached one. Results gain an ID, the cache outcome, and (on repair)
// the transition cost.
func WithReoptimization(capacity int) SolverOption {
	return func(s *Solver) { s.reopt = reopt.NewCache(capacity) }
}

// Solve executes one Request. It is context-cancellable: long exact and
// oracle runs check ctx at safe points, and auto dispatch stops between
// fallback attempts once ctx fires. A positive Request.Timeout
// additionally bounds this call with its own deadline.
func (s *Solver) Solve(ctx context.Context, req Request) (Result, error) {
	if req.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, req.Timeout)
		defer cancel()
	}
	return s.solveOne(ctx, req)
}

// SolveBatch executes a batch of Requests over a bounded worker pool and
// returns one Result per Request, order-stable with the input. It
// generalizes WithParallelism beyond disconnected components: the same
// worker count shards whole requests, each solved sequentially on its
// worker (classification runs exactly once per request, and component
// parallelism is disabled inside batch workers so the pool is the only
// source of concurrency).
//
// Errors are per-request: a malformed instance, an algorithm rejection
// or an expired Request.Timeout surfaces in that Result's Err field
// without poisoning the rest of the batch. The call-level error is
// non-nil only when the batch ctx itself fired, in which case every
// not-yet-solved request carries ctx's error and the partial results
// are still returned order-stable.
func (s *Solver) SolveBatch(ctx context.Context, reqs []Request) ([]Result, error) {
	results := make([]Result, len(reqs))
	if len(reqs) == 0 {
		return results, nil
	}
	// The "batch" span parents every per-request "solve" span; workers
	// append children concurrently (the span is internally locked). Its
	// children run in parallel, so their durations may sum past the
	// batch duration — the sum-≤-root invariant holds per solve subtree.
	ctx, bsp := trace.Start(ctx, "batch")
	bsp.SetAttr("size", strconv.Itoa(len(reqs)))
	defer bsp.End()
	// Batch workers solve sequentially: nesting component parallelism
	// inside request parallelism would oversubscribe the pool.
	inner := *s
	inner.parallelism = 1
	// Per-request deadlines are anchored at batch entry, not at worker
	// pickup: a request's Timeout budgets its whole stay in the batch, so
	// one that expired while queued behind slower siblings fails fast
	// instead of occupying a pool slot on a solve it can no longer use.
	now := time.Now()
	deadlines := make([]time.Time, len(reqs))
	for i, req := range reqs {
		if req.Timeout > 0 {
			deadlines[i] = now.Add(req.Timeout)
		}
	}
	parallel.ForEach(len(reqs), s.parallelism, func(i int) {
		req := reqs[i]
		if err := ctx.Err(); err != nil {
			results[i] = Result{Kind: req.EffectiveKind(), Err: err}
			return
		}
		rctx, cancel := ctx, context.CancelFunc(nil)
		if !deadlines[i].IsZero() {
			if !time.Now().Before(deadlines[i]) {
				results[i] = Result{Kind: req.EffectiveKind(), Err: context.DeadlineExceeded}
				return
			}
			rctx, cancel = context.WithDeadline(ctx, deadlines[i])
		}
		res, err := inner.solveOne(rctx, req)
		if cancel != nil {
			cancel()
		}
		if err != nil {
			res = Result{Kind: req.EffectiveKind(), Err: err}
		}
		results[i] = res
	})
	return results, ctx.Err()
}

// solveOne is the shared request path behind Solve and SolveBatch. It
// opens the per-request "solve" span — a no-op on untraced contexts —
// dispatches, and attaches the finished span tree to the Result.
func (s *Solver) solveOne(ctx context.Context, req Request) (Result, error) {
	ctx, sp := trace.Start(ctx, "solve")
	res, err := s.dispatch(ctx, req)
	if sp != nil {
		if err != nil {
			sp.SetAttr("error", err.Error())
		} else {
			sp.SetAttr("algorithm", res.Algorithm)
			sp.SetAttr("kind", fmt.Sprint(res.Kind))
			sp.SetAttr("class", fmt.Sprint(res.Class))
			sp.SetAttr("n", strconv.Itoa(res.N))
			if res.CacheOutcome != "" {
				sp.SetAttr("cache", res.CacheOutcome)
			}
		}
		sp.End()
		if err == nil {
			res.Trace = sp.Snapshot()
		}
	}
	return res, err
}

// dispatch classifies the request once and routes it on the problem
// kind.
func (s *Solver) dispatch(ctx context.Context, req Request) (Result, error) {
	start := time.Now()
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	kind := req.EffectiveKind()

	if kind == KindMinBusy2D {
		if req.Rect == nil {
			return Result{}, fmt.Errorf("busytime: %s request needs a Rect instance", kind)
		}
		return s.solveRect(ctx, req, start)
	}

	in := req.Instance
	if err := in.Validate(); err != nil {
		return Result{}, err
	}
	if req.TransitionBudget < 0 {
		return Result{}, fmt.Errorf("busytime: transition budget %d, need >= 0", req.TransitionBudget)
	}
	if kind == KindMinBusy && s.reopt != nil {
		return s.solveReopt(ctx, req, start)
	}
	if req.BaseID != "" {
		return Result{}, fmt.Errorf("busytime: Request.BaseID needs WithReoptimization and a %s request", KindMinBusy)
	}
	return s.solve1D(ctx, req, kind, start)
}

// solve1D is the cold (cache-free) 1-D solve path: classify once,
// dispatch on the kind, post-optimize, assemble the Result. The
// instance is already validated. Each phase runs under its own span:
// "dispatch" (class detection), "placement" (the algorithm itself),
// "local-search" (when enabled) and "bound" (Observation 2.1).
func (s *Solver) solve1D(ctx context.Context, req Request, kind ProblemKind, start time.Time) (Result, error) {
	in := req.Instance
	_, dsp := trace.Start(ctx, "dispatch")
	class := igraph.Classify(in.Jobs)
	dsp.End()

	var res Result
	pctx, psp := trace.Start(ctx, "placement")
	sch, name, admittedBound, err := s.place(pctx, req, kind, class, &res)
	if err == nil {
		psp.SetAttr("algorithm", name)
	}
	psp.End()
	if err != nil {
		return Result{}, err
	}

	if s.localSearch && (kind == KindMinBusy || kind == KindMaxThroughput) {
		_, lsp := trace.Start(ctx, "local-search")
		sch = localsearch.Improve(sch, s.searchRounds)
		lsp.End()
		name += "+local-search"
	}

	_, bsp := trace.Start(ctx, "bound")
	cost := sch.Cost()
	lb := in.LowerBound()
	bsp.End()
	if admittedBound >= 0 {
		lb = admittedBound
	}
	res.Schedule = sch
	res.Algorithm = name
	res.Kind = kind
	res.Class = class
	res.Cost = cost
	res.Scheduled = sch.Throughput()
	res.N = len(in.Jobs)
	res.Machines = sch.Machines()
	res.LowerBound = lb
	res.RatioVsBound = stats.Ratio(cost, lb)
	res.Elapsed = time.Since(start)
	return res, nil
}

// place runs the core placement for one 1-D kind and fills the
// kind-specific Result statistics in place. The returned admittedBound
// is ≥ 0 only for online runs with rejections, where the Observation
// 2.1 bound must cover the admitted arrivals alone.
func (s *Solver) place(ctx context.Context, req Request, kind ProblemKind, class Class, res *Result) (sch Schedule, name string, admittedBound int64, err error) {
	in := req.Instance
	admittedBound = -1
	switch kind {
	case KindMinBusy:
		sch, name, err = s.solveMinBusy(ctx, in, class)
	case KindMaxThroughput:
		budget := req.Budget
		if budget == 0 {
			budget = s.budget
		}
		if budget < 0 {
			return Schedule{}, "", -1, fmt.Errorf("busytime: %s request needs a non-negative budget, got %d", kind, budget)
		}
		res.Budget = budget
		sch, name, err = s.solveThroughput(ctx, in, budget, class)
	case KindOnline:
		// Only the request's own budget reaches admission control: the
		// Solver-level WithBudget default stays a KindMaxThroughput
		// fallback, as its contract documents.
		budget := req.Budget
		var onlineRes online.Result
		var budgetApplied bool
		onlineRes, name, budgetApplied, err = s.solveOnline(ctx, in, budget)
		sch = onlineRes.Schedule
		res.MachinesOpened = onlineRes.MachinesOpened
		res.PeakOpen = onlineRes.PeakOpen
		res.Rejected = onlineRes.Rejected
		if budgetApplied {
			res.Budget = budget
		}
		if err == nil && onlineRes.Rejected > 0 {
			// An admission-control run is only charged for what it
			// admitted, so its Observation 2.1 bound (and the ratio
			// against it) must cover the admitted arrivals alone —
			// the full-instance bound would push the ratio below 1.
			// This matches the lower_bound the streaming endpoint's
			// per-session tracker reports for the same run.
			admittedBound = onlineRes.Summarize().LowerBound
		}
	default:
		return Schedule{}, "", -1, fmt.Errorf("busytime: unsupported problem kind %s", kind)
	}
	if err != nil {
		return Schedule{}, "", -1, err
	}
	return sch, name, admittedBound, nil
}

// nearLimit is the symmetric-difference threshold under which a cached
// instance counts as a near-hit worth repairing instead of re-solving:
// an eighth of the submission, at least 2 (so single-job deltas on tiny
// instances still qualify).
func nearLimit(n int) int {
	if l := n / 8; l > 2 {
		return l
	}
	return 2
}

// solveReopt is the reoptimization front of the KindMinBusy path:
// exact canonical hits are served from cache, near-hits and explicit
// BaseID warm starts route through local repair, and misses fall
// through to the cold path and are cached. Every served schedule is
// rebuilt on — and certified against — the submitted instance.
func (s *Solver) solveReopt(ctx context.Context, req Request, start time.Time) (Result, error) {
	in := req.Instance
	_, fsp := trace.Start(ctx, "reopt.fingerprint")
	canon, perm := reopt.Canonical(in)
	fp := reopt.FingerprintCanon(in.G, canon, s.algorithm)
	fsp.End()

	// Explicit warm start from a named prior result. An exact canonical
	// match is a hit (nothing to repair); otherwise repair from the
	// named base regardless of delta size — the client asked for it.
	if req.BaseID != "" {
		if e, ok := s.reopt.LookupID(req.BaseID); ok {
			if e.Fingerprint == fp {
				if res, err := s.serveCacheHit(e, in, perm, start); err == nil {
					return res, nil
				}
			} else if res, ok := s.serveRepair(ctx, e, in, canon, perm, fp, req.TransitionBudget, start); ok {
				return res, nil
			}
		}
	}

	if e, ok := s.reopt.Lookup(fp); ok {
		if res, err := s.serveCacheHit(e, in, perm, start); err == nil {
			return res, nil
		}
	}

	_, nsp := trace.Start(ctx, "reopt.nearest")
	e, _, near := s.reopt.Nearest(in.G, canon, nearLimit(len(in.Jobs)))
	nsp.End()
	if near {
		if res, ok := s.serveRepair(ctx, e, in, canon, perm, fp, req.TransitionBudget, start); ok {
			return res, nil
		}
	}

	res, err := s.solve1D(ctx, req, KindMinBusy, start)
	if err != nil {
		return res, err
	}
	res.CacheOutcome = CacheMiss
	if asg, aerr := reopt.CanonicalAssignment(res.Schedule, perm); aerr == nil {
		res.ID = s.reopt.Store(reopt.Entry{
			Fingerprint: fp, G: in.G, Jobs: canon, Machine: asg,
			Algorithm: res.Algorithm, Class: res.Class, Cost: res.Cost,
		})
	}
	res.Elapsed = time.Since(start)
	return res, nil
}

// serveCacheHit remaps a cached assignment onto the submitted instance.
// Cost, bound and certificate are re-derived from the remapped schedule
// and the submitted jobs — the cache only supplies the assignment.
func (s *Solver) serveCacheHit(e reopt.Entry, in Instance, perm []int, start time.Time) (Result, error) {
	sch, err := reopt.RemapAssignment(e, in, perm)
	if err != nil {
		return Result{}, err
	}
	res := s.assembleMinBusy(sch, in, e.Class, e.Algorithm, start)
	res.ID = e.ID
	res.CacheOutcome = CacheHit
	return res, nil
}

// serveRepair warm-starts from the entry's incumbent assignment and
// repairs locally around the delta. The repaired schedule is cached
// under the submission's own fingerprint, so an identical resubmission
// upgrades to a hit.
func (s *Solver) serveRepair(ctx context.Context, e reopt.Entry, in Instance, canon []reopt.CanonJob, perm []int, fp string, transitionBudget int, start time.Time) (Result, bool) {
	rep, err := reopt.Repair(ctx, e, in, canon, perm, transitionBudget)
	if err != nil {
		return Result{}, false
	}
	res := s.assembleMinBusy(rep.Schedule, in, igraph.Classify(in.Jobs), "reopt-repair", start)
	res.BaseID = e.ID
	res.Transition = rep.Transition
	res.CacheOutcome = CacheRepair
	if asg, aerr := reopt.CanonicalAssignment(rep.Schedule, perm); aerr == nil {
		res.ID = s.reopt.Store(reopt.Entry{
			Fingerprint: fp, G: in.G, Jobs: canon, Machine: asg,
			Algorithm: res.Algorithm, Class: res.Class, Cost: res.Cost,
		})
	}
	res.Elapsed = time.Since(start)
	return res, true
}

// assembleMinBusy builds a KindMinBusy Result around a total schedule of
// the submitted instance.
func (s *Solver) assembleMinBusy(sch Schedule, in Instance, class Class, algorithm string, start time.Time) Result {
	cost := sch.Cost()
	lb := in.LowerBound()
	return Result{
		Schedule:     sch,
		Algorithm:    algorithm,
		Kind:         KindMinBusy,
		Class:        class,
		Cost:         cost,
		Scheduled:    sch.Throughput(),
		N:            len(in.Jobs),
		Machines:     sch.Machines(),
		LowerBound:   lb,
		RatioVsBound: stats.Ratio(cost, lb),
		Elapsed:      time.Since(start),
	}
}

// solveMinBusy runs a pinned algorithm, the exact oracle below the
// threshold, or registry-driven auto dispatch over connected components.
func (s *Solver) solveMinBusy(ctx context.Context, in Instance, class Class) (Schedule, string, error) {
	if s.algorithm != "" {
		alg, err := registry.LookupKind(registry.MinBusy, s.algorithm)
		if err != nil {
			return Schedule{}, "", err
		}
		sch, err := alg.SolveMinBusy(ctx, in)
		return sch, alg.Name, err
	}
	if s.exactThreshold > 0 && len(in.Jobs) <= s.exactThreshold {
		sch, err := exact.MinBusyCtx(ctx, in)
		return sch, "exact", err
	}

	comps := igraph.SplitComponents(in)
	if len(comps) <= 1 {
		return runMinBusyChain(ctx, in, class)
	}

	// Disconnected instances decompose (Section 2): solve each component
	// independently — in parallel when configured — and merge on disjoint
	// machine ranges.
	type compResult struct {
		sch  Schedule
		name string
		err  error
	}
	results := make([]compResult, len(comps))
	parallel.ForEach(len(comps), s.parallelism, func(i int) {
		sch, name, err := runMinBusyChain(ctx, comps[i], igraph.Classify(comps[i].Jobs))
		results[i] = compResult{sch, name, err}
	})

	subs := make([]Schedule, len(comps))
	names := make([]string, len(comps))
	for i, r := range results {
		if r.err != nil {
			return Schedule{}, "", r.err
		}
		subs[i], names[i] = r.sch, r.name
	}
	merged, name := core.MergeComponents(in, comps, subs, names)
	return merged, name, nil
}

// runMinBusyChain walks the registry's fallback chain for the
// component's class and returns the first schedule produced — exactly
// the dispatch order of core.MinBusyAuto, now derived from registered
// strengths instead of a switch.
func runMinBusyChain(ctx context.Context, in Instance, class Class) (Schedule, string, error) {
	for _, alg := range registry.ForAll(registry.MinBusy, class) {
		if err := ctx.Err(); err != nil {
			return Schedule{}, "", err
		}
		if sch, err := alg.SolveMinBusy(ctx, in); err == nil {
			return sch, alg.Name, nil
		}
	}
	return Schedule{}, "", fmt.Errorf("busytime: no registered min-busy algorithm accepted the instance (class %s)", class)
}

func (s *Solver) solveThroughput(ctx context.Context, in Instance, budget int64, class Class) (Schedule, string, error) {
	if s.algorithm != "" {
		alg, err := registry.LookupKind(registry.MaxThroughput, s.algorithm)
		if err != nil {
			return Schedule{}, "", err
		}
		sch, err := alg.SolveThroughput(ctx, in, budget)
		return sch, alg.Name, err
	}
	if s.exactThreshold > 0 && len(in.Jobs) <= s.exactThreshold {
		sch, err := exact.MaxThroughputCtx(ctx, in, budget)
		return sch, "exact-throughput", err
	}
	for _, alg := range registry.ForAll(registry.MaxThroughput, class) {
		if err := ctx.Err(); err != nil {
			return Schedule{}, "", err
		}
		if sch, err := alg.SolveThroughput(ctx, in, budget); err == nil {
			return sch, alg.Name, nil
		}
	}
	return Schedule{}, "", fmt.Errorf("busytime: no registered max-throughput algorithm accepted the instance (class %s)", class)
}

// solveOnline replays the instance through the pinned (or strongest
// registered) strategy. A positive budget is handed to strategies that
// implement online.BudgetSetter (the admission-control family); the
// returned flag reports whether it actually applied, so the Result only
// echoes a budget the run was really bound by. Pinning a budgeted
// strategy WITHOUT a budget is deliberately allowed at this level and
// degenerates to its unbudgeted placement policy (BestFit): the registry
// constructs strategies parameter-free, and the conformance harness,
// E16 and the fuzz targets rely on every registered strategy producing a
// total schedule here. The user-facing surfaces (busyd's /v1/stream,
// onlinesim) refuse that combination instead, because there the silent
// degeneration would masquerade as admission control.
func (s *Solver) solveOnline(ctx context.Context, in Instance, budget int64) (online.Result, string, bool, error) {
	name := s.algorithm
	if name == "" {
		alg, err := registry.For(registry.Online, igraph.Classify(in.Jobs))
		if err != nil {
			return online.Result{}, "", false, err
		}
		name = alg.Name
	}
	alg, err := registry.LookupKind(registry.Online, name)
	if err != nil {
		return online.Result{}, "", false, err
	}
	if err := ctx.Err(); err != nil {
		return online.Result{}, "", false, err
	}
	st := alg.NewStrategy()
	budgetApplied := false
	if budget > 0 {
		bs, ok := st.(online.BudgetSetter)
		if !ok {
			// Dropping the budget silently would let the caller believe
			// admission control ran; refuse, like the serving surfaces do.
			return online.Result{}, "", false, fmt.Errorf("busytime: online strategy %s does not support a budget (use online-budget)", alg.Name)
		}
		bs.SetBudget(budget)
		budgetApplied = true
	}
	res, err := online.Replay(in, st)
	return res, alg.Name, budgetApplied, err
}

func (s *Solver) solveRect(ctx context.Context, req Request, start time.Time) (Result, error) {
	in := *req.Rect
	if err := in.Validate(); err != nil {
		return Result{}, err
	}
	var alg registry.Algorithm
	var err error
	if s.algorithm != "" {
		alg, err = registry.LookupKind(registry.MinBusy2D, s.algorithm)
	} else {
		alg, err = registry.For(registry.MinBusy2D, igraph.General)
	}
	if err != nil {
		return Result{}, err
	}
	sch, err := alg.SolveRect(ctx, in)
	if err != nil {
		return Result{}, err
	}
	cost := sch.Cost()
	lb := in.LowerBound()
	return Result{
		Rect:         &sch,
		Algorithm:    alg.Name,
		Kind:         KindMinBusy2D,
		Cost:         cost,
		Scheduled:    len(in.Jobs),
		N:            len(in.Jobs),
		Machines:     sch.Machines(),
		LowerBound:   lb,
		RatioVsBound: stats.Ratio(cost, lb),
		Elapsed:      time.Since(start),
	}, nil
}
