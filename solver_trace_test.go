package busytime_test

import (
	"context"
	"testing"

	busytime "repro"
	"repro/internal/trace"
)

// traceInstance is a small general instance shared by the trace tests.
func traceInstance() busytime.Instance {
	return busytime.GenerateGeneral(3, busytime.WorkloadConfig{N: 40, G: 3, MaxTime: 400, MaxLen: 60})
}

func TestSolveUntracedHasNilTrace(t *testing.T) {
	solver := busytime.NewSolver()
	res, err := solver.Solve(context.Background(), busytime.Request{Instance: traceInstance()})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace != nil {
		t.Fatalf("untraced Solve attached a trace: %+v", res.Trace)
	}
}

func TestSolveTracePhases(t *testing.T) {
	solver := busytime.NewSolver()
	ctx := trace.Enable(context.Background())
	res, err := solver.Solve(ctx, busytime.Request{Instance: traceInstance()})
	if err != nil {
		t.Fatal(err)
	}
	n := res.Trace
	if n == nil {
		t.Fatal("traced Solve returned nil Result.Trace")
	}
	if n.Name != "solve" {
		t.Fatalf("root span %q, want solve", n.Name)
	}
	for _, phase := range []string{"dispatch", "placement", "bound"} {
		if n.Find(phase) == nil {
			t.Errorf("phase span %q missing from trace", phase)
		}
	}
	if got := n.Attr("algorithm"); got != res.Algorithm {
		t.Errorf("algorithm attr %q, want %q", got, res.Algorithm)
	}
	if n.Find("placement").Attr("algorithm") == "" {
		t.Error("placement span has no algorithm attr")
	}
	var sum int64
	for _, c := range n.Children {
		sum += c.DurationNS
	}
	if sum > n.DurationNS {
		t.Errorf("phase durations sum %dns > root %dns", sum, n.DurationNS)
	}
}

func TestSolveTraceLocalSearchPhase(t *testing.T) {
	solver := busytime.NewSolver(busytime.WithLocalSearch(2))
	ctx := trace.Enable(context.Background())
	res, err := solver.Solve(ctx, busytime.Request{Instance: traceInstance()})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace.Find("local-search") == nil {
		t.Fatal("local-search phase missing from trace")
	}
}

func TestSolveBatchPerItemTraces(t *testing.T) {
	reqs := make([]busytime.Request, 4)
	for i := range reqs {
		reqs[i] = busytime.Request{Instance: busytime.GenerateProper(int64(i+1),
			busytime.WorkloadConfig{N: 20, G: 3, MaxTime: 200, MaxLen: 40})}
	}
	solver := busytime.NewSolver(busytime.WithParallelism(0))
	ctx := trace.Enable(context.Background())
	results, err := solver.SolveBatch(ctx, reqs)
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range results {
		if res.Err != nil {
			t.Fatalf("item %d: %v", i, res.Err)
		}
		if res.Trace == nil {
			t.Fatalf("item %d has no trace", i)
		}
		if res.Trace.Name != "solve" || res.Trace.Find("placement") == nil {
			t.Fatalf("item %d trace malformed: %+v", i, res.Trace)
		}
	}
}

func TestSolveReoptTracePhases(t *testing.T) {
	base := busytime.GenerateGeneral(1, busytime.WorkloadConfig{N: 60, G: 4, MaxTime: 600, MaxLen: 80})
	solver := busytime.NewSolver(busytime.WithReoptimization(4))
	ctx := trace.Enable(context.Background())

	cold, err := solver.Solve(ctx, busytime.Request{Instance: base})
	if err != nil {
		t.Fatal(err)
	}
	if cold.CacheOutcome != busytime.CacheMiss {
		t.Fatalf("cold outcome %q", cold.CacheOutcome)
	}
	if cold.Trace.Find("reopt.fingerprint") == nil {
		t.Fatal("miss trace lacks reopt.fingerprint span")
	}
	if got := cold.Trace.Attr("cache"); got != busytime.CacheMiss {
		t.Fatalf("cache attr %q, want miss", got)
	}

	// A single-job delta with an explicit BaseID repairs warm.
	delta := base.Clone()
	latest, minStart := 0, delta.Jobs[0].Interval.Start
	for i, j := range delta.Jobs {
		if j.Interval.Start > delta.Jobs[latest].Interval.Start {
			latest = i
		}
		if j.Interval.Start < minStart {
			minStart = j.Interval.Start
		}
	}
	delta.Jobs[latest] = busytime.NewJob(99_999, minStart+7, minStart+31)
	rep, err := solver.Solve(ctx, busytime.Request{Instance: delta, BaseID: cold.ID})
	if err != nil {
		t.Fatal(err)
	}
	if rep.CacheOutcome != busytime.CacheRepair {
		t.Fatalf("delta outcome %q, want repair", rep.CacheOutcome)
	}
	if rep.Trace.Find("reopt.repair") == nil {
		t.Fatal("repair trace lacks reopt.repair span")
	}
}
