package suite_test

import (
	"testing"

	"repro/internal/analysis/suite"
)

// TestSuiteWellFormed pins the hygiene every analyzer must have before
// the drivers will run it: a unique name (suppression directives and
// SARIF rule IDs key on it), a doc line (usage and SARIF rule text),
// and a Run function.
func TestSuiteWellFormed(t *testing.T) {
	all := suite.All()
	if len(all) == 0 {
		t.Fatal("suite.All() is empty")
	}
	seen := map[string]bool{}
	for _, a := range all {
		if a.Name == "" {
			t.Error("analyzer with empty name")
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
		if a.Doc == "" {
			t.Errorf("analyzer %s has no doc", a.Name)
		}
		if a.Run == nil {
			t.Errorf("analyzer %s has no Run", a.Name)
		}
	}
}

// TestSuiteStable asserts All returns the same list every call, so the
// standalone driver and the vet driver can never see different suites.
func TestSuiteStable(t *testing.T) {
	a, b := suite.All(), suite.All()
	if len(a) != len(b) {
		t.Fatalf("suite.All() returned %d then %d analyzers", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("position %d: %s vs %s", i, a[i].Name, b[i].Name)
		}
	}
}
