// Package suite assembles the busylint analyzers in their canonical
// order. cmd/busylint and the driver tests share this list so the CLI,
// the vet tool and CI can never disagree about what is enforced.
package suite

import (
	"repro/internal/analysis"
	"repro/internal/analysis/atomicmix"
	"repro/internal/analysis/coordarith"
	"repro/internal/analysis/ctxloop"
	"repro/internal/analysis/detreplay"
	"repro/internal/analysis/errdrop"
	"repro/internal/analysis/goleak"
	"repro/internal/analysis/locksafe"
	"repro/internal/analysis/nopanic"
	"repro/internal/analysis/registryhygiene"
	"repro/internal/analysis/spanend"
)

// All returns every busylint analyzer, in canonical order. The list is
// the single source of truth for what the repository enforces; add new
// analyzers here and nowhere else.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		ctxloop.Analyzer,
		nopanic.Analyzer,
		registryhygiene.Analyzer,
		detreplay.Analyzer,
		coordarith.Analyzer,
		spanend.Analyzer,
		locksafe.Analyzer,
		atomicmix.Analyzer,
		goleak.Analyzer,
		errdrop.Analyzer,
	}
}
