// Package atomok uses sync/atomic consistently: every post-publication
// access to an atomic field goes through the atomic API, and the only
// bare writes sit in the constructor, before the value escapes.
package atomok

import "sync/atomic"

type C struct {
	n   int64
	cfg int
}

// New initializes bare — the value is unpublished, no reader exists.
func New(start int64) *C {
	c := &C{}
	c.n = start
	return c
}

func (c *C) Inc()        { atomic.AddInt64(&c.n, 1) }
func (c *C) Load() int64 { return atomic.LoadInt64(&c.n) }

// Cfg is a plain field with no atomic history; bare access is fine.
func (c *C) Cfg() int { return c.cfg }
