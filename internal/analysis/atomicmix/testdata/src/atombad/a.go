// Package atombad mixes atomic and bare access to the same field — the
// data races busylint/atomicmix must flag.
package atombad

import "sync/atomic"

type C struct {
	n     int64
	p     uint32
	other int64
}

func (c *C) Inc() { atomic.AddInt64(&c.n, 1) }

func (c *C) Racy() int64 {
	return c.n // want `field n is accessed with sync/atomic .* but bare here`
}

func (c *C) RacyWrite() {
	c.n = 0 // want `field n is accessed with sync/atomic .* but bare here`
}

func (c *C) Swap() bool { return atomic.CompareAndSwapUint32(&c.p, 0, 1) }

func (c *C) RacyCompound() {
	c.p++ // want `field p is accessed with sync/atomic .* but bare here`
}

// Fine never appears in an atomic call; bare access is fine.
func (c *C) Fine() int64 { return c.other }
