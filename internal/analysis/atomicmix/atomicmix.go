// Package atomicmix enforces all-or-nothing atomicity per field: a
// struct field that is accessed through the sync/atomic function API
// anywhere in a package (atomic.AddInt64(&s.n, 1), atomic.LoadPointer,
// CompareAndSwap...) must never be read or written bare elsewhere in
// that package. A bare load next to atomic stores is a data race the
// compiler will happily reorder; it is invisible until -race interleaves
// the right two goroutines — aimed squarely at counters and published
// pointers like the trace ring's slots and the metrics gauges. (Fields
// of the typed atomic.Int64/atomic.Pointer family are immune by
// construction and not this analyzer's concern.)
//
// One sanctioned exception: functions whose name starts with "new" or
// "New" (constructors). Before the struct is published, plain
// initialization is idiomatic and race-free. Anything else mixing
// access modes carries a //lint:ignore busylint/atomicmix waiver
// arguing why the bare access cannot race (e.g. it is guarded by a
// mutex that excludes every atomic writer — which usually means the
// atomics are pointless anyway).
package atomicmix

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"repro/internal/analysis"
)

// ScopePrefixes lists the packages checked (the whole tree). Tests
// override this to point at fixtures.
var ScopePrefixes = []string{"repro"}

// Analyzer is the busylint/atomicmix analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "atomicmix",
	Doc: "a struct field accessed through sync/atomic anywhere in a package must not be " +
		"accessed bare elsewhere (constructors excepted); mixed access is a data race",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if !analysis.InScope(pass.Pkg.Path(), ScopePrefixes) {
		return nil
	}

	// Pass 1: every field that is the &-operand of a sync/atomic call
	// anywhere in the package, with one sample site for the report, and
	// the selector nodes those atomic accesses themselves use (they are
	// not "bare").
	atomicFields := map[*types.Var]token.Pos{}
	sanctioned := map[*ast.SelectorExpr]bool{}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicCall(pass, call) {
				return true
			}
			for _, arg := range call.Args {
				un, ok := arg.(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				sel, ok := un.X.(*ast.SelectorExpr)
				if !ok {
					continue
				}
				if fld := fieldOf(pass, sel); fld != nil {
					if _, seen := atomicFields[fld]; !seen {
						atomicFields[fld] = call.Pos()
					}
					sanctioned[sel] = true
				}
			}
			return true
		})
	}
	if len(atomicFields) == 0 {
		return nil
	}

	// Pass 2: every other selector resolving to one of those fields is
	// a bare access, unless it sits in a constructor.
	type finding struct {
		pos token.Pos
		fld *types.Var
	}
	var findings []finding
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			constructor := strings.HasPrefix(fn.Name.Name, "new") || strings.HasPrefix(fn.Name.Name, "New")
			if constructor {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok || sanctioned[sel] {
					return true
				}
				fld := fieldOf(pass, sel)
				if fld == nil {
					return true
				}
				if _, isAtomic := atomicFields[fld]; isAtomic {
					findings = append(findings, finding{sel.Pos(), fld})
				}
				return true
			})
		}
		// Package-level variable initializers are pre-publication like
		// constructors, so composite literals there are not inspected.
	}
	sort.Slice(findings, func(i, j int) bool { return findings[i].pos < findings[j].pos })
	for _, f := range findings {
		pass.Reportf(f.pos, "field %s is accessed with sync/atomic at %s but bare here; mixed access is a data race",
			f.fld.Name(), pass.Fset.Position(atomicFields[f.fld]))
	}
	return nil
}

// isAtomicCall reports whether call resolves to a function of package
// sync/atomic.
func isAtomicCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	return ok && fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic"
}

// fieldOf resolves a selector to the struct field it names, nil when it
// is not a field access (method, package qualifier, ...).
func fieldOf(pass *analysis.Pass, sel *ast.SelectorExpr) *types.Var {
	v, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Var)
	if !ok || !v.IsField() {
		return nil
	}
	return v
}
