package atomicmix_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/atomicmix"
)

func TestAtomicmix(t *testing.T) {
	defer func(old []string) { atomicmix.ScopePrefixes = old }(atomicmix.ScopePrefixes)
	atomicmix.ScopePrefixes = []string{"atombad", "atomok"}
	analysistest.Run(t, "testdata", atomicmix.Analyzer, "atombad", "atomok")
}
