package ctxloop_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/ctxloop"
)

func TestCtxloop(t *testing.T) {
	defer func(old []string) { ctxloop.ScopePrefixes = old }(ctxloop.ScopePrefixes)
	ctxloop.ScopePrefixes = []string{"ctxfix"}
	analysistest.Run(t, "testdata", ctxloop.Analyzer, "ctxfix", "ctxout")
}
