// Package ctxloop enforces the cooperative-cancellation invariant the
// algorithm packages adopted in PR 3: a function that accepts a
// context.Context has promised its caller cancellation, so every loop
// nest in it that can iterate with the input size must observe the
// context — by calling ctx.Err()/ctx.Done() (possibly on a stride, as
// the exact DP does), or by passing ctx into a callee that does.
//
// Without this check the promise rots silently: a Solver deadline fires,
// the HTTP client goes away, and an Ω(3^n) subset enumeration keeps a
// core pinned until it finishes. The analyzer makes the invariant hold
// for every future algorithm (the planned exact-bb branch-and-bound
// included) instead of relying on reviewers remembering it.
package ctxloop

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// ScopePrefixes lists the packages whose ctx-taking functions are
// checked. Tests override this to point at fixtures.
var ScopePrefixes = []string{
	"repro/internal/core",
	"repro/internal/setcover",
	"repro/internal/matching",
	"repro/internal/localsearch",
	"repro/internal/dhop",
	"repro/internal/exact",
	"repro/internal/online",
}

// Analyzer is the busylint/ctxloop analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "ctxloop",
	Doc: "flags loops in context-accepting algorithm functions that never observe the context; " +
		"every outermost loop nest must call ctx.Err()/ctx.Done() or pass ctx to a callee",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if !analysis.InScope(pass.Pkg.Path(), ScopePrefixes) {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			ctxVars := contextParams(pass, fn)
			if len(ctxVars) == 0 {
				continue
			}
			checkBody(pass, fn, ctxVars)
		}
	}
	return nil
}

// contextParams returns the named context.Context parameters of fn.
func contextParams(pass *analysis.Pass, fn *ast.FuncDecl) map[types.Object]bool {
	vars := map[types.Object]bool{}
	if fn.Type.Params == nil {
		return vars
	}
	for _, field := range fn.Type.Params.List {
		for _, name := range field.Names {
			if name.Name == "_" {
				continue
			}
			obj := pass.TypesInfo.Defs[name]
			if obj != nil && isContextType(obj.Type()) {
				vars[obj] = true
			}
		}
	}
	return vars
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// checkBody reports every outermost loop in fn whose subtree never
// observes one of the ctx variables. Nested loops are covered by their
// outermost nest: the sanctioned pattern checks the context once per
// outer iteration (possibly on a stride), which is exactly how the
// existing DP and set-cover hot loops amortize the check.
func checkBody(pass *analysis.Pass, fn *ast.FuncDecl, ctxVars map[types.Object]bool) {
	var walk func(n ast.Node, inLoop bool)
	walk = func(n ast.Node, inLoop bool) {
		if n == nil {
			return
		}
		ast.Inspect(n, func(m ast.Node) bool {
			switch loop := m.(type) {
			case *ast.ForStmt, *ast.RangeStmt:
				if m == n {
					return true // the loop we were called on; descend
				}
				if inLoop {
					return true // inner loop of an already-accounted nest
				}
				if !constantBound(pass, loop) && !observesCtx(pass, loop, ctxVars) {
					pass.Reportf(loop.Pos(),
						"loop in %s does not observe its context; call ctx.Err()/ctx.Done() (a stride is fine) or pass ctx to a callee",
						fn.Name.Name)
				}
				walk(loopBody(loop), true)
				return false // handled the subtree ourselves
			}
			return true
		})
	}
	walk(fn.Body, false)
}

func loopBody(loop ast.Node) *ast.BlockStmt {
	switch l := loop.(type) {
	case *ast.ForStmt:
		return l.Body
	case *ast.RangeStmt:
		return l.Body
	}
	return nil
}

// constantBound reports whether the loop trivially runs a compile-time
// constant number of iterations (for i := 0; i < 8; i++, or ranging
// over an array or integer constant): such loops cannot scale with the
// input, so they need no cancellation point.
func constantBound(pass *analysis.Pass, loop ast.Node) bool {
	switch l := loop.(type) {
	case *ast.ForStmt:
		// Both the start and the limit must be constants: a constant
		// limit alone ("i > 0" counting down from n) still scales.
		init, ok := l.Init.(*ast.AssignStmt)
		if !ok || len(init.Rhs) != 1 || !isConstExpr(pass, init.Rhs[0]) {
			return false
		}
		cond, ok := l.Cond.(*ast.BinaryExpr)
		if !ok {
			return false
		}
		return isConstExpr(pass, cond.X) || isConstExpr(pass, cond.Y)
	case *ast.RangeStmt:
		if isConstExpr(pass, l.X) {
			return true // range over an integer constant (go1.22)
		}
		t := pass.TypesInfo.TypeOf(l.X)
		if t == nil {
			return false
		}
		if _, ok := t.Underlying().(*types.Array); ok {
			return true
		}
		if p, ok := t.Underlying().(*types.Pointer); ok {
			_, ok = p.Elem().Underlying().(*types.Array)
			return ok
		}
	}
	return false
}

func isConstExpr(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	return ok && tv.Value != nil
}

// observesCtx reports whether the loop's subtree (condition and body,
// nested loops and function literals included) references any ctx
// variable — an Err/Done call, a select on Done, or passing ctx onward.
func observesCtx(pass *analysis.Pass, loop ast.Node, ctxVars map[types.Object]bool) bool {
	found := false
	ast.Inspect(loop, func(n ast.Node) bool {
		if found {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if obj := pass.TypesInfo.Uses[id]; obj != nil && ctxVars[obj] {
			found = true
			return false
		}
		return true
	})
	return found
}
