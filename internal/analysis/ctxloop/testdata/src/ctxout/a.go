// Package ctxout is outside ctxloop's scope: the same offending code
// as ctxfix.Bad produces no findings here.
package ctxout

import "context"

func Scan(ctx context.Context, xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}
