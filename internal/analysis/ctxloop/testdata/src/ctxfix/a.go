// Package ctxfix exercises busylint/ctxloop: every shape of loop a
// context-accepting algorithm function can contain, flagged or
// sanctioned.
package ctxfix

import "context"

// No context parameter: out of the analyzer's contract entirely.
func Sum(xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}

func Bad(ctx context.Context, xs []int) int {
	total := 0
	for _, x := range xs { // want `loop in Bad does not observe its context`
		total += x
	}
	return total
}

// A constant limit alone is not enough: counting down from n still
// scales with the input.
func Countdown(ctx context.Context, n int) int {
	total := 0
	for i := n; i > 0; i-- { // want `loop in Countdown does not observe its context`
		total += i
	}
	return total
}

func GoodErr(ctx context.Context, xs []int) int {
	total := 0
	for i, x := range xs {
		if i%8 == 0 && ctx.Err() != nil {
			return -1
		}
		total += x
	}
	return total
}

func GoodDone(ctx context.Context, xs []int) int {
	total := 0
	for _, x := range xs {
		select {
		case <-ctx.Done():
			return -1
		default:
		}
		total += x
	}
	return total
}

// Passing ctx to a callee counts: the callee owns the check.
func GoodCallee(ctx context.Context, xs []int) int {
	total := 0
	for range xs {
		total += GoodErr(ctx, xs)
	}
	return total
}

// Constant-bound loops cannot scale with the input.
func ConstBound(ctx context.Context) int {
	total := 0
	for i := 0; i < 8; i++ {
		total += i
	}
	return total
}

func ArrayRange(ctx context.Context) int {
	var a [4]int
	total := 0
	for _, v := range a {
		total += v
	}
	return total
}

// Only the outermost loop of a nest must observe ctx; the sanctioned
// pattern checks once per outer iteration.
func NestedCovered(ctx context.Context, xs []int) int {
	total := 0
	for range xs {
		if ctx.Err() != nil {
			return -1
		}
		for _, x := range xs {
			total += x
		}
	}
	return total
}

func Suppressed(ctx context.Context, xs []int) int {
	total := 0
	//lint:ignore busylint/ctxloop caller contract caps len(xs) at 64
	for _, x := range xs {
		total += x
	}
	return total
}
