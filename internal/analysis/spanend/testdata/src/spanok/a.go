// Package spanok collects the sanctioned span-lifetime shapes: the
// analyzer must stay silent on every function here.
package spanok

import (
	"context"
	"errors"

	"trace"
)

// Deferred is the canonical form.
func Deferred(ctx context.Context) {
	_, sp := trace.Start(ctx, "phase")
	defer sp.End()
	sp.SetAttr("k", "v")
}

// DeferredWithReturns may return from anywhere: the defer covers it.
func DeferredWithReturns(ctx context.Context, fail bool) error {
	_, sp := trace.Start(ctx, "phase")
	defer sp.End()
	if fail {
		return errors.New("boom")
	}
	return nil
}

// StraightLine ends the span explicitly with no return in between —
// the solver's hot-path shape, which snapshots after End.
func StraightLine(ctx context.Context) {
	_, sp := trace.Start(ctx, "phase")
	sp.SetAttr("k", "v")
	sp.End()
}

// BranchEnd ends the span on the early-exit branch before returning,
// and again on the fall-through: every return sits after an End.
func BranchEnd(ctx context.Context, fail bool) error {
	_, sp := trace.Start(ctx, "phase")
	if fail {
		sp.End()
		return errors.New("boom")
	}
	sp.End()
	return nil
}

// ClosureReturn returns from a nested function literal between Start
// and End; that return exits the closure, not this function.
func ClosureReturn(ctx context.Context) {
	_, sp := trace.Start(ctx, "phase")
	f := func(n int) int {
		if n < 0 {
			return 0
		}
		return n
	}
	_ = f(1)
	sp.End()
}

// Suppressed hands span ownership to its caller — the documented
// escape hatch for helpers like the server's startTrace.
func Suppressed(ctx context.Context) (context.Context, *trace.Span) {
	//lint:ignore busylint/spanend ownership transfers to the caller, which defers End
	ctx, sp := trace.Start(ctx, "request")
	return ctx, sp
}
