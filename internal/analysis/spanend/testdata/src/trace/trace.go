// Package trace is the fixture stand-in for repro/internal/trace: the
// analyzer matches the Start function of any package whose import path
// ends in "trace", so the fixtures need only the lifetime surface.
package trace

import "context"

// Span is the fixture span; only its lifetime methods matter.
type Span struct{}

// Start mirrors the real signature: a derived context and a span.
func Start(ctx context.Context, name string) (context.Context, *Span) {
	return ctx, &Span{}
}

// End closes the span.
func (s *Span) End() {}

// SetAttr records an attribute.
func (s *Span) SetAttr(key, value string) {}
