// Package spanbad collects every span-lifetime shape the analyzer must
// flag: discarded spans, blank bindings, spans never ended, and early
// returns that can leave a span running.
package spanbad

import (
	"context"
	"errors"

	"trace"
)

// Discarded starts a span nobody can ever end.
func Discarded(ctx context.Context) {
	trace.Start(ctx, "phase") // want `the span returned by trace.Start is discarded`
}

// Blank binds the span to the blank identifier.
func Blank(ctx context.Context) {
	_, _ = trace.Start(ctx, "phase") // want `assigned to the blank identifier`
}

// NeverEnded keeps the span but forgets End entirely.
func NeverEnded(ctx context.Context) {
	_, sp := trace.Start(ctx, "phase") // want `span sp is started but never ended`
	sp.SetAttr("k", "v")
}

// EarlyReturn ends the span on the happy path only: the error return
// leaves it running.
func EarlyReturn(ctx context.Context, fail bool) error {
	_, sp := trace.Start(ctx, "phase")
	if fail {
		return errors.New("boom") // want `return may leave span sp unended`
	}
	sp.End()
	return nil
}

// ClosureSpan starts a span inside a function literal and loses it
// there: closures are checked as functions of their own.
func ClosureSpan(ctx context.Context) func() {
	return func() {
		_, sp := trace.Start(ctx, "phase") // want `span sp is started but never ended`
		sp.SetAttr("k", "v")
	}
}
