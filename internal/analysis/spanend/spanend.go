// Package spanend keeps the tracing subsystem honest about span
// lifetimes: a *trace.Span that is started but never ended reports a
// still-running duration forever, skews the phase histograms and leaks
// an open child into every snapshot of its trace. The bug is easy to
// write — an early error return between trace.Start and End — and
// invisible at runtime, because an unended span still renders.
//
// The analyzer inspects every trace.Start call in scope and requires
// the returned span to be ended on all paths. Accepted shapes:
//
//	_, sp := trace.Start(ctx, "phase")
//	defer sp.End()                      // the canonical form
//
// or an explicit sp.End() with no return statement between the Start
// and the first End — the straight-line shape the solver's hot path
// uses to snapshot the span before the function returns. Flagged:
// discarding the span (blank identifier or bare call statement),
// never calling End, and any return that can leave the span running.
// A site that hands span ownership elsewhere may carry a
// //lint:ignore busylint/spanend suppression explaining who ends it.
package spanend

import (
	"go/ast"
	"go/types"
	"path"

	"repro/internal/analysis"
)

// ScopePrefixes lists the packages whose trace.Start calls are policed:
// the solver (the repo root) and everything under internal — the serving
// layer and the reoptimization cache both open spans.
var ScopePrefixes = []string{"repro"}

// Analyzer is the busylint/spanend analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "spanend",
	Doc: "requires every span returned by trace.Start to be ended on all paths " +
		"(defer sp.End(), or End before any return); unended spans corrupt durations and snapshots",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if !analysis.InScope(pass.Pkg.Path(), ScopePrefixes) {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				checkFunc(pass, body)
			}
			return true
		})
	}
	return nil
}

// checkFunc finds the trace.Start calls directly inside one function
// body (nested function literals are visited as their own functions by
// run, so their spans are checked against their own bodies).
func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false // owned by its own checkFunc pass
		}
		switch stmt := n.(type) {
		case *ast.ExprStmt:
			if call, ok := stmt.X.(*ast.CallExpr); ok && isTraceStart(pass, call) {
				pass.Reportf(call.Pos(), "the span returned by trace.Start is discarded and can never be ended")
			}
		case *ast.AssignStmt:
			call, ok := startCall(pass, stmt)
			if !ok {
				return true
			}
			span := spanIdent(stmt)
			if span == nil {
				pass.Reportf(call.Pos(), "the span returned by trace.Start is assigned to the blank identifier and can never be ended")
				return true
			}
			checkSpanUse(pass, body, call, span)
		}
		return true
	})
}

// startCall returns the trace.Start call on the right-hand side of an
// assignment, if any.
func startCall(pass *analysis.Pass, stmt *ast.AssignStmt) (*ast.CallExpr, bool) {
	if len(stmt.Rhs) != 1 {
		return nil, false
	}
	call, ok := stmt.Rhs[0].(*ast.CallExpr)
	if !ok || !isTraceStart(pass, call) {
		return nil, false
	}
	return call, true
}

// spanIdent returns the identifier binding the span (the second result
// of trace.Start), or nil when it is blank or the shape is unexpected.
func spanIdent(stmt *ast.AssignStmt) *ast.Ident {
	if len(stmt.Lhs) != 2 {
		return nil
	}
	id, ok := stmt.Lhs[1].(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	return id
}

// checkSpanUse enforces the lifetime discipline for one started span:
// a defer sp.End() anywhere in the function accepts the site outright;
// otherwise there must be at least one sp.End() call, and no return
// statement may appear between the Start and the first End.
func checkSpanUse(pass *analysis.Pass, body *ast.BlockStmt, call *ast.CallExpr, span *ast.Ident) {
	obj := pass.TypesInfo.Defs[span]
	if obj == nil {
		obj = pass.TypesInfo.Uses[span]
	}
	endPos := call.End()
	firstEnd := body.End()
	haveEnd := false
	deferred := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.DeferStmt:
			if isSpanEnd(pass, s.Call, span, obj) {
				deferred = true
			}
		case *ast.CallExpr:
			if isSpanEnd(pass, s, span, obj) && s.Pos() > endPos {
				haveEnd = true
				if s.Pos() < firstEnd {
					firstEnd = s.Pos()
				}
			}
		}
		return true
	})
	if deferred {
		return
	}
	if !haveEnd {
		pass.Reportf(call.Pos(), "span %s is started but never ended; add defer %s.End()", span.Name, span.Name)
		return
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false // a return inside a closure does not exit this function
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		if ret.Pos() > endPos && ret.Pos() < firstEnd {
			pass.Reportf(ret.Pos(), "return may leave span %s unended; use defer %s.End() or end it before returning", span.Name, span.Name)
		}
		return true
	})
}

// isTraceStart reports whether call resolves to the Start function of a
// package named trace (the fixture stub or repro/internal/trace).
func isTraceStart(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Name() != "Start" || fn.Pkg() == nil {
		return false
	}
	return path.Base(fn.Pkg().Path()) == "trace" && fn.Type().(*types.Signature).Recv() == nil
}

// isSpanEnd reports whether call is span.End() on the identifier bound
// by the Start assignment (matched by object identity, not name, so a
// shadowed variable does not satisfy the original span).
func isSpanEnd(pass *analysis.Pass, call *ast.CallExpr, span *ast.Ident, obj types.Object) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "End" {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok || id.Name != span.Name {
		return false
	}
	if obj != nil {
		if used := pass.TypesInfo.Uses[id]; used != nil {
			return used == obj
		}
	}
	return true
}
