package spanend_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/spanend"
)

func TestSpanend(t *testing.T) {
	defer func(scope []string) { spanend.ScopePrefixes = scope }(spanend.ScopePrefixes)
	spanend.ScopePrefixes = []string{"spanbad", "spanok"}
	analysistest.Run(t, "testdata", spanend.Analyzer, "spanbad", "spanok")
}
