// Package analysistest runs an analyzer over golden fixture packages,
// mirroring golang.org/x/tools/go/analysis/analysistest: fixture files
// under testdata/src/<pkg> annotate the lines expected to be flagged
// with trailing comments of the form
//
//	// want "regexp"
//	// want "first" "second"
//
// Every reported diagnostic must match a want on its line and every
// want must be matched — unmatched in either direction fails the test.
// Fixtures may import other fixture packages (resolved under
// testdata/src) and the standard library (resolved from source via
// go/importer), so the harness needs no compiled export data and works
// offline.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// Run loads each fixture package below dir/src and applies the
// analyzer, checking diagnostics against the // want annotations.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	ld := &loader{
		srcDir: filepath.Join(dir, "src"),
		fset:   token.NewFileSet(),
		pkgs:   map[string]*loaded{},
	}
	ld.std = importer.ForCompiler(ld.fset, "source", nil)
	for _, path := range pkgPaths {
		pkg, err := ld.load(path)
		if err != nil {
			t.Fatalf("loading fixture %s: %v", path, err)
		}
		diags, err := analysis.Run(&analysis.Package{
			Fset:  ld.fset,
			Files: pkg.files,
			Types: pkg.types,
			Info:  pkg.info,
		}, []*analysis.Analyzer{a})
		if err != nil {
			t.Fatalf("running %s on %s: %v", a.Name, path, err)
		}
		check(t, ld.fset, pkg.files, diags)
	}
}

type loaded struct {
	files []*ast.File
	types *types.Package
	info  *types.Info
}

type loader struct {
	srcDir string
	fset   *token.FileSet
	pkgs   map[string]*loaded
	std    types.Importer
}

// Import resolves fixture-package imports recursively and everything
// else through the source-based stdlib importer.
func (ld *loader) Import(path string) (*types.Package, error) {
	if dirExists(filepath.Join(ld.srcDir, path)) {
		p, err := ld.load(path)
		if err != nil {
			return nil, err
		}
		return p.types, nil
	}
	return ld.std.Import(path)
}

func dirExists(p string) bool {
	st, err := os.Stat(p)
	return err == nil && st.IsDir()
}

func (ld *loader) load(path string) (*loaded, error) {
	if p, ok := ld.pkgs[path]; ok {
		return p, nil
	}
	dir := filepath.Join(ld.srcDir, path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(ld.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	info := analysis.NewInfo()
	conf := types.Config{Importer: ld}
	tpkg, err := conf.Check(path, ld.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %v", path, err)
	}
	p := &loaded{files: files, types: tpkg, info: info}
	ld.pkgs[path] = p
	return p, nil
}

type want struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

var wantRE = regexp.MustCompile(`//\s*want\s+(.*)`)

func check(t *testing.T, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, pat := range splitPatterns(m[1]) {
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", pos, pat, err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, pattern: re})
				}
			}
		}
	}
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		found := false
		for _, w := range wants {
			if w.matched || w.file != pos.Filename || w.line != pos.Line {
				continue
			}
			if w.pattern.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: unexpected diagnostic: %s [%s]", pos, d.Message, d.Analyzer)
		}
	}
	sort.Slice(wants, func(i, j int) bool {
		if wants[i].file != wants[j].file {
			return wants[i].file < wants[j].file
		}
		return wants[i].line < wants[j].line
	})
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.pattern)
		}
	}
}

// splitPatterns parses the space-separated quoted patterns after
// "// want": both "double-quoted" and `backquoted` forms are accepted.
func splitPatterns(s string) []string {
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		var quote byte
		switch s[0] {
		case '"', '`':
			quote = s[0]
		default:
			// Ignore trailing non-quoted junk (e.g. a closing */).
			return out
		}
		end := strings.IndexByte(s[1:], quote)
		if end < 0 {
			return out
		}
		raw := s[:end+2]
		if quote == '"' {
			if unq, err := strconv.Unquote(raw); err == nil {
				out = append(out, unq)
			}
		} else {
			out = append(out, raw[1:len(raw)-1])
		}
		s = strings.TrimSpace(s[end+2:])
	}
	return out
}
