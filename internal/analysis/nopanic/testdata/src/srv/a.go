// Package srv stands in for internal/server: every way handler or
// codec code can kill the process or the connection goroutine is
// flagged; the structured-error path is not.
package srv

import (
	"errors"
	"log"
	"os"

	"panlib"
)

var logger = log.New(os.Stderr, "srv ", 0)

func Handle(n int) error {
	if n < 0 {
		panic("negative span") // want `panic is forbidden in server code`
	}
	if n == 1 {
		log.Fatalf("bad request %d", n) // want `log.Fatalf is forbidden in server code`
	}
	if n == 2 {
		logger.Panicln("codec failure") // want `log.Panicln is forbidden in server code`
	}
	if n == 3 {
		os.Exit(1) // want `os.Exit is forbidden in server code`
	}
	if n == 4 {
		return errors.New("structured error: the sanctioned path")
	}
	_ = panlib.New(0, n) // want `panlib.New panics on reversed endpoints`
	log.Printf("handled %d", n)
	return nil
}

func Validated(a, b int) (int, error) {
	if b < a {
		return 0, errors.New("reversed endpoints")
	}
	//lint:ignore busylint/nopanic endpoints validated on the line above
	return panlib.New(a, b), nil
}
