// Package panlib stands in for a library constructor documented to
// panic on invalid input. It is outside nopanic's scope, so its own
// panic is not flagged — only calls to it from server code are.
package panlib

func New(a, b int) int {
	if b < a {
		panic("reversed endpoints")
	}
	return b - a
}
