// Package nopanic structurally prevents the class of bug PR 5 fixed by
// hand: a panic reachable from daemon handler or codec code. A panicking
// wire decode (the interval.New end < start case) takes down the whole
// connection goroutine with a 500 and a stack trace instead of the
// structured 400 the protocol promises, and log.Fatal/os.Exit in a
// handler kills the entire daemon mid-drain.
//
// The analyzer forbids, anywhere in internal/server: the panic builtin,
// log.Fatal*/log.Panic* (package functions and *log.Logger methods),
// os.Exit, and calls into a small denylist of library constructors that
// are documented to panic on invalid input and therefore must stay
// behind validation at the wire boundary.
package nopanic

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// ScopePrefixes lists the packages in which panicking is forbidden.
var ScopePrefixes = []string{"repro/internal/server"}

// Denylisted maps "pkgpath.Func" to why the function is forbidden:
// these are library entry points documented to panic on inputs that, in
// server code, can originate from the wire.
var Denylisted = map[string]string{
	"repro/internal/interval.New":                    "panics when end < start; validate and construct interval.Interval directly",
	"repro/internal/interval.WeightedMaxConcurrency": "panics on mismatched slice lengths; validate lengths first",
	"repro/internal/online.NewRatioTracker":          "panics when g < 1; use online.NewSession, which validates and errors",
	"repro/internal/dhop.SegmentCost":                "panics when d < 1; validate the regeneration range first",
}

// Analyzer is the busylint/nopanic analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "nopanic",
	Doc: "forbids panic, log.Fatal*/log.Panic*, os.Exit and known-panicking constructors in server " +
		"handler/codec code; wire-facing paths must return structured errors",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if !analysis.InScope(pass.Pkg.Path(), ScopePrefixes) {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			checkCall(pass, call)
			return true
		})
	}
	return nil
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if b, ok := pass.TypesInfo.Uses[fun].(*types.Builtin); ok && b.Name() == "panic" {
			pass.Reportf(call.Pos(), "panic is forbidden in server code; return a structured error instead")
		}
	case *ast.SelectorExpr:
		obj := pass.TypesInfo.Uses[fun.Sel]
		if obj == nil || obj.Pkg() == nil {
			return
		}
		name := obj.Name()
		switch obj.Pkg().Path() {
		case "log":
			if strings.HasPrefix(name, "Fatal") || strings.HasPrefix(name, "Panic") {
				pass.Reportf(call.Pos(), "log.%s is forbidden in server code; log the error and return it", name)
			}
		case "os":
			if name == "Exit" {
				pass.Reportf(call.Pos(), "os.Exit is forbidden in server code; only main may decide the process exit")
			}
		}
		if fn, ok := obj.(*types.Func); ok && fn.Type().(*types.Signature).Recv() == nil {
			key := obj.Pkg().Path() + "." + name
			if why, bad := Denylisted[key]; bad {
				pass.Reportf(call.Pos(), "%s %s", key, why)
			}
		}
	}
}
