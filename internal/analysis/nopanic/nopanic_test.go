package nopanic_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/nopanic"
)

func TestNopanic(t *testing.T) {
	defer func(scope []string, deny map[string]string) {
		nopanic.ScopePrefixes = scope
		nopanic.Denylisted = deny
	}(nopanic.ScopePrefixes, nopanic.Denylisted)
	nopanic.ScopePrefixes = []string{"srv"}
	nopanic.Denylisted = map[string]string{
		"panlib.New": "panics on reversed endpoints; validate first",
	}
	analysistest.Run(t, "testdata", nopanic.Analyzer, "srv", "panlib")
}
