// Package goleak polices goroutine launches in the long-lived serving
// packages: a `go` statement must have a visible escape path, or the
// goroutine can outlive its work and pin memory (and its referents)
// for the daemon's lifetime. Accepted escape signals, checked over the
// spawned function's body (same-package callees are resolved and
// inspected transitively):
//
//   - it observes a context.Context (ctx.Done()/ctx.Err(), or passes
//     ctx to a callee);
//   - it participates in a sync.WaitGroup (the Done that pairs with the
//     launcher's Add);
//   - it performs any channel operation — send, receive, close, select,
//     or ranging over a channel — since a communicating goroutine ends
//     when its peers hang up.
//
// A spawned function the analyzer cannot see into (a cross-package
// call, a stored function value) is flagged too: the reader cannot
// audit its lifetime either. A launch whose goroutine intentionally
// runs forever carries a //lint:ignore busylint/goleak waiver saying
// who owns it.
package goleak

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// ScopePrefixes lists the packages whose go statements are policed: the
// serving daemon's long-lived packages. Tests override this to point at
// fixtures.
var ScopePrefixes = []string{
	"repro/internal/server",
	"repro/internal/journal",
	"repro/internal/parallel",
}

// Analyzer is the busylint/goleak analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "goleak",
	Doc: "every go statement in the serving packages needs an escape path — context observation, " +
		"a WaitGroup, or channel communication — so the goroutine provably ends",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if !analysis.InScope(pass.Pkg.Path(), ScopePrefixes) {
		return nil
	}
	decls := packageFuncs(pass)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if !hasEscapePath(pass, gs.Call, decls, map[*ast.FuncDecl]bool{}) {
				pass.Reportf(gs.Pos(), "goroutine has no visible escape path; observe a context, join a WaitGroup, or communicate on a channel (or waive with the owner's name)")
			}
			return true
		})
	}
	return nil
}

// packageFuncs indexes this package's function and method declarations
// by their type object, so `go b.run()` can be followed into run.
func packageFuncs(pass *analysis.Pass) map[types.Object]*ast.FuncDecl {
	decls := map[types.Object]*ast.FuncDecl{}
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			if fn, ok := d.(*ast.FuncDecl); ok && fn.Body != nil {
				if obj := pass.TypesInfo.Defs[fn.Name]; obj != nil {
					decls[obj] = fn
				}
			}
		}
	}
	return decls
}

// hasEscapePath reports whether the spawned call's body shows an escape
// signal, following same-package callees (visited guards recursion).
func hasEscapePath(pass *analysis.Pass, call *ast.CallExpr, decls map[types.Object]*ast.FuncDecl, visited map[*ast.FuncDecl]bool) bool {
	// Arguments evaluated at launch: passing a context or channel into
	// the goroutine counts (the spawned function receives the means to
	// stop), checked by signal-typed arguments below via bodySignals on
	// the callee; a FuncLit is the common case.
	switch fun := call.Fun.(type) {
	case *ast.FuncLit:
		return bodySignals(pass, fun.Body, decls, visited)
	default:
		obj := calleeObject(pass, call)
		if obj == nil {
			return false // cannot see into it; flag
		}
		fn, ok := decls[obj]
		if !ok {
			return false // cross-package or interface call; flag
		}
		if visited[fn] {
			return false
		}
		visited[fn] = true
		return bodySignals(pass, fn.Body, decls, visited)
	}
}

// bodySignals scans one function body for an escape signal, descending
// into nested literals and same-package callees.
func bodySignals(pass *analysis.Pass, body *ast.BlockStmt, decls map[types.Object]*ast.FuncDecl, visited map[*ast.FuncDecl]bool) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt, *ast.SelectStmt:
			found = true
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				found = true
			}
		case *ast.RangeStmt:
			if t := pass.TypesInfo.TypeOf(n.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					found = true
				}
			}
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "close" {
				if pass.TypesInfo.Uses[id] == nil || pass.TypesInfo.Uses[id].Pkg() == nil {
					found = true // the predeclared close builtin
					return false
				}
			}
			// Follow same-package callees: the escape path may live one
			// level down (go s.serve() -> serve selects on ctx.Done()).
			if obj := calleeObject(pass, n); obj != nil {
				if fn, ok := decls[obj]; ok && !visited[fn] {
					visited[fn] = true
					if bodySignals(pass, fn.Body, decls, visited) {
						found = true
						return false
					}
				}
			}
		case *ast.Ident:
			if obj := pass.TypesInfo.Uses[n]; obj != nil {
				if isContextType(obj.Type()) || isWaitGroup(obj.Type()) {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// calleeObject resolves the called function or method to its type
// object, nil for dynamic calls (function values, interface methods
// outside the package).
func calleeObject(pass *analysis.Pass, call *ast.CallExpr) types.Object {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return pass.TypesInfo.Uses[fun]
	case *ast.SelectorExpr:
		return pass.TypesInfo.Uses[fun.Sel]
	}
	return nil
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

func isWaitGroup(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup"
}
