// Package leakbad launches goroutines with no escape path — the leaks
// busylint/goleak must flag.
package leakbad

func work() {}

func spin() {
	for {
		work()
	}
}

// LaunchSpin spawns a named function that loops forever with no signal.
func LaunchSpin() {
	go spin() // want `no visible escape path`
}

// LaunchLit spawns a literal that loops forever.
func LaunchLit() {
	go func() { // want `no visible escape path`
		for {
			work()
		}
	}()
}

// LaunchOpaque spawns a function value the analyzer cannot see into.
func LaunchOpaque(f func()) {
	go f() // want `no visible escape path`
}
