// Package leakok launches goroutines the sanctioned ways: observing a
// context, joining a WaitGroup, or communicating on a channel —
// including through a same-package callee (go s.run()).
package leakok

import (
	"context"
	"sync"
)

type S struct {
	in   chan int
	done chan struct{}
}

// run drains the input channel and announces exit — the worker-owns-
// the-state shape the stream batcher uses.
func (s *S) run() {
	for v := range s.in {
		_ = v
	}
	close(s.done)
}

// Start's goroutine escapes when the channel closes; the signal lives
// in the callee, one level down.
func (s *S) Start() {
	go s.run()
}

// Fan joins every worker through the WaitGroup.
func Fan(n int) {
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func() {
			defer wg.Done()
		}()
	}
	wg.Wait()
}

// WithCtx observes cancellation.
func WithCtx(ctx context.Context) {
	go func() {
		<-ctx.Done()
	}()
}

// Sender communicates; it ends when the receiver takes the value.
func Sender(c chan int) {
	go func() { c <- 1 }()
}
