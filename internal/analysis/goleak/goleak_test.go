package goleak_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/goleak"
)

func TestGoleak(t *testing.T) {
	defer func(old []string) { goleak.ScopePrefixes = old }(goleak.ScopePrefixes)
	goleak.ScopePrefixes = []string{"leakbad", "leakok"}
	analysistest.Run(t, "testdata", goleak.Analyzer, "leakbad", "leakok")
}
