package analysis_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// funcFlagger reports a finding at every function declaration, giving
// the suppression machinery something deterministic to waive.
var funcFlagger = &analysis.Analyzer{
	Name: "fake",
	Doc:  "flags every function declaration (test helper)",
	Run: func(pass *analysis.Pass) error {
		for _, file := range pass.Files {
			for _, decl := range file.Decls {
				if fn, ok := decl.(*ast.FuncDecl); ok {
					pass.Reportf(fn.Pos(), "function %s", fn.Name.Name)
				}
			}
		}
		return nil
	},
}

func runOn(t *testing.T, src string) []analysis.Diagnostic {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "a.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := analysis.NewInfo()
	conf := types.Config{}
	pkg, err := conf.Check("p", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	diags, err := analysis.Run(&analysis.Package{Fset: fset, Files: []*ast.File{f}, Types: pkg, Info: info},
		[]*analysis.Analyzer{funcFlagger})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return diags
}

func messages(diags []analysis.Diagnostic) []string {
	var out []string
	for _, d := range diags {
		out = append(out, d.Analyzer+": "+d.Message)
	}
	return out
}

func TestSuppressionWithReason(t *testing.T) {
	diags := runOn(t, `package p

//lint:ignore busylint/fake reviewed: the helper is fine
func a() {}

func b() {}
`)
	got := messages(diags)
	if len(got) != 1 || !strings.Contains(got[0], "function b") {
		t.Fatalf("expected only b flagged, got %v", got)
	}
}

func TestReasonlessSuppressionDoesNotSuppress(t *testing.T) {
	diags := runOn(t, `package p

//lint:ignore busylint/fake
func a() {}
`)
	got := messages(diags)
	if len(got) != 2 {
		t.Fatalf("expected finding plus malformed-directive report, got %v", got)
	}
	var sawMalformed, sawFinding bool
	for _, m := range got {
		if strings.HasPrefix(m, "suppression: ") && strings.Contains(m, "has no reason") {
			sawMalformed = true
		}
		if strings.Contains(m, "function a") {
			sawFinding = true
		}
	}
	if !sawMalformed || !sawFinding {
		t.Fatalf("missing expected diagnostics: %v", got)
	}
}

func TestSuppressionWrongAnalyzer(t *testing.T) {
	diags := runOn(t, `package p

//lint:ignore busylint/other per-analyzer directives do not cross over
func a() {}
`)
	if got := messages(diags); len(got) != 1 || !strings.Contains(got[0], "function a") {
		t.Fatalf("expected a still flagged, got %v", got)
	}
}

func TestSuppressionCommaList(t *testing.T) {
	diags := runOn(t, `package p

//lint:ignore busylint/other,busylint/fake one directive may waive several analyzers
func a() {}
`)
	if got := messages(diags); len(got) != 0 {
		t.Fatalf("expected no findings, got %v", got)
	}
}

func TestForeignDirectiveIgnored(t *testing.T) {
	// A staticcheck-style directive that names no busylint analyzer is
	// not ours to police and must not suppress busylint findings.
	diags := runOn(t, `package p

//lint:ignore SA4006 someone else's checker
func a() {}
`)
	if got := messages(diags); len(got) != 1 || !strings.Contains(got[0], "function a") {
		t.Fatalf("expected a still flagged, got %v", got)
	}
}

func TestInScope(t *testing.T) {
	prefixes := []string{"repro/internal/online"}
	for path, want := range map[string]bool{
		"repro/internal/online":        true,
		"repro/internal/online/replay": true,
		"repro/internal/onlinex":       false,
		"repro/internal/server":        false,
	} {
		if got := analysis.InScope(path, prefixes); got != want {
			t.Errorf("InScope(%q) = %v, want %v", path, got, want)
		}
	}
}

func TestIsTestFile(t *testing.T) {
	if !analysis.IsTestFile("a_test.go") || analysis.IsTestFile("a.go") {
		t.Error("IsTestFile misclassifies")
	}
}
