// Package lockbad exercises every flagging path of busylint/locksafe:
// leaks through early returns, panics, switches, a self-deadlock, and a
// lock-order inversion across two methods.
package lockbad

import "sync"

type S struct {
	mu sync.Mutex
	rw sync.RWMutex
	v  int
}

// LeakOnEarlyReturn leaks mu when c is true.
func (s *S) LeakOnEarlyReturn(c bool) int {
	s.mu.Lock() // want `lock s\.mu may still be held`
	if c {
		return s.v
	}
	s.mu.Unlock()
	return 0
}

// LeakOnPanic leaks mu on the explicit panic path.
func (s *S) LeakOnPanic(c bool) {
	s.mu.Lock() // want `lock s\.mu may still be held`
	if c {
		panic("boom")
	}
	s.mu.Unlock()
}

// NeverReleased never unlocks at all.
func (s *S) NeverReleased() {
	s.mu.Lock() // want `lock s\.mu may still be held`
	s.v++
}

// ReadLeak leaks the read lock through one switch case.
func (s *S) ReadLeak(n int) int {
	s.rw.RLock() // want `read lock s\.rw may still be held`
	switch n {
	case 0:
		s.rw.RUnlock()
		return 0
	case 1:
		return s.v
	}
	s.rw.RUnlock()
	return s.v
}

// DoubleLock write-locks a mutex it already holds.
func (s *S) DoubleLock() {
	s.mu.Lock()
	s.mu.Lock() // want `self-deadlock`
	s.mu.Unlock()
	s.mu.Unlock()
}

// DeferredStillDoubleLocks: the deferred unlock has not run yet when the
// second Lock blocks.
func (s *S) DeferredStillDoubleLocks() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.mu.Lock() // want `self-deadlock`
	s.mu.Unlock()
}

type T struct {
	a sync.Mutex
	b sync.Mutex
}

// AB acquires a before b — the canonical order.
func (t *T) AB() {
	t.a.Lock()
	t.b.Lock()
	t.b.Unlock()
	t.a.Unlock()
}

// BA reverses the order; together with AB this can deadlock.
func (t *T) BA() {
	t.b.Lock()
	t.a.Lock() // want `lock order inversion`
	t.a.Unlock()
	t.b.Unlock()
}
