// Package lockok holds the sanctioned locking shapes busylint/locksafe
// must accept without a finding: deferred release (panic paths
// included), explicit release on every path, per-iteration lock/unlock,
// read/write splits, consistent ordering and the ignored TryLock.
package lockok

import "sync"

type S struct {
	mu sync.Mutex
	rw sync.RWMutex
	v  int
}

// DeferUnlock is the canonical shape.
func (s *S) DeferUnlock() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.v
}

// DeferCoversPanic: the deferred unlock runs during unwinding.
func (s *S) DeferCoversPanic(c bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if c {
		panic("boom")
	}
}

// AllPathsRelease unlocks explicitly on every path out.
func (s *S) AllPathsRelease(c bool) int {
	s.mu.Lock()
	if c {
		s.mu.Unlock()
		return 1
	}
	s.mu.Unlock()
	return 0
}

// LoopLockUnlock holds the lock only inside each iteration.
func (s *S) LoopLockUnlock(n int) {
	for i := 0; i < n; i++ {
		s.mu.Lock()
		s.v++
		s.mu.Unlock()
	}
}

// RWReadPath releases the read half via defer.
func (s *S) RWReadPath() int {
	s.rw.RLock()
	defer s.rw.RUnlock()
	return s.v
}

// DoubleCheck drops the read lock before taking the write lock.
func (s *S) DoubleCheck() {
	s.rw.RLock()
	v := s.v
	s.rw.RUnlock()
	if v == 0 {
		s.rw.Lock()
		s.v = 1
		s.rw.Unlock()
	}
}

// TryLockIgnored: conditional acquisition is outside the model.
func (s *S) TryLockIgnored() {
	if s.mu.TryLock() {
		s.v++
		s.mu.Unlock()
	}
}

type T struct {
	a sync.Mutex
	b sync.Mutex
}

// One and Two acquire a before b consistently — no inversion.
func (t *T) One() {
	t.a.Lock()
	t.b.Lock()
	t.b.Unlock()
	t.a.Unlock()
}

func (t *T) Two() {
	t.a.Lock()
	defer t.a.Unlock()
	t.b.Lock()
	defer t.b.Unlock()
}

// ClosureOwnsItsLock: the literal's lock discipline is checked against
// the literal itself, not the enclosing function.
func (s *S) ClosureOwnsItsLock() func() {
	return func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		s.v++
	}
}
