// Package locksafe proves the two lock invariants the serving path's
// mutexes rely on, using the CFG/dataflow engine rather than syntax:
//
//  1. Release on all paths: every sync.Mutex/RWMutex Lock or RLock must
//     be released on every control-flow path out of the function — early
//     returns and explicit panics included. A reached `defer mu.Unlock()`
//     satisfies every later exit (that is exactly what defer guarantees,
//     panic unwinding included); an Unlock on the straight-line path
//     satisfies only the exits it dominates. The analysis is a forward
//     may-held dataflow: a lock still held on ANY path into the exit
//     block is a finding, reported at its acquisition site.
//
//  2. Consistent acquisition order: within a package, if one function
//     acquires lock B while holding lock A and another acquires A while
//     holding B, the pair can deadlock when the functions race. Held-at
//     acquisition pairs are collected from the same dataflow facts
//     (keyed by struct field or package-level variable, so the order is
//     comparable across functions) and inversions are reported at the
//     later-seen acquisition.
//
// Also flagged: re-acquiring a write lock already held on every path to
// the call (`mu.Lock()` twice) — a guaranteed self-deadlock. TryLock is
// ignored (its acquisition is conditional; modeling it needs path
// sensitivity the suite does not buy). A function that intentionally
// returns holding a lock (a lock-helper split across functions) carries
// a //lint:ignore busylint/locksafe waiver naming who releases it.
package locksafe

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"repro/internal/analysis"
	"repro/internal/analysis/cfg"
	"repro/internal/analysis/dataflow"
)

// ScopePrefixes lists the packages checked: the whole tree — every
// package that holds a mutex must release it. Tests override this to
// point at fixtures.
var ScopePrefixes = []string{"repro"}

// Analyzer is the busylint/locksafe analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "locksafe",
	Doc: "requires every mutex Lock/RLock to be released on all CFG paths (early returns and " +
		"panics included) and lock acquisition order to be consistent across a package",
	Run: run,
}

// lockOp classifies one call site touching a mutex.
type lockOp int

const (
	opNone lockOp = iota
	opLock
	opUnlock
)

// lockMode distinguishes the write and read halves of an RWMutex.
type lockMode byte

const (
	modeWrite lockMode = 'W'
	modeRead  lockMode = 'R'
)

// lockState is one held lock: where it was first acquired, and whether
// a `defer Unlock` reached on every path to here already guarantees its
// release at function exit. A deferred-released lock is still held
// right now — it participates in the ordering check and the
// self-deadlock check — but it cannot leak through an exit.
type lockState struct {
	pos      token.Pos
	deferred bool
}

// held is the dataflow fact: locks that may be held, keyed by the
// receiver expression (e.g. "s.mu") plus mode.
type held map[string]lockState

func (h held) clone() held {
	c := make(held, len(h))
	for k, v := range h {
		c[k] = v
	}
	return c
}

func heldEqual(a, b held) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if w, ok := b[k]; !ok || w != v {
			return false
		}
	}
	return true
}

// join is the may-union: earliest acquisition position wins (a finding
// points at the first Lock that can leak), and the release-at-exit
// guarantee survives only if every joining path has it.
func join(a, b held) held {
	u := a.clone()
	for k, v := range b {
		w, ok := u[k]
		if !ok {
			u[k] = v
			continue
		}
		if v.pos < w.pos {
			w.pos = v.pos
		}
		w.deferred = w.deferred && v.deferred
		u[k] = w
	}
	return u
}

// orderEdge records "to was acquired while from was held" for the
// package-wide ordering check.
type orderEdge struct{ from, to string }

type orderGraph struct {
	edges map[orderEdge]token.Pos // earliest site per direction
}

func run(pass *analysis.Pass) error {
	if !analysis.InScope(pass.Pkg.Path(), ScopePrefixes) {
		return nil
	}
	order := &orderGraph{edges: map[orderEdge]token.Pos{}}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				checkFunc(pass, body, order)
			}
			return true
		})
	}
	order.reportInversions(pass)
	return nil
}

// checkFunc runs the may-held analysis over one function body and
// reports locks that can leak through an exit, write locks re-acquired
// while held, and feeds the ordering graph.
func checkFunc(pass *analysis.Pass, body *ast.BlockStmt, order *orderGraph) {
	g := cfg.New(body)
	res := dataflow.Forward(g, dataflow.Problem[held]{
		Entry:    held{},
		Join:     join,
		Transfer: func(b *cfg.Block, in held) held { return transfer(pass, b, in, nil, nil) },
		Equal:    heldEqual,
	})

	// Reporting pass: replay each reachable block once on its solved
	// input fact. Reports must not come from inside the fixpoint (a
	// block transfers many times); this single deterministic replay in
	// block order reports each site exactly once.
	reported := map[token.Pos]bool{}
	for _, b := range g.Blocks {
		in, ok := res.In[b]
		if !ok {
			continue // unreachable
		}
		transfer(pass, b, in, order, func(pos token.Pos, format string, args ...any) {
			if !reported[pos] {
				reported[pos] = true
				pass.Reportf(pos, format, args...)
			}
		})
	}

	if exit, ok := res.In[g.Exit]; ok {
		keys := make([]string, 0, len(exit))
		for k := range exit {
			if !exit[k].deferred {
				keys = append(keys, k)
			}
		}
		sort.Slice(keys, func(i, j int) bool { return exit[keys[i]].pos < exit[keys[j]].pos })
		for _, k := range keys {
			expr, mode := splitKey(k)
			verb := "Unlock"
			if mode == modeRead {
				verb = "RUnlock"
			}
			pass.Reportf(exit[k].pos, "%s may still be held on some path out of the function; add defer %s.%s() or release it before every return", describeLock(expr, mode), expr, verb)
		}
	}
}

// transfer applies one block's lock operations to the fact. When report
// is non-nil (the replay pass) it also reports double write-locks and
// records ordering edges.
func transfer(pass *analysis.Pass, b *cfg.Block, in held, order *orderGraph, report func(token.Pos, string, ...any)) held {
	out := in.clone()
	for _, n := range b.Stmts {
		if deferStmt, ok := n.(*ast.DeferStmt); ok {
			// A reached defer guarantees the release at every later exit
			// (normal or panicking): the lock stays held — it still
			// orders against later acquisitions — but cannot leak.
			if key, op, _ := classify(pass, deferStmt.Call); op == opUnlock {
				if st, ok := out[key]; ok {
					st.deferred = true
					out[key] = st
				}
			}
			continue
		}
		ast.Inspect(n, func(m ast.Node) bool {
			if _, isLit := m.(*ast.FuncLit); isLit {
				return false // a closure's locks are its own function's problem
			}
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			key, op, mode := classify(pass, call)
			switch op {
			case opLock:
				if report != nil {
					if _, dup := out[key]; dup && mode == modeWrite {
						expr, _ := splitKey(key)
						report(call.Pos(), "%s.Lock() while %s may already be held: self-deadlock", expr, expr)
					}
					if order != nil {
						order.record(pass, out, key, call.Pos())
					}
				}
				if _, dup := out[key]; !dup {
					out[key] = lockState{pos: call.Pos()}
				}
			case opUnlock:
				delete(out, key)
			}
			return true
		})
	}
	return out
}

// classify resolves a call to a lock operation on a sync mutex: the
// method must be Lock/RLock/Unlock/RUnlock with a receiver of type
// sync.Mutex, sync.RWMutex or sync.Locker (embedded mutexes resolve
// through the method's declared receiver, so `s.Lock()` on a struct
// embedding sync.Mutex is recognized).
func classify(pass *analysis.Pass, call *ast.CallExpr) (key string, op lockOp, mode lockMode) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", opNone, modeWrite
	}
	switch sel.Sel.Name {
	case "Lock":
		op, mode = opLock, modeWrite
	case "RLock":
		op, mode = opLock, modeRead
	case "Unlock":
		op, mode = opUnlock, modeWrite
	case "RUnlock":
		op, mode = opUnlock, modeRead
	default:
		return "", opNone, modeWrite
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok {
		return "", opNone, modeWrite
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || !isSyncLockType(sig.Recv().Type()) {
		return "", opNone, modeWrite
	}
	return types.ExprString(sel.X) + ":" + string(mode), op, mode
}

func isSyncLockType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	switch t := t.(type) {
	case *types.Named:
		obj := t.Obj()
		if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
			return false
		}
		switch obj.Name() {
		case "Mutex", "RWMutex", "Locker":
			return true
		}
	case *types.Interface:
		// sync.Locker method sets resolve here when called through an
		// unnamed interface; accept any interface demanding Lock/Unlock.
		return t.NumMethods() > 0
	}
	return false
}

func splitKey(key string) (expr string, mode lockMode) {
	return key[:len(key)-2], lockMode(key[len(key)-1])
}

func describeLock(expr string, mode lockMode) string {
	if mode == modeRead {
		return fmt.Sprintf("read lock %s", expr)
	}
	return fmt.Sprintf("lock %s", expr)
}

// record adds "newKey acquired while h held" edges. Only locks with a
// cross-function identity participate: struct fields and package-level
// variables, normalized so s.mu in one method and c.mu in another
// compare equal when they are the same field of the same type.
func (o *orderGraph) record(pass *analysis.Pass, h held, newKey string, pos token.Pos) {
	to := stableLockID(pass, newKey, pos)
	if to == "" {
		return
	}
	for heldKey, heldSt := range h {
		from := stableLockID(pass, heldKey, heldSt.pos)
		if from == "" || from == to {
			continue
		}
		e := orderEdge{from, to}
		if prev, ok := o.edges[e]; !ok || pos < prev {
			o.edges[e] = pos
		}
	}
}

// stableIDs memoizes per (expr key, acquisition pos) — but positions
// differ per site, so resolution happens through the type information
// of the flagged call's receiver, captured at classify time. To keep
// the analyzer single-pass, stableLockID re-resolves from the key's
// expression text against the package scope: a.b.mu-style selectors
// resolve to TypeOfB.mu, bare identifiers to package-level variables.
func stableLockID(pass *analysis.Pass, key string, pos token.Pos) string {
	expr, _ := splitKey(key)
	// Package-level variable (e.g. registry's `mu`)?
	if obj := pass.Pkg.Scope().Lookup(expr); obj != nil {
		if _, isVar := obj.(*types.Var); isVar {
			return pass.Pkg.Path() + "." + expr
		}
	}
	// Field selector: find the AST node at pos and type the base.
	v := &fieldFinder{pass: pass, pos: pos}
	for _, f := range pass.Files {
		if f.Pos() <= pos && pos <= f.End() {
			ast.Inspect(f, v.visit)
		}
	}
	return v.id
}

// fieldFinder locates the lock call at pos and renders a type-qualified
// identity "pkg.Type.field" for its receiver field, empty when the
// receiver is not a named struct field (e.g. a local mutex).
type fieldFinder struct {
	pass *analysis.Pass
	pos  token.Pos
	id   string
}

func (v *fieldFinder) visit(n ast.Node) bool {
	if v.id != "" || n == nil || !(n.Pos() <= v.pos && v.pos <= n.End()) {
		return false
	}
	call, ok := n.(*ast.CallExpr)
	if !ok || call.Pos() != v.pos {
		return true
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return true
	}
	// The lock value is sel.X: either itself a field selector (s.mu) or
	// a receiver embedding the mutex (s with sync.Mutex embedded).
	switch x := sel.X.(type) {
	case *ast.SelectorExpr:
		if fieldObj, ok := v.pass.TypesInfo.Uses[x.Sel].(*types.Var); ok && fieldObj.IsField() {
			if base := namedTypeOf(v.pass.TypesInfo.TypeOf(x.X)); base != "" {
				v.id = base + "." + x.Sel.Name
			}
		}
	case *ast.Ident:
		// Embedded mutex: s.Lock() — identity is the receiver's type.
		if base := namedTypeOf(v.pass.TypesInfo.TypeOf(x)); base != "" {
			v.id = base + ".(embedded)"
		}
	}
	return true
}

func namedTypeOf(t types.Type) string {
	if t == nil {
		return ""
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return ""
	}
	return named.Obj().Pkg().Path() + "." + named.Obj().Name()
}

// reportInversions reports every lock pair acquired in both orders
// somewhere in the package, once per pair, at the later-seen site.
func (o *orderGraph) reportInversions(pass *analysis.Pass) {
	type finding struct {
		pos      token.Pos
		a, b     string
		otherPos token.Pos
	}
	var out []finding
	seen := map[orderEdge]bool{}
	for e, pos := range o.edges {
		rev := orderEdge{e.to, e.from}
		revPos, ok := o.edges[rev]
		if !ok || seen[e] || seen[rev] {
			continue
		}
		seen[e], seen[rev] = true, true
		// Report at the later site, referencing the earlier one.
		f := finding{pos: pos, a: e.from, b: e.to, otherPos: revPos}
		if revPos > pos {
			f = finding{pos: revPos, a: e.to, b: e.from, otherPos: pos}
		}
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].pos < out[j].pos })
	for _, f := range out {
		pass.Reportf(f.pos, "lock order inversion: %s acquired while holding %s, but %s reverses the order (potential deadlock)",
			f.b, f.a, pass.Fset.Position(f.otherPos))
	}
}
