package locksafe_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/locksafe"
)

func TestLocksafe(t *testing.T) {
	defer func(old []string) { locksafe.ScopePrefixes = old }(locksafe.ScopePrefixes)
	locksafe.ScopePrefixes = []string{"lockbad", "lockok"}
	analysistest.Run(t, "testdata", locksafe.Analyzer, "lockbad", "lockok")
}
