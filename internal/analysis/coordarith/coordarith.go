// Package coordarith extends the wire boundary's ±2^40 coordinate
// sanity caps into internal arithmetic: in the accounting packages
// (internal/online, internal/server), every int64 value is an interval
// endpoint, a length, a weight or a busy-time budget, and raw +, - and
// * on those can overflow — not hypothetically: a stream session's
// Σ len accumulator overflows after ~4M capped-length arrivals, and the
// admission test multiplies costs by weights, whose product passes
// 2^80. PR 5 hand-built a 128-bit comparison for exactly that reason.
//
// The analyzer flags every raw int64 +, -, * (and +=, -=, *=) in scope.
// The sanctioned replacements live in internal/safemath (SatAdd/SatSub/
// SatMul, the Checked variants, CeilDiv, Mul128Greater); a site where
// overflow is structurally impossible may carry a
// //lint:ignore busylint/coordarith suppression explaining why.
// Arithmetic on int loop indexes and counters, on named int64 types
// such as time.Duration, and on constants is out of scope by
// construction: only the predeclared int64 — the repo's coordinate
// type — is policed.
package coordarith

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// ScopePrefixes lists the packages whose int64 arithmetic must go
// through internal/safemath.
var ScopePrefixes = []string{
	"repro/internal/online",
	"repro/internal/server",
	"repro/internal/journal",
}

// Analyzer is the busylint/coordarith analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "coordarith",
	Doc: "forbids raw +, -, * on int64 coordinate/weight/budget values in the accounting packages; " +
		"use internal/safemath (or suppress with a proof of boundedness)",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if !analysis.InScope(pass.Pkg.Path(), ScopePrefixes) {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				checkBinary(pass, n)
			case *ast.AssignStmt:
				checkAssign(pass, n)
			}
			return true
		})
	}
	return nil
}

func opName(tok token.Token) string {
	switch tok {
	case token.ADD, token.ADD_ASSIGN:
		return "safemath.SatAdd"
	case token.SUB, token.SUB_ASSIGN:
		return "safemath.SatSub"
	case token.MUL, token.MUL_ASSIGN:
		return "safemath.SatMul"
	}
	return ""
}

func checkBinary(pass *analysis.Pass, e *ast.BinaryExpr) {
	name := opName(e.Op)
	if name == "" {
		return
	}
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value != nil { // constant-folded expressions cannot overflow at run time
		return
	}
	if !isPlainInt64(tv.Type) {
		return
	}
	pass.Reportf(e.Pos(), "raw int64 %q on coordinate-typed values can overflow; use %s (or a checked/suppressed form)", e.Op.String(), name)
}

func checkAssign(pass *analysis.Pass, a *ast.AssignStmt) {
	name := opName(a.Tok)
	if name == "" || len(a.Lhs) != 1 {
		return
	}
	t := pass.TypesInfo.TypeOf(a.Lhs[0])
	if !isPlainInt64(t) {
		return
	}
	pass.Reportf(a.Pos(), "raw int64 %q on coordinate-typed values can overflow; use %s (or a checked/suppressed form)", a.Tok.String(), name)
}

// isPlainInt64 reports whether t is the predeclared int64 — not a named
// type like time.Duration, whose arithmetic has its own discipline.
func isPlainInt64(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Kind() == types.Int64
}
