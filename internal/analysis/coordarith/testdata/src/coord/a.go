// Package coord exercises busylint/coordarith: raw int64 arithmetic is
// flagged; int indexes, named int64 types, constants and reasoned
// suppressions are not.
package coord

import "time"

func Span(start, end int64) int64 {
	return end - start // want `raw int64 "-" on coordinate-typed values`
}

func Accumulate(total *int64, w int64) {
	*total += w // want `raw int64 "\+=" on coordinate-typed values`
}

func Scale(w, k int64) int64 {
	return w * k // want `raw int64 "\*" on coordinate-typed values`
}

// int loop indexes and counters are out of scope by construction.
func Count(xs []int64) int {
	n := 0
	for i := 0; i < len(xs); i++ {
		n = n + 1
	}
	return n
}

// Named int64 types such as time.Duration have their own discipline.
func Wait(d time.Duration) time.Duration {
	return d + time.Second
}

const window = int64(1) << 20

// Constant-folded expressions cannot overflow at run time.
func Window() int64 {
	return window * 2
}

func Bounded(lo, hi int64) int64 {
	//lint:ignore busylint/coordarith both operands are wire-capped to ±2^40
	return hi - lo
}
