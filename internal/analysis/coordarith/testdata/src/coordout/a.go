// Package coordout is outside coordarith's scope: raw int64 arithmetic
// is fine here.
package coordout

func Span(start, end int64) int64 {
	return end - start
}
