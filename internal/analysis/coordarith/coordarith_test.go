package coordarith_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/coordarith"
)

func TestCoordarith(t *testing.T) {
	defer func(old []string) { coordarith.ScopePrefixes = old }(coordarith.ScopePrefixes)
	coordarith.ScopePrefixes = []string{"coord"}
	analysistest.Run(t, "testdata", coordarith.Analyzer, "coord", "coordout")
}
