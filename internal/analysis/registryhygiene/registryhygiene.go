// Package registryhygiene keeps the algorithm registry complete and
// self-describing — the property the conformance harness and fuzz
// targets rely on to auto-cover every algorithm: if a solver is not
// registered, or registered without classes and a guarantee, the
// harness silently never generates instances for it.
//
// Two checks:
//
//  1. Every exported constructor-shaped function in the algorithm
//     packages the registry imports (a package function returning
//     core.Schedule / core.RectSchedule, optionally with an error, or a
//     value implementing online.Strategy) must be referenced somewhere
//     in the registry package — either directly, or via its FooCtx
//     variant (the repo's convention for the cancellable form) — or
//     carry an entry with a reason in registry.UnregisteredOK. Stale
//     and reasonless waivers are themselves findings.
//
//  2. Every registry.Algorithm literal must declare a non-empty Classes
//     list and a non-empty Guarantee string, so a registration can
//     never silently opt out of class-restricted conformance coverage.
package registryhygiene

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strconv"
	"strings"

	"repro/internal/analysis"
)

// Configuration; tests override these to point at fixtures.
var (
	// RegistryPath is the package that owns builtins.go and the waiver
	// list.
	RegistryPath = "repro/internal/registry"
	// AlgoPrefixes are the packages whose exported constructors must be
	// registered.
	AlgoPrefixes = []string{
		"repro/internal/core",
		"repro/internal/exact",
		"repro/internal/online",
	}
	// ConcreteResults are "pkgpath.TypeName" result types identifying a
	// constructor (returned by value or pointer).
	ConcreteResults = []string{
		"repro/internal/core.Schedule",
		"repro/internal/core.RectSchedule",
	}
	// IfaceResults are "pkgpath.InterfaceName" result interfaces
	// identifying a constructor (any implementing result counts).
	IfaceResults = []string{
		"repro/internal/online.Strategy",
	}
	// WaiverVar names the map[string]string in the registry package
	// listing deliberately unregistered constructors with reasons.
	WaiverVar = "UnregisteredOK"
)

// Analyzer is the busylint/registryhygiene analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "registryhygiene",
	Doc: "every exported algorithm constructor must be registered (or waived with a reason in " +
		"UnregisteredOK), and every registration must declare non-empty Classes and a Guarantee",
	Run: run,
}

func run(pass *analysis.Pass) error {
	checkAlgorithmLiterals(pass)
	if pass.Pkg.Path() != RegistryPath {
		return nil
	}
	refs := referencedNames(pass)
	waivers := parseWaivers(pass)
	ctors := constructors(pass.Pkg)

	keys := make([]string, 0, len(ctors))
	for key := range ctors {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	for _, key := range keys {
		registered := refs[key] || refs[key+"Ctx"]
		if registered {
			if w, ok := waivers.entries[key]; ok {
				pass.Reportf(w.pos, "stale waiver: %s is registered (referenced from the registry package); delete the entry", key)
			}
			continue
		}
		if _, ok := waivers.entries[key]; ok {
			continue
		}
		pass.Reportf(importPos(pass, ctors[key]),
			"exported constructor %s is neither registered in the registry package nor waived in %s", key, WaiverVar)
	}
	for key, w := range waivers.entries {
		if _, ok := ctors[key]; !ok {
			pass.Reportf(w.pos, "stale waiver: %s does not name an exported constructor of an imported algorithm package", key)
		}
	}
	return nil
}

// referencedNames collects every "pkgpath.Name" the registry package
// mentions for objects living in the algorithm packages.
func referencedNames(pass *analysis.Pass) map[string]bool {
	refs := map[string]bool{}
	for _, obj := range pass.TypesInfo.Uses {
		if obj == nil || obj.Pkg() == nil {
			continue
		}
		if analysis.InScope(obj.Pkg().Path(), AlgoPrefixes) {
			refs[obj.Pkg().Path()+"."+obj.Name()] = true
		}
	}
	return refs
}

// constructors enumerates the constructor-shaped exported functions of
// the algorithm packages the registry imports, keyed "pkgpath.Name".
func constructors(registry *types.Package) map[string]*types.Package {
	out := map[string]*types.Package{}
	for _, imp := range registry.Imports() {
		if !analysis.InScope(imp.Path(), AlgoPrefixes) {
			continue
		}
		scope := imp.Scope()
		for _, name := range scope.Names() {
			fn, ok := scope.Lookup(name).(*types.Func)
			if !ok || !fn.Exported() {
				continue
			}
			if isConstructor(fn.Type().(*types.Signature)) {
				out[imp.Path()+"."+name] = imp
			}
		}
	}
	return out
}

func isConstructor(sig *types.Signature) bool {
	if sig.Recv() != nil || sig.TypeParams() != nil {
		return false
	}
	// A function-typed parameter marks a combinator (a solver wrapper
	// taking another solver), not a registrable constructor.
	for i := 0; i < sig.Params().Len(); i++ {
		if _, ok := sig.Params().At(i).Type().Underlying().(*types.Signature); ok {
			return false
		}
	}
	res := sig.Results()
	switch res.Len() {
	case 1:
	case 2:
		if !isErrorType(res.At(1).Type()) {
			return false
		}
	default:
		return false
	}
	return matchesResult(res.At(0).Type())
}

func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

func matchesResult(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil {
			key := obj.Pkg().Path() + "." + obj.Name()
			for _, want := range ConcreteResults {
				if key == want {
					return true
				}
			}
		}
	}
	for _, want := range IfaceResults {
		// The interface name follows the last dot (package paths may
		// themselves be dotted).
		i := strings.LastIndex(want, ".")
		if i < 0 {
			continue
		}
		pkgPath, name := want[:i], want[i+1:]
		iface := lookupInterface(pkgPath, name, t)
		if iface != nil && !iface.Empty() && types.Implements(t, iface) {
			return true
		}
	}
	return false
}

// lookupInterface resolves pkgPath.name to an interface using the
// package graph reachable from t's package.
func lookupInterface(pkgPath, name string, t types.Type) *types.Interface {
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return nil
	}
	pkg := named.Obj().Pkg()
	var target *types.Package
	if pkg.Path() == pkgPath {
		target = pkg
	} else {
		for _, imp := range pkg.Imports() {
			if imp.Path() == pkgPath {
				target = imp
				break
			}
		}
	}
	if target == nil {
		return nil
	}
	obj := target.Scope().Lookup(name)
	if obj == nil {
		return nil
	}
	iface, _ := obj.Type().Underlying().(*types.Interface)
	return iface
}

// importPos returns the position of the import of pkg in the registry
// files, falling back to the first file's package clause.
func importPos(pass *analysis.Pass, pkg *types.Package) token.Pos {
	for _, file := range pass.Files {
		for _, spec := range file.Imports {
			if path, err := strconv.Unquote(spec.Path.Value); err == nil && path == pkg.Path() {
				return spec.Pos()
			}
		}
	}
	if len(pass.Files) > 0 {
		return pass.Files[0].Package
	}
	return token.NoPos
}

type waiver struct {
	pos token.Pos
}

type waiverSet struct {
	entries map[string]waiver
}

// parseWaivers reads the WaiverVar map literal. Keys must be string
// literals and reasons non-empty string literals; anything else is
// reported (a waiver the analyzer cannot read is no waiver at all).
func parseWaivers(pass *analysis.Pass) waiverSet {
	ws := waiverSet{entries: map[string]waiver{}}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			gen, ok := decl.(*ast.GenDecl)
			if !ok || gen.Tok != token.VAR {
				continue
			}
			for _, spec := range gen.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Names) != 1 || vs.Names[0].Name != WaiverVar || len(vs.Values) != 1 {
					continue
				}
				lit, ok := vs.Values[0].(*ast.CompositeLit)
				if !ok {
					pass.Reportf(vs.Pos(), "%s must be a map[string]string composite literal", WaiverVar)
					continue
				}
				for _, elt := range lit.Elts {
					kv, ok := elt.(*ast.KeyValueExpr)
					if !ok {
						continue
					}
					key, okK := stringLit(kv.Key)
					reason, okV := stringLit(kv.Value)
					switch {
					case !okK || !okV:
						pass.Reportf(kv.Pos(), "%s entries must be string literals so the analyzer can read them", WaiverVar)
					case strings.TrimSpace(reason) == "":
						pass.Reportf(kv.Pos(), "waiver for %s has no reason; reasonless waivers do not waive", key)
					default:
						ws.entries[key] = waiver{pos: kv.Pos()}
					}
				}
			}
		}
	}
	return ws
}

func stringLit(e ast.Expr) (string, bool) {
	lit, ok := e.(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return "", false
	}
	s, err := strconv.Unquote(lit.Value)
	if err != nil {
		return "", false
	}
	return s, true
}

// checkAlgorithmLiterals enforces, in any package, that a
// registry.Algorithm composite literal declares non-empty Classes and a
// non-empty Guarantee.
func checkAlgorithmLiterals(pass *analysis.Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			lit, ok := n.(*ast.CompositeLit)
			if !ok || len(lit.Elts) == 0 || !isAlgorithmLit(pass, lit) {
				return true // Algorithm{} is a zero value, not a registration
			}
			var classes, guarantee ast.Expr
			positional := false
			for _, elt := range lit.Elts {
				kv, ok := elt.(*ast.KeyValueExpr)
				if !ok {
					positional = true
					break
				}
				if id, ok := kv.Key.(*ast.Ident); ok {
					switch id.Name {
					case "Classes":
						classes = kv.Value
					case "Guarantee":
						guarantee = kv.Value
					}
				}
			}
			if positional {
				return true // a positional literal fills every field explicitly
			}
			switch c := classes.(type) {
			case nil:
				pass.Reportf(lit.Pos(), "Algorithm registration must declare Classes (use the General class for unrestricted algorithms)")
			case *ast.CompositeLit:
				if len(c.Elts) == 0 {
					pass.Reportf(c.Pos(), "Algorithm registration declares empty Classes; conformance would never cover it")
				}
			}
			switch g := guarantee.(type) {
			case nil:
				pass.Reportf(lit.Pos(), "Algorithm registration must declare a Guarantee (\"heuristic\" or \"empirical\" are fine; silence is not)")
			case *ast.BasicLit:
				if s, ok := stringLit(g); ok && strings.TrimSpace(s) == "" {
					pass.Reportf(g.Pos(), "Algorithm registration declares an empty Guarantee")
				}
			}
			return true
		})
	}
}

func isAlgorithmLit(pass *analysis.Pass, lit *ast.CompositeLit) bool {
	t := pass.TypesInfo.TypeOf(lit)
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == RegistryPath && obj.Name() == "Algorithm"
}
