// Package reg stands in for internal/registry: it owns the Algorithm
// type, the waiver list, and the references that mark constructors as
// registered.
package reg

import "algo" // want `algo.Bad is neither registered` `algo.NewGreedy is neither registered` `algo.Reasonless is neither registered`

type Class int

const General Class = 0

type Algorithm struct {
	Name      string
	Classes   []Class
	Guarantee string
}

// UnregisteredOK waives deliberately unregistered constructors.
var UnregisteredOK = map[string]string{
	"algo.Waived":     "building block of Good, covered through it",
	"algo.Good":       "already registered", // want `stale waiver: algo.Good is registered`
	"algo.Gone":       "does not exist",     // want `stale waiver: algo.Gone does not name an exported constructor`
	"algo.Reasonless": "",                   // want `waiver for algo.Reasonless has no reason`
}

// References that mark Good (directly) and Variant (via VariantCtx) as
// registered.
var (
	_ = algo.Good
	_ = algo.VariantCtx
)

// A complete registration passes.
var _ = Algorithm{
	Name:      "good",
	Classes:   []Class{General},
	Guarantee: "4-approximation",
}

var _ = Algorithm{ // want `must declare Classes`
	Name:      "no-classes",
	Guarantee: "heuristic",
}

var _ = Algorithm{ // want `must declare a Guarantee`
	Name:    "no-guarantee",
	Classes: []Class{General},
}

var _ = Algorithm{
	Name:      "empty-classes",
	Classes:   []Class{}, // want `declares empty Classes`
	Guarantee: "heuristic",
}

var _ = Algorithm{
	Name:      "empty-guarantee",
	Classes:   []Class{General},
	Guarantee: "", // want `declares an empty Guarantee`
}

// A zero value is not a registration.
var _ = Algorithm{}
