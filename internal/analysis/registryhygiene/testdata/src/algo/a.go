// Package algo stands in for the algorithm packages: a mix of
// constructor-shaped exported functions (which must be registered or
// waived) and functions the analyzer must not treat as constructors.
package algo

type Schedule struct{ Busy int64 }

type Strategy interface {
	Place(start, end int64) int
}

type greedy struct{}

func (greedy) Place(start, end int64) int { return 0 }

// Good is registered directly by the reg fixture.
func Good(n int) Schedule { return Schedule{} }

// Variant is registered through its Ctx-suffixed form, the repo's
// convention for the cancellable variant.
func Variant(n int) Schedule { return Schedule{} }

func VariantCtx(n int) Schedule { return Schedule{} }

// Bad is neither registered nor waived: flagged at reg's import.
func Bad(n int) (Schedule, error) { return Schedule{}, nil }

// Waived carries a reasoned UnregisteredOK entry.
func Waived() *Schedule { return &Schedule{} }

// Reasonless carries a waiver with an empty reason, which does not
// waive: flagged at reg's import, plus a finding on the entry itself.
func Reasonless() Schedule { return Schedule{} }

// NewGreedy is constructor-shaped via the Strategy interface result.
func NewGreedy() Strategy { return greedy{} }

// Helper is not a constructor: wrong result type.
func Helper(n int) int { return n }

// Wrap is not a constructor: a func-typed parameter marks a combinator.
func Wrap(f func(int) Schedule) Schedule { return f(0) }
