package registryhygiene_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/registryhygiene"
)

func TestRegistryhygiene(t *testing.T) {
	defer func(reg string, algo, concrete, iface []string) {
		registryhygiene.RegistryPath = reg
		registryhygiene.AlgoPrefixes = algo
		registryhygiene.ConcreteResults = concrete
		registryhygiene.IfaceResults = iface
	}(registryhygiene.RegistryPath, registryhygiene.AlgoPrefixes,
		registryhygiene.ConcreteResults, registryhygiene.IfaceResults)
	registryhygiene.RegistryPath = "reg"
	registryhygiene.AlgoPrefixes = []string{"algo"}
	registryhygiene.ConcreteResults = []string{"algo.Schedule"}
	registryhygiene.IfaceResults = []string{"algo.Strategy"}
	analysistest.Run(t, "testdata", registryhygiene.Analyzer, "algo", "reg")
}
