// Package analysis is a dependency-free reimplementation of the
// golang.org/x/tools/go/analysis analyzer surface, sized to what the
// busylint suite needs. The module deliberately has no external
// dependencies, so the standard x/tools framework cannot be imported;
// this package mirrors its shape (Analyzer, Pass, Diagnostic, a driver
// contract) so the six repo-specific analyzers read like any other
// go/analysis checker and could be ported onto x/tools verbatim if the
// dependency ever lands.
//
// Two driver entry points consume it: cmd/busylint (standalone walker
// plus the `go vet -vettool=` unit-checker protocol) and the
// analysistest harness that runs golden-fixture tests.
//
// Suppressions: a finding may be waived with a staticcheck-style
// directive on the flagged line or the line above it:
//
//	//lint:ignore busylint/<analyzer> <reason>
//
// The reason is mandatory — a directive without one does not suppress
// anything (and is itself reported), so every waiver in the tree
// documents why the invariant may be broken at that site.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one static check: a name (the suppression key and
// CI finding key), documentation, and the per-package Run function.
type Analyzer struct {
	// Name identifies the analyzer; findings are suppressed with
	// //lint:ignore busylint/<Name> <reason>.
	Name string
	// Doc is the one-paragraph description shown by busylint -help.
	Doc string
	// Run analyzes one package and reports findings through the pass.
	Run func(*Pass) error
}

// Pass carries one package's syntax and type information to an
// analyzer, mirroring golang.org/x/tools/go/analysis.Pass.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files holds the package's non-test source files. Test files are
	// excluded uniformly: busylint mechanizes production invariants, and
	// keeping the file set identical between the standalone driver and
	// the per-unit vet protocol keeps finding counts comparable.
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	report func(Diagnostic)
}

// Reportf reports a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Analyzer: p.Analyzer.Name, Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Pos
	Message  string
}

// Package is the loaded form a driver hands to Run: parsed non-test
// files plus complete type information.
type Package struct {
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Run applies every analyzer to the package and returns the surviving
// findings sorted by position, with //lint:ignore suppressions applied.
// Directives that name a busylint analyzer but omit the mandatory
// reason are reported as findings themselves, so a reasonless waiver
// can never silently hide one.
func Run(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	sup := collectSuppressions(pkg.Fset, pkg.Files)
	var out []Diagnostic
	for _, d := range sup.malformed {
		out = append(out, d)
	}
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			report: func(d Diagnostic) {
				if !sup.suppressed(pkg.Fset, d) {
					out = append(out, d)
				}
			},
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Types.Path(), err)
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Pos != out[j].Pos {
			return out[i].Pos < out[j].Pos
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out, nil
}

// suppressions indexes //lint:ignore directives by file and line.
type suppressions struct {
	// byLine maps file -> line -> analyzer names waived on that line
	// (with a reason present).
	byLine    map[string]map[int]map[string]bool
	malformed []Diagnostic
}

const directivePrefix = "lint:ignore "

func collectSuppressions(fset *token.FileSet, files []*ast.File) *suppressions {
	s := &suppressions{byLine: map[string]map[int]map[string]bool{}}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				if !strings.HasPrefix(text, directivePrefix) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, directivePrefix))
				names, reason, _ := strings.Cut(rest, " ")
				pos := fset.Position(c.Pos())
				var waived []string
				for _, name := range strings.Split(names, ",") {
					if after, ok := strings.CutPrefix(name, "busylint/"); ok {
						waived = append(waived, after)
					}
				}
				if len(waived) == 0 {
					continue // not a busylint directive (e.g. staticcheck's)
				}
				if strings.TrimSpace(reason) == "" {
					s.malformed = append(s.malformed, Diagnostic{
						Analyzer: "suppression",
						Pos:      c.Pos(),
						Message:  fmt.Sprintf("lint:ignore %s has no reason; reasonless suppressions do not suppress", names),
					})
					continue
				}
				fileLines, ok := s.byLine[pos.Filename]
				if !ok {
					fileLines = map[int]map[string]bool{}
					s.byLine[pos.Filename] = fileLines
				}
				set, ok := fileLines[pos.Line]
				if !ok {
					set = map[string]bool{}
					fileLines[pos.Line] = set
				}
				for _, w := range waived {
					set[w] = true
				}
			}
		}
	}
	return s
}

// suppressed reports whether d is waived by a directive on its line or
// the line immediately above.
func (s *suppressions) suppressed(fset *token.FileSet, d Diagnostic) bool {
	pos := fset.Position(d.Pos)
	fileLines, ok := s.byLine[pos.Filename]
	if !ok {
		return false
	}
	for _, line := range [2]int{pos.Line, pos.Line - 1} {
		if set, ok := fileLines[line]; ok && set[d.Analyzer] {
			return true
		}
	}
	return false
}

// InScope reports whether a package path falls under any of the given
// prefixes ("repro/internal/online" covers itself and subpackages).
func InScope(pkgPath string, prefixes []string) bool {
	for _, p := range prefixes {
		if pkgPath == p || strings.HasPrefix(pkgPath, p+"/") {
			return true
		}
	}
	return false
}

// IsTestFile reports whether a file name belongs to a test.
func IsTestFile(name string) bool {
	return strings.HasSuffix(name, "_test.go")
}

// NewInfo returns a types.Info with every map a driver or analyzer
// needs populated.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
}
