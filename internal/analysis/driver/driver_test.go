package driver_test

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/analysis/driver"
	"repro/internal/analysis/suite"
)

func TestIsVetInvocation(t *testing.T) {
	for _, tc := range []struct {
		args []string
		want bool
	}{
		{[]string{"-V=full"}, true},
		{[]string{"-flags"}, true},
		{[]string{"/tmp/vet073/pkg.cfg"}, true},
		{[]string{"./..."}, false},
		{[]string{"-json", "./..."}, false},
		{nil, false},
	} {
		if got := driver.IsVetInvocation(tc.args); got != tc.want {
			t.Errorf("IsVetInvocation(%v) = %v, want %v", tc.args, got, tc.want)
		}
	}
}

func TestVetVersionHandshake(t *testing.T) {
	if code := driver.VetMain([]string{"-V=full"}, suite.All()); code != 0 {
		t.Fatalf("-V=full exited %d", code)
	}
	if code := driver.VetMain([]string{"-flags"}, suite.All()); code != 0 {
		t.Fatalf("-flags exited %d", code)
	}
}

// TestVetUnit drives the unit-checker protocol by hand: a synthetic
// package unit whose ImportPath places it in coordarith's scope must
// produce findings (exit 2) and always write the facts file cmd/go
// expects; a VetxOnly unit must succeed without analyzing.
func TestVetUnit(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "a.go")
	if err := os.WriteFile(src, []byte("package online\n\nfunc Span(a, b int64) int64 { return b - a }\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	vetx := filepath.Join(dir, "out.vetx")
	writeCfg := func(extra map[string]any) string {
		cfg := map[string]any{
			"ID":          "repro/internal/online",
			"Compiler":    "gc",
			"Dir":         dir,
			"ImportPath":  "repro/internal/online",
			"GoFiles":     []string{src},
			"ImportMap":   map[string]string{},
			"PackageFile": map[string]string{},
			"VetxOutput":  vetx,
		}
		for k, v := range extra {
			cfg[k] = v
		}
		data, err := json.Marshal(cfg)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, "unit.cfg")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}

	if code := driver.VetMain([]string{writeCfg(nil)}, suite.All()); code != 2 {
		t.Fatalf("unit with findings exited %d, want 2", code)
	}
	if _, err := os.Stat(vetx); err != nil {
		t.Fatalf("facts file not written: %v", err)
	}

	if code := driver.VetMain([]string{writeCfg(map[string]any{"VetxOnly": true})}, suite.All()); code != 0 {
		t.Fatalf("VetxOnly unit exited %d, want 0", code)
	}
}

// TestStandaloneClean runs the real loader over a package that is in no
// analyzer's scope, exercising `go list -export` plus the gc importer.
func TestStandaloneClean(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns go list")
	}
	findings, err := driver.Run("../../..", []string{"repro/internal/safemath"}, suite.All())
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Fatalf("expected no findings in safemath, got %v", findings)
	}
}
