package driver_test

import (
	"bytes"
	"encoding/json"
	"go/ast"
	"go/parser"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis/driver"
	"repro/internal/analysis/suite"
)

type Finding = driver.Finding

func TestIsVetInvocation(t *testing.T) {
	for _, tc := range []struct {
		args []string
		want bool
	}{
		{[]string{"-V=full"}, true},
		{[]string{"-flags"}, true},
		{[]string{"/tmp/vet073/pkg.cfg"}, true},
		{[]string{"./..."}, false},
		{[]string{"-json", "./..."}, false},
		{nil, false},
	} {
		if got := driver.IsVetInvocation(tc.args); got != tc.want {
			t.Errorf("IsVetInvocation(%v) = %v, want %v", tc.args, got, tc.want)
		}
	}
}

func TestVetVersionHandshake(t *testing.T) {
	if code := driver.VetMain([]string{"-V=full"}, suite.All()); code != 0 {
		t.Fatalf("-V=full exited %d", code)
	}
	if code := driver.VetMain([]string{"-flags"}, suite.All()); code != 0 {
		t.Fatalf("-flags exited %d", code)
	}
}

// TestVetUnit drives the unit-checker protocol by hand: a synthetic
// package unit whose ImportPath places it in coordarith's scope must
// produce findings (exit 2) and always write the facts file cmd/go
// expects; a VetxOnly unit must succeed without analyzing.
func TestVetUnit(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "a.go")
	if err := os.WriteFile(src, []byte("package online\n\nfunc Span(a, b int64) int64 { return b - a }\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	vetx := filepath.Join(dir, "out.vetx")
	writeCfg := func(extra map[string]any) string {
		cfg := map[string]any{
			"ID":          "repro/internal/online",
			"Compiler":    "gc",
			"Dir":         dir,
			"ImportPath":  "repro/internal/online",
			"GoFiles":     []string{src},
			"ImportMap":   map[string]string{},
			"PackageFile": map[string]string{},
			"VetxOutput":  vetx,
		}
		for k, v := range extra {
			cfg[k] = v
		}
		data, err := json.Marshal(cfg)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, "unit.cfg")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}

	if code := driver.VetMain([]string{writeCfg(nil)}, suite.All()); code != 2 {
		t.Fatalf("unit with findings exited %d, want 2", code)
	}
	if _, err := os.Stat(vetx); err != nil {
		t.Fatalf("facts file not written: %v", err)
	}

	if code := driver.VetMain([]string{writeCfg(map[string]any{"VetxOnly": true})}, suite.All()); code != 0 {
		t.Fatalf("VetxOnly unit exited %d, want 0", code)
	}
}

// TestStandaloneClean runs the real loader over a package that is in no
// analyzer's scope, exercising `go list -export` plus the gc importer.
func TestStandaloneClean(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns go list")
	}
	findings, err := driver.Run("../../..", []string{"repro/internal/safemath"}, suite.All())
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Fatalf("expected no findings in safemath, got %v", findings)
	}
}

// TestDriversExposeSameSuite pins the "one suite, two drivers"
// invariant three ways: the standalone CLI's usage output names every
// analyzer in suite.All(); cmd/busylint hands that same suite.All()
// to both driver.Main and driver.VetMain (checked in its source, so a
// hand-edited analyzer list cannot drift past CI); and the command's
// doc comment documents every analyzer by name.
func TestDriversExposeSameSuite(t *testing.T) {
	help := captureStdout(t, func() {
		if code := driver.Main([]string{"-help"}, suite.All()); code != 0 {
			t.Fatalf("-help exited %d", code)
		}
	})
	for _, a := range suite.All() {
		if !strings.Contains(help, a.Name) {
			t.Errorf("usage output does not mention analyzer %q", a.Name)
		}
	}

	mainSrc := filepath.Join("..", "..", "..", "cmd", "busylint", "main.go")
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, mainSrc, nil, parser.ParseComments)
	if err != nil {
		t.Fatalf("parsing cmd/busylint/main.go: %v", err)
	}

	calls := map[string]bool{}
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkg, ok := sel.X.(*ast.Ident)
		if !ok || pkg.Name != "driver" {
			return true
		}
		for _, arg := range call.Args {
			if argSel, ok := arg.(*ast.CallExpr); ok {
				if s, ok := argSel.Fun.(*ast.SelectorExpr); ok {
					if p, ok := s.X.(*ast.Ident); ok && p.Name == "suite" && s.Sel.Name == "All" {
						calls[sel.Sel.Name] = true
					}
				}
			}
		}
		return true
	})
	for _, entry := range []string{"Main", "VetMain"} {
		if !calls[entry] {
			t.Errorf("cmd/busylint does not pass suite.All() to driver.%s; the two drivers could enforce different suites", entry)
		}
	}

	if file.Doc == nil {
		t.Fatal("cmd/busylint has no doc comment")
	}
	doc := file.Doc.Text()
	for _, a := range suite.All() {
		if !strings.Contains(doc, a.Name) {
			t.Errorf("cmd/busylint doc comment does not list analyzer %q", a.Name)
		}
	}
}

func captureStdout(t *testing.T, fn func()) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	defer func() { os.Stdout = old }()
	done := make(chan string)
	go func() {
		b, _ := io.ReadAll(r)
		done <- string(b)
	}()
	fn()
	w.Close()
	out := <-done
	os.Stdout = old
	return out
}

// TestWriteSARIF checks the -sarif document shape against what GitHub
// code scanning requires: version 2.1.0, one rule per analyzer, and
// results with repo-relative URIs and 1-based regions.
func TestWriteSARIF(t *testing.T) {
	findings := []Finding{
		{Analyzer: "errdrop", Package: "repro/internal/journal", Position: "/repo/internal/journal/store.go:155:3", Message: "error discarded"},
		{Analyzer: "goleak", Package: "repro/internal/server", Position: "/repo/internal/server/loop.go:12", Message: "no escape path"},
	}
	var buf bytes.Buffer
	if err := driver.WriteSARIF(&buf, "/repo", findings, suite.All()); err != nil {
		t.Fatal(err)
	}
	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				Level     string `json:"level"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine   int `json:"startLine"`
							StartColumn int `json:"startColumn"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatalf("invalid SARIF JSON: %v", err)
	}
	if log.Version != "2.1.0" {
		t.Errorf("version = %q, want 2.1.0", log.Version)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("got %d runs, want 1", len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "busylint" {
		t.Errorf("tool name = %q", run.Tool.Driver.Name)
	}
	if got, want := len(run.Tool.Driver.Rules), len(suite.All()); got != want {
		t.Errorf("got %d rules, want %d", got, want)
	}
	ruleIDs := map[string]bool{}
	for _, r := range run.Tool.Driver.Rules {
		ruleIDs[r.ID] = true
	}
	if len(run.Results) != 2 {
		t.Fatalf("got %d results, want 2", len(run.Results))
	}
	first := run.Results[0]
	if first.RuleID != "busylint/errdrop" || !ruleIDs[first.RuleID] {
		t.Errorf("result 0 ruleId = %q, not among declared rules", first.RuleID)
	}
	if first.Level != "error" {
		t.Errorf("result 0 level = %q", first.Level)
	}
	loc := first.Locations[0].PhysicalLocation
	if loc.ArtifactLocation.URI != "internal/journal/store.go" {
		t.Errorf("result 0 uri = %q, want repo-relative internal/journal/store.go", loc.ArtifactLocation.URI)
	}
	if loc.Region.StartLine != 155 || loc.Region.StartColumn != 3 {
		t.Errorf("result 0 region = %d:%d, want 155:3", loc.Region.StartLine, loc.Region.StartColumn)
	}
	second := run.Results[1].Locations[0].PhysicalLocation
	if second.Region.StartLine != 12 {
		t.Errorf("result 1 line = %d, want 12 (file:line position without column)", second.Region.StartLine)
	}
}
