// Package driver runs the busylint analyzer suite in the two modes
// cmd/busylint supports:
//
//   - standalone (`busylint ./...`): packages are enumerated and
//     compiled with `go list -export -deps`, sources are re-parsed and
//     typechecked against the compiler's export data, and every
//     analyzer runs over every listed package;
//   - vet tool (`go vet -vettool=busylint ./...`): cmd/go drives one
//     invocation per package unit through the unit-checker config
//     protocol (vet.go).
//
// Both modes produce identical findings on a clean checkout because
// both feed analyzers the same inputs: the package's non-test files and
// full type information.
package driver

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"

	"repro/internal/analysis"
)

// Finding is one diagnostic in driver output; the JSON form is the CI
// artifact future PRs diff finding counts against.
type Finding struct {
	Analyzer string `json:"analyzer"`
	Package  string `json:"package"`
	Position string `json:"position"`
	Message  string `json:"message"`
}

// Report is the -json document: findings plus per-analyzer counts.
type Report struct {
	Findings []Finding      `json:"findings"`
	Counts   map[string]int `json:"counts"`
}

// listPackage is the subset of `go list -json` output the loader needs.
type listPackage struct {
	Dir        string
	ImportPath string
	Name       string
	GoFiles    []string
	Export     string
	DepOnly    bool
	Standard   bool
	Error      *struct{ Err string }
}

// Run loads the packages matching patterns under dir and applies the
// analyzers, returning findings sorted by package and position.
func Run(dir string, patterns []string, analyzers []*analysis.Analyzer) ([]Finding, error) {
	pkgs, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := map[string]string{}
	for _, p := range pkgs {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})

	var targets []*listPackage
	for _, p := range pkgs {
		if p.DepOnly || p.Standard || len(p.GoFiles) == 0 {
			continue
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		targets = append(targets, p)
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	var out []Finding
	for _, p := range targets {
		diags, err := analyzePackage(fset, imp, p, analyzers)
		if err != nil {
			return nil, err
		}
		for _, d := range diags {
			out = append(out, Finding{
				Analyzer: d.Analyzer,
				Package:  p.ImportPath,
				Position: fset.Position(d.Pos).String(),
				Message:  d.Message,
			})
		}
	}
	return out, nil
}

func goList(dir string, patterns []string) ([]*listPackage, error) {
	args := append([]string{"list", "-e", "-export", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}
	var pkgs []*listPackage
	dec := json.NewDecoder(&stdout)
	for dec.More() {
		p := new(listPackage)
		if err := dec.Decode(p); err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

func analyzePackage(fset *token.FileSet, imp types.Importer, p *listPackage, analyzers []*analysis.Analyzer) ([]analysis.Diagnostic, error) {
	var files []*ast.File
	for _, name := range p.GoFiles {
		path := filepath.Join(p.Dir, name)
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := analysis.NewInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(p.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %v", p.ImportPath, err)
	}
	return analysis.Run(&analysis.Package{Fset: fset, Files: files, Types: tpkg, Info: info}, analyzers)
}

// Main is the standalone entry point: it parses busylint's own flags,
// runs the suite, prints findings (text, the -json Report, or a -sarif
// log) and returns the process exit code (0 clean, 1 findings, 2
// failure).
func Main(args []string, analyzers []*analysis.Analyzer) int {
	jsonOut := false
	sarifOut := false
	var patterns []string
	for _, a := range args {
		switch a {
		case "-json", "--json":
			jsonOut = true
		case "-sarif", "--sarif":
			sarifOut = true
		case "-h", "-help", "--help":
			usage(analyzers)
			return 0
		default:
			patterns = append(patterns, a)
		}
	}
	if jsonOut && sarifOut {
		fmt.Fprintln(os.Stderr, "busylint: -json and -sarif are mutually exclusive")
		return 2
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	findings, err := Run(".", patterns, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "busylint:", err)
		return 2
	}
	switch {
	case sarifOut:
		base, err := os.Getwd()
		if err != nil {
			base = ""
		}
		if err := WriteSARIF(os.Stdout, base, findings, analyzers); err != nil {
			fmt.Fprintln(os.Stderr, "busylint:", err)
			return 2
		}
	case jsonOut:
		rep := Report{Findings: findings, Counts: map[string]int{}}
		if rep.Findings == nil {
			rep.Findings = []Finding{}
		}
		for _, a := range analyzers {
			rep.Counts[a.Name] = 0
		}
		for _, f := range findings {
			rep.Counts[f.Analyzer]++
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintln(os.Stderr, "busylint:", err)
			return 2
		}
	default:
		for _, f := range findings {
			fmt.Printf("%s: %s [busylint/%s]\n", f.Position, f.Message, f.Analyzer)
		}
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}

func usage(analyzers []*analysis.Analyzer) {
	fmt.Println("busylint [-json|-sarif] [packages]")
	fmt.Println()
	fmt.Println("busylint is this repository's invariant checker. Analyzers:")
	fmt.Println()
	for _, a := range analyzers {
		fmt.Printf("  %-16s %s\n", a.Name, a.Doc)
	}
	fmt.Println()
	fmt.Println("Also usable as `go vet -vettool=$(which busylint) ./...`.")
	fmt.Println("Suppress one finding with `//lint:ignore busylint/<name> reason`.")
}
