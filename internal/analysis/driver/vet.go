package driver

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
)

// vetConfig mirrors the JSON configuration cmd/go writes for a vet tool
// invocation (the x/tools unitchecker protocol): one file per package
// unit describing its sources and the export data of its dependencies.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standalone                bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// IsVetInvocation reports whether the argument list looks like cmd/go
// driving the tool through the vet protocol rather than a user running
// it standalone.
func IsVetInvocation(args []string) bool {
	for _, a := range args {
		if a == "-V=full" || a == "-flags" || strings.HasSuffix(a, ".cfg") {
			return true
		}
	}
	return false
}

// VetMain implements the `go vet -vettool=` protocol: the -V=full
// version handshake cmd/go hashes for its build cache, the -flags
// query, and the per-package .cfg run. It returns the process exit
// code.
func VetMain(args []string, analyzers []*analysis.Analyzer) int {
	for _, a := range args {
		switch {
		case a == "-V=full":
			return printVersion()
		case a == "-flags":
			fmt.Println("[]")
			return 0
		case strings.HasSuffix(a, ".cfg"):
			return vetUnit(a, analyzers)
		}
	}
	fmt.Fprintln(os.Stderr, "busylint: unrecognized vet-protocol invocation:", strings.Join(args, " "))
	return 2
}

// printVersion prints the "<name> version <id>" line cmd/go folds into
// its action cache key; hashing the executable makes rebuilt tools
// invalidate cached vet results.
func printVersion() int {
	name := filepath.Base(os.Args[0])
	exe, err := os.Executable()
	if err != nil {
		fmt.Printf("%s version devel\n", name)
		return 0
	}
	f, err := os.Open(exe)
	if err != nil {
		fmt.Printf("%s version devel\n", name)
		return 0
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		fmt.Printf("%s version devel\n", name)
		return 0
	}
	fmt.Printf("%s version devel buildID=%x\n", name, h.Sum(nil))
	return 0
}

func vetUnit(cfgPath string, analyzers []*analysis.Analyzer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "busylint:", err)
		return 2
	}
	cfg := new(vetConfig)
	if err := json.Unmarshal(data, cfg); err != nil {
		fmt.Fprintf(os.Stderr, "busylint: parsing %s: %v\n", cfgPath, err)
		return 2
	}
	// busylint exports no facts, but cmd/go expects the facts file to
	// exist before caching the action, so always write an empty one.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "busylint:", err)
			return 2
		}
	}
	if cfg.VetxOnly {
		// Dependency-only invocation: cmd/go wants facts (we have
		// none), not diagnostics.
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintln(os.Stderr, "busylint:", err)
			return 2
		}
		files = append(files, f)
	}
	imp := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	info := analysis.NewInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "busylint: typecheck %s: %v\n", cfg.ImportPath, err)
		return 2
	}

	// Analyzers see only non-test files, matching the standalone
	// driver, so `go vet -vettool=` and `busylint ./...` agree on the
	// finding count. Test variants of a package unit still typecheck
	// above (their extra files and deps are in the cfg), they just
	// produce no extra findings.
	var prodFiles []*ast.File
	for _, f := range files {
		if !analysis.IsTestFile(fset.Position(f.Package).Filename) {
			prodFiles = append(prodFiles, f)
		}
	}
	diags, err := analysis.Run(&analysis.Package{Fset: fset, Files: prodFiles, Types: tpkg, Info: info}, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "busylint:", err)
		return 2
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s [busylint/%s]\n", fset.Position(d.Pos), d.Message, d.Analyzer)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}
