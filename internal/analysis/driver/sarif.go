package driver

import (
	"encoding/json"
	"io"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/analysis"
)

// The -sarif mode emits a minimal SARIF 2.1.0 log: one run, one rule
// per analyzer, one result per finding. It is the shape GitHub code
// scanning ingests, so CI can upload busylint findings as PR
// annotations instead of burying them in a job log.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string    `json:"id"`
	ShortDescription sarifText `json:"shortDescription"`
}

type sarifText struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifText       `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// WriteSARIF renders findings as a SARIF 2.1.0 log. Artifact URIs are
// made relative to baseDir (the repository root in CI) so code scanning
// can map them onto checkout paths.
func WriteSARIF(w io.Writer, baseDir string, findings []Finding, analyzers []*analysis.Analyzer) error {
	rules := make([]sarifRule, 0, len(analyzers))
	for _, a := range analyzers {
		rules = append(rules, sarifRule{
			ID:               "busylint/" + a.Name,
			ShortDescription: sarifText{Text: a.Doc},
		})
	}
	results := make([]sarifResult, 0, len(findings))
	for _, f := range findings {
		file, line, col := splitPosition(f.Position)
		results = append(results, sarifResult{
			RuleID:  "busylint/" + f.Analyzer,
			Level:   "error",
			Message: sarifText{Text: f.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: relativeURI(baseDir, file)},
					Region:           sarifRegion{StartLine: line, StartColumn: col},
				},
			}},
		})
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "busylint", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}

// splitPosition breaks a "file:line:col" position string apart. SARIF
// regions are 1-based; a component that fails to parse degrades to
// line 1 rather than producing an invalid document.
func splitPosition(pos string) (file string, line, col int) {
	line, col = 1, 0
	i := strings.LastIndexByte(pos, ':')
	if i < 0 {
		return pos, line, col
	}
	j := strings.LastIndexByte(pos[:i], ':')
	if j < 0 {
		if n, err := strconv.Atoi(pos[i+1:]); err == nil {
			return pos[:i], n, 0
		}
		return pos, line, col
	}
	l, errL := strconv.Atoi(pos[j+1 : i])
	c, errC := strconv.Atoi(pos[i+1:])
	if errL != nil || errC != nil {
		return pos, line, col
	}
	return pos[:j], l, c
}

// relativeURI rewrites an absolute path relative to baseDir with
// forward slashes, falling back to the path as given.
func relativeURI(baseDir, file string) string {
	if baseDir != "" {
		if rel, err := filepath.Rel(baseDir, file); err == nil && !strings.HasPrefix(rel, "..") {
			return filepath.ToSlash(rel)
		}
	}
	return filepath.ToSlash(file)
}
