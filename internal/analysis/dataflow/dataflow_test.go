package dataflow_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"sort"
	"strings"
	"testing"

	"repro/internal/analysis/cfg"
	"repro/internal/analysis/dataflow"
)

// graph parses src (one function f) and builds its CFG.
func graph(t *testing.T, src string) *cfg.Graph {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "f.go", "package p\n"+src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, d := range file.Decls {
		if fn, ok := d.(*ast.FuncDecl); ok && fn.Name.Name == "f" {
			return cfg.New(fn.Body)
		}
	}
	t.Fatal("no func f")
	return nil
}

type set map[string]bool

func (s set) clone() set {
	c := set{}
	for k := range s {
		c[k] = true
	}
	return c
}

func (s set) String() string {
	keys := make([]string, 0, len(s))
	for k := range s {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return strings.Join(keys, ",")
}

func equal(a, b set) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// transfer adds every mark("...") literal executed in the block.
func transfer(b *cfg.Block, in set) set {
	out := in.clone()
	for _, n := range b.Stmts {
		ast.Inspect(n, func(m ast.Node) bool {
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "mark" && len(call.Args) == 1 {
				if lit, ok := call.Args[0].(*ast.BasicLit); ok {
					out[strings.Trim(lit.Value, `"`)] = true
				}
			}
			return true
		})
	}
	return out
}

func union(a, b set) set {
	u := a.clone()
	for k := range b {
		u[k] = true
	}
	return u
}

func intersect(a, b set) set {
	i := set{}
	for k := range a {
		if b[k] {
			i[k] = true
		}
	}
	return i
}

// may solves "marks that may have executed" (union join) and returns
// the fact at exit.
func may(t *testing.T, src string) set {
	g := graph(t, src)
	res := dataflow.Forward(g, dataflow.Problem[set]{
		Entry:    set{},
		Join:     union,
		Transfer: transfer,
		Equal:    equal,
	})
	return res.In[g.Exit]
}

// must solves "marks that executed on every path" (intersection join).
func must(t *testing.T, src string) set {
	g := graph(t, src)
	res := dataflow.Forward(g, dataflow.Problem[set]{
		Entry:    set{},
		Join:     intersect,
		Transfer: transfer,
		Equal:    equal,
	})
	return res.In[g.Exit]
}

const branchy = `
func f(c bool) {
	mark("always")
	if c {
		mark("maybe")
		return
	}
	mark("fallback")
}`

func TestMayAnalysis(t *testing.T) {
	got := may(t, branchy)
	if got.String() != "always,fallback,maybe" {
		t.Errorf("may-exit = %v", got)
	}
}

func TestMustAnalysis(t *testing.T) {
	got := must(t, branchy)
	if got.String() != "always" {
		t.Errorf("must-exit = %v, want only \"always\"", got)
	}
}

func TestLoopFixpointTerminates(t *testing.T) {
	got := may(t, `
func f(xs []int) {
	for _, x := range xs {
		if x > 0 {
			mark("pos")
		} else {
			mark("neg")
		}
	}
}`)
	if got.String() != "neg,pos" {
		t.Errorf("loop may-exit = %v", got)
	}
}

func TestMustThroughLoopIsEmpty(t *testing.T) {
	// A loop body may run zero times, so nothing inside it is a must.
	got := must(t, `
func f(xs []int) {
	for range xs {
		mark("loop")
	}
}`)
	if len(got) != 0 {
		t.Errorf("must-exit = %v, want empty", got)
	}
}

func TestDeadCodeDoesNotFlow(t *testing.T) {
	got := may(t, `
func f() {
	return
	mark("dead")
}`)
	if len(got) != 0 {
		t.Errorf("may-exit = %v, want empty", got)
	}
}

func TestPanicPathReachesExit(t *testing.T) {
	// The panic path carries its fact to exit: "held" may hold at exit
	// even though the normal return path cleared nothing here.
	got := may(t, `
func f(c bool) {
	if c {
		mark("held")
		panic("boom")
	}
}`)
	if got.String() != "held" {
		t.Errorf("may-exit = %v, want held", got)
	}
}
