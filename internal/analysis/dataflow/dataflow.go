// Package dataflow is a forward dataflow engine over internal/analysis/cfg
// graphs: a generic worklist fixpoint parameterized by the analyzer's
// fact type. An analyzer supplies the classic ingredients — the fact at
// function entry, a Join for control-flow merges, a Transfer over one
// basic block, and fact Equality — and reads back the fact flowing into
// every block (in particular into Graph.Exit, "what must/may hold when
// the function returns").
//
// Termination is the analyzer's contract: Join must be monotone over a
// lattice of finite height (for the busylint analyzers, facts are small
// sets keyed by lock or variable identity, so height is bounded by the
// number of distinct keys in the function). The engine itself only
// iterates until no block's input fact changes.
package dataflow

import "repro/internal/analysis/cfg"

// Problem describes one forward analysis.
type Problem[F any] struct {
	// Entry is the fact at function entry.
	Entry F
	// Join merges the facts of two predecessors at a merge point. It
	// must be commutative, associative and monotone.
	Join func(a, b F) F
	// Transfer computes the fact after executing one block given the
	// fact before it. It must not retain or mutate in; returning a
	// fresh value keeps the fixpoint sound.
	Transfer func(b *cfg.Block, in F) F
	// Equal reports whether two facts are equal; it bounds the
	// iteration.
	Equal func(a, b F) bool
}

// Result carries the fixpoint solution: the fact flowing into and out
// of every reachable block. Unreachable blocks (dead code after a
// return) have no entry — callers indexing by block must tolerate the
// zero fact or check presence.
type Result[F any] struct {
	In  map[*cfg.Block]F
	Out map[*cfg.Block]F
}

// Forward solves the problem over g with a worklist iteration and
// returns the per-block facts.
func Forward[F any](g *cfg.Graph, p Problem[F]) Result[F] {
	in := map[*cfg.Block]F{g.Entry: p.Entry}
	out := map[*cfg.Block]F{}
	seenOut := map[*cfg.Block]bool{}

	work := []*cfg.Block{g.Entry}
	queued := map[*cfg.Block]bool{g.Entry: true}
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		queued[b] = false

		o := p.Transfer(b, in[b])
		if seenOut[b] && p.Equal(out[b], o) {
			continue // nothing new flows out; successors are up to date
		}
		out[b] = o
		seenOut[b] = true

		for _, s := range b.Succs {
			ni, ok := in[s]
			if ok {
				ni = p.Join(ni, o)
			} else {
				ni = o
			}
			if !ok || !p.Equal(ni, in[s]) {
				in[s] = ni
				if !queued[s] {
					queued[s] = true
					work = append(work, s)
				}
			}
		}
	}
	return Result[F]{In: in, Out: out}
}
