package errdrop_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/errdrop"
)

func TestErrdrop(t *testing.T) {
	defer func(old []string) { errdrop.ScopePrefixes = old }(errdrop.ScopePrefixes)
	errdrop.ScopePrefixes = []string{"dropbad", "dropok"}
	analysistest.Run(t, "testdata", errdrop.Analyzer, "dropbad", "dropok")
}
