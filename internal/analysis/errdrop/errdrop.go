// Package errdrop flags discarded errors on the durability path. The
// serving layer's contract is "whatever a client saw is replayable
// after a crash", and that chain is only as strong as its weakest
// error check: an ignored journal Append/Commit/Sync or a dropped
// file-close error can acknowledge a placement that was never durable.
//
// The analyzer is deliberately narrow — it is not errcheck. In the
// scoped packages it flags a call that discards its error (a bare
// expression statement, a `defer`, or a blank-identifier assignment)
// when the callee is:
//
//   - a method named Append, Commit, Sync, StageEvent or Write whose
//     receiver type is declared in a journal package, or
//   - Close on a journal-declared receiver or an *os.File, or Sync or
//     Write on an *os.File.
//
// Handling the error is anything that binds it to a non-blank name —
// what the caller then does with it is code review's problem, not this
// analyzer's. A site that provably may ignore the error (e.g. closing
// a read-only descriptor after a failed open) carries a
// //lint:ignore busylint/errdrop waiver saying why.
package errdrop

import (
	"go/ast"
	"go/types"
	"path"

	"repro/internal/analysis"
)

// ScopePrefixes lists the packages whose durability calls are policed.
// Tests override this to point at fixtures.
var ScopePrefixes = []string{
	"repro/internal/journal",
	"repro/internal/server",
	"repro/cmd/busyd",
}

// Analyzer is the busylint/errdrop analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "errdrop",
	Doc: "discarded error results on durability paths (journal Append/Commit/Sync/StageEvent, " +
		"journal or file Close) are findings; an unchecked append can acknowledge a lost write",
	Run: run,
}

// durabilityVerbs are flagged on any journal-declared receiver.
var durabilityVerbs = map[string]bool{
	"Append":     true,
	"Commit":     true,
	"Sync":       true,
	"StageEvent": true,
	"Write":      true,
}

// fileVerbs are flagged on *os.File receivers.
var fileVerbs = map[string]bool{
	"Close": true,
	"Sync":  true,
	"Write": true,
}

func run(pass *analysis.Pass) error {
	if !analysis.InScope(pass.Pkg.Path(), ScopePrefixes) {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch stmt := n.(type) {
			case *ast.ExprStmt:
				if call, ok := stmt.X.(*ast.CallExpr); ok {
					check(pass, call, "discarded")
				}
			case *ast.DeferStmt:
				check(pass, stmt.Call, "discarded by defer")
			case *ast.GoStmt:
				check(pass, stmt.Call, "discarded by go")
			case *ast.AssignStmt:
				checkAssign(pass, stmt)
			}
			return true
		})
	}
	return nil
}

// check reports call if it is a durability call returning an error that
// the statement shape drops entirely.
func check(pass *analysis.Pass, call *ast.CallExpr, how string) {
	name, ok := durabilityCallee(pass, call)
	if !ok {
		return
	}
	pass.Reportf(call.Pos(), "error from %s is %s on a durability path; handle it or waive with the reason the write cannot be lost", name, how)
}

// checkAssign reports a durability call whose error result lands in the
// blank identifier ( _ = w.Commit(), rec, _ := ... ).
func checkAssign(pass *analysis.Pass, stmt *ast.AssignStmt) {
	if len(stmt.Rhs) != 1 {
		return
	}
	call, ok := stmt.Rhs[0].(*ast.CallExpr)
	if !ok {
		return
	}
	name, ok := durabilityCallee(pass, call)
	if !ok {
		return
	}
	// The error is the callee's last result; it maps to the last LHS.
	last, ok := stmt.Lhs[len(stmt.Lhs)-1].(*ast.Ident)
	if ok && last.Name == "_" {
		pass.Reportf(call.Pos(), "error from %s is assigned to _ on a durability path; handle it or waive with the reason the write cannot be lost", name)
	}
}

// durabilityCallee reports whether call is a policed durability method
// whose last result is an error, returning a printable name.
func durabilityCallee(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok {
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || !lastResultIsError(sig) {
		return "", false
	}
	recv := sig.Recv().Type()
	name := fn.Name()
	switch {
	case receiverInJournal(recv) && (durabilityVerbs[name] || name == "Close"):
		return types.ExprString(sel.X) + "." + name, true
	case isOSFile(recv) && fileVerbs[name]:
		return types.ExprString(sel.X) + "." + name, true
	}
	return "", false
}

func lastResultIsError(sig *types.Signature) bool {
	res := sig.Results()
	if res.Len() == 0 {
		return false
	}
	t, ok := res.At(res.Len() - 1).Type().(*types.Named)
	return ok && t.Obj().Name() == "error" && t.Obj().Pkg() == nil
}

// receiverInJournal reports whether the receiver's type (or the
// interface declaring the method) lives in a package named journal.
func receiverInJournal(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return path.Base(named.Obj().Pkg().Path()) == "journal"
}

func isOSFile(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == "os" && named.Obj().Name() == "File"
}
