// Package dropok handles durability errors, or discards results the
// analyzer must not care about. None of these lines are findings.
package dropok

import (
	"fmt"

	"journal"
)

// Checked binds every durability error to a name and acts on it.
func Checked(w *journal.Writer, b []byte) error {
	if err := w.Append(b); err != nil {
		return fmt.Errorf("append: %w", err)
	}
	if err := w.Commit(); err != nil {
		return fmt.Errorf("commit: %w", err)
	}
	return w.Sync()
}

// DeferredChecked routes the deferred close error into the named
// return — binding to a non-blank name is handling.
func DeferredChecked(w *journal.Writer) (err error) {
	defer func() {
		if cerr := w.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	return w.Commit()
}

// NonError discards calls that return nothing or a non-error value.
func NonError(w *journal.Writer) {
	w.Rotate()
	_ = w.Len()
}

// OtherReceiver discards an error from a type outside any journal
// package; errdrop is not errcheck.
type flusher struct{}

func (flusher) Flush() error { return nil }

func OtherReceiver(f flusher) {
	_ = f.Flush()
}
