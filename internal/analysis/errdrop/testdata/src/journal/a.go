// Package journal is a fixture standing in for the real write-ahead
// journal: what matters to the analyzer is only that the receiver
// types are declared in a package whose base name is "journal".
package journal

type Writer struct{}

func (w *Writer) Append(b []byte) error     { return nil }
func (w *Writer) Commit() error             { return nil }
func (w *Writer) Sync() error               { return nil }
func (w *Writer) StageEvent(s string) error { return nil }
func (w *Writer) Close() error              { return nil }

// Rotate returns no error; discarding "nothing" is fine.
func (w *Writer) Rotate() {}

// Len has a non-error result; it is not a durability verb target.
func (w *Writer) Len() int { return 0 }
