// Package dropbad discards errors on the durability path — every shape
// busylint/errdrop must flag.
package dropbad

import (
	"os"

	"journal"
)

// DropAppend ignores the append error: the client may be acknowledged
// for a write that never reached the log.
func DropAppend(w *journal.Writer, b []byte) {
	w.Append(b) // want `error from w.Append is discarded on a durability path`
}

// DropCommitBlank launders the error through the blank identifier.
func DropCommitBlank(w *journal.Writer) {
	_ = w.Commit() // want `error from w.Commit is assigned to _ on a durability path`
}

// DropSyncDefer defers the sync and throws its error away.
func DropSyncDefer(w *journal.Writer) {
	defer w.Sync() // want `error from w.Sync is discarded by defer on a durability path`
}

// DropCloseDefer is the classic: the close error is the last chance to
// learn a buffered write failed.
func DropCloseDefer(w *journal.Writer) {
	defer w.Close() // want `error from w.Close is discarded by defer on a durability path`
}

// DropStage ignores a staged event.
func DropStage(w *journal.Writer) {
	w.StageEvent("place") // want `error from w.StageEvent is discarded on a durability path`
}

// DropFileClose discards an os.File close after writing to it.
func DropFileClose(f *os.File, b []byte) {
	if _, err := f.Write(b); err != nil {
		return
	}
	f.Close() // want `error from f.Close is discarded on a durability path`
}
