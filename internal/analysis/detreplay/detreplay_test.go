package detreplay_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/detreplay"
)

func TestDetreplay(t *testing.T) {
	defer func(old []string) { detreplay.ScopePrefixes = old }(detreplay.ScopePrefixes)
	detreplay.ScopePrefixes = []string{"replay"}
	analysistest.Run(t, "testdata", detreplay.Analyzer, "replay", "replayout")
}
