// Package replayout is outside detreplay's scope: the wall clock and
// the global rand are fine here.
package replayout

import (
	"math/rand"
	"time"
)

func Stamp() int64 {
	return time.Now().UnixNano() + int64(rand.Intn(10))
}
