// Package replay exercises busylint/detreplay: the three
// nondeterminism sources (wall clock, global math/rand, order-sensitive
// map iteration) plus the sanctioned deterministic forms of each.
package replay

import (
	"math/rand"
	"sort"
	"time"
)

func Stamp() int64 {
	return time.Now().UnixNano() // want `time.Now reads the wall clock`
}

func Elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want `time.Since reads the wall clock`
}

func Jitter() int {
	return rand.Intn(10) // want `global rand.Intn uses process-shared randomness`
}

// Methods on an explicitly threaded, seeded source are the sanctioned
// form.
func Seeded(r *rand.Rand) int {
	return r.Intn(10)
}

// Order-insensitive accumulation commutes across iteration orders.
func Sum(m map[string]int64) int64 {
	var total int64
	for _, v := range m {
		total += v
	}
	return total
}

func Keys(m map[string]int64) []string {
	var keys []string
	for k := range m { // want `map iteration order is random and this loop calls out`
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func First(m map[string]int64) string {
	for k := range m { // want `returns from inside the loop`
		return k
	}
	return ""
}

func AnyOver(m map[string]int64, w int64) string {
	hit := ""
	for k, v := range m { // want `breaks early, keeping an order-dependent element`
		if v >= w {
			hit = k
			break
		}
	}
	return hit
}

// delete and type conversions are order-safe builtins.
func Prune(m map[string]int64) {
	for k, v := range m {
		if v == 0 {
			delete(m, k)
		}
	}
}

func Convert(m map[string]int64) map[string]float64 {
	out := make(map[string]float64, len(m))
	for k, v := range m {
		out[k] = float64(v)
	}
	return out
}
