// Package detreplay protects the byte-equality contract between a
// /v1/stream session's close report and its offline replay, the
// reproducibility of every conformance finding, and the determinism of
// the placement journal's hash chain: the replay/session, conformance
// and journal packages must be deterministic functions of their inputs.
//
// Three nondeterminism sources are forbidden in scope:
//
//   - wall-clock reads (time.Now/Since/Until) — replay timing must come
//     from the stream, never the host clock;
//   - the global math/rand source (seeded or not, it is process-shared
//     state; conformance generators must thread an explicit seeded
//     *rand.Rand so a failure shrinks to a reproducible seed);
//   - ranging over a map where the body's effects depend on iteration
//     order (appending, sending, calling out, or returning) — the exact
//     pattern that makes a close report differ between two identical
//     runs. Order-insensitive aggregation (sums, counters, map writes,
//     delete) is allowed.
package detreplay

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// ScopePrefixes lists the packages whose determinism is contractual.
var ScopePrefixes = []string{
	"repro/internal/online",
	"repro/internal/conformance",
	"repro/internal/journal",
}

// Analyzer is the busylint/detreplay analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "detreplay",
	Doc: "forbids wall-clock reads, global math/rand use, and order-sensitive map iteration in the " +
		"replay and conformance packages; close reports must be byte-equal across identical runs",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if !analysis.InScope(pass.Pkg.Path(), ScopePrefixes) {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkCall(pass, n)
			case *ast.RangeStmt:
				checkMapRange(pass, n)
			}
			return true
		})
	}
	return nil
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	obj := pass.TypesInfo.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil {
		return
	}
	fn, ok := obj.(*types.Func)
	if !ok || fn.Type().(*types.Signature).Recv() != nil {
		return // methods (e.g. on a seeded *rand.Rand) are fine
	}
	switch obj.Pkg().Path() {
	case "time":
		switch obj.Name() {
		case "Now", "Since", "Until":
			pass.Reportf(call.Pos(), "time.%s reads the wall clock; replay determinism requires all timing to come from the stream", obj.Name())
		}
	case "math/rand", "math/rand/v2":
		pass.Reportf(call.Pos(), "global %s.%s uses process-shared randomness; thread an explicit seeded *rand.Rand instead", obj.Pkg().Name(), obj.Name())
	}
}

// checkMapRange flags ranging over a map when the loop body is
// order-sensitive: it appends, sends, returns, breaks, or calls
// anything beyond the order-safe builtins. Pure accumulation
// (x += v, counters, writes into other maps, delete) commutes across
// iteration orders and passes.
func checkMapRange(pass *analysis.Pass, loop *ast.RangeStmt) {
	t := pass.TypesInfo.TypeOf(loop.X)
	if t == nil {
		return
	}
	if _, isMap := t.Underlying().(*types.Map); !isMap {
		return
	}
	if reason := orderSensitive(pass, loop.Body); reason != "" {
		pass.Reportf(loop.Pos(), "map iteration order is random and this loop %s; iterate a sorted key slice instead", reason)
	}
}

func orderSensitive(pass *analysis.Pass, body *ast.BlockStmt) string {
	reason := ""
	ast.Inspect(body, func(n ast.Node) bool {
		if reason != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if safeCall(pass, n) {
				return true
			}
			reason = "calls out of the loop body"
			return false
		case *ast.SendStmt:
			reason = "sends on a channel"
			return false
		case *ast.ReturnStmt:
			reason = "returns from inside the loop"
			return false
		case *ast.BranchStmt:
			if n.Tok.String() == "break" {
				reason = "breaks early, keeping an order-dependent element"
				return false
			}
		}
		return true
	})
	return reason
}

// safeCall reports whether a call inside a map-range body cannot make
// the loop order-sensitive: the order-safe builtins and type
// conversions qualify; append and every other call do not.
func safeCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		switch o := pass.TypesInfo.Uses[fun].(type) {
		case *types.Builtin:
			switch o.Name() {
			case "delete", "len", "cap", "min", "max", "make", "new":
				return true
			}
			return false
		case *types.TypeName:
			return true // conversion
		}
	case *ast.ArrayType, *ast.MapType, *ast.ParenExpr:
		return true // conversion spelled with a type expression
	}
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		return true
	}
	return false
}
