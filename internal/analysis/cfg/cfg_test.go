package cfg_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"

	"repro/internal/analysis/cfg"
)

// build parses src (a file containing one function named f) and returns
// its graph.
func build(t *testing.T, src string) *cfg.Graph {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "f.go", "package p\n"+src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, d := range file.Decls {
		if fn, ok := d.(*ast.FuncDecl); ok && fn.Name.Name == "f" {
			return cfg.New(fn.Body)
		}
	}
	t.Fatal("no func f in source")
	return nil
}

// reachable returns the set of blocks reachable from the entry.
func reachable(g *cfg.Graph) map[*cfg.Block]bool {
	seen := map[*cfg.Block]bool{}
	var walk func(b *cfg.Block)
	walk = func(b *cfg.Block) {
		if seen[b] {
			return
		}
		seen[b] = true
		for _, s := range b.Succs {
			walk(s)
		}
	}
	walk(g.Entry)
	return seen
}

// marks collects the mark("...") literals appearing in reachable blocks.
func marks(g *cfg.Graph) map[string]bool {
	out := map[string]bool{}
	for b := range reachable(g) {
		for _, n := range b.Stmts {
			ast.Inspect(n, func(m ast.Node) bool {
				call, ok := m.(*ast.CallExpr)
				if !ok {
					return true
				}
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "mark" && len(call.Args) == 1 {
					if lit, ok := call.Args[0].(*ast.BasicLit); ok {
						out[lit.Value] = true
					}
				}
				return true
			})
		}
	}
	return out
}

func expectMarks(t *testing.T, g *cfg.Graph, want []string, absent []string) {
	t.Helper()
	got := marks(g)
	for _, w := range want {
		if !got[`"`+w+`"`] {
			t.Errorf("mark %q not reachable; got %v", w, got)
		}
	}
	for _, a := range absent {
		if got[`"`+a+`"`] {
			t.Errorf("mark %q unexpectedly reachable", a)
		}
	}
}

func TestIfElseJoin(t *testing.T) {
	g := build(t, `
func f(c bool) {
	mark("pre")
	if c {
		mark("then")
	} else {
		mark("else")
	}
	mark("post")
}`)
	expectMarks(t, g, []string{"pre", "then", "else", "post"}, nil)
	if !reachable(g)[g.Exit] {
		t.Error("exit unreachable")
	}
}

func TestUnreachableAfterReturn(t *testing.T) {
	g := build(t, `
func f() {
	mark("live")
	return
	mark("dead")
}`)
	expectMarks(t, g, []string{"live"}, []string{"dead"})
}

func TestUnreachableAfterPanic(t *testing.T) {
	g := build(t, `
func f() {
	mark("live")
	panic("boom")
	mark("dead")
}`)
	expectMarks(t, g, []string{"live"}, []string{"dead"})
	if !reachable(g)[g.Exit] {
		t.Error("panic must edge to exit")
	}
}

func TestLoops(t *testing.T) {
	g := build(t, `
func f(xs []int) {
	for i := 0; i < len(xs); i++ {
		mark("body")
		if xs[i] == 0 {
			continue
		}
		if xs[i] == 1 {
			break
		}
		mark("tail")
	}
	for range xs {
		mark("range")
	}
	mark("post")
}`)
	expectMarks(t, g, []string{"body", "tail", "range", "post"}, nil)
}

func TestLabeledBreakAndGoto(t *testing.T) {
	g := build(t, `
func f(xs []int) {
outer:
	for _, x := range xs {
		for range xs {
			if x == 0 {
				break outer
			}
			if x == 1 {
				goto done
			}
			mark("inner")
		}
	}
	mark("between")
done:
	mark("done")
}`)
	expectMarks(t, g, []string{"inner", "between", "done"}, nil)
}

func TestGotoSkipsStraightLine(t *testing.T) {
	g := build(t, `
func f() {
	goto l
	mark("dead")
l:
	mark("after")
}`)
	expectMarks(t, g, []string{"after"}, []string{"dead"})
}

func TestSwitchFallthroughAndDefault(t *testing.T) {
	g := build(t, `
func f(n int) {
	switch n {
	case 0:
		mark("zero")
		fallthrough
	case 1:
		mark("one")
	default:
		mark("other")
	}
	mark("post")
}`)
	expectMarks(t, g, []string{"zero", "one", "other", "post"}, nil)
}

func TestSelect(t *testing.T) {
	g := build(t, `
func f(a, b chan int) {
	select {
	case <-a:
		mark("a")
	case v := <-b:
		_ = v
		mark("b")
	}
	mark("post")
}`)
	expectMarks(t, g, []string{"a", "b", "post"}, nil)
}

func TestInfiniteLoopExitUnreachable(t *testing.T) {
	g := build(t, `
func f() {
	for {
		mark("spin")
	}
}`)
	expectMarks(t, g, []string{"spin"}, nil)
	if reachable(g)[g.Exit] {
		t.Error("exit of an infinite loop must be unreachable")
	}
}

func TestNilBody(t *testing.T) {
	g := cfg.New(nil)
	if !reachable(g)[g.Exit] {
		t.Error("empty graph must reach exit")
	}
}

func TestBlockIndexesAreStable(t *testing.T) {
	g := build(t, `
func f(c bool) {
	if c {
		return
	}
}`)
	for i, b := range g.Blocks {
		if b.Index != i {
			t.Fatalf("block %d has Index %d", i, b.Index)
		}
	}
	if g.Entry != g.Blocks[0] || g.Exit != g.Blocks[1] {
		t.Error("entry/exit must be blocks 0 and 1")
	}
}
