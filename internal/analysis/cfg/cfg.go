// Package cfg builds an intraprocedural control-flow graph over one
// function body, sized to what the busylint dataflow analyzers need.
// Like the rest of internal/analysis it is stdlib-only — the module
// cannot import golang.org/x/tools/go/cfg — but it mirrors that
// package's shape: a Graph of basic Blocks whose Stmts slices hold the
// statements (and control expressions, e.g. an if condition) executed
// in order, with Succs edges for every way control can leave the block.
//
// Modeled control flow: if/else, for and range loops, switch and
// type-switch (fallthrough included), select, labeled statements,
// break/continue/goto (labeled or not), return, and explicit calls to
// the panic builtin. Return, panic and falling off the end of the body
// all edge to the single synthetic Exit block, so "fact at function
// exit" is one lookup for a forward analysis. Deferred calls are NOT
// run at Exit by the graph — a DeferStmt appears in its block like any
// statement, and each analyzer decides what a defer guarantees (e.g.
// locksafe treats a reached `defer mu.Unlock()` as releasing the lock
// at every subsequently reached exit).
//
// Unmodeled: implicit runtime panics (nil derefs, bounds checks) and
// calls that never return (log.Fatal, os.Exit); the analyzers built on
// this graph are repo-invariant checkers, not a verifier.
package cfg

import "go/ast"

// Block is one basic block: statements executed strictly in order, then
// a transfer of control to one of Succs.
type Block struct {
	// Index is the block's position in Graph.Blocks — stable across
	// builds of the same body, so analyzers can iterate deterministically.
	Index int
	// Stmts holds the block's statements and control expressions
	// (ast.Stmt or ast.Expr) in execution order. Compound statements are
	// decomposed into blocks; only their simple parts appear here (an
	// IfStmt contributes its Cond, a RangeStmt its X, and so on).
	Stmts []ast.Node
	// Succs are the possible successors, in source order of the
	// constructs that created them.
	Succs []*Block
}

// Graph is the control-flow graph of one function body.
type Graph struct {
	// Blocks lists every block, Entry first; some may be unreachable
	// (code after return). Exit is always the second block.
	Blocks []*Block
	// Entry is where control enters the body.
	Entry *Block
	// Exit is the synthetic block every return, explicit panic and
	// fall-off-the-end edges to. It holds no statements.
	Exit *Block
}

// New builds the graph of body. A nil body (declaration without a
// definition) yields a two-block graph with Entry wired to Exit.
func New(body *ast.BlockStmt) *Graph {
	g := &Graph{}
	b := &builder{g: g}
	g.Entry = b.newBlock()
	g.Exit = b.newBlock()
	b.cur = g.Entry
	if body != nil {
		b.stmtList(body.List)
	}
	b.jump(g.Exit)
	b.patchGotos()
	return g
}

// builder carries the under-construction graph and the targets the
// enclosing control constructs expose to break/continue/goto.
type builder struct {
	g   *Graph
	cur *Block

	// breaks and continues stack the innermost targets; labeled entries
	// carry the label name, unlabeled the empty string.
	breaks    []target
	continues []target

	labels map[string]*Block // goto targets, by label
	gotos  []pendingGoto

	// fallthroughTo is the next case clause's block while building a
	// switch clause; nil outside a switch and in its last clause.
	fallthroughTo *Block
}

type target struct {
	label string
	block *Block
}

type pendingGoto struct {
	from  *Block
	label string
}

func (b *builder) newBlock() *Block {
	blk := &Block{Index: len(b.g.Blocks)}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

// jump adds an edge cur → to (deduplicated; a switch with several empty
// cases would otherwise wire the join twice).
func (b *builder) jump(to *Block) {
	for _, s := range b.cur.Succs {
		if s == to {
			return
		}
	}
	b.cur.Succs = append(b.cur.Succs, to)
}

// startUnreachable parks the builder on a fresh block with no
// predecessors, for the dead code that may follow a return/branch.
func (b *builder) startUnreachable() {
	b.cur = b.newBlock()
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.IfStmt:
		b.ifStmt(s)

	case *ast.ForStmt:
		b.forStmt(s, "")

	case *ast.RangeStmt:
		b.rangeStmt(s, "")

	case *ast.SwitchStmt:
		b.switchStmt(s.Init, s.Tag, s.Body, "")

	case *ast.TypeSwitchStmt:
		b.switchStmt(s.Init, s.Assign, s.Body, "")

	case *ast.SelectStmt:
		b.selectStmt(s, "")

	case *ast.LabeledStmt:
		b.labeledStmt(s)

	case *ast.ReturnStmt:
		b.cur.Stmts = append(b.cur.Stmts, s)
		b.jump(b.g.Exit)
		b.startUnreachable()

	case *ast.BranchStmt:
		b.branchStmt(s)

	case *ast.ExprStmt:
		b.cur.Stmts = append(b.cur.Stmts, s)
		if isPanicCall(s.X) {
			b.jump(b.g.Exit)
			b.startUnreachable()
		}

	default:
		// Assignments, declarations, sends, defer, go, inc/dec, empty:
		// straight-line statements.
		b.cur.Stmts = append(b.cur.Stmts, s)
	}
}

func (b *builder) ifStmt(s *ast.IfStmt) {
	if s.Init != nil {
		b.stmt(s.Init)
	}
	b.cur.Stmts = append(b.cur.Stmts, s.Cond)
	cond := b.cur
	join := b.newBlock()

	then := b.newBlock()
	cond.Succs = append(cond.Succs, then)
	b.cur = then
	b.stmtList(s.Body.List)
	b.jump(join)

	if s.Else != nil {
		els := b.newBlock()
		cond.Succs = append(cond.Succs, els)
		b.cur = els
		b.stmt(s.Else)
		b.jump(join)
	} else {
		cond.Succs = append(cond.Succs, join)
	}
	b.cur = join
}

func (b *builder) forStmt(s *ast.ForStmt, label string) {
	if s.Init != nil {
		b.stmt(s.Init)
	}
	head := b.newBlock()
	body := b.newBlock()
	done := b.newBlock()
	// The post statement gets its own block so continue targets it.
	post := b.newBlock()

	b.jump(head)
	b.cur = head
	if s.Cond != nil {
		b.cur.Stmts = append(b.cur.Stmts, s.Cond)
		head.Succs = append(head.Succs, body, done)
	} else {
		head.Succs = append(head.Succs, body)
	}

	b.pushLoop(label, done, post)
	b.cur = body
	b.stmtList(s.Body.List)
	b.jump(post)
	b.popLoop()

	b.cur = post
	if s.Post != nil {
		b.stmt(s.Post)
	}
	b.jump(head)
	b.cur = done
}

func (b *builder) rangeStmt(s *ast.RangeStmt, label string) {
	head := b.newBlock()
	body := b.newBlock()
	done := b.newBlock()

	b.cur.Stmts = append(b.cur.Stmts, s.X)
	b.jump(head)
	head.Succs = append(head.Succs, body, done)

	b.pushLoop(label, done, head)
	b.cur = body
	b.stmtList(s.Body.List)
	b.jump(head)
	b.popLoop()

	b.cur = done
}

// switchStmt covers both expression and type switches; guard is the Tag
// expression or the type-switch Assign statement.
func (b *builder) switchStmt(init ast.Stmt, guard ast.Node, body *ast.BlockStmt, label string) {
	if init != nil {
		b.stmt(init)
	}
	if guard != nil {
		b.cur.Stmts = append(b.cur.Stmts, guard)
	}
	head := b.cur
	done := b.newBlock()

	// Pre-create every clause block so fallthrough can target the next.
	var clauses []*ast.CaseClause
	for _, cs := range body.List {
		if cc, ok := cs.(*ast.CaseClause); ok {
			clauses = append(clauses, cc)
		}
	}
	blocks := make([]*Block, len(clauses))
	hasDefault := false
	for i, cc := range clauses {
		blocks[i] = b.newBlock()
		head.Succs = append(head.Succs, blocks[i])
		if cc.List == nil {
			hasDefault = true
		}
	}
	if !hasDefault {
		head.Succs = append(head.Succs, done)
	}

	b.breaks = append(b.breaks, target{"", done}, target{label, done})
	for i, cc := range clauses {
		b.cur = blocks[i]
		for _, e := range cc.List {
			b.cur.Stmts = append(b.cur.Stmts, e)
		}
		// Save/restore around the clause body: a switch nested in the
		// body must not clobber this clause's fallthrough target.
		saved := b.fallthroughTo
		b.fallthroughTo = nil
		if i+1 < len(blocks) {
			b.fallthroughTo = blocks[i+1]
		}
		b.stmtList(cc.Body)
		b.fallthroughTo = saved
		b.jump(done)
	}
	b.breaks = b.breaks[:len(b.breaks)-2]
	b.cur = done
}

func (b *builder) selectStmt(s *ast.SelectStmt, label string) {
	head := b.cur
	done := b.newBlock()
	b.breaks = append(b.breaks, target{"", done}, target{label, done})
	for _, cs := range s.Body.List {
		cc, ok := cs.(*ast.CommClause)
		if !ok {
			continue
		}
		blk := b.newBlock()
		head.Succs = append(head.Succs, blk)
		b.cur = blk
		if cc.Comm != nil {
			b.stmt(cc.Comm)
		}
		b.stmtList(cc.Body)
		b.jump(done)
	}
	b.breaks = b.breaks[:len(b.breaks)-2]
	b.cur = done
}

func (b *builder) labeledStmt(s *ast.LabeledStmt) {
	// Loops and switches consume their own label so break/continue with
	// the label resolve to the right targets; any other labeled
	// statement becomes a goto target at a fresh block.
	switch inner := s.Stmt.(type) {
	case *ast.ForStmt:
		b.defineLabel(s.Label.Name)
		b.forStmt(inner, s.Label.Name)
	case *ast.RangeStmt:
		b.defineLabel(s.Label.Name)
		b.rangeStmt(inner, s.Label.Name)
	case *ast.SwitchStmt:
		b.defineLabel(s.Label.Name)
		b.switchStmt(inner.Init, inner.Tag, inner.Body, s.Label.Name)
	case *ast.TypeSwitchStmt:
		b.defineLabel(s.Label.Name)
		b.switchStmt(inner.Init, inner.Assign, inner.Body, s.Label.Name)
	case *ast.SelectStmt:
		b.defineLabel(s.Label.Name)
		b.selectStmt(inner, s.Label.Name)
	default:
		b.defineLabel(s.Label.Name)
		b.stmt(s.Stmt)
	}
}

// defineLabel starts a fresh block for the labeled statement and
// records it as the label's goto target.
func (b *builder) defineLabel(name string) {
	blk := b.newBlock()
	b.jump(blk)
	b.cur = blk
	if b.labels == nil {
		b.labels = map[string]*Block{}
	}
	b.labels[name] = blk
}

func (b *builder) branchStmt(s *ast.BranchStmt) {
	label := ""
	if s.Label != nil {
		label = s.Label.Name
	}
	switch s.Tok.String() {
	case "break":
		if t := findTarget(b.breaks, label); t != nil {
			b.jump(t)
		}
	case "continue":
		if t := findTarget(b.continues, label); t != nil {
			b.jump(t)
		}
	case "goto":
		b.gotos = append(b.gotos, pendingGoto{from: b.cur, label: label})
	case "fallthrough":
		if b.fallthroughTo != nil {
			b.jump(b.fallthroughTo)
		}
	}
	b.startUnreachable()
}

func (b *builder) pushLoop(label string, brk, cont *Block) {
	b.breaks = append(b.breaks, target{"", brk}, target{label, brk})
	b.continues = append(b.continues, target{"", cont}, target{label, cont})
}

func (b *builder) popLoop() {
	b.breaks = b.breaks[:len(b.breaks)-2]
	b.continues = b.continues[:len(b.continues)-2]
}

// findTarget resolves the innermost matching target: unlabeled branches
// match the innermost construct, labeled ones the construct that
// registered the label.
func findTarget(stack []target, label string) *Block {
	for i := len(stack) - 1; i >= 0; i-- {
		if stack[i].label == label {
			return stack[i].block
		}
	}
	return nil
}

// patchGotos wires recorded goto statements to their label blocks; a
// goto to an unknown label (malformed source) is dropped rather than
// crashing the build — the typechecker already rejected the package.
func (b *builder) patchGotos() {
	for _, g := range b.gotos {
		if to, ok := b.labels[g.label]; ok {
			g.from.Succs = append(g.from.Succs, to)
		}
	}
}

// isPanicCall reports whether e is a call of the predeclared panic
// builtin (matched syntactically; the graph has no type information,
// and shadowing panic is vanishingly rare in this tree — busylint's
// nopanic analyzer polices panic use separately).
func isPanicCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}
