// Package safemath provides the sanctioned overflow-checked arithmetic
// for interval endpoints, lengths, weights and busy-time budgets.
//
// The wire boundary caps decoded coordinates at ±2^40 ticks, so a single
// interval length or weight fits comfortably in an int64 — but running
// totals do not: a long-lived /v1/stream session admitting 2^22 arrivals
// of length 2^41 overflows a naive Σ len accumulator, and admission
// control multiplies costs by weights, where products pass 2^80. The
// busylint/coordarith analyzer therefore forbids raw +, - and * on int64
// values in the accounting packages (internal/online, internal/server);
// this package is the allowed escape hatch.
//
// The saturating operations clamp at ±MaxInt64 instead of wrapping.
// Saturation is the right failure mode for busy-time accounting: a
// saturated cost or length total only loosens a reported ratio or
// tightens an admission test — it never flips a sign, wraps a budget
// back to "plenty left", or understates a cost. Comparisons that must be
// exact past 64 bits (the admission test c·(W+w) ≤ B·w) use the 128-bit
// Mul128Greater instead of multiplying at all.
package safemath

import (
	"math"
	"math/bits"
)

// SatAdd returns a + b, clamping to MaxInt64 / MinInt64 on overflow.
func SatAdd(a, b int64) int64 {
	s := a + b
	// Overflow iff the operands share a sign the sum does not.
	if (a >= 0) == (b >= 0) && (s >= 0) != (a >= 0) {
		if a >= 0 {
			return math.MaxInt64
		}
		return math.MinInt64
	}
	return s
}

// SatSub returns a - b, clamping to MaxInt64 / MinInt64 on overflow.
func SatSub(a, b int64) int64 {
	d := a - b
	// Overflow iff the operands differ in sign and the difference does
	// not take a's sign.
	if (a >= 0) != (b >= 0) && (d >= 0) != (a >= 0) {
		if a >= 0 {
			return math.MaxInt64
		}
		return math.MinInt64
	}
	return d
}

// SatMul returns a * b, clamping to MaxInt64 / MinInt64 on overflow.
func SatMul(a, b int64) int64 {
	if a == 0 || b == 0 {
		return 0
	}
	p := a * b
	if p/b == a && !(a == -1 && b == math.MinInt64) && !(b == -1 && a == math.MinInt64) {
		return p
	}
	if (a > 0) == (b > 0) {
		return math.MaxInt64
	}
	return math.MinInt64
}

// CheckedAdd returns a + b and true, or 0 and false on overflow.
func CheckedAdd(a, b int64) (int64, bool) {
	s := a + b
	if (a >= 0) == (b >= 0) && (s >= 0) != (a >= 0) {
		return 0, false
	}
	return s, true
}

// CheckedSub returns a - b and true, or 0 and false on overflow.
func CheckedSub(a, b int64) (int64, bool) {
	d := a - b
	if (a >= 0) != (b >= 0) && (d >= 0) != (a >= 0) {
		return 0, false
	}
	return d, true
}

// CheckedMul returns a * b and true, or 0 and false on overflow.
func CheckedMul(a, b int64) (int64, bool) {
	if a == 0 || b == 0 {
		return 0, true
	}
	if (a == -1 && b == math.MinInt64) || (b == -1 && a == math.MinInt64) {
		return 0, false
	}
	p := a * b
	if p/b != a {
		return 0, false
	}
	return p, true
}

// CeilDiv returns ⌈a/b⌉ for a >= 0, b > 0 — the parallelism lower bound
// ⌈len/g⌉ without the overflow the textbook (a+b-1)/b form risks when a
// is near MaxInt64.
func CeilDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 {
		q++
	}
	return q
}

// Mul128Greater reports a·b > c·d exactly for non-negative int64
// operands via 128-bit products. It is the admission-control comparison:
// at the wire caps the products pass 2^53, where a float64 comparison
// could round in the admitting direction and break the never-overspends
// guarantee, and past 2^63 a 64-bit product would wrap.
func Mul128Greater(a, b, c, d int64) bool {
	hi1, lo1 := bits.Mul64(uint64(a), uint64(b))
	hi2, lo2 := bits.Mul64(uint64(c), uint64(d))
	return hi1 > hi2 || (hi1 == hi2 && lo1 > lo2)
}
