package safemath

import (
	"math"
	"math/big"
	"testing"
)

func TestSatAdd(t *testing.T) {
	cases := []struct{ a, b, want int64 }{
		{1, 2, 3},
		{-1, -2, -3},
		{math.MaxInt64, 1, math.MaxInt64},
		{math.MaxInt64, math.MaxInt64, math.MaxInt64},
		{math.MinInt64, -1, math.MinInt64},
		{math.MinInt64, math.MaxInt64, -1},
		{math.MaxInt64, math.MinInt64, -1},
		{0, 0, 0},
	}
	for _, c := range cases {
		if got := SatAdd(c.a, c.b); got != c.want {
			t.Errorf("SatAdd(%d, %d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestSatSub(t *testing.T) {
	cases := []struct{ a, b, want int64 }{
		{5, 3, 2},
		{3, 5, -2},
		{math.MinInt64, 1, math.MinInt64},
		{math.MaxInt64, -1, math.MaxInt64},
		{math.MinInt64, math.MinInt64, 0},
		{0, math.MinInt64, math.MaxInt64}, // true result 2^63 saturates
	}
	for _, c := range cases {
		if got := SatSub(c.a, c.b); got != c.want {
			t.Errorf("SatSub(%d, %d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestSatMul(t *testing.T) {
	cases := []struct{ a, b, want int64 }{
		{6, 7, 42},
		{-6, 7, -42},
		{0, math.MaxInt64, 0},
		{math.MaxInt64, 2, math.MaxInt64},
		{math.MinInt64, 2, math.MinInt64},
		{math.MinInt64, -1, math.MaxInt64},
		{-1, math.MinInt64, math.MaxInt64},
		{1 << 32, 1 << 32, math.MaxInt64},
		{-(1 << 32), 1 << 32, math.MinInt64},
	}
	for _, c := range cases {
		if got := SatMul(c.a, c.b); got != c.want {
			t.Errorf("SatMul(%d, %d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCheckedOps(t *testing.T) {
	if v, ok := CheckedAdd(40, 2); !ok || v != 42 {
		t.Errorf("CheckedAdd(40, 2) = %d, %v", v, ok)
	}
	if _, ok := CheckedAdd(math.MaxInt64, 1); ok {
		t.Error("CheckedAdd(MaxInt64, 1) reported ok")
	}
	if v, ok := CheckedSub(40, -2); !ok || v != 42 {
		t.Errorf("CheckedSub(40, -2) = %d, %v", v, ok)
	}
	if _, ok := CheckedSub(math.MinInt64, 1); ok {
		t.Error("CheckedSub(MinInt64, 1) reported ok")
	}
	if v, ok := CheckedMul(6, 7); !ok || v != 42 {
		t.Errorf("CheckedMul(6, 7) = %d, %v", v, ok)
	}
	if _, ok := CheckedMul(math.MinInt64, -1); ok {
		t.Error("CheckedMul(MinInt64, -1) reported ok")
	}
	if _, ok := CheckedMul(1<<32, 1<<32); ok {
		t.Error("CheckedMul(2^32, 2^32) reported ok")
	}
}

func TestCeilDiv(t *testing.T) {
	cases := []struct{ a, b, want int64 }{
		{0, 3, 0},
		{1, 3, 1},
		{3, 3, 1},
		{4, 3, 2},
		{math.MaxInt64, 1, math.MaxInt64},
		{math.MaxInt64, 2, math.MaxInt64/2 + 1},
	}
	for _, c := range cases {
		if got := CeilDiv(c.a, c.b); got != c.want {
			t.Errorf("CeilDiv(%d, %d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestMul128Greater(t *testing.T) {
	big128 := func(a, b int64) *big.Int {
		return new(big.Int).Mul(big.NewInt(a), big.NewInt(b))
	}
	cases := [][4]int64{
		{3, 4, 6, 2},
		{6, 2, 3, 4},
		{3, 4, 4, 3},
		{math.MaxInt64, math.MaxInt64, math.MaxInt64, math.MaxInt64 - 1},
		{1 << 40, 1 << 40, 1 << 41, 1 << 40},
		{0, math.MaxInt64, 1, 1},
	}
	for _, c := range cases {
		want := big128(c[0], c[1]).Cmp(big128(c[2], c[3])) > 0
		if got := Mul128Greater(c[0], c[1], c[2], c[3]); got != want {
			t.Errorf("Mul128Greater(%d, %d, %d, %d) = %v, want %v", c[0], c[1], c[2], c[3], got, want)
		}
	}
}
