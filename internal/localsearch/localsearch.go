// Package localsearch post-optimizes MinBusy schedules by hill climbing:
// repeatedly move a single job to another (or a fresh) machine when that
// strictly lowers total busy time, until a local optimum.
//
// The paper's algorithms come with worst-case guarantees; local search
// adds no guarantee but consistently tightens constant factors on random
// instances (experiment E15). Moves preserve validity by construction:
// a move is applied only when the target machine stays within capacity.
package localsearch

import (
	"repro/internal/core"
	"repro/internal/interval"
	"repro/internal/job"
)

// Improve hill-climbs from the given schedule and returns a locally
// optimal schedule of no greater cost. The input must be valid (moves are
// validity-checked against capacity, but pre-existing overloads are not
// repaired). maxRounds bounds the number of full passes (≤ 0 means no
// bound, which terminates anyway because cost strictly decreases and is a
// non-negative integer).
func Improve(s core.Schedule, maxRounds int) core.Schedule {
	out := s.CompactMachines()
	in := out.Instance
	n := len(in.Jobs)
	if n == 0 {
		return out
	}

	// Machine state is slice-indexed (ids are compact after
	// CompactMachines) so that candidate scans are deterministic —
	// map-range order here would make tie-breaking, and therefore the
	// final local optimum, vary between runs.
	nextMachine := 0
	for _, m := range out.Machine {
		if m != core.Unscheduled && m >= nextMachine {
			nextMachine = m + 1
		}
	}
	machineIvs := make([][]interval.Interval, nextMachine, nextMachine+8)
	machineDem := make([][]int64, nextMachine, nextMachine+8)
	machinePos := make([][]int, nextMachine, nextMachine+8)
	for i, m := range out.Machine {
		if m == core.Unscheduled {
			continue
		}
		machineIvs[m] = append(machineIvs[m], in.Jobs[i].Interval)
		machineDem[m] = append(machineDem[m], in.Jobs[i].Demand)
		machinePos[m] = append(machinePos[m], i)
	}

	spanOf := func(m int) int64 { return interval.Span(machineIvs[m]) }

	remove := func(m, pos int) {
		idx := -1
		for k, p := range machinePos[m] {
			if p == pos {
				idx = k
				break
			}
		}
		machineIvs[m] = append(machineIvs[m][:idx], machineIvs[m][idx+1:]...)
		machineDem[m] = append(machineDem[m][:idx], machineDem[m][idx+1:]...)
		machinePos[m] = append(machinePos[m][:idx], machinePos[m][idx+1:]...)
	}
	add := func(m, pos int) {
		machineIvs[m] = append(machineIvs[m], in.Jobs[pos].Interval)
		machineDem[m] = append(machineDem[m], in.Jobs[pos].Demand)
		machinePos[m] = append(machinePos[m], pos)
	}
	fits := func(m, pos int) bool {
		ivs := append(append([]interval.Interval{}, machineIvs[m]...), in.Jobs[pos].Interval)
		dems := append(append([]int64{}, machineDem[m]...), in.Jobs[pos].Demand)
		return interval.WeightedMaxConcurrency(ivs, dems) <= int64(in.G)
	}

	for round := 0; maxRounds <= 0 || round < maxRounds; round++ {
		improved := false
		for pos := 0; pos < n; pos++ {
			from := out.Machine[pos]
			if from == core.Unscheduled {
				continue
			}
			oldFrom := spanOf(from)
			remove(from, pos)
			newFrom := spanOf(from)
			release := oldFrom - newFrom

			bestTo := -1
			var bestDelta int64 // strictly negative total change required
			for to := 0; to < nextMachine; to++ {
				if to == from || !fits(to, pos) {
					continue
				}
				oldTo := spanOf(to)
				add(to, pos)
				delta := (spanOf(to) - oldTo) - release
				remove(to, pos)
				if delta < 0 && (bestTo == -1 || delta < bestDelta) {
					bestTo = to
					bestDelta = delta
				}
			}
			// A fresh machine costs the job's full length.
			if delta := in.Jobs[pos].Len() - release; delta < 0 && (bestTo == -1 || delta < bestDelta) {
				bestTo = nextMachine
				bestDelta = delta
			}

			if bestTo == -1 {
				add(from, pos) // undo
				continue
			}
			if bestTo == nextMachine {
				machineIvs = append(machineIvs, nil)
				machineDem = append(machineDem, nil)
				machinePos = append(machinePos, nil)
				nextMachine++
			}
			add(bestTo, pos)
			out.Machine[pos] = bestTo
			improved = true
		}
		if !improved {
			break
		}
	}
	return out.CompactMachines()
}

// ImproveInstance is a convenience wrapper: run the auto dispatcher, then
// local search.
func ImproveInstance(in job.Instance, maxRounds int) core.Schedule {
	s, _ := core.MinBusyAuto(in)
	return Improve(s, maxRounds)
}
