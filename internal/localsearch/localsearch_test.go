package localsearch

import (
	"testing"

	"repro/internal/core"
	"repro/internal/demand"
	"repro/internal/exact"
	"repro/internal/workload"
)

func TestImproveNeverWorsens(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		in := workload.General(seed, workload.Config{N: 20, G: 3, MaxTime: 120, MaxLen: 40})
		base := core.FirstFit(in)
		improved := Improve(base, 0)
		if err := improved.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if improved.Cost() > base.Cost() {
			t.Errorf("seed %d: local search worsened %d -> %d", seed, base.Cost(), improved.Cost())
		}
		if improved.Throughput() != base.Throughput() {
			t.Errorf("seed %d: job count changed", seed)
		}
	}
}

func TestImproveFixesBadSchedule(t *testing.T) {
	// Start from the naive per-job schedule: local search must find the
	// pairing savings.
	in := workload.Clique(4, workload.Config{N: 10, G: 2, MaxTime: 100, MaxLen: 40})
	naive := core.NaivePerJob(in)
	improved := Improve(naive, 0)
	if improved.Cost() >= naive.Cost() {
		t.Errorf("no improvement from naive: %d vs %d", improved.Cost(), naive.Cost())
	}
}

func TestImproveRespectsOptimal(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		in := workload.General(seed, workload.Config{N: 10, G: 2, MaxTime: 60, MaxLen: 20})
		opt, err := exact.MinBusyCost(in)
		if err != nil {
			t.Fatal(err)
		}
		improved := Improve(core.FirstFit(in), 0)
		if improved.Cost() < opt {
			t.Fatalf("seed %d: local search beat the oracle: %d < %d", seed, improved.Cost(), opt)
		}
	}
}

func TestImproveMaxRounds(t *testing.T) {
	in := workload.Clique(1, workload.Config{N: 12, G: 2, MaxTime: 100, MaxLen: 40})
	one := Improve(core.NaivePerJob(in), 1)
	full := Improve(core.NaivePerJob(in), 0)
	if full.Cost() > one.Cost() {
		t.Errorf("more rounds worsened cost: %d > %d", full.Cost(), one.Cost())
	}
}

func TestImprovePreservesDemandValidity(t *testing.T) {
	base := workload.General(7, workload.Config{N: 15, G: 4, MaxTime: 100, MaxLen: 30})
	in := workload.WithDemands(8, base, 3)
	s := demand.FirstFit(in) // demand-aware starting point
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	improved := Improve(s, 0)
	if err := improved.Validate(); err != nil {
		t.Fatal(err)
	}
	if improved.Cost() > s.Cost() {
		t.Errorf("worsened: %d > %d", improved.Cost(), s.Cost())
	}
}

func TestImproveEmpty(t *testing.T) {
	in := workload.General(1, workload.Config{N: 0, G: 1, MaxTime: 10, MaxLen: 5})
	s := core.NewSchedule(in)
	if got := Improve(s, 0); got.Cost() != 0 {
		t.Fatal("empty schedule mangled")
	}
}

func TestImproveInstance(t *testing.T) {
	in := workload.Lightpaths(2, workload.Config{N: 25, G: 3, MaxTime: 200, MaxLen: 60})
	auto, _ := core.MinBusyAuto(in)
	improved := ImproveInstance(in, 0)
	if improved.Cost() > auto.Cost() {
		t.Errorf("ImproveInstance worsened: %d > %d", improved.Cost(), auto.Cost())
	}
	if err := improved.Validate(); err != nil {
		t.Fatal(err)
	}
}
