package online

import "repro/internal/safemath"

// StageStats accumulates the serving-stage telemetry of one streamed
// session: the total nanoseconds its confirmed arrivals spent queued
// before a micro-batch flush, inside the flush (journal append + fsync
// amortized over the batch), and in the strategy's own placement. The
// server's batcher hook observes each arrival as its flush completes;
// the session's close-report trace renders the totals as one aggregate
// span per stage.
//
// StageStats is single-writer by the same contract as Session: the
// batcher worker owns it while the stream is live, and the handler
// reads it only after the worker has exited.
type StageStats struct {
	// Arrivals counts the observed (confirmed, non-error) arrivals.
	Arrivals int
	// QueueNS, FlushNS and SolveNS are per-stage totals, saturating at
	// int64 max rather than wrapping on a pathological session.
	QueueNS int64
	FlushNS int64
	SolveNS int64
}

// Observe accumulates one arrival's stage timings.
func (st *StageStats) Observe(queueNS, flushNS, solveNS int64) {
	st.Arrivals++
	st.QueueNS = safemath.SatAdd(st.QueueNS, queueNS)
	st.FlushNS = safemath.SatAdd(st.FlushNS, flushNS)
	st.SolveNS = safemath.SatAdd(st.SolveNS, solveNS)
}
