// Benchmarks for the online strategies: arrival-stream replay at n = 1k
// and 10k, the perf trajectory for the online path.
//
// Run with:
//
//	go test -bench=. -benchmem ./internal/online
package online

import (
	"fmt"
	"testing"

	"repro/internal/workload"
)

func benchReplay(b *testing.B, st Strategy) {
	for _, n := range []int{1000, 10000} {
		in := workload.Arrivals(1, workload.Config{N: n, G: 4, MaxTime: int64(n) * 5, MaxLen: 200})
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Replay(in, st); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkReplayNaive(b *testing.B)    { benchReplay(b, Naive()) }
func BenchmarkReplayFirstFit(b *testing.B) { benchReplay(b, FirstFit()) }
func BenchmarkReplayBuckets(b *testing.B)  { benchReplay(b, Buckets()) }

func BenchmarkFlexReplay(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		flex := randomFlex(1, n, int64(n)*5, 200)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := FlexReplay(4, flex, StartAligned(), FirstFit()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
