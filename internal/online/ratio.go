package online

import (
	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/job"
	"repro/internal/stats"
)

// Report is one strategy's empirical competitive-ratio measurement against
// the offline algorithms on a single instance.
type Report struct {
	// Strategy names the online policy.
	Strategy string `json:"strategy"`
	// Cost, Machines and PeakOpen summarize the online run; Rejected
	// counts arrivals declined by admission control.
	Cost     int64 `json:"cost"`
	Machines int   `json:"machines"`
	PeakOpen int   `json:"peak_open"`
	Rejected int   `json:"rejected,omitempty"`
	// OfflineCost is core.MinBusyAuto's cost and OfflineAlg its algorithm
	// name — the strongest polynomial offline baseline for the class.
	OfflineCost int64  `json:"offline_cost"`
	OfflineAlg  string `json:"offline_alg"`
	// ExactCost is exact.MinBusy's optimum; HasExact is false when the
	// instance exceeds exact.MaxN and the oracle was skipped.
	ExactCost int64 `json:"exact_cost"`
	HasExact  bool  `json:"has_exact"`
	// LowerBound is the Observation 2.1 bound max(len/g, span).
	LowerBound int64 `json:"lower_bound"`
}

// VsOffline returns the empirical ratio against the offline baseline.
func (r Report) VsOffline() float64 { return stats.Ratio(r.Cost, r.OfflineCost) }

// VsExact returns the empirical competitive ratio against the optimum, or
// 0 when the exact oracle was not run.
func (r Report) VsExact() float64 {
	if !r.HasExact {
		return 0
	}
	return stats.Ratio(r.Cost, r.ExactCost)
}

// VsLowerBound returns the ratio against the Observation 2.1 lower bound —
// an upper bound on the true competitive ratio, available at any size.
func (r Report) VsLowerBound() float64 { return stats.Ratio(r.Cost, r.LowerBound) }

// Compare replays the instance through each strategy and reports each
// run's cost against core.MinBusyAuto, the Observation 2.1 lower bound,
// and — when the instance is small enough for the subset-DP oracle —
// exact.MinBusy. It is the harness behind the competitive-ratio
// experiments and cmd/onlinesim.
func Compare(in job.Instance, strategies ...Strategy) ([]Report, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	offline, offlineAlg := core.MinBusyAuto(in)
	offlineCost := offline.Cost()
	var exactCost int64
	hasExact := false
	if len(in.Jobs) <= exact.MaxN {
		s, err := exact.MinBusy(in)
		if err != nil {
			return nil, err
		}
		exactCost, hasExact = s.Cost(), true
	}
	lb := in.LowerBound()

	reports := make([]Report, 0, len(strategies))
	for _, st := range strategies {
		res, err := Replay(in, st)
		if err != nil {
			return nil, err
		}
		reports = append(reports, Report{
			Strategy:    res.Strategy,
			Cost:        res.Cost,
			Machines:    res.MachinesOpened,
			PeakOpen:    res.PeakOpen,
			Rejected:    res.Rejected,
			OfflineCost: offlineCost,
			OfflineAlg:  offlineAlg,
			ExactCost:   exactCost,
			HasExact:    hasExact,
			LowerBound:  lb,
		})
	}
	return reports, nil
}
