// Package online implements event-driven online busy-time scheduling: jobs
// arrive over time and must be committed to a capacity-g machine
// irrevocably, with no knowledge of future arrivals.
//
// This is the online variant of the MinBusy problem the rest of the
// library solves offline. It follows the model of Shalom, Voloshin, Wong,
// Yung and Zaks ("Online optimization of busy time on parallel machines")
// and, for flexible jobs with execution windows, Albers and van der
// Heijden ("Online Busy Time Scheduling with Flexible Jobs",
// arXiv:2405.08595). Each rigid job is revealed at its start time; a
// flexible job is revealed at its release time and the scheduler commits
// both a machine and a start time inside the window (see flex.go).
//
// The replay harness (Replay) owns the event loop and the machine state:
// it feeds an instance's jobs through a Strategy in arrival order, opens a
// machine when a job is placed on no existing one, and closes a machine
// once the clock passes the end of its last job — a closed machine never
// accepts further jobs, since restarting it would begin a new busy period
// and is therefore indistinguishable from opening a fresh machine.
// Strategies are pure placement policies over the currently-open machines.
//
// Machine threads are backed by interval treaps (internal/itree), the same
// structure behind core.FirstFitFast, so a fit check against an open
// machine costs O(g log n).
package online

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/interval"
	"repro/internal/itree"
	"repro/internal/job"
	"repro/internal/safemath"
)

// Machine is one open machine's state during a replay: up to g threads of
// pairwise non-overlapping jobs, plus busy-period bookkeeping. Strategies
// read machines; only the harness mutates them.
type Machine struct {
	id      int
	tag     int64
	g       int
	threads []*itree.Set
	busy    interval.Interval // hull of all placed jobs
	jobs    int
}

// ID returns the machine's index in opening order (also its index in the
// schedule the replay returns).
func (m *Machine) ID() int { return m.id }

// Tag returns the label the strategy attached when opening the machine
// (e.g. a length bucket); 0 unless the strategy set one.
func (m *Machine) Tag() int64 { return m.tag }

// Jobs returns the number of jobs placed on the machine so far.
func (m *Machine) Jobs() int { return m.jobs }

// BusyStart returns the start of the machine's busy period.
func (m *Machine) BusyStart() int64 { return m.busy.Start }

// BusyEnd returns the end of the machine's busy period: the machine closes
// once the clock reaches it.
func (m *Machine) BusyEnd() int64 { return m.busy.End }

// Fits reports whether iv can be placed on the machine: some thread has no
// overlapping job, or a fresh thread is still available under capacity g.
func (m *Machine) Fits(iv interval.Interval) bool {
	for _, th := range m.threads {
		if !th.Overlaps(iv) {
			return true
		}
	}
	return len(m.threads) < m.g
}

// MarginalCost returns the busy time placing iv on the machine would add:
// the growth of the machine's busy hull. For arrival-ordered rigid streams
// every machine's busy period is contiguous (each arrival starts before
// the machine's busy end), so the hull growth is exactly the cost growth;
// BestFit and the budgeted admission control both price placements with
// it. Opening a fresh machine costs iv.Len().
func (m *Machine) MarginalCost(iv interval.Interval) int64 {
	return safemath.SatSub(m.busy.Hull(iv).Len(), m.busy.Len())
}

// add places iv on the first accepting thread, opening a new thread when
// permitted. It reports whether the placement succeeded.
func (m *Machine) add(iv interval.Interval) bool {
	for _, th := range m.threads {
		if th.Insert(iv) {
			m.extend(iv)
			return true
		}
	}
	if len(m.threads) < m.g {
		th := &itree.Set{}
		th.Insert(iv)
		m.threads = append(m.threads, th)
		m.extend(iv)
		return true
	}
	return false
}

func (m *Machine) extend(iv interval.Interval) {
	m.busy = m.busy.Hull(iv)
	m.jobs++
}

// Pick sentinels: any negative index other than RejectJob opens a fresh
// machine; RejectJob declines the arrival entirely (admission control).
const (
	// OpenMachine asks the harness to open a fresh machine for the job.
	OpenMachine = -1
	// RejectJob declines the arrival: the job is never scheduled. Only
	// admission-control strategies (Budgeted) return it; the harness
	// records the rejection and charges no busy time.
	RejectJob = -2
)

// Strategy is an online placement policy. For each arriving job, Pick
// inspects the currently-open machines and returns either the index into
// open of the machine to extend, OpenMachine (or any other negative index
// except RejectJob) to open a fresh machine labeled tag, or RejectJob to
// decline the arrival. Picking a machine the job does not fit on is a
// strategy bug and fails the replay.
type Strategy interface {
	// Name identifies the strategy in reports and CLI output.
	Name() string
	// Pick chooses a destination for j among the open machines (listed in
	// opening order). tag is only used when idx < 0.
	Pick(open []*Machine, j job.Job) (idx int, tag int64)
}

// BudgetSetter is implemented by admission-control strategies whose
// rejection rule depends on a busy-time budget; the Solver and the
// streaming endpoint pass the request's budget through it before the
// first arrival.
type BudgetSetter interface {
	Strategy
	// SetBudget installs the busy-time budget; <= 0 means unlimited.
	SetBudget(budget int64)
}

// Result captures one online run.
type Result struct {
	// Schedule is the committed assignment over the replayed instance; it
	// always passes Validate and schedules every admitted job (every job,
	// unless the strategy applies admission control).
	Schedule core.Schedule
	// Strategy is the name of the policy that produced the run.
	Strategy string
	// Cost is the total busy time Schedule.Cost().
	Cost int64
	// MachinesOpened counts machines ever opened.
	MachinesOpened int
	// PeakOpen is the maximum number of simultaneously open machines.
	PeakOpen int
	// Rejected counts arrivals declined by admission control (0 for the
	// non-rejecting strategies).
	Rejected int
	// AdmittedWeight and RejectedWeight split the stream's total weight
	// by the admission decision.
	AdmittedWeight int64
	RejectedWeight int64
}

// CompetitiveVs returns Cost/offline, the empirical competitive ratio
// against an offline cost, or 0 when offline is 0.
func (r Result) CompetitiveVs(offline int64) float64 {
	if offline == 0 {
		return 0
	}
	return float64(r.Cost) / float64(offline)
}

// Replay feeds the instance's jobs through the strategy in arrival order
// (non-decreasing start time, ties by end then position) and returns the
// committed schedule with run statistics. It errors on invalid instances
// and on strategy bugs (out-of-range or infeasible picks), never on valid
// input: every strategy can always open a fresh machine.
func Replay(in job.Instance, st Strategy) (Result, error) {
	if err := in.Validate(); err != nil {
		return Result{}, err
	}
	sim := newSimulator(in.G)
	s := core.NewSchedule(in)
	for _, p := range arrivalOrder(in.Jobs) {
		sim.advance(in.Jobs[p].Start())
		pl, err := sim.place(in.Jobs[p], st)
		if err != nil {
			return Result{}, err
		}
		if !pl.Rejected {
			s.Assign(p, pl.Machine)
		}
	}
	return sim.result(s, st.Name()), nil
}

// Placement describes how the harness routed one arrival: the machine it
// was committed to (with whether that machine was freshly opened), the
// busy time the placement added, or the rejection verdict.
type Placement struct {
	// Machine is the committed machine's id, or RejectJob when rejected.
	Machine int
	// Opened reports whether the placement opened a fresh machine.
	Opened bool
	// Rejected reports an admission-control rejection; no busy time is
	// charged and Machine is RejectJob.
	Rejected bool
	// Marginal is the busy time the placement added: the job's length for
	// a fresh machine, the busy-period extension for a reused one, 0 for
	// a rejection.
	Marginal int64
}

// simulator is the event-driven machine state shared by Replay, FlexReplay
// and Session: the clock advances with arrivals, machines close as the
// clock passes their busy end, and each placement goes through a Strategy.
type simulator struct {
	g              int
	clock          int64
	open           []*Machine
	opened         int
	peakOpen       int
	rejected       int
	admittedWeight int64
	rejectedWeight int64
}

func newSimulator(g int) *simulator {
	return &simulator{g: g}
}

// advance moves the clock to t and retires machines whose busy period has
// ended: a machine with BusyEnd <= t can never again share busy time with
// a future job.
func (sim *simulator) advance(t int64) {
	sim.clock = t
	kept := sim.open[:0]
	for _, m := range sim.open {
		if m.BusyEnd() > t {
			kept = append(kept, m)
		}
	}
	sim.open = kept
}

// place routes one arriving job through the strategy and returns the
// resulting placement. The caller advances the clock to the arrival time
// first; place itself does not touch the clock, because a flexible job
// may commit a start later than the current release.
func (sim *simulator) place(j job.Job, st Strategy) (Placement, error) {
	idx, tag := st.Pick(sim.open, j)
	if idx >= len(sim.open) {
		return Placement{}, fmt.Errorf("online: strategy %s picked machine index %d with %d open", st.Name(), idx, len(sim.open))
	}
	if idx == RejectJob {
		sim.rejected++
		sim.rejectedWeight = safemath.SatAdd(sim.rejectedWeight, j.Weight)
		return Placement{Machine: RejectJob, Rejected: true}, nil
	}
	sim.admittedWeight = safemath.SatAdd(sim.admittedWeight, j.Weight)
	if idx >= 0 {
		m := sim.open[idx]
		marginal := m.MarginalCost(j.Interval)
		if !m.add(j.Interval) {
			return Placement{}, fmt.Errorf("online: strategy %s picked machine %d, but job %v does not fit", st.Name(), m.id, j)
		}
		return Placement{Machine: m.id, Marginal: marginal}, nil
	}
	m := &Machine{id: sim.opened, tag: tag, g: sim.g}
	m.add(j.Interval)
	sim.open = append(sim.open, m)
	sim.opened++
	if len(sim.open) > sim.peakOpen {
		sim.peakOpen = len(sim.open)
	}
	return Placement{Machine: m.id, Opened: true, Marginal: j.Interval.Len()}, nil
}

func (sim *simulator) result(s core.Schedule, name string) Result {
	return Result{
		Schedule:       s,
		Strategy:       name,
		Cost:           s.Cost(),
		MachinesOpened: sim.opened,
		PeakOpen:       sim.peakOpen,
		Rejected:       sim.rejected,
		AdmittedWeight: sim.admittedWeight,
		RejectedWeight: sim.rejectedWeight,
	}
}

// arrivalOrder returns job positions sorted by (start, end, position): the
// order in which an online scheduler observes the jobs.
func arrivalOrder(jobs []job.Job) []int {
	order := make([]int, len(jobs))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		ja, jb := jobs[order[a]], jobs[order[b]]
		if ja.Start() != jb.Start() {
			return ja.Start() < jb.Start()
		}
		return ja.End() < jb.End()
	})
	return order
}
