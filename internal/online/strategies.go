package online

import (
	"math/bits"

	"repro/internal/job"
)

// Naive returns the per-job baseline: every arrival opens its own machine.
// Its cost is exactly len(J), so by Observation 2.1 it is g-competitive —
// the online analogue of the Proposition 2.1 NaivePerJob baseline.
func Naive() Strategy { return naive{} }

type naive struct{}

func (naive) Name() string { return "online-naive" }

func (naive) Pick(open []*Machine, j job.Job) (int, int64) { return -1, 0 }

// FirstFit returns the online FirstFit strategy: each arriving job goes to
// the lowest-numbered open machine it fits on, else a fresh machine. It is
// the arrival-order counterpart of core.FirstFit; fit checks ride the same
// interval treaps as core.FirstFitFast. On adversarial streams it pays
// Ω(g)·OPT (see workload.AdversarialFirstFit), but on stochastic arrivals
// it tracks the offline cost closely.
func FirstFit() Strategy { return firstFit{} }

type firstFit struct{}

func (firstFit) Name() string { return "online-firstfit" }

func (firstFit) Pick(open []*Machine, j job.Job) (int, int64) {
	for i, m := range open {
		if m.Fits(j.Interval) {
			return i, 0
		}
	}
	return -1, 0
}

// Buckets returns the doubling-bucket strategy: jobs are classified by
// ⌈log₂ len⌉ and FirstFit runs separately inside each class, so a machine
// only ever mixes jobs whose lengths are within a factor of two. This is
// the geometric-rounding idea behind the Albers–van der Heijden
// bucket algorithms (and the paper's own BucketFirstFit in 2-D): grouping
// near-equal lengths bounds how much a long job can stretch a machine
// opened for short ones, at the price of more open machines.
func Buckets() Strategy { return buckets{} }

type buckets struct{}

func (buckets) Name() string { return "online-buckets" }

func (buckets) Pick(open []*Machine, j job.Job) (int, int64) {
	class := lenClass(j.Len())
	for i, m := range open {
		if m.Tag() == class && m.Fits(j.Interval) {
			return i, 0
		}
	}
	return -1, class
}

// lenClass returns ⌈log₂ l⌉, the doubling bucket of a length l >= 1.
func lenClass(l int64) int64 {
	return int64(bits.Len64(uint64(l - 1)))
}
