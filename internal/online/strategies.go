package online

import (
	"math/bits"

	"repro/internal/job"
	"repro/internal/safemath"
)

// Naive returns the per-job baseline: every arrival opens its own machine.
// Its cost is exactly len(J), so by Observation 2.1 it is g-competitive —
// the online analogue of the Proposition 2.1 NaivePerJob baseline.
func Naive() Strategy { return naive{} }

type naive struct{}

func (naive) Name() string { return "online-naive" }

func (naive) Pick(open []*Machine, j job.Job) (int, int64) { return -1, 0 }

// FirstFit returns the online FirstFit strategy: each arriving job goes to
// the lowest-numbered open machine it fits on, else a fresh machine. It is
// the arrival-order counterpart of core.FirstFit; fit checks ride the same
// interval treaps as core.FirstFitFast. On adversarial streams it pays
// Ω(g)·OPT (see workload.AdversarialFirstFit), but on stochastic arrivals
// it tracks the offline cost closely.
func FirstFit() Strategy { return firstFit{} }

type firstFit struct{}

func (firstFit) Name() string { return "online-firstfit" }

func (firstFit) Pick(open []*Machine, j job.Job) (int, int64) {
	for i, m := range open {
		if m.Fits(j.Interval) {
			return i, 0
		}
	}
	return -1, 0
}

// Buckets returns the doubling-bucket strategy: jobs are classified by
// ⌈log₂ len⌉ and FirstFit runs separately inside each class, so a machine
// only ever mixes jobs whose lengths are within a factor of two. This is
// the geometric-rounding idea behind the Albers–van der Heijden
// bucket algorithms (and the paper's own BucketFirstFit in 2-D): grouping
// near-equal lengths bounds how much a long job can stretch a machine
// opened for short ones, at the price of more open machines.
func Buckets() Strategy { return buckets{} }

type buckets struct{}

func (buckets) Name() string { return "online-buckets" }

func (buckets) Pick(open []*Machine, j job.Job) (int, int64) {
	class := lenClass(j.Len())
	for i, m := range open {
		if m.Tag() == class && m.Fits(j.Interval) {
			return i, 0
		}
	}
	return -1, class
}

// lenClass returns ⌈log₂ l⌉, the doubling bucket of a length l >= 1.
func lenClass(l int64) int64 {
	//lint:ignore busylint/coordarith l >= 1 is a Validate precondition, so l-1 cannot underflow
	return int64(bits.Len64(uint64(l - 1)))
}

// BestFit returns the online BestFit strategy: each arriving job goes to
// the open machine where it adds the least busy time (the smallest growth
// of the machine's busy period), ties broken toward the lowest-numbered
// machine, opening a fresh machine only when no open one fits. Where
// FirstFit commits to opening order, BestFit prices every candidate by
// marginal cost — the packing analogue of classical best-fit bin packing.
// A placement fully inside an already-paid-for busy period is free and
// always wins.
func BestFit() Strategy { return bestFit{} }

type bestFit struct{}

func (bestFit) Name() string { return "online-bestfit" }

func (bestFit) Pick(open []*Machine, j job.Job) (int, int64) {
	idx, _ := cheapestFit(open, j)
	return idx, 0
}

// cheapestFit returns the index of the fitting open machine with minimal
// marginal busy time (ties to the lowest index) and that cost, or
// (OpenMachine, j.Len()) when no open machine fits.
func cheapestFit(open []*Machine, j job.Job) (int, int64) {
	best, bestCost := OpenMachine, j.Len()
	for i, m := range open {
		if !m.Fits(j.Interval) {
			continue
		}
		if c := m.MarginalCost(j.Interval); best == OpenMachine || c < bestCost {
			best, bestCost = i, c
		}
	}
	return best, bestCost
}

// Budgeted returns the weighted admission-control strategy for arrivals
// carrying throughput weights: placements follow BestFit, but an arrival
// is admitted only while the session's busy-time budget can sustain it.
// A job of weight w whose cheapest placement would add marginal busy time
// c is rejected when c exceeds the job's share of the remaining budget —
// that is, when the marginal busy time per unit of the job's weight,
// c / w, exceeds the remaining budget per unit of then-admitted weight,
// B / (W + w) (B the remaining budget, W the weight admitted so far).
// Heavier arrivals may claim proportionally more of what is left, the
// test tightens as the budget drains relative to admitted weight, and
// c ≤ B·w/(W+w) ≤ B guarantees the budget is never overspent. With no
// budget (SetBudget(0) or never set) nothing is rejected and the
// strategy degenerates to BestFit.
//
// A Budgeted strategy is stateful (it tracks spend across Pick calls):
// use a fresh value per replay or session, never share one across runs.
func Budgeted(budget int64) BudgetSetter {
	b := &budgeted{}
	b.SetBudget(budget)
	return b
}

type budgeted struct {
	limited        bool
	remaining      int64
	admittedWeight int64
}

func (b *budgeted) Name() string { return "online-budget" }

// SetBudget installs the busy-time budget; <= 0 means unlimited. It
// resets the admission state, so it must be called before the first
// arrival, not mid-stream.
func (b *budgeted) SetBudget(budget int64) {
	b.limited = budget > 0
	b.remaining = budget
	b.admittedWeight = 0
}

func (b *budgeted) Pick(open []*Machine, j job.Job) (int, int64) {
	idx, cost := cheapestFit(open, j)
	w := j.Weight
	if w < 1 {
		w = 1
	}
	if b.limited {
		// Admit iff c·(W+w) ≤ B·w, compared exactly in 128 bits: at the
		// wire caps (lengths and weights up to 2^40) the products can
		// pass 2^53, where a float64 comparison could round in the
		// admitting direction and break the never-overspends guarantee.
		if safemath.Mul128Greater(cost, safemath.SatAdd(b.admittedWeight, w), b.remaining, w) {
			return RejectJob, 0
		}
		b.remaining = safemath.SatSub(b.remaining, cost)
	}
	// Clamping the admitted-weight total at MaxInt64 only tightens the
	// admission test, so saturation errs toward rejection, never wrap.
	b.admittedWeight = safemath.SatAdd(b.admittedWeight, w)
	return idx, 0
}
