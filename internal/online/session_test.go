package online

import (
	"testing"

	"repro/internal/core"
	"repro/internal/job"
	"repro/internal/workload"
)

// feedSession offers every job of an arrival-ordered instance and
// returns the events plus the closing summary.
func feedSession(t *testing.T, in job.Instance, st Strategy) ([]Event, Summary) {
	t.Helper()
	sess, err := NewSession(in.G, st)
	if err != nil {
		t.Fatal(err)
	}
	events := make([]Event, 0, len(in.Jobs))
	for _, j := range in.SortedByStart().Jobs {
		ev, err := sess.Offer(j)
		if err != nil {
			t.Fatalf("%s: offer %v: %v", st.Name(), j, err)
		}
		events = append(events, ev)
	}
	return events, sess.Summary()
}

// TestSessionMatchesReplay is the heart of the streaming story: feeding
// arrivals one at a time must commit exactly the placements a whole-
// instance Replay commits, and the incremental cost/bound/ratio tracking
// must land on the post-hoc numbers — for every strategy, including the
// rejecting budgeted one.
func TestSessionMatchesReplay(t *testing.T) {
	cfg := workload.Config{N: 120, G: 4, MaxTime: 800, MaxLen: 60}
	for seed := int64(1); seed <= 5; seed++ {
		in := workload.WeightedArrivals(seed, cfg)
		budget := in.LowerBound() * 3 / 2
		cases := []struct {
			session Strategy
			replay  Strategy
		}{
			{Naive(), Naive()},
			{FirstFit(), FirstFit()},
			{Buckets(), Buckets()},
			{BestFit(), BestFit()},
			{Budgeted(budget), Budgeted(budget)},
		}
		for _, c := range cases {
			events, sum := feedSession(t, in, c.session)
			res, err := Replay(in, c.replay)
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, c.replay.Name(), err)
			}
			if want := res.Summarize(); sum != want {
				t.Errorf("seed %d %s: session summary %+v, want replay summary %+v", seed, c.session.Name(), sum, want)
			}
			if sum.Cost != res.Schedule.Cost() {
				t.Errorf("seed %d %s: incremental cost %d, schedule costs %d", seed, c.session.Name(), sum.Cost, res.Schedule.Cost())
			}
			last := events[len(events)-1]
			if last.Cost != sum.Cost || last.LowerBound != sum.LowerBound || last.Ratio != sum.Ratio {
				t.Errorf("seed %d %s: last event telemetry %+v disagrees with summary %+v", seed, c.session.Name(), last, sum)
			}
			// Per-event machine ids must reproduce the replay's committed
			// assignment (rejections included).
			byID := map[int]int{}
			for i, j := range in.Jobs {
				if res.Schedule.Machine[i] != core.Unscheduled {
					byID[j.ID] = res.Schedule.Machine[i]
				} else {
					byID[j.ID] = RejectJob
				}
			}
			for _, ev := range events {
				if byID[ev.JobID] != ev.Machine {
					t.Fatalf("seed %d %s: job %d streamed to machine %d, replay committed %d",
						seed, c.session.Name(), ev.JobID, ev.Machine, byID[ev.JobID])
				}
			}
		}
	}
}

// TestRatioTrackerMatchesPostHocBound cross-checks the incremental
// Observation 2.1 bound against Instance.LowerBound on every prefix.
func TestRatioTrackerMatchesPostHocBound(t *testing.T) {
	in := workload.Arrivals(7, workload.Config{N: 60, G: 3, MaxTime: 300, MaxLen: 40})
	tr := NewRatioTracker(in.G)
	prefix := job.Instance{G: in.G}
	for _, j := range in.Jobs {
		tr.Observe(j.Interval, 0)
		prefix.Jobs = append(prefix.Jobs, j)
		if got, want := tr.LowerBound(), prefix.LowerBound(); got != want {
			t.Fatalf("after %d arrivals: incremental bound %d, post-hoc %d", len(prefix.Jobs), got, want)
		}
	}
}

func TestSessionRejectsOutOfOrderArrivals(t *testing.T) {
	sess, err := NewSession(2, FirstFit())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Offer(job.New(0, 10, 20)); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Offer(job.New(1, 5, 15)); err == nil {
		t.Error("arrival starting before the stream clock was accepted")
	}
}

func TestSessionRejectsInvalidArrivals(t *testing.T) {
	sess, err := NewSession(2, FirstFit())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Offer(job.Job{ID: 0, Weight: 1}); err == nil {
		t.Error("empty interval accepted")
	}
	weightless := job.New(1, 0, 5)
	weightless.Weight = 0
	if _, err := sess.Offer(weightless); err == nil {
		t.Error("weight 0 accepted")
	}
}

func TestBestFitPrefersCheapestExtension(t *testing.T) {
	// Machine 0 carries [0,10) and [5,12) (both threads of g = 2, busy
	// until 12); [6,40) fits neither thread and opens machine 1. The
	// probe [11,30) then fits machine 0 on its freed first thread at a
	// busy-time extension of 18, or machine 1's free thread inside its
	// already-paid busy period at no cost. FirstFit takes the
	// lower-numbered machine and pays; BestFit takes the free placement.
	in := job.NewInstance(2,
		[2]int64{0, 10},
		[2]int64{5, 12},
		[2]int64{6, 40},
		[2]int64{11, 30},
	)
	ff := replayOrFatal(t, in, FirstFit())
	bf := replayOrFatal(t, in, BestFit())
	if m := ff.Schedule.Machine; m[3] != m[0] {
		t.Fatalf("firstfit assignments %v, want the probe on machine of job 0", m)
	}
	if m := bf.Schedule.Machine; m[3] != m[2] {
		t.Errorf("bestfit assignments %v, want the probe tucked into job 2's busy period", m)
	}
	if bf.Cost >= ff.Cost {
		t.Errorf("bestfit cost %d, want below firstfit %d", bf.Cost, ff.Cost)
	}
}

func TestBudgetedNeverOverspendsAndRejects(t *testing.T) {
	cfg := workload.Config{N: 200, G: 3, MaxTime: 600, MaxLen: 50}
	in := workload.WeightedArrivals(3, cfg)
	// A budget well under the unconstrained cost forces rejections.
	unconstrained := replayOrFatal(t, in, BestFit())
	budget := unconstrained.Cost / 3
	res := replayOrFatal(t, in, Budgeted(budget))
	if res.Cost > budget {
		t.Errorf("budgeted cost %d exceeds budget %d", res.Cost, budget)
	}
	if res.Rejected == 0 {
		t.Error("budget at a third of the unconstrained cost rejected nothing")
	}
	if res.Rejected+res.Schedule.Throughput() != len(in.Jobs) {
		t.Errorf("rejected %d + scheduled %d != %d arrivals", res.Rejected, res.Schedule.Throughput(), len(in.Jobs))
	}
	var totalW int64
	for _, j := range in.Jobs {
		totalW += j.Weight
	}
	if res.AdmittedWeight+res.RejectedWeight != totalW {
		t.Errorf("admitted weight %d + rejected %d != total %d", res.AdmittedWeight, res.RejectedWeight, totalW)
	}
	if err := res.Schedule.Validate(); err != nil {
		t.Errorf("budgeted schedule invalid: %v", err)
	}
}

func TestBudgetedUnlimitedMatchesBestFit(t *testing.T) {
	in := workload.WeightedArrivals(11, workload.Config{N: 150, G: 4, MaxTime: 700, MaxLen: 60})
	bf := replayOrFatal(t, in, BestFit())
	b := replayOrFatal(t, in, Budgeted(0))
	if b.Cost != bf.Cost || b.Rejected != 0 || b.MachinesOpened != bf.MachinesOpened {
		t.Errorf("unlimited budgeted run (cost %d, rejected %d, machines %d) diverges from bestfit (cost %d, machines %d)",
			b.Cost, b.Rejected, b.MachinesOpened, bf.Cost, bf.MachinesOpened)
	}
}

// TestBudgetedPrefersHeavyArrivals pins the weighted admission rule's
// direction: with identical intervals, a heavier job may claim more of
// the remaining budget than a light one.
func TestBudgetedPrefersHeavyArrivals(t *testing.T) {
	mk := func(w int64) job.Job {
		j := job.New(0, 0, 80)
		j.Weight = w
		return j
	}
	// Budget 90, arrivals of cost 80: the first is affordable
	// (80·1 ≤ 90·1); a second identical one faces remaining budget 10
	// against admitted weight 1 (80·2 > 10·1) and must be rejected.
	st := Budgeted(90)
	if idx, _ := st.Pick(nil, mk(1)); idx == RejectJob {
		t.Fatal("first affordable arrival rejected")
	}
	if idx, _ := st.Pick(nil, mk(1)); idx != RejectJob {
		t.Error("unaffordable second arrival admitted")
	}
	// Direction: budget 100, first job of weight 1 and cost 80 admitted
	// leaves remaining 20, admitted weight 1. A weight-1 job of cost 15
	// needs 15·2 ≤ 20·1 — rejected; a weight-9 job of the same cost needs
	// 15·10 ≤ 20·9 — admitted.
	a := Budgeted(100)
	a.Pick(nil, mk(1))
	jLight := job.New(1, 80, 95)
	jLight.Weight = 1
	if idx, _ := a.Pick(nil, jLight); idx != RejectJob {
		t.Error("light marginal arrival admitted against a drained budget")
	}
	b := Budgeted(100)
	b.Pick(nil, mk(1))
	jHeavy := job.New(1, 80, 95)
	jHeavy.Weight = 9
	if idx, _ := b.Pick(nil, jHeavy); idx == RejectJob {
		t.Error("heavy arrival rejected though its weight share covers the marginal cost")
	}
}
