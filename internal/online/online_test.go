package online

import (
	"fmt"
	"testing"

	"repro/internal/exact"
	"repro/internal/job"
	"repro/internal/workload"
)

func strategies() []Strategy {
	return []Strategy{Naive(), FirstFit(), Buckets()}
}

// replayOrFatal runs a replay and fails the test on any harness error.
func replayOrFatal(t *testing.T, in job.Instance, st Strategy) Result {
	t.Helper()
	res, err := Replay(in, st)
	if err != nil {
		t.Fatalf("%s: %v", st.Name(), err)
	}
	return res
}

func TestNaiveOpensOneMachinePerJob(t *testing.T) {
	in := workload.Arrivals(1, workload.Config{N: 20, G: 3, MaxTime: 100, MaxLen: 30})
	res := replayOrFatal(t, in, Naive())
	if res.MachinesOpened != len(in.Jobs) {
		t.Errorf("naive opened %d machines for %d jobs", res.MachinesOpened, len(in.Jobs))
	}
	if res.Cost != in.TotalLen() {
		t.Errorf("naive cost %d, want len(J) = %d", res.Cost, in.TotalLen())
	}
}

func TestFirstFitPacksOverlappingArrivals(t *testing.T) {
	// Three pairwise-overlapping unit-start jobs, g = 2: the first two share
	// machine 0 on separate threads, the third needs machine 1.
	in := job.NewInstance(2, [2]int64{0, 10}, [2]int64{1, 11}, [2]int64{2, 12})
	res := replayOrFatal(t, in, FirstFit())
	m := res.Schedule.Machine
	if m[0] != m[1] || m[0] == m[2] {
		t.Errorf("assignments %v, want jobs 0,1 together and job 2 alone", m)
	}
	if res.MachinesOpened != 2 || res.PeakOpen != 2 {
		t.Errorf("opened %d peak %d, want 2 and 2", res.MachinesOpened, res.PeakOpen)
	}
}

func TestFirstFitReusesFreedThread(t *testing.T) {
	// Job 2 starts after job 0 ends; the machine is still open (job 1 runs
	// long), so FirstFit reuses the freed thread rather than opening.
	in := job.NewInstance(2, [2]int64{0, 4}, [2]int64{0, 20}, [2]int64{5, 9})
	res := replayOrFatal(t, in, FirstFit())
	for i := 1; i < len(res.Schedule.Machine); i++ {
		if res.Schedule.Machine[i] != res.Schedule.Machine[0] {
			t.Fatalf("assignments %v, want all on one machine", res.Schedule.Machine)
		}
	}
	if res.MachinesOpened != 1 {
		t.Errorf("opened %d machines, want 1", res.MachinesOpened)
	}
}

func TestFirstFitDoesNotReviveClosedMachine(t *testing.T) {
	// Job 1 arrives after job 0's machine has gone idle; reopening it would
	// start a new busy period, so the harness must offer no open machine.
	in := job.NewInstance(2, [2]int64{0, 5}, [2]int64{5, 10})
	res := replayOrFatal(t, in, FirstFit())
	if res.Schedule.Machine[0] == res.Schedule.Machine[1] {
		t.Errorf("assignments %v, want distinct machines", res.Schedule.Machine)
	}
	if res.MachinesOpened != 2 || res.PeakOpen != 1 {
		t.Errorf("opened %d peak %d, want 2 and 1", res.MachinesOpened, res.PeakOpen)
	}
}

func TestBucketsSeparatesLengthClasses(t *testing.T) {
	// A short and a long job overlap; Buckets must not mix them even though
	// FirstFit would.
	in := job.NewInstance(2, [2]int64{0, 2}, [2]int64{0, 100})
	res := replayOrFatal(t, in, Buckets())
	if res.Schedule.Machine[0] == res.Schedule.Machine[1] {
		t.Errorf("buckets mixed length classes: %v", res.Schedule.Machine)
	}
	ff := replayOrFatal(t, in, FirstFit())
	if ff.Schedule.Machine[0] != ff.Schedule.Machine[1] {
		t.Errorf("firstfit split what it should pack: %v", ff.Schedule.Machine)
	}
}

func TestBucketsMachinesAreLengthHomogeneous(t *testing.T) {
	in := workload.Arrivals(7, workload.Config{N: 60, G: 3, MaxTime: 300, MaxLen: 64})
	res := replayOrFatal(t, in, Buckets())
	for m, positions := range res.Schedule.MachineJobs() {
		class := lenClass(in.Jobs[positions[0]].Len())
		for _, p := range positions[1:] {
			if got := lenClass(in.Jobs[p].Len()); got != class {
				t.Fatalf("machine %d mixes buckets %d and %d", m, class, got)
			}
		}
	}
}

func TestLenClass(t *testing.T) {
	cases := []struct {
		l    int64
		want int64
	}{{1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4}, {1 << 20, 20}}
	for _, c := range cases {
		if got := lenClass(c.l); got != c.want {
			t.Errorf("lenClass(%d) = %d, want %d", c.l, got, c.want)
		}
	}
}

// TestReplayProperty checks the core invariants on every strategy across
// workload families: the schedule validates, every job is assigned, and
// the cost sits between the Observation 2.1 lower bound and len(J).
func TestReplayProperty(t *testing.T) {
	type family struct {
		name string
		gen  func(seed int64, c workload.Config) job.Instance
	}
	families := []family{
		{"general", workload.General},
		{"clique", workload.Clique},
		{"proper", workload.Proper},
		{"proper-clique", workload.ProperClique},
		{"arrivals", workload.Arrivals},
		{"bursty", workload.BurstyArrivals},
		{"cloud", workload.Cloud},
	}
	for _, f := range families {
		for seed := int64(1); seed <= 5; seed++ {
			in := f.gen(seed, workload.Config{N: 40, G: 3, MaxTime: 200, MaxLen: 40})
			for _, st := range strategies() {
				res := replayOrFatal(t, in, st)
				if err := res.Schedule.Validate(); err != nil {
					t.Fatalf("%s/%s seed %d: %v", f.name, st.Name(), seed, err)
				}
				if got := res.Schedule.Throughput(); got != len(in.Jobs) {
					t.Fatalf("%s/%s seed %d: scheduled %d/%d", f.name, st.Name(), seed, got, len(in.Jobs))
				}
				if res.Cost < in.LowerBound() || res.Cost > in.TotalLen() {
					t.Fatalf("%s/%s seed %d: cost %d outside [LB=%d, len=%d]",
						f.name, st.Name(), seed, res.Cost, in.LowerBound(), in.TotalLen())
				}
				if res.Cost != res.Schedule.Cost() {
					t.Fatalf("%s/%s seed %d: result cost %d != schedule cost %d",
						f.name, st.Name(), seed, res.Cost, res.Schedule.Cost())
				}
			}
		}
	}
}

// TestFirstFitCompetitiveRegression pins online FirstFit within a fixed
// constant of the exact optimum on small instances across classes. The
// bound is empirical headroom, not a theorem: regressions that worsen the
// packing will trip it.
func TestFirstFitCompetitiveRegression(t *testing.T) {
	const maxRatio = 3.0
	worst := 0.0
	for _, gen := range []func(int64, workload.Config) job.Instance{
		workload.General, workload.Clique, workload.Proper, workload.ProperClique, workload.Arrivals,
	} {
		for seed := int64(1); seed <= 10; seed++ {
			in := gen(seed, workload.Config{N: 12, G: 3, MaxTime: 60, MaxLen: 20})
			opt, err := exact.MinBusy(in)
			if err != nil {
				t.Fatal(err)
			}
			res := replayOrFatal(t, in, FirstFit())
			if ratio := res.CompetitiveVs(opt.Cost()); ratio > worst {
				worst = ratio
			}
		}
	}
	t.Logf("worst online FirstFit ratio vs exact: %.3f", worst)
	if worst > maxRatio {
		t.Errorf("online FirstFit ratio %.3f exceeds regression bound %.1f", worst, maxRatio)
	}
}

// TestAdversarialFirstFit drives online FirstFit to its Ω(g) lower bound:
// on the blocker stream it opens one machine per long job where the
// optimum shares a single machine among all of them.
func TestAdversarialFirstFit(t *testing.T) {
	in, err := workload.AdversarialFirstFit(3, 30)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := exact.MinBusy(in)
	if err != nil {
		t.Fatal(err)
	}
	res := replayOrFatal(t, in, FirstFit())
	ratio := res.CompetitiveVs(opt.Cost())
	t.Logf("g=3 adversarial: firstfit=%d exact=%d ratio=%.3f", res.Cost, opt.Cost(), ratio)
	if ratio < 2.0 {
		t.Errorf("adversarial stream no longer hurts FirstFit: ratio %.3f < 2.0", ratio)
	}
	// Every long job must sit on its own machine — the signature of the
	// lower-bound construction.
	longs := map[int]bool{}
	for p, j := range in.Jobs {
		if j.Len() > 2 {
			m := res.Schedule.Machine[p]
			if longs[m] {
				t.Fatalf("two long jobs share machine %d", m)
			}
			longs[m] = true
		}
	}
	if len(longs) != in.G {
		t.Errorf("long jobs on %d machines, want g = %d", len(longs), in.G)
	}
}

// TestAdversarialRatioOrdering measures both strategies' empirical
// competitive ratios on the Ω(g) blocker stream against the exact
// offline optimum. FirstFit stays within its documented g bound (the
// construction makes it pay about g·longLen against an optimum of about
// longLen, so the ratio approaches g from below), while Naive's cost
// exceeds FirstFit's on the same stream — it additionally pays every
// blocker its full length — yet still meets its own documented
// g-competitive bound cost = len(J) ≤ g·OPT.
func TestAdversarialRatioOrdering(t *testing.T) {
	const g, longLen = 3, 60
	in, err := workload.AdversarialFirstFit(g, longLen)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := exact.MinBusy(in)
	if err != nil {
		t.Fatal(err)
	}
	ff := replayOrFatal(t, in, FirstFit())
	nv := replayOrFatal(t, in, Naive())
	ffRatio := ff.CompetitiveVs(opt.Cost())
	nvRatio := nv.CompetitiveVs(opt.Cost())
	t.Logf("adversarial g=%d: exact=%d firstfit=%d (ratio %.3f) naive=%d (ratio %.3f)",
		g, opt.Cost(), ff.Cost, ffRatio, nv.Cost, nvRatio)

	if nv.Cost != in.TotalLen() {
		t.Errorf("naive cost %d, documented cost is len(J) = %d", nv.Cost, in.TotalLen())
	}
	if ffRatio > float64(g) {
		t.Errorf("FirstFit ratio %.3f exceeds the documented g = %d bound", ffRatio, g)
	}
	if ffRatio < float64(g)/2 {
		t.Errorf("FirstFit ratio %.3f; the Ω(g) stream should force at least g/2 = %.1f", ffRatio, float64(g)/2)
	}
	if nvRatio <= ffRatio {
		t.Errorf("naive ratio %.3f does not exceed FirstFit's %.3f on the blocker stream", nvRatio, ffRatio)
	}
	if nvRatio > float64(g) {
		t.Errorf("naive ratio %.3f exceeds its documented g-competitive bound", nvRatio)
	}
}

// TestAdversarialFirstFitScales checks the ratio keeps growing with g,
// using the Observation 2.1 lower bound once exact is out of reach.
func TestAdversarialFirstFitScales(t *testing.T) {
	for _, g := range []int{4, 6} {
		in, err := workload.AdversarialFirstFit(g, 100*int64(g))
		if err != nil {
			t.Fatal(err)
		}
		res := replayOrFatal(t, in, FirstFit())
		ratio := res.CompetitiveVs(in.LowerBound())
		t.Logf("g=%d adversarial: firstfit=%d LB=%d ratio=%.3f", g, res.Cost, in.LowerBound(), ratio)
		if min := float64(g) / 2; ratio < min {
			t.Errorf("g=%d: ratio vs LB %.3f, want >= %.1f", g, ratio, min)
		}
	}
}

func TestCompareReports(t *testing.T) {
	in := workload.Arrivals(3, workload.Config{N: 12, G: 2, MaxTime: 80, MaxLen: 25})
	reports, err := Compare(in, strategies()...)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 3 {
		t.Fatalf("%d reports, want 3", len(reports))
	}
	for _, r := range reports {
		if !r.HasExact {
			t.Fatalf("%s: exact oracle skipped on n=12", r.Strategy)
		}
		if r.VsExact() < 1.0 {
			t.Errorf("%s: online beat the optimum: ratio %.3f", r.Strategy, r.VsExact())
		}
		if r.VsOffline() <= 0 || r.VsLowerBound() < 1.0 {
			t.Errorf("%s: degenerate ratios %+v", r.Strategy, r)
		}
		if r.ExactCost < r.LowerBound || r.OfflineCost < r.ExactCost {
			t.Errorf("%s: inconsistent baselines %+v", r.Strategy, r)
		}
	}
	// Larger instances skip the exact oracle but still report.
	big := workload.Arrivals(3, workload.Config{N: 40, G: 2, MaxTime: 200, MaxLen: 25})
	reports, err = Compare(big, FirstFit())
	if err != nil {
		t.Fatal(err)
	}
	if reports[0].HasExact || reports[0].VsExact() != 0 {
		t.Errorf("exact oracle claimed on n=40: %+v", reports[0])
	}
}

func TestReplayRejectsInvalidInstance(t *testing.T) {
	if _, err := Replay(job.Instance{G: 0}, FirstFit()); err == nil {
		t.Error("g=0 accepted")
	}
	bad := job.NewInstance(2, [2]int64{5, 5})
	if _, err := Replay(bad, FirstFit()); err == nil {
		t.Error("empty-interval job accepted")
	}
}

func TestReplayRejectsBuggyStrategy(t *testing.T) {
	in := job.NewInstance(1, [2]int64{0, 10}, [2]int64{0, 10})
	if _, err := Replay(in, pickStrategy{idx: 5}); err == nil {
		t.Error("out-of-range pick accepted")
	}
	// Both jobs overlap with g=1: picking machine 0 for the second is
	// infeasible.
	if _, err := Replay(in, pickStrategy{idx: 0}); err == nil {
		t.Error("infeasible pick accepted")
	}
}

// pickStrategy always picks a fixed open-machine index once one exists.
type pickStrategy struct{ idx int }

func (pickStrategy) Name() string { return "pick" }

func (p pickStrategy) Pick(open []*Machine, j job.Job) (int, int64) {
	if len(open) == 0 {
		return -1, 0
	}
	return p.idx, 0
}

func ExampleReplay() {
	in := job.NewInstance(2, [2]int64{0, 10}, [2]int64{1, 11}, [2]int64{2, 12})
	res, _ := Replay(in, FirstFit())
	fmt.Println(res.Strategy, res.Cost, res.MachinesOpened)
	// Output: online-firstfit 21 2
}
