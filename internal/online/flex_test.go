package online

import (
	"math/rand"
	"testing"

	"repro/internal/interval"
)

// randomFlex builds a deterministic flexible workload with varying slack.
func randomFlex(seed int64, n int, maxTime, maxLen int64) []FlexJob {
	r := rand.New(rand.NewSource(seed))
	flex := make([]FlexJob, n)
	for i := range flex {
		release := r.Int63n(maxTime + 1)
		length := 1 + r.Int63n(maxLen)
		slack := r.Int63n(maxLen)
		flex[i] = NewFlexJob(i, release, release+length+slack, length)
	}
	return flex
}

func TestFlexJobValidate(t *testing.T) {
	if err := NewFlexJob(0, 0, 10, 5).Validate(); err != nil {
		t.Errorf("valid flex job rejected: %v", err)
	}
	if err := NewFlexJob(0, 0, 10, 11).Validate(); err == nil {
		t.Error("oversized flex job accepted")
	}
	if err := NewFlexJob(0, 0, 10, 0).Validate(); err == nil {
		t.Error("zero-length flex job accepted")
	}
}

func TestFlexRigidWindowEnforced(t *testing.T) {
	f := NewFlexJob(1, 10, 30, 5)
	if _, err := f.Rigid(9); err == nil {
		t.Error("start before release accepted")
	}
	if _, err := f.Rigid(26); err == nil {
		t.Error("end past deadline accepted")
	}
	j, err := f.Rigid(25)
	if err != nil {
		t.Fatal(err)
	}
	if j.Start() != 25 || j.End() != 30 || j.ID != 1 {
		t.Errorf("rigid job %v", j)
	}
}

// TestFlexReplayProperty: any flexible replay yields a valid schedule that
// assigns every job inside its window.
func TestFlexReplayProperty(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		flex := randomFlex(seed, 40, 200, 30)
		for _, pol := range []StartPolicy{StartASAP(), StartAligned()} {
			for _, st := range strategies() {
				res, err := FlexReplay(3, flex, pol, st)
				if err != nil {
					t.Fatalf("seed %d %s+%s: %v", seed, pol.Name(), st.Name(), err)
				}
				if err := res.Schedule.Validate(); err != nil {
					t.Fatalf("seed %d %s+%s: %v", seed, pol.Name(), st.Name(), err)
				}
				if got := res.Schedule.Throughput(); got != len(flex) {
					t.Fatalf("seed %d %s+%s: scheduled %d/%d", seed, pol.Name(), st.Name(), got, len(flex))
				}
				for p, j := range res.Schedule.Instance.Jobs {
					f := flex[p]
					if j.ID != f.ID || j.Len() != f.Len || !f.Window.Contains(j.Interval) {
						t.Fatalf("seed %d %s+%s: job %v escapes flex job %+v", seed, pol.Name(), st.Name(), j, f)
					}
				}
			}
		}
	}
}

func TestStartASAPMatchesRigidReplay(t *testing.T) {
	// With zero slack, flexible replay must agree with the rigid replay of
	// the induced instance.
	flex := randomFlex(2, 30, 150, 25)
	for i := range flex {
		flex[i].Window.End = flex[i].Window.Start + flex[i].Len
	}
	res, err := FlexReplay(2, flex, StartASAP(), FirstFit())
	if err != nil {
		t.Fatal(err)
	}
	rigid, err := Replay(res.Schedule.Instance, FirstFit())
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost != rigid.Cost || res.MachinesOpened != rigid.MachinesOpened {
		t.Errorf("flex (cost %d, %d machines) != rigid (cost %d, %d machines)",
			res.Cost, res.MachinesOpened, rigid.Cost, rigid.MachinesOpened)
	}
}

func TestStartAlignedTucksIntoOpenBusyPeriod(t *testing.T) {
	// A long job holds a machine open until 100. A flexible unit job with a
	// wide window should be delayed to finish exactly at the busy end,
	// adding no busy time, while ASAP starts it at release.
	flex := []FlexJob{
		{ID: 0, Window: interval.Interval{Start: 0, End: 100}, Len: 100},
		{ID: 1, Window: interval.Interval{Start: 10, End: 200}, Len: 5},
	}
	aligned, err := FlexReplay(2, flex, StartAligned(), FirstFit())
	if err != nil {
		t.Fatal(err)
	}
	if j := aligned.Schedule.Instance.Jobs[1]; j.End() != 100 {
		t.Errorf("aligned start %v, want end at busy end 100", j.Interval)
	}
	if aligned.Cost != 100 || aligned.MachinesOpened != 1 {
		t.Errorf("aligned cost %d machines %d, want 100 and 1", aligned.Cost, aligned.MachinesOpened)
	}
	asap, err := FlexReplay(2, flex, StartASAP(), FirstFit())
	if err != nil {
		t.Fatal(err)
	}
	if j := asap.Schedule.Instance.Jobs[1]; j.Start() != 10 {
		t.Errorf("asap start %v, want release 10", j.Interval)
	}
}

func TestFlexReplayRejectsBadInput(t *testing.T) {
	if _, err := FlexReplay(0, nil, StartASAP(), FirstFit()); err == nil {
		t.Error("g=0 accepted")
	}
	bad := []FlexJob{NewFlexJob(0, 0, 3, 5)}
	if _, err := FlexReplay(2, bad, StartASAP(), FirstFit()); err == nil {
		t.Error("oversized flex job accepted")
	}
	if _, err := FlexReplay(2, []FlexJob{NewFlexJob(0, 0, 10, 5)}, badPolicy{}, FirstFit()); err == nil {
		t.Error("window-violating policy accepted")
	}
}

// badPolicy commits starts outside the window.
type badPolicy struct{}

func (badPolicy) Name() string { return "bad" }

func (badPolicy) Choose(open []*Machine, f FlexJob) int64 { return f.Window.End }
