package online

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/interval"
	"repro/internal/job"
	"repro/internal/safemath"
)

// FlexJob is a flexible job in the commitment model of Albers and van der
// Heijden (arXiv:2405.08595): it has processing length Len and must run
// contiguously inside the window [Release, Deadline). The job is revealed
// at its release time, and the scheduler immediately commits a machine and
// a concrete start time; both decisions are irrevocable.
type FlexJob struct {
	ID     int
	Window interval.Interval // [Release, Deadline)
	Len    int64             // processing length, 1 <= Len <= Window.Len()
	Weight int64             // throughput weight; defaults to 1 when 0
}

// NewFlexJob builds a flexible job with window [release, deadline) and the
// given processing length.
func NewFlexJob(id int, release, deadline, length int64) FlexJob {
	return FlexJob{ID: id, Window: interval.Interval{Start: release, End: deadline}, Len: length, Weight: 1}
}

// Slack returns the window's scheduling freedom, Window.Len() − Len. A
// slack of 0 makes the job rigid.
func (f FlexJob) Slack() int64 { return safemath.SatSub(f.Window.Len(), f.Len) }

// Validate reports the first structural problem with the flexible job.
func (f FlexJob) Validate() error {
	if f.Len < 1 {
		return fmt.Errorf("online: flex job %d has length %d, need >= 1", f.ID, f.Len)
	}
	if f.Slack() < 0 {
		return fmt.Errorf("online: flex job %d has length %d exceeding window %v", f.ID, f.Len, f.Window)
	}
	return nil
}

// Rigid commits the flexible job to the concrete start time, returning the
// rigid job [start, start+Len). It errors when the start violates the
// window.
func (f FlexJob) Rigid(start int64) (job.Job, error) {
	// Saturation keeps an adversarial start from wrapping end negative;
	// a clamped end simply fails the window check below.
	end := safemath.SatAdd(start, f.Len)
	if start < f.Window.Start || end > f.Window.End {
		return job.Job{}, fmt.Errorf("online: flex job %d start %d puts [%d,%d) outside window %v", f.ID, start, start, end, f.Window)
	}
	w := f.Weight
	if w == 0 {
		w = 1
	}
	return job.Job{ID: f.ID, Interval: interval.Interval{Start: start, End: end}, Weight: w, Demand: 1}, nil
}

// StartPolicy chooses the committed start time for a flexible job at its
// release, given the machines currently open. The returned start must keep
// the job inside its window; FlexReplay rejects policies that do not.
type StartPolicy interface {
	// Name identifies the policy in reports and CLI output.
	Name() string
	// Choose returns the start time to commit for f.
	Choose(open []*Machine, f FlexJob) int64
}

// StartASAP returns the policy that starts every job at its release time,
// discarding the window's flexibility. Composing it with any Strategy
// reduces flexible scheduling to the rigid problem.
func StartASAP() StartPolicy { return startASAP{} }

type startASAP struct{}

func (startASAP) Name() string { return "asap" }

func (startASAP) Choose(open []*Machine, f FlexJob) int64 { return f.Window.Start }

// StartAligned returns the policy that delays a job just enough to tuck it
// inside the longest-running open busy period: it starts the job at
// min(deadline, furthest busy end) − Len, clamped to the release. Keeping
// the job inside an already-paid-for busy window costs no new busy time if
// a thread is free there; with no open machine it falls back to ASAP.
func StartAligned() StartPolicy { return startAligned{} }

type startAligned struct{}

func (startAligned) Name() string { return "aligned" }

func (startAligned) Choose(open []*Machine, f FlexJob) int64 {
	var maxEnd int64
	found := false
	for _, m := range open {
		if !found || m.BusyEnd() > maxEnd {
			maxEnd, found = m.BusyEnd(), true
		}
	}
	if !found {
		return f.Window.Start
	}
	latest := safemath.SatSub(f.Window.End, f.Len)
	s := safemath.SatSub(maxEnd, f.Len)
	if s > latest {
		s = latest
	}
	if s < f.Window.Start {
		s = f.Window.Start
	}
	return s
}

// FlexReplay feeds flexible jobs through a start policy and a placement
// strategy in release order: at each release the policy commits a start
// time, the job becomes rigid, and the strategy places it exactly as in
// Replay. The returned schedule is over the committed rigid instance
// (capacity g, IDs preserved from the flexible jobs).
//
// Note that a delayed start may leave a gap on its machine; the busy-time
// cost model charges only busy measure (Schedule.Cost spans the union), so
// gaps are free, matching the paper's machine-splitting convention.
func FlexReplay(g int, flex []FlexJob, pol StartPolicy, st Strategy) (Result, error) {
	if g < 1 {
		return Result{}, fmt.Errorf("online: capacity g = %d, need g >= 1", g)
	}
	order := make([]int, len(flex))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		fa, fb := flex[order[a]], flex[order[b]]
		if fa.Window.Start != fb.Window.Start {
			return fa.Window.Start < fb.Window.Start
		}
		return fa.Window.End < fb.Window.End
	})

	sim := newSimulator(g)
	committed := make([]job.Job, len(flex))
	machine := make([]int, len(flex))
	for _, p := range order {
		f := flex[p]
		if err := f.Validate(); err != nil {
			return Result{}, err
		}
		sim.advance(f.Window.Start)
		rigid, err := f.Rigid(pol.Choose(sim.open, f))
		if err != nil {
			return Result{}, fmt.Errorf("online: start policy %s: %v", pol.Name(), err)
		}
		pl, err := sim.place(rigid, st)
		if err != nil {
			return Result{}, err
		}
		committed[p] = rigid
		machine[p] = pl.Machine
	}

	in := job.Instance{Jobs: committed, G: g}
	if err := in.Validate(); err != nil {
		return Result{}, err
	}
	s := core.NewSchedule(in)
	for p, m := range machine {
		// A rejected flexible job stays committed (its rigid interval is
		// part of the replayed instance) but unscheduled.
		if m != RejectJob {
			s.Assign(p, m)
		}
	}
	return sim.result(s, pol.Name()+"+"+st.Name()), nil
}
