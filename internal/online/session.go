package online

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/interval"
	"repro/internal/job"
	"repro/internal/safemath"
	"repro/internal/stats"
)

// RatioTracker maintains the Observation 2.1 lower bound, the running
// busy-time cost and their ratio incrementally, one admitted arrival at a
// time — the per-event counterpart of Report's post-hoc computation, so a
// streaming session can attach a live competitive ratio to every event
// without retaining the jobs.
//
// Observe requires non-decreasing start times (the arrival order Session
// enforces): under that order the union of admitted intervals grows at a
// single frontier, so span(J) is maintainable in O(1) per event, and every
// machine's busy period stays contiguous, so summing placement marginals
// reproduces Schedule.Cost exactly.
type RatioTracker struct {
	g        int64
	totalLen int64 // Σ len over admitted jobs (parallelism bound numerator)
	covered  int64 // measure of the union of admitted intervals
	frontier int64 // right edge of the union seen so far
	started  bool
	cost     int64 // Σ placement marginals = total busy time
}

// NewRatioTracker returns a tracker for capacity g (g >= 1).
func NewRatioTracker(g int) *RatioTracker {
	if g < 1 {
		panic(fmt.Sprintf("online: NewRatioTracker(%d): need g >= 1", g))
	}
	return &RatioTracker{g: int64(g)}
}

// Observe records one admitted arrival: its interval (start must be >= every
// earlier observed start) and the busy time its placement added.
func (t *RatioTracker) Observe(iv interval.Interval, marginal int64) {
	// Σ len saturates rather than wraps: a stream of ~4M wire-capped
	// (2^40) lengths is enough to pass MaxInt64, and a wrapped total
	// would report a bogus competitive ratio instead of a clamped one.
	t.totalLen = safemath.SatAdd(t.totalLen, iv.Len())
	t.cost = safemath.SatAdd(t.cost, marginal)
	switch {
	case !t.started:
		t.covered = iv.Len()
		t.frontier = iv.End
		t.started = true
	case iv.Start >= t.frontier:
		t.covered = safemath.SatAdd(t.covered, iv.Len())
		t.frontier = iv.End
	case iv.End > t.frontier:
		t.covered = safemath.SatAdd(t.covered, safemath.SatSub(iv.End, t.frontier))
		t.frontier = iv.End
	}
}

// Cost returns the running busy time of the committed placements.
func (t *RatioTracker) Cost() int64 { return t.cost }

// LowerBound returns max(⌈len/g⌉, span) over the admitted arrivals so far —
// Observation 2.1 applied to the prefix.
func (t *RatioTracker) LowerBound() int64 {
	pb := safemath.CeilDiv(t.totalLen, t.g)
	if t.covered > pb {
		return t.covered
	}
	return pb
}

// Ratio returns Cost/LowerBound, the live empirical competitive ratio
// against the Observation 2.1 bound (1 when nothing is admitted yet).
func (t *RatioTracker) Ratio() float64 { return stats.Ratio(t.cost, t.LowerBound()) }

// Event is one streamed arrival's outcome: the admission decision, the
// placement, and the running cost/lower-bound/ratio telemetry after it.
type Event struct {
	// Seq numbers the arrival within its session, starting at 0.
	Seq int
	// JobID echoes the arrival's id.
	JobID int
	// Rejected reports an admission-control rejection; Machine is
	// RejectJob and Marginal 0.
	Rejected bool
	// Machine is the committed machine id (opening order), RejectJob on
	// rejection.
	Machine int
	// Opened reports whether the placement opened a fresh machine (false
	// when an open machine was reused or the job was rejected).
	Opened bool
	// Marginal is the busy time this placement added.
	Marginal int64
	// Cost, LowerBound and Ratio are the running totals after the event.
	Cost       int64
	LowerBound int64
	Ratio      float64
	// Open counts machines open after the event.
	Open int
}

// Summary is a session's closing report — the streamed counterpart of the
// final line of a Replay-based run, with the lower bound and ratio taken
// over the admitted arrivals.
type Summary struct {
	Strategy       string
	Arrivals       int
	Admitted       int
	Rejected       int
	AdmittedWeight int64
	RejectedWeight int64
	Cost           int64
	MachinesOpened int
	PeakOpen       int
	LowerBound     int64
	Ratio          float64
}

// Session is an incremental online run: arrivals are offered one at a
// time, each returning its placement event with live telemetry, instead
// of replaying a complete instance. It backs the daemon's streaming
// endpoint; the hot path allocates only when a machine opens, and the
// session retains no per-job state beyond the open machines.
//
// A Session is not safe for concurrent use; the streaming server drives
// one per connection.
type Session struct {
	sim       *simulator
	st        Strategy
	tracker   *RatioTracker
	arrivals  int
	lastStart int64
}

// NewSession starts a session with capacity g feeding the strategy. Like
// a Budgeted value, a Session is single-use: strategies carry state, so
// build a fresh strategy per session.
func NewSession(g int, st Strategy) (*Session, error) {
	if g < 1 {
		return nil, fmt.Errorf("online: capacity g = %d, need g >= 1", g)
	}
	if st == nil {
		return nil, fmt.Errorf("online: session needs a strategy")
	}
	return &Session{sim: newSimulator(g), st: st, tracker: NewRatioTracker(g)}, nil
}

// Offer feeds one arrival through the strategy and returns its event. It
// errors on structurally invalid jobs, on out-of-order arrivals (starts
// must be non-decreasing — the defining property of an arrival stream,
// and what keeps the incremental cost and bound accounting exact), and on
// strategy bugs; after an error the session is no longer usable.
func (s *Session) Offer(j job.Job) (Event, error) {
	if j.Interval.Empty() {
		return Event{}, fmt.Errorf("online: arrival %d has empty interval %v", j.ID, j.Interval)
	}
	if j.Weight < 1 {
		return Event{}, fmt.Errorf("online: arrival %d has weight %d, need >= 1", j.ID, j.Weight)
	}
	if s.arrivals > 0 && j.Start() < s.lastStart {
		return Event{}, fmt.Errorf("online: arrival %d starts at %d before the stream clock %d", j.ID, j.Start(), s.lastStart)
	}
	s.lastStart = j.Start()
	s.sim.advance(j.Start())
	pl, err := s.sim.place(j, s.st)
	if err != nil {
		return Event{}, err
	}
	seq := s.arrivals
	s.arrivals++
	if !pl.Rejected {
		s.tracker.Observe(j.Interval, pl.Marginal)
	}
	return Event{
		Seq:        seq,
		JobID:      j.ID,
		Rejected:   pl.Rejected,
		Machine:    pl.Machine,
		Opened:     pl.Opened,
		Marginal:   pl.Marginal,
		Cost:       s.tracker.Cost(),
		LowerBound: s.tracker.LowerBound(),
		Ratio:      s.tracker.Ratio(),
		Open:       len(s.sim.open),
	}, nil
}

// Arrivals returns the number of arrivals offered so far — the sequence
// number the next arrival will receive. It is the checkpoint cursor for
// journaled sessions: a resumed session continues from this position.
func (s *Session) Arrivals() int { return s.arrivals }

// Clock returns the stream clock: the start time of the latest arrival
// (0 before the first). A resumed session rebuilt by journal replay
// reports the same clock as the interrupted one, so resume handlers can
// reject time-travelling continuations up front.
func (s *Session) Clock() int64 { return s.lastStart }

// Summary returns the session's closing report. It may be read at any
// point; the streaming endpoint emits it once the client's arrival stream
// ends.
func (s *Session) Summary() Summary {
	return Summary{
		Strategy:       s.st.Name(),
		Arrivals:       s.arrivals,
		Admitted:       s.arrivals - s.sim.rejected,
		Rejected:       s.sim.rejected,
		AdmittedWeight: s.sim.admittedWeight,
		RejectedWeight: s.sim.rejectedWeight,
		Cost:           s.tracker.Cost(),
		MachinesOpened: s.sim.opened,
		PeakOpen:       s.sim.peakOpen,
		LowerBound:     s.tracker.LowerBound(),
		Ratio:          s.tracker.Ratio(),
	}
}

// Summarize derives the Summary an equivalent streaming session would
// close with from an offline Replay result: cost and machine statistics
// from the run, lower bound and ratio over the admitted (scheduled) jobs.
// The streaming e2e tests and the E17 experiment compare this against a
// live Session byte for byte.
func (r Result) Summarize() Summary {
	in := r.Schedule.Instance
	admitted := job.Instance{G: in.G}
	var admittedW, rejectedW int64
	// Replay always sizes Machine to the instance; a hand-built Result
	// that does not cannot be charged per job, so every job counts as
	// rejected (mirroring ResultOf's leniency toward malformed inputs).
	complete := len(r.Schedule.Machine) == len(in.Jobs)
	for i, j := range in.Jobs {
		if complete && r.Schedule.Machine[i] != core.Unscheduled {
			admitted.Jobs = append(admitted.Jobs, j)
			admittedW = safemath.SatAdd(admittedW, j.Weight)
		} else {
			rejectedW = safemath.SatAdd(rejectedW, j.Weight)
		}
	}
	var lb int64
	if len(admitted.Jobs) > 0 {
		lb = admitted.LowerBound()
	}
	return Summary{
		Strategy:       r.Strategy,
		Arrivals:       len(in.Jobs),
		Admitted:       len(admitted.Jobs),
		Rejected:       len(in.Jobs) - len(admitted.Jobs),
		AdmittedWeight: admittedW,
		RejectedWeight: rejectedW,
		Cost:           r.Cost,
		MachinesOpened: r.MachinesOpened,
		PeakOpen:       r.PeakOpen,
		LowerBound:     lb,
		Ratio:          stats.Ratio(r.Cost, lb),
	}
}
