// Package reopt implements the reoptimization layer: canonical-form
// instance fingerprinting, a bounded cache of prior solves, and a local
// repair solver that warm-starts from a cached incumbent assignment.
//
// Production clients resubmit near-identical instances — one job added,
// one cancelled, a window shifted — and the metamorphic equivalence
// classes of the conformance harness (job permutation, time translation,
// ID renumbering) define exactly when two submissions are the same
// instance: cost and validity are invariant under all three. The
// canonical form quotients by them — jobs sorted to the paper's
// J1 ≤ … ≤ Jn order, the time line translated to a zero origin, IDs
// dropped — so a fingerprint lookup serves permuted and time-shifted
// resubmissions for free, and a small symmetric difference of canonical
// job multisets routes through the repair path (following "Optimization
// and Reoptimization in Scheduling Problems", arXiv 1509.01630).
package reopt

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"sort"

	"repro/internal/job"
)

// CanonJob is one job in canonical form: translated so the instance's
// earliest start is zero, stripped of its ID. Two jobs with equal
// CanonJob values are interchangeable in any schedule.
type CanonJob struct {
	Start, End     int64
	Weight, Demand int64
}

func (c CanonJob) less(o CanonJob) bool {
	if c.Start != o.Start {
		return c.Start < o.Start
	}
	if c.End != o.End {
		return c.End < o.End
	}
	if c.Weight != o.Weight {
		return c.Weight < o.Weight
	}
	return c.Demand < o.Demand
}

// Canonical returns the instance's canonical job sequence — sorted by
// (start, end, weight, demand) after translating the earliest start to
// zero — and the permutation mapping canonical positions back to
// instance positions: perm[k] is the index into in.Jobs of the job at
// canonical position k. Jobs with equal canonical tuples are
// interchangeable, so the tie-break among them (instance position) never
// affects the fingerprint or the validity of a remapped schedule.
func Canonical(in job.Instance) (jobs []CanonJob, perm []int) {
	n := len(in.Jobs)
	jobs = make([]CanonJob, n)
	perm = make([]int, n)
	if n == 0 {
		return jobs, perm
	}
	origin := in.Jobs[0].Start()
	for _, j := range in.Jobs[1:] {
		if j.Start() < origin {
			origin = j.Start()
		}
	}
	for i, j := range in.Jobs {
		jobs[i] = CanonJob{Start: j.Start() - origin, End: j.End() - origin, Weight: j.Weight, Demand: j.Demand}
		perm[i] = i
	}
	sort.SliceStable(perm, func(a, b int) bool { return jobs[perm[a]].less(jobs[perm[b]]) })
	sorted := make([]CanonJob, n)
	for k, p := range perm {
		sorted[k] = jobs[p]
	}
	return sorted, perm
}

// FingerprintCanon hashes an already-canonical job sequence together
// with the capacity g and a scope string (the pinned algorithm name, so
// solvers pinned to different algorithms never serve each other's
// schedules). The digest is hex SHA-256.
func FingerprintCanon(g int, jobs []CanonJob, scope string) string {
	h := sha256.New()
	var buf [8]byte
	word := func(v int64) {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	h.Write([]byte(scope))
	h.Write([]byte{0})
	word(int64(g))
	word(int64(len(jobs)))
	for _, j := range jobs {
		word(j.Start)
		word(j.End)
		word(j.Weight)
		word(j.Demand)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Fingerprint returns the canonical-form fingerprint of an instance:
// equal exactly when two instances agree up to job order, job IDs and a
// uniform time translation.
func Fingerprint(in job.Instance) string {
	jobs, _ := Canonical(in)
	return FingerprintCanon(in.G, jobs, "")
}

// SymDiff returns the size of the symmetric difference of two canonical
// job multisets (both sorted, as Canonical returns them): the number of
// jobs present in one but not the other, counting multiplicity. The
// merge aborts early once the running count exceeds limit (limit < 0
// never aborts), returning a value > limit.
func SymDiff(a, b []CanonJob, limit int) int {
	diff := 0
	i, k := 0, 0
	for i < len(a) && k < len(b) {
		switch {
		case a[i] == b[k]:
			i++
			k++
		case a[i].less(b[k]):
			diff++
			i++
		default:
			diff++
			k++
		}
		if limit >= 0 && diff > limit {
			return diff
		}
	}
	return diff + (len(a) - i) + (len(b) - k)
}
