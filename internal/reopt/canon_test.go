package reopt_test

import (
	"testing"

	"repro/internal/conformance"
	"repro/internal/igraph"
	"repro/internal/interval"
	"repro/internal/job"
	"repro/internal/reopt"
	"repro/internal/workload"
)

// classes under test: one seeded instance per conformance class family,
// the same generators the conformance harness walks.
func classInstances(t *testing.T) map[string]job.Instance {
	t.Helper()
	cfg := workload.Config{N: 24, G: 3, MaxTime: 300, MaxLen: 40}
	out := map[string]job.Instance{}
	for _, class := range []igraph.Class{
		igraph.General, igraph.Proper, igraph.Clique, igraph.ProperClique, igraph.OneSidedClique,
	} {
		out[class.String()] = conformance.GenerateClass(7, class, cfg)
	}
	return out
}

// renumberIDs relabels every job ID (a pure renaming; schedules and
// costs cannot depend on it).
func renumberIDs(in job.Instance) job.Instance {
	out := in.Clone()
	for i := range out.Jobs {
		out.Jobs[i].ID = 1000 + 7*out.Jobs[i].ID
	}
	return out
}

// TestFingerprintMetamorphic asserts the canonical-form quotient: the
// conformance harness's equivalence transformations — job permutation,
// uniform time translation, ID renumbering, and their compositions —
// preserve the fingerprint.
func TestFingerprintMetamorphic(t *testing.T) {
	for name, in := range classInstances(t) {
		fp := reopt.Fingerprint(in)
		variants := map[string]job.Instance{
			"permuted":   conformance.Permute(in),
			"translated": conformance.Translate(in, 1217),
			"renumbered": renumberIDs(in),
			"composed":   renumberIDs(conformance.Translate(conformance.Permute(in), -341)),
		}
		for vname, v := range variants {
			if got := reopt.Fingerprint(v); got != fp {
				t.Errorf("%s: fingerprint changed under %s: %s -> %s", name, vname, fp, got)
			}
		}
	}
}

// TestFingerprintDistinguishes asserts the other direction: genuinely
// different instances — an endpoint moved, a weight changed, a job
// added or dropped, a different capacity — fingerprint differently.
func TestFingerprintDistinguishes(t *testing.T) {
	in := workload.General(11, workload.Config{N: 20, G: 3, MaxTime: 200, MaxLen: 30})
	fp := reopt.Fingerprint(in)

	variants := map[string]func() job.Instance{
		"endpoint moved": func() job.Instance {
			out := in.Clone()
			iv := out.Jobs[4].Interval
			out.Jobs[4].Interval = interval.New(iv.Start, iv.End+1)
			return out
		},
		"weight changed": func() job.Instance {
			out := in.Clone()
			out.Jobs[2].Weight = 5
			return out
		},
		"demand changed": func() job.Instance {
			out := in.Clone()
			out.Jobs[3].Demand = 2
			return out
		},
		"job dropped": func() job.Instance {
			out := in.Clone()
			out.Jobs = out.Jobs[:len(out.Jobs)-1]
			return out
		},
		"job added": func() job.Instance {
			out := in.Clone()
			out.Jobs = append(out.Jobs, job.New(999, 5, 25))
			return out
		},
		"capacity changed": func() job.Instance {
			out := in.Clone()
			out.G = in.G + 1
			return out
		},
		"non-uniform shift": func() job.Instance {
			out := conformance.Translate(in, 50)
			iv := out.Jobs[0].Interval
			out.Jobs[0].Interval = interval.New(iv.Start-50, iv.End-50)
			return out
		},
	}
	for name, mk := range variants {
		v := mk()
		if got := reopt.Fingerprint(v); got == fp {
			t.Errorf("%s: fingerprint collision %s", name, fp)
		}
	}
}

// TestFingerprintScope: solvers pinned to different algorithms must not
// share cache entries.
func TestFingerprintScope(t *testing.T) {
	in := workload.General(3, workload.Config{N: 10, G: 2, MaxTime: 100, MaxLen: 20})
	jobs, _ := reopt.Canonical(in)
	if reopt.FingerprintCanon(in.G, jobs, "") == reopt.FingerprintCanon(in.G, jobs, "first-fit") {
		t.Fatal("scoped fingerprints collide")
	}
}

func TestSymDiff(t *testing.T) {
	a := job.NewInstance(2, [2]int64{0, 10}, [2]int64{5, 15}, [2]int64{8, 20})
	b := job.NewInstance(2, [2]int64{0, 10}, [2]int64{5, 15}, [2]int64{9, 20})
	ca, _ := reopt.Canonical(a)
	cb, _ := reopt.Canonical(b)
	if d := reopt.SymDiff(ca, cb, -1); d != 2 {
		t.Fatalf("SymDiff = %d, want 2 (one job replaced)", d)
	}
	if d := reopt.SymDiff(ca, ca, -1); d != 0 {
		t.Fatalf("SymDiff(a, a) = %d, want 0", d)
	}
	if d := reopt.SymDiff(ca, cb[:2], -1); d != 1 {
		t.Fatalf("SymDiff against truncated = %d, want 1", d)
	}
	// The early-abort limit still reports a value above the limit.
	if d := reopt.SymDiff(ca, cb, 0); d <= 0 {
		t.Fatalf("SymDiff with limit 0 = %d, want > 0", d)
	}
}
