package reopt

import (
	"container/list"
	"fmt"
	"sync"

	"repro/internal/igraph"
)

// Entry is one cached solve: the canonical instance it answered and the
// assignment in canonical position order, so any submission with the
// same canonical form can have the schedule remapped onto its own job
// positions. Machine labels are compact (0..k−1).
type Entry struct {
	// ID is the cache-assigned result identifier a later Request.BaseID
	// can reference.
	ID string
	// Fingerprint keys the entry (canonical form + solver scope).
	Fingerprint string
	// G and Jobs are the canonical instance.
	G    int
	Jobs []CanonJob
	// Machine[k] is the machine of the job at canonical position k.
	Machine []int
	// Algorithm, Class and Cost describe the solve that produced it.
	Algorithm string
	Class     igraph.Class
	Cost      int64
}

// Cache is a bounded LRU of prior solves keyed by canonical-form
// fingerprint, with a secondary index by result ID for explicit BaseID
// warm starts. It is safe for concurrent use.
type Cache struct {
	mu       sync.Mutex
	capacity int
	seq      int64
	lru      *list.List // of *Entry; front = most recently used
	byFP     map[string]*list.Element
	byID     map[string]*list.Element
}

// NewCache returns an empty cache holding at most capacity entries
// (minimum 1).
func NewCache(capacity int) *Cache {
	if capacity < 1 {
		capacity = 1
	}
	return &Cache{
		capacity: capacity,
		lru:      list.New(),
		byFP:     map[string]*list.Element{},
		byID:     map[string]*list.Element{},
	}
}

// Len returns the number of cached entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// Lookup returns the entry with the exact fingerprint, promoting it to
// most-recently-used.
func (c *Cache) Lookup(fp string) (Entry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byFP[fp]
	if !ok {
		return Entry{}, false
	}
	c.lru.MoveToFront(el)
	return *el.Value.(*Entry), true
}

// LookupID returns the entry with the given result ID, promoting it.
func (c *Cache) LookupID(id string) (Entry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byID[id]
	if !ok {
		return Entry{}, false
	}
	c.lru.MoveToFront(el)
	return *el.Value.(*Entry), true
}

// Nearest scans for the cached entry with the smallest symmetric
// difference of canonical job multisets against the submitted form,
// considering only entries with the same g, scope-compatible
// fingerprints being the caller's concern. It returns the best entry
// whose difference is at most maxDelta, ties broken toward the more
// recently used. Entries whose job count already differs by more than
// maxDelta are skipped without a merge, so the scan stays cheap.
func (c *Cache) Nearest(g int, jobs []CanonJob, maxDelta int) (Entry, int, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var best *list.Element
	bestDelta := maxDelta + 1
	for el := c.lru.Front(); el != nil; el = el.Next() {
		e := el.Value.(*Entry)
		if e.G != g {
			continue
		}
		if d := len(e.Jobs) - len(jobs); d > bestDelta-1 || -d > bestDelta-1 {
			continue
		}
		if d := SymDiff(e.Jobs, jobs, bestDelta-1); d < bestDelta {
			best, bestDelta = el, d
			if bestDelta == 0 {
				break
			}
		}
	}
	if best == nil {
		return Entry{}, 0, false
	}
	c.lru.MoveToFront(best)
	return *best.Value.(*Entry), bestDelta, true
}

// Store inserts the entry, assigns its ID, and evicts the least
// recently used entry beyond capacity. Storing a fingerprint that is
// already cached replaces the old entry (the new solve is fresher) but
// keeps the old ID resolvable until eviction would have claimed it —
// simplest correct behavior: the old entry is removed, so a BaseID
// pointing at it falls back to the fingerprint path.
func (c *Cache) Store(e Entry) string {
	c.mu.Lock()
	defer c.mu.Unlock()
	if old, ok := c.byFP[e.Fingerprint]; ok {
		c.remove(old)
	}
	c.seq++
	e.ID = fmt.Sprintf("r-%d-%.12s", c.seq, e.Fingerprint)
	el := c.lru.PushFront(&e)
	c.byFP[e.Fingerprint] = el
	c.byID[e.ID] = el
	for c.lru.Len() > c.capacity {
		c.remove(c.lru.Back())
	}
	return e.ID
}

// remove unlinks an element from the list and both indexes; the caller
// holds the mutex.
func (c *Cache) remove(el *list.Element) {
	e := el.Value.(*Entry)
	delete(c.byFP, e.Fingerprint)
	delete(c.byID, e.ID)
	c.lru.Remove(el)
}
