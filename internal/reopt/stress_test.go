package reopt_test

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/reopt"
)

// TestStressReoptCache drives the warm-start cache from concurrent
// writers and readers — Store, Lookup, LookupID and Nearest all contend
// on the one mutex and mutate LRU order, so this is where `go test
// -race` (the CI stress step) would surface an unguarded path. The
// functional invariant checked throughout: Len never exceeds capacity,
// and a hit always carries its own fingerprint and ID.
func TestStressReoptCache(t *testing.T) {
	const (
		capacity = 32
		writers  = 4
		readers  = 4
		perW     = 800
	)
	c := reopt.NewCache(capacity)
	probe := []reopt.CanonJob{{Start: 0, End: 10, Weight: 1, Demand: 1}}

	var wg sync.WaitGroup
	errc := make(chan error, writers+readers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				fp := fmt.Sprintf("fp-%d-%d", w, i%64) // repeats exercise replace-same-fingerprint
				id := c.Store(reopt.Entry{
					Fingerprint: fp,
					G:           2 + i%3,
					Jobs:        []reopt.CanonJob{{Start: 0, End: int64(1 + i%50), Weight: 1, Demand: 1}},
					Machine:     []int{0},
					Algorithm:   "stress",
					Cost:        int64(i),
				})
				if e, ok := c.LookupID(id); ok && e.Fingerprint != fp {
					errc <- fmt.Errorf("LookupID(%s) returned fingerprint %s, want %s", id, e.Fingerprint, fp)
					return
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				if n := c.Len(); n > capacity {
					errc <- fmt.Errorf("Len() = %d exceeds capacity %d", n, capacity)
					return
				}
				fp := fmt.Sprintf("fp-%d-%d", r%writers, i%64)
				if e, ok := c.Lookup(fp); ok && e.Fingerprint != fp {
					errc <- fmt.Errorf("Lookup(%s) returned entry for %s", fp, e.Fingerprint)
					return
				}
				if e, delta, ok := c.Nearest(2, probe, 4); ok && (delta < 0 || e.G != 2) {
					errc <- fmt.Errorf("Nearest returned g=%d delta=%d", e.G, delta)
					return
				}
			}
		}(r)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	if n := c.Len(); n > capacity {
		t.Fatalf("final Len() = %d exceeds capacity %d", n, capacity)
	}
}
