package reopt

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/interval"
	"repro/internal/job"
	"repro/internal/trace"
)

// Repaired is the outcome of a warm-started delta solve.
type Repaired struct {
	// Schedule is a valid total schedule of the submitted instance.
	Schedule core.Schedule
	// Transition counts the jobs carried over from the base whose
	// machine changed — the reoptimization transition cost of
	// arXiv 1509.01630 (added jobs are new placements, not transitions).
	Transition int
	// Added and Removed are the delta sizes: jobs inserted into and
	// evicted from the incumbent assignment.
	Added, Removed int
}

// Repair warm-starts from a cached incumbent: jobs common to the base
// and the submitted instance (matched by canonical form) keep their
// incumbent machines, removed jobs are evicted, added jobs are inserted
// where they increase busy time least, and a local improvement pass
// around the affected machines re-places jobs while the transition
// budget allows. maxTransition ≤ 0 means unbudgeted; otherwise at most
// that many common jobs are reassigned. canonJobs and perm must be
// Canonical(in).
//
// The returned schedule is always a valid total schedule of in — the
// repair never trades feasibility for transition cost — so a Result
// built from it certifies against the submitted instance.
func Repair(ctx context.Context, base Entry, in job.Instance, canonJobs []CanonJob, perm []int, maxTransition int) (Repaired, error) {
	_, sp := trace.Start(ctx, "reopt.repair")
	defer sp.End()
	if base.G != in.G {
		return Repaired{}, fmt.Errorf("reopt: base capacity g = %d, submitted g = %d", base.G, in.G)
	}
	if len(base.Machine) != len(base.Jobs) {
		return Repaired{}, fmt.Errorf("reopt: base entry covers %d of %d jobs", len(base.Machine), len(base.Jobs))
	}

	// Merge the two sorted canonical sequences: equal tuples pair up
	// (common jobs), base-only tuples are evicted, submitted-only tuples
	// are the insertions.
	sch := core.NewSchedule(in)
	incumbent := make([]int, len(in.Jobs)) // incumbent machine per instance position, or -1
	for i := range incumbent {
		incumbent[i] = -1
	}
	// The submission's canonical origin, for translating base-only
	// (evicted) canonical tuples back into the submission's time frame.
	var origin int64
	for i, j := range in.Jobs {
		if i == 0 || j.Start() < origin {
			origin = j.Start()
		}
	}

	var added []int                  // canonical positions of inserted jobs
	var deltaIvs []interval.Interval // the delta's footprint in submission time
	removed := 0
	nextMachine := 0
	bi, ni := 0, 0
	for bi < len(base.Jobs) && ni < len(canonJobs) {
		switch {
		case base.Jobs[bi] == canonJobs[ni]:
			m := base.Machine[bi]
			if m < 0 {
				return Repaired{}, fmt.Errorf("reopt: base entry has unscheduled job at canonical position %d", bi)
			}
			pos := perm[ni]
			sch.Assign(pos, m)
			incumbent[pos] = m
			if m >= nextMachine {
				nextMachine = m + 1
			}
			bi++
			ni++
		case base.Jobs[bi].less(canonJobs[ni]):
			removed++
			deltaIvs = append(deltaIvs, interval.New(base.Jobs[bi].Start+origin, base.Jobs[bi].End+origin))
			bi++
		default:
			added = append(added, ni)
			deltaIvs = append(deltaIvs, in.Jobs[perm[ni]].Interval)
			ni++
		}
	}
	for ; bi < len(base.Jobs); bi++ {
		removed++
		deltaIvs = append(deltaIvs, interval.New(base.Jobs[bi].Start+origin, base.Jobs[bi].End+origin))
	}
	for ; ni < len(canonJobs); ni++ {
		added = append(added, ni)
		deltaIvs = append(deltaIvs, in.Jobs[perm[ni]].Interval)
	}
	deltaIvs = interval.Union(deltaIvs)
	inDelta := func(iv interval.Interval) bool {
		for _, d := range deltaIvs {
			if iv.Overlaps(d) {
				return true
			}
		}
		return false
	}

	// Machine state for capacity checks and marginal-cost scans, indexed
	// by (still-compact-enough) incumbent labels.
	machineIvs := make([][]interval.Interval, nextMachine)
	machineDem := make([][]int64, nextMachine)
	machinePos := make([][]int, nextMachine)
	for pos, m := range sch.Machine {
		if m == core.Unscheduled {
			continue
		}
		machineIvs[m] = append(machineIvs[m], in.Jobs[pos].Interval)
		machineDem[m] = append(machineDem[m], in.Jobs[pos].Demand)
		machinePos[m] = append(machinePos[m], pos)
	}
	// marginal is the busy time adding job pos's interval to machine m
	// would create: the part of the interval not already covered by m's
	// jobs (excluding machine position skipPos, or -1 for none). With
	// skipPos = the job's own slot it doubles as the span released by
	// evicting the job. Everything is clipped to the one interval, so a
	// probe costs O(overlap), not a sort of the whole machine.
	marginal := func(m int, iv interval.Interval, skipPos int) int64 {
		var clipped []interval.Interval
		for k, o := range machineIvs[m] {
			if machinePos[m][k] == skipPos {
				continue
			}
			if ov := o.Intersect(iv); !ov.Empty() {
				clipped = append(clipped, ov)
			}
		}
		return iv.Len() - interval.Span(clipped)
	}
	// fits checks capacity for adding job pos to machine m. A violation
	// must involve the new job, so only m's jobs overlapping it matter —
	// clipped to its interval, concurrency there is unchanged.
	fits := func(m, pos int) bool {
		iv := in.Jobs[pos].Interval
		ivs := []interval.Interval{iv}
		dems := []int64{in.Jobs[pos].Demand}
		for k, o := range machineIvs[m] {
			if ov := o.Intersect(iv); !ov.Empty() {
				ivs = append(ivs, ov)
				dems = append(dems, machineDem[m][k])
			}
		}
		return interval.WeightedMaxConcurrency(ivs, dems) <= int64(in.G)
	}
	addTo := func(m, pos int) {
		machineIvs[m] = append(machineIvs[m], in.Jobs[pos].Interval)
		machineDem[m] = append(machineDem[m], in.Jobs[pos].Demand)
		machinePos[m] = append(machinePos[m], pos)
	}
	removeFrom := func(m, pos int) {
		for k, p := range machinePos[m] {
			if p == pos {
				machineIvs[m] = append(machineIvs[m][:k], machineIvs[m][k+1:]...)
				machineDem[m] = append(machineDem[m][:k], machineDem[m][k+1:]...)
				machinePos[m] = append(machinePos[m][:k], machinePos[m][k+1:]...)
				return
			}
		}
	}
	openMachine := func() int {
		machineIvs = append(machineIvs, nil)
		machineDem = append(machineDem, nil)
		machinePos = append(machinePos, nil)
		nextMachine++
		return nextMachine - 1
	}

	// Best-fit insertion: each added job lands where it adds the least
	// busy time (ties to the lowest machine), or on a fresh machine when
	// that is strictly cheaper or nothing fits.
	affected := map[int]bool{}
	for _, ni := range added {
		pos := perm[ni]
		iv := in.Jobs[pos].Interval
		bestM, bestDelta := -1, iv.Len()
		for m := 0; m < nextMachine; m++ {
			delta := marginal(m, iv, -1)
			if delta > bestDelta || (delta == bestDelta && bestM != -1) {
				continue // not cheaper than the best so far (or a fresh machine)
			}
			if !fits(m, pos) {
				continue
			}
			bestM, bestDelta = m, delta
			if bestDelta == 0 {
				break // fully covered: no cheaper placement exists
			}
		}
		if bestM == -1 {
			bestM = openMachine()
		}
		addTo(bestM, pos)
		sch.Assign(pos, bestM)
		affected[bestM] = true
	}

	// Local improvement around the delta: only jobs on machines the
	// delta touched AND overlapping the delta's own time footprint are
	// candidates to move — a job far from any inserted or evicted
	// interval cannot profit from the delta, so the pass is bounded by
	// the delta's size, not the machine's population. Moving a common
	// job off its incumbent consumes transition budget; added jobs move
	// free.
	budget := maxTransition
	if budget <= 0 {
		budget = len(in.Jobs) + 1
	}
	moved := map[int]bool{} // instance positions charged as transitions
	// Deterministic iteration: affected is keyed by compact machine ids.
	for m := 0; m < nextMachine; m++ {
		if !affected[m] {
			continue
		}
		positions := append([]int(nil), machinePos[m]...)
		for _, pos := range positions {
			if !inDelta(in.Jobs[pos].Interval) {
				continue
			}
			from := sch.Machine[pos]
			if from != m {
				continue // already relocated this pass
			}
			chargeable := incumbent[pos] == from && incumbent[pos] != -1
			if chargeable && len(moved) >= budget {
				continue
			}
			iv := in.Jobs[pos].Interval
			release := marginal(from, iv, pos)
			if release <= 0 {
				// The job's interval is covered by its machine-mates:
				// evicting it frees nothing, so no move can profit.
				continue
			}
			bestTo, bestDelta := -1, int64(0)
			for to := 0; to < nextMachine; to++ {
				if to == from {
					continue
				}
				delta := marginal(to, iv, -1) - release
				if delta >= 0 || (bestTo != -1 && delta >= bestDelta) {
					continue
				}
				if !fits(to, pos) {
					continue
				}
				bestTo, bestDelta = to, delta
			}
			if bestTo == -1 {
				continue
			}
			removeFrom(from, pos)
			addTo(bestTo, pos)
			sch.Assign(pos, bestTo)
			if incumbent[pos] != -1 && incumbent[pos] != bestTo {
				moved[pos] = true
			} else {
				delete(moved, pos)
			}
		}
	}

	transition := 0
	for pos, m := range sch.Machine {
		if incumbent[pos] != -1 && incumbent[pos] != m {
			transition++
		}
	}
	return Repaired{
		Schedule:   sch.CompactMachines(),
		Transition: transition,
		Added:      len(added),
		Removed:    removed,
	}, nil
}

// CanonicalAssignment converts a schedule on the submitted instance into
// the canonical-position machine vector an Entry stores: compact labels,
// canonical order. It requires a total schedule.
func CanonicalAssignment(sch core.Schedule, perm []int) ([]int, error) {
	compact := sch.CompactMachines()
	out := make([]int, len(perm))
	for k, pos := range perm {
		if pos < 0 || pos >= len(compact.Machine) {
			return nil, fmt.Errorf("reopt: permutation position %d out of range", pos)
		}
		m := compact.Machine[pos]
		if m == core.Unscheduled {
			return nil, fmt.Errorf("reopt: cannot cache a partial schedule (position %d unscheduled)", pos)
		}
		out[k] = m
	}
	return out, nil
}

// RemapAssignment serves a cached entry for a submission with the same
// canonical form: the job at the submission's canonical position k takes
// the cached machine of canonical position k. Equal canonical tuples are
// interchangeable, so the result is a valid schedule of in with the
// entry's cost.
func RemapAssignment(e Entry, in job.Instance, perm []int) (core.Schedule, error) {
	if len(e.Machine) != len(perm) || len(perm) != len(in.Jobs) {
		return core.Schedule{}, fmt.Errorf("reopt: entry covers %d jobs, submission has %d", len(e.Machine), len(in.Jobs))
	}
	sch := core.NewSchedule(in)
	for k, pos := range perm {
		if e.Machine[k] < 0 {
			return core.Schedule{}, fmt.Errorf("reopt: cached entry has unscheduled canonical position %d", k)
		}
		sch.Assign(pos, e.Machine[k])
	}
	return sch, nil
}
