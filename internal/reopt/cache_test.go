package reopt_test

import (
	"testing"

	"repro/internal/job"
	"repro/internal/reopt"
	"repro/internal/workload"
)

func entryFor(in job.Instance) reopt.Entry {
	jobs, _ := reopt.Canonical(in)
	machine := make([]int, len(jobs))
	return reopt.Entry{
		Fingerprint: reopt.Fingerprint(in),
		G:           in.G,
		Jobs:        jobs,
		Machine:     machine,
		Algorithm:   "test",
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := reopt.NewCache(2)
	cfg := workload.Config{N: 8, G: 2, MaxTime: 100, MaxLen: 10}
	a := workload.General(1, cfg)
	b := workload.General(2, cfg)
	d := workload.General(3, cfg)

	idA := c.Store(entryFor(a))
	c.Store(entryFor(b))
	// Touch a so b becomes the LRU victim.
	if _, ok := c.Lookup(reopt.Fingerprint(a)); !ok {
		t.Fatal("a not found after store")
	}
	c.Store(entryFor(d))
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	if _, ok := c.Lookup(reopt.Fingerprint(b)); ok {
		t.Error("b should have been evicted as LRU")
	}
	if _, ok := c.Lookup(reopt.Fingerprint(a)); !ok {
		t.Error("a (recently used) should survive")
	}
	if _, ok := c.LookupID(idA); !ok {
		t.Error("LookupID(a) should resolve")
	}
}

func TestCacheStoreReplacesSameFingerprint(t *testing.T) {
	c := reopt.NewCache(4)
	in := workload.General(5, workload.Config{N: 6, G: 2, MaxTime: 50, MaxLen: 8})
	e := entryFor(in)
	e.Cost = 10
	oldID := c.Store(e)
	e.Cost = 7
	newID := c.Store(e)
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1 after same-fp store", c.Len())
	}
	if oldID == newID {
		t.Fatal("replacement should get a fresh ID")
	}
	if _, ok := c.LookupID(oldID); ok {
		t.Error("replaced entry's ID should no longer resolve")
	}
	got, ok := c.Lookup(e.Fingerprint)
	if !ok || got.Cost != 7 {
		t.Fatalf("Lookup = (%+v, %v), want fresher cost 7", got, ok)
	}
}

func TestCacheNearest(t *testing.T) {
	c := reopt.NewCache(8)
	base := workload.General(9, workload.Config{N: 20, G: 3, MaxTime: 200, MaxLen: 20})
	c.Store(entryFor(base))

	// One job dropped: symmetric difference 1.
	delta := base.Clone()
	delta.Jobs = delta.Jobs[1:]
	jobs, _ := reopt.Canonical(delta)

	e, d, ok := c.Nearest(base.G, jobs, 4)
	if !ok || d != 1 {
		t.Fatalf("Nearest = (_, %d, %v), want delta 1", d, ok)
	}
	if e.Fingerprint != reopt.Fingerprint(base) {
		t.Error("Nearest returned the wrong entry")
	}

	// A different capacity never matches.
	if _, _, ok := c.Nearest(base.G+1, jobs, 4); ok {
		t.Error("Nearest matched across capacities")
	}
	// A tight maxDelta excludes the entry.
	if _, _, ok := c.Nearest(base.G, jobs, 0); ok {
		t.Error("Nearest matched beyond maxDelta")
	}
}

func TestCacheNearestPrefersSmallestDelta(t *testing.T) {
	c := reopt.NewCache(8)
	base := workload.General(13, workload.Config{N: 16, G: 2, MaxTime: 150, MaxLen: 15})
	far := base.Clone()
	far.Jobs = far.Jobs[4:] // delta 4 from base
	c.Store(entryFor(far))
	c.Store(entryFor(base)) // delta 1 from query

	query := base.Clone()
	query.Jobs = query.Jobs[1:]
	jobs, _ := reopt.Canonical(query)
	e, d, ok := c.Nearest(base.G, jobs, 8)
	if !ok || d != 1 {
		t.Fatalf("Nearest = (_, %d, %v), want the delta-1 entry", d, ok)
	}
	if e.Fingerprint != reopt.Fingerprint(base) {
		t.Error("Nearest picked the farther entry")
	}
}
