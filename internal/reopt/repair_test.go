package reopt_test

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/job"
	"repro/internal/reopt"
	"repro/internal/workload"
)

// solvedEntry runs first-fit on the instance and caches its assignment.
func solvedEntry(t *testing.T, in job.Instance) reopt.Entry {
	t.Helper()
	sch := core.FirstFit(in)
	if err := sch.Validate(); err != nil {
		t.Fatalf("first-fit produced invalid base schedule: %v", err)
	}
	jobs, perm := reopt.Canonical(in)
	machine, err := reopt.CanonicalAssignment(sch, perm)
	if err != nil {
		t.Fatalf("CanonicalAssignment: %v", err)
	}
	return reopt.Entry{
		Fingerprint: reopt.Fingerprint(in),
		G:           in.G,
		Jobs:        jobs,
		Machine:     machine,
		Algorithm:   "first-fit",
		Cost:        sch.Cost(),
	}
}

func TestRepairValidAfterDelta(t *testing.T) {
	base := workload.General(21, workload.Config{N: 40, G: 3, MaxTime: 400, MaxLen: 40})
	e := solvedEntry(t, base)

	// Delta: drop two jobs, add two new ones.
	mod := base.Clone()
	mod.Jobs = mod.Jobs[2:]
	mod.Jobs = append(mod.Jobs,
		job.New(900, 10, 60),
		job.New(901, 350, 390),
	)
	jobs, perm := reopt.Canonical(mod)
	rep, err := reopt.Repair(context.Background(), e, mod, jobs, perm, 0)
	if err != nil {
		t.Fatalf("Repair: %v", err)
	}
	if err := rep.Schedule.Validate(); err != nil {
		t.Fatalf("repaired schedule invalid: %v", err)
	}
	if rep.Added != 2 || rep.Removed != 2 {
		t.Errorf("Added/Removed = %d/%d, want 2/2", rep.Added, rep.Removed)
	}
	if got, lb := rep.Schedule.Cost(), mod.LowerBound(); got < lb {
		t.Errorf("repaired cost %d below lower bound %d", got, lb)
	}
}

func TestRepairIdenticalInstanceZeroTransition(t *testing.T) {
	base := workload.Proper(33, workload.Config{N: 30, G: 2, MaxTime: 300, MaxLen: 30})
	e := solvedEntry(t, base)
	jobs, perm := reopt.Canonical(base)
	rep, err := reopt.Repair(context.Background(), e, base, jobs, perm, 0)
	if err != nil {
		t.Fatalf("Repair: %v", err)
	}
	if rep.Transition != 0 || rep.Added != 0 || rep.Removed != 0 {
		t.Errorf("identical instance: transition/added/removed = %d/%d/%d, want 0/0/0",
			rep.Transition, rep.Added, rep.Removed)
	}
	if rep.Schedule.Cost() != e.Cost {
		t.Errorf("cost %d, want incumbent %d", rep.Schedule.Cost(), e.Cost)
	}
}

func TestRepairTransitionBudget(t *testing.T) {
	base := workload.General(44, workload.Config{N: 40, G: 3, MaxTime: 300, MaxLen: 40})
	e := solvedEntry(t, base)

	mod := base.Clone()
	mod.Jobs = append(mod.Jobs, job.New(950, 0, 300)) // horizon-spanning job shakes things up
	jobs, perm := reopt.Canonical(mod)

	for _, budget := range []int{1, 2, len(mod.Jobs)} {
		rep, err := reopt.Repair(context.Background(), e, mod, jobs, perm, budget)
		if err != nil {
			t.Fatalf("Repair(budget=%d): %v", budget, err)
		}
		if err := rep.Schedule.Validate(); err != nil {
			t.Fatalf("budget %d: invalid schedule: %v", budget, err)
		}
		if rep.Transition > budget {
			t.Errorf("budget %d: transition %d exceeds budget", budget, rep.Transition)
		}
	}
}

func TestRepairRejectsCapacityMismatch(t *testing.T) {
	base := workload.General(55, workload.Config{N: 10, G: 2, MaxTime: 100, MaxLen: 10})
	e := solvedEntry(t, base)
	mod := base.Clone()
	mod.G = 3
	jobs, perm := reopt.Canonical(mod)
	if _, err := reopt.Repair(context.Background(), e, mod, jobs, perm, 0); err == nil {
		t.Fatal("Repair should reject a capacity mismatch")
	}
}

func TestRemapAssignmentRoundTrip(t *testing.T) {
	in := workload.Clique(66, workload.Config{N: 20, G: 4, MaxTime: 200, MaxLen: 25})
	e := solvedEntry(t, in)

	// Remap onto a permuted + translated resubmission of the same form.
	// Translation changes absolute coordinates but not the canonical form,
	// so the entry no longer matches; only permutation keeps the form.
	resub := in.Clone()
	for i, j := 0, len(resub.Jobs)-1; i < j; i, j = i+1, j-1 {
		resub.Jobs[i], resub.Jobs[j] = resub.Jobs[j], resub.Jobs[i]
	}
	if reopt.Fingerprint(resub) != e.Fingerprint {
		t.Fatal("permuted resubmission should share the fingerprint")
	}
	_, perm := reopt.Canonical(resub)
	sch, err := reopt.RemapAssignment(e, resub, perm)
	if err != nil {
		t.Fatalf("RemapAssignment: %v", err)
	}
	if err := sch.Validate(); err != nil {
		t.Fatalf("remapped schedule invalid: %v", err)
	}
	if sch.Cost() != e.Cost {
		t.Errorf("remapped cost %d, want cached %d", sch.Cost(), e.Cost)
	}
}
