package interval

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLen(t *testing.T) {
	cases := []struct {
		iv   Interval
		want int64
	}{
		{New(0, 10), 10},
		{New(5, 5), 0},
		{New(-3, 4), 7},
		{Interval{Start: 4, End: 2}, 0}, // malformed treated as empty
	}
	for _, c := range cases {
		if got := c.iv.Len(); got != c.want {
			t.Errorf("Len(%v) = %d, want %d", c.iv, got, c.want)
		}
	}
}

func TestNewPanicsOnReversed(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(2, 1) did not panic")
		}
	}()
	New(2, 1)
}

func TestOverlaps(t *testing.T) {
	cases := []struct {
		a, b Interval
		want bool
	}{
		{New(0, 10), New(5, 15), true},
		{New(0, 10), New(10, 20), false}, // touching endpoints do not overlap
		{New(0, 10), New(11, 20), false},
		{New(0, 10), New(2, 3), true},
		{New(5, 5), New(0, 10), false}, // empty never overlaps
		{New(0, 10), New(0, 10), true},
	}
	for _, c := range cases {
		if got := c.a.Overlaps(c.b); got != c.want {
			t.Errorf("Overlaps(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
		if got := c.b.Overlaps(c.a); got != c.want {
			t.Errorf("Overlaps(%v, %v) = %v, want %v (symmetry)", c.b, c.a, got, c.want)
		}
	}
}

func TestIntersect(t *testing.T) {
	got := New(0, 10).Intersect(New(5, 15))
	if got != New(5, 10) {
		t.Errorf("Intersect = %v, want [5,10)", got)
	}
	if !New(0, 5).Intersect(New(7, 9)).Empty() {
		t.Error("disjoint intersection should be empty")
	}
	if New(0, 10).OverlapLen(New(4, 6)) != 2 {
		t.Error("OverlapLen of contained interval wrong")
	}
}

func TestContainment(t *testing.T) {
	outer := New(0, 10)
	if !outer.Contains(New(0, 10)) {
		t.Error("interval should contain itself")
	}
	if outer.ProperlyContains(New(0, 10)) {
		t.Error("interval should not properly contain itself")
	}
	if !outer.ProperlyContains(New(2, 8)) {
		t.Error("outer should properly contain [2,8)")
	}
	if !outer.ProperlyContains(New(0, 9)) {
		t.Error("same-start shorter interval is properly contained")
	}
	if outer.Contains(New(5, 11)) {
		t.Error("outer should not contain [5,11)")
	}
}

func TestContainsTime(t *testing.T) {
	iv := New(3, 7)
	for _, tc := range []struct {
		t    int64
		want bool
	}{{2, false}, {3, true}, {6, true}, {7, false}} {
		if got := iv.ContainsTime(tc.t); got != tc.want {
			t.Errorf("ContainsTime(%d) = %v, want %v", tc.t, got, tc.want)
		}
	}
}

func TestUnionMergesTouching(t *testing.T) {
	u := Union([]Interval{New(0, 2), New(2, 4), New(6, 8)})
	if len(u) != 2 || u[0] != New(0, 4) || u[1] != New(6, 8) {
		t.Errorf("Union = %v, want [[0,4) [6,8)]", u)
	}
}

func TestUnionEmptyInputs(t *testing.T) {
	if Union(nil) != nil {
		t.Error("Union(nil) should be nil")
	}
	if Union([]Interval{New(3, 3)}) != nil {
		t.Error("Union of empty intervals should be nil")
	}
}

func TestSpan(t *testing.T) {
	cases := []struct {
		ivs  []Interval
		want int64
	}{
		{nil, 0},
		{[]Interval{New(0, 10)}, 10},
		{[]Interval{New(0, 10), New(5, 15)}, 15},
		{[]Interval{New(0, 5), New(10, 15)}, 10},
		{[]Interval{New(0, 10), New(2, 4), New(3, 8)}, 10},
	}
	for _, c := range cases {
		if got := Span(c.ivs); got != c.want {
			t.Errorf("Span(%v) = %d, want %d", c.ivs, got, c.want)
		}
	}
}

func TestHull(t *testing.T) {
	h := Hull([]Interval{New(3, 5), New(-1, 2), New(4, 9)})
	if h != New(-1, 9) {
		t.Errorf("Hull = %v, want [-1,9)", h)
	}
	if !Hull(nil).Empty() {
		t.Error("Hull(nil) should be empty")
	}
}

func TestCommonTime(t *testing.T) {
	if ct, ok := CommonTime([]Interval{New(0, 10), New(5, 15), New(7, 9)}); !ok || ct < 7 || ct >= 9 {
		t.Errorf("CommonTime = %d,%v, want a time in [7,9)", ct, ok)
	}
	if _, ok := CommonTime([]Interval{New(0, 5), New(5, 10)}); ok {
		t.Error("touching intervals share no common processing time")
	}
	if _, ok := CommonTime(nil); ok {
		t.Error("no common time for empty set")
	}
}

func TestMaxConcurrency(t *testing.T) {
	cases := []struct {
		ivs  []Interval
		want int
	}{
		{nil, 0},
		{[]Interval{New(0, 10)}, 1},
		{[]Interval{New(0, 10), New(10, 20)}, 1}, // touching
		{[]Interval{New(0, 10), New(5, 15), New(8, 9)}, 3},
		{[]Interval{New(0, 4), New(4, 8), New(2, 6)}, 2},
	}
	for _, c := range cases {
		if got := MaxConcurrency(c.ivs); got != c.want {
			t.Errorf("MaxConcurrency(%v) = %d, want %d", c.ivs, got, c.want)
		}
	}
}

func TestWeightedMaxConcurrency(t *testing.T) {
	ivs := []Interval{New(0, 10), New(5, 15), New(8, 9)}
	w := []int64{3, 2, 5}
	if got := WeightedMaxConcurrency(ivs, w); got != 10 {
		t.Errorf("WeightedMaxConcurrency = %d, want 10", got)
	}
	if got := WeightedMaxConcurrency(nil, nil); got != 0 {
		t.Errorf("WeightedMaxConcurrency(nil) = %d, want 0", got)
	}
}

func TestWeightedMaxConcurrencyPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched lengths did not panic")
		}
	}()
	WeightedMaxConcurrency([]Interval{New(0, 1)}, nil)
}

// randomIntervals builds a reproducible random interval set for property
// tests.
func randomIntervals(r *rand.Rand, n int) []Interval {
	ivs := make([]Interval, n)
	for i := range ivs {
		s := r.Int63n(1000) - 500
		l := r.Int63n(200)
		ivs[i] = New(s, s+l)
	}
	return ivs
}

// Property: span(I) <= len(I), with equality iff the union is disjoint
// (Observation after Definition 2.2).
func TestPropertySpanAtMostLen(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		ivs := randomIntervals(r, int(nRaw%32))
		return Span(ivs) <= TotalLen(ivs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: span is monotone under adding intervals, and subadditive.
func TestPropertySpanMonotoneSubadditive(t *testing.T) {
	f := func(seed int64, nRaw, mRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomIntervals(r, int(nRaw%16))
		b := randomIntervals(r, int(mRaw%16))
		all := append(append([]Interval{}, a...), b...)
		sAll, sA, sB := Span(all), Span(a), Span(b)
		return sAll >= sA && sAll >= sB && sAll <= sA+sB
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Union produces sorted, pairwise-disjoint, non-touching
// intervals whose total length equals Span, and every input point is
// covered.
func TestPropertyUnionCanonical(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		ivs := randomIntervals(r, int(nRaw%24))
		u := Union(ivs)
		var total int64
		for i, x := range u {
			if x.Empty() {
				return false
			}
			total += x.Len()
			if i > 0 && u[i-1].End >= x.Start {
				return false // must be strictly separated
			}
		}
		if total != Span(ivs) {
			return false
		}
		// Every original interval must be covered by the union.
		for _, iv := range ivs {
			if iv.Empty() {
				continue
			}
			covered := false
			for _, x := range u {
				if x.Contains(iv) {
					covered = true
					break
				}
			}
			if !covered {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: MaxConcurrency is between 1 and n for non-empty sets, and
// equals n exactly when a common time exists.
func TestPropertyConcurrencyVsCommonTime(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := int(nRaw%16) + 1
		ivs := make([]Interval, n)
		for i := range ivs {
			s := r.Int63n(100)
			ivs[i] = New(s, s+1+r.Int63n(50))
		}
		mc := MaxConcurrency(ivs)
		if mc < 1 || mc > n {
			return false
		}
		_, hasCommon := CommonTime(ivs)
		return (mc == n) == hasCommon
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: for two intervals, OverlapLen(a,b) = len(a)+len(b)-span({a,b}).
func TestPropertyInclusionExclusion(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		pair := randomIntervals(r, 2)
		a, b := pair[0], pair[1]
		return a.OverlapLen(b) == a.Len()+b.Len()-Span([]Interval{a, b})
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
