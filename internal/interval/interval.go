// Package interval implements arithmetic on half-open integer time
// intervals [Start, End) and on finite sets of such intervals.
//
// It is the foundational substrate for the busy-time scheduling library:
// jobs are intervals, a machine's busy time is the measure (span) of the
// union of its jobs' intervals, and the paper's cost accounting (length,
// span, overlap) is exactly the algebra provided here.
//
// Times are int64 ticks. Working on an integer lattice loses no generality:
// Proposition 2.2 of the paper rescales any rational input to integers, and
// all constructions in this repository (including the ε′-perturbed
// adversarial family of Figure 3) pick a tick scale fine enough to be exact.
package interval

import (
	"fmt"
	"sort"
)

// Interval is the half-open interval [Start, End). An interval with
// End <= Start is empty. Half-openness matches the paper's convention that
// a job is not being processed at its completion time: [1,2) and [2,3) do
// not overlap and may share a machine thread.
type Interval struct {
	Start int64
	End   int64
}

// New returns the interval [start, end). It panics if end < start, which is
// always a programming error in this codebase (generators and parsers
// validate their inputs before constructing intervals).
func New(start, end int64) Interval {
	if end < start {
		panic(fmt.Sprintf("interval: New(%d, %d): end < start", start, end))
	}
	return Interval{Start: start, End: end}
}

// Len returns the length (measure) of the interval, 0 if empty.
func (iv Interval) Len() int64 {
	if iv.End <= iv.Start {
		return 0
	}
	return iv.End - iv.Start
}

// Empty reports whether the interval has zero measure.
func (iv Interval) Empty() bool { return iv.End <= iv.Start }

// Overlaps reports whether the intersection of iv and other has positive
// measure. Touching endpoints ([1,2) and [2,3)) do not overlap, matching
// the paper's Definition 2.2 ("intersection contains more than one point").
func (iv Interval) Overlaps(other Interval) bool {
	return max64(iv.Start, other.Start) < min64(iv.End, other.End)
}

// Intersect returns the intersection of iv and other. The result is empty
// (Len() == 0) when they do not overlap.
func (iv Interval) Intersect(other Interval) Interval {
	s := max64(iv.Start, other.Start)
	e := min64(iv.End, other.End)
	if e < s {
		e = s
	}
	return Interval{Start: s, End: e}
}

// OverlapLen returns the measure of the intersection of iv and other.
func (iv Interval) OverlapLen(other Interval) int64 {
	return iv.Intersect(other).Len()
}

// Contains reports whether other lies entirely within iv (not necessarily
// properly).
func (iv Interval) Contains(other Interval) bool {
	return iv.Start <= other.Start && other.End <= iv.End
}

// ProperlyContains reports whether iv contains other and they differ on at
// least one endpoint. This is the containment relation that defines proper
// instances: a set of jobs is proper iff no job properly contains another.
func (iv Interval) ProperlyContains(other Interval) bool {
	return iv.Contains(other) && (iv.Start < other.Start || other.End < iv.End)
}

// ContainsTime reports whether the time t lies in [Start, End).
func (iv Interval) ContainsTime(t int64) bool {
	return iv.Start <= t && t < iv.End
}

// Hull returns the smallest interval containing both iv and other.
func (iv Interval) Hull(other Interval) Interval {
	if iv.Empty() {
		return other
	}
	if other.Empty() {
		return iv
	}
	return Interval{Start: min64(iv.Start, other.Start), End: max64(iv.End, other.End)}
}

// String renders the interval as "[s,e)".
func (iv Interval) String() string {
	return fmt.Sprintf("[%d,%d)", iv.Start, iv.End)
}

// TotalLen returns len(I) = Σ len(I_k), the paper's Definition 2.1 extended
// to a set: overlapping portions are counted once per interval.
func TotalLen(ivs []Interval) int64 {
	var total int64
	for _, iv := range ivs {
		total += iv.Len()
	}
	return total
}

// Span returns span(I): the measure of the union of the intervals
// (Definition 2.2). It runs in O(n log n).
func Span(ivs []Interval) int64 {
	var total int64
	for _, u := range Union(ivs) {
		total += u.Len()
	}
	return total
}

// Union returns SPAN(I) decomposed into maximal disjoint non-empty
// intervals, sorted by start time. Two intervals that merely touch
// ([1,2) and [2,3)) are merged, since their union is one contiguous busy
// period.
func Union(ivs []Interval) []Interval {
	nonEmpty := make([]Interval, 0, len(ivs))
	for _, iv := range ivs {
		if !iv.Empty() {
			nonEmpty = append(nonEmpty, iv)
		}
	}
	if len(nonEmpty) == 0 {
		return nil
	}
	sort.Slice(nonEmpty, func(i, j int) bool {
		if nonEmpty[i].Start != nonEmpty[j].Start {
			return nonEmpty[i].Start < nonEmpty[j].Start
		}
		return nonEmpty[i].End < nonEmpty[j].End
	})
	out := make([]Interval, 0, len(nonEmpty))
	cur := nonEmpty[0]
	for _, iv := range nonEmpty[1:] {
		if iv.Start <= cur.End { // touching or overlapping: extend
			if iv.End > cur.End {
				cur.End = iv.End
			}
			continue
		}
		out = append(out, cur)
		cur = iv
	}
	return append(out, cur)
}

// Hull returns the smallest interval containing every interval in ivs, or
// an empty interval when ivs has no non-empty member.
func Hull(ivs []Interval) Interval {
	var h Interval
	first := true
	for _, iv := range ivs {
		if iv.Empty() {
			continue
		}
		if first {
			h, first = iv, false
			continue
		}
		h = h.Hull(iv)
	}
	return h
}

// CommonTime returns a time contained in every interval of ivs and true,
// or 0 and false when no such time exists. By Helly's theorem on the line,
// a common time exists iff max Start < min End; that time witnesses that
// the intervals form a clique set.
func CommonTime(ivs []Interval) (int64, bool) {
	if len(ivs) == 0 {
		return 0, false
	}
	maxStart := ivs[0].Start
	minEnd := ivs[0].End
	for _, iv := range ivs[1:] {
		maxStart = max64(maxStart, iv.Start)
		minEnd = min64(minEnd, iv.End)
	}
	if maxStart < minEnd {
		return maxStart, true
	}
	return 0, false
}

// MaxConcurrency returns the maximum number of intervals of ivs that are
// simultaneously active at any time. It is the quantity a capacity-g
// machine bounds by g. Runs in O(n log n) by an event sweep.
func MaxConcurrency(ivs []Interval) int {
	type event struct {
		t     int64
		delta int
	}
	events := make([]event, 0, 2*len(ivs))
	for _, iv := range ivs {
		if iv.Empty() {
			continue
		}
		events = append(events, event{iv.Start, +1}, event{iv.End, -1})
	}
	sort.Slice(events, func(i, j int) bool {
		if events[i].t != events[j].t {
			return events[i].t < events[j].t
		}
		// Ends sort before starts at equal times: [1,2) and [2,3) have
		// concurrency 1.
		return events[i].delta < events[j].delta
	})
	cur, best := 0, 0
	for _, ev := range events {
		cur += ev.delta
		if cur > best {
			best = cur
		}
	}
	return best
}

// WeightedMaxConcurrency is MaxConcurrency with a per-interval weight
// (capacity demand): it returns the maximum, over all times, of the sum of
// weights of active intervals. weights[i] is the demand of ivs[i].
func WeightedMaxConcurrency(ivs []Interval, weights []int64) int64 {
	if len(weights) != len(ivs) {
		panic("interval: WeightedMaxConcurrency: len(weights) != len(ivs)")
	}
	type event struct {
		t     int64
		delta int64
	}
	events := make([]event, 0, 2*len(ivs))
	for i, iv := range ivs {
		if iv.Empty() {
			continue
		}
		events = append(events, event{iv.Start, weights[i]}, event{iv.End, -weights[i]})
	}
	sort.Slice(events, func(i, j int) bool {
		if events[i].t != events[j].t {
			return events[i].t < events[j].t
		}
		return events[i].delta < events[j].delta
	})
	var cur, best int64
	for _, ev := range events {
		cur += ev.delta
		if cur > best {
			best = cur
		}
	}
	return best
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
