package dhop

import (
	"testing"

	"repro/internal/core"
	"repro/internal/job"
	"repro/internal/workload"
)

func TestSegmentCost(t *testing.T) {
	cases := []struct {
		length, d, want int64
	}{
		{0, 3, 0},
		{2, 3, 0}, // shorter than range: endpoints suffice
		{3, 3, 1}, // one regenerator after 3 hops
		{7, 3, 2}, // at hops 3 and 6
		{9, 3, 3}, // exact multiple: hops 3, 6, 9
		{10, 1, 10},
		{5, 100, 0},
	}
	for _, c := range cases {
		if got := SegmentCost(c.length, c.d); got != c.want {
			t.Errorf("SegmentCost(%d, %d) = %d, want %d", c.length, c.d, got, c.want)
		}
	}
}

func TestSegmentCostPanicsOnBadRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("d=0 accepted")
		}
	}()
	SegmentCost(5, 0)
}

func TestCostSumsSegments(t *testing.T) {
	// One machine with two busy segments of lengths 7 and 4, d = 3:
	// floor(7/3) + floor(4/3) = 2 + 1.
	in := job.NewInstance(1, [2]int64{0, 7}, [2]int64{100, 104})
	s := core.NewSchedule(in)
	s.Assign(0, 0)
	s.Assign(1, 0)
	if got := Cost(s, 3); got != 3 {
		t.Errorf("Cost = %d, want 3", got)
	}
}

func TestCostD1EqualsBusyTime(t *testing.T) {
	in := workload.General(3, workload.Config{N: 15, G: 3, MaxTime: 100, MaxLen: 30})
	s, _ := core.MinBusyAuto(in)
	if Cost(s, 1) != s.Cost() {
		t.Errorf("d=1 cost %d != busy time %d", Cost(s, 1), s.Cost())
	}
}

func TestCostMonotoneInD(t *testing.T) {
	in := workload.Lightpaths(5, workload.Config{N: 20, G: 4, MaxTime: 300, MaxLen: 80})
	s, _ := core.MinBusyAuto(in)
	prev := int64(1 << 62)
	for _, d := range []int64{1, 2, 5, 10, 100} {
		c := Cost(s, d)
		if c > prev {
			t.Fatalf("cost increased with larger range d=%d: %d > %d", d, c, prev)
		}
		prev = c
	}
}

func TestSolveAndLowerBound(t *testing.T) {
	in := workload.Lightpaths(7, workload.Config{N: 25, G: 4, MaxTime: 400, MaxLen: 100})
	s, busy, regen := Solve(in, 10)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if busy != s.Cost() {
		t.Errorf("busy mismatch")
	}
	if regen != Cost(s, 10) {
		t.Errorf("regen mismatch")
	}
	if regen < LowerBound(in, 10) {
		t.Errorf("regenerators %d below lower bound %d", regen, LowerBound(in, 10))
	}
	// d-hop cost is bounded by busy time scaled down by d.
	if regen > busy {
		t.Errorf("regen %d exceeds busy %d at d=10", regen, busy)
	}
}
