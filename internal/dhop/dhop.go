// Package dhop implements the final Section 5 extension: regenerator
// placement where a signal needs regeneration only every d hops rather
// than at every node. Busy time generalizes to regenerator count: a
// machine (color group) busy along a segment of length L on the unit-hop
// line needs ⌊L/d⌋ interior regenerators (one after each d consecutive
// hops, none at the terminal node), so the objective becomes
// Σ over machines Σ over busy segments ⌊len(segment)/d⌋.
//
// With d = 1 this counts every interior hop boundary; the classic
// busy-time objective is recovered as d → the cost measured in units of
// d-spans. The package provides the costing and a dispatcher wrapper so
// any MinBusy schedule can be re-evaluated under d-hop costing.
package dhop

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/interval"
	"repro/internal/job"
)

// SegmentCost returns the regenerators needed along one contiguous busy
// segment of the given length with regeneration range d.
func SegmentCost(length, d int64) int64 {
	if d < 1 {
		panic(fmt.Sprintf("dhop: regeneration range %d < 1", d))
	}
	if length <= 0 {
		return 0
	}
	return length / d
}

// Cost returns the total d-hop regenerator count of a schedule: the sum
// over machines and busy segments of SegmentCost.
func Cost(s core.Schedule, d int64) int64 {
	var total int64
	for _, positions := range s.MachineJobs() {
		ivs := make([]interval.Interval, len(positions))
		for k, p := range positions {
			ivs[k] = s.Instance.Jobs[p].Interval
		}
		for _, seg := range interval.Union(ivs) {
			total += SegmentCost(seg.Len(), d)
		}
	}
	return total
}

// LowerBound returns a parallelism-style lower bound on the d-hop cost of
// any valid schedule: a busy segment places regenerators on a grid of
// spacing d, any job of length L lies under at least ⌊L/d⌋ grid points of
// its machine, and each grid point serves at most g jobs — so cost ≥
// ⌈Σ_j ⌊len_j/d⌋ / g⌉. (The span bound does not carry over: splitting a
// span across machines can avoid regenerators entirely, since
// ⌊a/d⌋+⌊b/d⌋ ≤ ⌊(a+b)/d⌋.)
func LowerBound(in job.Instance, d int64) int64 {
	var demand int64
	for _, j := range in.Jobs {
		demand += SegmentCost(j.Len(), d)
	}
	g := int64(in.G)
	return (demand + g - 1) / g
}

// Solve runs the busy-time dispatcher and reports both classic busy time
// and the d-hop regenerator count — demonstrating that minimizing busy
// time is a good proxy for minimizing regenerators (they differ only by
// per-segment rounding).
func Solve(in job.Instance, d int64) (sched core.Schedule, busy, regenerators int64) {
	s, _ := core.MinBusyAuto(in)
	return s, s.Cost(), Cost(s, d)
}
