// Package setcover implements greedy weighted set cover with the classical
// H_k guarantee, plus the bounded-size subset enumeration the busy-time
// paper's Lemma 3.2 needs.
//
// Lemma 3.2 solves clique instances of MinBusy by covering the job set with
// subsets of size at most g, where subset Q carries weight
// g·span(Q) − len(Q) (the excess over the parallelism bound, scaled by g to
// stay integral). Greedy set cover on those weights is an H_g-approximation
// for the excess, which combines with the length bound into the paper's
// g·H_g/(H_g+g−1) ratio.
package setcover

import (
	"context"
	"fmt"
	"math"
	"sort"
)

// ctxCheckInterval is how many candidate-set inspections run between
// context checks in the greedy loops and the subset enumeration: frequent
// enough that a cancellation lands within a fraction of a millisecond on
// the multi-million-set instances CliqueSetCover produces, rare enough
// that the atomic load is free.
const ctxCheckInterval = 1 << 14

// Set is a candidate covering set: Elements indexes the universe, Weight is
// its cost. Weights must be non-negative.
type Set struct {
	Elements []int
	Weight   int64
}

// Greedy runs the classical greedy algorithm: repeatedly choose the set
// minimizing weight divided by newly covered elements, until the universe
// {0, …, n−1} is covered. It returns the indices of chosen sets in choice
// order. Greedy returns an error if the union of all sets does not cover
// the universe. The cover cost is within H_k of optimal, where k is the
// largest set size.
func Greedy(n int, sets []Set) ([]int, error) {
	return GreedyCtx(context.Background(), n, sets)
}

// GreedyCtx is Greedy with cooperative cancellation: the O(n·|sets|)
// candidate scan checks ctx every ctxCheckInterval inspections and
// returns ctx.Err() once it fires, so a Solver deadline can abandon a
// multi-million-set cover mid-iteration.
func GreedyCtx(ctx context.Context, n int, sets []Set) ([]int, error) {
	covered := make([]bool, n)
	remaining := n
	used := make([]bool, len(sets))
	var chosen []int
	scanned := 0

	for remaining > 0 {
		bestIdx := -1
		var bestW int64
		bestNew := 0
		for i, s := range sets {
			scanned++
			if scanned%ctxCheckInterval == 0 && ctx.Err() != nil {
				return nil, ctx.Err()
			}
			if used[i] {
				continue
			}
			newCount := 0
			for _, e := range s.Elements {
				if e < 0 || e >= n {
					return nil, fmt.Errorf("setcover: element %d outside universe [0,%d)", e, n)
				}
				if !covered[e] {
					newCount++
				}
			}
			if newCount == 0 {
				continue
			}
			// Compare ratios s.Weight/newCount < bestW/bestNew without
			// division: cross-multiply in int64 (weights are bounded by
			// instance spans, counts by n, so no overflow in practice).
			if bestIdx == -1 || s.Weight*int64(bestNew) < bestW*int64(newCount) {
				bestIdx = i
				bestW = s.Weight
				bestNew = newCount
			}
		}
		if bestIdx == -1 {
			return nil, fmt.Errorf("setcover: %d elements uncoverable", remaining)
		}
		used[bestIdx] = true
		chosen = append(chosen, bestIdx)
		for _, e := range sets[bestIdx].Elements {
			if !covered[e] {
				covered[e] = true
				remaining--
			}
		}
	}
	return chosen, nil
}

// GreedyPartition is Greedy restricted to candidates that are entirely
// uncovered, so the chosen sets are pairwise disjoint and form a partition
// of the covered universe. The busy-time clique algorithm needs this
// variant: its modified-weight accounting (Lemma 3.2) charges each element
// exactly once, which only a partition guarantees. The family must be
// subset-rich enough to always offer a fully-uncovered set (singletons
// suffice); otherwise an error is returned.
func GreedyPartition(n int, sets []Set) ([]int, error) {
	return GreedyPartitionCtx(context.Background(), n, sets)
}

// GreedyPartitionCtx is GreedyPartition with cooperative cancellation,
// checking ctx on the same schedule as GreedyCtx.
func GreedyPartitionCtx(ctx context.Context, n int, sets []Set) ([]int, error) {
	covered := make([]bool, n)
	remaining := n
	used := make([]bool, len(sets))
	var chosen []int
	scanned := 0

	for remaining > 0 {
		bestIdx := -1
		var bestW int64
		bestNew := 0
		for i, s := range sets {
			scanned++
			if scanned%ctxCheckInterval == 0 && ctx.Err() != nil {
				return nil, ctx.Err()
			}
			if used[i] || len(s.Elements) == 0 {
				continue
			}
			ok := true
			for _, e := range s.Elements {
				if e < 0 || e >= n {
					return nil, fmt.Errorf("setcover: element %d outside universe [0,%d)", e, n)
				}
				if covered[e] {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			newCount := len(s.Elements)
			if bestIdx == -1 || s.Weight*int64(bestNew) < bestW*int64(newCount) {
				bestIdx = i
				bestW = s.Weight
				bestNew = newCount
			}
		}
		if bestIdx == -1 {
			return nil, fmt.Errorf("setcover: no fully-uncovered set available with %d elements left", remaining)
		}
		used[bestIdx] = true
		chosen = append(chosen, bestIdx)
		for _, e := range sets[bestIdx].Elements {
			covered[e] = true
			remaining--
		}
	}
	return chosen, nil
}

// CoverCost sums the weights of the chosen sets.
func CoverCost(sets []Set, chosen []int) int64 {
	var total int64
	for _, i := range chosen {
		total += sets[i].Weight
	}
	return total
}

// Partition converts a cover into a partition of the universe: each element
// is assigned to the first chosen set that covers it. The result maps each
// chosen-set position to its assigned elements (some may end up empty, and
// are returned empty rather than dropped, preserving positions).
func Partition(n int, sets []Set, chosen []int) [][]int {
	assigned := make([]int, n)
	for i := range assigned {
		assigned[i] = -1
	}
	out := make([][]int, len(chosen))
	for pos, si := range chosen {
		for _, e := range sets[si].Elements {
			if assigned[e] == -1 {
				assigned[e] = pos
				out[pos] = append(out[pos], e)
			}
		}
	}
	for _, a := range assigned {
		if a == -1 {
			panic("setcover: Partition called with a non-cover")
		}
	}
	for _, elems := range out {
		sort.Ints(elems)
	}
	return out
}

// EnumerateSubsets yields every subset of {0,…,n−1} of size between 1 and
// k, invoking visit with a reused scratch slice (callers must copy if they
// retain it). The number of subsets is Σ_{i=1..k} C(n,i); Count reports it
// so callers can refuse oversized enumerations.
func EnumerateSubsets(n, k int, visit func(subset []int)) {
	_ = EnumerateSubsetsCtx(context.Background(), n, k, visit)
}

// EnumerateSubsetsCtx is EnumerateSubsets with cooperative cancellation:
// it checks ctx every ctxCheckInterval visited subsets, abandons the
// enumeration once it fires, and returns ctx.Err().
func EnumerateSubsetsCtx(ctx context.Context, n, k int, visit func(subset []int)) error {
	scratch := make([]int, 0, k)
	visited := 0
	var rec func(start int) error
	rec = func(start int) error {
		if len(scratch) > 0 {
			visited++
			if visited%ctxCheckInterval == 0 && ctx.Err() != nil {
				return ctx.Err()
			}
			visit(scratch)
		}
		if len(scratch) == k {
			return nil
		}
		//lint:ignore busylint/ctxloop rec checks the captured ctx at every visited subset on a stride; the loop only drives the recursion
		for v := start; v < n; v++ {
			scratch = append(scratch, v)
			err := rec(v + 1)
			scratch = scratch[:len(scratch)-1]
			if err != nil {
				return err
			}
		}
		return nil
	}
	return rec(0)
}

// Count returns Σ_{i=1..k} C(n,i), the number of subsets EnumerateSubsets
// visits, saturating at math.MaxInt64 on overflow.
func Count(n, k int) int64 {
	var total int64
	for i := 1; i <= k && i <= n; i++ {
		c := binom(n, i)
		if c == math.MaxInt64 || total > math.MaxInt64-c {
			return math.MaxInt64
		}
		total += c
	}
	return total
}

// Harmonic returns H_k = Σ_{i=1..k} 1/i.
func Harmonic(k int) float64 {
	h := 0.0
	for i := 1; i <= k; i++ {
		h += 1 / float64(i)
	}
	return h
}

func binom(n, k int) int64 {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	var c int64 = 1
	for i := 0; i < k; i++ {
		// c = c * (n-i) / (i+1), exact at each step.
		num := int64(n - i)
		if c > math.MaxInt64/num {
			return math.MaxInt64
		}
		c = c * num / int64(i+1)
	}
	return c
}
