package setcover

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGreedySimple(t *testing.T) {
	sets := []Set{
		{Elements: []int{0, 1}, Weight: 3},
		{Elements: []int{2}, Weight: 1},
		{Elements: []int{0, 1, 2}, Weight: 10},
	}
	chosen, err := Greedy(3, sets)
	if err != nil {
		t.Fatal(err)
	}
	if CoverCost(sets, chosen) != 4 {
		t.Fatalf("cost = %d, want 4 (chosen %v)", CoverCost(sets, chosen), chosen)
	}
}

func TestGreedyPrefersRatio(t *testing.T) {
	// Big cheap set should beat small free-ish sets in ratio order.
	sets := []Set{
		{Elements: []int{0, 1, 2, 3}, Weight: 4}, // ratio 1
		{Elements: []int{0}, Weight: 2},          // ratio 2
		{Elements: []int{1}, Weight: 2},
		{Elements: []int{2}, Weight: 2},
		{Elements: []int{3}, Weight: 2},
	}
	chosen, err := Greedy(4, sets)
	if err != nil {
		t.Fatal(err)
	}
	if len(chosen) != 1 || chosen[0] != 0 {
		t.Fatalf("chosen = %v, want [0]", chosen)
	}
}

func TestGreedyZeroWeights(t *testing.T) {
	sets := []Set{
		{Elements: []int{0}, Weight: 0},
		{Elements: []int{1}, Weight: 0},
	}
	chosen, err := Greedy(2, sets)
	if err != nil {
		t.Fatal(err)
	}
	if CoverCost(sets, chosen) != 0 {
		t.Fatal("zero-weight cover should cost 0")
	}
}

func TestGreedyUncoverable(t *testing.T) {
	if _, err := Greedy(2, []Set{{Elements: []int{0}, Weight: 1}}); err == nil {
		t.Fatal("expected error for uncoverable universe")
	}
}

func TestGreedyRejectsOutOfRange(t *testing.T) {
	if _, err := Greedy(2, []Set{{Elements: []int{5}, Weight: 1}}); err == nil {
		t.Fatal("expected error for out-of-range element")
	}
}

func TestGreedyEmptyUniverse(t *testing.T) {
	chosen, err := Greedy(0, nil)
	if err != nil || len(chosen) != 0 {
		t.Fatalf("empty universe: %v %v", chosen, err)
	}
}

func TestGreedyPartitionDisjoint(t *testing.T) {
	sets := []Set{
		{Elements: []int{0, 1}, Weight: 1},
		{Elements: []int{1, 2}, Weight: 1}, // overlaps first; must be skipped once 1 covered
		{Elements: []int{2}, Weight: 5},
		{Elements: []int{0}, Weight: 9},
		{Elements: []int{1}, Weight: 9},
	}
	chosen, err := GreedyPartition(3, sets)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]int{}
	for _, si := range chosen {
		for _, e := range sets[si].Elements {
			seen[e]++
		}
	}
	for e := 0; e < 3; e++ {
		if seen[e] != 1 {
			t.Fatalf("element %d covered %d times; partition required", e, seen[e])
		}
	}
}

func TestGreedyPartitionFailsWithoutSingletons(t *testing.T) {
	sets := []Set{
		{Elements: []int{0, 1}, Weight: 1},
		{Elements: []int{1, 2}, Weight: 1},
	}
	if _, err := GreedyPartition(3, sets); err == nil {
		t.Fatal("expected failure: no disjoint completion exists")
	}
}

func TestGreedyPartitionEmptyUniverse(t *testing.T) {
	chosen, err := GreedyPartition(0, nil)
	if err != nil || len(chosen) != 0 {
		t.Fatalf("empty universe: %v %v", chosen, err)
	}
}

func TestPartition(t *testing.T) {
	sets := []Set{
		{Elements: []int{0, 1, 2}, Weight: 1},
		{Elements: []int{2, 3}, Weight: 1},
	}
	parts := Partition(4, sets, []int{0, 1})
	if len(parts) != 2 {
		t.Fatalf("parts = %v", parts)
	}
	if len(parts[0]) != 3 || len(parts[1]) != 1 || parts[1][0] != 3 {
		t.Fatalf("parts = %v, want [[0 1 2] [3]]", parts)
	}
}

func TestPartitionPanicsOnNonCover(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-cover did not panic")
		}
	}()
	Partition(2, []Set{{Elements: []int{0}, Weight: 1}}, []int{0})
}

func TestEnumerateSubsets(t *testing.T) {
	var got [][]int
	EnumerateSubsets(4, 2, func(s []int) {
		cp := append([]int(nil), s...)
		got = append(got, cp)
	})
	want := int64(4 + 6) // C(4,1)+C(4,2)
	if int64(len(got)) != want {
		t.Fatalf("enumerated %d subsets, want %d", len(got), want)
	}
	seen := map[string]bool{}
	for _, s := range got {
		key := ""
		for _, v := range s {
			key += string(rune('a' + v))
		}
		if seen[key] {
			t.Fatalf("duplicate subset %v", s)
		}
		seen[key] = true
		if len(s) < 1 || len(s) > 2 {
			t.Fatalf("subset %v has bad size", s)
		}
	}
}

func TestCount(t *testing.T) {
	cases := []struct {
		n, k int
		want int64
	}{
		{4, 2, 10},
		{5, 5, 31},
		{10, 1, 10},
		{0, 3, 0},
		{3, 10, 7},
	}
	for _, c := range cases {
		if got := Count(c.n, c.k); got != c.want {
			t.Errorf("Count(%d,%d) = %d, want %d", c.n, c.k, got, c.want)
		}
	}
	if Count(200, 100) != math.MaxInt64 {
		t.Error("Count should saturate on overflow")
	}
}

func TestHarmonic(t *testing.T) {
	if Harmonic(1) != 1 {
		t.Error("H_1 != 1")
	}
	if h := Harmonic(2); math.Abs(h-1.5) > 1e-12 {
		t.Errorf("H_2 = %v", h)
	}
	if h := Harmonic(6); math.Abs(h-2.45) > 0.01 {
		t.Errorf("H_6 = %v, want ~2.45", h)
	}
}

// exactCover finds the optimal cover cost by trying all 2^len(sets)
// combinations — the oracle for the H_k guarantee check.
func exactCover(n int, sets []Set) int64 {
	best := int64(math.MaxInt64)
	for mask := 0; mask < 1<<len(sets); mask++ {
		covered := make([]bool, n)
		var cost int64
		for i, s := range sets {
			if mask&(1<<i) == 0 {
				continue
			}
			cost += s.Weight
			for _, e := range s.Elements {
				covered[e] = true
			}
		}
		ok := true
		for _, c := range covered {
			if !c {
				ok = false
				break
			}
		}
		if ok && cost < best {
			best = cost
		}
	}
	return best
}

// Property: greedy respects the H_k bound against the exact cover.
func TestPropertyGreedyWithinHk(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := r.Intn(8) + 1
		nsets := r.Intn(10) + 1
		maxSize := 0
		sets := make([]Set, nsets)
		for i := range sets {
			size := r.Intn(3) + 1
			if size > n {
				size = n
			}
			elems := map[int]bool{}
			for len(elems) < size {
				elems[r.Intn(n)] = true
			}
			var list []int
			for e := range elems {
				list = append(list, e)
			}
			sets[i] = Set{Elements: list, Weight: r.Int63n(20)}
			if size > maxSize {
				maxSize = size
			}
		}
		// Guarantee coverability with singletons.
		for e := 0; e < n; e++ {
			sets = append(sets, Set{Elements: []int{e}, Weight: r.Int63n(20) + 1})
		}
		if maxSize < 1 {
			maxSize = 1
		}
		chosen, err := Greedy(n, sets)
		if err != nil {
			return false
		}
		got := float64(CoverCost(sets, chosen))
		opt := float64(exactCover(n, sets))
		return got <= Harmonic(maxSize)*opt+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestGreedyCtxCancellation(t *testing.T) {
	// A pre-canceled context must surface from both greedy variants and
	// from the subset enumeration instead of running to completion.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	n := 400
	var sets []Set
	for i := 0; i < n; i++ {
		sets = append(sets, Set{Elements: []int{i}, Weight: 1})
	}
	if _, err := GreedyCtx(ctx, n, sets); err != context.Canceled {
		t.Errorf("GreedyCtx returned %v, want context.Canceled", err)
	}
	if _, err := GreedyPartitionCtx(ctx, n, sets); err != context.Canceled {
		t.Errorf("GreedyPartitionCtx returned %v, want context.Canceled", err)
	}
	if err := EnumerateSubsetsCtx(ctx, 30, 4, func([]int) {}); err != context.Canceled {
		t.Errorf("EnumerateSubsetsCtx returned %v, want context.Canceled", err)
	}
}

func TestGreedyCtxBackgroundMatchesGreedy(t *testing.T) {
	sets := []Set{
		{Elements: []int{0, 1}, Weight: 3},
		{Elements: []int{1, 2}, Weight: 2},
		{Elements: []int{0}, Weight: 1},
		{Elements: []int{2}, Weight: 1},
	}
	want, err := Greedy(3, sets)
	if err != nil {
		t.Fatal(err)
	}
	got, err := GreedyCtx(context.Background(), 3, sets)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("GreedyCtx chose %v, Greedy chose %v", got, want)
	}
}
