package workload

import (
	"fmt"

	"repro/internal/job"
)

// Arrivals returns a general random instance re-indexed into arrival order
// (non-decreasing start, ties by end), the stream shape consumed by the
// online schedulers: job ID equals arrival rank.
func Arrivals(seed int64, c Config) job.Instance {
	return arrivalIndexed(General(seed, c))
}

// arrivalIndexed canonicalizes an instance into arrival order with job ID
// equal to arrival rank.
func arrivalIndexed(in job.Instance) job.Instance {
	out := in.SortedByStart()
	for i := range out.Jobs {
		out.Jobs[i].ID = i
	}
	return out
}

// WeightedArrivals returns an arrival-ordered general instance whose jobs
// carry throughput weights spread over [1, 8] — the stream shape for the
// weighted online variant with admission control: weight is the value an
// admission-control strategy banks by accepting the arrival.
func WeightedArrivals(seed int64, c Config) job.Instance {
	c.check()
	in := Arrivals(seed, c)
	r := c.rng(seed ^ 0x77656967687473) // decorrelate weights from shapes
	for i := range in.Jobs {
		in.Jobs[i].Weight = 1 + r.Int63n(8)
	}
	return in
}

// BurstyArrivals returns an arrival-ordered instance whose jobs come in
// bursts: groups of up to G simultaneous releases separated by random
// gaps, the arrival pattern that most rewards packing arrivals together.
func BurstyArrivals(seed int64, c Config) job.Instance {
	c.check()
	r := c.rng(seed)
	jobs := make([]job.Job, 0, c.N)
	var t int64
	meanGap := maxi64(c.MaxTime/maxi64(int64(c.N), 1), 1)
	for len(jobs) < c.N {
		burst := 1 + r.Intn(c.G)
		if rest := c.N - len(jobs); burst > rest {
			burst = rest
		}
		for k := 0; k < burst; k++ {
			jobs = append(jobs, job.New(len(jobs), t, t+1+r.Int63n(c.MaxLen)))
		}
		t += 1 + r.Int63n(2*meanGap+1)
	}
	return arrivalIndexed(job.Instance{Jobs: jobs, G: c.G})
}

// AdversarialFirstFit returns the lower-bound stream on which online
// FirstFit pays Ω(g)·OPT. The stream runs g rounds three ticks apart; in
// round i, i·(g−1) two-tick blocker jobs arrive first and occupy every
// free thread of every open machine, so the round's long job (length
// longLen, starting one tick later) fits nowhere and opens a fresh
// machine. FirstFit therefore pays about g·longLen, while offline all g
// long jobs pairwise overlap and share a single machine, for a cost of
// about longLen plus the blockers — a ratio approaching g as longLen
// grows. longLen must exceed 3g so the long jobs pairwise overlap.
//
// The instance has g + g(g−1)²/2 jobs; g = 3 stays within exact.MaxN.
func AdversarialFirstFit(g int, longLen int64) (job.Instance, error) {
	if g < 2 {
		return job.Instance{}, fmt.Errorf("workload: AdversarialFirstFit requires g >= 2, got %d", g)
	}
	if longLen <= 3*int64(g) {
		return job.Instance{}, fmt.Errorf("workload: AdversarialFirstFit requires longLen > 3g = %d, got %d", 3*g, longLen)
	}
	var jobs []job.Job
	id := 0
	add := func(start, end int64) {
		jobs = append(jobs, job.New(id, start, end))
		id++
	}
	for i := 0; i < g; i++ {
		t := int64(3 * i)
		for k := 0; k < i*(g-1); k++ {
			add(t, t+2)
		}
		add(t+1, t+1+longLen)
	}
	return job.Instance{Jobs: jobs, G: g}, nil
}
