// Package workload generates the instance families used by the test suite,
// the examples, and the experiment harness.
//
// All generators are deterministic given a seed. Families correspond to the
// instance classes the paper analyzes (general, clique, proper, proper
// clique, one-sided) plus the two application-flavoured workloads from the
// introduction (cloud tasks, optical lightpaths) and the adversarial
// rectangle family of Figure 3 that drives FirstFit2D to its lower bound.
package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/job"
)

// Config bounds the random instance shapes.
type Config struct {
	N       int   // number of jobs
	G       int   // machine capacity
	MaxTime int64 // horizon for start times
	MaxLen  int64 // maximum job length (>= 1)
}

func (c Config) rng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// Err reports why the config is unusable, or nil. CLIs check it up front
// to reject bad flags cleanly; the generators panic on it (via check),
// since reaching them with a bad config is a programming error.
func (c Config) Err() error {
	if c.N < 0 || c.G < 1 || c.MaxLen < 1 || c.MaxTime < 0 {
		return fmt.Errorf("workload: bad config %+v: need N >= 0, G >= 1, MaxLen >= 1, MaxTime >= 0", c)
	}
	return nil
}

func (c Config) check() {
	if err := c.Err(); err != nil {
		panic(err.Error())
	}
}

// General returns an unconstrained random instance: uniform starts over the
// horizon, uniform lengths in [1, MaxLen].
func General(seed int64, c Config) job.Instance {
	c.check()
	r := c.rng(seed)
	jobs := make([]job.Job, c.N)
	for i := range jobs {
		s := r.Int63n(c.MaxTime + 1)
		jobs[i] = job.New(i, s, s+1+r.Int63n(c.MaxLen))
	}
	return job.Instance{Jobs: jobs, G: c.G}
}

// Clique returns a clique instance: every job contains a common witness
// time in the middle of the horizon.
func Clique(seed int64, c Config) job.Instance {
	c.check()
	r := c.rng(seed)
	t := c.MaxTime / 2
	jobs := make([]job.Job, c.N)
	for i := range jobs {
		left := 1 + r.Int63n(c.MaxLen)
		right := 1 + r.Int63n(c.MaxLen)
		jobs[i] = job.New(i, t-left, t+right)
	}
	return job.Instance{Jobs: jobs, G: c.G}
}

// Proper returns a proper instance: starts and ends are both strictly
// increasing, so no job properly contains another.
func Proper(seed int64, c Config) job.Instance {
	c.check()
	r := c.rng(seed)
	jobs := make([]job.Job, c.N)
	var s, e int64 = 0, 1 + r.Int63n(c.MaxLen)
	for i := range jobs {
		jobs[i] = job.New(i, s, e)
		s += 1 + r.Int63n(maxi64(c.MaxLen/2, 1))
		e = maxi64(e+1+r.Int63n(maxi64(c.MaxLen/2, 1)), s+1)
	}
	return job.Instance{Jobs: jobs, G: c.G}
}

// ProperClique returns an instance that is both proper and a clique: all
// starts strictly increase below a pivot time, all ends strictly increase
// above it.
func ProperClique(seed int64, c Config) job.Instance {
	c.check()
	r := c.rng(seed)
	jobs := make([]job.Job, c.N)
	n := int64(c.N)
	pivotLo := n + 1 // starts live in [0, pivotLo)
	starts := make([]int64, c.N)
	ends := make([]int64, c.N)
	var s int64
	for i := range starts {
		starts[i] = s
		s += 1 + r.Int63n(maxi64(pivotLo/maxi64(n, 1), 2))
	}
	e := s + 1 + r.Int63n(c.MaxLen) // first end beyond every start
	for i := range ends {
		ends[i] = e
		e += 1 + r.Int63n(c.MaxLen)
	}
	for i := range jobs {
		jobs[i] = job.New(i, starts[i], ends[i])
	}
	return job.Instance{Jobs: jobs, G: c.G}
}

// OneSided returns a one-sided clique instance; sharedStart selects whether
// starts or ends coincide.
func OneSided(seed int64, c Config, sharedStart bool) job.Instance {
	c.check()
	r := c.rng(seed)
	jobs := make([]job.Job, c.N)
	anchor := c.MaxTime / 2
	for i := range jobs {
		l := 1 + r.Int63n(c.MaxLen)
		if sharedStart {
			jobs[i] = job.New(i, anchor, anchor+l)
		} else {
			jobs[i] = job.New(i, anchor-l, anchor)
		}
	}
	return job.Instance{Jobs: jobs, G: c.G}
}

// Cloud returns a cloud-computing style workload (Section 1): task arrivals
// follow a geometric inter-arrival process (the discrete analogue of
// Poisson arrivals) and durations are bounded bursts. Weights model
// per-task value for the budgeted throughput problem.
func Cloud(seed int64, c Config) job.Instance {
	c.check()
	r := c.rng(seed)
	jobs := make([]job.Job, c.N)
	var t int64
	meanGap := maxi64(c.MaxTime/maxi64(int64(c.N), 1), 1)
	for i := range jobs {
		// Geometric inter-arrival with mean ~ meanGap.
		gap := int64(0)
		for r.Int63n(meanGap+1) != 0 && gap < 4*meanGap {
			gap++
		}
		t += gap
		d := 1 + r.Int63n(c.MaxLen)
		jobs[i] = job.New(i, t, t+d)
		jobs[i].Weight = 1 + r.Int63n(9)
	}
	return job.Instance{Jobs: jobs, G: c.G}
}

// Lightpaths returns an optical-network style workload (Section 1):
// connections along a line network, modeled as intervals over node
// positions; grooming factor g plays the machine-capacity role. Requests
// cluster around hub nodes to create heavy overlap.
func Lightpaths(seed int64, c Config) job.Instance {
	c.check()
	r := c.rng(seed)
	jobs := make([]job.Job, c.N)
	hubs := []int64{c.MaxTime / 4, c.MaxTime / 2, 3 * c.MaxTime / 4}
	for i := range jobs {
		hub := hubs[r.Intn(len(hubs))]
		left := r.Int63n(c.MaxLen + 1)
		right := 1 + r.Int63n(c.MaxLen)
		s := hub - left
		jobs[i] = job.New(i, s, hub+right)
	}
	return job.Instance{Jobs: jobs, G: c.G}
}

// WithDemands assigns random capacity demands in [1, maxDemand] to a copy
// of the instance (variable-capacity extension of Section 5 / [16]).
func WithDemands(seed int64, in job.Instance, maxDemand int64) job.Instance {
	if maxDemand < 1 || maxDemand > int64(in.G) {
		panic(fmt.Sprintf("workload: maxDemand %d outside [1, g=%d]", maxDemand, in.G))
	}
	r := rand.New(rand.NewSource(seed))
	out := in.Clone()
	for i := range out.Jobs {
		out.Jobs[i].Demand = 1 + r.Int63n(maxDemand)
	}
	return out
}

func maxi64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
