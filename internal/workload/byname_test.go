package workload

import "testing"

func TestByNameCoversAllFamilies(t *testing.T) {
	cfg := Config{N: 8, G: 2, MaxTime: 100, MaxLen: 30}
	for _, family := range Names() {
		in, err := ByName(family, 1, cfg)
		if err != nil {
			t.Fatalf("%s: %v", family, err)
		}
		if len(in.Jobs) != 8 {
			t.Errorf("%s: %d jobs, want 8", family, len(in.Jobs))
		}
		if err := in.Validate(); err != nil {
			t.Errorf("%s: %v", family, err)
		}
	}
	if _, err := ByName("nope", 1, cfg); err == nil {
		t.Error("unknown family accepted")
	}
	if _, err := ByName("general", 1, Config{N: 8, G: 0, MaxTime: 100, MaxLen: 30}); err == nil {
		t.Error("bad config accepted")
	}
}

func TestConfigErr(t *testing.T) {
	if err := (Config{N: 1, G: 1, MaxTime: 1, MaxLen: 1}).Err(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	for _, c := range []Config{
		{N: -1, G: 1, MaxTime: 1, MaxLen: 1},
		{N: 1, G: 0, MaxTime: 1, MaxLen: 1},
		{N: 1, G: 1, MaxTime: -1, MaxLen: 1},
		{N: 1, G: 1, MaxTime: 1, MaxLen: 0},
	} {
		if c.Err() == nil {
			t.Errorf("bad config %+v accepted", c)
		}
	}
}
