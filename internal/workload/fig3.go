package workload

import (
	"fmt"

	"repro/internal/interval"
	"repro/internal/job"
	"repro/internal/rect"
)

// Figure3 builds the adversarial rectangle family from Figure 3 of the
// paper, which drives FirstFit2D to an approximation ratio arbitrarily
// close to its 6γ₁+3 lower bound (Lemma 3.5).
//
// Coordinates are scaled by the integer scale S so the paper's ε′
// perturbation is representable on the lattice: the paper's unit 1 becomes
// S ticks and ε′ becomes eps ticks (0 < eps < S). gamma1 is the target γ₁
// (an integer ≥ 1); g must be ≥ 4 so the X-copy count g(g−3) is positive.
//
// The instance consists of g(g−3) copies of X followed, per machine round,
// by copies of A, C, −A, −C, B, −B, D, E — exactly the processing order of
// the lower-bound proof. FirstFit2D's stable tie-break (all rectangles
// share len₂ = 2S) preserves input order, so no perturbation is needed.
func Figure3(g int, gamma1 int64, scale int64, eps int64) (job.RectInstance, error) {
	if g < 4 {
		return job.RectInstance{}, fmt.Errorf("workload: Figure3 requires g >= 4, got %d", g)
	}
	if gamma1 < 1 {
		return job.RectInstance{}, fmt.Errorf("workload: Figure3 requires gamma1 >= 1, got %d", gamma1)
	}
	if scale < 2 || eps <= 0 || eps >= scale {
		return job.RectInstance{}, fmt.Errorf("workload: Figure3 requires scale >= 2 and 0 < eps < scale")
	}
	S, e, gam := scale, eps, gamma1

	// The rectangles of equation (6), scaled by S with ε′ = e/S.
	A := rect.New(S-e, S+2*gam*S-e, S-e, 3*S-e)
	B := rect.New(S-e, S+2*gam*S-e, -S, S)
	C := rect.New(S-e, S+2*gam*S-e, -3*S+e, -S+e)
	D := rect.New(-S, S, S-e, 3*S-e)
	E := rect.New(-S, S, -3*S+e, -S+e)
	X := rect.New(-S, S, -S, S)
	negA := mirror1(A)
	negB := mirror1(B)
	negC := mirror1(C)

	var in job.RectInstance
	in.G = g
	id := 0
	add := func(r rect.Rect) {
		in.Jobs = append(in.Jobs, job.RectJob{ID: id, Rect: r})
		id++
	}
	// Per machine round: g−3 copies of X, then A, C, −A, −C, B, −B, D, E.
	// Across g rounds this yields g(g−3) X's and g copies of each other
	// rectangle, in the adversarial processing order.
	for round := 0; round < g; round++ {
		for k := 0; k < g-3; k++ {
			add(X)
		}
		add(A)
		add(C)
		add(negA)
		add(negC)
		add(B)
		add(negB)
		add(D)
		add(E)
	}
	return in, nil
}

// Figure3OptUpperBound returns the paper's upper bound on cost* for the
// Figure 3 instance: (g−3)·span(X) + 2(span(A)+span(B)+span(C)) + span(D) +
// span(E), in scaled (tick²) units.
func Figure3OptUpperBound(g int, gamma1 int64, scale int64, eps int64) int64 {
	S, e, gam := scale, eps, gamma1
	spanX := (2 * S) * (2 * S)
	spanA := (2 * gam * S) * (2 * S)
	spanB := spanA
	spanC := spanA
	spanD := (2 * S) * (2 * S)
	spanE := spanD
	_ = e
	return int64(g-3)*spanX + 2*(spanA+spanB+spanC) + spanD + spanE
}

// Figure3FirstFitCost returns the cost the lower-bound proof predicts for
// FirstFit2D on the Figure 3 instance: g·span(Y) where Y is the union of
// all nine rectangle types.
func Figure3FirstFitCost(g int, gamma1 int64, scale int64, eps int64) int64 {
	S, e, gam := scale, eps, gamma1
	len1Y := 2 * (S + 2*gam*S - e)
	len2Y := 2 * (3*S - e)
	return int64(g) * len1Y * len2Y
}

// BoundedGammaRects returns a random rectangle instance whose γ₁ is at most
// maxGamma — the workload family for the Theorem 3.3 (BucketFirstFit)
// experiment.
func BoundedGammaRects(seed int64, c Config, maxGamma int64) job.RectInstance {
	c.check()
	if maxGamma < 1 {
		panic("workload: maxGamma must be >= 1")
	}
	r := c.rng(seed)
	base := int64(10)
	in := job.RectInstance{G: c.G, Jobs: make([]job.RectJob, c.N)}
	for i := range in.Jobs {
		l1 := base + r.Int63n(base*(maxGamma-1)+1) // in [base, base*maxGamma]
		l2 := 1 + r.Int63n(c.MaxLen)
		s1 := r.Int63n(c.MaxTime + 1)
		s2 := r.Int63n(c.MaxTime + 1)
		in.Jobs[i] = job.NewRectJob(i, s1, s1+l1, s2, s2+l2)
	}
	return in
}

// mirror1 reflects a rectangle through the dim-1 origin: [s,c) becomes
// [−c,−s), the paper's −A notation.
func mirror1(r rect.Rect) rect.Rect {
	return rect.Rect{
		D1: interval.Interval{Start: -r.D1.End, End: -r.D1.Start},
		D2: r.D2,
	}
}
