package workload

import (
	"testing"
)

func TestArrivalsOrdered(t *testing.T) {
	in := Arrivals(3, Config{N: 50, G: 3, MaxTime: 300, MaxLen: 40})
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(in.Jobs); i++ {
		if in.Jobs[i].Start() < in.Jobs[i-1].Start() {
			t.Fatalf("job %d starts before job %d", i, i-1)
		}
	}
	for i, j := range in.Jobs {
		if j.ID != i {
			t.Fatalf("job at position %d has ID %d, want arrival rank", i, j.ID)
		}
	}
}

func TestBurstyArrivalsShape(t *testing.T) {
	in := BurstyArrivals(5, Config{N: 47, G: 4, MaxTime: 200, MaxLen: 30})
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(in.Jobs) != 47 {
		t.Fatalf("%d jobs, want 47", len(in.Jobs))
	}
	sameStart := 0
	for i := 1; i < len(in.Jobs); i++ {
		if in.Jobs[i].Start() < in.Jobs[i-1].Start() {
			t.Fatalf("job %d starts before job %d", i, i-1)
		}
		if in.Jobs[i].Start() == in.Jobs[i-1].Start() {
			sameStart++
		}
	}
	if sameStart == 0 {
		t.Error("no simultaneous releases in a bursty stream")
	}
}

func TestAdversarialFirstFitShape(t *testing.T) {
	g := 4
	in, err := AdversarialFirstFit(g, 100)
	if err != nil {
		t.Fatal(err)
	}
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	want := g + g*(g-1)*(g-1)/2
	if len(in.Jobs) != want {
		t.Fatalf("%d jobs, want %d", len(in.Jobs), want)
	}
	longs := 0
	for _, j := range in.Jobs {
		switch j.Len() {
		case 2:
		case 100:
			longs++
		default:
			t.Fatalf("unexpected job length %d", j.Len())
		}
	}
	if longs != g {
		t.Fatalf("%d long jobs, want g = %d", longs, g)
	}
}

func TestAdversarialFirstFitErrors(t *testing.T) {
	if _, err := AdversarialFirstFit(1, 100); err == nil {
		t.Error("g=1 accepted")
	}
	if _, err := AdversarialFirstFit(4, 12); err == nil {
		t.Error("longLen <= 3g accepted")
	}
}
