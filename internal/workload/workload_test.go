package workload

import (
	"testing"

	"repro/internal/igraph"
	"repro/internal/rect"
)

var cfg = Config{N: 20, G: 3, MaxTime: 100, MaxLen: 30}

func TestGeneralShape(t *testing.T) {
	in := General(1, cfg)
	if len(in.Jobs) != 20 || in.G != 3 {
		t.Fatalf("shape = %d jobs g=%d", len(in.Jobs), in.G)
	}
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDeterminism(t *testing.T) {
	a, b := General(42, cfg), General(42, cfg)
	for i := range a.Jobs {
		if a.Jobs[i] != b.Jobs[i] {
			t.Fatal("same seed produced different instances")
		}
	}
	c := General(43, cfg)
	same := true
	for i := range a.Jobs {
		if a.Jobs[i] != c.Jobs[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical instances")
	}
}

func TestCliqueIsClique(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		in := Clique(seed, cfg)
		if !igraph.IsClique(in.Jobs) {
			t.Fatalf("seed %d: not a clique", seed)
		}
		if err := in.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestProperIsProper(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		in := Proper(seed, cfg)
		if !igraph.IsProper(in.Jobs) {
			t.Fatalf("seed %d: not proper", seed)
		}
	}
}

func TestProperCliqueIsBoth(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		in := ProperClique(seed, cfg)
		if !igraph.IsProperClique(in.Jobs) {
			t.Fatalf("seed %d: not a proper clique", seed)
		}
	}
}

func TestOneSided(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		if igraph.OneSidedness(OneSided(seed, cfg, true).Jobs) != igraph.SharedStart {
			t.Fatalf("seed %d: shared start violated", seed)
		}
		if igraph.OneSidedness(OneSided(seed, cfg, false).Jobs) != igraph.SharedEnd {
			t.Fatalf("seed %d: shared end violated", seed)
		}
	}
}

func TestCloudHasWeights(t *testing.T) {
	in := Cloud(7, cfg)
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	varied := false
	for _, j := range in.Jobs {
		if j.Weight > 1 {
			varied = true
		}
	}
	if !varied {
		t.Error("cloud workload should carry non-trivial weights")
	}
}

func TestLightpathsValid(t *testing.T) {
	in := Lightpaths(9, cfg)
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(in.Jobs) != cfg.N {
		t.Fatalf("n = %d", len(in.Jobs))
	}
}

func TestWithDemands(t *testing.T) {
	base := General(3, cfg)
	in := WithDemands(4, base, 3)
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	seen := map[int64]bool{}
	for _, j := range in.Jobs {
		if j.Demand < 1 || j.Demand > 3 {
			t.Fatalf("demand %d outside range", j.Demand)
		}
		seen[j.Demand] = true
	}
	if len(seen) < 2 {
		t.Error("demands should vary")
	}
	// Base must be untouched.
	for _, j := range base.Jobs {
		if j.Demand != 1 {
			t.Fatal("WithDemands mutated its input")
		}
	}
}

func TestWithDemandsPanicsOnBadMax(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	WithDemands(1, General(1, cfg), 99)
}

func TestBoundedGammaRects(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		in := BoundedGammaRects(seed, cfg, 5)
		if err := in.Validate(); err != nil {
			t.Fatal(err)
		}
		if g := rect.Gamma(in.Rects(), 1); g > 5 {
			t.Fatalf("seed %d: gamma1 = %v > 5", seed, g)
		}
	}
}

func TestFigure3Counts(t *testing.T) {
	g := 6
	in, err := Figure3(g, 2, 1000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	// g(g-3) X's + 8g others.
	want := g*(g-3) + 8*g
	if len(in.Jobs) != want {
		t.Fatalf("jobs = %d, want %d", len(in.Jobs), want)
	}
}

func TestFigure3Predictions(t *testing.T) {
	// At scale 1000, eps 1, gamma 1, g 4: check the closed forms agree
	// with directly computed areas of the construction.
	in, err := Figure3(4, 1, 1000, 1)
	if err != nil {
		t.Fatal(err)
	}
	// span(Y) computed from the union of one copy of each rectangle must
	// equal Figure3FirstFitCost / g.
	seen := map[string]bool{}
	var distinct []rect.Rect
	for _, j := range in.Jobs {
		k := j.Rect.String()
		if !seen[k] {
			seen[k] = true
			distinct = append(distinct, j.Rect)
		}
	}
	if len(distinct) != 9 {
		t.Fatalf("distinct rects = %d, want 9", len(distinct))
	}
	union := rect.UnionArea(distinct)
	if got := Figure3FirstFitCost(4, 1, 1000, 1); got != 4*union {
		t.Errorf("Figure3FirstFitCost = %d, want 4*union = %d", got, 4*union)
	}
}

func TestConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad config accepted")
		}
	}()
	General(1, Config{N: -1, G: 1, MaxTime: 10, MaxLen: 5})
}
