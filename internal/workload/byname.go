package workload

import (
	"fmt"

	"repro/internal/job"
)

// Names lists the one-dimensional workload families ByName resolves, in
// presentation order.
func Names() []string {
	return []string{
		"general", "clique", "proper", "proper-clique", "one-sided",
		"cloud", "lightpaths", "arrivals", "bursty", "weighted",
	}
}

// ByName generates the named one-dimensional workload family — the shared
// resolver behind the -workload flags of cmd/busysim and cmd/onlinesim.
// Families needing extra parameters (adversarial, Figure 3) have their own
// constructors.
func ByName(family string, seed int64, c Config) (job.Instance, error) {
	if err := c.Err(); err != nil {
		return job.Instance{}, err
	}
	switch family {
	case "general":
		return General(seed, c), nil
	case "clique":
		return Clique(seed, c), nil
	case "proper":
		return Proper(seed, c), nil
	case "proper-clique":
		return ProperClique(seed, c), nil
	case "one-sided":
		return OneSided(seed, c, true), nil
	case "cloud":
		return Cloud(seed, c), nil
	case "lightpaths":
		return Lightpaths(seed, c), nil
	case "arrivals":
		return Arrivals(seed, c), nil
	case "bursty":
		return BurstyArrivals(seed, c), nil
	case "weighted":
		return WeightedArrivals(seed, c), nil
	default:
		return job.Instance{}, fmt.Errorf("unknown workload %q", family)
	}
}
