// Package demand implements the variable-capacity extension of Section 5
// (studied in depth by Khandekar et al. [16]): each job j carries a demand
// d_j ≤ g, and a machine may run any job set whose total demand never
// exceeds g at any time.
//
// The core model is the special case d_j = 1. The heuristics here reuse
// the paper's FirstFit shape; no approximation guarantee is claimed in the
// reproduced paper for general demands, so the test suite checks validity
// and the demand-weighted Observation 2.1 bounds instead.
package demand

import (
	"sort"

	"repro/internal/core"
	"repro/internal/interval"
	"repro/internal/job"
)

// ParallelismBound returns the demand-weighted parallelism lower bound
// ceil(Σ d_j·len_j / g): machine-time is consumed at rate ≥ total demand/g.
func ParallelismBound(in job.Instance) int64 {
	var weighted int64
	for _, j := range in.Jobs {
		weighted += j.Demand * j.Len()
	}
	g := int64(in.G)
	return (weighted + g - 1) / g
}

// LowerBound returns max(demand parallelism bound, span bound).
func LowerBound(in job.Instance) int64 {
	pb := ParallelismBound(in)
	if sp := in.Span(); sp > pb {
		return sp
	}
	return pb
}

// FirstFit places jobs in non-increasing length order on the first machine
// whose residual capacity admits the job over its whole interval. It
// generalizes the paper's FirstFit: with unit demands it coincides with
// core.FirstFit up to tie-breaking.
func FirstFit(in job.Instance) core.Schedule {
	order := make([]int, len(in.Jobs))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return in.Jobs[order[a]].Len() > in.Jobs[order[b]].Len()
	})
	return firstFitInOrder(in, order)
}

// FirstFitByDemand is FirstFit with jobs ordered by non-increasing demand
// first, then length — the "big rocks first" packing heuristic that
// empirically reduces fragmentation on heterogeneous demands.
func FirstFitByDemand(in job.Instance) core.Schedule {
	order := make([]int, len(in.Jobs))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		ja, jb := in.Jobs[order[a]], in.Jobs[order[b]]
		if ja.Demand != jb.Demand {
			return ja.Demand > jb.Demand
		}
		return ja.Len() > jb.Len()
	})
	return firstFitInOrder(in, order)
}

// firstFitInOrder runs the first-fit placement loop over job positions in
// the given order.
func firstFitInOrder(in job.Instance, order []int) core.Schedule {
	s := core.NewSchedule(in)
	var members [][]int // members[m] = job positions on machine m

	fits := func(m int, p int) bool {
		ivs := make([]interval.Interval, 0, len(members[m])+1)
		demands := make([]int64, 0, len(members[m])+1)
		for _, q := range members[m] {
			ivs = append(ivs, in.Jobs[q].Interval)
			demands = append(demands, in.Jobs[q].Demand)
		}
		ivs = append(ivs, in.Jobs[p].Interval)
		demands = append(demands, in.Jobs[p].Demand)
		return interval.WeightedMaxConcurrency(ivs, demands) <= int64(in.G)
	}

	for _, p := range order {
		placed := false
		for m := 0; m < len(members); m++ {
			if fits(m, p) {
				members[m] = append(members[m], p)
				s.Assign(p, m)
				placed = true
				break
			}
		}
		if !placed {
			members = append(members, []int{p})
			s.Assign(p, len(members)-1)
		}
	}
	return s
}
