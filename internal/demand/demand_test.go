package demand

import (
	"testing"

	"repro/internal/exact"
	"repro/internal/job"
	"repro/internal/workload"
)

func TestParallelismBound(t *testing.T) {
	in := job.NewInstance(4, [2]int64{0, 10}, [2]int64{0, 10})
	in.Jobs[0].Demand = 3
	in.Jobs[1].Demand = 1
	// Weighted length = 3*10 + 1*10 = 40; /4 = 10.
	if got := ParallelismBound(in); got != 10 {
		t.Errorf("ParallelismBound = %d, want 10", got)
	}
	if got := LowerBound(in); got != 10 {
		t.Errorf("LowerBound = %d", got)
	}
}

func TestFirstFitPacksWithinCapacity(t *testing.T) {
	in := job.NewInstance(3, [2]int64{0, 10}, [2]int64{0, 10}, [2]int64{0, 10})
	in.Jobs[0].Demand = 2
	in.Jobs[1].Demand = 1
	in.Jobs[2].Demand = 2
	s := FirstFit(in)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Throughput() != 3 {
		t.Fatal("FirstFit must schedule everything")
	}
	// Demands 2+1 fit one machine; demand 2 needs another: cost 20.
	if s.Cost() != 20 {
		t.Errorf("cost = %d, want 20", s.Cost())
	}
}

func TestFirstFitUnitDemandsWithinBounds(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		in := workload.General(seed, workload.Config{N: 10, G: 3, MaxTime: 60, MaxLen: 20})
		s := FirstFit(in)
		if err := s.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if s.Cost() < in.LowerBound() || s.Cost() > in.TotalLen() {
			t.Errorf("seed %d: cost %d outside bounds", seed, s.Cost())
		}
	}
}

func TestFirstFitRandomDemandsValid(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		base := workload.General(seed, workload.Config{N: 12, G: 4, MaxTime: 60, MaxLen: 20})
		in := workload.WithDemands(seed+100, base, 3)
		s := FirstFit(in)
		if err := s.Validate(); err != nil {
			t.Fatalf("seed %d FirstFit: %v", seed, err)
		}
		if s.Cost() < LowerBound(in) {
			t.Errorf("seed %d: cost %d below demand lower bound %d", seed, s.Cost(), LowerBound(in))
		}
		sd := FirstFitByDemand(in)
		if err := sd.Validate(); err != nil {
			t.Fatalf("seed %d FirstFitByDemand: %v", seed, err)
		}
		if sd.Throughput() != len(in.Jobs) || s.Throughput() != len(in.Jobs) {
			t.Fatalf("seed %d: partial schedule", seed)
		}
	}
}

func TestFirstFitVsExactOnSmallDemandInstances(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		base := workload.General(seed, workload.Config{N: 8, G: 3, MaxTime: 40, MaxLen: 15})
		in := workload.WithDemands(seed+7, base, 2)
		opt, err := exact.MinBusyCost(in)
		if err != nil {
			t.Fatal(err)
		}
		s := FirstFit(in)
		if s.Cost() < opt {
			t.Errorf("seed %d: heuristic %d beat exact %d", seed, s.Cost(), opt)
		}
		// No proven guarantee; sanity-check against the trivial g-factor.
		if s.Cost() > int64(in.G)*opt {
			t.Errorf("seed %d: heuristic %d exceeds g*opt %d", seed, s.Cost(), int64(in.G)*opt)
		}
	}
}

func TestFirstFitByDemandOrdersBigRocksFirst(t *testing.T) {
	// A demand-g job plus unit jobs: demand-first placement must put the
	// big job alone and pack units together.
	in := job.NewInstance(2, [2]int64{0, 10}, [2]int64{0, 10}, [2]int64{0, 10})
	in.Jobs[0].Demand = 1
	in.Jobs[1].Demand = 2
	in.Jobs[2].Demand = 1
	s := FirstFitByDemand(in)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Cost() != 20 {
		t.Errorf("cost = %d, want 20", s.Cost())
	}
	if s.Machine[0] != s.Machine[2] {
		t.Errorf("unit jobs should share a machine: %v", s.Machine)
	}
}
