package registry

import (
	"context"

	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/igraph"
	"repro/internal/job"
	"repro/internal/online"
	"repro/internal/setcover"
)

// Machine-checkable guarantee factors shared by several registrations.
var (
	// exactRatio is the factor of an optimal algorithm.
	exactRatio = func(int) float64 { return 1 }
	// gRatio is the Observation 2.1 factor of any schedule: cost = len(J)
	// ≤ g·OPT, the Proposition 2.1 naive bound.
	gRatio = func(g int) float64 { return float64(g) }
	// firstFitRatio is the Flammini et al. [13] general-instance bound.
	firstFitRatio = func(int) float64 { return 4 }
	// bestCutRatio is the Theorem 3.1 bound for proper instances.
	bestCutRatio = func(g int) float64 { return 2 - 1/float64(g) }
	// setCoverRatio is the provable bound of the shipped CliqueSetCover:
	// the plain-span greedy's classical H_g (span weights are monotone
	// under subsets, so cover cost ≤ H_g·OPT carries to the schedule).
	// The paper's sharper Lemma 3.2 bound g·H_g/(H_g+g−1) relies on an
	// H_g guarantee for the modified-weight partition step, which fails
	// because g·span−len is not subset-monotone: on the two-job clique
	// {[127,131), [120,130)} with g = 2 (fuzz-found, committed as
	// testdata/fuzz/FuzzMinBusy/seed-setcover-h-g-ratio) the combined
	// algorithm pays 14 against OPT = 11, exceeding 1.2·OPT. E2 still
	// tabulates the paper bound empirically; the conformance harness
	// checks the bound proven for this implementation.
	setCoverRatio = func(g int) float64 { return setcover.Harmonic(g) }
	// cliqueThroughputRatio is the Theorem 4.1 bound: tput ≥ tput*/4.
	cliqueThroughputRatio = func(int) float64 { return 4 }
)

// The built-in algorithm catalogue. Canonical names match the names the
// auto dispatchers have always reported; aliases cover the historical
// CLI spellings so existing invocations keep working. Strengths encode
// the dispatch preference of MinBusyAuto/ThroughputAuto: exact
// class-specific algorithms above approximations above baselines.
func init() {
	minBusy := func(fn func(job.Instance) core.Schedule) func(context.Context, job.Instance) (core.Schedule, error) {
		return func(_ context.Context, in job.Instance) (core.Schedule, error) { return fn(in), nil }
	}
	minBusyErr := func(fn func(job.Instance) (core.Schedule, error)) func(context.Context, job.Instance) (core.Schedule, error) {
		return func(_ context.Context, in job.Instance) (core.Schedule, error) { return fn(in) }
	}
	tput := func(fn func(job.Instance, int64) (core.Schedule, error)) func(context.Context, job.Instance, int64) (core.Schedule, error) {
		return func(_ context.Context, in job.Instance, budget int64) (core.Schedule, error) { return fn(in, budget) }
	}

	// MinBusy algorithms, weakest to strongest.
	MustRegister(Algorithm{
		Name: "naive-per-job", Aliases: []string{"naive"}, Kind: MinBusy,
		Classes:   []igraph.Class{igraph.General},
		Guarantee: "g", Ratio: gRatio, Ref: "Proposition 2.1", Strength: 0,
		SolveMinBusy: minBusy(core.NaivePerJob),
	})
	MustRegister(Algorithm{
		Name: "first-fit-fast", Aliases: []string{"firstfitfast"}, Kind: MinBusy,
		Classes:   []igraph.Class{igraph.General},
		Guarantee: "4 (2 on proper and clique)", Ratio: firstFitRatio, Ref: "Flammini et al. [13], treap threads", Strength: 5,
		SolveMinBusy: minBusy(core.FirstFitFast),
	})
	MustRegister(Algorithm{
		Name: "first-fit", Aliases: []string{"firstfit", "ff"}, Kind: MinBusy,
		Classes:   []igraph.Class{igraph.General},
		Guarantee: "4 (2 on proper and clique)", Ratio: firstFitRatio, Ref: "Flammini et al. [13]", Strength: 10,
		SolveMinBusy: minBusy(core.FirstFit),
	})
	MustRegister(Algorithm{
		Name: "best-cut", Aliases: []string{"bestcut"}, Kind: MinBusy,
		Classes:   []igraph.Class{igraph.Proper},
		Guarantee: "2 − 1/g", Ratio: bestCutRatio, Ref: "Theorem 3.1, Algorithm 1", Strength: 20,
		SolveMinBusy: minBusyErr(core.BestCut),
	})
	MustRegister(Algorithm{
		Name: "clique-set-cover", Aliases: []string{"setcover"}, Kind: MinBusy,
		Classes:   []igraph.Class{igraph.Clique},
		Guarantee: "H_g proven (paper claims g·H_g/(H_g+g−1))", Ratio: setCoverRatio, Ref: "Lemma 3.2", Strength: 30,
		SolveMinBusy: core.CliqueSetCoverCtx,
	})
	MustRegister(Algorithm{
		Name: "clique-matching", Aliases: []string{"matching"}, Kind: MinBusy,
		Classes: []igraph.Class{igraph.Clique},
		MinG:    2, MaxG: 2,
		Guarantee: "exact (g = 2)", Ratio: exactRatio, Exact: true, Ref: "Lemma 3.1", Strength: 40,
		SolveMinBusy: core.CliqueMatchingCtx,
	})
	MustRegister(Algorithm{
		Name: "find-best-consecutive", Aliases: []string{"consecutive"}, Kind: MinBusy,
		Classes:   []igraph.Class{igraph.ProperClique},
		Guarantee: "exact", Ratio: exactRatio, Exact: true, Ref: "Theorem 3.2, Algorithm 2", Strength: 50,
		SolveMinBusy: minBusyErr(core.FindBestConsecutive),
	})
	MustRegister(Algorithm{
		Name: "one-sided-greedy", Aliases: []string{"onesided"}, Kind: MinBusy,
		Classes:   []igraph.Class{igraph.OneSidedClique},
		Guarantee: "exact", Ratio: exactRatio, Exact: true, Ref: "Observation 3.1", Strength: 60,
		SolveMinBusy: minBusyErr(core.OneSidedGreedy),
	})
	MustRegister(Algorithm{
		Name: "exact", Aliases: []string{"exact-min-busy"}, Kind: MinBusy,
		Classes:   []igraph.Class{igraph.General},
		Guarantee: "exact (n ≤ 18)", Ratio: exactRatio, Exact: true, Oracle: true, Ref: "subset DP oracle",
		SolveMinBusy: exact.MinBusyCtx,
	})

	// MaxThroughput algorithms.
	MustRegister(Algorithm{
		Name: "greedy-throughput", Aliases: []string{"greedy"}, Kind: MaxThroughput,
		Classes:   []igraph.Class{igraph.General},
		Guarantee: "heuristic", Ref: "general fallback (open question)", Strength: 10,
		SolveThroughput: func(_ context.Context, in job.Instance, budget int64) (core.Schedule, error) {
			return core.GreedyThroughput(in, budget), nil
		},
	})
	MustRegister(Algorithm{
		Name: "clique-throughput", Kind: MaxThroughput,
		Classes:   []igraph.Class{igraph.Clique},
		Guarantee: "4", Ratio: cliqueThroughputRatio, Ref: "Theorem 4.1, Algorithms 5–6", Strength: 30,
		SolveThroughput: tput(core.CliqueThroughput),
	})
	MustRegister(Algorithm{
		Name: "most-weight-consecutive", Kind: MaxThroughput,
		Classes:   []igraph.Class{igraph.ProperClique},
		Guarantee: "exact (weighted)", Ratio: exactRatio, Weighted: true, Exact: true, Ref: "Section 5 extension", Strength: 45,
		SolveThroughput: tput(core.MostWeightConsecutive),
	})
	MustRegister(Algorithm{
		Name: "most-throughput-consecutive", Kind: MaxThroughput,
		Classes:   []igraph.Class{igraph.ProperClique},
		Guarantee: "exact", Ratio: exactRatio, Exact: true, Ref: "Theorem 4.2", Strength: 50,
		SolveThroughput: tput(core.MostThroughputConsecutive),
	})
	MustRegister(Algorithm{
		Name: "one-sided-weight-throughput", Kind: MaxThroughput,
		Classes:   []igraph.Class{igraph.OneSidedClique},
		Guarantee: "exact (weighted)", Ratio: exactRatio, Weighted: true, Exact: true, Ref: "Section 5 extension", Strength: 55,
		SolveThroughput: tput(core.OneSidedWeightThroughput),
	})
	MustRegister(Algorithm{
		Name: "one-sided-throughput", Kind: MaxThroughput,
		Classes:   []igraph.Class{igraph.OneSidedClique},
		Guarantee: "exact", Ratio: exactRatio, Exact: true, Ref: "Proposition 4.1", Strength: 60,
		SolveThroughput: tput(core.OneSidedThroughput),
	})
	MustRegister(Algorithm{
		Name: "exact-throughput", Aliases: []string{"throughput-exact"}, Kind: MaxThroughput,
		Classes:   []igraph.Class{igraph.General},
		Guarantee: "exact (n ≤ 18)", Ratio: exactRatio, Exact: true, Oracle: true, Ref: "subset DP oracle",
		SolveThroughput: exact.MaxThroughputCtx,
	})
	MustRegister(Algorithm{
		Name: "exact-weight-throughput", Aliases: []string{"weight-exact"}, Kind: MaxThroughput,
		Classes:   []igraph.Class{igraph.General},
		Guarantee: "exact weighted (n ≤ 18)", Ratio: exactRatio, Weighted: true, Exact: true, Oracle: true, Ref: "subset DP oracle",
		SolveThroughput: exact.MaxWeightThroughputCtx,
	})

	// Two-dimensional MinBusy algorithms (Section 3.4).
	MustRegister(Algorithm{
		Name: "naive-2d", Aliases: []string{"naive", "naive-per-job-2d"}, Kind: MinBusy2D,
		Classes:   []igraph.Class{igraph.General},
		Guarantee: "g", Ratio: gRatio, Ref: "per-job baseline", Strength: 0,
		SolveRect: func(_ context.Context, in job.RectInstance) (core.RectSchedule, error) {
			return core.NaivePerJob2D(in), nil
		},
	})
	MustRegister(Algorithm{
		Name: "first-fit-2d", Aliases: []string{"ff2d"}, Kind: MinBusy2D,
		Classes:   []igraph.Class{igraph.General},
		Guarantee: "6γ₁+3 … 6γ₁+4", Ref: "Lemma 3.5, Algorithm 3", Strength: 10,
		SolveRect: func(_ context.Context, in job.RectInstance) (core.RectSchedule, error) {
			return core.FirstFit2D(in), nil
		},
	})
	MustRegister(Algorithm{
		Name: "bucket-first-fit", Aliases: []string{"bucket"}, Kind: MinBusy2D,
		Classes:   []igraph.Class{igraph.General},
		Guarantee: "min(g, O(log min(γ₁,γ₂)))", Ref: "Theorem 3.3, Algorithm 4 (β = 3.3)", Strength: 20,
		SolveRect: func(_ context.Context, in job.RectInstance) (core.RectSchedule, error) {
			return core.BucketFirstFitAuto(in)
		},
	})
	MustRegister(Algorithm{
		Name: "exact-2d", Aliases: []string{"exact-rect"}, Kind: MinBusy2D,
		Classes:   []igraph.Class{igraph.General},
		Guarantee: "exact (n ≤ 7)", Ratio: exactRatio, Exact: true, Oracle: true,
		Ref:       "exhaustive rectangle assignment oracle",
		SolveRect: exact.MinBusyRectCtx,
	})

	// Online strategies. Strength orders the auto pick: FirstFit tracks
	// the offline cost closest on stochastic arrivals, Buckets bounds the
	// stretch of mixed-length machines, Naive is the g-competitive floor.
	MustRegister(Algorithm{
		Name: "online-naive", Aliases: []string{"naive"}, Kind: Online,
		Classes:   []igraph.Class{igraph.General},
		Guarantee: "g-competitive", Ratio: gRatio, Ref: "online Proposition 2.1 baseline", Strength: 0,
		NewStrategy: online.Naive,
	})
	MustRegister(Algorithm{
		Name: "online-buckets", Aliases: []string{"buckets"}, Kind: Online,
		Classes:   []igraph.Class{igraph.General},
		Guarantee: "empirical (doubling length classes)", Ref: "Albers–van der Heijden-style bucketing", Strength: 10,
		NewStrategy: online.Buckets,
	})
	MustRegister(Algorithm{
		Name: "online-firstfit", Aliases: []string{"firstfit"}, Kind: Online,
		Classes:   []igraph.Class{igraph.General},
		Guarantee: "empirical (Ω(g) adversarial lower bound)", Ref: "online FirstFit", Strength: 20,
		NewStrategy: online.FirstFit,
	})
	MustRegister(Algorithm{
		Name: "online-bestfit", Aliases: []string{"bestfit"}, Kind: Online,
		Classes:   []igraph.Class{igraph.General},
		Guarantee: "empirical (marginal-cost greedy)", Ref: "online BestFit (min busy-time extension)", Strength: 30,
		NewStrategy: online.BestFit,
	})
	MustRegister(Algorithm{
		Name: "online-budget", Aliases: []string{"budget", "admission"}, Kind: Online,
		Classes:   []igraph.Class{igraph.General},
		Guarantee: "empirical (BestFit + weighted budget admission; never overspends)",
		Ref:       "weighted online throughput with admission control (Section 5 weights)", Strength: 5,
		NewStrategy: func() online.Strategy { return online.Budgeted(0) },
	})
}
