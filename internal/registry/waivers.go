package registry

// UnregisteredOK lists exported constructor-shaped functions of the
// algorithm packages that deliberately have no registry entry, each with
// the reason. busylint/registryhygiene reads this literal: a constructor
// must either be referenced from this package (directly or via its Ctx
// variant) or appear here with a non-empty reason, and entries for
// registered or nonexistent constructors are flagged as stale, so the
// list can never drift from the code.
var UnregisteredOK = map[string]string{
	"repro/internal/core.NewSchedule":            "empty-schedule constructor used by every algorithm; not an algorithm itself",
	"repro/internal/core.BucketFirstFit":         "fixed-β building block; registered through BucketFirstFitAuto, which picks β and transposes",
	"repro/internal/core.SingleCut":              "deliberately weakened single-offset cut, exposed only for the E14 ablation against BestCut",
	"repro/internal/core.CliqueSetCoverModified": "modified-weight half of clique-set-cover, exposed only for the E14 ablation",
	"repro/internal/core.CliqueSetCoverPlain":    "plain-span half of clique-set-cover, exposed only for the E14 ablation",
	"repro/internal/core.CliqueAlg1":             "large-throughput half of clique-throughput (Lemma 4.1); CliqueThroughput takes the better of the two",
	"repro/internal/core.CliqueAlg2":             "small-throughput half of clique-throughput (Lemma 4.2); CliqueThroughput takes the better of the two",
}
