package registry_test

import (
	"context"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/igraph"
	"repro/internal/job"
	"repro/internal/registry"
	"repro/internal/workload"
)

// TestRegistryRoundTrip checks that every registered algorithm resolves
// back to itself through Lookup (canonical name) and LookupKind (every
// alias).
func TestRegistryRoundTrip(t *testing.T) {
	algs := registry.List()
	if len(algs) < 15 {
		t.Fatalf("registry holds %d algorithms, expected the full built-in catalogue", len(algs))
	}
	for _, a := range algs {
		got, err := registry.Lookup(a.Name)
		if err != nil {
			t.Fatalf("Lookup(%q): %v", a.Name, err)
		}
		if got.Name != a.Name || got.Kind != a.Kind {
			t.Errorf("Lookup(%q) = %q (%s), want %q (%s)", a.Name, got.Name, got.Kind, a.Name, a.Kind)
		}
		for _, alias := range a.Aliases {
			got, err := registry.LookupKind(a.Kind, alias)
			if err != nil {
				t.Fatalf("LookupKind(%s, %q): %v", a.Kind, alias, err)
			}
			if got.Name != a.Name {
				t.Errorf("LookupKind(%s, %q) = %q, want %q", a.Kind, alias, got.Name, a.Name)
			}
		}
	}
}

// TestRegistryLookupErrors checks the two error shapes: an unknown name
// lists the available algorithms, and an alias shared across kinds is
// ambiguous without a kind.
func TestRegistryLookupErrors(t *testing.T) {
	_, err := registry.Lookup("no-such-algorithm")
	if err == nil {
		t.Fatal("unknown name accepted")
	}
	if !strings.Contains(err.Error(), "first-fit") {
		t.Errorf("error does not list available algorithms: %v", err)
	}
	// "naive" aliases naive-per-job, naive-2d and online-naive.
	if _, err := registry.Lookup("naive"); err == nil || !strings.Contains(err.Error(), "ambiguous") {
		t.Errorf("cross-kind alias not reported ambiguous: %v", err)
	}
	if _, err := registry.LookupKind(registry.MinBusy, "naive"); err != nil {
		t.Errorf("kind-scoped alias failed: %v", err)
	}
	_, err = registry.LookupKind(registry.Online, "no-such-strategy")
	if err == nil || !strings.Contains(err.Error(), "online-firstfit") {
		t.Errorf("online lookup error does not list strategies: %v", err)
	}
}

// TestRegistryForStrongest pins For's choice per (kind, class) to the
// paper's dispatch table.
func TestRegistryForStrongest(t *testing.T) {
	cases := []struct {
		kind  registry.Kind
		class igraph.Class
		want  string
	}{
		{registry.MinBusy, igraph.OneSidedClique, "one-sided-greedy"},
		{registry.MinBusy, igraph.ProperClique, "find-best-consecutive"},
		{registry.MinBusy, igraph.Clique, "clique-matching"},
		{registry.MinBusy, igraph.Proper, "best-cut"},
		{registry.MinBusy, igraph.General, "first-fit"},
		{registry.MaxThroughput, igraph.OneSidedClique, "one-sided-throughput"},
		{registry.MaxThroughput, igraph.ProperClique, "most-throughput-consecutive"},
		{registry.MaxThroughput, igraph.Clique, "clique-throughput"},
		{registry.MaxThroughput, igraph.Proper, "greedy-throughput"},
		{registry.MaxThroughput, igraph.General, "greedy-throughput"},
		{registry.MinBusy2D, igraph.General, "bucket-first-fit"},
		{registry.Online, igraph.General, "online-bestfit"},
	}
	for _, c := range cases {
		got, err := registry.For(c.kind, c.class)
		if err != nil {
			t.Fatalf("For(%s, %s): %v", c.kind, c.class, err)
		}
		if got.Name != c.want {
			t.Errorf("For(%s, %s) = %q, want %q", c.kind, c.class, got.Name, c.want)
		}
		if got.Oracle {
			t.Errorf("For(%s, %s) returned the oracle %q", c.kind, c.class, got.Name)
		}
	}
}

// TestRegistryForAllChain checks the fallback chain is strength-ordered
// and oracle-free, and that class hierarchy applies (a proper clique
// instance may use clique and proper algorithms, but not vice versa).
func TestRegistryForAllChain(t *testing.T) {
	chain := registry.ForAll(registry.MinBusy, igraph.Clique)
	var names []string
	for _, a := range chain {
		if a.Oracle {
			t.Errorf("oracle %q in auto chain", a.Name)
		}
		names = append(names, a.Name)
	}
	want := []string{"clique-matching", "clique-set-cover", "first-fit", "first-fit-fast", "naive-per-job"}
	if strings.Join(names, ",") != strings.Join(want, ",") {
		t.Errorf("clique chain = %v, want %v", names, want)
	}

	for _, a := range registry.ForAll(registry.MinBusy, igraph.ProperClique) {
		if a.Name == "one-sided-greedy" {
			t.Error("one-sided algorithm offered for a plain proper clique")
		}
	}
	for _, a := range registry.ForAll(registry.MinBusy, igraph.General) {
		for _, c := range a.Classes {
			if c != igraph.General {
				t.Errorf("class-restricted %q offered for a general instance", a.Name)
			}
		}
	}
}

// TestRegistryForMatchesAutoDispatch verifies on randomized connected
// instances that walking the registry chain reproduces exactly the
// algorithm core.MinBusyAuto / core.ThroughputAuto chose.
func TestRegistryForMatchesAutoDispatch(t *testing.T) {
	ctx := context.Background()
	type gen struct {
		name string
		make func(seed int64, g int) job.Instance
	}
	cfgFor := func(g int) workload.Config {
		return workload.Config{N: 12, G: g, MaxTime: 120, MaxLen: 40}
	}
	cases := []gen{
		{"general", func(seed int64, g int) job.Instance { return workload.General(seed, cfgFor(g)) }},
		{"proper", func(seed int64, g int) job.Instance { return workload.Proper(seed, cfgFor(g)) }},
		{"clique", func(seed int64, g int) job.Instance { return workload.Clique(seed, cfgFor(g)) }},
		{"proper-clique", func(seed int64, g int) job.Instance { return workload.ProperClique(seed, cfgFor(g)) }},
		{"one-sided", func(seed int64, g int) job.Instance { return workload.OneSided(seed, cfgFor(g), true) }},
	}
	for _, c := range cases {
		for _, g := range []int{2, 3} {
			for seed := int64(0); seed < 10; seed++ {
				in := c.make(seed, g)
				if len(igraph.SplitComponents(in)) > 1 {
					continue // component merging is the Solver's job
				}
				class := igraph.Classify(in.Jobs)

				wantSched, wantName := core.MinBusyAuto(in)
				gotName := ""
				var gotCost int64
				for _, alg := range registry.ForAll(registry.MinBusy, class) {
					if s, err := alg.SolveMinBusy(ctx, in); err == nil {
						gotName, gotCost = alg.Name, s.Cost()
						break
					}
				}
				if gotName != wantName {
					t.Errorf("%s g=%d seed=%d: chain chose %q, auto chose %q", c.name, g, seed, gotName, wantName)
				}
				if gotCost != wantSched.Cost() {
					t.Errorf("%s g=%d seed=%d: chain cost %d, auto cost %d", c.name, g, seed, gotCost, wantSched.Cost())
				}

				budget := in.TotalLen() / 2
				wantTS, wantTName := core.ThroughputAuto(in, budget)
				gotTName := ""
				var gotTput int
				for _, alg := range registry.ForAll(registry.MaxThroughput, class) {
					if s, err := alg.SolveThroughput(ctx, in, budget); err == nil {
						gotTName, gotTput = alg.Name, s.Throughput()
						break
					}
				}
				if gotTName != wantTName {
					t.Errorf("%s g=%d seed=%d: throughput chain chose %q, auto chose %q", c.name, g, seed, gotTName, wantTName)
				}
				if gotTput != wantTS.Throughput() {
					t.Errorf("%s g=%d seed=%d: throughput chain scheduled %d, auto %d", c.name, g, seed, gotTput, wantTS.Throughput())
				}
			}
		}
	}
}

// TestRegistryRegisterRejectsBadEntries covers the registration guards.
func TestRegistryRegisterRejectsBadEntries(t *testing.T) {
	if err := registry.Register(registry.Algorithm{}); err == nil {
		t.Error("nameless algorithm accepted")
	}
	if err := registry.Register(registry.Algorithm{Name: "hookless", Kind: registry.MinBusy}); err == nil {
		t.Error("hookless algorithm accepted")
	}
	dup := registry.Algorithm{Name: "first-fit", Kind: registry.MinBusy,
		SolveMinBusy: func(ctx context.Context, in job.Instance) (core.Schedule, error) {
			return core.Schedule{}, nil
		}}
	if err := registry.Register(dup); err == nil {
		t.Error("duplicate canonical name accepted")
	}
	aliasClash := dup
	aliasClash.Name = "totally-new"
	aliasClash.Aliases = []string{"firstfit"}
	if err := registry.Register(aliasClash); err == nil {
		t.Error("alias collision within kind accepted")
	}
	nameClash := dup
	nameClash.Name = "naive" // existing alias of naive-per-job in MinBusy
	if err := registry.Register(nameClash); err == nil {
		t.Error("canonical name colliding with same-kind alias accepted")
	}
	wrongHook := registry.Algorithm{Name: "wrong-hook", Kind: registry.Online,
		SolveMinBusy: dup.SolveMinBusy}
	if err := registry.Register(wrongHook); err == nil {
		t.Error("kind/hook mismatch accepted")
	}
}

// TestRegistryKindStrings pins the kind names used in CLI errors.
func TestRegistryKindStrings(t *testing.T) {
	want := map[registry.Kind]string{
		registry.MinBusy:       "min-busy",
		registry.MaxThroughput: "max-throughput",
		registry.MinBusy2D:     "min-busy-2d",
		registry.Online:        "online",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), k.String(), s)
		}
	}
	if names := registry.Names(registry.Online); len(names) != 5 {
		t.Errorf("online names = %v, want 5 strategies", names)
	}
}
