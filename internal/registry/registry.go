// Package registry is the central algorithm registry of the library.
// Every MinBusy, MaxThroughput, two-dimensional and online algorithm
// registers here with a name, problem kind, applicable instance classes
// and approximation guarantee. Lookup, For and List replace the
// per-caller algorithm-name switches: the CLIs resolve user input
// through LookupKind, the Solver's auto dispatch walks ForAll in
// strength order, and documentation tables render straight from List.
//
// The registry is populated at init time by builtins.go; Register is
// exported so future subsystems (e.g. a busyd serving layer loading
// plugins) can add algorithms without touching the dispatch code.
package registry

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/igraph"
	"repro/internal/job"
	"repro/internal/online"
)

// Kind is the problem family an algorithm solves.
type Kind int

const (
	// MinBusy schedules every job, minimizing total machine busy time.
	MinBusy Kind = iota
	// MaxThroughput schedules a maximum subset of jobs within a
	// busy-time budget.
	MaxThroughput
	// MinBusy2D is the two-dimensional (Section 3.4) MinBusy variant on
	// time × day rectangles.
	MinBusy2D
	// Online is the arrival-order online MinBusy variant: placements are
	// irrevocable and strategies see only the currently-open machines.
	Online
)

// String names the kind for reports and error messages.
func (k Kind) String() string {
	switch k {
	case MinBusy:
		return "min-busy"
	case MaxThroughput:
		return "max-throughput"
	case MinBusy2D:
		return "min-busy-2d"
	case Online:
		return "online"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Algorithm is one registered solver: identification, the metadata that
// drives dispatch and documentation, and exactly one solve hook matching
// its Kind.
type Algorithm struct {
	// Name is the canonical, globally unique algorithm name. It equals
	// the name the auto dispatchers historically reported (e.g.
	// "find-best-consecutive"), so results stay comparable across PRs.
	Name string
	// Aliases are alternate names accepted by LookupKind — the short CLI
	// spellings ("consecutive", "ff2d"). Aliases are unique per kind but
	// may repeat across kinds ("naive").
	Aliases []string
	// Kind is the problem family the algorithm solves.
	Kind Kind
	// Classes lists the instance classes the algorithm requires; any one
	// suffices, honoring the class hierarchy (a proper clique instance
	// satisfies a requirement of Proper or of Clique). Empty means the
	// algorithm accepts every instance.
	Classes []igraph.Class
	// Guarantee is the human-readable approximation guarantee.
	Guarantee string
	// Ratio is the machine-checkable counterpart of Guarantee: the proven
	// approximation factor as a function of the machine capacity g. For
	// min-busy kinds it bounds cost ≤ Ratio(g)·OPT; for max-throughput it
	// bounds the scheduled value ≥ OPT/Ratio(g). Exact algorithms return 1.
	// A nil Ratio claims no proven factor (heuristic or empirical-only
	// guarantees) and the conformance harness skips the oracle comparison.
	Ratio func(g int) float64
	// Weighted marks max-throughput algorithms whose objective is total
	// scheduled weight rather than job count; verification compares them
	// against the weighted oracle.
	Weighted bool
	// MinG and MaxG bound the machine capacities the algorithm accepts
	// (0 means unbounded) — the machine-readable form of restrictions
	// like clique-matching's g = 2, so verification can distinguish a
	// legitimate capacity rejection from a regression.
	MinG, MaxG int
	// Exact reports whether the algorithm is optimal on its classes.
	Exact bool
	// Oracle marks exponential-time solvers: reachable by name, but
	// excluded from For/ForAll so auto dispatch stays polynomial.
	Oracle bool
	// Ref cites the paper result the algorithm implements.
	Ref string
	// Strength orders algorithms within a (kind, class) pair; For picks
	// the applicable algorithm with the highest strength. Exact
	// class-specific algorithms rank above approximations, which rank
	// above baselines.
	Strength int

	// Exactly one of the following is non-nil, matching Kind.
	SolveMinBusy    func(ctx context.Context, in job.Instance) (core.Schedule, error)
	SolveThroughput func(ctx context.Context, in job.Instance, budget int64) (core.Schedule, error)
	SolveRect       func(ctx context.Context, in job.RectInstance) (core.RectSchedule, error)
	NewStrategy     func() online.Strategy
}

// AcceptsG reports whether the capacity g falls inside the algorithm's
// declared [MinG, MaxG] range (zero bounds are open).
func (a Algorithm) AcceptsG(g int) bool {
	if a.MinG > 0 && g < a.MinG {
		return false
	}
	if a.MaxG > 0 && g > a.MaxG {
		return false
	}
	return true
}

// AppliesTo reports whether the algorithm accepts instances of the
// detected class.
func (a Algorithm) AppliesTo(detected igraph.Class) bool {
	if len(a.Classes) == 0 {
		return true
	}
	for _, req := range a.Classes {
		if classSatisfies(detected, req) {
			return true
		}
	}
	return false
}

// classSatisfies reports whether an instance detected as class d meets a
// requirement of class req, following the hierarchy of Section 2: every
// proper clique is proper and a clique; every one-sided clique is a
// clique (but not necessarily proper); everything satisfies General.
func classSatisfies(d, req igraph.Class) bool {
	switch req {
	case igraph.General:
		return true
	case igraph.Proper:
		return d == igraph.Proper || d == igraph.ProperClique
	case igraph.Clique:
		return d == igraph.Clique || d == igraph.ProperClique || d == igraph.OneSidedClique
	case igraph.ProperClique:
		return d == igraph.ProperClique
	case igraph.OneSidedClique:
		return d == igraph.OneSidedClique
	default:
		return false
	}
}

var (
	mu     sync.RWMutex
	byName = map[string]Algorithm{}
	all    []Algorithm
	// chains memoizes ForAll per (kind, class): dispatch runs once per
	// solve request, so the serving hot path would otherwise re-sort the
	// registry on every call. Register invalidates it.
	chains = map[chainKey][]Algorithm{}
)

type chainKey struct {
	kind  Kind
	class igraph.Class
}

// Register adds an algorithm to the registry. It errors on an empty or
// duplicate canonical name, a name or alias colliding with an existing
// same-kind entry's name or aliases, or a missing/mismatched solve hook.
func Register(a Algorithm) error {
	if a.Name == "" {
		return fmt.Errorf("registry: algorithm has no name")
	}
	if err := checkHook(a); err != nil {
		return err
	}
	mu.Lock()
	defer mu.Unlock()
	if _, dup := byName[a.Name]; dup {
		return fmt.Errorf("registry: duplicate algorithm name %q", a.Name)
	}
	for _, existing := range all {
		if existing.Kind != a.Kind {
			continue
		}
		if containsString(existing.Aliases, a.Name) {
			return fmt.Errorf("registry: name %q collides with an alias of %q (kind %s)", a.Name, existing.Name, a.Kind)
		}
		for _, alias := range a.Aliases {
			if alias == existing.Name || containsString(existing.Aliases, alias) {
				return fmt.Errorf("registry: alias %q of %q collides with %q (kind %s)", alias, a.Name, existing.Name, a.Kind)
			}
		}
	}
	byName[a.Name] = a
	all = append(all, a)
	chains = map[chainKey][]Algorithm{}
	return nil
}

// MustRegister is Register for init-time registration of built-ins,
// where a failure is a programmer error.
func MustRegister(a Algorithm) {
	if err := Register(a); err != nil {
		panic(err)
	}
}

func checkHook(a Algorithm) error {
	hooks := 0
	if a.SolveMinBusy != nil {
		hooks++
	}
	if a.SolveThroughput != nil {
		hooks++
	}
	if a.SolveRect != nil {
		hooks++
	}
	if a.NewStrategy != nil {
		hooks++
	}
	if hooks != 1 {
		return fmt.Errorf("registry: algorithm %q must set exactly one solve hook, has %d", a.Name, hooks)
	}
	ok := false
	switch a.Kind {
	case MinBusy:
		ok = a.SolveMinBusy != nil
	case MaxThroughput:
		ok = a.SolveThroughput != nil
	case MinBusy2D:
		ok = a.SolveRect != nil
	case Online:
		ok = a.NewStrategy != nil
	}
	if !ok {
		return fmt.Errorf("registry: algorithm %q solve hook does not match kind %s", a.Name, a.Kind)
	}
	return nil
}

// Lookup resolves a canonical algorithm name across all kinds, falling
// back to aliases when the name is not canonical. An alias shared by
// several kinds ("naive") is ambiguous without a kind; use LookupKind.
func Lookup(name string) (Algorithm, error) {
	mu.RLock()
	defer mu.RUnlock()
	if a, ok := byName[name]; ok {
		return a, nil
	}
	var matches []Algorithm
	for _, a := range all {
		if containsString(a.Aliases, name) {
			matches = append(matches, a)
		}
	}
	switch len(matches) {
	case 1:
		return matches[0], nil
	case 0:
		return Algorithm{}, fmt.Errorf("registry: unknown algorithm %q; available: %s", name, strings.Join(namesLocked(-1), " "))
	default:
		opts := make([]string, len(matches))
		for i, m := range matches {
			opts[i] = fmt.Sprintf("%s (%s)", m.Name, m.Kind)
		}
		return Algorithm{}, fmt.Errorf("registry: alias %q is ambiguous between %s; use a canonical name", name, strings.Join(opts, ", "))
	}
}

// LookupKind resolves a name or alias within one problem kind — the
// entry point the CLIs use, so a bad -algo value reports the full list
// of registered algorithms instead of a hand-maintained usage string.
func LookupKind(kind Kind, name string) (Algorithm, error) {
	mu.RLock()
	defer mu.RUnlock()
	for _, a := range all {
		if a.Kind != kind {
			continue
		}
		if a.Name == name || containsString(a.Aliases, name) {
			return a, nil
		}
	}
	return Algorithm{}, fmt.Errorf("registry: unknown %s algorithm %q; available: %s", kind, name, strings.Join(namesLocked(kind), " "))
}

// For returns the strongest registered algorithm applicable to the
// detected instance class, excluding exponential oracles. It mirrors the
// choice MinBusyAuto/ThroughputAuto make on instances where their first
// choice applies unconditionally.
func For(kind Kind, class igraph.Class) (Algorithm, error) {
	chain := ForAll(kind, class)
	if len(chain) == 0 {
		return Algorithm{}, fmt.Errorf("registry: no %s algorithm applies to class %s", kind, class)
	}
	return chain[0], nil
}

// ForAll returns every applicable non-oracle algorithm for the detected
// class, strongest first — the fallback chain auto dispatch walks when a
// stronger algorithm rejects an instance (e.g. clique-matching with
// g ≠ 2 falls back to clique-set-cover, then first-fit). The returned
// slice is memoized and shared; callers must treat it as read-only.
func ForAll(kind Kind, class igraph.Class) []Algorithm {
	key := chainKey{kind, class}
	mu.RLock()
	chain, ok := chains[key]
	mu.RUnlock()
	if ok {
		return chain
	}
	mu.Lock()
	defer mu.Unlock()
	if chain, ok := chains[key]; ok {
		return chain
	}
	for _, a := range all {
		if a.Kind == kind && !a.Oracle && a.AppliesTo(class) {
			chain = append(chain, a)
		}
	}
	sort.SliceStable(chain, func(i, j int) bool {
		if chain[i].Strength != chain[j].Strength {
			return chain[i].Strength > chain[j].Strength
		}
		return chain[i].Name < chain[j].Name
	})
	chains[key] = chain
	return chain
}

// List returns every registered algorithm, ordered by kind, then
// strength (strongest first), then name — ready for documentation tables
// and -list output.
func List() []Algorithm {
	mu.RLock()
	defer mu.RUnlock()
	out := append([]Algorithm(nil), all...)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Kind != out[j].Kind {
			return out[i].Kind < out[j].Kind
		}
		if out[i].Strength != out[j].Strength {
			return out[i].Strength > out[j].Strength
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Names returns the sorted canonical names of one kind's algorithms.
func Names(kind Kind) []string {
	mu.RLock()
	defer mu.RUnlock()
	return namesLocked(kind)
}

// namesLocked lists canonical names under mu; kind < 0 means all kinds.
func namesLocked(kind Kind) []string {
	var names []string
	for _, a := range all {
		if kind < 0 || a.Kind == kind {
			names = append(names, a.Name)
		}
	}
	sort.Strings(names)
	return names
}

func containsString(xs []string, s string) bool {
	for _, x := range xs {
		if x == s {
			return true
		}
	}
	return false
}
