package registry_test

import (
	"sync"
	"testing"

	"repro/internal/igraph"
	"repro/internal/registry"
)

// TestStressRegistryReads runs every read path concurrently. The
// interesting surface is ForAll/For's memoized dispatch chains — a
// double-checked RLock-then-Lock upgrade — which `go test -race` (the
// CI stress step) checks for torn publication. The test is read-only on
// purpose: registering here would disturb other tests' view of the
// global registry (Names counts, round-trip listings).
func TestStressRegistryReads(t *testing.T) {
	names := registry.Names(registry.Online)
	if len(names) == 0 {
		t.Fatal("no online strategies registered")
	}
	kinds := []registry.Kind{registry.MinBusy, registry.MaxThroughput, registry.MinBusy2D, registry.Online}
	classes := []igraph.Class{igraph.General, igraph.Proper, igraph.Clique}

	const workers = 8
	const iters = 2000
	var wg sync.WaitGroup
	errc := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				kind := kinds[(w+i)%len(kinds)]
				class := classes[i%len(classes)]
				if algs := registry.List(); len(algs) == 0 {
					errc <- errEmpty("List")
					return
				}
				if _, err := registry.LookupKind(registry.Online, names[i%len(names)]); err != nil {
					errc <- err
					return
				}
				// For can legitimately miss (no algorithm for a kind and
				// class); the point is the memoization race, not the hit.
				_, _ = registry.For(kind, class)
				_ = registry.ForAll(kind, class)
				_ = registry.Names(kind)
			}
		}(w)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

type errEmpty string

func (e errEmpty) Error() string { return string(e) + " returned no algorithms" }
