// Package trace is the repo's zero-dependency hierarchical span
// subsystem: a solve request opens a root span, each phase (registry
// dispatch, lower bound, placement, local search, reopt repair,
// certification) opens a child, and the finished tree is snapshotted
// into a plain-data Node that travels on Result.Trace, the wire, the
// /debug/traces ring and the per-phase histograms.
//
// Tracing is sampling-aware and nil-safe by construction: Start
// returns a nil *Span unless the context was explicitly enabled (the
// server enables every request; library callers opt in with Enable),
// and every Span method is a no-op on nil. The disabled path costs two
// context lookups per Start — pinned by BenchmarkSolveTraced vs
// BenchmarkSolve in CI.
package trace

import (
	"context"
	"sync"
	"time"
)

type ctxKey int

const (
	spanCtxKey ctxKey = iota
	enabledCtxKey
)

// enabledInfo marks a context as traced before any span exists: the
// trace id to use (remote, from a traceparent header, or freshly
// generated) and the remote parent span id, if any.
type enabledInfo struct {
	traceID string
	parent  string
}

// Enable marks ctx as traced: the next Start on it opens a root span
// under a fresh trace id. Contexts not marked (and not already inside
// a span) trace nothing — Start returns nil and every span operation
// no-ops.
func Enable(ctx context.Context) context.Context {
	return context.WithValue(ctx, enabledCtxKey, &enabledInfo{traceID: NewTraceID()})
}

// EnableRemote marks ctx as traced under a caller-supplied trace id
// and remote parent span id — the ids carried by an incoming W3C
// traceparent header. The next Start opens a root span that joins the
// remote trace.
func EnableRemote(ctx context.Context, traceID, parentSpanID string) context.Context {
	return context.WithValue(ctx, enabledCtxKey, &enabledInfo{traceID: traceID, parent: parentSpanID})
}

// Enabled reports whether Start on ctx would record a span.
func Enabled(ctx context.Context) bool {
	if sp, _ := ctx.Value(spanCtxKey).(*Span); sp != nil {
		return true
	}
	info, _ := ctx.Value(enabledCtxKey).(*enabledInfo)
	return info != nil
}

// FromContext returns the span currently active on ctx, or nil.
func FromContext(ctx context.Context) *Span {
	sp, _ := ctx.Value(spanCtxKey).(*Span)
	return sp
}

// Start opens a span named name: a child of the span active on ctx, or
// a new root if ctx was Enabled but holds no span yet. On untraced
// contexts it returns (ctx, nil) without allocating; the nil span
// no-ops every method. The returned context carries the new span, so
// deeper calls nest under it. Callers must End the span on every path
// (enforced by the busylint spanend analyzer).
func Start(ctx context.Context, name string) (context.Context, *Span) {
	if parent, _ := ctx.Value(spanCtxKey).(*Span); parent != nil {
		sp := &Span{
			name:    name,
			traceID: parent.traceID,
			spanID:  NewSpanID(),
			start:   time.Now(),
		}
		parent.mu.Lock()
		parent.children = append(parent.children, sp)
		parent.mu.Unlock()
		return context.WithValue(ctx, spanCtxKey, sp), sp
	}
	info, _ := ctx.Value(enabledCtxKey).(*enabledInfo)
	if info == nil {
		return ctx, nil
	}
	sp := &Span{
		name:         name,
		traceID:      info.traceID,
		spanID:       NewSpanID(),
		remoteParent: info.parent,
		start:        time.Now(),
	}
	return context.WithValue(ctx, spanCtxKey, sp), sp
}

// Span is one recorded operation: a name, a wall-clock interval, string
// attributes and child spans. Spans are safe for concurrent use — batch
// workers append children to the shared batch span concurrently.
type Span struct {
	name         string
	traceID      string
	spanID       string
	remoteParent string
	start        time.Time

	mu       sync.Mutex
	ended    bool
	dur      time.Duration
	attrs    []Attr
	children []*Span
}

// Attr is one key/value annotation on a span.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// End freezes the span's duration. It is nil-safe and idempotent: the
// first call wins, so a defensive deferred End after an explicit one
// does not stretch the recorded time.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.ended {
		s.ended = true
		s.dur = time.Since(s.start)
	}
	s.mu.Unlock()
}

// SetAttr records a string attribute. Nil-safe; later values for the
// same key append rather than overwrite (snapshots keep the last).
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	s.mu.Unlock()
}

// TraceID returns the span's 32-hex trace id ("" on nil).
func (s *Span) TraceID() string {
	if s == nil {
		return ""
	}
	return s.traceID
}

// SpanID returns the span's 16-hex span id ("" on nil).
func (s *Span) SpanID() string {
	if s == nil {
		return ""
	}
	return s.spanID
}

// Snapshot converts the span subtree into plain-data Nodes. Nil-safe
// (returns nil). Snapshotting an unended span reports its duration so
// far; children are snapshotted recursively under their own locks.
func (s *Span) Snapshot() *Node {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	dur := s.dur
	if !s.ended {
		dur = time.Since(s.start)
	}
	attrs := make([]Attr, len(s.attrs))
	copy(attrs, s.attrs)
	children := make([]*Span, len(s.children))
	copy(children, s.children)
	s.mu.Unlock()

	n := &Node{
		Name:         s.name,
		TraceID:      s.traceID,
		SpanID:       s.spanID,
		ParentSpanID: s.remoteParent,
		StartUnixNS:  s.start.UnixNano(),
		DurationNS:   int64(dur),
	}
	if len(attrs) > 0 {
		n.Attrs = make(map[string]string, len(attrs))
		for _, a := range attrs {
			n.Attrs[a.Key] = a.Value
		}
	}
	for _, c := range children {
		cn := c.Snapshot()
		cn.TraceID = "" // the root carries the shared trace id once
		n.Children = append(n.Children, cn)
	}
	return n
}

// Node is the immutable snapshot of one span: what Result.Trace, the
// wire and /debug/traces carry.
type Node struct {
	Name string `json:"name"`
	// TraceID is set on the snapshot root only; ParentSpanID is the
	// remote parent from an incoming traceparent header, roots only.
	TraceID      string            `json:"trace_id,omitempty"`
	SpanID       string            `json:"span_id,omitempty"`
	ParentSpanID string            `json:"parent_span_id,omitempty"`
	StartUnixNS  int64             `json:"start_unix_ns,omitempty"`
	DurationNS   int64             `json:"duration_ns"`
	Attrs        map[string]string `json:"attrs,omitempty"`
	Children     []*Node           `json:"children,omitempty"`
}

// Duration returns the node's recorded duration.
func (n *Node) Duration() time.Duration { return time.Duration(n.DurationNS) }

// Attr returns the value of an attribute key ("" when absent or nil).
func (n *Node) Attr(key string) string {
	if n == nil {
		return ""
	}
	return n.Attrs[key]
}

// Find returns the first node named name in a pre-order walk of the
// subtree rooted at n, or nil.
func (n *Node) Find(name string) *Node {
	if n == nil {
		return nil
	}
	if n.Name == name {
		return n
	}
	for _, c := range n.Children {
		if m := c.Find(name); m != nil {
			return m
		}
	}
	return nil
}

// Walk visits every node of the subtree pre-order.
func (n *Node) Walk(fn func(*Node)) {
	if n == nil {
		return
	}
	fn(n)
	for _, c := range n.Children {
		c.Walk(fn)
	}
}
