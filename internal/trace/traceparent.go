package trace

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"strings"
)

// TraceparentHeader is the canonical W3C header name (lower-case per
// the Trace Context spec; net/http canonicalizes on the wire).
const TraceparentHeader = "traceparent"

// NewTraceID returns a random non-zero 32-hex-digit W3C trace id.
func NewTraceID() string { return randHex(16) }

// NewSpanID returns a random non-zero 16-hex-digit W3C span id.
func NewSpanID() string { return randHex(8) }

func randHex(n int) string {
	b := make([]byte, n)
	for {
		if _, err := rand.Read(b); err != nil {
			// crypto/rand never fails on the supported platforms; if it
			// ever does, a fixed non-zero id keeps tracing functional.
			for i := range b {
				b[i] = 0xff
			}
		}
		for _, c := range b {
			if c != 0 {
				return hex.EncodeToString(b)
			}
		}
	}
}

// Traceparent renders a version-00 W3C traceparent header value with
// the sampled flag set.
func Traceparent(traceID, spanID string) string {
	return "00-" + traceID + "-" + spanID + "-01"
}

// ParseTraceparent validates a W3C traceparent header value and
// returns its trace id and parent span id. Per the Trace Context spec
// it accepts any version except the reserved ff, requires lower-case
// hex, and rejects all-zero ids.
func ParseTraceparent(header string) (traceID, parentSpanID string, err error) {
	parts := strings.Split(strings.TrimSpace(header), "-")
	if len(parts) < 4 {
		return "", "", fmt.Errorf("trace: traceparent %q: need version-traceid-spanid-flags", header)
	}
	version, traceID, parentSpanID, flags := parts[0], parts[1], parts[2], parts[3]
	if !isHex(version, 2) || version == "ff" {
		return "", "", fmt.Errorf("trace: traceparent version %q invalid", version)
	}
	if version == "00" && len(parts) != 4 {
		return "", "", fmt.Errorf("trace: version-00 traceparent has %d fields, want 4", len(parts))
	}
	if !isHex(traceID, 32) || allZero(traceID) {
		return "", "", fmt.Errorf("trace: trace id %q invalid", traceID)
	}
	if !isHex(parentSpanID, 16) || allZero(parentSpanID) {
		return "", "", fmt.Errorf("trace: parent span id %q invalid", parentSpanID)
	}
	if !isHex(flags, 2) {
		return "", "", fmt.Errorf("trace: trace flags %q invalid", flags)
	}
	return traceID, parentSpanID, nil
}

func isHex(s string, n int) bool {
	if len(s) != n {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func allZero(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] != '0' {
			return false
		}
	}
	return true
}
