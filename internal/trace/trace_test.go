package trace

import (
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestDisabledContextIsNoOp(t *testing.T) {
	ctx := context.Background()
	if Enabled(ctx) {
		t.Fatal("background context reports Enabled")
	}
	ctx2, sp := Start(ctx, "solve")
	if sp != nil {
		t.Fatalf("Start on untraced context returned span %v", sp)
	}
	if ctx2 != ctx {
		t.Fatal("Start on untraced context allocated a new context")
	}
	// Every method must be nil-safe.
	sp.End()
	sp.SetAttr("k", "v")
	if sp.Snapshot() != nil {
		t.Fatal("nil span snapshot not nil")
	}
	if sp.TraceID() != "" || sp.SpanID() != "" {
		t.Fatal("nil span has ids")
	}
}

func TestEnabledSpanTree(t *testing.T) {
	ctx := Enable(context.Background())
	if !Enabled(ctx) {
		t.Fatal("Enable did not mark the context")
	}
	ctx, root := Start(ctx, "solve")
	if root == nil {
		t.Fatal("Start on enabled context returned nil span")
	}
	_, a := Start(ctx, "dispatch")
	a.End()
	cctx, b := Start(ctx, "placement")
	_, b2 := Start(cctx, "matching")
	b2.End()
	b.End()
	root.SetAttr("algorithm", "first-fit")
	root.End()

	n := root.Snapshot()
	if n.Name != "solve" || len(n.Children) != 2 {
		t.Fatalf("root = %q with %d children, want solve with 2", n.Name, len(n.Children))
	}
	if n.TraceID == "" || len(n.TraceID) != 32 {
		t.Fatalf("root trace id %q", n.TraceID)
	}
	if n.Attr("algorithm") != "first-fit" {
		t.Fatalf("algorithm attr = %q", n.Attr("algorithm"))
	}
	if n.Find("matching") == nil {
		t.Fatal("nested child missing from snapshot")
	}
	if got := n.Children[0].Name; got != "dispatch" {
		t.Fatalf("first child = %q, want dispatch (insertion order)", got)
	}
	// Sequential nested children: durations must sum to at most the root.
	var sum int64
	for _, c := range n.Children {
		sum += c.DurationNS
	}
	if sum > n.DurationNS {
		t.Fatalf("children sum %dns exceeds root %dns", sum, n.DurationNS)
	}
	count := 0
	n.Walk(func(*Node) { count++ })
	if count != 4 {
		t.Fatalf("Walk visited %d nodes, want 4", count)
	}
}

func TestEndIsIdempotent(t *testing.T) {
	_, sp := Start(Enable(context.Background()), "solve")
	sp.End()
	first := sp.Snapshot().DurationNS
	sp.End() // a defensive deferred End after the explicit one
	if got := sp.Snapshot().DurationNS; got != first {
		t.Fatalf("second End changed duration: %d -> %d", first, got)
	}
}

func TestRemoteParentPropagates(t *testing.T) {
	tid, pid := NewTraceID(), NewSpanID()
	ctx := EnableRemote(context.Background(), tid, pid)
	_, sp := Start(ctx, "request")
	sp.End()
	n := sp.Snapshot()
	if n.TraceID != tid {
		t.Fatalf("trace id %q, want remote %q", n.TraceID, tid)
	}
	if n.ParentSpanID != pid {
		t.Fatalf("parent span id %q, want remote %q", n.ParentSpanID, pid)
	}
	if sp.TraceID() != tid {
		t.Fatalf("TraceID() = %q", sp.TraceID())
	}
}

func TestConcurrentChildren(t *testing.T) {
	ctx, root := Start(Enable(context.Background()), "batch")
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, sp := Start(ctx, "solve")
			sp.SetAttr("k", "v")
			sp.End()
		}()
	}
	wg.Wait()
	root.End()
	if got := len(root.Snapshot().Children); got != 32 {
		t.Fatalf("%d children, want 32", got)
	}
}

func TestSnapshotJSONShape(t *testing.T) {
	ctx, root := Start(Enable(context.Background()), "request")
	_, sp := Start(ctx, "solve")
	sp.End()
	root.End()
	b, err := json.Marshal(root.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	s := string(b)
	for _, want := range []string{`"name":"request"`, `"trace_id"`, `"duration_ns"`, `"name":"solve"`} {
		if !strings.Contains(s, want) {
			t.Fatalf("snapshot JSON %s missing %s", s, want)
		}
	}
	// Children must not repeat the trace id.
	if strings.Count(s, `"trace_id"`) != 1 {
		t.Fatalf("trace id repeated in children: %s", s)
	}
}

func TestTraceparentRoundTrip(t *testing.T) {
	tid, sid := NewTraceID(), NewSpanID()
	header := Traceparent(tid, sid)
	gotTid, gotSid, err := ParseTraceparent(header)
	if err != nil {
		t.Fatalf("ParseTraceparent(%q): %v", header, err)
	}
	if gotTid != tid || gotSid != sid {
		t.Fatalf("round trip (%q, %q), want (%q, %q)", gotTid, gotSid, tid, sid)
	}
}

func TestParseTraceparentRejects(t *testing.T) {
	bad := []string{
		"",
		"00-abc-def-01",
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7", // missing flags
		"ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01",
		"00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01",
		"00-4BF92F3577B34DA6A3CE929D0E0E4736-00f067aa0ba902b7-01", // upper-case hex
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-extra",
	}
	for _, h := range bad {
		if _, _, err := ParseTraceparent(h); err == nil {
			t.Errorf("ParseTraceparent(%q) accepted", h)
		}
	}
	// A future version may carry extra fields; the ids must still parse.
	if _, _, err := ParseTraceparent("01-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-extra"); err != nil {
		t.Errorf("future-version traceparent rejected: %v", err)
	}
}

func TestIDShapes(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 64; i++ {
		tid, sid := NewTraceID(), NewSpanID()
		if !isHex(tid, 32) || allZero(tid) {
			t.Fatalf("trace id %q", tid)
		}
		if !isHex(sid, 16) || allZero(sid) {
			t.Fatalf("span id %q", sid)
		}
		if seen[tid] {
			t.Fatalf("duplicate trace id %q", tid)
		}
		seen[tid] = true
	}
}
