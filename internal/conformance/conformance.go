// Package conformance is the registry-driven verification harness of the
// library: for every algorithm self-registered in internal/registry it
// generates seeded random instances restricted to the algorithm's
// declared applicable classes, solves them through the public
// Solver.Solve entry point, and checks a uniform invariant suite:
//
//	(a) Result.Certificate() holds — the schedule is feasible and the
//	    reported statistics agree with it;
//	(b) the cost respects the Observation 2.1 lower bound;
//	(c) on oracle-sized instances the cost (or scheduled value) is within
//	    the registered machine-checkable guarantee Ratio(g) of the
//	    brute-force/exact oracle optimum;
//	(d) metamorphic invariants hold: permuting the job list, translating
//	    all intervals in time, and duplicating every job under doubled
//	    capacity must not break any of the above, must leave the cost of
//	    a deterministic algorithm unchanged under translation, and must
//	    obey the exact-algorithm monotonicity laws (permutation leaves
//	    the optimal cost unchanged; duplication under doubled capacity
//	    never raises the optimal cost, and doubles the optimal
//	    throughput).
//
// Failing instances are minimized by a greedy job-removal shrinker and
// reported as reproducible Go literals (see Violation.Literal), so a
// counterexample found here — or by the FuzzMinBusy/FuzzOnlineReplay
// targets, which feed decoded byte streams through the identical
// CheckInstance suite — can be pasted directly into a regression test.
//
// The harness never names algorithms: it walks registry.List(), so a new
// registration is exercised automatically. Registered algorithms are
// expected to be deterministic and translation-invariant (every paper
// algorithm is: all decisions depend on lengths, overlaps and relative
// order only); an algorithm may reject an instance outside its scope by
// returning an error, which the harness counts as a rejection rather
// than a violation.
package conformance

import (
	"context"
	"errors"
	"fmt"
	"strings"

	busytime "repro"
	"repro/internal/exact"
	"repro/internal/igraph"
	"repro/internal/job"
	"repro/internal/journal"
	"repro/internal/online"
	"repro/internal/registry"
	"repro/internal/trace"
)

// ratioSlack absorbs float rounding when comparing an integral cost
// against Ratio(g) times an integral optimum.
const ratioSlack = 1e-6

// translationDelta is the time shift applied by the translation
// metamorphic check. Any non-zero value works; a prime keeps shifted
// coordinates visibly distinct in failure reports.
const translationDelta = 1009

// ErrRejected reports that the algorithm declined the instance (e.g.
// clique-matching outside g = 2). Rejections are counted, not treated as
// violations: class-restricted algorithms legitimately refuse instances
// outside their scope.
var ErrRejected = errors.New("conformance: algorithm rejected the instance")

// Config bounds the generated instances. The defaults keep every
// instance — and its doubled duplication variant — within reach of the
// exponential oracles, so the guarantee check always runs.
type Config struct {
	// Seeds is the number of seeded instances per (algorithm, class, g).
	Seeds int
	// N is the number of jobs per generated instance. Keep 2·N ≤
	// exact.MaxN so the duplication variant stays oracle-sized.
	N int
	// Gs is the capacity sweep. It must include 2 so the g = 2-only
	// algorithms are exercised.
	Gs []int
	// MaxTime and MaxLen bound the generated coordinates.
	MaxTime, MaxLen int64
}

// DefaultConfig returns the configuration used by the conformance tests
// and the conformance experiment.
func DefaultConfig() Config {
	return Config{Seeds: 3, N: 6, Gs: []int{2, 3}, MaxTime: 60, MaxLen: 20}
}

// Violation is one shrunk counterexample: the algorithm, the violated
// property, and the minimized instance that still fails.
type Violation struct {
	Algorithm string
	Property  string
	Class     igraph.Class
	G         int
	Seed      int64
	Detail    string
	Instance  *job.Instance
	Rect      *job.RectInstance
}

// Literal renders the failing instance as a Go composite literal that
// reproduces the violation when passed back to CheckInstance (or to the
// algorithm directly).
func (v Violation) Literal() string {
	if v.Rect != nil {
		return RectGoLiteral(*v.Rect)
	}
	if v.Instance != nil {
		return GoLiteral(*v.Instance)
	}
	return ""
}

// String renders the violation with its reproduction literal.
func (v Violation) String() string {
	return fmt.Sprintf("%s: %s (class %s, g=%d, seed %d): %s\nreproduce with:\n%s",
		v.Algorithm, v.Property, v.Class, v.G, v.Seed, v.Detail, v.Literal())
}

// Outcome summarizes one algorithm's conformance run.
type Outcome struct {
	Algorithm  string
	Kind       registry.Kind
	Ref        string
	Checked    int // instances that passed the full invariant suite
	Rejected   int // instances the algorithm declined
	Violations []Violation
}

// CheckAll runs the conformance suite for every registered algorithm, in
// registry.List() order. New registrations are picked up automatically.
func CheckAll(ctx context.Context, cfg Config) ([]Outcome, error) {
	var outs []Outcome
	for _, alg := range registry.List() {
		out, err := CheckAlgorithm(ctx, alg, cfg)
		if err != nil {
			return nil, err
		}
		outs = append(outs, out)
	}
	return outs, nil
}

// CheckAlgorithm sweeps capacities, the algorithm's declared classes and
// seeds, running the per-instance invariant suite on each generated
// instance and shrinking any failure. The only error it returns is the
// context's, so a canceled run aborts instead of reporting partial
// results as clean.
func CheckAlgorithm(ctx context.Context, alg registry.Algorithm, cfg Config) (Outcome, error) {
	out := Outcome{Algorithm: alg.Name, Kind: alg.Kind, Ref: alg.Ref}
	for _, g := range cfg.Gs {
		if !alg.AcceptsG(g) {
			continue // declared capacity restriction (e.g. g = 2 only)
		}
		for _, class := range classesFor(alg) {
			for seed := int64(0); seed < int64(cfg.Seeds); seed++ {
				if err := ctx.Err(); err != nil {
					return Outcome{}, err
				}
				v, err := checkOne(ctx, alg, cfg, class, g, seed)
				if err != nil {
					return Outcome{}, err
				}
				switch {
				case v == nil:
					out.Checked++
				case v.Property == rejectedMarker:
					out.Rejected++
				default:
					out.Violations = append(out.Violations, *v)
				}
			}
		}
	}
	return out, nil
}

// rejectedMarker distinguishes a rejection from a violation inside
// checkOne's Violation plumbing; it never escapes to callers.
const rejectedMarker = "rejected"

// checkOne generates one instance and runs the invariant suite, shrinking
// on failure. It returns nil when the suite passes.
func checkOne(ctx context.Context, alg registry.Algorithm, cfg Config, class igraph.Class, g int, seed int64) (*Violation, error) {
	if alg.Kind == registry.MinBusy2D {
		rin := GenerateRect(seed, genConfig(cfg, g))
		err := CheckRectInstance(ctx, alg, rin)
		return rectViolation(ctx, alg, rin, class, g, seed, err)
	}

	in := GenerateClass(seed, class, genConfig(cfg, g))
	if alg.Kind == registry.MaxThroughput {
		in = withSeededWeights(in, seed)
	}
	err := CheckInstance(ctx, alg, in)
	switch {
	case err == nil:
		return nil, nil
	case errors.Is(err, ErrRejected):
		return &Violation{Property: rejectedMarker}, nil
	case ctx.Err() != nil:
		return nil, ctx.Err()
	}

	shrunk := Shrink(ctx, in, func(cand job.Instance) bool {
		cerr := CheckInstance(ctx, alg, cand)
		return cerr != nil && !errors.Is(cerr, ErrRejected) && ctx.Err() == nil
	})
	if ctx.Err() != nil {
		return nil, ctx.Err()
	}
	if err2 := CheckInstance(ctx, alg, shrunk); err2 != nil && !errors.Is(err2, ErrRejected) && ctx.Err() == nil {
		err = err2 // report the property the minimized instance violates
	}
	if ctx.Err() != nil {
		return nil, ctx.Err()
	}
	var ve *violationError
	property, detail := "invariant", err.Error()
	if errors.As(err, &ve) {
		property, detail = ve.property, ve.detail
	}
	return &Violation{
		Algorithm: alg.Name, Property: property, Class: class, G: g, Seed: seed,
		Detail: detail, Instance: &shrunk,
	}, nil
}

func rectViolation(ctx context.Context, alg registry.Algorithm, rin job.RectInstance, class igraph.Class, g int, seed int64, err error) (*Violation, error) {
	switch {
	case err == nil:
		return nil, nil
	case errors.Is(err, ErrRejected):
		return &Violation{Property: rejectedMarker}, nil
	case ctx.Err() != nil:
		return nil, ctx.Err()
	}
	shrunk := ShrinkRect(ctx, rin, func(cand job.RectInstance) bool {
		cerr := CheckRectInstance(ctx, alg, cand)
		return cerr != nil && !errors.Is(cerr, ErrRejected) && ctx.Err() == nil
	})
	if ctx.Err() != nil {
		return nil, ctx.Err()
	}
	if err2 := CheckRectInstance(ctx, alg, shrunk); err2 != nil && !errors.Is(err2, ErrRejected) && ctx.Err() == nil {
		err = err2
	}
	if ctx.Err() != nil {
		return nil, ctx.Err()
	}
	var ve *violationError
	property, detail := "invariant", err.Error()
	if errors.As(err, &ve) {
		property, detail = ve.property, ve.detail
	}
	return &Violation{
		Algorithm: alg.Name, Property: property, Class: class, G: g, Seed: seed,
		Detail: detail, Rect: &shrunk,
	}, nil
}

// violationError carries the property name through the error chain so
// outcomes can be grouped by property.
type violationError struct {
	property string
	detail   string
}

func (e *violationError) Error() string { return e.property + ": " + e.detail }

func violationf(property, format string, args ...interface{}) error {
	return &violationError{property: property, detail: fmt.Sprintf(format, args...)}
}

// classesFor expands an algorithm's declared classes into the generator
// sweep: an unrestricted algorithm is exercised on every class family.
func classesFor(alg registry.Algorithm) []igraph.Class {
	if len(alg.Classes) == 0 {
		return []igraph.Class{igraph.General, igraph.Proper, igraph.Clique, igraph.ProperClique, igraph.OneSidedClique}
	}
	return alg.Classes
}

// CheckInstance runs the full per-instance invariant suite for one
// registered algorithm on one 1-D instance — the identical suite behind
// CheckAlgorithm, the conformance experiment, and the fuzz targets. It
// returns nil when every invariant holds, ErrRejected (wrapped) when the
// algorithm declines the instance, the context error when ctx fires, and
// a violation error otherwise.
func CheckInstance(ctx context.Context, alg registry.Algorithm, in job.Instance) error {
	if err := in.Validate(); err != nil {
		return fmt.Errorf("%w: invalid instance: %v", ErrRejected, err)
	}
	switch alg.Kind {
	case registry.MinBusy, registry.Online:
		return checkMinBusyLike(ctx, alg, in)
	case registry.MaxThroughput:
		return checkThroughput(ctx, alg, in)
	default:
		return fmt.Errorf("conformance: CheckInstance does not handle kind %s; use CheckRectInstance", alg.Kind)
	}
}

// solve runs the pinned algorithm through the public Solver entry point
// on a trace-enabled context, so every conformance solve also exercises
// the span subsystem: the tree must exist and its durations must nest.
func solve(ctx context.Context, alg registry.Algorithm, req busytime.Request) (busytime.Result, error) {
	solver := busytime.NewSolver(busytime.WithAlgorithm(alg.Name))
	res, err := solver.Solve(trace.Enable(ctx), req)
	if err != nil {
		if ctx.Err() != nil {
			return busytime.Result{}, ctx.Err()
		}
		return busytime.Result{}, fmt.Errorf("%w: %v", ErrRejected, err)
	}
	if res.Trace == nil {
		return busytime.Result{}, violationf("trace", "traced solve returned no span tree")
	}
	if verr := checkSpanSums(res.Trace); verr != nil {
		return busytime.Result{}, verr
	}
	return res, nil
}

// checkSpanSums enforces the span-duration invariant recursively: a
// span's sequential children cannot account for more time than the span
// itself. Synthesized aggregate nodes (sums over overlapping intervals)
// are exempt by construction and carry the aggregate attribute.
func checkSpanSums(n *trace.Node) error {
	var sum int64
	for _, c := range n.Children {
		if c.Attr("aggregate") == "true" {
			continue
		}
		if err := checkSpanSums(c); err != nil {
			return err
		}
		sum += c.DurationNS
	}
	if sum > n.DurationNS {
		return violationf("trace", "span %s: children sum %dns exceeds the span's own %dns", n.Name, sum, n.DurationNS)
	}
	return nil
}

// rejectionOrViolation classifies a primary-solve failure: an algorithm
// declining an instance that sits inside its declared scope — the class
// it registered for (per AppliesTo) at a capacity it registered for
// (per AcceptsG) — is itself a conformance violation, not a skip;
// otherwise a regression that makes an algorithm error on in-scope
// inputs would silently pass as "rejected". Oracle-flagged algorithms
// are exempt (their exponential size caps are legitimate rejections the
// registry does not model), as is clique-set-cover's subset-count cap,
// which harness-sized instances never reach.
func rejectionOrViolation(alg registry.Algorithm, class igraph.Class, g int, err error) error {
	if !errors.Is(err, ErrRejected) || alg.Oracle {
		return err
	}
	if !alg.AcceptsG(g) || !alg.AppliesTo(class) {
		return err // legitimately out of the declared scope
	}
	return violationf("unexpected-rejection", "algorithm declined an in-scope instance (class %s, g=%d): %v", class, g, err)
}

// checkMinBusyLike verifies a total-schedule kind (offline MinBusy or an
// online replay): certificate, lower bound, oracle guarantee, and the
// three metamorphic transformations.
func checkMinBusyLike(ctx context.Context, alg registry.Algorithm, in job.Instance) error {
	kind := busytime.KindMinBusy
	if alg.Kind == registry.Online {
		kind = busytime.KindOnline
	}
	run := func(in job.Instance) (busytime.Result, error) {
		return solve(ctx, alg, busytime.Request{Instance: in, Kind: kind})
	}

	res, err := run(in)
	if err != nil {
		return rejectionOrViolation(alg, igraph.Classify(in.Jobs), in.G, err)
	}
	if cerr := res.Certificate(); cerr != nil {
		return violationf("certificate", "%v", cerr)
	}
	if res.Scheduled != len(in.Jobs) {
		return violationf("completeness", "scheduled %d of %d jobs", res.Scheduled, len(in.Jobs))
	}
	if res.Cost < in.LowerBound() {
		return violationf("lower-bound", "cost %d below Observation 2.1 bound %d", res.Cost, in.LowerBound())
	}

	// (c) guarantee against the exact oracle on oracle-sized instances.
	if alg.Ratio != nil && len(in.Jobs) > 0 && len(in.Jobs) <= exact.MaxN {
		opt, oerr := exact.MinBusyCtx(ctx, in)
		if oerr != nil {
			return oerr
		}
		bound := alg.Ratio(in.G) * float64(opt.Cost())
		if float64(res.Cost) > bound+ratioSlack {
			return violationf("guarantee", "cost %d exceeds %.4f = Ratio(%d)·OPT (OPT = %d)",
				res.Cost, bound, in.G, opt.Cost())
		}
		if alg.Exact && res.Cost != opt.Cost() {
			return violationf("guarantee", "exact algorithm cost %d != optimum %d", res.Cost, opt.Cost())
		}
	}

	// Online algorithms additionally honor the durable-journal invariant:
	// journal replay ≡ live session ≡ offline replay.
	if alg.Kind == registry.Online {
		if jerr := checkJournalReplay(alg, in, res); jerr != nil {
			return jerr
		}
	}

	// (d) metamorphic invariants. A variant the algorithm rejects (e.g.
	// duplication doubles g out of a g = 2-only algorithm's scope) is
	// skipped, not failed.
	if permRes, perr := run(Permute(in)); perr == nil {
		if cerr := permRes.Certificate(); cerr != nil {
			return violationf("metamorphic-permutation", "certificate after permutation: %v", cerr)
		}
		if (alg.Exact || alg.Kind == registry.Online) && permRes.Cost != res.Cost {
			return violationf("metamorphic-permutation", "cost changed %d -> %d under job permutation", res.Cost, permRes.Cost)
		}
	} else if ctx.Err() != nil {
		return ctx.Err()
	}

	if transRes, terr := run(Translate(in, translationDelta)); terr == nil {
		if cerr := transRes.Certificate(); cerr != nil {
			return violationf("metamorphic-translation", "certificate after translation: %v", cerr)
		}
		if transRes.Cost != res.Cost {
			return violationf("metamorphic-translation", "cost changed %d -> %d under time translation by %d", res.Cost, transRes.Cost, translationDelta)
		}
	} else if ctx.Err() != nil {
		return ctx.Err()
	}

	if dupRes, derr := run(Duplicate(in)); derr == nil {
		if cerr := dupRes.Certificate(); cerr != nil {
			return violationf("metamorphic-duplication", "certificate after duplication under doubled capacity: %v", cerr)
		}
		// Superimposing both copies of an optimal schedule on the same
		// machines is feasible at capacity 2g and costs the same, so the
		// doubled optimum never exceeds the original — an exact algorithm
		// must respect that monotonicity.
		if alg.Exact && dupRes.Cost > res.Cost {
			return violationf("metamorphic-duplication", "duplicated cost %d exceeds original %d (doubling capacity can only help)", dupRes.Cost, res.Cost)
		}
	} else if ctx.Err() != nil {
		return ctx.Err()
	}

	return nil
}

// checkJournalReplay is the durable-streams metamorphic invariant for
// online strategies: journaling the arrival-sorted instance through a
// session must yield a hash chain that verifies (journal.Certify replays
// and re-checks it internally) and a summary cost equal to the solver's
// — journal replay ≡ live session ≡ offline replay.
func checkJournalReplay(alg registry.Algorithm, in job.Instance, res busytime.Result) error {
	if _, budgeted := alg.NewStrategy().(online.BudgetSetter); budgeted {
		// Admission-control strategies journal only with a positive
		// budget; their journaled invariants live in the journal package's
		// own tests.
		return nil
	}
	sorted := in.SortedByStart()
	arrs := make([]journal.Arrival, len(sorted.Jobs))
	for i, j := range sorted.Jobs {
		arrs[i] = journal.ArrivalOf(j)
	}
	_, cert, err := journal.Certify("conformance", journal.OpenParams{G: in.G, Strategy: alg.Name}, arrs)
	if err != nil {
		return violationf("journal-replay", "journaled session failed to certify: %v", err)
	}
	if cert.Summary.Cost != res.Cost {
		return violationf("journal-replay", "journaled session cost %d, solver cost %d", cert.Summary.Cost, res.Cost)
	}
	if cert.Arrivals != len(in.Jobs) {
		return violationf("journal-replay", "journal holds %d arrivals for %d jobs", cert.Arrivals, len(in.Jobs))
	}
	return nil
}

// checkThroughput verifies a budgeted-throughput algorithm across two
// deterministic budgets: half the total length (a binding budget) and the
// full total length (everything fits).
func checkThroughput(ctx context.Context, alg registry.Algorithm, in job.Instance) error {
	for _, budget := range []int64{in.TotalLen() / 2, in.TotalLen()} {
		if err := checkThroughputBudget(ctx, alg, in, budget); err != nil {
			return err
		}
	}
	return nil
}

// value extracts the objective the algorithm optimizes.
func value(alg registry.Algorithm, s busytime.Schedule) int64 {
	if alg.Weighted {
		return s.WeightedThroughput()
	}
	return int64(s.Throughput())
}

func checkThroughputBudget(ctx context.Context, alg registry.Algorithm, in job.Instance, budget int64) error {
	run := func(in job.Instance) (busytime.Result, error) {
		return solve(ctx, alg, busytime.Request{Instance: in, Kind: busytime.KindMaxThroughput, Budget: budget})
	}

	res, err := run(in)
	if err != nil {
		return rejectionOrViolation(alg, igraph.Classify(in.Jobs), in.G, err)
	}
	if cerr := res.Certificate(); cerr != nil {
		return violationf("certificate", "budget %d: %v", budget, cerr)
	}
	got := value(alg, res.Schedule)

	// (c) guarantee: scheduled value within Ratio(g) of the oracle.
	var optVal int64 = -1
	if alg.Ratio != nil && len(in.Jobs) > 0 && len(in.Jobs) <= exact.MaxN {
		opt, oerr := throughputOracle(ctx, alg, in, budget)
		if oerr != nil {
			return oerr
		}
		optVal = value(alg, opt)
		if float64(got)*alg.Ratio(in.G)+ratioSlack < float64(optVal) {
			return violationf("guarantee", "budget %d: value %d below OPT/Ratio(%d) (OPT = %d)", budget, got, in.G, optVal)
		}
		if alg.Exact && got != optVal {
			return violationf("guarantee", "budget %d: exact algorithm value %d != optimum %d", budget, got, optVal)
		}
	}

	// (d) metamorphic invariants.
	if permRes, perr := run(Permute(in)); perr == nil {
		if cerr := permRes.Certificate(); cerr != nil {
			return violationf("metamorphic-permutation", "budget %d: certificate after permutation: %v", budget, cerr)
		}
		if alg.Exact && value(alg, permRes.Schedule) != got {
			return violationf("metamorphic-permutation", "budget %d: value changed %d -> %d under job permutation", budget, got, value(alg, permRes.Schedule))
		}
	} else if ctx.Err() != nil {
		return ctx.Err()
	}

	if transRes, terr := run(Translate(in, translationDelta)); terr == nil {
		if cerr := transRes.Certificate(); cerr != nil {
			return violationf("metamorphic-translation", "budget %d: certificate after translation: %v", budget, cerr)
		}
		if value(alg, transRes.Schedule) != got || transRes.Cost != res.Cost {
			return violationf("metamorphic-translation", "budget %d: (value, cost) changed (%d, %d) -> (%d, %d) under time translation",
				budget, got, res.Cost, value(alg, transRes.Schedule), transRes.Cost)
		}
	} else if ctx.Err() != nil {
		return ctx.Err()
	}

	if dupRes, derr := run(Duplicate(in)); derr == nil {
		if cerr := dupRes.Certificate(); cerr != nil {
			return violationf("metamorphic-duplication", "budget %d: certificate after duplication: %v", budget, cerr)
		}
		// Superimposing both copies of an optimal partial schedule doubles
		// the scheduled value at unchanged cost, so the doubled optimum is
		// at least twice the original — an exact algorithm must match it.
		if alg.Exact && value(alg, dupRes.Schedule) < 2*got {
			return violationf("metamorphic-duplication", "budget %d: duplicated value %d below 2× original %d", budget, value(alg, dupRes.Schedule), 2*got)
		}
	} else if ctx.Err() != nil {
		return ctx.Err()
	}

	return nil
}

// throughputOracle picks the oracle matching the algorithm's objective.
func throughputOracle(ctx context.Context, alg registry.Algorithm, in job.Instance, budget int64) (busytime.Schedule, error) {
	if alg.Weighted {
		return exact.MaxWeightThroughputCtx(ctx, in, budget)
	}
	return exact.MaxThroughputCtx(ctx, in, budget)
}

// CheckRectInstance is the 2-D counterpart of CheckInstance: certificate,
// lower bound, the exact rectangle-assignment oracle guarantee on
// oracle-sized instances (n ≤ exact.MaxRectN), and the metamorphic
// transformations.
func CheckRectInstance(ctx context.Context, alg registry.Algorithm, in job.RectInstance) error {
	if alg.Kind != registry.MinBusy2D {
		return fmt.Errorf("conformance: CheckRectInstance needs a %s algorithm, got %s", registry.MinBusy2D, alg.Kind)
	}
	if err := in.Validate(); err != nil {
		return fmt.Errorf("%w: invalid instance: %v", ErrRejected, err)
	}
	run := func(in job.RectInstance) (busytime.Result, error) {
		return solve(ctx, alg, busytime.Request{Rect: &in})
	}

	res, err := run(in)
	if err != nil {
		// 2-D instances carry no class structure; General stands in.
		return rejectionOrViolation(alg, igraph.General, in.G, err)
	}
	if cerr := res.Certificate(); cerr != nil {
		return violationf("certificate", "%v", cerr)
	}
	if res.Cost < in.LowerBound() {
		return violationf("lower-bound", "cost %d below 2-D Observation 2.1 bound %d", res.Cost, in.LowerBound())
	}

	// (c) guarantee against the exact rectangle oracle on oracle-sized
	// instances: no algorithm may beat the optimum, exact algorithms must
	// match it, and a registered Ratio(g) bounds the gap.
	if len(in.Jobs) > 0 && len(in.Jobs) <= exact.MaxRectN {
		opt, oerr := exact.MinBusyRectCtx(ctx, in)
		if oerr != nil {
			return oerr
		}
		optCost := opt.Cost()
		if res.Cost < optCost {
			return violationf("guarantee", "cost %d beats the exact 2-D optimum %d (infeasible schedule or oracle bug)", res.Cost, optCost)
		}
		if alg.Exact && res.Cost != optCost {
			return violationf("guarantee", "exact algorithm cost %d != 2-D optimum %d", res.Cost, optCost)
		}
		if alg.Ratio != nil {
			bound := alg.Ratio(in.G) * float64(optCost)
			if float64(res.Cost) > bound+ratioSlack {
				return violationf("guarantee", "cost %d exceeds %.4f = Ratio(%d)·OPT (2-D OPT = %d)", res.Cost, bound, in.G, optCost)
			}
		}
	}

	if permRes, perr := run(PermuteRect(in)); perr == nil {
		if cerr := permRes.Certificate(); cerr != nil {
			return violationf("metamorphic-permutation", "certificate after permutation: %v", cerr)
		}
	} else if ctx.Err() != nil {
		return ctx.Err()
	}

	if transRes, terr := run(TranslateRect(in, translationDelta)); terr == nil {
		if cerr := transRes.Certificate(); cerr != nil {
			return violationf("metamorphic-translation", "certificate after translation: %v", cerr)
		}
		if transRes.Cost != res.Cost {
			return violationf("metamorphic-translation", "cost changed %d -> %d under translation by %d", res.Cost, transRes.Cost, translationDelta)
		}
	} else if ctx.Err() != nil {
		return ctx.Err()
	}

	if dupRes, derr := run(DuplicateRect(in)); derr == nil {
		if cerr := dupRes.Certificate(); cerr != nil {
			return violationf("metamorphic-duplication", "certificate after duplication under doubled capacity: %v", cerr)
		}
	} else if ctx.Err() != nil {
		return ctx.Err()
	}

	return nil
}

// GoLiteral renders an instance as a self-contained Go composite literal
// (package-qualified with job and interval), ready to paste into a
// regression test.
func GoLiteral(in job.Instance) string {
	var b strings.Builder
	fmt.Fprintf(&b, "job.Instance{G: %d, Jobs: []job.Job{", in.G)
	for _, j := range in.Jobs {
		fmt.Fprintf(&b, "\n\t{ID: %d, Interval: interval.New(%d, %d), Weight: %d, Demand: %d},",
			j.ID, j.Start(), j.End(), j.Weight, j.Demand)
	}
	b.WriteString("\n}}")
	return b.String()
}

// RectGoLiteral renders a 2-D instance as a Go composite literal.
func RectGoLiteral(in job.RectInstance) string {
	var b strings.Builder
	fmt.Fprintf(&b, "job.RectInstance{G: %d, Jobs: []job.RectJob{", in.G)
	for _, j := range in.Jobs {
		fmt.Fprintf(&b, "\n\tjob.NewRectJob(%d, %d, %d, %d, %d),",
			j.ID, j.Rect.D1.Start, j.Rect.D1.End, j.Rect.D2.Start, j.Rect.D2.End)
	}
	b.WriteString("\n}}")
	return b.String()
}
