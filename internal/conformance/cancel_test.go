package conformance_test

import (
	"context"
	"errors"
	"testing"
	"time"

	busytime "repro"
	"repro/internal/workload"
)

// promptness is the generous upper bound on how long Solve may keep
// running after cancellation fires mid-instance. The uncancelled solves
// below take multiple seconds, so a pass requires the ctx checks
// threaded into the set-cover and matching inner loops to actually land.
const promptness = 2 * time.Second

// cancelMidSolve runs a pinned Solve on an instance big enough that the
// algorithm is mid-flight when the context cancels 25ms in, then asserts
// the call surfaces the cancellation promptly instead of running to
// completion.
func cancelMidSolve(t *testing.T, algorithm string, in busytime.Instance) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	timer := time.AfterFunc(25*time.Millisecond, cancel)
	defer timer.Stop()

	solver := busytime.NewSolver(busytime.WithAlgorithm(algorithm))
	start := time.Now()
	_, err := solver.Solve(ctx, busytime.Request{Instance: in})
	elapsed := time.Since(start)

	if err == nil {
		t.Fatalf("%s: Solve completed despite mid-instance cancellation (took %v); enlarge the instance or check ctx threading", algorithm, elapsed)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("%s: Solve returned %v, want context.Canceled", algorithm, err)
	}
	if elapsed > promptness {
		t.Errorf("%s: Solve took %v to notice cancellation, want < %v", algorithm, elapsed, promptness)
	}
}

// TestSolveCancelsMidSetCover covers the ROADMAP cancellation-depth gap
// for the greedy set cover: the ~4 million-subset enumeration and the
// greedy cover loops must abandon the run once ctx fires.
func TestSolveCancelsMidSetCover(t *testing.T) {
	in := workload.Clique(1, workload.Config{N: 100, G: 4, MaxTime: 2000, MaxLen: 600})
	cancelMidSolve(t, "clique-set-cover", in)
}

// TestSolveCancelsMidMatching covers the same gap for the O(V³) blossom
// matching behind the g = 2 clique algorithm.
func TestSolveCancelsMidMatching(t *testing.T) {
	in := workload.Clique(2, workload.Config{N: 600, G: 2, MaxTime: 2000, MaxLen: 600})
	cancelMidSolve(t, "clique-matching", in)
}
