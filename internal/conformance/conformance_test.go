package conformance_test

import (
	"context"
	"strings"
	"testing"

	"repro/internal/conformance"
	"repro/internal/core"
	"repro/internal/job"
	"repro/internal/registry"
)

// brokenTestDoubleRef marks deliberately broken registrations used to
// prove the harness detects violations. TestEveryRegisteredAlgorithm
// skips entries carrying it; every other registration must conform.
const brokenTestDoubleRef = "conformance: broken test double"

// TestEveryRegisteredAlgorithm is the acceptance gate of the harness:
// every algorithm name returned by registry.List() is exercised on
// seeded instances of its declared classes — note no algorithm is named
// anywhere in this test — and none may violate the invariant suite.
func TestEveryRegisteredAlgorithm(t *testing.T) {
	cfg := conformance.DefaultConfig()
	outs, err := conformance.CheckAll(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(outs), len(registry.List()); got != want {
		t.Fatalf("harness produced %d outcomes for %d registered algorithms", got, want)
	}
	for _, out := range outs {
		if out.Ref == brokenTestDoubleRef {
			continue // detection of these is asserted separately below
		}
		if out.Checked == 0 {
			t.Errorf("%s (%s): no generated instance exercised the algorithm (rejected %d)",
				out.Algorithm, out.Kind, out.Rejected)
		}
		for _, v := range out.Violations {
			t.Errorf("conformance violation:\n%s", v)
		}
	}
}

// TestDummyRegistrationIsPickedUp registers a brand-new (conformant)
// algorithm and verifies the harness exercises it with zero violations,
// proving future registrations are covered automatically.
func TestDummyRegistrationIsPickedUp(t *testing.T) {
	const name = "test-double-naive"
	if _, err := registry.Lookup(name); err != nil {
		err := registry.Register(registry.Algorithm{
			Name: name, Kind: registry.MinBusy,
			Guarantee: "g", Ratio: func(g int) float64 { return float64(g) },
			Ref: "conformance: test double", Strength: -1,
			SolveMinBusy: func(_ context.Context, in job.Instance) (core.Schedule, error) {
				return core.NaivePerJob(in), nil
			},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	outs, err := conformance.CheckAll(context.Background(), conformance.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, out := range outs {
		if out.Algorithm != name {
			continue
		}
		if out.Checked == 0 {
			t.Fatalf("dummy registration was not exercised: %+v", out)
		}
		if len(out.Violations) != 0 {
			t.Fatalf("conformant dummy flagged: %v", out.Violations[0])
		}
		return
	}
	t.Fatalf("dummy registration %q missing from CheckAll outcomes", name)
}

// TestHarnessDetectsBrokenAlgorithm registers an algorithm that falsely
// claims to be exact (it runs the naive per-job baseline) and verifies
// the harness flags it with a shrunk, reproducible counterexample.
func TestHarnessDetectsBrokenAlgorithm(t *testing.T) {
	const name = "test-double-broken-exact"
	if _, err := registry.Lookup(name); err != nil {
		err := registry.Register(registry.Algorithm{
			Name: name, Kind: registry.MinBusy,
			Guarantee: "exact (falsely claimed)", Ratio: func(int) float64 { return 1 },
			Exact: true, Ref: brokenTestDoubleRef, Strength: -2,
			SolveMinBusy: func(_ context.Context, in job.Instance) (core.Schedule, error) {
				return core.NaivePerJob(in), nil
			},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	alg, err := registry.Lookup(name)
	if err != nil {
		t.Fatal(err)
	}
	out, err := conformance.CheckAlgorithm(context.Background(), alg, conformance.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Violations) == 0 {
		t.Fatal("harness did not flag an algorithm that falsely claims optimality")
	}
	v := out.Violations[0]
	// Naive-per-job breaks the false optimality claim in two ways: the
	// oracle guarantee (two overlapping jobs pack cheaper) and the
	// duplication law (doubling capacity must not raise an optimal cost,
	// which already fails with a single job). Either is a correct catch.
	if v.Property != "guarantee" && v.Property != "metamorphic-duplication" {
		t.Errorf("violation property = %q, want guarantee or metamorphic-duplication", v.Property)
	}
	if v.Instance == nil || len(v.Instance.Jobs) == 0 {
		t.Fatal("violation carries no shrunk instance")
	}
	// The shrinker must have minimized: one job suffices for the
	// duplication law, two overlapping jobs for the guarantee.
	if got := len(v.Instance.Jobs); got > 2 {
		t.Errorf("shrunk instance has %d jobs, want <= 2", got)
	}
	if !strings.Contains(v.Literal(), "job.Instance{") {
		t.Errorf("violation literal is not a Go literal:\n%s", v.Literal())
	}
	// The emitted literal's instance must itself reproduce the failure.
	if err := conformance.CheckInstance(context.Background(), alg, *v.Instance); err == nil {
		t.Error("shrunk counterexample no longer fails the invariant suite")
	}
}

// TestKnownSetCoverCounterexample pins the fuzz-found instance on which
// the combined clique set cover exceeds the paper's Lemma 3.2 bound
// g·H_g/(H_g+g−1) while staying within the H_g bound the registry now
// claims (the modified-weight partition step loses the classical H_g
// charging argument because g·span−len is not subset-monotone). If a
// future change makes this instance meet the sharper bound again, this
// test flags that the registered Ratio can be tightened back.
func TestKnownSetCoverCounterexample(t *testing.T) {
	in := job.Instance{G: 2, Jobs: []job.Job{
		job.New(0, 127, 131),
		job.New(1, 120, 130),
	}}
	s, err := core.CliqueSetCover(in)
	if err != nil {
		t.Fatal(err)
	}
	const opt = 11                                // both jobs share one machine: span of [120,131)
	paperBound := 2.0 * 1.5 / (1.5 + 2 - 1) * opt // g·H_g/(H_g+g−1)·OPT = 13.2
	hgBound := 1.5 * opt                          // H_2·OPT = 16.5
	cost := float64(s.Cost())
	if cost <= paperBound {
		t.Errorf("counterexample now meets the Lemma 3.2 bound (cost %.0f ≤ %.1f); consider restoring the sharper registered Ratio", cost, paperBound)
	}
	if cost > hgBound {
		t.Errorf("cost %.0f exceeds even the H_g bound %.1f", cost, hgBound)
	}
	// The conformance suite must accept the instance under the registered
	// H_g ratio.
	alg, err := registry.Lookup("clique-set-cover")
	if err != nil {
		t.Fatal(err)
	}
	if err := conformance.CheckInstance(context.Background(), alg, in); err != nil {
		t.Errorf("CheckInstance rejects the pinned counterexample under the H_g ratio: %v", err)
	}
}

// TestCheckInstanceRejectsInvalid pins the rejection path: structurally
// invalid instances are counted as rejections, not violations.
func TestCheckInstanceRejectsInvalid(t *testing.T) {
	alg := registry.List()[0]
	err := conformance.CheckInstance(context.Background(), alg, job.Instance{G: 0})
	if err == nil || !strings.Contains(err.Error(), "rejected") {
		t.Fatalf("invalid instance not rejected: %v", err)
	}
}

// TestGoLiteralRoundTrips spot-checks the emitted literal shape.
func TestGoLiteralRoundTrips(t *testing.T) {
	in := job.NewInstance(2, [2]int64{0, 10}, [2]int64{5, 15})
	lit := conformance.GoLiteral(in)
	for _, want := range []string{"job.Instance{G: 2", "interval.New(0, 10)", "interval.New(5, 15)", "Weight: 1", "Demand: 1"} {
		if !strings.Contains(lit, want) {
			t.Errorf("literal missing %q:\n%s", want, lit)
		}
	}
}
