package conformance

import (
	"context"

	"repro/internal/job"
)

// maxShrinkAttempts bounds the total number of candidate evaluations so
// a pathological failing predicate cannot stall the harness. Each
// evaluation re-runs the full invariant suite, so for the instance sizes
// the harness generates the cap is never reached in practice.
const maxShrinkAttempts = 256

// Shrink minimizes a failing instance by greedy job removal: repeatedly
// drop the first job whose removal keeps the instance failing, restarting
// the scan after every successful removal, until no single-job removal
// preserves the failure. The result is 1-minimal — removing any one job
// makes the violation disappear — which is what makes emitted
// counterexamples readable. failing must be a pure predicate; Shrink
// stops early once ctx fires and returns the best instance found so far.
func Shrink(ctx context.Context, in job.Instance, failing func(job.Instance) bool) job.Instance {
	cur := in
	attempts := 0
	for {
		removed := false
		for i := 0; i < len(cur.Jobs) && len(cur.Jobs) > 1; i++ {
			if ctx.Err() != nil || attempts >= maxShrinkAttempts {
				return cur
			}
			attempts++
			cand := job.Instance{G: cur.G, Jobs: make([]job.Job, 0, len(cur.Jobs)-1)}
			cand.Jobs = append(cand.Jobs, cur.Jobs[:i]...)
			cand.Jobs = append(cand.Jobs, cur.Jobs[i+1:]...)
			if failing(cand) {
				cur = cand
				removed = true
				break
			}
		}
		if !removed {
			return cur
		}
	}
}

// ShrinkRect is Shrink for 2-D instances.
func ShrinkRect(ctx context.Context, in job.RectInstance, failing func(job.RectInstance) bool) job.RectInstance {
	cur := in
	attempts := 0
	for {
		removed := false
		for i := 0; i < len(cur.Jobs) && len(cur.Jobs) > 1; i++ {
			if ctx.Err() != nil || attempts >= maxShrinkAttempts {
				return cur
			}
			attempts++
			cand := job.RectInstance{G: cur.G, Jobs: make([]job.RectJob, 0, len(cur.Jobs)-1)}
			cand.Jobs = append(cand.Jobs, cur.Jobs[:i]...)
			cand.Jobs = append(cand.Jobs, cur.Jobs[i+1:]...)
			if failing(cand) {
				cur = cand
				removed = true
				break
			}
		}
		if !removed {
			return cur
		}
	}
}
