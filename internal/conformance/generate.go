package conformance

import (
	"repro/internal/igraph"
	"repro/internal/interval"
	"repro/internal/job"
	"repro/internal/rect"
	"repro/internal/workload"
)

// genConfig maps the harness configuration onto one workload.Config.
func genConfig(cfg Config, g int) workload.Config {
	return workload.Config{N: cfg.N, G: g, MaxTime: cfg.MaxTime, MaxLen: cfg.MaxLen}
}

// GenerateClass returns a seeded random instance of the requested class
// family, mapping each registry class onto the matching workload
// generator. Classes are hereditary, so a generated instance may
// classify as something narrower (a small random clique can happen to be
// a proper clique); that still satisfies the requested requirement under
// the Section 2 hierarchy.
func GenerateClass(seed int64, class igraph.Class, cfg workload.Config) job.Instance {
	switch class {
	case igraph.Proper:
		return workload.Proper(seed, cfg)
	case igraph.Clique:
		return workload.Clique(seed, cfg)
	case igraph.ProperClique:
		return workload.ProperClique(seed, cfg)
	case igraph.OneSidedClique:
		return workload.OneSided(seed, cfg, seed%2 == 0)
	default:
		return workload.General(seed, cfg)
	}
}

// GenerateRect returns a seeded 2-D instance for the MinBusy2D kind.
func GenerateRect(seed int64, cfg workload.Config) job.RectInstance {
	return workload.BoundedGammaRects(seed, cfg, 4)
}

// withSeededWeights assigns deterministic non-uniform weights so the
// weighted-throughput objective differs from plain job count.
func withSeededWeights(in job.Instance, seed int64) job.Instance {
	out := in.Clone()
	for i := range out.Jobs {
		out.Jobs[i].Weight = 1 + (int64(i)*13+seed*7)%5
	}
	return out
}

// Permute reverses the job list — a deterministic permutation that
// changes every position and therefore every position-based tie-break.
// IDs travel with their jobs, so the instance stays valid.
func Permute(in job.Instance) job.Instance {
	out := in.Clone()
	for i, j := 0, len(out.Jobs)-1; i < j; i, j = i+1, j-1 {
		out.Jobs[i], out.Jobs[j] = out.Jobs[j], out.Jobs[i]
	}
	return out
}

// Translate shifts every interval by delta. Cost is translation
// invariant for every registered algorithm: all decisions depend on
// lengths, overlaps and relative order only.
func Translate(in job.Instance, delta int64) job.Instance {
	out := in.Clone()
	for i := range out.Jobs {
		iv := out.Jobs[i].Interval
		out.Jobs[i].Interval = interval.New(iv.Start+delta, iv.End+delta)
	}
	return out
}

// Duplicate returns the instance with every job doubled and the capacity
// doubled, assigning fresh IDs to the copies. Superimposing two copies
// of any schedule on the same machines is feasible at capacity 2g and
// costs the same, which yields the metamorphic laws the harness checks.
func Duplicate(in job.Instance) job.Instance {
	n := len(in.Jobs)
	out := job.Instance{G: 2 * in.G, Jobs: make([]job.Job, 0, 2*n)}
	maxID := 0
	for _, j := range in.Jobs {
		if j.ID > maxID {
			maxID = j.ID
		}
	}
	out.Jobs = append(out.Jobs, in.Jobs...)
	for _, j := range in.Jobs {
		copyJob := j
		copyJob.ID = maxID + 1 + j.ID
		out.Jobs = append(out.Jobs, copyJob)
	}
	return out
}

// PermuteRect reverses the 2-D job list.
func PermuteRect(in job.RectInstance) job.RectInstance {
	out := job.RectInstance{G: in.G, Jobs: append([]job.RectJob(nil), in.Jobs...)}
	for i, j := 0, len(out.Jobs)-1; i < j; i, j = i+1, j-1 {
		out.Jobs[i], out.Jobs[j] = out.Jobs[j], out.Jobs[i]
	}
	return out
}

// TranslateRect shifts every rectangle by delta in both dimensions.
func TranslateRect(in job.RectInstance, delta int64) job.RectInstance {
	out := job.RectInstance{G: in.G, Jobs: make([]job.RectJob, len(in.Jobs))}
	for i, j := range in.Jobs {
		out.Jobs[i] = job.RectJob{ID: j.ID, Rect: rect.New(
			j.Rect.D1.Start+delta, j.Rect.D1.End+delta,
			j.Rect.D2.Start+delta, j.Rect.D2.End+delta,
		)}
	}
	return out
}

// DuplicateRect doubles every rectangle job under doubled capacity.
func DuplicateRect(in job.RectInstance) job.RectInstance {
	out := job.RectInstance{G: 2 * in.G, Jobs: make([]job.RectJob, 0, 2*len(in.Jobs))}
	maxID := 0
	for _, j := range in.Jobs {
		if j.ID > maxID {
			maxID = j.ID
		}
	}
	out.Jobs = append(out.Jobs, in.Jobs...)
	for _, j := range in.Jobs {
		copyJob := j
		copyJob.ID = maxID + 1 + j.ID
		out.Jobs = append(out.Jobs, copyJob)
	}
	return out
}
