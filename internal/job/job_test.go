package job

import (
	"encoding/json"
	"testing"
)

func TestNewAndAccessors(t *testing.T) {
	j := New(3, 5, 12)
	if j.ID != 3 || j.Start() != 5 || j.End() != 12 || j.Len() != 7 {
		t.Errorf("accessors wrong: %+v", j)
	}
	if j.Weight != 1 || j.Demand != 1 {
		t.Errorf("defaults wrong: %+v", j)
	}
}

func TestOverlaps(t *testing.T) {
	a, b, c := New(0, 0, 10), New(1, 10, 20), New(2, 5, 15)
	if a.Overlaps(b) {
		t.Error("touching jobs should not overlap")
	}
	if !a.Overlaps(c) || !b.Overlaps(c) {
		t.Error("overlapping jobs not detected")
	}
}

func TestNewInstance(t *testing.T) {
	in := NewInstance(2, [2]int64{0, 5}, [2]int64{3, 9})
	if len(in.Jobs) != 2 || in.G != 2 {
		t.Fatalf("NewInstance = %+v", in)
	}
	if in.Jobs[1].ID != 1 || in.Jobs[1].Start() != 3 {
		t.Errorf("job 1 = %+v", in.Jobs[1])
	}
	if err := in.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		in   Instance
	}{
		{"zero g", Instance{G: 0}},
		{"empty job", NewInstance(1, [2]int64{5, 5})},
		{"dup id", Instance{G: 1, Jobs: []Job{New(0, 0, 1), New(0, 2, 3)}}},
		{"bad weight", Instance{G: 1, Jobs: []Job{{ID: 0, Interval: New(0, 0, 1).Interval, Weight: 0, Demand: 1}}}},
		{"demand over g", Instance{G: 2, Jobs: []Job{{ID: 0, Interval: New(0, 0, 1).Interval, Weight: 1, Demand: 3}}}},
	}
	for _, c := range cases {
		if err := c.in.Validate(); err == nil {
			t.Errorf("%s: Validate accepted invalid instance", c.name)
		}
	}
}

func TestBounds(t *testing.T) {
	// Three jobs [0,10), [0,10), [20,30): len=30, span=20.
	in := NewInstance(2, [2]int64{0, 10}, [2]int64{0, 10}, [2]int64{20, 30})
	if in.TotalLen() != 30 {
		t.Errorf("TotalLen = %d", in.TotalLen())
	}
	if in.Span() != 20 {
		t.Errorf("Span = %d", in.Span())
	}
	if in.ParallelismBound() != 15 {
		t.Errorf("ParallelismBound = %d", in.ParallelismBound())
	}
	if in.LowerBound() != 20 {
		t.Errorf("LowerBound = %d, want span bound 20", in.LowerBound())
	}
	// With g=3 parallelism bound is 10, span still dominates.
	in.G = 3
	if in.LowerBound() != 20 {
		t.Errorf("LowerBound g=3 = %d", in.LowerBound())
	}
}

func TestParallelismBoundRoundsUp(t *testing.T) {
	in := NewInstance(2, [2]int64{0, 3}) // len 3, g 2 -> ceil(1.5) = 2
	if in.ParallelismBound() != 2 {
		t.Errorf("ParallelismBound = %d, want 2", in.ParallelismBound())
	}
}

func TestSortedByStart(t *testing.T) {
	in := Instance{G: 1, Jobs: []Job{New(0, 9, 12), New(1, 0, 5), New(2, 0, 3)}}
	s := in.SortedByStart()
	if s.Jobs[0].ID != 2 || s.Jobs[1].ID != 1 || s.Jobs[2].ID != 0 {
		t.Errorf("sorted order = %v", s.Jobs)
	}
	// Original must be untouched.
	if in.Jobs[0].ID != 0 {
		t.Error("SortedByStart mutated receiver")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	in := NewInstance(3, [2]int64{0, 5}, [2]int64{2, 9})
	in.Jobs[1].Weight = 4
	in.Jobs[1].Demand = 2
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var back Instance
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.G != 3 || len(back.Jobs) != 2 {
		t.Fatalf("round trip = %+v", back)
	}
	if back.Jobs[1].Weight != 4 || back.Jobs[1].Demand != 2 {
		t.Errorf("weights/demands lost: %+v", back.Jobs[1])
	}
	if back.Jobs[0].Weight != 1 || back.Jobs[0].Demand != 1 {
		t.Errorf("defaults not applied: %+v", back.Jobs[0])
	}
}

func TestJSONRejectsBad(t *testing.T) {
	var in Instance
	if err := json.Unmarshal([]byte(`{"g":0,"jobs":[]}`), &in); err == nil {
		t.Error("accepted g=0")
	}
	if err := json.Unmarshal([]byte(`{"g":1,"jobs":[{"id":0,"start":5,"end":2}]}`), &in); err == nil {
		t.Error("accepted reversed interval")
	}
}

func TestRectInstance(t *testing.T) {
	in := RectInstance{G: 2, Jobs: []RectJob{
		NewRectJob(0, 0, 10, 0, 10),
		NewRectJob(1, 5, 15, 5, 15),
	}}
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	if in.TotalArea() != 200 {
		t.Errorf("TotalArea = %d", in.TotalArea())
	}
	if in.SpanArea() != 175 {
		t.Errorf("SpanArea = %d", in.SpanArea())
	}
	// Lower bound: max(ceil(200/2)=100, 175) = 175.
	if in.LowerBound() != 175 {
		t.Errorf("LowerBound = %d", in.LowerBound())
	}
}

func TestRectInstanceValidateRejects(t *testing.T) {
	if err := (RectInstance{G: 0}).Validate(); err == nil {
		t.Error("accepted g=0")
	}
	bad := RectInstance{G: 1, Jobs: []RectJob{NewRectJob(0, 0, 0, 0, 5)}}
	if err := bad.Validate(); err == nil {
		t.Error("accepted empty rect job")
	}
	dup := RectInstance{G: 1, Jobs: []RectJob{NewRectJob(0, 0, 1, 0, 1), NewRectJob(0, 2, 3, 2, 3)}}
	if err := dup.Validate(); err == nil {
		t.Error("accepted duplicate IDs")
	}
}

func TestClone(t *testing.T) {
	in := NewInstance(2, [2]int64{0, 5})
	cp := in.Clone()
	cp.Jobs[0].Interval.End = 99
	if in.Jobs[0].End() == 99 {
		t.Error("Clone shares job storage")
	}
}
