package job

import (
	"encoding/json"
	"testing"
)

// FuzzInstanceJSON exercises the CLI interchange parser: any input either
// fails cleanly or round-trips to a validated instance.
func FuzzInstanceJSON(f *testing.F) {
	seed := [][]byte{
		[]byte(`{"g":2,"jobs":[{"id":0,"start":0,"end":10}]}`),
		[]byte(`{"g":1,"jobs":[]}`),
		[]byte(`{"g":3,"jobs":[{"id":1,"start":-5,"end":5,"weight":2,"demand":3}]}`),
		[]byte(`{"g":0}`),
		[]byte(`{"jobs":[{"id":0,"start":9,"end":2}]}`),
		[]byte(`not json at all`),
		[]byte(`{"g":2,"jobs":[{"id":0,"start":0,"end":10},{"id":0,"start":1,"end":2}]}`),
	}
	for _, s := range seed {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var in Instance
		if err := json.Unmarshal(data, &in); err != nil {
			return // rejected cleanly
		}
		// Accepted input must be a valid instance and survive a marshal
		// round trip.
		if err := in.Validate(); err != nil {
			t.Fatalf("accepted invalid instance %+v: %v", in, err)
		}
		out, err := json.Marshal(in)
		if err != nil {
			t.Fatalf("re-marshal failed: %v", err)
		}
		var back Instance
		if err := json.Unmarshal(out, &back); err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if len(back.Jobs) != len(in.Jobs) || back.G != in.G {
			t.Fatalf("round trip changed shape: %+v vs %+v", back, in)
		}
	})
}
