// Package job defines the job and instance types shared by every layer of
// the busy-time scheduling library.
//
// A job is an interval on the time line during which it must be processed
// from start to end (Section 1 of the paper). The optional Weight field
// supports the weighted-throughput extension of Section 5, and the optional
// Demand field supports the variable-capacity extension of [16]; both
// default to 1 and are ignored by the core algorithms.
package job

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"

	"repro/internal/interval"
	"repro/internal/rect"
)

// Job is a unit-demand interval job. ID is the job's index within its
// instance; algorithms report schedules keyed by ID.
type Job struct {
	ID       int
	Interval interval.Interval
	Weight   int64 // throughput weight (>= 1); 1 for the unweighted problems
	Demand   int64 // capacity demand (1 <= Demand <= g); 1 for the core model
}

// New returns a unit-weight unit-demand job with the given id and interval
// [start, end).
func New(id int, start, end int64) Job {
	return Job{ID: id, Interval: interval.New(start, end), Weight: 1, Demand: 1}
}

// Start returns the job's start time s_J.
func (j Job) Start() int64 { return j.Interval.Start }

// End returns the job's completion time c_J.
func (j Job) End() int64 { return j.Interval.End }

// Len returns the processing length of the job.
func (j Job) Len() int64 { return j.Interval.Len() }

// Overlaps reports whether the two jobs' processing intervals overlap with
// positive measure, i.e. whether they conflict on a single machine thread.
func (j Job) Overlaps(other Job) bool { return j.Interval.Overlaps(other.Interval) }

// String renders the job as "J<id>[s,c)".
func (j Job) String() string { return fmt.Sprintf("J%d%v", j.ID, j.Interval) }

// Instance is a MinBusy input (J, g). A MaxThroughput input additionally
// carries a budget T, passed separately to the throughput algorithms.
type Instance struct {
	Jobs []Job
	G    int
}

// NewInstance builds an instance from (start, end) pairs, assigning IDs in
// order. It is the convenience constructor used by tests and examples.
func NewInstance(g int, spans ...[2]int64) Instance {
	jobs := make([]Job, len(spans))
	for i, s := range spans {
		jobs[i] = New(i, s[0], s[1])
	}
	return Instance{Jobs: jobs, G: g}
}

// Validate reports the first structural problem with the instance: empty
// jobs, non-positive capacity, duplicate or out-of-range IDs, or invalid
// weights/demands.
func (in Instance) Validate() error {
	if in.G < 1 {
		return fmt.Errorf("job: capacity g = %d, need g >= 1", in.G)
	}
	seen := make(map[int]bool, len(in.Jobs))
	for i, j := range in.Jobs {
		if j.Interval.Empty() {
			return fmt.Errorf("job: job %d has empty interval %v", i, j.Interval)
		}
		if seen[j.ID] {
			return fmt.Errorf("job: duplicate job ID %d", j.ID)
		}
		seen[j.ID] = true
		if j.Weight < 1 {
			return fmt.Errorf("job: job %d has weight %d, need >= 1", j.ID, j.Weight)
		}
		if j.Demand < 1 || j.Demand > int64(in.G) {
			return fmt.Errorf("job: job %d has demand %d outside [1, g=%d]", j.ID, j.Demand, in.G)
		}
	}
	return nil
}

// Intervals returns the jobs' intervals in instance order.
func (in Instance) Intervals() []interval.Interval {
	ivs := make([]interval.Interval, len(in.Jobs))
	for i, j := range in.Jobs {
		ivs[i] = j.Interval
	}
	return ivs
}

// TotalLen returns len(J), the sum of job lengths.
func (in Instance) TotalLen() int64 { return interval.TotalLen(in.Intervals()) }

// Span returns span(J), the measure of the union of all job intervals.
func (in Instance) Span() int64 { return interval.Span(in.Intervals()) }

// ParallelismBound returns ceil(len(J)/g), the paper's parallelism lower
// bound rounded up to the integer lattice (costs are integral on integral
// instances, so rounding up keeps the bound valid).
func (in Instance) ParallelismBound() int64 {
	l := in.TotalLen()
	g := int64(in.G)
	return (l + g - 1) / g
}

// LowerBound returns max(parallelism bound, span bound) — the best simple
// lower bound on cost* from Observation 2.1.
func (in Instance) LowerBound() int64 {
	pb := in.ParallelismBound()
	if sp := in.Span(); sp > pb {
		return sp
	}
	return pb
}

// Clone returns a deep copy of the instance.
func (in Instance) Clone() Instance {
	jobs := make([]Job, len(in.Jobs))
	copy(jobs, in.Jobs)
	return Instance{Jobs: jobs, G: in.G}
}

// SortedByStart returns a copy of the instance with jobs ordered by
// non-decreasing start time, ties by non-decreasing end time. For proper
// instances this is exactly the paper's canonical order J1 <= J2 <= ... <= Jn.
func (in Instance) SortedByStart() Instance {
	out := in.Clone()
	sort.SliceStable(out.Jobs, func(a, b int) bool {
		ja, jb := out.Jobs[a], out.Jobs[b]
		if ja.Start() != jb.Start() {
			return ja.Start() < jb.Start()
		}
		return ja.End() < jb.End()
	})
	return out
}

// jsonInstance is the stable on-disk representation used by cmd/busysim.
type jsonInstance struct {
	G    int       `json:"g"`
	Jobs []jsonJob `json:"jobs"`
}

type jsonJob struct {
	ID     int   `json:"id"`
	Start  int64 `json:"start"`
	End    int64 `json:"end"`
	Weight int64 `json:"weight,omitempty"`
	Demand int64 `json:"demand,omitempty"`
}

// MarshalJSON encodes the instance in the CLI interchange format.
func (in Instance) MarshalJSON() ([]byte, error) {
	enc := jsonInstance{G: in.G, Jobs: make([]jsonJob, len(in.Jobs))}
	for i, j := range in.Jobs {
		enc.Jobs[i] = jsonJob{ID: j.ID, Start: j.Start(), End: j.End(), Weight: j.Weight, Demand: j.Demand}
	}
	return json.Marshal(enc)
}

// UnmarshalJSON decodes the CLI interchange format, defaulting weight and
// demand to 1 when omitted.
func (in *Instance) UnmarshalJSON(data []byte) error {
	var dec jsonInstance
	if err := json.Unmarshal(data, &dec); err != nil {
		return err
	}
	if dec.G < 1 {
		return errors.New("job: instance JSON missing positive g")
	}
	in.G = dec.G
	in.Jobs = make([]Job, len(dec.Jobs))
	for i, j := range dec.Jobs {
		if j.End < j.Start {
			return fmt.Errorf("job: job %d has end %d < start %d", j.ID, j.End, j.Start)
		}
		w, d := j.Weight, j.Demand
		if w == 0 {
			w = 1
		}
		if d == 0 {
			d = 1
		}
		in.Jobs[i] = Job{ID: j.ID, Interval: interval.Interval{Start: j.Start, End: j.End}, Weight: w, Demand: d}
	}
	return in.Validate()
}

// RectJob is a two-dimensional job (Section 3.4): a rectangle that must be
// processed contiguously in both dimensions.
type RectJob struct {
	ID   int
	Rect rect.Rect
}

// NewRectJob builds a rectangular job [s1,c1) × [s2,c2).
func NewRectJob(id int, s1, c1, s2, c2 int64) RectJob {
	return RectJob{ID: id, Rect: rect.New(s1, c1, s2, c2)}
}

// RectInstance is the 2-D MinBusy input of Section 3.4.
type RectInstance struct {
	Jobs []RectJob
	G    int
}

// Validate reports the first structural problem with the 2-D instance.
func (in RectInstance) Validate() error {
	if in.G < 1 {
		return fmt.Errorf("job: capacity g = %d, need g >= 1", in.G)
	}
	seen := make(map[int]bool, len(in.Jobs))
	for i, j := range in.Jobs {
		if j.Rect.Empty() {
			return fmt.Errorf("job: rect job %d is empty: %v", i, j.Rect)
		}
		if seen[j.ID] {
			return fmt.Errorf("job: duplicate rect job ID %d", j.ID)
		}
		seen[j.ID] = true
	}
	return nil
}

// Rects returns the jobs' rectangles in instance order.
func (in RectInstance) Rects() []rect.Rect {
	rs := make([]rect.Rect, len(in.Jobs))
	for i, j := range in.Jobs {
		rs[i] = j.Rect
	}
	return rs
}

// TotalArea returns the 2-D len(J).
func (in RectInstance) TotalArea() int64 { return rect.TotalArea(in.Rects()) }

// SpanArea returns the 2-D span(J).
func (in RectInstance) SpanArea() int64 { return rect.UnionArea(in.Rects()) }

// LowerBound returns max(ceil(area/g), union area) — Observation 2.1
// carried over to two dimensions (Section 3.4 notes all three bounds hold).
func (in RectInstance) LowerBound() int64 {
	g := int64(in.G)
	pb := (in.TotalArea() + g - 1) / g
	if sp := in.SpanArea(); sp > pb {
		return sp
	}
	return pb
}
