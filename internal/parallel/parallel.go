// Package parallel provides the small work-distribution primitives used by
// the experiment harness and benchmarks: a bounded-worker ForEach and an
// order-preserving parallel Map.
//
// The scheduling algorithms themselves are single-threaded (they are
// combinatorial, not data-parallel), but the measurement layer fans out
// across seeds and configurations; these helpers keep that layer simple
// and race-free (results are written to disjoint indices; no shared
// mutable state).
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// ForEach invokes fn(i) for every i in [0, n) using at most workers
// goroutines (workers ≤ 0 selects GOMAXPROCS). It returns when all calls
// complete. fn must be safe to call concurrently.
func ForEach(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// Map applies fn to every index in [0, n) in parallel and returns the
// results in index order.
func Map[T any](n, workers int, fn func(i int) T) []T {
	out := make([]T, n)
	ForEach(n, workers, func(i int) {
		out[i] = fn(i)
	})
	return out
}
