package parallel

import (
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestForEachCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 0, 100} {
		n := 53
		var seen [53]atomic.Int32
		ForEach(n, workers, func(i int) {
			seen[i].Add(1)
		})
		for i := range seen {
			if got := seen[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, got)
			}
		}
	}
}

func TestForEachZeroAndNegativeN(t *testing.T) {
	called := false
	ForEach(0, 4, func(int) { called = true })
	ForEach(-3, 4, func(int) { called = true })
	if called {
		t.Fatal("fn called for empty range")
	}
}

func TestMapOrder(t *testing.T) {
	out := Map(100, 8, func(i int) int { return i * i })
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

func TestMapEmpty(t *testing.T) {
	if out := Map(0, 4, func(i int) int { return i }); len(out) != 0 {
		t.Fatal("non-empty result for empty input")
	}
}

// Property: Map result is independent of worker count.
func TestPropertyWorkerCountInvariant(t *testing.T) {
	f := func(nRaw, wRaw uint8) bool {
		n := int(nRaw % 64)
		w := int(wRaw%16) + 1
		a := Map(n, 1, func(i int) int { return 3*i + 1 })
		b := Map(n, w, func(i int) int { return 3*i + 1 })
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
