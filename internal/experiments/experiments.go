// Package experiments regenerates every table in EXPERIMENTS.md: one
// experiment per paper claim (theorem, lemma, figure), each measuring an
// implemented algorithm against the exact oracle or against the paper's
// closed-form predictions on seeded workloads.
//
// The experiment set is indexed E1…E17 as laid out in DESIGN.md §3. Both
// cmd/experiments and the root-level benchmarks drive these entry points,
// so the published numbers are regenerable with either `go test -bench` or
// the standalone binary.
//
// Experiments resolve their algorithms through internal/registry — the
// same catalogue the Solver dispatches on — so a renamed or unregistered
// algorithm fails loudly here instead of drifting, and the conformance
// experiment (E16) walks registry.List() directly: a newly registered
// algorithm shows up in EXPERIMENTS.md automatically.
package experiments

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	busytime "repro"
	"repro/internal/conformance"
	"repro/internal/core"
	"repro/internal/demand"
	"repro/internal/exact"
	"repro/internal/job"
	"repro/internal/localsearch"
	"repro/internal/online"
	"repro/internal/parallel"
	"repro/internal/rect"
	"repro/internal/registry"
	"repro/internal/setcover"
	"repro/internal/stats"
	"repro/internal/topology/ring"
	"repro/internal/topology/tree"
	"repro/internal/workload"
)

// minBusySolve resolves a registered MinBusy algorithm's solve hook by
// canonical name. Experiments call algorithms through the registry so the
// measured code path is exactly what the Solver dispatches.
func minBusySolve(name string) func(job.Instance) (core.Schedule, error) {
	alg, err := registry.LookupKind(registry.MinBusy, name)
	if err != nil {
		panic(err)
	}
	return func(in job.Instance) (core.Schedule, error) {
		return alg.SolveMinBusy(context.Background(), in)
	}
}

// mustMinBusy is minBusySolve for experiments that generate instances the
// algorithm accepts by construction, panicking on rejection.
func mustMinBusy(name string) func(job.Instance) core.Schedule {
	solve := minBusySolve(name)
	return func(in job.Instance) core.Schedule {
		s, err := solve(in)
		if err != nil {
			panic(err)
		}
		return s
	}
}

// throughputSolve resolves a registered MaxThroughput algorithm's hook.
func throughputSolve(name string) func(job.Instance, int64) (core.Schedule, error) {
	alg, err := registry.LookupKind(registry.MaxThroughput, name)
	if err != nil {
		panic(err)
	}
	return func(in job.Instance, budget int64) (core.Schedule, error) {
		return alg.SolveThroughput(context.Background(), in, budget)
	}
}

// Result is one experiment's rendered outcome.
type Result struct {
	ID    string
	Title string
	Claim string // the paper's claim being measured
	Table *stats.Table
	Notes []string
}

// String renders the result as the block format used in EXPERIMENTS.md.
func (r Result) String() string {
	out := fmt.Sprintf("== %s: %s ==\nClaim: %s\n%s", r.ID, r.Title, r.Claim, r.Table.String())
	for _, n := range r.Notes {
		out += "note: " + n + "\n"
	}
	return out
}

// Seeds is the default number of random instances per configuration.
const Seeds = 40

// ratioStats collects cost ratios alg/opt across seeds.
func ratioStats(ratios []float64) (mean, max float64) {
	s := stats.Summarize(ratios)
	return s.Mean, s.Max
}

// E1 measures Lemma 3.1: CliqueMatching is optimal on clique instances
// with g = 2 (every measured ratio must be exactly 1).
func E1(seeds int) Result {
	t := &stats.Table{Header: []string{"n", "instances", "mean ratio", "max ratio"}}
	cliqueMatching := minBusySolve("clique-matching")
	for _, n := range []int{6, 10, 14} {
		ratios := parallel.Map(seeds, 0, func(seed int) float64 {
			in := workload.Clique(int64(seed), workload.Config{N: n, G: 2, MaxTime: 200, MaxLen: 60})
			s, err := cliqueMatching(in)
			if err != nil {
				panic(err)
			}
			opt, err := exact.MinBusyCost(in)
			if err != nil {
				panic(err)
			}
			return stats.Ratio(s.Cost(), opt)
		})
		mean, max := ratioStats(ratios)
		t.Add(n, seeds, mean, max)
	}
	return Result{
		ID:    "E1",
		Title: "clique g=2 via maximum-weight matching",
		Claim: "Lemma 3.1: polynomial and optimal (ratio = 1)",
		Table: t,
	}
}

// E2 measures Lemma 3.2: CliqueSetCover within g·H_g/(H_g+g−1) on cliques.
func E2(seeds int) Result {
	t := &stats.Table{Header: []string{"g", "bound", "mean ratio", "max ratio"}}
	cliqueSetCover := minBusySolve("clique-set-cover")
	for _, g := range []int{2, 3, 4} {
		hg := setcover.Harmonic(g)
		bound := float64(g) * hg / (hg + float64(g) - 1)
		ratios := parallel.Map(seeds, 0, func(seed int) float64 {
			in := workload.Clique(int64(seed), workload.Config{N: 10, G: g, MaxTime: 200, MaxLen: 60})
			s, err := cliqueSetCover(in)
			if err != nil {
				panic(err)
			}
			opt, err := exact.MinBusyCost(in)
			if err != nil {
				panic(err)
			}
			return stats.Ratio(s.Cost(), opt)
		})
		mean, max := ratioStats(ratios)
		t.Add(g, bound, mean, max)
	}
	return Result{
		ID:    "E2",
		Title: "clique set-cover approximation",
		Claim: "Lemma 3.2: ratio ≤ g·H_g/(H_g+g−1) (< 2 for g ≤ 6)",
		Table: t,
	}
}

// E3 measures Theorem 3.1: BestCut within 2−1/g on proper instances, and
// compares against the FirstFit baseline of [13] it improves upon.
func E3(seeds int) Result {
	t := &stats.Table{Header: []string{"g", "bound", "bestcut mean", "bestcut max", "firstfit mean"}}
	bestCut := minBusySolve("best-cut")
	firstFit := mustMinBusy("first-fit")
	for _, g := range []int{2, 3, 4, 6} {
		bound := 2 - 1/float64(g)
		pairs := parallel.Map(seeds, 0, func(seed int) [2]float64 {
			in := workload.Proper(int64(seed), workload.Config{N: 11, G: g, MaxTime: 200, MaxLen: 40})
			s, err := bestCut(in)
			if err != nil {
				panic(err)
			}
			opt, err := exact.MinBusyCost(in)
			if err != nil {
				panic(err)
			}
			return [2]float64{
				stats.Ratio(s.Cost(), opt),
				stats.Ratio(firstFit(in).Cost(), opt),
			}
		})
		var bc, ff []float64
		for _, p := range pairs {
			bc = append(bc, p[0])
			ff = append(ff, p[1])
		}
		bcMean, bcMax := ratioStats(bc)
		ffMean, _ := ratioStats(ff)
		t.Add(g, bound, bcMean, bcMax, ffMean)
	}
	return Result{
		ID:    "E3",
		Title: "BestCut on proper instances vs FirstFit [13]",
		Claim: "Theorem 3.1: BestCut ≤ (2−1/g)·OPT, improving on the 2-approximation of [13]",
		Table: t,
	}
}

// E4 measures Theorem 3.2: FindBestConsecutive is optimal on proper clique
// instances.
func E4(seeds int) Result {
	t := &stats.Table{Header: []string{"n", "g", "instances", "max ratio"}}
	findBestConsecutive := minBusySolve("find-best-consecutive")
	for _, cfg := range [][2]int{{8, 2}, {12, 3}, {16, 4}} {
		ratios := parallel.Map(seeds, 0, func(seed int) float64 {
			in := workload.ProperClique(int64(seed), workload.Config{N: cfg[0], G: cfg[1], MaxTime: 300, MaxLen: 50})
			s, err := findBestConsecutive(in)
			if err != nil {
				panic(err)
			}
			opt, err := exact.MinBusyCost(in)
			if err != nil {
				panic(err)
			}
			return stats.Ratio(s.Cost(), opt)
		})
		_, max := ratioStats(ratios)
		t.Add(cfg[0], cfg[1], seeds, max)
	}
	return Result{
		ID:    "E4",
		Title: "proper clique DP (FindBestConsecutive)",
		Claim: "Theorem 3.2: optimal in O(n·g) time (ratio = 1)",
		Table: t,
	}
}

// E5 reproduces Figure 3 / Lemma 3.5: FirstFit2D on the adversarial family
// matches the predicted cost exactly and its ratio against the optimum
// upper bound follows the closed form g(1+2γ−ε′)(3−ε′)/(g+6γ−1) → 6γ+3.
func E5() Result {
	t := &stats.Table{Header: []string{"g", "gamma1", "ff cost", "opt UB", "ratio", "closed form", "6γ+3"}}
	scale, eps := int64(1000), int64(1)
	for _, gamma := range []int64{1, 2, 4} {
		for _, g := range []int{6, 12, 24, 48} {
			in, err := workload.Figure3(g, gamma, scale, eps)
			if err != nil {
				panic(err)
			}
			s := core.FirstFit2D(in)
			ff := s.Cost()
			if predicted := workload.Figure3FirstFitCost(g, gamma, scale, eps); ff != predicted {
				panic(fmt.Sprintf("E5: FirstFit2D cost %d != prediction %d", ff, predicted))
			}
			ub := workload.Figure3OptUpperBound(g, gamma, scale, eps)
			e := float64(eps) / float64(scale)
			form := float64(g) * (1 + 2*float64(gamma) - e) * (3 - e) / float64(g+6*int(gamma)-1)
			t.Add(g, gamma, ff, ub, stats.Ratio(ff, ub), form, 6*gamma+3)
		}
	}
	return Result{
		ID:    "E5",
		Title: "Figure 3 adversarial family for FirstFit2D",
		Claim: "Lemma 3.5: FirstFit ratio between 6γ₁+3 and 6γ₁+4; simulated cost equals the proof's prediction",
		Table: t,
		Notes: []string{"ratio column equals the closed form exactly; it approaches 6γ+3 as g grows"},
	}
}

// E6 measures Theorem 3.3: BucketFirstFit within
// min(g, 13.82·log γ + O(1)) on bounded-γ rectangle workloads; FirstFit2D
// shown for comparison.
func E6(seeds int) Result {
	t := &stats.Table{Header: []string{"gamma_max", "g", "bucket mean", "ff2d mean", "vs LB"}}
	for _, gamma := range []int64{2, 8, 32} {
		for _, g := range []int{2, 4} {
			var bucket, ff []float64
			for seed := 0; seed < seeds; seed++ {
				in := workload.BoundedGammaRects(int64(seed), workload.Config{N: 40, G: g, MaxTime: 150, MaxLen: 40}, gamma)
				lb := in.LowerBound()
				b, err := core.BucketFirstFitAuto(in)
				if err != nil {
					panic(err)
				}
				bucket = append(bucket, stats.Ratio(b.Cost(), lb))
				ff = append(ff, stats.Ratio(core.FirstFit2D(in).Cost(), lb))
			}
			bMean, _ := ratioStats(bucket)
			fMean, _ := ratioStats(ff)
			t.Add(gamma, g, bMean, fMean, "ratio vs lower bound (≥ OPT ratio)")
		}
	}
	return Result{
		ID:    "E6",
		Title: "BucketFirstFit on bounded-γ rectangles",
		Claim: "Theorem 3.3: min(g, 13.82·log min(γ₁,γ₂)+O(1))-approximation",
		Table: t,
		Notes: []string{"ratios are against the Observation 2.1 lower bound, an over-estimate of the true ratio"},
	}
}

// E7 measures Theorem 4.1: CliqueThroughput ≥ tput*/4 across a budget
// sweep on clique instances.
func E7(seeds int) Result {
	t := &stats.Table{Header: []string{"g", "budget", "mean tput/opt", "min tput/opt", "bound"}}
	cliqueThroughput := throughputSolve("clique-throughput")
	for _, g := range []int{2, 3} {
		for _, frac := range []float64{0.25, 0.5, 0.75, 1.0} {
			ratios := parallel.Map(seeds, 0, func(seed int) float64 {
				in := workload.Clique(int64(seed), workload.Config{N: 10, G: g, MaxTime: 200, MaxLen: 60})
				full, err := exact.MinBusyCost(in)
				if err != nil {
					panic(err)
				}
				budget := int64(frac * float64(full))
				s, err := cliqueThroughput(in, budget)
				if err != nil {
					panic(err)
				}
				optS, err := exact.MaxThroughput(in, budget)
				if err != nil {
					panic(err)
				}
				if optS.Throughput() == 0 {
					return 1
				}
				return float64(s.Throughput()) / float64(optS.Throughput())
			})
			sum := stats.Summarize(ratios)
			t.Add(g, fmt.Sprintf("%.0f%% of OPT cost", frac*100), sum.Mean, sum.Min, 0.25)
		}
	}
	return Result{
		ID:    "E7",
		Title: "clique MaxThroughput 4-approximation",
		Claim: "Theorem 4.1: scheduled jobs ≥ tput*/4 for every budget",
		Table: t,
	}
}

// E8 measures Theorem 4.2: MostThroughputConsecutive is optimal on proper
// cliques across budgets; the weighted extension is also checked.
func E8(seeds int) Result {
	t := &stats.Table{Header: []string{"variant", "instances x budgets", "min tput/opt"}}
	mostThroughput := throughputSolve("most-throughput-consecutive")
	mostWeight := throughputSolve("most-weight-consecutive")
	worstU, worstW := 1.0, 1.0
	count := 0
	for seed := 0; seed < seeds; seed++ {
		in := workload.ProperClique(int64(seed), workload.Config{N: 10, G: 3, MaxTime: 200, MaxLen: 40})
		for i := range in.Jobs {
			in.Jobs[i].Weight = 1 + int64((i*13+seed)%7)
		}
		full, err := exact.MinBusyCost(in)
		if err != nil {
			panic(err)
		}
		for _, frac := range []float64{0.3, 0.6, 0.9} {
			budget := int64(frac * float64(full))
			count++
			s, err := mostThroughput(in, budget)
			if err != nil {
				panic(err)
			}
			o, err := exact.MaxThroughput(in, budget)
			if err != nil {
				panic(err)
			}
			if o.Throughput() > 0 {
				if r := float64(s.Throughput()) / float64(o.Throughput()); r < worstU {
					worstU = r
				}
			}
			ws, err := mostWeight(in, budget)
			if err != nil {
				panic(err)
			}
			wo, err := exact.MaxWeightThroughput(in, budget)
			if err != nil {
				panic(err)
			}
			if wo.WeightedThroughput() > 0 {
				if r := float64(ws.WeightedThroughput()) / float64(wo.WeightedThroughput()); r < worstW {
					worstW = r
				}
			}
		}
	}
	t.Add("unweighted (Thm 4.2)", count, worstU)
	t.Add("weighted (Sec 5 ext)", count, worstW)
	return Result{
		ID:    "E8",
		Title: "proper clique throughput DPs vs oracle",
		Claim: "Theorem 4.2: optimal (ratio = 1); weighted extension also exact",
		Table: t,
	}
}

// E9 measures Observation 2.1 / Proposition 2.1: every algorithm's
// schedule falls within [max(span, len/g), len] and within g·OPT.
func E9(seeds int) Result {
	t := &stats.Table{Header: []string{"algorithm", "mean cost/LB", "max cost/(g·OPT)"}}
	type alg struct {
		name string
		run  func(job.Instance) core.Schedule
	}
	algs := []alg{
		{"naive-per-job", mustMinBusy("naive-per-job")},
		{"first-fit", mustMinBusy("first-fit")},
		{"auto", func(in job.Instance) core.Schedule { s, _ := core.MinBusyAuto(in); return s }},
	}
	for _, a := range algs {
		var vsLB, vsGOpt []float64
		for seed := 0; seed < seeds; seed++ {
			in := workload.General(int64(seed), workload.Config{N: 10, G: 3, MaxTime: 100, MaxLen: 30})
			s := a.run(in)
			opt, err := exact.MinBusyCost(in)
			if err != nil {
				panic(err)
			}
			vsLB = append(vsLB, stats.Ratio(s.Cost(), in.LowerBound()))
			vsGOpt = append(vsGOpt, stats.Ratio(s.Cost(), int64(in.G)*opt))
		}
		lbMean, _ := ratioStats(vsLB)
		_, gMax := ratioStats(vsGOpt)
		t.Add(a.name, lbMean, gMax)
	}
	return Result{
		ID:    "E9",
		Title: "Observation 2.1 bounds across algorithms",
		Claim: "Proposition 2.1: any schedule ≤ g·OPT; all costs within [LB, len(J)]",
		Table: t,
		Notes: []string{"max cost/(g·OPT) must be ≤ 1"},
	}
}

// E10 measures Proposition 2.2: binary search over MaxThroughput recovers
// the MinBusy optimum, counting oracle calls (logarithmic in len(J)).
func E10(seeds int) Result {
	t := &stats.Table{Header: []string{"n", "exact match", "mean oracle calls"}}
	mostThroughput := throughputSolve("most-throughput-consecutive")
	for _, n := range []int{8, 12} {
		matches := 0
		var calls []float64
		for seed := 0; seed < seeds; seed++ {
			in := workload.ProperClique(int64(seed), workload.Config{N: n, G: 3, MaxTime: 200, MaxLen: 40})
			nCalls := 0
			solve := func(in job.Instance, budget int64) (core.Schedule, error) {
				nCalls++
				return mostThroughput(in, budget)
			}
			s, err := core.MinBusyViaThroughput(in, solve)
			if err != nil {
				panic(err)
			}
			opt, err := exact.MinBusyCost(in)
			if err != nil {
				panic(err)
			}
			if s.Cost() == opt {
				matches++
			}
			calls = append(calls, float64(nCalls))
		}
		t.Add(n, fmt.Sprintf("%d/%d", matches, seeds), stats.Summarize(calls).Mean)
	}
	return Result{
		ID:    "E10",
		Title: "MinBusy via MaxThroughput binary search",
		Claim: "Proposition 2.2: polynomial reduction; recovered cost equals OPT",
		Table: t,
	}
}

// E11 measures Observation 3.1 and Proposition 4.1 on one-sided cliques.
func E11(seeds int) Result {
	t := &stats.Table{Header: []string{"problem", "instances", "max ratio / min tput ratio"}}
	oneSidedGreedy := minBusySolve("one-sided-greedy")
	oneSidedThroughput := throughputSolve("one-sided-throughput")
	worstMin, worstTput := 1.0, 1.0
	for seed := 0; seed < seeds; seed++ {
		for _, sharedStart := range []bool{true, false} {
			in := workload.OneSided(int64(seed), workload.Config{N: 10, G: 3, MaxTime: 200, MaxLen: 50}, sharedStart)
			s, err := oneSidedGreedy(in)
			if err != nil {
				panic(err)
			}
			opt, err := exact.MinBusyCost(in)
			if err != nil {
				panic(err)
			}
			if r := stats.Ratio(s.Cost(), opt); r > worstMin {
				worstMin = r
			}
			budget := opt / 2
			ts, err := oneSidedThroughput(in, budget)
			if err != nil {
				panic(err)
			}
			o, err := exact.MaxThroughput(in, budget)
			if err != nil {
				panic(err)
			}
			if o.Throughput() > 0 {
				if r := float64(ts.Throughput()) / float64(o.Throughput()); r < worstTput {
					worstTput = r
				}
			}
		}
	}
	t.Add("MinBusy (Obs 3.1)", 2*seeds, worstMin)
	t.Add("MaxThroughput (Prop 4.1)", 2*seeds, worstTput)
	return Result{
		ID:    "E11",
		Title: "one-sided clique exact algorithms",
		Claim: "Observation 3.1 / Proposition 4.1: both optimal (ratios = 1)",
		Table: t,
	}
}

// E13 exercises the Section 5 extensions: tree grooming, ring FirstFit,
// and demand-aware FirstFit.
func E13(seeds int) Result {
	t := &stats.Table{Header: []string{"extension", "metric", "value"}}

	// Tree: laminar families where greedy is provably optimal.
	treeOK := true
	for seed := int64(0); seed < int64(seeds); seed++ {
		asg, want := treeLaminarTrial(seed)
		if asg.Cost != want {
			treeOK = false
		}
	}
	t.Add("tree grooming (§5/Obs 3.1)", "laminar greedy = one-sided OPT", treeOK)

	// Ring: FirstFit validity and bound adherence.
	worstRing := 0.0
	for seed := int64(0); seed < int64(seeds); seed++ {
		in := ringTrial(seed)
		s := ring.FirstFit(in)
		if err := s.Validate(); err != nil {
			panic(err)
		}
		if r := stats.Ratio(s.Cost(), in.LowerBound()); r > worstRing {
			worstRing = r
		}
	}
	t.Add("ring FirstFit (§5/Thm 3.3)", "max cost/LB", worstRing)

	// Demands: FirstFit vs demand-ordered FirstFit.
	var plain, byDemand []float64
	for seed := int64(0); seed < int64(seeds); seed++ {
		base := workload.General(seed, workload.Config{N: 30, G: 4, MaxTime: 150, MaxLen: 40})
		in := workload.WithDemands(seed+1000, base, 3)
		lb := demand.LowerBound(in)
		plain = append(plain, stats.Ratio(demand.FirstFit(in).Cost(), lb))
		byDemand = append(byDemand, stats.Ratio(demand.FirstFitByDemand(in).Cost(), lb))
	}
	pMean, _ := ratioStats(plain)
	dMean, _ := ratioStats(byDemand)
	t.Add("demands [16] first-fit", "mean cost/LB", pMean)
	t.Add("demands [16] by-demand", "mean cost/LB", dMean)

	return Result{
		ID:    "E13",
		Title: "Section 5 extensions",
		Claim: "tree greedy optimal on laminar families; ring/demand heuristics valid and bounded",
		Table: t,
	}
}

// E14 is the ablation study for the design choices DESIGN.md calls out:
// (a) BestCut's g cut offsets vs a single fixed cut, (b) the combined
// CliqueSetCover vs its modified-weight and plain-span variants alone,
// (c) the combined clique throughput algorithm vs Alg1 and Alg2 alone.
func E14(seeds int) Result {
	t := &stats.Table{Header: []string{"ablation", "variant", "mean ratio", "max ratio"}}

	// (a) BestCut offsets.
	var best, single []float64
	for seed := 0; seed < seeds; seed++ {
		in := workload.Proper(int64(seed), workload.Config{N: 11, G: 3, MaxTime: 200, MaxLen: 40})
		opt, err := exact.MinBusyCost(in)
		if err != nil {
			panic(err)
		}
		bc, err := core.BestCut(in)
		if err != nil {
			panic(err)
		}
		sc, err := core.SingleCut(in)
		if err != nil {
			panic(err)
		}
		best = append(best, stats.Ratio(bc.Cost(), opt))
		single = append(single, stats.Ratio(sc.Cost(), opt))
	}
	bMean, bMax := ratioStats(best)
	sMean, sMax := ratioStats(single)
	t.Add("cut offsets (Thm 3.1)", "best of g offsets", bMean, bMax)
	t.Add("cut offsets (Thm 3.1)", "single fixed cut", sMean, sMax)

	// (b) Set-cover variants.
	var comb, mod, plain []float64
	for seed := 0; seed < seeds; seed++ {
		in := workload.Clique(int64(seed), workload.Config{N: 10, G: 3, MaxTime: 200, MaxLen: 60})
		opt, err := exact.MinBusyCost(in)
		if err != nil {
			panic(err)
		}
		c, err := core.CliqueSetCover(in)
		if err != nil {
			panic(err)
		}
		m, err := core.CliqueSetCoverModified(in)
		if err != nil {
			panic(err)
		}
		p, err := core.CliqueSetCoverPlain(in)
		if err != nil {
			panic(err)
		}
		comb = append(comb, stats.Ratio(c.Cost(), opt))
		mod = append(mod, stats.Ratio(m.Cost(), opt))
		plain = append(plain, stats.Ratio(p.Cost(), opt))
	}
	cMean, cMax := ratioStats(comb)
	mMean, mMax := ratioStats(mod)
	pMean, pMax := ratioStats(plain)
	t.Add("set cover (Lemma 3.2)", "combined (shipped)", cMean, cMax)
	t.Add("set cover (Lemma 3.2)", "modified weights only", mMean, mMax)
	t.Add("set cover (Lemma 3.2)", "plain span only", pMean, pMax)

	// (c) Throughput Alg1 / Alg2 / combined, budget = half of optimal.
	var a1, a2, both []float64
	for seed := 0; seed < seeds; seed++ {
		in := workload.Clique(int64(seed), workload.Config{N: 10, G: 3, MaxTime: 200, MaxLen: 60})
		full, err := exact.MinBusyCost(in)
		if err != nil {
			panic(err)
		}
		budget := full / 2
		opt, err := exact.MaxThroughput(in, budget)
		if err != nil {
			panic(err)
		}
		if opt.Throughput() == 0 {
			continue
		}
		s1, err := core.CliqueAlg1(in, budget)
		if err != nil {
			panic(err)
		}
		s2, err := core.CliqueAlg2(in, budget)
		if err != nil {
			panic(err)
		}
		sc, err := core.CliqueThroughput(in, budget)
		if err != nil {
			panic(err)
		}
		o := float64(opt.Throughput())
		a1 = append(a1, float64(s1.Throughput())/o)
		a2 = append(a2, float64(s2.Throughput())/o)
		both = append(both, float64(sc.Throughput())/o)
	}
	m1 := stats.Summarize(a1)
	m2 := stats.Summarize(a2)
	mb := stats.Summarize(both)
	t.Add("throughput (Thm 4.1)", "Alg1 only", m1.Mean, m1.Min)
	t.Add("throughput (Thm 4.1)", "Alg2 only", m2.Mean, m2.Min)
	t.Add("throughput (Thm 4.1)", "combined (shipped)", mb.Mean, mb.Min)

	return Result{
		ID:    "E14",
		Title: "ablations of shipped design choices",
		Claim: "combined/best-of variants dominate each component alone",
		Table: t,
		Notes: []string{"throughput rows report (mean, min) of tput/opt rather than cost ratios"},
	}
}

// E15 measures the local-search post-optimizer (a beyond-paper
// engineering addition): starting from FirstFit and from the auto
// dispatcher, how much of the remaining gap to the oracle does hill
// climbing close on small instances?
func E15(seeds int) Result {
	t := &stats.Table{Header: []string{"start", "mean ratio before", "mean ratio after", "mean gap closed"}}
	type starter struct {
		name string
		run  func(job.Instance) core.Schedule
	}
	starters := []starter{
		{"first-fit", mustMinBusy("first-fit")},
		{"auto", func(in job.Instance) core.Schedule { s, _ := core.MinBusyAuto(in); return s }},
		{"naive", mustMinBusy("naive-per-job")},
	}
	for _, st := range starters {
		triples := parallel.Map(seeds, 0, func(seed int) [3]float64 {
			in := workload.General(int64(seed), workload.Config{N: 12, G: 3, MaxTime: 80, MaxLen: 30})
			opt, err := exact.MinBusyCost(in)
			if err != nil {
				panic(err)
			}
			before := st.run(in)
			after := localsearch.Improve(before, 0)
			if err := after.Validate(); err != nil {
				panic(err)
			}
			rb := stats.Ratio(before.Cost(), opt)
			ra := stats.Ratio(after.Cost(), opt)
			closed := 0.0
			if before.Cost() > opt {
				closed = float64(before.Cost()-after.Cost()) / float64(before.Cost()-opt)
			} else {
				closed = 1
			}
			return [3]float64{rb, ra, closed}
		})
		var rb, ra, cl []float64
		for _, tr := range triples {
			rb = append(rb, tr[0])
			ra = append(ra, tr[1])
			cl = append(cl, tr[2])
		}
		t.Add(st.name, stats.Summarize(rb).Mean, stats.Summarize(ra).Mean, stats.Summarize(cl).Mean)
	}
	return Result{
		ID:    "E15",
		Title: "local-search post-optimization (beyond paper)",
		Claim: "hill climbing never worsens and closes part of the optimality gap",
		Table: t,
	}
}

// E16 is the registry-driven conformance experiment (beyond paper): for
// every registered algorithm — walked from registry.List(), so a new
// registration appears here automatically — the internal/conformance
// harness generates seeded instances of the algorithm's declared
// classes, solves them through Solver.Solve, and checks certificates,
// the Observation 2.1 lower bound, the registered guarantee against the
// exact oracle, and the metamorphic invariants (permutation, time
// translation, duplication under doubled capacity). Any violation is
// shrunk to a minimal counterexample and reported in the notes as a
// reproducible Go literal; the experiment panics on violations so a
// regression can never be published silently.
func E16(seeds int) Result {
	cfg := conformance.DefaultConfig()
	if seeds > 0 {
		cfg.Seeds = seeds
	}
	outs, err := conformance.CheckAll(context.Background(), cfg)
	if err != nil {
		panic(err)
	}
	t := &stats.Table{Header: []string{"algorithm", "kind", "checked", "rejected", "violations"}}
	var notes []string
	for _, o := range outs {
		t.Add(o.Algorithm, o.Kind.String(), o.Checked, o.Rejected, len(o.Violations))
		for _, v := range o.Violations {
			notes = append(notes, v.String())
		}
	}
	if len(notes) > 0 {
		panic(fmt.Sprintf("E16: %d conformance violations:\n%s", len(notes), strings.Join(notes, "\n")))
	}
	return Result{
		ID:    "E16",
		Title: "registry-driven conformance harness (beyond paper)",
		Claim: "every registered algorithm passes certificate, bound, guarantee and metamorphic checks on its declared classes",
		Table: t,
		Notes: []string{"instances per (algorithm, class, g): " + fmt.Sprint(cfg.Seeds)},
	}
}

// E17 measures the streaming online subsystem (beyond paper): every
// served strategy — FirstFit, Buckets, BestFit and the weighted budgeted
// admission control — runs twice on the same seeded weighted arrival
// streams, once through the offline replay harness and once fed arrival
// by arrival through an incremental online.Session (the state behind
// busyd's POST /v1/stream). The streamed run's final cost, Observation
// 2.1 lower bound and empirical competitive ratio must agree exactly
// with the offline replay's; the experiment panics on any divergence, so
// the streaming path can never silently drift from the reference
// harness. The table reports the (identical) mean ratios plus the
// admission behaviour of the budgeted strategy.
func E17(seeds int) Result {
	cfg := workload.Config{N: 300, G: 4, MaxTime: 1500, MaxLen: 60}
	builders := []struct {
		name string
		mk   func(budget int64) online.Strategy
	}{
		{"online-firstfit", func(int64) online.Strategy { return online.FirstFit() }},
		{"online-buckets", func(int64) online.Strategy { return online.Buckets() }},
		{"online-bestfit", func(int64) online.Strategy { return online.BestFit() }},
		{"online-budget", func(budget int64) online.Strategy { return online.Budgeted(budget) }},
	}
	t := &stats.Table{Header: []string{"strategy", "streamed ratio", "offline ratio", "rejected %", "mismatches"}}
	for _, b := range builders {
		var streamed, offline, rejected []float64
		mismatches := 0
		for seed := 1; seed <= seeds; seed++ {
			in := workload.WeightedArrivals(int64(seed), cfg)
			budget := in.LowerBound() * 3 / 2 // tight enough to force rejections
			res, err := online.Replay(in, b.mk(budget))
			if err != nil {
				panic(err)
			}
			want := res.Summarize()

			sess, err := online.NewSession(in.G, b.mk(budget))
			if err != nil {
				panic(err)
			}
			for _, j := range in.SortedByStart().Jobs {
				if _, err := sess.Offer(j); err != nil {
					panic(err)
				}
			}
			got := sess.Summary()
			if got != want {
				mismatches++
			}
			streamed = append(streamed, got.Ratio)
			offline = append(offline, want.Ratio)
			rejected = append(rejected, 100*float64(got.Rejected)/float64(got.Arrivals))
		}
		sMean, _ := ratioStats(streamed)
		oMean, _ := ratioStats(offline)
		rMean, _ := ratioStats(rejected)
		t.Add(b.name, fmt.Sprintf("%.4f", sMean), fmt.Sprintf("%.4f", oMean), fmt.Sprintf("%.1f", rMean), mismatches)
		if mismatches > 0 {
			panic(fmt.Sprintf("E17: %s: %d of %d streamed sessions diverge from the offline replay", b.name, mismatches, seeds))
		}
	}
	return Result{
		ID:    "E17",
		Title: "streamed vs offline-replayed competitive ratios (beyond paper)",
		Claim: "feeding arrivals through an incremental session reproduces the offline replay harness exactly, for every strategy including budgeted admission control",
		Table: t,
		Notes: []string{fmt.Sprintf("weighted arrival streams, n=%d g=%d, budget = 1.5·LB for online-budget", cfg.N, cfg.G)},
	}
}

// E18 measures the reoptimization layer (beyond paper): warm-started
// delta solves against solve-from-scratch at n=1000 across delta sizes.
// For each trial a base instance is solved once into the fingerprint
// cache, then a delta instance (d jobs dropped, d added, canonical
// origin preserved) is solved twice — cold on a cache-free solver,
// warm on the cached one — and both wall clocks, costs and transition
// counts are compared. Every warm solve must be served via repair with
// a valid certificate, and single-job deltas must beat scratch on
// median wall clock: the whole point of carrying the incumbent.
func E18(seeds int) Result {
	cfg := workload.Config{N: 1000, G: 4, MaxTime: 8000, MaxLen: 120}
	ctx := context.Background()
	deltas := []int{1, 4, 16}
	t := &stats.Table{Header: []string{"delta", "median speedup", "mean cost ratio", "mean transition", "repairs"}}
	for _, d := range deltas {
		var speedups, costRatios, transitions []float64
		repairs := 0
		for seed := 1; seed <= seeds; seed++ {
			base := workload.General(int64(seed), cfg)
			warm := busytime.NewSolver(busytime.WithReoptimization(8))
			if _, err := warm.Solve(ctx, busytime.Request{Instance: base}); err != nil {
				panic(fmt.Sprintf("E18: base solve: %v", err))
			}

			// The delta: drop the d latest-starting jobs (the canonical
			// origin — the min start — survives) and add d interior jobs.
			mod := base.SortedByStart()
			minStart := mod.Jobs[0].Start()
			mod.Jobs = mod.Jobs[:len(mod.Jobs)-d]
			for k := 0; k < d; k++ {
				start := minStart + int64(37*(k+1)+seed*13)%cfg.MaxTime
				mod.Jobs = append(mod.Jobs, job.New(2_000_000+k, start, start+int64(20+k)))
			}

			scratchStart := time.Now()
			scratch, err := busytime.NewSolver().Solve(ctx, busytime.Request{Instance: mod})
			if err != nil {
				panic(fmt.Sprintf("E18: scratch solve: %v", err))
			}
			scratchTime := time.Since(scratchStart)

			warmStart := time.Now()
			rep, err := warm.Solve(ctx, busytime.Request{Instance: mod})
			if err != nil {
				panic(fmt.Sprintf("E18: warm solve: %v", err))
			}
			warmTime := time.Since(warmStart)

			if rep.CacheOutcome != busytime.CacheRepair {
				panic(fmt.Sprintf("E18: delta %d seed %d served as %q, want repair", d, seed, rep.CacheOutcome))
			}
			if err := rep.Certificate(); err != nil {
				panic(fmt.Sprintf("E18: repair certificate: %v", err))
			}
			if err := scratch.Certificate(); err != nil {
				panic(fmt.Sprintf("E18: scratch certificate: %v", err))
			}
			repairs++
			speedups = append(speedups, float64(scratchTime)/float64(warmTime))
			costRatios = append(costRatios, float64(rep.Cost)/float64(scratch.Cost))
			transitions = append(transitions, float64(rep.Transition))
		}
		med := median(speedups)
		cMean, _ := ratioStats(costRatios)
		tMean, _ := ratioStats(transitions)
		t.Add(fmt.Sprintf("%d", d), fmt.Sprintf("%.1fx", med), fmt.Sprintf("%.4f", cMean), fmt.Sprintf("%.1f", tMean), repairs)
		if d == 1 && med <= 1 {
			panic(fmt.Sprintf("E18: single-job deltas repaired at %.2fx — not faster than scratch", med))
		}
	}
	return Result{
		ID:    "E18",
		Title: "reoptimization: warm-started delta solves vs solve-from-scratch (beyond paper)",
		Claim: "repairing the cached incumbent around a small delta is faster than re-solving, at near-scratch cost, with transition cost proportional to the delta",
		Table: t,
		Notes: []string{fmt.Sprintf("n=%d g=%d, d jobs dropped + d added per trial; speedup is scratch/warm wall clock", cfg.N, cfg.G)},
	}
}

// median returns the middle of the sorted copy (mean of the two middles
// for even sizes).
func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if len(s)%2 == 1 {
		return s[len(s)/2]
	}
	return (s[len(s)/2-1] + s[len(s)/2]) / 2
}

func treeLaminarTrial(seed int64) (tree.Assignment, int64) {
	// Line of 30 unit edges, requests all anchored at node 0.
	edges := make([]tree.Edge, 30)
	for i := range edges {
		edges[i] = tree.Edge{U: i, V: i + 1, Length: 1}
	}
	tr, err := tree.New(31, edges)
	if err != nil {
		panic(err)
	}
	g := 3
	n := 12
	reqs := make([]tree.Request, n)
	lens := make([]int64, n)
	for i := range reqs {
		end := 1 + int((seed*31+int64(i)*17)%30)
		reqs[i] = tree.Request{ID: i, Path: tr.PathBetween(0, end)}
		lens[i] = int64(end)
	}
	asg := tree.GreedyGroom(reqs, g)
	// One-sided optimum.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if lens[j] > lens[i] {
				lens[i], lens[j] = lens[j], lens[i]
			}
		}
	}
	var want int64
	for i := 0; i < n; i += g {
		want += lens[i]
	}
	return asg, want
}

func ringTrial(seed int64) ring.Instance {
	in := ring.Instance{C: 300, G: 3}
	for i := 0; i < 25; i++ {
		v := seed*1009 + int64(i)*733
		ts := v % 40
		if ts < 0 {
			ts = -ts
		}
		in.Jobs = append(in.Jobs, ring.Job{
			ID:     i,
			Arc:    ring.Arc{Start: abs64(v*7) % 300, Length: 1 + abs64(v*13)%120},
			TStart: ts,
			TEnd:   ts + 1 + abs64(v*3)%25,
		})
	}
	return in
}

func abs64(x int64) int64 {
	if x < 0 {
		return -x
	}
	return x
}

// Gamma1 re-exports the γ₁ of a rectangle instance for reporting.
func Gamma1(in job.RectInstance) float64 { return rect.Gamma(in.Rects(), 1) }

// All runs every experiment with default sizes, in index order.
func All() []Result {
	return []Result{
		E1(Seeds), E2(Seeds), E3(Seeds), E4(Seeds), E5(), E6(10),
		E7(Seeds), E8(30), E9(Seeds), E10(30), E11(Seeds), E13(20), E14(30), E15(30), E16(3),
		E17(10), E18(5),
	}
}

// Asymptote returns 6γ+3, exported for table annotations.
func Asymptote(gamma int64) float64 { return math.FMA(6, float64(gamma), 3) }

// SetCoverBound returns the Lemma 3.2 ratio g·H_g/(H_g+g−1).
func SetCoverBound(g int) float64 {
	hg := setcover.Harmonic(g)
	return float64(g) * hg / (hg + float64(g) - 1)
}

// BoundTable tabulates the paper's claimed approximation bounds as a
// function of g, verifying the in-text claims that the Lemma 3.2 bound is
// monotonically increasing and stays below 2 up to g = 6, and that it
// beats both the BestCut bound and the flat 2-approximation of [13] at
// small g.
func BoundTable(maxG int) Result {
	t := &stats.Table{Header: []string{"g", "Lemma 3.2 bound", "Thm 3.1 bound (2-1/g)", "[13] bound"}}
	prev := 0.0
	for g := 1; g <= maxG; g++ {
		b := SetCoverBound(g)
		if b < prev {
			panic("BoundTable: Lemma 3.2 bound not monotone")
		}
		if (b < 2) != (g <= 6) {
			panic("BoundTable: < 2 iff g <= 6 claim violated")
		}
		prev = b
		t.Add(g, b, 2-1/float64(g), 2.0)
	}
	return Result{
		ID:    "B1",
		Title: "closed-form bound landscape",
		Claim: "Lemma 3.2 bound is monotone in g and < 2 exactly for g ≤ 6",
		Table: t,
	}
}
