package experiments

import (
	"strings"
	"testing"
)

// The experiment suite panics when a measured invariant is violated (e.g.
// E5's exact cost prediction); running a reduced version of every
// experiment doubles as an integration test across all packages.

func TestE1Optimal(t *testing.T) {
	r := E1(5)
	out := r.String()
	if !strings.Contains(out, "E1") {
		t.Fatalf("render: %s", out)
	}
	for _, row := range r.Table.Rows {
		if row[2] != "1.000" || row[3] != "1.000" {
			t.Errorf("E1 ratio row not optimal: %v", row)
		}
	}
}

func TestE2WithinBound(t *testing.T) {
	r := E2(5)
	for _, row := range r.Table.Rows {
		if row[3] > row[1] { // string compare works: same width %.3f formatting
			t.Errorf("E2 max ratio exceeds bound: %v", row)
		}
	}
}

func TestE3WithinBound(t *testing.T) {
	r := E3(5)
	for _, row := range r.Table.Rows {
		if row[3] > row[1] {
			t.Errorf("E3 BestCut max exceeds bound: %v", row)
		}
	}
}

func TestE4Optimal(t *testing.T) {
	r := E4(5)
	for _, row := range r.Table.Rows {
		if row[3] != "1.000" {
			t.Errorf("E4 not optimal: %v", row)
		}
	}
}

func TestE5PredictionsHold(t *testing.T) {
	// E5 panics internally if the simulated FirstFit cost deviates from
	// the Lemma 3.5 prediction.
	r := E5()
	if len(r.Table.Rows) != 12 {
		t.Fatalf("E5 rows = %d", len(r.Table.Rows))
	}
	for _, row := range r.Table.Rows {
		if row[4] != row[5] {
			t.Errorf("E5 measured ratio %s != closed form %s", row[4], row[5])
		}
	}
}

func TestE6Runs(t *testing.T) {
	r := E6(3)
	if len(r.Table.Rows) == 0 {
		t.Fatal("E6 produced no rows")
	}
}

func TestE7Bound(t *testing.T) {
	r := E7(5)
	for _, row := range r.Table.Rows {
		if row[3] < "0.250" {
			t.Errorf("E7 min ratio below 1/4: %v", row)
		}
	}
}

func TestE8Optimal(t *testing.T) {
	r := E8(5)
	for _, row := range r.Table.Rows {
		if row[2] != "1.000" {
			t.Errorf("E8 DP not optimal: %v", row)
		}
	}
}

func TestE9GApprox(t *testing.T) {
	r := E9(5)
	for _, row := range r.Table.Rows {
		if row[2] > "1.000" {
			t.Errorf("E9 exceeded g·OPT: %v", row)
		}
	}
}

func TestE10ExactMatches(t *testing.T) {
	r := E10(5)
	for _, row := range r.Table.Rows {
		if !strings.HasPrefix(row[1], "5/5") {
			t.Errorf("E10 reduction missed OPT: %v", row)
		}
	}
}

func TestE11Optimal(t *testing.T) {
	r := E11(5)
	for _, row := range r.Table.Rows {
		if row[2] != "1.000" {
			t.Errorf("E11 not optimal: %v", row)
		}
	}
}

func TestE13Extensions(t *testing.T) {
	r := E13(5)
	if len(r.Table.Rows) != 4 {
		t.Fatalf("E13 rows = %d", len(r.Table.Rows))
	}
	if r.Table.Rows[0][2] != "true" {
		t.Errorf("tree greedy not optimal on laminar: %v", r.Table.Rows[0])
	}
}

func TestE14AblationsCombinedDominates(t *testing.T) {
	r := E14(5)
	if len(r.Table.Rows) != 8 {
		t.Fatalf("E14 rows = %d", len(r.Table.Rows))
	}
	// BestCut (row 0) must dominate the single cut (row 1) on mean ratio.
	if r.Table.Rows[0][2] > r.Table.Rows[1][2] {
		t.Errorf("best-of-offsets %s worse than single cut %s", r.Table.Rows[0][2], r.Table.Rows[1][2])
	}
	// Combined set cover (row 2) must dominate both variants (rows 3, 4).
	if r.Table.Rows[2][2] > r.Table.Rows[3][2] || r.Table.Rows[2][2] > r.Table.Rows[4][2] {
		t.Errorf("combined set cover not dominant: %v", r.Table.Rows[2:5])
	}
	// Combined throughput (row 7, mean column) must dominate Alg1 and Alg2.
	if r.Table.Rows[7][2] < r.Table.Rows[5][2] || r.Table.Rows[7][2] < r.Table.Rows[6][2] {
		t.Errorf("combined throughput not dominant: %v", r.Table.Rows[5:8])
	}
}

func TestE15LocalSearchNeverWorsens(t *testing.T) {
	r := E15(5)
	if len(r.Table.Rows) != 3 {
		t.Fatalf("E15 rows = %d", len(r.Table.Rows))
	}
	for _, row := range r.Table.Rows {
		if row[2] > row[1] {
			t.Errorf("local search worsened mean ratio: %v", row)
		}
	}
}

func TestE16ConformanceClean(t *testing.T) {
	// E16 panics when the conformance harness reports a violation, so a
	// successful run with one row per registered algorithm and an all-zero
	// violations column is the assertion.
	r := E16(2)
	if len(r.Table.Rows) == 0 {
		t.Fatal("E16 produced no rows")
	}
	for _, row := range r.Table.Rows {
		if row[4] != "0" {
			t.Errorf("E16 reports violations: %v", row)
		}
	}
}

func TestBoundTableClaims(t *testing.T) {
	// BoundTable panics internally when the paper's claims about the
	// bound landscape fail; g up to 20 exercises both sides of the g=6
	// threshold.
	r := BoundTable(20)
	if len(r.Table.Rows) != 20 {
		t.Fatalf("rows = %d", len(r.Table.Rows))
	}
	// Spot values: g=2 -> 1.2, g=6 -> just under 2, g=7 -> over 2.
	if r.Table.Rows[1][1] != "1.200" {
		t.Errorf("g=2 bound = %s", r.Table.Rows[1][1])
	}
	if SetCoverBound(6) >= 2 || SetCoverBound(7) < 2 {
		t.Error("g=6/7 threshold wrong")
	}
}

func TestAllRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment suite in short mode")
	}
	rs := All()
	if len(rs) != 17 {
		t.Fatalf("All produced %d results", len(rs))
	}
	ids := map[string]bool{}
	for _, r := range rs {
		if ids[r.ID] {
			t.Errorf("duplicate experiment ID %s", r.ID)
		}
		ids[r.ID] = true
		if r.Table == nil || len(r.Table.Rows) == 0 {
			t.Errorf("%s: empty table", r.ID)
		}
	}
}
