package matching

import (
	"context"
	"math/rand"
	"testing"
	"testing/quick"
)

func matchWeight(t *testing.T, n int, edges []Edge, mate []int) int64 {
	t.Helper()
	if len(mate) != n {
		t.Fatalf("mate has length %d, want %d", len(mate), n)
	}
	for u, v := range mate {
		if v == -1 {
			continue
		}
		if v < 0 || v >= n || mate[v] != u {
			t.Fatalf("mate not symmetric at %d -> %d", u, v)
		}
		if v == u {
			t.Fatalf("self-matched vertex %d", u)
		}
	}
	return Weight(mate, edges)
}

func TestEmptyGraph(t *testing.T) {
	mate := Max(4, nil)
	for _, v := range mate {
		if v != -1 {
			t.Fatalf("unmatched expected, got %v", mate)
		}
	}
	if Max(0, nil) == nil {
		t.Fatal("zero-vertex graph should return empty slice, not nil")
	}
}

func TestSingleEdge(t *testing.T) {
	edges := []Edge{{0, 1, 7}}
	mate := Max(2, edges)
	if mate[0] != 1 || mate[1] != 0 {
		t.Fatalf("mate = %v", mate)
	}
	if w := matchWeight(t, 2, edges, mate); w != 7 {
		t.Fatalf("weight = %d", w)
	}
}

func TestNegativeEdgeIgnored(t *testing.T) {
	mate := Max(2, []Edge{{0, 1, -5}})
	if mate[0] != -1 || mate[1] != -1 {
		t.Fatalf("negative edge should not be matched: %v", mate)
	}
}

func TestPathGraph(t *testing.T) {
	// 0-1 (2), 1-2 (3), 2-3 (2): best is {0-1, 2-3} with weight 4.
	edges := []Edge{{0, 1, 2}, {1, 2, 3}, {2, 3, 2}}
	mate := Max(4, edges)
	if w := matchWeight(t, 4, edges, mate); w != 4 {
		t.Fatalf("weight = %d, want 4 (mate %v)", w, mate)
	}
}

func TestPathPrefersHeavyMiddle(t *testing.T) {
	// 0-1 (2), 1-2 (10), 2-3 (2): best is the middle edge alone.
	edges := []Edge{{0, 1, 2}, {1, 2, 10}, {2, 3, 2}}
	mate := Max(4, edges)
	if w := matchWeight(t, 4, edges, mate); w != 10 {
		t.Fatalf("weight = %d, want 10 (mate %v)", w, mate)
	}
	if mate[1] != 2 || mate[2] != 1 {
		t.Fatalf("middle edge not chosen: %v", mate)
	}
}

func TestTriangle(t *testing.T) {
	// Odd cycle: only one edge can be used; pick the heaviest.
	edges := []Edge{{0, 1, 5}, {1, 2, 6}, {0, 2, 4}}
	mate := Max(3, edges)
	if w := matchWeight(t, 3, edges, mate); w != 6 {
		t.Fatalf("weight = %d, want 6 (mate %v)", w, mate)
	}
}

func TestBlossomFormation(t *testing.T) {
	// Classic blossom test (van Rantwijk test case): a 5-cycle with a tail
	// forcing blossom contraction and expansion.
	edges := []Edge{
		{1, 2, 9}, {1, 3, 8}, {2, 3, 10}, {1, 4, 5}, {4, 5, 4}, {1, 6, 3},
	}
	mate := Max(7, edges)
	wantW, _ := BruteForce(7, edges)
	if w := matchWeight(t, 7, edges, mate); w != wantW {
		t.Fatalf("weight = %d, want %d (mate %v)", w, wantW, mate)
	}
}

func TestNestedBlossoms(t *testing.T) {
	// Known hard case: nested S-blossoms requiring expansion (adapted from
	// the reference implementation's test 34).
	edges := []Edge{
		{1, 2, 19}, {1, 3, 20}, {1, 8, 8}, {2, 3, 25}, {2, 4, 18},
		{3, 5, 18}, {4, 5, 13}, {4, 7, 7}, {5, 6, 7},
	}
	n := 9
	mate := Max(n, edges)
	wantW, _ := BruteForce(n, edges)
	if w := matchWeight(t, n, edges, mate); w != wantW {
		t.Fatalf("weight = %d, want %d (mate %v)", w, wantW, mate)
	}
}

func TestBlossomExpansionCases(t *testing.T) {
	// Further reference cases that historically trigger distinct code
	// paths: blossom with T-relabeling and expanded blossom reached via
	// delta-4.
	cases := [][]Edge{
		{
			{1, 2, 45}, {1, 5, 45}, {2, 3, 50}, {3, 4, 45}, {4, 5, 50},
			{1, 6, 30}, {3, 9, 35}, {4, 8, 35}, {5, 7, 26}, {9, 10, 5},
		},
		{
			{1, 2, 45}, {1, 5, 45}, {2, 3, 50}, {3, 4, 45}, {4, 5, 50},
			{1, 6, 30}, {3, 9, 35}, {4, 8, 26}, {5, 7, 40}, {9, 10, 5},
		},
		{
			{1, 2, 45}, {1, 7, 45}, {2, 3, 50}, {3, 4, 45}, {4, 5, 95},
			{4, 6, 94}, {5, 6, 94}, {6, 7, 50}, {1, 8, 30}, {3, 11, 35},
			{5, 9, 36}, {7, 10, 26}, {11, 12, 5},
		},
	}
	for ci, edges := range cases {
		n := 0
		for _, e := range edges {
			if e.U >= n {
				n = e.U + 1
			}
			if e.V >= n {
				n = e.V + 1
			}
		}
		mate := Max(n, edges)
		wantW, _ := BruteForce(n, edges)
		if w := matchWeight(t, n, edges, mate); w != wantW {
			t.Fatalf("case %d: weight = %d, want %d (mate %v)", ci, w, wantW, mate)
		}
	}
}

func TestCompleteGraphSmall(t *testing.T) {
	// K6 with distinct weights: perfect matching must be chosen optimally.
	var edges []Edge
	w := int64(1)
	for i := 0; i < 6; i++ {
		for j := i + 1; j < 6; j++ {
			edges = append(edges, Edge{i, j, (w*w*7)%31 + 1})
			w++
		}
	}
	mate := Max(6, edges)
	wantW, _ := BruteForce(6, edges)
	if got := matchWeight(t, 6, edges, mate); got != wantW {
		t.Fatalf("weight = %d, want %d", got, wantW)
	}
}

func TestPanicsOnSelfLoop(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("self-loop did not panic")
		}
	}()
	Max(2, []Edge{{1, 1, 3}})
}

func TestPanicsOnOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range vertex did not panic")
		}
	}()
	Max(2, []Edge{{0, 5, 3}})
}

func randomGraph(r *rand.Rand, n, m int, maxW int64) []Edge {
	var edges []Edge
	for k := 0; k < m; k++ {
		u := r.Intn(n)
		v := r.Intn(n)
		if u == v {
			continue
		}
		edges = append(edges, Edge{u, v, r.Int63n(maxW) + 1})
	}
	return edges
}

// Property: blossom solver matches the exponential oracle on random dense
// graphs up to 10 vertices.
func TestPropertyMatchesBruteForce(t *testing.T) {
	f := func(seed int64, nRaw, mRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := int(nRaw%9) + 2
		m := int(mRaw%40) + 1
		edges := randomGraph(r, n, m, 50)
		mate := Max(n, edges)
		for u, v := range mate {
			if v != -1 && mate[v] != u {
				return false
			}
		}
		wantW, _ := BruteForce(n, edges)
		return Weight(mate, edges) == wantW
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: on complete graphs with small weights (maximum blossom stress),
// the solver still matches the oracle.
func TestPropertyCompleteGraphs(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := int(nRaw%8) + 2
		var edges []Edge
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				edges = append(edges, Edge{i, j, r.Int63n(8) + 1})
			}
		}
		mate := Max(n, edges)
		wantW, _ := BruteForce(n, edges)
		return Weight(mate, edges) == wantW
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestBruteForceMate(t *testing.T) {
	edges := []Edge{{0, 1, 2}, {1, 2, 10}, {2, 3, 2}}
	w, mate := BruteForce(4, edges)
	if w != 10 {
		t.Fatalf("BruteForce weight = %d", w)
	}
	if mate[1] != 2 || mate[2] != 1 || mate[0] != -1 || mate[3] != -1 {
		t.Fatalf("BruteForce mate = %v", mate)
	}
}

func TestBruteForcePanicsOnLargeN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("n=25 did not panic")
		}
	}()
	BruteForce(25, nil)
}

func TestMaxCtxCancellation(t *testing.T) {
	// A dense random graph large enough that the blossom search performs
	// well over one ctx-check interval of inner steps: a pre-canceled
	// context must abort the stage loop.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	n := 120
	var edges []Edge
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			edges = append(edges, Edge{U: i, V: j, Weight: int64(1 + (i*7+j*13)%50)})
		}
	}
	if _, err := MaxCtx(ctx, n, edges); err != context.Canceled {
		t.Errorf("MaxCtx returned %v, want context.Canceled", err)
	}
}

func TestMaxCtxBackgroundMatchesMax(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		n := 2 + r.Intn(10)
		var edges []Edge
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if r.Intn(2) == 0 {
					edges = append(edges, Edge{U: i, V: j, Weight: int64(r.Intn(40))})
				}
			}
		}
		want := Max(n, edges)
		got, err := MaxCtx(context.Background(), n, edges)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: length mismatch", trial)
		}
		for v := range got {
			if got[v] != want[v] {
				t.Fatalf("trial %d: mate[%d] = %d vs %d", trial, v, got[v], want[v])
			}
		}
	}
}
