package matching

// BruteForce computes a maximum-weight matching exactly by dynamic
// programming over vertex subsets. It runs in O(2^n · n) time and is the
// ground-truth oracle the test suite checks the blossom solver against.
// It panics for n > 24 to avoid accidental blow-ups.
func BruteForce(n int, edges []Edge) (int64, []int) {
	if n > 24 {
		panic("matching: BruteForce limited to n <= 24")
	}
	// w[u][v] = heaviest positive edge between u and v.
	w := make([][]int64, n)
	for i := range w {
		w[i] = make([]int64, n)
		for j := range w[i] {
			w[i][j] = -1
		}
	}
	for _, e := range edges {
		if e.Weight > 0 && e.Weight > w[e.U][e.V] {
			w[e.U][e.V] = e.Weight
			w[e.V][e.U] = e.Weight
		}
	}

	size := 1 << n
	best := make([]int64, size)
	choice := make([]int32, size) // encodes (v<<5)|u of matched pair, or -1 for skip
	for i := range choice {
		choice[i] = -2
	}
	for mask := 1; mask < size; mask++ {
		u := lowestBit(mask)
		// Option 1: leave u unmatched.
		best[mask] = best[mask&^(1<<u)]
		choice[mask] = -1
		// Option 2: match u with some v.
		rest := mask &^ (1 << u)
		for m := rest; m != 0; m &= m - 1 {
			v := lowestBit(m)
			if w[u][v] < 0 {
				continue
			}
			cand := w[u][v] + best[rest&^(1<<v)]
			if cand > best[mask] {
				best[mask] = cand
				choice[mask] = int32(v<<5 | u)
			}
		}
	}

	mate := make([]int, n)
	for i := range mate {
		mate[i] = -1
	}
	mask := size - 1
	for mask != 0 {
		u := lowestBit(mask)
		c := choice[mask]
		if c == -1 {
			mask &^= 1 << u
			continue
		}
		v := int(c >> 5)
		mate[u], mate[v] = v, u
		mask &^= 1<<u | 1<<v
	}
	return best[size-1], mate
}

func lowestBit(mask int) int {
	b := 0
	for mask&1 == 0 {
		mask >>= 1
		b++
	}
	return b
}
