// Package matching implements maximum-weight matching in general graphs.
//
// The busy-time paper (Lemma 3.1) solves clique instances of MinBusy with
// g = 2 exactly by reducing to maximum-weight matching on the overlap graph
// G_m: a machine that runs two jobs saves their overlap length, so the
// minimum-cost schedule corresponds to a maximum-weight matching.
//
// The implementation is the classical O(V³) primal-dual blossom algorithm
// (Galil's formulation, following the widely used reference implementation
// by J. van Rantwijk). Weights are int64; the solver internally doubles all
// weights so that dual variables stay integral throughout — no floating
// point is involved, and results are exact.
//
// Package matching also ships an exponential-time oracle (BruteForce) used
// by the test suite to cross-check the blossom solver on small graphs.
package matching

import "context"

// ctxCheckInterval is how many inner-loop steps (queue scans, dual
// adjustments) run between context checks in the blossom solver:
// frequent enough that cancellation lands within microseconds on
// thousand-vertex graphs, rare enough that the check is free.
const ctxCheckInterval = 1 << 12

// Edge is an undirected weighted edge between distinct vertices U < V is
// not required; self-loops are forbidden.
type Edge struct {
	U, V   int
	Weight int64
}

// Max computes a maximum-weight matching of the n-vertex graph with the
// given edges. The result maps each vertex to its mate, or -1 when the
// vertex is unmatched. Negative-weight edges never help a maximum-weight
// matching and are ignored. Max panics on self-loops or out-of-range
// vertices, which are programming errors.
func Max(n int, edges []Edge) []int {
	mate, err := MaxCtx(context.Background(), n, edges)
	if err != nil {
		// Background is never canceled; solve has no other error path.
		panic("matching: " + err.Error())
	}
	return mate
}

// MaxCtx is Max with cooperative cancellation: the O(V³) primal-dual
// stage loop checks ctx every ctxCheckInterval inner steps and returns
// ctx.Err() once it fires, so a Solver deadline can abandon a large
// matching mid-stage.
func MaxCtx(ctx context.Context, n int, edges []Edge) ([]int, error) {
	useful := make([]Edge, 0, len(edges))
	// Clique instances feed Θ(n²) edges through here, so even this
	// validation pass gets a strided cancellation point.
	for i, e := range edges {
		if i%ctxCheckInterval == 0 && ctx.Err() != nil {
			return nil, ctx.Err()
		}
		if e.U == e.V {
			panic("matching: self-loop")
		}
		if e.U < 0 || e.U >= n || e.V < 0 || e.V >= n {
			panic("matching: vertex out of range")
		}
		if e.Weight > 0 {
			useful = append(useful, e)
		}
	}
	if len(useful) == 0 || n == 0 {
		mate := make([]int, n)
		//lint:ignore busylint/ctxloop single O(n) initialization pass; nothing to cancel
		for i := range mate {
			mate[i] = -1
		}
		return mate, nil
	}
	s := newSolver(n, useful)
	return s.solve(ctx)
}

// Weight returns the total weight of the matching mate over edges. It is a
// reporting helper: mate[u] == v with u < v counts the heaviest edge
// between u and v once.
func Weight(mate []int, edges []Edge) int64 {
	best := map[[2]int]int64{}
	for _, e := range edges {
		a, b := e.U, e.V
		if a > b {
			a, b = b, a
		}
		key := [2]int{a, b}
		if w, ok := best[key]; !ok || e.Weight > w {
			best[key] = e.Weight
		}
	}
	var total int64
	for u, v := range mate {
		if v > u {
			total += best[[2]int{u, v}]
		}
	}
	return total
}

// solver carries the blossom algorithm state. Vertices are 0..n-1;
// blossoms are n..2n-1. Endpoint p encodes edge p/2 and side p%2.
type solver struct {
	n     int
	edges []Edge

	endpoint  []int   // endpoint[p] = vertex at endpoint p
	neighbend [][]int // neighbend[v] = remote endpoints of edges incident to v

	mate             []int   // mate[v] = remote endpoint of matched edge, -1 if free
	label            []int   // 0 free, 1 S, 2 T (per vertex and per blossom)
	labelend         []int   // endpoint through which the label was assigned
	inblossom        []int   // top-level blossom containing vertex v
	blossomparent    []int   // immediate parent blossom, -1 at top level
	blossomchilds    [][]int // ordered sub-blossoms of a blossom
	blossombase      []int   // base vertex of a blossom
	blossomendps     [][]int // endpoints connecting consecutive sub-blossoms
	bestedge         []int   // least-slack edge to a different S-blossom
	blossombestedges [][]int // per top-level S-blossom: candidate least-slack edges
	unusedblossoms   []int
	dualvar          []int64
	allowedge        []bool
	queue            []int

	ops int // inner-loop step counter driving periodic ctx checks
}

// tick counts one inner-loop step and reports the context error once
// every ctxCheckInterval steps.
func (s *solver) tick(ctx context.Context) error {
	s.ops++
	if s.ops%ctxCheckInterval == 0 {
		return ctx.Err()
	}
	return nil
}

func newSolver(n int, edges []Edge) *solver {
	s := &solver{n: n, edges: make([]Edge, len(edges))}
	var maxW int64
	for i, e := range edges {
		// Double weights so that duals and slacks remain integral.
		s.edges[i] = Edge{U: e.U, V: e.V, Weight: 2 * e.Weight}
		if s.edges[i].Weight > maxW {
			maxW = s.edges[i].Weight
		}
	}
	ne := len(edges)
	s.endpoint = make([]int, 2*ne)
	s.neighbend = make([][]int, n)
	for k, e := range s.edges {
		s.endpoint[2*k] = e.U
		s.endpoint[2*k+1] = e.V
		s.neighbend[e.U] = append(s.neighbend[e.U], 2*k+1)
		s.neighbend[e.V] = append(s.neighbend[e.V], 2*k)
	}
	s.mate = filled(n, -1)
	s.label = make([]int, 2*n)
	s.labelend = filled(2*n, -1)
	s.inblossom = iota2(n)
	s.blossomparent = filled(2*n, -1)
	s.blossomchilds = make([][]int, 2*n)
	s.blossombase = append(iota2(n), filled(n, -1)...)
	s.blossomendps = make([][]int, 2*n)
	s.bestedge = filled(2*n, -1)
	s.blossombestedges = make([][]int, 2*n)
	for b := n; b < 2*n; b++ {
		s.unusedblossoms = append(s.unusedblossoms, b)
	}
	s.dualvar = make([]int64, 2*n)
	for v := 0; v < n; v++ {
		s.dualvar[v] = maxW
	}
	s.allowedge = make([]bool, ne)
	return s
}

func filled(n, v int) []int {
	xs := make([]int, n)
	for i := range xs {
		xs[i] = v
	}
	return xs
}

func iota2(n int) []int {
	xs := make([]int, n)
	for i := range xs {
		xs[i] = i
	}
	return xs
}

// slack returns the dual slack of edge k: π_u + π_v − w(k) (non-negative
// for all edges at optimality; zero on matched edges).
func (s *solver) slack(k int) int64 {
	e := s.edges[k]
	return s.dualvar[e.U] + s.dualvar[e.V] - e.Weight
}

// blossomLeaves appends all ground vertices contained in blossom b to out.
func (s *solver) blossomLeaves(b int, out []int) []int {
	if b < s.n {
		return append(out, b)
	}
	for _, t := range s.blossomchilds[b] {
		out = s.blossomLeaves(t, out)
	}
	return out
}

// assignLabel labels the top-level blossom of w with t (1 = S, 2 = T),
// recording the endpoint p through which the label arrived, and schedules
// follow-up work (S-vertices are scanned; a T-blossom's base mate becomes
// an S-vertex).
func (s *solver) assignLabel(w, t, p int) {
	b := s.inblossom[w]
	s.label[w] = t
	s.label[b] = t
	s.labelend[w] = p
	s.labelend[b] = p
	s.bestedge[w] = -1
	s.bestedge[b] = -1
	if t == 1 {
		s.queue = s.blossomLeaves(b, s.queue)
	} else {
		base := s.blossombase[b]
		s.assignLabel(s.endpoint[s.mate[base]], 1, s.mate[base]^1)
	}
}

// scanBlossom traces back from vertices v and w to find either a new
// blossom's base vertex (returned) or an augmenting path (returns -1).
func (s *solver) scanBlossom(v, w int) int {
	var path []int
	base := -1
	for v != -1 || w != -1 {
		b := s.inblossom[v]
		if s.label[b]&4 != 0 {
			base = s.blossombase[b]
			break
		}
		path = append(path, b)
		s.label[b] = 5
		if s.labelend[b] == -1 {
			v = -1
		} else {
			v = s.endpoint[s.labelend[b]]
			b = s.inblossom[v]
			v = s.endpoint[s.labelend[b]]
		}
		if w != -1 {
			v, w = w, v
		}
	}
	for _, b := range path {
		s.label[b] = 1
	}
	return base
}

// addBlossom contracts the odd cycle through edge k with the given base
// vertex into a new blossom.
func (s *solver) addBlossom(base, k int) {
	v, w := s.edges[k].U, s.edges[k].V
	bb := s.inblossom[base]
	bv := s.inblossom[v]
	bw := s.inblossom[w]
	b := s.unusedblossoms[len(s.unusedblossoms)-1]
	s.unusedblossoms = s.unusedblossoms[:len(s.unusedblossoms)-1]

	s.blossombase[b] = base
	s.blossomparent[b] = -1
	s.blossomparent[bb] = b

	var path, endps []int
	for bv != bb {
		s.blossomparent[bv] = b
		path = append(path, bv)
		endps = append(endps, s.labelend[bv])
		v = s.endpoint[s.labelend[bv]]
		bv = s.inblossom[v]
	}
	path = append(path, bb)
	reverse(path)
	reverse(endps)
	endps = append(endps, 2*k)
	for bw != bb {
		s.blossomparent[bw] = b
		path = append(path, bw)
		endps = append(endps, s.labelend[bw]^1)
		w = s.endpoint[s.labelend[bw]]
		bw = s.inblossom[w]
	}
	s.blossomchilds[b] = path
	s.blossomendps[b] = endps

	s.label[b] = 1
	s.labelend[b] = s.labelend[bb]
	s.dualvar[b] = 0
	for _, leaf := range s.blossomLeaves(b, nil) {
		if s.label[s.inblossom[leaf]] == 2 {
			s.queue = append(s.queue, leaf)
		}
		s.inblossom[leaf] = b
	}

	// Recompute the least-slack edge to every other top-level S-blossom.
	bestedgeto := filled(2*s.n, -1)
	for _, child := range path {
		var lists [][]int
		if s.blossombestedges[child] == nil {
			for _, leaf := range s.blossomLeaves(child, nil) {
				list := make([]int, len(s.neighbend[leaf]))
				for i, p := range s.neighbend[leaf] {
					list[i] = p / 2
				}
				lists = append(lists, list)
			}
		} else {
			lists = [][]int{s.blossombestedges[child]}
		}
		for _, list := range lists {
			for _, ek := range list {
				i, j := s.edges[ek].U, s.edges[ek].V
				if s.inblossom[j] == b {
					i, j = j, i
				}
				bj := s.inblossom[j]
				if bj != b && s.label[bj] == 1 &&
					(bestedgeto[bj] == -1 || s.slack(ek) < s.slack(bestedgeto[bj])) {
					bestedgeto[bj] = ek
				}
				_ = i
			}
		}
		s.blossombestedges[child] = nil
		s.bestedge[child] = -1
	}
	var kept []int
	for _, ek := range bestedgeto {
		if ek != -1 {
			kept = append(kept, ek)
		}
	}
	s.blossombestedges[b] = kept
	s.bestedge[b] = -1
	for _, ek := range kept {
		if s.bestedge[b] == -1 || s.slack(ek) < s.slack(s.bestedge[b]) {
			s.bestedge[b] = ek
		}
	}
}

// expandBlossom undoes the contraction of blossom b. During a stage
// (endstage false) the sub-blossoms inherit labels so the search can
// continue; at the end of the algorithm (endstage true) zero-dual blossoms
// are expanded recursively.
func (s *solver) expandBlossom(b int, endstage bool) {
	for _, child := range s.blossomchilds[b] {
		s.blossomparent[child] = -1
		if child < s.n {
			s.inblossom[child] = child
		} else if endstage && s.dualvar[child] == 0 {
			s.expandBlossom(child, endstage)
		} else {
			for _, leaf := range s.blossomLeaves(child, nil) {
				s.inblossom[leaf] = child
			}
		}
	}
	if !endstage && s.label[b] == 2 {
		entrychild := s.inblossom[s.endpoint[s.labelend[b]^1]]
		j := indexOf(s.blossomchilds[b], entrychild)
		var jstep, endptrick int
		if j&1 != 0 {
			j -= len(s.blossomchilds[b])
			jstep = 1
			endptrick = 0
		} else {
			jstep = -1
			endptrick = 1
		}
		p := s.labelend[b]
		for j != 0 {
			s.label[s.endpoint[p^1]] = 0
			s.label[s.endpoint[at(s.blossomendps[b], j-endptrick)^endptrick^1]] = 0
			s.assignLabel(s.endpoint[p^1], 2, p)
			s.allowedge[at(s.blossomendps[b], j-endptrick)/2] = true
			j += jstep
			p = at(s.blossomendps[b], j-endptrick) ^ endptrick
			s.allowedge[p/2] = true
			j += jstep
		}
		bv := at2(s.blossomchilds[b], j)
		s.label[s.endpoint[p^1]] = 2
		s.label[bv] = 2
		s.labelend[s.endpoint[p^1]] = p
		s.labelend[bv] = p
		s.bestedge[bv] = -1
		j += jstep
		for at2(s.blossomchilds[b], j) != entrychild {
			bv := at2(s.blossomchilds[b], j)
			if s.label[bv] == 1 {
				j += jstep
				continue
			}
			var labeled int = -1
			for _, leaf := range s.blossomLeaves(bv, nil) {
				if s.label[leaf] != 0 {
					labeled = leaf
					break
				}
			}
			if labeled != -1 {
				s.label[labeled] = 0
				s.label[s.endpoint[s.mate[s.blossombase[bv]]]] = 0
				s.assignLabel(labeled, 2, s.labelend[labeled])
			}
			j += jstep
		}
	}
	s.label[b] = -1
	s.labelend[b] = -1
	s.blossomchilds[b] = nil
	s.blossomendps[b] = nil
	s.blossombase[b] = -1
	s.blossombestedges[b] = nil
	s.bestedge[b] = -1
	s.unusedblossoms = append(s.unusedblossoms, b)
}

// at indexes a slice with Python-style negative indices (used by the
// blossom rotation logic, which walks the cycle in either direction).
func at(xs []int, i int) int {
	if i < 0 {
		i += len(xs)
	}
	return xs[i]
}

// at2 is at for blossom child lists.
func at2(xs []int, i int) int { return at(xs, i) }

// augmentBlossom rotates blossom b so that vertex v becomes its base,
// augmenting the matching along the internal path from v to the old base.
func (s *solver) augmentBlossom(b, v int) {
	t := v
	for s.blossomparent[t] != b {
		t = s.blossomparent[t]
	}
	if t >= s.n {
		s.augmentBlossom(t, v)
	}
	i := indexOf(s.blossomchilds[b], t)
	j := i
	var jstep, endptrick int
	if i&1 != 0 {
		j -= len(s.blossomchilds[b])
		jstep = 1
		endptrick = 0
	} else {
		jstep = -1
		endptrick = 1
	}
	for j != 0 {
		j += jstep
		t = at2(s.blossomchilds[b], j)
		p := at(s.blossomendps[b], j-endptrick) ^ endptrick
		if t >= s.n {
			s.augmentBlossom(t, s.endpoint[p])
		}
		j += jstep
		t = at2(s.blossomchilds[b], j)
		if t >= s.n {
			s.augmentBlossom(t, s.endpoint[p^1])
		}
		s.mate[s.endpoint[p]] = p ^ 1
		s.mate[s.endpoint[p^1]] = p
	}
	s.blossomchilds[b] = rotate(s.blossomchilds[b], i)
	s.blossomendps[b] = rotate(s.blossomendps[b], i)
	s.blossombase[b] = s.blossombase[s.blossomchilds[b][0]]
}

// augmentMatching flips matched/unmatched along the augmenting path through
// edge k, increasing the matching size by one.
func (s *solver) augmentMatching(k int) {
	for side := 0; side < 2; side++ {
		var sv, p int
		if side == 0 {
			sv, p = s.edges[k].U, 2*k+1
		} else {
			sv, p = s.edges[k].V, 2*k
		}
		for {
			bs := s.inblossom[sv]
			if bs >= s.n {
				s.augmentBlossom(bs, sv)
			}
			s.mate[sv] = p
			if s.labelend[bs] == -1 {
				break
			}
			t := s.endpoint[s.labelend[bs]]
			bt := s.inblossom[t]
			sv = s.endpoint[s.labelend[bt]]
			j := s.endpoint[s.labelend[bt]^1]
			if bt >= s.n {
				s.augmentBlossom(bt, j)
			}
			s.mate[j] = s.labelend[bt]
			p = s.labelend[bt] ^ 1
		}
	}
}

// solve runs the main stage loop and returns the vertex-to-mate map. It
// checks ctx on the edge-scan and dual-adjustment loops and abandons the
// search with ctx.Err() once the context fires.
func (s *solver) solve(ctx context.Context) ([]int, error) {
	n := s.n
	for stage := 0; stage < n; stage++ {
		for i := range s.label {
			s.label[i] = 0
		}
		for i := range s.bestedge {
			s.bestedge[i] = -1
		}
		for b := n; b < 2*n; b++ {
			s.blossombestedges[b] = nil
		}
		for i := range s.allowedge {
			s.allowedge[i] = false
		}
		s.queue = s.queue[:0]
		for v := 0; v < n; v++ {
			if s.mate[v] == -1 && s.label[s.inblossom[v]] == 0 {
				s.assignLabel(v, 1, -1)
			}
		}

		augmented := false
		for {
			for len(s.queue) > 0 && !augmented {
				v := s.queue[len(s.queue)-1]
				s.queue = s.queue[:len(s.queue)-1]
				for _, p := range s.neighbend[v] {
					if err := s.tick(ctx); err != nil {
						return nil, err
					}
					k := p / 2
					w := s.endpoint[p]
					if s.inblossom[v] == s.inblossom[w] {
						continue
					}
					var kslack int64
					if !s.allowedge[k] {
						kslack = s.slack(k)
						if kslack <= 0 {
							s.allowedge[k] = true
						}
					}
					if s.allowedge[k] {
						switch {
						case s.label[s.inblossom[w]] == 0:
							s.assignLabel(w, 2, p^1)
						case s.label[s.inblossom[w]] == 1:
							base := s.scanBlossom(v, w)
							if base >= 0 {
								s.addBlossom(base, k)
							} else {
								s.augmentMatching(k)
								augmented = true
							}
						case s.label[w] == 0:
							s.label[w] = 2
							s.labelend[w] = p ^ 1
						}
						if augmented {
							break
						}
					} else if s.label[s.inblossom[w]] == 1 {
						b := s.inblossom[v]
						if s.bestedge[b] == -1 || kslack < s.slack(s.bestedge[b]) {
							s.bestedge[b] = k
						}
					} else if s.label[w] == 0 {
						if s.bestedge[w] == -1 || kslack < s.slack(s.bestedge[w]) {
							s.bestedge[w] = k
						}
					}
				}
			}
			if augmented {
				break
			}

			// Compute the dual adjustment delta.
			if err := s.tick(ctx); err != nil {
				return nil, err
			}
			deltatype := 1
			var delta int64
			deltaedge, deltablossom := -1, -1
			delta = s.minVertexDual()
			for v := 0; v < n; v++ {
				if s.label[s.inblossom[v]] == 0 && s.bestedge[v] != -1 {
					d := s.slack(s.bestedge[v])
					if deltatype == -1 || d < delta {
						delta = d
						deltatype = 2
						deltaedge = s.bestedge[v]
					}
				}
			}
			for b := 0; b < 2*n; b++ {
				if s.blossomparent[b] == -1 && s.label[b] == 1 && s.bestedge[b] != -1 {
					d := s.slack(s.bestedge[b]) / 2
					if deltatype == -1 || d < delta {
						delta = d
						deltatype = 3
						deltaedge = s.bestedge[b]
					}
				}
			}
			for b := n; b < 2*n; b++ {
				if s.blossombase[b] >= 0 && s.blossomparent[b] == -1 && s.label[b] == 2 &&
					s.dualvar[b] < delta {
					delta = s.dualvar[b]
					deltatype = 4
					deltablossom = b
				}
			}

			// Apply delta to the dual variables.
			for v := 0; v < n; v++ {
				switch s.label[s.inblossom[v]] {
				case 1:
					s.dualvar[v] -= delta
				case 2:
					s.dualvar[v] += delta
				}
			}
			for b := n; b < 2*n; b++ {
				if s.blossombase[b] >= 0 && s.blossomparent[b] == -1 {
					switch s.label[b] {
					case 1:
						s.dualvar[b] += delta
					case 2:
						s.dualvar[b] -= delta
					}
				}
			}

			switch deltatype {
			case 1:
				// Optimum reached.
				augmented = false
			case 2:
				s.allowedge[deltaedge] = true
				i := s.edges[deltaedge].U
				if s.label[s.inblossom[i]] == 0 {
					i = s.edges[deltaedge].V
				}
				s.queue = append(s.queue, i)
			case 3:
				s.allowedge[deltaedge] = true
				s.queue = append(s.queue, s.edges[deltaedge].U)
			case 4:
				s.expandBlossom(deltablossom, false)
			}
			if deltatype == 1 {
				break
			}
		}
		if !augmented {
			break
		}
		for b := n; b < 2*n; b++ {
			if s.blossomparent[b] == -1 && s.blossombase[b] >= 0 &&
				s.label[b] == 1 && s.dualvar[b] == 0 {
				s.expandBlossom(b, true)
			}
		}
	}

	mate := make([]int, n)
	//lint:ignore busylint/ctxloop single O(n) extraction pass; the stage loop above observes ctx
	for v := 0; v < n; v++ {
		if s.mate[v] >= 0 {
			mate[v] = s.endpoint[s.mate[v]]
		} else {
			mate[v] = -1
		}
	}
	// Defensive symmetry repair is not needed — the algorithm maintains
	// mate symmetry — but verify in tests, not here.
	return mate, nil
}

func (s *solver) minVertexDual() int64 {
	m := s.dualvar[0]
	for v := 1; v < s.n; v++ {
		if s.dualvar[v] < m {
			m = s.dualvar[v]
		}
	}
	return m
}

func indexOf(xs []int, x int) int {
	for i, v := range xs {
		if v == x {
			return i
		}
	}
	panic("matching: element not found in blossom child list")
}

func reverse(xs []int) {
	for i, j := 0, len(xs)-1; i < j; i, j = i+1, j-1 {
		xs[i], xs[j] = xs[j], xs[i]
	}
}

func rotate(xs []int, i int) []int {
	out := make([]int, 0, len(xs))
	out = append(out, xs[i:]...)
	return append(out, xs[:i]...)
}
