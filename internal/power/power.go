// Package power implements the second energy mechanism sketched in
// Section 5: machines pay a wake-up cost when switching on, so it can be
// cheaper to idle across a short gap than to sleep and re-wake.
//
// Given a machine's busy intervals and a wake cost W (in the same units
// as time), the optimal policy is local and greedy: the machine must be on
// during busy intervals; across each idle gap of length L it either stays
// on (cost L) or sleeps and re-wakes (cost W), so each gap contributes
// min(L, W), plus one initial wake. This is the classical ski-rental
// structure with an exact offline optimum.
package power

import (
	"repro/internal/core"
	"repro/internal/interval"
)

// MachineEnergy returns the optimal on/idle/sleep energy for one machine:
// busy time + initial wake + Σ min(gap, wake) over idle gaps between busy
// segments. An empty busy set costs 0.
func MachineEnergy(busy []interval.Interval, wake int64) int64 {
	segs := interval.Union(busy)
	if len(segs) == 0 {
		return 0
	}
	total := wake
	for i, s := range segs {
		total += s.Len()
		if i > 0 {
			gap := s.Start - segs[i-1].End
			if gap < wake {
				total += gap
			} else {
				total += wake
			}
		}
	}
	return total
}

// ScheduleEnergy returns the total optimal energy of a schedule under a
// wake cost: the sum of MachineEnergy over machines. With wake = 0 it
// reduces to the busy-time cost plus nothing — exactly Schedule.Cost().
func ScheduleEnergy(s core.Schedule, wake int64) int64 {
	var total int64
	for _, positions := range s.MachineJobs() {
		ivs := make([]interval.Interval, len(positions))
		for k, p := range positions {
			ivs[k] = s.Instance.Jobs[p].Interval
		}
		total += MachineEnergy(ivs, wake)
	}
	return total
}

// Breakdown reports the energy components of a schedule under a wake
// cost, for the energy example and experiment tables.
type Breakdown struct {
	Busy   int64 // total busy time (the paper's objective)
	Idle   int64 // time spent idling across retained gaps
	Wakes  int64 // number of wake events
	Energy int64 // Busy + Idle + Wakes*wake
}

// Analyze computes the Breakdown of a schedule for a given wake cost.
func Analyze(s core.Schedule, wake int64) Breakdown {
	var b Breakdown
	for _, positions := range s.MachineJobs() {
		ivs := make([]interval.Interval, len(positions))
		for k, p := range positions {
			ivs[k] = s.Instance.Jobs[p].Interval
		}
		segs := interval.Union(ivs)
		if len(segs) == 0 {
			continue
		}
		b.Wakes++
		for i, seg := range segs {
			b.Busy += seg.Len()
			if i > 0 {
				gap := seg.Start - segs[i-1].End
				if gap < wake {
					b.Idle += gap
				} else {
					b.Wakes++
				}
			}
		}
	}
	b.Energy = b.Busy + b.Idle + b.Wakes*wake
	return b
}
