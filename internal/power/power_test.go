package power

import (
	"testing"

	"repro/internal/core"
	"repro/internal/interval"
	"repro/internal/job"
	"repro/internal/workload"
)

func TestMachineEnergyNoGaps(t *testing.T) {
	busy := []interval.Interval{interval.New(0, 10)}
	if got := MachineEnergy(busy, 5); got != 15 { // 10 busy + 1 wake
		t.Errorf("energy = %d, want 15", got)
	}
}

func TestMachineEnergyShortGapIdles(t *testing.T) {
	busy := []interval.Interval{interval.New(0, 10), interval.New(12, 20)}
	// Gap 2 < wake 5: idle through. 18 busy + 2 idle + 5 wake.
	if got := MachineEnergy(busy, 5); got != 25 {
		t.Errorf("energy = %d, want 25", got)
	}
}

func TestMachineEnergyLongGapSleeps(t *testing.T) {
	busy := []interval.Interval{interval.New(0, 10), interval.New(100, 110)}
	// Gap 90 > wake 5: sleep and re-wake. 20 busy + 2 wakes.
	if got := MachineEnergy(busy, 5); got != 30 {
		t.Errorf("energy = %d, want 30", got)
	}
}

func TestMachineEnergyEmpty(t *testing.T) {
	if MachineEnergy(nil, 7) != 0 {
		t.Error("empty machine should cost 0")
	}
}

func TestScheduleEnergyZeroWakeEqualsCost(t *testing.T) {
	in := workload.General(3, workload.Config{N: 12, G: 3, MaxTime: 80, MaxLen: 25})
	s, _ := core.MinBusyAuto(in)
	if got := ScheduleEnergy(s, 0); got != s.Cost() {
		t.Errorf("zero-wake energy %d != cost %d", got, s.Cost())
	}
}

func TestScheduleEnergyMonotoneInWake(t *testing.T) {
	in := workload.General(5, workload.Config{N: 15, G: 2, MaxTime: 100, MaxLen: 20})
	s := core.FirstFit(in)
	prev := int64(-1)
	for _, wake := range []int64{0, 1, 5, 20, 100} {
		e := ScheduleEnergy(s, wake)
		if e < prev {
			t.Fatalf("energy decreased at wake %d: %d < %d", wake, e, prev)
		}
		prev = e
	}
}

func TestAnalyzeComponentsSum(t *testing.T) {
	in := job.NewInstance(1, [2]int64{0, 10}, [2]int64{12, 20}, [2]int64{200, 210})
	s := core.NewSchedule(in)
	for i := range in.Jobs {
		s.Assign(i, 0) // all on one machine, g=1 valid: disjoint
	}
	wake := int64(5)
	b := Analyze(s, wake)
	if b.Busy != 28 {
		t.Errorf("busy = %d", b.Busy)
	}
	if b.Idle != 2 { // gap 2 retained; gap 180 slept
		t.Errorf("idle = %d", b.Idle)
	}
	if b.Wakes != 2 {
		t.Errorf("wakes = %d", b.Wakes)
	}
	if b.Energy != ScheduleEnergy(s, wake) {
		t.Errorf("Analyze energy %d != ScheduleEnergy %d", b.Energy, ScheduleEnergy(s, wake))
	}
}
