// Package journal is the durable write-ahead placement log behind
// /v1/stream: every session is an append-only sequence of hash-chained
// records — one open record fixing the session parameters, one event
// record per arrival (the arrival itself plus the placement the strategy
// committed), and one close record carrying the final report. Each
// record's hash covers the previous record's hash and the record's whole
// payload, so the last hash is a certificate of the entire stream: a
// verifier that replays the chain (Verify) re-derives every placement
// with the offline online harness and rejects any single-byte corruption.
//
// The journal is deliberately a deterministic function of the session
// parameters and the arrival sequence — records carry no wall-clock
// timestamps (busylint/detreplay forbids clock reads here, and the
// byte-equality contract between a resumed and an uninterrupted session
// depends on it: both must produce the identical chain). Queue/flush/
// solve timings are serving telemetry and live on the wire events, in
// /metrics and in the request log, never in the chain.
//
// Records persist through a small Store interface (MemStore for tests
// and ephemeral daemons, FileStore for a crash-safe single-file append
// log); a disconnected or killed session resumes by replaying its
// journal through Replay, which rebuilds the live online.Session
// state and hands back a Writer positioned at the chain's tail.
package journal

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"repro/internal/job"
	"repro/internal/online"
	"repro/internal/safemath"
)

// Record kinds, the "kind" discriminator of Record.
const (
	// KindOpen is the first record of every session: the parameters the
	// whole stream commits to.
	KindOpen = "open"
	// KindEvent records one arrival and the placement it received.
	KindEvent = "event"
	// KindClose is the final record: the session's closing report.
	KindClose = "close"
)

// genesisHex is the Prev of a session's open record: 32 zero bytes.
const genesisHex = "0000000000000000000000000000000000000000000000000000000000000000"

// maxSessionID bounds session identifiers; they appear in URLs, file
// contents and log lines.
const maxSessionID = 64

// ValidSessionID reports whether s is an acceptable session identifier:
// 1–64 characters from [A-Za-z0-9._-].
func ValidSessionID(s string) bool {
	if len(s) == 0 || len(s) > maxSessionID {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return false
		}
	}
	return true
}

// OpenParams are the session parameters fixed by the open record; they
// seed the hash chain, so two sessions with the same id, parameters and
// arrivals produce byte-identical journals.
type OpenParams struct {
	// G is the machine capacity.
	G int `json:"g"`
	// Strategy is the canonical registered online strategy name.
	Strategy string `json:"strategy"`
	// Budget is the busy-time budget for admission-control strategies
	// (0 = none).
	Budget int64 `json:"budget,omitempty"`
}

// Arrival is the journaled form of one streamed arrival — the input side
// of an event record, sufficient to replay the placement.
type Arrival struct {
	ID     int   `json:"id"`
	Start  int64 `json:"start"`
	End    int64 `json:"end"`
	Weight int64 `json:"weight"`
}

// ArrivalOf records a job as an arrival.
func ArrivalOf(j job.Job) Arrival {
	return Arrival{ID: j.ID, Start: j.Start(), End: j.End(), Weight: j.Weight}
}

// Job decodes the arrival back into a job, validating the shape first:
// a corrupted or forged record must produce an error, never reach the
// panicking interval constructor.
func (a Arrival) Job() (job.Job, error) {
	if a.End <= a.Start {
		return job.Job{}, fmt.Errorf("journal: arrival %d has empty interval [%d, %d)", a.ID, a.Start, a.End)
	}
	if a.Weight < 1 {
		return job.Job{}, fmt.Errorf("journal: arrival %d has weight %d, need >= 1", a.ID, a.Weight)
	}
	j := job.New(a.ID, a.Start, a.End)
	j.Weight = a.Weight
	return j, nil
}

// Event is the journaled form of one placement outcome, mirroring
// online.Event field for field so replay equivalence is an exact struct
// comparison.
type Event struct {
	Seq        int     `json:"seq"`
	JobID      int     `json:"job_id"`
	Rejected   bool    `json:"rejected,omitempty"`
	Machine    int     `json:"machine"`
	Opened     bool    `json:"opened,omitempty"`
	Marginal   int64   `json:"marginal"`
	Cost       int64   `json:"cost"`
	LowerBound int64   `json:"lower_bound"`
	Ratio      float64 `json:"ratio"`
	Open       int     `json:"open"`
}

// EventOf records a session event.
func EventOf(ev online.Event) Event {
	return Event{
		Seq: ev.Seq, JobID: ev.JobID, Rejected: ev.Rejected, Machine: ev.Machine,
		Opened: ev.Opened, Marginal: ev.Marginal, Cost: ev.Cost,
		LowerBound: ev.LowerBound, Ratio: ev.Ratio, Open: ev.Open,
	}
}

// OnlineEvent decodes the record back into the session event it mirrors.
func (e Event) OnlineEvent() online.Event {
	return online.Event{
		Seq: e.Seq, JobID: e.JobID, Rejected: e.Rejected, Machine: e.Machine,
		Opened: e.Opened, Marginal: e.Marginal, Cost: e.Cost,
		LowerBound: e.LowerBound, Ratio: e.Ratio, Open: e.Open,
	}
}

// Summary is the journaled form of the session's closing report.
type Summary struct {
	Strategy       string  `json:"strategy"`
	Arrivals       int     `json:"arrivals"`
	Admitted       int     `json:"admitted"`
	Rejected       int     `json:"rejected,omitempty"`
	AdmittedWeight int64   `json:"admitted_weight"`
	RejectedWeight int64   `json:"rejected_weight,omitempty"`
	Cost           int64   `json:"cost"`
	MachinesOpened int     `json:"machines_opened"`
	PeakOpen       int     `json:"peak_open"`
	LowerBound     int64   `json:"lower_bound"`
	Ratio          float64 `json:"ratio"`
}

// SummaryOf records a session summary.
func SummaryOf(s online.Summary) Summary {
	return Summary{
		Strategy: s.Strategy, Arrivals: s.Arrivals, Admitted: s.Admitted,
		Rejected: s.Rejected, AdmittedWeight: s.AdmittedWeight,
		RejectedWeight: s.RejectedWeight, Cost: s.Cost,
		MachinesOpened: s.MachinesOpened, PeakOpen: s.PeakOpen,
		LowerBound: s.LowerBound, Ratio: s.Ratio,
	}
}

// OnlineSummary decodes the record back into the summary it mirrors.
func (s Summary) OnlineSummary() online.Summary {
	return online.Summary{
		Strategy: s.Strategy, Arrivals: s.Arrivals, Admitted: s.Admitted,
		Rejected: s.Rejected, AdmittedWeight: s.AdmittedWeight,
		RejectedWeight: s.RejectedWeight, Cost: s.Cost,
		MachinesOpened: s.MachinesOpened, PeakOpen: s.PeakOpen,
		LowerBound: s.LowerBound, Ratio: s.Ratio,
	}
}

// Record is one hash-chained journal entry. Seq numbers records within
// the session (open = 0); Prev and Hash are hex SHA-256 digests, with
// Hash covering Prev plus the canonical encoding of every other field,
// so any byte of any field is under the chain.
type Record struct {
	Session string      `json:"session"`
	Seq     int64       `json:"seq"`
	Kind    string      `json:"kind"`
	Prev    string      `json:"prev"`
	Hash    string      `json:"hash"`
	Open    *OpenParams `json:"open,omitempty"`
	Arrival *Arrival    `json:"arrival,omitempty"`
	Event   *Event      `json:"event,omitempty"`
	Close   *Summary    `json:"close,omitempty"`
}

// recordPayload is the hashed portion of a record: everything except
// Prev (prepended to the hash input as raw bytes) and Hash itself.
type recordPayload struct {
	Session string      `json:"session"`
	Seq     int64       `json:"seq"`
	Kind    string      `json:"kind"`
	Open    *OpenParams `json:"open,omitempty"`
	Arrival *Arrival    `json:"arrival,omitempty"`
	Event   *Event      `json:"event,omitempty"`
	Close   *Summary    `json:"close,omitempty"`
}

// payloadBytes returns the canonical hashed encoding of the record.
func (r Record) payloadBytes() ([]byte, error) {
	return json.Marshal(recordPayload{
		Session: r.Session, Seq: r.Seq, Kind: r.Kind,
		Open: r.Open, Arrival: r.Arrival, Event: r.Event, Close: r.Close,
	})
}

// chainHash computes the record hash: SHA-256 over the raw previous
// digest followed by the canonical payload.
func chainHash(prevHex string, payload []byte) (string, error) {
	prev, err := hex.DecodeString(prevHex)
	if err != nil || len(prev) != sha256.Size {
		return "", fmt.Errorf("journal: prev hash %q is not a %d-byte hex digest", prevHex, sha256.Size)
	}
	h := sha256.New()
	h.Write(prev)
	h.Write(payload)
	return hex.EncodeToString(h.Sum(nil)), nil
}

// seal stamps Prev and Hash onto the record, chaining it to prevHash.
func seal(rec Record, prevHash string) (Record, error) {
	rec.Prev = prevHash
	payload, err := rec.payloadBytes()
	if err != nil {
		return Record{}, fmt.Errorf("journal: encoding record %d: %v", rec.Seq, err)
	}
	rec.Hash, err = chainHash(prevHash, payload)
	if err != nil {
		return Record{}, err
	}
	return rec, nil
}

// checkSeal recomputes the record's hash and reports whether it matches
// the stamped one.
func checkSeal(rec Record) error {
	payload, err := rec.payloadBytes()
	if err != nil {
		return fmt.Errorf("journal: encoding record %d: %v", rec.Seq, err)
	}
	want, err := chainHash(rec.Prev, payload)
	if err != nil {
		return err
	}
	if rec.Hash != want {
		return fmt.Errorf("journal: record %d hash %s does not match its content (want %s): chain corrupted", rec.Seq, rec.Hash, want)
	}
	return nil
}

// EncodeRecords writes the records as NDJSON, one record per line — the
// journal wire and file format.
func EncodeRecords(w io.Writer, recs []Record) error {
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	for _, rec := range recs {
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	return nil
}

// DecodeRecords reads NDJSON records until EOF. The format is strictly
// canonical: every record line must be byte-identical to the canonical
// re-encoding of the value it decodes to, and newline-terminated.
// Go's JSON decoder alone is too forgiving for a certificate format —
// it drops unknown keys and matches field names case-insensitively, so
// without the canonical check a flipped byte in a key (`"seq"`→`"req"`,
// `"seq"`→`"sEq"`) could decode to the same record and slip past the
// hash chain. Byte-equality with the canonical form closes that class
// entirely: any byte the encoder would not have produced is an error.
func DecodeRecords(r io.Reader) ([]Record, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("journal: reading records: %w", err)
	}
	var recs []Record
	for len(data) > 0 {
		nl := bytes.IndexByte(data, '\n')
		if nl < 0 {
			return nil, fmt.Errorf("journal: record %d is not newline-terminated", len(recs))
		}
		var rec Record
		if err := json.Unmarshal(data[:nl], &rec); err != nil {
			return nil, fmt.Errorf("journal: decoding record %d: %v", len(recs), err)
		}
		var canon bytes.Buffer
		if err := EncodeRecords(&canon, []Record{rec}); err != nil {
			return nil, fmt.Errorf("journal: re-encoding record %d: %v", len(recs), err)
		}
		if !bytes.Equal(data[:nl+1], canon.Bytes()) {
			return nil, fmt.Errorf("journal: record %d is not canonically encoded", len(recs))
		}
		recs = append(recs, rec)
		data = data[nl+1:]
	}
	return recs, nil
}

// ErrSessionExists reports an attempt to open a session whose journal
// already holds records; the caller should resume it instead.
var ErrSessionExists = errors.New("journal: session already exists")

// Writer appends a session's records to a Store, maintaining the chain
// tail. Events are staged in memory and persisted in one Append per
// Commit, so a micro-batched ingest path pays one store round trip (and
// one fsync, for the file store) per flush instead of per arrival. A
// Writer is not safe for concurrent use; the serving layer drives one
// per session.
type Writer struct {
	store    Store
	session  string
	lastSeq  int64
	lastHash string
	events   int
	staged   []Record
	closed   bool
}

// NewWriter opens a fresh session: it refuses ids whose journal already
// holds records (resume those via Replay) and persists the open record
// immediately, so the session parameters are durable before the first
// arrival is acknowledged.
func NewWriter(store Store, session string, p OpenParams) (*Writer, error) {
	if !ValidSessionID(session) {
		return nil, fmt.Errorf("journal: invalid session id %q", session)
	}
	if recs, err := store.Read(session); err != nil && !errors.Is(err, ErrUnknownSession) {
		return nil, err
	} else if len(recs) > 0 {
		return nil, fmt.Errorf("%w: %s has %d records", ErrSessionExists, session, len(recs))
	}
	rec, err := seal(Record{Session: session, Seq: 0, Kind: KindOpen, Open: &p}, genesisHex)
	if err != nil {
		return nil, err
	}
	if err := store.Append(session, []Record{rec}); err != nil {
		return nil, err
	}
	return &Writer{store: store, session: session, lastSeq: 0, lastHash: rec.Hash}, nil
}

// Session returns the session id the writer appends to.
func (w *Writer) Session() string { return w.session }

// Events returns the number of event records written or staged so far —
// also the online sequence number the next arrival will receive.
func (w *Writer) Events() int { return w.events }

// Chain returns the hash at the chain's tail (including staged records).
func (w *Writer) Chain() string { return w.lastHash }

// StageEvent chains one arrival/placement pair onto the journal without
// persisting it yet; Commit flushes every staged record in one append.
func (w *Writer) StageEvent(a Arrival, ev online.Event) (Record, error) {
	if w.closed {
		return Record{}, fmt.Errorf("journal: session %s is closed", w.session)
	}
	rec, err := seal(Record{
		Session: w.session,
		Seq:     safemath.SatAdd(w.lastSeq, 1),
		Kind:    KindEvent,
		Arrival: &a,
		Event:   func() *Event { e := EventOf(ev); return &e }(),
	}, w.lastHash)
	if err != nil {
		return Record{}, err
	}
	w.staged = append(w.staged, rec)
	w.lastSeq = rec.Seq
	w.lastHash = rec.Hash
	w.events++
	return rec, nil
}

// Commit persists every staged record in one Store.Append. On error the
// staged records stay staged; the caller must treat the session as
// poisoned (its in-memory state is ahead of the durable journal).
func (w *Writer) Commit() error {
	if len(w.staged) == 0 {
		return nil
	}
	if err := w.store.Append(w.session, w.staged); err != nil {
		return err
	}
	w.staged = nil
	return nil
}

// Close chains and persists the close record (after committing anything
// staged) and returns the final hash — the session's certificate.
func (w *Writer) Close(sum online.Summary) (string, error) {
	if w.closed {
		return "", fmt.Errorf("journal: session %s is already closed", w.session)
	}
	if err := w.Commit(); err != nil {
		return "", err
	}
	s := SummaryOf(sum)
	rec, err := seal(Record{
		Session: w.session,
		Seq:     safemath.SatAdd(w.lastSeq, 1),
		Kind:    KindClose,
		Close:   &s,
	}, w.lastHash)
	if err != nil {
		return "", err
	}
	if err := w.store.Append(w.session, []Record{rec}); err != nil {
		return "", err
	}
	w.lastSeq = rec.Seq
	w.lastHash = rec.Hash
	w.closed = true
	return rec.Hash, nil
}
