package journal

import (
	"bytes"
	"testing"
)

// FuzzJournalDecode feeds raw bytes through the full verification
// pipeline: decode, replay, verify. The pipeline's contract under
// arbitrary input — truncated chains, corrupted records, adversarial
// JSON — is to return an error, never to panic and never to certify
// anything that is not a complete, internally consistent session.
func FuzzJournalDecode(f *testing.F) {
	// Seed with a valid certified journal plus the classic near-misses:
	// truncations, a single flipped byte, torn tails, and junk.
	recs, _, err := Certify("seed", OpenParams{G: 3, Strategy: "online-bestfit"}, testArrivals(4))
	if err != nil {
		f.Fatalf("Certify: %v", err)
	}
	var buf bytes.Buffer
	if err := EncodeRecords(&buf, recs); err != nil {
		f.Fatalf("EncodeRecords: %v", err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:len(valid)-1])
	flipped := bytes.Clone(valid)
	flipped[len(flipped)/3] ^= 0x40
	f.Add(flipped)
	f.Add([]byte("{}\n"))
	f.Add([]byte(`{"session":"x","seq":0,"kind":"open","prev":"00","hash":"zz","open":{"g":1,"strategy":"online-naive"}}` + "\n"))
	f.Add([]byte(""))

	f.Fuzz(func(t *testing.T, data []byte) {
		decoded, err := DecodeRecords(bytes.NewReader(data))
		if err != nil {
			return
		}
		state, err := Replay(decoded)
		if err != nil {
			return
		}
		cert, err := Verify(decoded)
		if err != nil {
			// Replay succeeded but Verify refused: only legitimate on an
			// unclosed chain.
			if state.Closed {
				t.Fatalf("Verify rejected a journal Replay closed: %v", err)
			}
			return
		}
		// Anything certified must re-encode to bytes that certify to the
		// same certificate — the chain pins the canonical encoding.
		var out bytes.Buffer
		if err := EncodeRecords(&out, decoded); err != nil {
			t.Fatalf("re-encoding a verified journal: %v", err)
		}
		again, err := DecodeRecords(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-decoding a verified journal: %v", err)
		}
		cert2, err := Verify(again)
		if err != nil {
			t.Fatalf("re-verifying a verified journal: %v", err)
		}
		if cert2 != cert {
			t.Fatalf("certificate changed across a byte round trip: %+v != %+v", cert2, cert)
		}
	})
}
