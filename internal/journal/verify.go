package journal

import (
	"fmt"

	"repro/internal/online"
	"repro/internal/registry"
	"repro/internal/safemath"
)

// SessionFor builds a fresh online session from journaled open
// parameters: the strategy is resolved in the registry by name, budget
// rules mirror the serving layer (a budget requires an admission-control
// strategy; an admission-control strategy requires a budget — without
// one it silently degenerates to plain BestFit, which a certificate must
// never do quietly). The canonical strategy name is returned alongside.
func SessionFor(p OpenParams) (*online.Session, string, error) {
	if p.Strategy == "" {
		return nil, "", fmt.Errorf("journal: open record names no strategy")
	}
	if p.Budget < 0 {
		return nil, "", fmt.Errorf("journal: budget %d, need >= 0", p.Budget)
	}
	alg, err := registry.LookupKind(registry.Online, p.Strategy)
	if err != nil {
		return nil, "", err
	}
	st := alg.NewStrategy()
	bs, budgeted := st.(online.BudgetSetter)
	switch {
	case p.Budget > 0 && !budgeted:
		return nil, "", fmt.Errorf("journal: strategy %s does not support a budget", alg.Name)
	case p.Budget == 0 && budgeted:
		return nil, "", fmt.Errorf("journal: strategy %s needs a positive budget", alg.Name)
	case budgeted:
		bs.SetBudget(p.Budget)
	}
	sess, err := online.NewSession(p.G, st)
	if err != nil {
		return nil, "", err
	}
	return sess, alg.Name, nil
}

// ReplayState is a session rebuilt from its journal: the live session
// positioned after the last journaled arrival, ready to continue, plus
// the chain tail a continuing Writer must extend.
type ReplayState struct {
	// Params are the open record's session parameters.
	Params OpenParams
	// Session is the rebuilt live session (nil only if Closed — a closed
	// session cannot accept further arrivals, but its state is the
	// summary anyway).
	Session *online.Session
	// Records is the validated journal, open record first.
	Records []Record
	// Arrivals counts the event records — the online sequence number the
	// next arrival would receive.
	Arrivals int
	// LastSeq and LastHash are the chain tail.
	LastSeq  int64
	LastHash string
	// Closed reports a close record; Summary is its report.
	Closed  bool
	Summary online.Summary
}

// Replay validates a session's journal and rebuilds its live state: the
// chain is checked hash by hash, every structural invariant is enforced,
// and every arrival is re-offered through a fresh strategy with the
// recomputed event compared field-for-field against the recorded one.
// Online strategies are deterministic functions of the arrival sequence
// (the detreplay discipline), so any divergence means the journal does
// not describe a run this build could have produced.
func Replay(recs []Record) (*ReplayState, error) {
	if len(recs) == 0 {
		return nil, fmt.Errorf("journal: empty journal")
	}
	head := recs[0]
	if head.Kind != KindOpen || head.Seq != 0 || head.Open == nil {
		return nil, fmt.Errorf("journal: first record is %s seq %d, want an open record at seq 0", head.Kind, head.Seq)
	}
	if head.Prev != genesisHex {
		return nil, fmt.Errorf("journal: open record prev %q is not the genesis hash", head.Prev)
	}
	if !ValidSessionID(head.Session) {
		return nil, fmt.Errorf("journal: invalid session id %q", head.Session)
	}

	st := &ReplayState{Params: *head.Open, Records: recs}
	sess, _, err := SessionFor(st.Params)
	if err != nil {
		return nil, err
	}
	st.Session = sess

	prevHash := genesisHex
	prevSeq := int64(-1)
	for i, rec := range recs {
		if rec.Session != head.Session {
			return nil, fmt.Errorf("journal: record %d belongs to session %q, not %q", i, rec.Session, head.Session)
		}
		if rec.Prev != prevHash {
			return nil, fmt.Errorf("journal: record %d prev hash %s breaks the chain (want %s)", i, rec.Prev, prevHash)
		}
		if rec.Seq != safemath.SatAdd(prevSeq, 1) {
			return nil, fmt.Errorf("journal: record %d has seq %d, want %d", i, rec.Seq, safemath.SatAdd(prevSeq, 1))
		}
		if err := checkSeal(rec); err != nil {
			return nil, err
		}
		if st.Closed {
			return nil, fmt.Errorf("journal: record %d follows the close record", i)
		}
		switch rec.Kind {
		case KindOpen:
			if i != 0 {
				return nil, fmt.Errorf("journal: record %d is a second open record", i)
			}
			if rec.Arrival != nil || rec.Event != nil || rec.Close != nil {
				return nil, fmt.Errorf("journal: open record carries a stray payload")
			}
		case KindEvent:
			if rec.Arrival == nil || rec.Event == nil || rec.Open != nil || rec.Close != nil {
				return nil, fmt.Errorf("journal: record %d is not a well-formed event record", i)
			}
			j, err := rec.Arrival.Job()
			if err != nil {
				return nil, err
			}
			got, err := sess.Offer(j)
			if err != nil {
				return nil, fmt.Errorf("journal: replaying record %d: %v", i, err)
			}
			if want := rec.Event.OnlineEvent(); got != want {
				return nil, fmt.Errorf("journal: record %d event %+v does not match the replayed placement %+v", i, want, got)
			}
			st.Arrivals++
		case KindClose:
			if rec.Close == nil || rec.Open != nil || rec.Arrival != nil || rec.Event != nil {
				return nil, fmt.Errorf("journal: record %d is not a well-formed close record", i)
			}
			got := sess.Summary()
			if want := rec.Close.OnlineSummary(); got != want {
				return nil, fmt.Errorf("journal: close record %+v does not match the replayed summary %+v", want, got)
			}
			st.Closed = true
			st.Summary = got
		default:
			return nil, fmt.Errorf("journal: record %d has unknown kind %q", i, rec.Kind)
		}
		prevHash = rec.Hash
		prevSeq = rec.Seq
	}
	st.LastSeq = prevSeq
	st.LastHash = prevHash
	return st, nil
}

// Certificate is the verified identity of a complete session: its
// parameters, the length and tail hash of its chain, and the close
// report the chain certifies.
type Certificate struct {
	Session  string
	Strategy string
	G        int
	Budget   int64
	// Entries counts all records, Arrivals just the event records.
	Entries  int
	Arrivals int
	// Chain is the final hash — what the serving layer emits on the
	// close event.
	Chain   string
	Summary online.Summary
}

// Verify checks a complete session journal end to end: the hash chain,
// the structural invariants, the placement-by-placement replay
// equivalence and the close report, requiring the session to actually be
// closed. Any single-byte change to any record fails either the JSON
// decode, a hash check, or the replay comparison.
func Verify(recs []Record) (Certificate, error) {
	st, err := Replay(recs)
	if err != nil {
		return Certificate{}, err
	}
	if !st.Closed {
		return Certificate{}, fmt.Errorf("journal: session %s is not closed (%d arrivals journaled); resume it or verify after close", recs[0].Session, st.Arrivals)
	}
	return Certificate{
		Session:  recs[0].Session,
		Strategy: st.Summary.Strategy,
		G:        st.Params.G,
		Budget:   st.Params.Budget,
		Entries:  len(st.Records),
		Arrivals: st.Arrivals,
		Chain:    st.LastHash,
		Summary:  st.Summary,
	}, nil
}

// ResumeWriter continues an unclosed replayed session: the returned
// Writer is positioned at the chain tail, so the next staged event
// extends the same chain the interrupted run left behind.
func ResumeWriter(store Store, st *ReplayState) (*Writer, error) {
	if st.Closed {
		return nil, fmt.Errorf("journal: session %s is closed", st.Records[0].Session)
	}
	return &Writer{
		store:    store,
		session:  st.Records[0].Session,
		lastSeq:  st.LastSeq,
		lastHash: st.LastHash,
		events:   st.Arrivals,
	}, nil
}

// Certify runs the arrivals through a fresh session while journaling
// them, then verifies the result — the offline mirror of a served
// stream. Two uses: tests and busysim build the journal (and certificate
// chain) an uninterrupted server session must reproduce byte for byte,
// and the conformance harness cross-checks live ≡ journal ≡ offline.
func Certify(session string, p OpenParams, arrivals []Arrival) ([]Record, Certificate, error) {
	store := NewMemStore()
	w, err := NewWriter(store, session, p)
	if err != nil {
		return nil, Certificate{}, err
	}
	sess, _, err := SessionFor(p)
	if err != nil {
		return nil, Certificate{}, err
	}
	for _, a := range arrivals {
		j, err := a.Job()
		if err != nil {
			return nil, Certificate{}, err
		}
		ev, err := sess.Offer(j)
		if err != nil {
			return nil, Certificate{}, err
		}
		if _, err := w.StageEvent(a, ev); err != nil {
			return nil, Certificate{}, err
		}
	}
	if _, err := w.Close(sess.Summary()); err != nil {
		return nil, Certificate{}, err
	}
	recs, err := store.Read(session)
	if err != nil {
		return nil, Certificate{}, err
	}
	cert, err := Verify(recs)
	if err != nil {
		return nil, Certificate{}, err
	}
	return recs, cert, nil
}
