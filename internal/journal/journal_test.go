package journal

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// testArrivals builds a deterministic non-decreasing arrival sequence
// with mixed overlaps and weights.
func testArrivals(n int) []Arrival {
	arrs := make([]Arrival, n)
	for i := range arrs {
		start := int64(3 * i)
		length := int64(5 + (i*i)%11)
		arrs[i] = Arrival{ID: i, Start: start, End: start + length, Weight: int64(1 + i%3)}
	}
	return arrs
}

func plainParams() OpenParams {
	return OpenParams{G: 3, Strategy: "online-bestfit"}
}

func budgetParams() OpenParams {
	return OpenParams{G: 2, Strategy: "online-budget", Budget: 40}
}

func TestCertifyRoundTrip(t *testing.T) {
	for name, p := range map[string]OpenParams{"plain": plainParams(), "budget": budgetParams()} {
		t.Run(name, func(t *testing.T) {
			arrs := testArrivals(9)
			recs, cert, err := Certify("s-"+name, p, arrs)
			if err != nil {
				t.Fatalf("Certify: %v", err)
			}
			if cert.Arrivals != len(arrs) || cert.Entries != len(arrs)+2 {
				t.Fatalf("certificate counts %d/%d, want %d/%d", cert.Arrivals, cert.Entries, len(arrs), len(arrs)+2)
			}
			if cert.G != p.G || cert.Budget != p.Budget || cert.Strategy != p.Strategy {
				t.Fatalf("certificate params %+v do not echo %+v", cert, p)
			}
			if cert.Chain != recs[len(recs)-1].Hash {
				t.Fatalf("certificate chain %s is not the tail hash %s", cert.Chain, recs[len(recs)-1].Hash)
			}
			if cert.Summary.Arrivals != len(arrs) {
				t.Fatalf("summary arrivals %d, want %d", cert.Summary.Arrivals, len(arrs))
			}
			if p.Budget > 0 && cert.Summary.Rejected == 0 {
				t.Fatalf("budgeted session rejected nothing; want admission-control rejections in the journal")
			}

			// The encoded journal must survive a byte round trip.
			var buf bytes.Buffer
			if err := EncodeRecords(&buf, recs); err != nil {
				t.Fatalf("EncodeRecords: %v", err)
			}
			back, err := DecodeRecords(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatalf("DecodeRecords: %v", err)
			}
			cert2, err := Verify(back)
			if err != nil {
				t.Fatalf("Verify after round trip: %v", err)
			}
			if cert2 != cert {
				t.Fatalf("round-tripped certificate %+v != %+v", cert2, cert)
			}
		})
	}
}

// TestVerifyRejectsSingleByteCorruption is the acceptance criterion in
// its sharpest form: flip every single byte of the encoded journal, one
// at a time, and require every flip to be rejected — by the JSON
// decoder, the hash chain, or the replay comparison.
func TestVerifyRejectsSingleByteCorruption(t *testing.T) {
	for name, p := range map[string]OpenParams{"plain": plainParams(), "budget": budgetParams()} {
		t.Run(name, func(t *testing.T) {
			recs, _, err := Certify("corrupt-"+name, p, testArrivals(6))
			if err != nil {
				t.Fatalf("Certify: %v", err)
			}
			var buf bytes.Buffer
			if err := EncodeRecords(&buf, recs); err != nil {
				t.Fatalf("EncodeRecords: %v", err)
			}
			raw := buf.Bytes()
			for i := range raw {
				mutated := bytes.Clone(raw)
				mutated[i] ^= 0x01
				got, err := DecodeRecords(bytes.NewReader(mutated))
				if err != nil {
					continue // rejected at the decode layer
				}
				if _, err := Verify(got); err == nil {
					t.Fatalf("flipping byte %d (%q -> %q) went undetected", i, raw[i], mutated[i])
				}
			}
		})
	}
}

func TestVerifyRejectsTruncation(t *testing.T) {
	recs, _, err := Certify("trunc", plainParams(), testArrivals(5))
	if err != nil {
		t.Fatalf("Certify: %v", err)
	}
	for n := 0; n < len(recs); n++ {
		if _, err := Verify(recs[:n]); err == nil {
			t.Fatalf("Verify accepted a journal truncated to %d of %d records", n, len(recs))
		}
	}
	// Truncating records off the tail leaves a valid-but-unclosed chain;
	// Replay must accept it (that is what resume does) while Verify
	// refuses to certify it.
	if _, err := Replay(recs[:3]); err != nil {
		t.Fatalf("Replay rejected a valid unclosed prefix: %v", err)
	}
}

func TestVerifyRejectsRecordSurgery(t *testing.T) {
	recs, _, err := Certify("surgery", plainParams(), testArrivals(5))
	if err != nil {
		t.Fatalf("Certify: %v", err)
	}
	// Dropping an interior record, swapping two records, and replaying a
	// record twice all break the chain even though every individual
	// record still carries a valid seal.
	drop := append(append([]Record{}, recs[:2]...), recs[3:]...)
	if _, err := Verify(drop); err == nil {
		t.Fatal("Verify accepted a journal with an interior record dropped")
	}
	swapped := append([]Record{}, recs...)
	swapped[2], swapped[3] = swapped[3], swapped[2]
	if _, err := Verify(swapped); err == nil {
		t.Fatal("Verify accepted a journal with two records swapped")
	}
	doubled := append(append([]Record{}, recs[:3]...), recs[2:]...)
	if _, err := Verify(doubled); err == nil {
		t.Fatal("Verify accepted a journal with a record replayed twice")
	}
}

// TestResumeMatchesUninterrupted is the resume contract at the journal
// layer: interrupt a session after k arrivals, rebuild it by replay,
// continue with the remaining arrivals, and require the full journal —
// every byte, every hash — to equal the uninterrupted run's.
func TestResumeMatchesUninterrupted(t *testing.T) {
	for name, p := range map[string]OpenParams{"plain": plainParams(), "budget": budgetParams()} {
		t.Run(name, func(t *testing.T) {
			arrs := testArrivals(12)
			whole, wholeCert, err := Certify("resume-"+name, p, arrs)
			if err != nil {
				t.Fatalf("Certify: %v", err)
			}

			for k := 0; k <= len(arrs); k++ {
				store := NewMemStore()
				w, err := NewWriter(store, "resume-"+name, p)
				if err != nil {
					t.Fatalf("NewWriter: %v", err)
				}
				sess, _, err := SessionFor(p)
				if err != nil {
					t.Fatalf("SessionFor: %v", err)
				}
				for _, a := range arrs[:k] {
					j, err := a.Job()
					if err != nil {
						t.Fatalf("Job: %v", err)
					}
					ev, err := sess.Offer(j)
					if err != nil {
						t.Fatalf("Offer: %v", err)
					}
					if _, err := w.StageEvent(a, ev); err != nil {
						t.Fatalf("StageEvent: %v", err)
					}
				}
				if err := w.Commit(); err != nil {
					t.Fatalf("Commit: %v", err)
				}
				// The interrupted writer is dropped here — the crash.

				recs, err := store.Read("resume-" + name)
				if err != nil {
					t.Fatalf("Read: %v", err)
				}
				state, err := Replay(recs)
				if err != nil {
					t.Fatalf("Replay after %d arrivals: %v", k, err)
				}
				if state.Arrivals != k || state.Session.Arrivals() != k {
					t.Fatalf("replayed %d arrivals, session reports %d, want %d", state.Arrivals, state.Session.Arrivals(), k)
				}
				w2, err := ResumeWriter(store, state)
				if err != nil {
					t.Fatalf("ResumeWriter: %v", err)
				}
				for _, a := range arrs[k:] {
					j, err := a.Job()
					if err != nil {
						t.Fatalf("Job: %v", err)
					}
					ev, err := state.Session.Offer(j)
					if err != nil {
						t.Fatalf("Offer after resume: %v", err)
					}
					if _, err := w2.StageEvent(a, ev); err != nil {
						t.Fatalf("StageEvent after resume: %v", err)
					}
				}
				chain, err := w2.Close(state.Session.Summary())
				if err != nil {
					t.Fatalf("Close after resume: %v", err)
				}
				if chain != wholeCert.Chain {
					t.Fatalf("resume at %d: chain %s != uninterrupted %s", k, chain, wholeCert.Chain)
				}
				got, err := store.Read("resume-" + name)
				if err != nil {
					t.Fatalf("Read: %v", err)
				}
				var gotB, wantB bytes.Buffer
				if err := EncodeRecords(&gotB, got); err != nil {
					t.Fatalf("EncodeRecords: %v", err)
				}
				if err := EncodeRecords(&wantB, whole); err != nil {
					t.Fatalf("EncodeRecords: %v", err)
				}
				if !bytes.Equal(gotB.Bytes(), wantB.Bytes()) {
					t.Fatalf("resume at %d: journal bytes diverge from the uninterrupted run", k)
				}
			}
		})
	}
}

func TestWriterRefusesExistingSession(t *testing.T) {
	store := NewMemStore()
	if _, err := NewWriter(store, "dup", plainParams()); err != nil {
		t.Fatalf("NewWriter: %v", err)
	}
	if _, err := NewWriter(store, "dup", plainParams()); !errors.Is(err, ErrSessionExists) {
		t.Fatalf("second NewWriter: got %v, want ErrSessionExists", err)
	}
}

func TestSessionForRejectsBadParams(t *testing.T) {
	cases := map[string]OpenParams{
		"no strategy":       {G: 2},
		"unknown strategy":  {G: 2, Strategy: "no-such-strategy"},
		"bad g":             {G: 0, Strategy: "online-bestfit"},
		"negative budget":   {G: 2, Strategy: "online-budget", Budget: -1},
		"budget on plain":   {G: 2, Strategy: "online-bestfit", Budget: 10},
		"budgetless budget": {G: 2, Strategy: "online-budget"},
	}
	for name, p := range cases {
		if _, _, err := SessionFor(p); err == nil {
			t.Errorf("SessionFor(%s) accepted %+v", name, p)
		}
	}
}

func TestValidSessionID(t *testing.T) {
	for _, ok := range []string{"a", "A-b_c.9", strings.Repeat("x", 64)} {
		if !ValidSessionID(ok) {
			t.Errorf("ValidSessionID(%q) = false", ok)
		}
	}
	for _, bad := range []string{"", "a b", "a/b", "a\nb", strings.Repeat("x", 65), "ü"} {
		if ValidSessionID(bad) {
			t.Errorf("ValidSessionID(%q) = true", bad)
		}
	}
}

func TestDecodeRecordsRejectsTrailingGarbage(t *testing.T) {
	recs, _, err := Certify("garbage", plainParams(), testArrivals(2))
	if err != nil {
		t.Fatalf("Certify: %v", err)
	}
	var buf bytes.Buffer
	if err := EncodeRecords(&buf, recs); err != nil {
		t.Fatalf("EncodeRecords: %v", err)
	}
	buf.WriteString("{not json")
	if _, err := DecodeRecords(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("DecodeRecords accepted trailing garbage")
	}
}

func TestFileStoreDurabilityAndRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.ndjson")
	recs, _, err := Certify("filed", plainParams(), testArrivals(4))
	if err != nil {
		t.Fatalf("Certify: %v", err)
	}

	st, err := OpenFileStore(path)
	if err != nil {
		t.Fatalf("OpenFileStore: %v", err)
	}
	if err := st.Append("filed", recs); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := st.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Reopen: the full session must come back and still verify.
	st, err = OpenFileStore(path)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	got, err := st.Read("filed")
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if _, err := Verify(got); err != nil {
		t.Fatalf("Verify after reopen: %v", err)
	}
	sessions, err := st.Sessions()
	if err != nil || len(sessions) != 1 || sessions[0] != "filed" {
		t.Fatalf("Sessions() = %v, %v", sessions, err)
	}
	if err := st.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// A torn trailing write — half a record, no newline — is the crash
	// artifact the store must recover from by truncation.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatalf("open for tearing: %v", err)
	}
	if _, err := f.WriteString(`{"session":"filed","seq":99,"ki`); err != nil {
		t.Fatalf("tear: %v", err)
	}
	f.Close()
	st, err = OpenFileStore(path)
	if err != nil {
		t.Fatalf("reopen after torn write: %v", err)
	}
	got, err = st.Read("filed")
	if err != nil {
		t.Fatalf("Read after torn write: %v", err)
	}
	if _, err := Verify(got); err != nil {
		t.Fatalf("Verify after torn-write recovery: %v", err)
	}
	st.Close()

	// Interior corruption is not recoverable and must refuse to load:
	// acknowledged bytes do not silently disappear.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	data[len(data)/2] = 0x00
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	if _, err := OpenFileStore(path); err == nil {
		t.Fatal("OpenFileStore loaded a log with interior corruption")
	}
}

func TestMemStoreRejectsForeignRecords(t *testing.T) {
	store := NewMemStore()
	err := store.Append("mine", []Record{{Session: "theirs"}})
	if err == nil {
		t.Fatal("Append accepted a record filed under the wrong session")
	}
}

// TestMemStoreRetention pins the closed-session retention cap: beyond
// the cap the oldest-closed session is evicted wholesale, while active
// (never-closed) sessions are immune no matter how old they are. The
// uncapped constructor must keep everything — the prior behavior, and
// still the right one for tests and short-lived processes.
func TestMemStoreRetention(t *testing.T) {
	closedRecords := func(session string) []Record {
		recs, _, err := Certify(session, plainParams(), testArrivals(3))
		if err != nil {
			t.Fatalf("Certify(%s): %v", session, err)
		}
		return recs
	}

	st := NewMemStoreWithRetention(2)

	// An active session appended before any closed one: records without
	// a close. It must survive every eviction below.
	activeRecs := closedRecords("s-active")
	if err := st.Append("s-active", activeRecs[:len(activeRecs)-1]); err != nil {
		t.Fatal(err)
	}

	for _, session := range []string{"s-c1", "s-c2", "s-c3", "s-c4"} {
		if err := st.Append(session, closedRecords(session)); err != nil {
			t.Fatal(err)
		}
	}

	got, err := st.Sessions()
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"s-active", "s-c3", "s-c4"}
	if len(got) != len(want) {
		t.Fatalf("Sessions() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Sessions() = %v, want %v", got, want)
		}
	}
	if _, err := st.Read("s-c1"); !errors.Is(err, ErrUnknownSession) {
		t.Fatalf("evicted session read: %v, want ErrUnknownSession", err)
	}
	if recs, err := st.Read("s-active"); err != nil || len(recs) != len(activeRecs)-1 {
		t.Fatalf("active session: %d records, %v", len(recs), err)
	}

	// Closing the active session now makes it evictable like any other.
	if err := st.Append("s-active", activeRecs[len(activeRecs)-1:]); err != nil {
		t.Fatal(err)
	}
	if err := st.Append("s-c5", closedRecords("s-c5")); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Read("s-c3"); !errors.Is(err, ErrUnknownSession) {
		t.Fatalf("s-c3 should be evicted after s-active closed: %v", err)
	}

	// The uncapped store never evicts.
	unbounded := NewMemStore()
	for _, session := range []string{"s-u1", "s-u2", "s-u3"} {
		if err := unbounded.Append(session, closedRecords(session)); err != nil {
			t.Fatal(err)
		}
	}
	if got, _ := unbounded.Sessions(); len(got) != 3 {
		t.Fatalf("unbounded store evicted: %v", got)
	}
}
