package journal

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
)

// ErrUnknownSession reports a Read of a session the store has no
// records for.
var ErrUnknownSession = errors.New("journal: unknown session")

// Store is the persistence boundary of the journal. Append must make
// the records durable before returning — the serving layer acknowledges
// an arrival to the client only after its record is appended, so
// whatever a client saw is guaranteed to be replayable after a crash.
// Implementations must be safe for concurrent use by multiple sessions.
type Store interface {
	// Append adds records to the session's log, in order, durably.
	// Every record's Session field must equal session.
	Append(session string, recs []Record) error
	// Read returns the session's full record sequence in append order,
	// or ErrUnknownSession.
	Read(session string) ([]Record, error)
	// Sessions lists every session with at least one record, sorted.
	Sessions() ([]string, error)
	// Close releases any underlying resources.
	Close() error
}

// MemStore is the in-memory Store: the default for busyd without a
// journal path, and the workhorse for tests. Records survive as long as
// the process does — optionally bounded by a closed-session retention
// cap, because a long-lived daemon otherwise accumulates every finished
// stream forever (each closed session kept its full record slice with no
// eviction path).
type MemStore struct {
	mu       sync.Mutex
	sessions map[string][]Record
	ids      []string // first-append order; sorted on listing

	// maxClosed caps retained closed sessions (0 = unbounded). closed is
	// the eviction queue in close order: when a KindClose record lands and
	// the cap is exceeded, the oldest-closed session is dropped entirely.
	// Active (never-closed) sessions are never evicted — they may still be
	// resumed.
	maxClosed int
	closed    []string
}

// NewMemStore returns an empty in-memory store with unbounded retention.
func NewMemStore() *MemStore {
	return &MemStore{sessions: map[string][]Record{}}
}

// NewMemStoreWithRetention returns an in-memory store that retains at
// most maxClosed closed sessions, evicting the oldest-closed first.
// Sessions that have not seen a close record are never evicted.
// maxClosed <= 0 means unbounded (same as NewMemStore).
func NewMemStoreWithRetention(maxClosed int) *MemStore {
	if maxClosed < 0 {
		maxClosed = 0
	}
	return &MemStore{sessions: map[string][]Record{}, maxClosed: maxClosed}
}

// Append implements Store.
func (s *MemStore) Append(session string, recs []Record) error {
	if err := checkOwnership(session, recs); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.sessions[session]; !ok {
		s.ids = append(s.ids, session)
	}
	s.sessions[session] = append(s.sessions[session], recs...)
	if s.maxClosed > 0 {
		for i := range recs {
			if recs[i].Kind == KindClose {
				s.closed = append(s.closed, session)
				break
			}
		}
		for len(s.closed) > s.maxClosed {
			victim := s.closed[0]
			s.closed = s.closed[1:]
			delete(s.sessions, victim)
			for i, id := range s.ids {
				if id == victim {
					s.ids = append(s.ids[:i], s.ids[i+1:]...)
					break
				}
			}
		}
	}
	return nil
}

// Read implements Store.
func (s *MemStore) Read(session string) ([]Record, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	recs, ok := s.sessions[session]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownSession, session)
	}
	out := make([]Record, len(recs))
	copy(out, recs)
	return out, nil
}

// Sessions implements Store. The listing is sorted so callers iterate
// deterministically (the detreplay discipline: no map-order dependence —
// the ids ride a slice maintained on first append, never a map range).
func (s *MemStore) Sessions() ([]string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, len(s.ids))
	copy(out, s.ids)
	sort.Strings(out)
	return out, nil
}

// Close implements Store.
func (s *MemStore) Close() error { return nil }

// FileStore is the crash-safe single-file Store: every session's
// records interleave in one NDJSON append log, O_APPEND + fsync per
// Append. Opening the store replays the file into an in-memory
// per-session mirror; a torn final line (the classic crash artifact of
// an append in flight) is truncated away, while corruption anywhere
// before it is an error — bytes the store once acknowledged must never
// silently disappear.
type FileStore struct {
	mu       sync.Mutex
	f        *os.File
	sessions map[string][]Record
	ids      []string // first-append order; sorted on listing
}

// OpenFileStore opens (creating if needed) the append log at path and
// rebuilds the session index from its contents.
func OpenFileStore(path string) (*FileStore, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: opening store: %w", err)
	}
	st := &FileStore{f: f, sessions: map[string][]Record{}}
	if err := st.load(); err != nil {
		// Nothing has been written through this descriptor; the load
		// error is the one the caller needs.
		//lint:ignore busylint/errdrop abandoning a read-only replay descriptor after a failed load; no write can be lost
		f.Close()
		return nil, err
	}
	return st, nil
}

// load replays the log into the session mirror, truncating a torn
// trailing line and rejecting interior corruption.
func (s *FileStore) load() error {
	data, err := io.ReadAll(s.f)
	if err != nil {
		return fmt.Errorf("journal: reading store: %w", err)
	}
	keep := 0
	for keep < len(data) {
		nl := bytes.IndexByte(data[keep:], '\n')
		if nl < 0 {
			break // torn trailing write: no newline ever made it to disk
		}
		line := data[keep : keep+nl+1]
		recs, err := DecodeRecords(bytes.NewReader(line))
		if err != nil || len(recs) != 1 {
			if keep+nl+1 == len(data) {
				break // torn trailing write: partial JSON with a newline
			}
			return fmt.Errorf("journal: store corrupted at byte %d: %v", keep, err)
		}
		if _, ok := s.sessions[recs[0].Session]; !ok {
			s.ids = append(s.ids, recs[0].Session)
		}
		s.sessions[recs[0].Session] = append(s.sessions[recs[0].Session], recs[0])
		keep += nl + 1
	}
	if keep != len(data) {
		if err := s.f.Truncate(int64(keep)); err != nil {
			return fmt.Errorf("journal: truncating torn record: %w", err)
		}
	}
	if _, err := s.f.Seek(0, io.SeekEnd); err != nil {
		return fmt.Errorf("journal: seeking store end: %w", err)
	}
	return nil
}

// Append implements Store: one buffered write of every record, then a
// single fsync — the amortization target of the micro-batcher.
func (s *FileStore) Append(session string, recs []Record) error {
	if err := checkOwnership(session, recs); err != nil {
		return err
	}
	if len(recs) == 0 {
		return nil
	}
	var buf bytes.Buffer
	if err := EncodeRecords(&buf, recs); err != nil {
		return fmt.Errorf("journal: encoding append: %v", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return errors.New("journal: store is closed")
	}
	if _, err := s.f.Write(buf.Bytes()); err != nil {
		return fmt.Errorf("journal: appending: %w", err)
	}
	if err := s.f.Sync(); err != nil {
		return fmt.Errorf("journal: syncing: %w", err)
	}
	if _, ok := s.sessions[session]; !ok {
		s.ids = append(s.ids, session)
	}
	s.sessions[session] = append(s.sessions[session], recs...)
	return nil
}

// Read implements Store.
func (s *FileStore) Read(session string) ([]Record, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	recs, ok := s.sessions[session]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownSession, session)
	}
	out := make([]Record, len(recs))
	copy(out, recs)
	return out, nil
}

// Sessions implements Store.
func (s *FileStore) Sessions() ([]string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, len(s.ids))
	copy(out, s.ids)
	sort.Strings(out)
	return out, nil
}

// Close implements Store.
func (s *FileStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	err := s.f.Close()
	s.f = nil
	return err
}

// checkOwnership rejects records filed under the wrong session — a
// programming error that would corrupt both sessions' chains.
func checkOwnership(session string, recs []Record) error {
	if !ValidSessionID(session) {
		return fmt.Errorf("journal: invalid session id %q", session)
	}
	for i := range recs {
		if recs[i].Session != session {
			return fmt.Errorf("journal: record %d belongs to session %q, not %q", recs[i].Seq, recs[i].Session, session)
		}
	}
	return nil
}
