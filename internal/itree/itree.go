// Package itree implements an order-statistics interval set supporting
// O(log n) insertion and O(log n) overlap queries against half-open
// intervals whose members are pairwise non-overlapping.
//
// It is the data structure behind core.FirstFitFast: each machine thread
// holds pairwise non-overlapping jobs, so "does job J overlap anything on
// this thread?" reduces to a predecessor/successor check in a balanced
// search tree keyed by start time. The naive FirstFit scans the whole
// thread (O(thread length) per check); this brings a thread check to
// O(log n) and the whole algorithm to O(n·m·g·log n) worst case with much
// better constants in practice.
//
// The implementation is a classic treap (randomized BST) with a
// deterministic xorshift priority stream, so behavior is reproducible.
package itree

import "repro/internal/interval"

// Set is a set of pairwise non-overlapping half-open intervals. The zero
// value is an empty set ready to use.
type Set struct {
	root *node
	rng  uint64
}

type node struct {
	iv          interval.Interval
	prio        uint64
	left, right *node
}

// Len returns the number of stored intervals.
func (s *Set) Len() int { return count(s.root) }

func count(n *node) int {
	if n == nil {
		return 0
	}
	return 1 + count(n.left) + count(n.right)
}

// Overlaps reports whether iv overlaps (positive-measure intersection)
// any stored interval.
func (s *Set) Overlaps(iv interval.Interval) bool {
	if iv.Empty() {
		return false
	}
	n := s.root
	for n != nil {
		if n.iv.Overlaps(iv) {
			return true
		}
		// Stored intervals are disjoint and sorted by start; if iv ends at
		// or before this node starts, only the left subtree can overlap.
		if iv.End <= n.iv.Start {
			n = n.left
		} else {
			n = n.right
		}
	}
	return false
}

// Insert adds iv to the set. It returns false (and leaves the set
// unchanged) when iv overlaps an existing member or is empty, preserving
// the disjointness invariant.
func (s *Set) Insert(iv interval.Interval) bool {
	if iv.Empty() || s.Overlaps(iv) {
		return false
	}
	s.root = s.insert(s.root, &node{iv: iv, prio: s.nextPrio()})
	return true
}

func (s *Set) insert(root, n *node) *node {
	if root == nil {
		return n
	}
	if n.iv.Start < root.iv.Start {
		root.left = s.insert(root.left, n)
		if root.left.prio > root.prio {
			root = rotateRight(root)
		}
	} else {
		root.right = s.insert(root.right, n)
		if root.right.prio > root.prio {
			root = rotateLeft(root)
		}
	}
	return root
}

func rotateRight(n *node) *node {
	l := n.left
	n.left = l.right
	l.right = n
	return l
}

func rotateLeft(n *node) *node {
	r := n.right
	n.right = r.left
	r.left = n
	return r
}

// nextPrio draws from a deterministic xorshift64 stream seeded per set.
func (s *Set) nextPrio() uint64 {
	if s.rng == 0 {
		s.rng = 0x9E3779B97F4A7C15
	}
	s.rng ^= s.rng << 13
	s.rng ^= s.rng >> 7
	s.rng ^= s.rng << 17
	return s.rng
}

// Intervals returns the stored intervals in start order.
func (s *Set) Intervals() []interval.Interval {
	var out []interval.Interval
	var walk func(n *node)
	walk = func(n *node) {
		if n == nil {
			return
		}
		walk(n.left)
		out = append(out, n.iv)
		walk(n.right)
	}
	walk(s.root)
	return out
}
