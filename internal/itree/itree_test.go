package itree

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/interval"
)

func TestEmptySet(t *testing.T) {
	var s Set
	if s.Len() != 0 {
		t.Fatal("empty set has members")
	}
	if s.Overlaps(interval.New(0, 10)) {
		t.Fatal("empty set overlaps")
	}
}

func TestInsertDisjoint(t *testing.T) {
	var s Set
	for _, iv := range []interval.Interval{
		interval.New(0, 10), interval.New(20, 30), interval.New(10, 20),
	} {
		if !s.Insert(iv) {
			t.Fatalf("disjoint insert of %v rejected", iv)
		}
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestInsertRejectsOverlap(t *testing.T) {
	var s Set
	s.Insert(interval.New(0, 10))
	if s.Insert(interval.New(5, 15)) {
		t.Fatal("overlapping insert accepted")
	}
	if s.Len() != 1 {
		t.Fatal("rejected insert changed the set")
	}
}

func TestInsertRejectsEmpty(t *testing.T) {
	var s Set
	if s.Insert(interval.New(5, 5)) {
		t.Fatal("empty interval accepted")
	}
}

func TestOverlapsTouching(t *testing.T) {
	var s Set
	s.Insert(interval.New(10, 20))
	if s.Overlaps(interval.New(0, 10)) || s.Overlaps(interval.New(20, 30)) {
		t.Fatal("touching intervals misreported as overlapping")
	}
	if !s.Overlaps(interval.New(19, 21)) {
		t.Fatal("true overlap missed")
	}
}

func TestIntervalsSorted(t *testing.T) {
	var s Set
	ivs := []interval.Interval{
		interval.New(40, 50), interval.New(0, 10), interval.New(20, 30),
	}
	for _, iv := range ivs {
		s.Insert(iv)
	}
	got := s.Intervals()
	for i := 1; i < len(got); i++ {
		if got[i-1].Start >= got[i].Start {
			t.Fatalf("not sorted: %v", got)
		}
	}
}

// Property: the treap agrees with a linear scan on random workloads.
func TestPropertyMatchesLinearScan(t *testing.T) {
	f := func(seed int64, opsRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		ops := int(opsRaw%64) + 1
		var s Set
		var ref []interval.Interval
		for k := 0; k < ops; k++ {
			start := r.Int63n(200)
			iv := interval.New(start, start+1+r.Int63n(30))
			refOverlap := false
			for _, x := range ref {
				if x.Overlaps(iv) {
					refOverlap = true
					break
				}
			}
			if s.Overlaps(iv) != refOverlap {
				return false
			}
			inserted := s.Insert(iv)
			if inserted == refOverlap {
				return false // must insert iff no overlap
			}
			if inserted {
				ref = append(ref, iv)
			}
			if s.Len() != len(ref) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkOverlapsVsLinear(b *testing.B) {
	var s Set
	var ref []interval.Interval
	r := rand.New(rand.NewSource(1))
	for len(ref) < 2000 {
		start := r.Int63n(1 << 20)
		iv := interval.New(start, start+1+r.Int63n(50))
		if s.Insert(iv) {
			ref = append(ref, iv)
		}
	}
	probe := interval.New(1<<19, 1<<19+25)
	b.Run("treap", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s.Overlaps(probe)
		}
	})
	b.Run("linear", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, x := range ref {
				if x.Overlaps(probe) {
					break
				}
			}
		}
	})
}
