// Package igraph builds the interval graph of a job set and classifies
// instances into the special classes the paper's algorithms target.
//
// The interval graph has one vertex per job and an edge between jobs whose
// processing intervals overlap (Section 1). The classes recognized here
// drive algorithm selection:
//
//   - clique instances: all jobs share a common time;
//   - proper instances: no job properly contains another;
//   - one-sided instances: cliques where all start times or all completion
//     times coincide (Section 2, "Special cases").
package igraph

import (
	"sort"

	"repro/internal/interval"
	"repro/internal/job"
)

// Graph is the interval graph of an instance. Adjacency is stored as
// sorted neighbor lists indexed by job position (not job ID).
type Graph struct {
	jobs []job.Job
	adj  [][]int
}

// Build constructs the interval graph in O(n log n + m) time using a
// sweep over start-sorted jobs.
func Build(jobs []job.Job) *Graph {
	n := len(jobs)
	g := &Graph{jobs: append([]job.Job(nil), jobs...), adj: make([][]int, n)}

	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		return jobs[order[a]].Start() < jobs[order[b]].Start()
	})

	// active holds indices of jobs whose interval may still overlap future
	// starts, kept as a min-heap by end time via periodic compaction.
	var active []int
	for _, idx := range order {
		cur := jobs[idx]
		keep := active[:0]
		for _, other := range active {
			if jobs[other].End() > cur.Start() {
				keep = append(keep, other)
				g.adj[idx] = append(g.adj[idx], other)
				g.adj[other] = append(g.adj[other], idx)
			}
		}
		active = append(keep, idx)
	}
	for i := range g.adj {
		sort.Ints(g.adj[i])
	}
	return g
}

// N returns the number of vertices (jobs).
func (g *Graph) N() int { return len(g.jobs) }

// Neighbors returns the sorted adjacency list of vertex i.
func (g *Graph) Neighbors(i int) []int { return g.adj[i] }

// Degree returns the number of jobs overlapping job i.
func (g *Graph) Degree(i int) int { return len(g.adj[i]) }

// Edges returns the number of edges.
func (g *Graph) Edges() int {
	total := 0
	for _, a := range g.adj {
		total += len(a)
	}
	return total / 2
}

// OverlapWeight returns the overlap length between jobs i and j — the edge
// weight of the graph G_m used by the g=2 matching algorithm (Lemma 3.1).
func (g *Graph) OverlapWeight(i, j int) int64 {
	return g.jobs[i].Interval.OverlapLen(g.jobs[j].Interval)
}

// ConnectedComponents returns the vertex sets of the connected components,
// each sorted, in order of smallest member. MinBusy decomposes over
// components (Section 2), so solvers split instances along this partition.
func (g *Graph) ConnectedComponents() [][]int {
	n := g.N()
	comp := make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	var comps [][]int
	for start := 0; start < n; start++ {
		if comp[start] != -1 {
			continue
		}
		id := len(comps)
		queue := []int{start}
		comp[start] = id
		var members []int
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			members = append(members, v)
			for _, w := range g.adj[v] {
				if comp[w] == -1 {
					comp[w] = id
					queue = append(queue, w)
				}
			}
		}
		sort.Ints(members)
		comps = append(comps, members)
	}
	return comps
}

// SplitComponents partitions an instance into one sub-instance per
// connected component of its interval graph, preserving job IDs.
func SplitComponents(in job.Instance) []job.Instance {
	g := Build(in.Jobs)
	comps := g.ConnectedComponents()
	out := make([]job.Instance, len(comps))
	for i, members := range comps {
		jobs := make([]job.Job, len(members))
		for k, v := range members {
			jobs[k] = in.Jobs[v]
		}
		out[i] = job.Instance{Jobs: jobs, G: in.G}
	}
	return out
}

// IsClique reports whether the jobs form a clique set: some time is common
// to all jobs. On the line this holds iff max start < min end.
func IsClique(jobs []job.Job) bool {
	if len(jobs) == 0 {
		return true
	}
	_, ok := interval.CommonTime(intervalsOf(jobs))
	return ok
}

// CommonTime returns a witness time shared by all jobs of a clique set.
func CommonTime(jobs []job.Job) (int64, bool) {
	return interval.CommonTime(intervalsOf(jobs))
}

// IsProper reports whether no job's interval properly contains another's.
// Equivalently, sorting by start also sorts by end (Property 3.1).
func IsProper(jobs []job.Job) bool {
	n := len(jobs)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ja, jb := jobs[order[a]], jobs[order[b]]
		if ja.Start() != jb.Start() {
			return ja.Start() < jb.Start()
		}
		return ja.End() < jb.End()
	})
	for k := 1; k < n; k++ {
		prev, cur := jobs[order[k-1]], jobs[order[k]]
		// prev.Start <= cur.Start; containment iff cur.End <= prev.End and
		// the intervals differ.
		if prev.Interval.ProperlyContains(cur.Interval) || cur.Interval.ProperlyContains(prev.Interval) {
			return false
		}
	}
	return true
}

// IsProperClique reports whether the set is both proper and a clique.
func IsProperClique(jobs []job.Job) bool { return IsClique(jobs) && IsProper(jobs) }

// OneSided describes which side of a one-sided clique instance coincides.
type OneSided int

const (
	// NotOneSided means the instance is not one-sided.
	NotOneSided OneSided = iota
	// SharedStart means all jobs begin at the same time.
	SharedStart
	// SharedEnd means all jobs complete at the same time.
	SharedEnd
)

// OneSidedness classifies a job set as a one-sided clique instance. A set
// with all starts equal (or all ends equal) is automatically a clique.
func OneSidedness(jobs []job.Job) OneSided {
	if len(jobs) == 0 {
		return SharedStart
	}
	sameStart, sameEnd := true, true
	for _, j := range jobs[1:] {
		if j.Start() != jobs[0].Start() {
			sameStart = false
		}
		if j.End() != jobs[0].End() {
			sameEnd = false
		}
	}
	switch {
	case sameStart:
		return SharedStart
	case sameEnd:
		return SharedEnd
	default:
		return NotOneSided
	}
}

// Class is the most specific instance class, used for algorithm dispatch
// and reporting.
type Class int

const (
	// General: no special structure detected.
	General Class = iota
	// Proper: no proper containment, not a clique.
	Proper
	// Clique: common time, but containment exists.
	Clique
	// ProperClique: both proper and clique, not one-sided.
	ProperClique
	// OneSidedClique: clique with shared start or shared end.
	OneSidedClique
)

// String names the class for reports.
func (c Class) String() string {
	switch c {
	case Proper:
		return "proper"
	case Clique:
		return "clique"
	case ProperClique:
		return "proper-clique"
	case OneSidedClique:
		return "one-sided-clique"
	default:
		return "general"
	}
}

// Classify returns the most specific class of the job set.
func Classify(jobs []job.Job) Class {
	clique := IsClique(jobs)
	proper := IsProper(jobs)
	switch {
	case clique && OneSidedness(jobs) != NotOneSided:
		return OneSidedClique
	case clique && proper:
		return ProperClique
	case clique:
		return Clique
	case proper:
		return Proper
	default:
		return General
	}
}

func intervalsOf(jobs []job.Job) []interval.Interval {
	ivs := make([]interval.Interval, len(jobs))
	for i, j := range jobs {
		ivs[i] = j.Interval
	}
	return ivs
}
