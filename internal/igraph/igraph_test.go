package igraph

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/job"
)

func inst(spans ...[2]int64) []job.Job {
	return job.NewInstance(1, spans...).Jobs
}

func TestBuildAdjacency(t *testing.T) {
	// 0:[0,10) 1:[5,15) 2:[20,30) 3:[9,21)
	jobs := inst([2]int64{0, 10}, [2]int64{5, 15}, [2]int64{20, 30}, [2]int64{9, 21})
	g := Build(jobs)
	wantAdj := [][]int{{1, 3}, {0, 3}, {3}, {0, 1, 2}}
	for i, want := range wantAdj {
		got := g.Neighbors(i)
		if len(got) != len(want) {
			t.Fatalf("Neighbors(%d) = %v, want %v", i, got, want)
		}
		for k := range want {
			if got[k] != want[k] {
				t.Fatalf("Neighbors(%d) = %v, want %v", i, got, want)
			}
		}
	}
	if g.Edges() != 4 {
		t.Errorf("Edges = %d, want 4", g.Edges())
	}
	if g.Degree(3) != 3 {
		t.Errorf("Degree(3) = %d", g.Degree(3))
	}
}

func TestOverlapWeight(t *testing.T) {
	jobs := inst([2]int64{0, 10}, [2]int64{5, 15})
	g := Build(jobs)
	if w := g.OverlapWeight(0, 1); w != 5 {
		t.Errorf("OverlapWeight = %d, want 5", w)
	}
}

func TestConnectedComponents(t *testing.T) {
	jobs := inst([2]int64{0, 10}, [2]int64{5, 15}, [2]int64{20, 30}, [2]int64{25, 35}, [2]int64{50, 60})
	g := Build(jobs)
	comps := g.ConnectedComponents()
	if len(comps) != 3 {
		t.Fatalf("components = %v", comps)
	}
	want := [][]int{{0, 1}, {2, 3}, {4}}
	for i := range want {
		if len(comps[i]) != len(want[i]) {
			t.Fatalf("component %d = %v, want %v", i, comps[i], want[i])
		}
		for k := range want[i] {
			if comps[i][k] != want[i][k] {
				t.Fatalf("component %d = %v, want %v", i, comps[i], want[i])
			}
		}
	}
}

func TestSplitComponents(t *testing.T) {
	in := job.NewInstance(2, [2]int64{0, 10}, [2]int64{50, 60}, [2]int64{5, 12})
	subs := SplitComponents(in)
	if len(subs) != 2 {
		t.Fatalf("SplitComponents = %v", subs)
	}
	if len(subs[0].Jobs) != 2 || subs[0].Jobs[0].ID != 0 || subs[0].Jobs[1].ID != 2 {
		t.Errorf("first component = %v", subs[0].Jobs)
	}
	if subs[0].G != 2 {
		t.Error("G not preserved")
	}
}

func TestIsClique(t *testing.T) {
	if !IsClique(inst([2]int64{0, 10}, [2]int64{5, 15}, [2]int64{9, 12})) {
		t.Error("clique not detected")
	}
	if IsClique(inst([2]int64{0, 10}, [2]int64{10, 20})) {
		t.Error("touching chain misdetected as clique")
	}
	if !IsClique(nil) {
		t.Error("empty set should be a clique")
	}
}

func TestIsProper(t *testing.T) {
	if !IsProper(inst([2]int64{0, 10}, [2]int64{5, 15}, [2]int64{8, 20})) {
		t.Error("staircase should be proper")
	}
	if IsProper(inst([2]int64{0, 10}, [2]int64{2, 8})) {
		t.Error("nested pair should not be proper")
	}
	// Equal intervals contain but not properly.
	if !IsProper(inst([2]int64{0, 10}, [2]int64{0, 10})) {
		t.Error("duplicate intervals are proper")
	}
	// Same start, different ends: proper containment.
	if IsProper(inst([2]int64{0, 10}, [2]int64{0, 12})) {
		t.Error("shared-start nested pair should not be proper")
	}
}

func TestOneSidedness(t *testing.T) {
	if OneSidedness(inst([2]int64{0, 5}, [2]int64{0, 9})) != SharedStart {
		t.Error("shared start not detected")
	}
	if OneSidedness(inst([2]int64{1, 9}, [2]int64{4, 9})) != SharedEnd {
		t.Error("shared end not detected")
	}
	if OneSidedness(inst([2]int64{0, 5}, [2]int64{1, 9})) != NotOneSided {
		t.Error("two-sided misdetected")
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		jobs []job.Job
		want Class
	}{
		{inst([2]int64{0, 10}, [2]int64{2, 8}, [2]int64{30, 40}), General},
		{inst([2]int64{0, 10}, [2]int64{30, 40}), Proper},
		{inst([2]int64{0, 10}, [2]int64{5, 15}), ProperClique},
		{inst([2]int64{0, 10}, [2]int64{2, 8}), Clique},
		{inst([2]int64{0, 10}, [2]int64{0, 15}), OneSidedClique},
		{inst([2]int64{0, 10}, [2]int64{5, 15}, [2]int64{12, 25}), Proper},
	}
	for i, c := range cases {
		if got := Classify(c.jobs); got != c.want {
			t.Errorf("case %d: Classify = %v, want %v", i, got, c.want)
		}
	}
}

func TestClassStrings(t *testing.T) {
	for c, want := range map[Class]string{
		General: "general", Proper: "proper", Clique: "clique",
		ProperClique: "proper-clique", OneSidedClique: "one-sided-clique",
	} {
		if c.String() != want {
			t.Errorf("String(%d) = %q, want %q", c, c.String(), want)
		}
	}
}

// Property: the sweep-built adjacency matches the O(n^2) definition.
func TestPropertyAdjacencyMatchesBruteForce(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := int(nRaw % 24)
		jobs := make([]job.Job, n)
		for i := range jobs {
			s := r.Int63n(100)
			jobs[i] = job.New(i, s, s+1+r.Int63n(40))
		}
		g := Build(jobs)
		for i := 0; i < n; i++ {
			neighbors := map[int]bool{}
			for _, w := range g.Neighbors(i) {
				neighbors[w] = true
			}
			for j := 0; j < n; j++ {
				if i == j {
					continue
				}
				if jobs[i].Overlaps(jobs[j]) != neighbors[j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// Property: classification is consistent — one-sided implies clique;
// proper-clique implies both predicates.
func TestPropertyClassConsistency(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := int(nRaw%10) + 1
		jobs := make([]job.Job, n)
		for i := range jobs {
			s := r.Int63n(20)
			jobs[i] = job.New(i, s, s+1+r.Int63n(20))
		}
		switch Classify(jobs) {
		case OneSidedClique:
			return IsClique(jobs) && OneSidedness(jobs) != NotOneSided
		case ProperClique:
			return IsClique(jobs) && IsProper(jobs)
		case Clique:
			return IsClique(jobs) && !IsProper(jobs)
		case Proper:
			return IsProper(jobs) && !IsClique(jobs)
		default:
			return !IsClique(jobs) && !IsProper(jobs)
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
