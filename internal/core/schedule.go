// Package core implements the paper's primary contribution: the MinBusy
// and MaxThroughput scheduling algorithms on parallel machines with
// bounded parallelism g.
//
// A schedule assigns jobs to machines; a machine's cost is the measure of
// its busy period (the union of its jobs' intervals), and the schedule's
// cost is the sum over machines (Section 2). MinBusy schedules every job
// and minimizes cost; MaxThroughput schedules a subset within a busy-time
// budget T and maximizes the number (or weight) of scheduled jobs.
//
// Each algorithm documents its paper reference, its approximation
// guarantee, and the instance class it applies to. All of them return
// schedules that pass Schedule.Validate, and the test suite checks every
// returned schedule against the validity and bound invariants of
// Observation 2.1.
package core

import (
	"fmt"
	"sort"

	"repro/internal/interval"
	"repro/internal/job"
)

// Unscheduled marks a job left out of a partial schedule.
const Unscheduled = -1

// Schedule is a (possibly partial) assignment of the instance's jobs to
// machines. Machine[i] is the machine index of Jobs[i] in the originating
// instance, or Unscheduled. Machine indices are arbitrary labels: cost is
// defined by grouping, not by index values.
type Schedule struct {
	Instance job.Instance
	Machine  []int
}

// NewSchedule returns an all-unscheduled schedule for the instance.
func NewSchedule(in job.Instance) Schedule {
	m := make([]int, len(in.Jobs))
	for i := range m {
		m[i] = Unscheduled
	}
	return Schedule{Instance: in, Machine: m}
}

// Assign places job position i (index into Instance.Jobs) on machine m.
func (s *Schedule) Assign(i, m int) {
	if m < 0 {
		panic(fmt.Sprintf("core: Assign(%d, %d): negative machine", i, m))
	}
	s.Machine[i] = m
}

// MachineJobs groups job positions by machine, omitting unscheduled jobs.
// Keys are machine indices; values are job positions in increasing order.
func (s Schedule) MachineJobs() map[int][]int {
	out := map[int][]int{}
	for i, m := range s.Machine {
		if m != Unscheduled {
			out[m] = append(out[m], i)
		}
	}
	return out
}

// Cost returns the total busy time Σ_i span(J_i) over machines. Machines
// whose jobs form disconnected busy periods are charged only for busy
// measure, matching the paper's convention that such a machine can be
// split into contiguous-busy machines at no cost change.
func (s Schedule) Cost() int64 {
	var total int64
	for _, positions := range s.MachineJobs() {
		ivs := make([]interval.Interval, len(positions))
		for k, p := range positions {
			ivs[k] = s.Instance.Jobs[p].Interval
		}
		total += interval.Span(ivs)
	}
	return total
}

// Throughput returns the number of scheduled jobs.
func (s Schedule) Throughput() int {
	n := 0
	for _, m := range s.Machine {
		if m != Unscheduled {
			n++
		}
	}
	return n
}

// WeightedThroughput returns the total weight of scheduled jobs (the
// Section 5 weighted extension; equals Throughput for unit weights).
func (s Schedule) WeightedThroughput() int64 {
	var total int64
	for i, m := range s.Machine {
		if m != Unscheduled {
			total += s.Instance.Jobs[i].Weight
		}
	}
	return total
}

// Machines returns the number of distinct machines used.
func (s Schedule) Machines() int { return len(s.MachineJobs()) }

// Saving returns sav(s) = len(scheduled jobs) − cost(s), the paper's saving
// relative to the one-job-per-machine schedule (Section 2).
func (s Schedule) Saving() int64 {
	var lenScheduled int64
	for i, m := range s.Machine {
		if m != Unscheduled {
			lenScheduled += s.Instance.Jobs[i].Len()
		}
	}
	return lenScheduled - s.Cost()
}

// Validate checks that the schedule is well-formed and valid: machine
// slice length matches the instance, and no machine ever runs more than g
// jobs simultaneously (counting demands when jobs carry them).
func (s Schedule) Validate() error {
	if len(s.Machine) != len(s.Instance.Jobs) {
		return fmt.Errorf("core: schedule covers %d jobs, instance has %d", len(s.Machine), len(s.Instance.Jobs))
	}
	for i, m := range s.Machine {
		if m != Unscheduled && m < 0 {
			return fmt.Errorf("core: job position %d on invalid machine %d", i, m)
		}
	}
	for m, positions := range s.MachineJobs() {
		ivs := make([]interval.Interval, len(positions))
		demands := make([]int64, len(positions))
		for k, p := range positions {
			ivs[k] = s.Instance.Jobs[p].Interval
			demands[k] = s.Instance.Jobs[p].Demand
		}
		if load := interval.WeightedMaxConcurrency(ivs, demands); load > int64(s.Instance.G) {
			return fmt.Errorf("core: machine %d carries load %d > g = %d", m, load, s.Instance.G)
		}
	}
	return nil
}

// CompactMachines renumbers machines to 0..k−1 in order of first use,
// producing a canonical labeling for output and comparison.
func (s Schedule) CompactMachines() Schedule {
	out := Schedule{Instance: s.Instance, Machine: make([]int, len(s.Machine))}
	next := 0
	remap := map[int]int{}
	for i, m := range s.Machine {
		if m == Unscheduled {
			out.Machine[i] = Unscheduled
			continue
		}
		if _, ok := remap[m]; !ok {
			remap[m] = next
			next++
		}
		out.Machine[i] = remap[m]
	}
	return out
}

// scheduleFromGroups builds a schedule assigning each group of job
// positions to its own machine; positions absent from every group stay
// unscheduled.
func scheduleFromGroups(in job.Instance, groups [][]int) Schedule {
	s := NewSchedule(in)
	for m, group := range groups {
		for _, p := range group {
			s.Assign(p, m)
		}
	}
	return s
}

// byStartOrder returns job positions sorted by (start, end, position) —
// the canonical J1 <= J2 <= … order of the paper for proper instances.
func byStartOrder(jobs []job.Job) []int {
	order := make([]int, len(jobs))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		ja, jb := jobs[order[a]], jobs[order[b]]
		if ja.Start() != jb.Start() {
			return ja.Start() < jb.Start()
		}
		return ja.End() < jb.End()
	})
	return order
}

// byLenDescOrder returns job positions sorted by non-increasing length,
// ties by position, as used by FirstFit and the one-sided greedy.
func byLenDescOrder(jobs []job.Job) []int {
	order := make([]int, len(jobs))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return jobs[order[a]].Len() > jobs[order[b]].Len()
	})
	return order
}
