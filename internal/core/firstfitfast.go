package core

import (
	"repro/internal/itree"
	"repro/internal/job"
)

// FirstFitFast is FirstFit with each machine thread backed by an interval
// treap (internal/itree), replacing the linear overlap scan with an
// O(log n) query. It visits threads in the same order with the same
// tie-breaking as FirstFit, so the two produce identical assignments —
// a property the test suite checks — while the fast variant wins once
// threads grow long (see BenchmarkScaleFirstFitFast).
func FirstFitFast(in job.Instance) Schedule {
	s := NewSchedule(in)
	var machines [][]*itree.Set

	for _, p := range byLenDescOrder(in.Jobs) {
		iv := in.Jobs[p].Interval
		placed := false
		for m := 0; m < len(machines) && !placed; m++ {
			for t := 0; t < len(machines[m]) && !placed; t++ {
				if machines[m][t].Insert(iv) {
					s.Assign(p, m)
					placed = true
				}
			}
			if !placed && len(machines[m]) < in.G {
				th := &itree.Set{}
				th.Insert(iv)
				machines[m] = append(machines[m], th)
				s.Assign(p, m)
				placed = true
			}
		}
		if !placed {
			th := &itree.Set{}
			th.Insert(iv)
			machines = append(machines, []*itree.Set{th})
			s.Assign(p, len(machines)-1)
		}
	}
	return s
}
