package core_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	. "repro/internal/core"
	"repro/internal/igraph"
	"repro/internal/job"
	"repro/internal/workload"
)

// randomInstanceOfAnyClass draws an instance from a random family so the
// invariants below are exercised across every structural class.
func randomInstanceOfAnyClass(r *rand.Rand) job.Instance {
	cfg := workload.Config{
		N:       r.Intn(14) + 1,
		G:       r.Intn(4) + 1,
		MaxTime: 120,
		MaxLen:  int64(r.Intn(40) + 1),
	}
	seed := r.Int63()
	switch r.Intn(6) {
	case 0:
		return workload.General(seed, cfg)
	case 1:
		return workload.Clique(seed, cfg)
	case 2:
		return workload.Proper(seed, cfg)
	case 3:
		return workload.ProperClique(seed, cfg)
	case 4:
		return workload.OneSided(seed, cfg, seed%2 == 0)
	default:
		return workload.Lightpaths(seed, cfg)
	}
}

// Property: for every class and every total MinBusy algorithm the
// dispatcher can choose, the returned schedule is valid, total, and its
// cost lies within the Observation 2.1 bounds.
func TestPropertyMinBusyInvariants(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		in := randomInstanceOfAnyClass(r)
		bounds := BoundsOf(in)
		s, _ := MinBusyAuto(in)
		if s.Validate() != nil || s.Throughput() != len(in.Jobs) {
			return false
		}
		if !bounds.Contains(s.Cost()) {
			return false
		}
		// FirstFit and FirstFitFast must also respect the bounds.
		for _, alt := range []Schedule{FirstFit(in), FirstFitFast(in), NaivePerJob(in)} {
			if alt.Validate() != nil || !bounds.Contains(alt.Cost()) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// Property: throughput dispatch never exceeds the budget, never schedules
// more jobs than exist, and is monotone in the budget.
func TestPropertyThroughputInvariants(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		in := randomInstanceOfAnyClass(r)
		full := in.TotalLen()
		prev := -1
		for _, budget := range []int64{0, full / 4, full / 2, full} {
			s, _ := ThroughputAuto(in, budget)
			if s.Validate() != nil || s.Cost() > budget {
				return false
			}
			tput := s.Throughput()
			if tput > len(in.Jobs) {
				return false
			}
			if tput < prev {
				// Monotonicity holds for the exact algorithms; the greedy
				// and 4-approx are monotone on these budget ladders in
				// practice, but a strict check would be too strong for
				// approximations — only require no collapse to zero.
				if tput == 0 && prev > 0 {
					return false
				}
			}
			prev = tput
		}
		// With budget = len(J) every job fits (the length bound), so exact
		// algorithms schedule all n and the clique 4-approximation must
		// reach at least n/4.
		s, name := ThroughputAuto(in, full)
		n := len(in.Jobs)
		if name == "clique-throughput" {
			return 4*s.Throughput() >= n
		}
		return s.Throughput() == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// Property: the dispatcher's reported algorithm always matches the
// instance class contract: exact algorithms only run on their classes.
func TestPropertyDispatchContract(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		in := randomInstanceOfAnyClass(r)
		comps := igraph.SplitComponents(in)
		_, name := MinBusyAuto(in)
		if len(comps) > 1 {
			return len(name) > len("components:") && name[:11] == "components:"
		}
		switch igraph.Classify(in.Jobs) {
		case igraph.OneSidedClique:
			return name == "one-sided-greedy"
		case igraph.ProperClique:
			return name == "find-best-consecutive"
		case igraph.Clique:
			if in.G == 2 {
				return name == "clique-matching"
			}
			return name == "clique-set-cover" || name == "first-fit"
		case igraph.Proper:
			return name == "best-cut"
		default:
			return name == "first-fit"
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}
