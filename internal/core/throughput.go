package core

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/igraph"
	"repro/internal/interval"
	"repro/internal/job"
)

// OneSidedThroughput solves one-sided clique instances of MaxThroughput
// optimally (Proposition 4.1): some optimal schedule consists of the j
// shortest jobs for some j, scheduled greedily (Observation 3.1), so it
// suffices to scan j from n down and take the first prefix whose optimal
// cost fits the budget.
func OneSidedThroughput(in job.Instance, budget int64) (Schedule, error) {
	if igraph.OneSidedness(in.Jobs) == igraph.NotOneSided {
		return Schedule{}, fmt.Errorf("core: OneSidedThroughput requires a one-sided clique instance")
	}
	n := len(in.Jobs)
	// Shortest first.
	asc := byLenDescOrder(in.Jobs)
	reverseInts(asc)

	// prefixCost[j] = optimal cost of scheduling the j shortest jobs: group
	// them longest-first in groups of g; the cost is the sum of each
	// group's longest job (one-sided: span of a group = max length).
	prefixCost := make([]int64, n+1)
	for j := 1; j <= n; j++ {
		prefixCost[j] = 0
		// Jobs asc[0..j) sorted ascending by length; longest-first groups
		// take indices j-1, j-2, ... with group leaders at j-1, j-1-g, ...
		for lead := j - 1; lead >= 0; lead -= in.G {
			prefixCost[j] += in.Jobs[asc[lead]].Len()
		}
	}

	best := 0
	for j := n; j >= 0; j-- {
		if prefixCost[j] <= budget {
			best = j
			break
		}
	}
	s := NewSchedule(in)
	machine := 0
	for lead := best - 1; lead >= 0; lead -= in.G {
		for k := lead; k > lead-in.G && k >= 0; k-- {
			s.Assign(asc[k], machine)
		}
		machine++
	}
	return s, nil
}

// CliqueAlg1 implements Algorithm 5 (Alg1) of the paper for clique
// instances of MaxThroughput. Fix a common time t; split jobs into
// left-heavy and right-heavy; among all prefix pairs (j shortest-headed
// left-heavy jobs, k shortest-headed right-heavy jobs) pick the pair
// maximizing j+k whose total reduced (head-only) cost is ≤ T/2; schedule
// each prefix reduced-optimally. The actual cost is at most twice the
// reduced cost, hence ≤ T. By Lemma 4.1 this is a 4-approximation whenever
// tput* > 4g.
func CliqueAlg1(in job.Instance, budget int64) (Schedule, error) {
	t, ok := igraph.CommonTime(in.Jobs)
	if !ok {
		return Schedule{}, fmt.Errorf("core: CliqueAlg1 requires a clique instance")
	}

	type headed struct {
		pos  int
		head int64
	}
	var left, right []headed
	for i, j := range in.Jobs {
		l := t - j.Start()
		r := j.End() - t
		if l >= r { // ties: left part is the head (paper convention)
			left = append(left, headed{i, l})
		} else {
			right = append(right, headed{i, r})
		}
	}
	sortHeaded := func(xs []headed) {
		sort.Slice(xs, func(a, b int) bool { return xs[a].head < xs[b].head })
	}
	sortHeaded(left)
	sortHeaded(right)

	// reducedPrefixCost[j] = optimal reduced cost of the j shortest-headed
	// jobs: longest-first groups of g, each costing its longest head
	// (a one-sided instance in the reduced model).
	costs := func(xs []headed) []int64 {
		out := make([]int64, len(xs)+1)
		for j := 1; j <= len(xs); j++ {
			var c int64
			for lead := j - 1; lead >= 0; lead -= in.G {
				c += xs[lead].head
			}
			out[j] = c
		}
		return out
	}
	costL, costR := costs(left), costs(right)

	// Choose j + k maximal with 2*(costL[j]+costR[k]) <= budget. costR is
	// nondecreasing, so a two-pointer scan suffices.
	bestJ, bestK := -1, -1
	k := len(right)
	for j := 0; j <= len(left); j++ {
		for k >= 0 && 2*(costL[j]+costR[k]) > budget {
			k--
		}
		if k < 0 {
			break
		}
		if bestJ == -1 || j+k > bestJ+bestK {
			bestJ, bestK = j, k
		}
	}
	s := NewSchedule(in)
	if bestJ == -1 {
		return s, nil // nothing fits
	}
	machine := 0
	assign := func(xs []headed, count int) {
		for lead := count - 1; lead >= 0; lead -= in.G {
			for p := lead; p > lead-in.G && p >= 0; p-- {
				s.Assign(xs[p].pos, machine)
			}
			machine++
		}
	}
	assign(left, bestJ)
	assign(right, bestK)
	return s, nil
}

// CliqueAlg2 implements Algorithm 6 (Alg2) of the paper: consider every
// pair of jobs whose joint span fits the budget, find the pair covering the
// most jobs, and schedule up to g covered jobs on one machine. By Lemma 4.2
// this is a 4-approximation whenever tput* ≤ 4g.
func CliqueAlg2(in job.Instance, budget int64) (Schedule, error) {
	if !igraph.IsClique(in.Jobs) {
		return Schedule{}, fmt.Errorf("core: CliqueAlg2 requires a clique instance")
	}
	n := len(in.Jobs)
	s := NewSchedule(in)
	if n == 0 {
		return s, nil
	}

	bestCover := []int{}
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			span := in.Jobs[i].Interval.Hull(in.Jobs[j].Interval)
			if span.Len() > budget {
				continue
			}
			var cover []int
			for p := 0; p < n; p++ {
				if span.Contains(in.Jobs[p].Interval) {
					cover = append(cover, p)
				}
			}
			if len(cover) > len(bestCover) {
				bestCover = cover
			}
		}
	}
	for k, p := range bestCover {
		if k == in.G {
			break
		}
		s.Assign(p, 0)
	}
	return s, nil
}

// CliqueThroughput combines Alg1 and Alg2 and returns the better schedule —
// the paper's 4-approximation for clique instances of MaxThroughput for
// any g and any budget (Theorem 4.1).
func CliqueThroughput(in job.Instance, budget int64) (Schedule, error) {
	s1, err := CliqueAlg1(in, budget)
	if err != nil {
		return Schedule{}, err
	}
	s2, err := CliqueAlg2(in, budget)
	if err != nil {
		return Schedule{}, err
	}
	if s2.Throughput() > s1.Throughput() {
		return s2, nil
	}
	return s1, nil
}

// MostThroughputConsecutive solves proper clique instances of
// MaxThroughput optimally in O(n²·g) time (Theorem 4.2). By Lemma 4.3 an
// optimal partial schedule partitions the start-sorted job sequence into
// scheduled blocks of ≤ g consecutive jobs (one machine each) and
// unscheduled gaps, so
//
//	dp[i][t] = min cost scheduling the first i jobs with t unscheduled
//	         = min( dp[i-1][t-1],                           // skip job i
//	               min_{1≤j≤min(g,i)} dp[i-j][t] + c_i − s_{i-j+1} )
//
// The answer is the smallest t with dp[n][t] ≤ T. This 2-index DP is
// equivalent to the paper's 4-index cost(i,j,u,t) table (the j and u
// indices only memoize block shapes the transition above enumerates
// directly); the test suite verifies agreement with the exponential oracle.
func MostThroughputConsecutive(in job.Instance, budget int64) (Schedule, error) {
	if !igraph.IsProperClique(in.Jobs) {
		return Schedule{}, fmt.Errorf("core: MostThroughputConsecutive requires a proper clique instance")
	}
	n := len(in.Jobs)
	s := NewSchedule(in)
	if n == 0 || budget < 0 {
		return s, nil
	}
	order := byStartOrder(in.Jobs)
	start := func(k int) int64 { return in.Jobs[order[k]].Start() }
	end := func(k int) int64 { return in.Jobs[order[k]].End() }

	const inf = math.MaxInt64 / 4
	dp := make([][]int64, n+1)
	// choice[i][t]: 0 = skip job i; j > 0 = job i ends a block of size j.
	choice := make([][]int32, n+1)
	for i := range dp {
		dp[i] = make([]int64, n+1)
		choice[i] = make([]int32, n+1)
		for t := range dp[i] {
			dp[i][t] = inf
		}
	}
	dp[0][0] = 0
	for i := 1; i <= n; i++ {
		for t := 0; t <= i; t++ {
			if t > 0 && dp[i-1][t-1] < dp[i][t] {
				dp[i][t] = dp[i-1][t-1]
				choice[i][t] = 0
			}
			for j := 1; j <= in.G && j <= i; j++ {
				if i-j < t { // cannot have t unscheduled among first i-j
					break
				}
				c := dp[i-j][t] + end(i-1) - start(i-j)
				if c < dp[i][t] {
					dp[i][t] = c
					choice[i][t] = int32(j)
				}
			}
		}
	}

	bestT := -1
	for t := 0; t <= n; t++ {
		if dp[n][t] <= budget {
			bestT = t
			break
		}
	}
	if bestT == -1 {
		return s, nil // not even the empty schedule? budget >= 0 admits t = n
	}

	machine := 0
	for i, t := n, bestT; i > 0; {
		if j := int(choice[i][t]); j == 0 {
			i--
			t--
		} else {
			for k := i - j; k < i; k++ {
				s.Assign(order[k], machine)
			}
			machine++
			i -= j
		}
	}
	return s, nil
}

// MostWeightConsecutive is the weighted-throughput extension (the
// Section 5 open question) for proper clique instances: maximize total
// scheduled weight within a busy-time budget.
//
// The unweighted Lemma 4.3 structure — machines consecutive in the full
// job list J — does not survive weights: its proof swaps an unscheduled
// middle job for a scheduled end job, which preserves count but not
// weight. What does survive is Lemma 3.3 applied to the scheduled subset
// S: machines hold consecutive runs of S, which in J-index space are
// disjoint windows [a, b] whose two endpoints are scheduled. Within a
// window the span cost is fixed at c_b − s_a (every interior job is
// contained in it, by properness), so the optimal filling is the window
// endpoints plus the g−2 heaviest interior jobs — they ride along free.
//
// The DP runs over windows with a Pareto frontier of (cost, weight) states
// per prefix, pruned to the budget; worst case O(n²·(g + frontier)) time.
func MostWeightConsecutive(in job.Instance, budget int64) (Schedule, error) {
	if !igraph.IsProperClique(in.Jobs) {
		return Schedule{}, fmt.Errorf("core: MostWeightConsecutive requires a proper clique instance")
	}
	n := len(in.Jobs)
	s := NewSchedule(in)
	if n == 0 || budget < 0 {
		return s, nil
	}
	order := byStartOrder(in.Jobs)
	start := func(k int) int64 { return in.Jobs[order[k]].Start() }
	end := func(k int) int64 { return in.Jobs[order[k]].End() }
	weight := func(k int) int64 { return in.Jobs[order[k]].Weight }

	// windowPick[a][i] (i >= a) = chosen interior positions (up to g−2
	// heaviest in (a, i)) and their weight, for the window [a, i].
	type pick struct {
		weight int64
		jobs   []int
	}
	windowPick := make([][]pick, n)
	for a := 0; a < n; a++ {
		windowPick[a] = make([]pick, n)
		// Extend the window rightward, maintaining the up-to-(g−2)
		// heaviest interior jobs.
		var chosen []int // positions, kept smallest-weight-first
		var sum int64
		for i := a; i < n; i++ {
			if i > a+1 {
				// Job i−1 became interior when the window reached i.
				p := i - 1
				chosen = append(chosen, p)
				sum += weight(p)
				sort.Slice(chosen, func(x, y int) bool { return weight(chosen[x]) < weight(chosen[y]) })
				if len(chosen) > in.G-2 {
					sum -= weight(chosen[0])
					chosen = chosen[1:]
				}
			}
			windowPick[a][i] = pick{weight: sum, jobs: append([]int(nil), chosen...)}
		}
	}

	// pareto[i] = Pareto frontier of (cost, weight) over the first i jobs:
	// strictly increasing cost and weight.
	type state struct {
		cost, weight int64
		prevI        int // prefix length before this step
		prevIdx      int // state index within pareto[prevI]
		winA         int // window start, or -1 when job i−1 was skipped
	}
	pareto := make([][]state, n+1)
	pareto[0] = []state{{0, 0, 0, -1, -1}}

	for i := 1; i <= n; i++ {
		var cands []state
		// Skip job i−1 (position i−1 unscheduled).
		for idx, st := range pareto[i-1] {
			cands = append(cands, state{st.cost, st.weight, i - 1, idx, -1})
		}
		// Job i−1 closes a window [a, i−1]. Singleton windows have a = i−1.
		for a := i - 1; a >= 0; a-- {
			if in.G == 1 && a != i-1 {
				break // g = 1 machines hold exactly one job
			}
			wCost := end(i-1) - start(a)
			var wWeight int64
			if a == i-1 {
				wWeight = weight(a)
			} else {
				wWeight = weight(a) + weight(i-1) + windowPick[a][i-1].weight
			}
			for idx, st := range pareto[a] {
				c := st.cost + wCost
				if c > budget {
					continue
				}
				cands = append(cands, state{c, st.weight + wWeight, a, idx, a})
			}
		}
		sort.Slice(cands, func(x, y int) bool {
			if cands[x].cost != cands[y].cost {
				return cands[x].cost < cands[y].cost
			}
			return cands[x].weight > cands[y].weight
		})
		var frontier []state
		var bestW int64 = -1
		for _, st := range cands {
			if st.weight > bestW {
				frontier = append(frontier, st)
				bestW = st.weight
			}
		}
		pareto[i] = frontier
	}

	bestIdx := -1
	var bestW int64 = -1
	for idx, st := range pareto[n] {
		if st.weight > bestW {
			bestIdx, bestW = idx, st.weight
		}
	}
	if bestIdx == -1 {
		return s, nil
	}

	machine := 0
	i, idx := n, bestIdx
	for i > 0 {
		st := pareto[i][idx]
		if st.winA >= 0 {
			a := st.winA
			s.Assign(order[a], machine)
			if a != i-1 {
				s.Assign(order[i-1], machine)
				for _, p := range windowPick[a][i-1].jobs {
					s.Assign(order[p], machine)
				}
			}
			machine++
		}
		i, idx = st.prevI, st.prevIdx
	}
	return s, nil
}

// OneSidedWeightThroughput solves the weighted MaxThroughput problem on
// one-sided clique instances exactly — the Section 5 weighted extension on
// the class where Proposition 4.1 solves the unweighted case. One-sided
// cliques are not proper (shared starts with different ends nest), so
// MostWeightConsecutive does not apply; instead we use Observation 3.1's
// structure: for any chosen subset S, the optimal grouping sorts S by
// non-increasing length and cuts consecutive blocks of g, paying each
// block leader's length. A DP over jobs in that order with state
// (#chosen mod g) and Pareto-pruned (cost, weight) values is exact; the
// test suite verifies it against the exhaustive weighted oracle.
func OneSidedWeightThroughput(in job.Instance, budget int64) (Schedule, error) {
	if igraph.OneSidedness(in.Jobs) == igraph.NotOneSided {
		return Schedule{}, fmt.Errorf("core: OneSidedWeightThroughput requires a one-sided clique instance")
	}
	n := len(in.Jobs)
	s := NewSchedule(in)
	if n == 0 || budget < 0 {
		return s, nil
	}
	order := byLenDescOrder(in.Jobs)

	type state struct {
		cost, weight int64
		prevIdx      int  // index into the previous job's frontier
		took         bool // whether this job was chosen
	}
	// frontier[r] = Pareto states with (#chosen mod g) == r, per prefix.
	type frontierSet [][]state
	newFrontier := func() frontierSet { return make(frontierSet, in.G) }

	prune := func(cands []state) []state {
		sort.Slice(cands, func(a, b int) bool {
			if cands[a].cost != cands[b].cost {
				return cands[a].cost < cands[b].cost
			}
			return cands[a].weight > cands[b].weight
		})
		var out []state
		var bestW int64 = -1
		for _, st := range cands {
			if st.weight > bestW {
				out = append(out, st)
				bestW = st.weight
			}
		}
		return out
	}

	frontiers := make([]frontierSet, n+1)
	frontiers[0] = newFrontier()
	frontiers[0][0] = []state{{0, 0, -1, false}}

	for i := 1; i <= n; i++ {
		jb := in.Jobs[order[i-1]]
		cur := newFrontier()
		for r := 0; r < in.G; r++ {
			var cands []state
			// Skip job i−1: state unchanged.
			for idx, st := range frontiers[i-1][r] {
				cands = append(cands, state{st.cost, st.weight, idx, false})
			}
			// Take job i−1: it arrives at residue r, coming from residue
			// (r−1+g) mod g; it leads a new block iff r−1 ≡ −1, i.e. the
			// previous residue is 0 ... careful: leaders are chosen jobs
			// at positions ≡ 0 mod g among chosen, so taking a job moves
			// residue prev → prev+1 mod g and pays the job's length iff
			// prev == 0.
			prev := (r - 1 + in.G) % in.G
			for idx, st := range frontiers[i-1][prev] {
				cost := st.cost
				if prev == 0 {
					cost += jb.Len()
				}
				if cost > budget {
					continue
				}
				cands = append(cands, state{cost, st.weight + jb.Weight, idx, true})
			}
			cur[r] = prune(cands)
		}
		frontiers[i] = cur
	}

	// Best final state across residues.
	bestR, bestIdx := -1, -1
	var bestW int64 = -1
	for r := 0; r < in.G; r++ {
		for idx, st := range frontiers[n][r] {
			if st.weight > bestW {
				bestR, bestIdx, bestW = r, idx, st.weight
			}
		}
	}
	if bestIdx == -1 {
		return s, nil
	}

	// Reconstruct the chosen subsequence, then assign groups of g in
	// descending-length order.
	var chosen []int
	r, idx := bestR, bestIdx
	for i := n; i > 0; i-- {
		st := frontiers[i][r][idx]
		if st.took {
			chosen = append(chosen, order[i-1])
			r = (r - 1 + in.G) % in.G
		}
		idx = st.prevIdx
	}
	// chosen was collected back-to-front: reverse to descending length.
	reverseInts(chosen)
	for k, p := range chosen {
		s.Assign(p, k/in.G)
	}
	return s, nil
}

// GreedyThroughput is a budget-respecting heuristic for general instances
// of MaxThroughput, used as the fallback of ThroughputAuto where the paper
// gives no algorithm: jobs are offered shortest-first to a FirstFit-style
// packing, and a job is kept only when the schedule's total cost stays
// within the budget. It carries no approximation guarantee (the general
// problem's approximability is one of the paper's open questions); the
// test suite checks validity and budget compliance only.
func GreedyThroughput(in job.Instance, budget int64) Schedule {
	s := NewSchedule(in)
	if budget <= 0 {
		return s
	}
	order := byLenDescOrder(in.Jobs)
	reverseInts(order) // shortest first

	var machines [][][]int // machines[m][t] = job positions on thread t
	// machineSpan tracks each machine's busy intervals to recompute cost
	// incrementally.
	var cost int64
	machineIvs := map[int][]interval.Interval{}

	fits := func(th []int, p int) bool {
		for _, q := range th {
			if in.Jobs[q].Overlaps(in.Jobs[p]) {
				return false
			}
		}
		return true
	}
	place := func(p int) int {
		for m := 0; m < len(machines); m++ {
			for t := 0; t < len(machines[m]); t++ {
				if fits(machines[m][t], p) {
					machines[m][t] = append(machines[m][t], p)
					return m
				}
			}
			if len(machines[m]) < in.G {
				machines[m] = append(machines[m], []int{p})
				return m
			}
		}
		machines = append(machines, [][]int{{p}})
		return len(machines) - 1
	}

	for _, p := range order {
		// Tentatively place and check the budget; undo on overflow.
		savedMachines := cloneThreads(machines)
		m := place(p)
		newIvs := append(machineIvs[m], in.Jobs[p].Interval)
		oldSpan := interval.Span(machineIvs[m])
		newSpan := interval.Span(newIvs)
		if cost-oldSpan+newSpan > budget {
			machines = savedMachines
			continue
		}
		cost += newSpan - oldSpan
		machineIvs[m] = newIvs
		s.Assign(p, m)
	}
	return s
}

func cloneThreads(machines [][][]int) [][][]int {
	out := make([][][]int, len(machines))
	for m := range machines {
		out[m] = make([][]int, len(machines[m]))
		for t := range machines[m] {
			out[m][t] = append([]int(nil), machines[m][t]...)
		}
	}
	return out
}

// ThroughputAuto dispatches MaxThroughput to the strongest applicable
// algorithm by instance class: exact solvers where the paper gives them,
// the 4-approximation on cliques, and GreedyThroughput as the general
// fallback. It reports which algorithm ran.
func ThroughputAuto(in job.Instance, budget int64) (Schedule, string) {
	switch igraph.Classify(in.Jobs) {
	case igraph.OneSidedClique:
		if s, err := OneSidedThroughput(in, budget); err == nil {
			return s, "one-sided-throughput"
		}
	case igraph.ProperClique:
		if s, err := MostThroughputConsecutive(in, budget); err == nil {
			return s, "most-throughput-consecutive"
		}
	case igraph.Clique:
		if s, err := CliqueThroughput(in, budget); err == nil {
			return s, "clique-throughput"
		}
	}
	return GreedyThroughput(in, budget), "greedy-throughput"
}

// MinBusyViaThroughput demonstrates Proposition 2.2: MinBusy reduces to
// MaxThroughput by binary search on the budget, querying an exact
// MaxThroughput solver until the smallest budget scheduling all jobs is
// found. solve must return an optimal schedule for the given budget.
func MinBusyViaThroughput(in job.Instance, solve func(job.Instance, int64) (Schedule, error)) (Schedule, error) {
	n := len(in.Jobs)
	if n == 0 {
		return NewSchedule(in), nil
	}
	lo := in.LowerBound() // cost* >= max(span, ceil(len/g))
	hi := in.TotalLen()   // cost* <= len(J)
	var best Schedule
	found := false
	for lo <= hi {
		mid := lo + (hi-lo)/2
		s, err := solve(in, mid)
		if err != nil {
			return Schedule{}, err
		}
		if s.Throughput() == n {
			best = s
			found = true
			hi = mid - 1
		} else {
			lo = mid + 1
		}
	}
	if !found {
		return Schedule{}, fmt.Errorf("core: MinBusyViaThroughput: solver never scheduled all jobs within len(J)")
	}
	return best, nil
}

func reverseInts(xs []int) {
	for i, j := 0, len(xs)-1; i < j; i, j = i+1, j-1 {
		xs[i], xs[j] = xs[j], xs[i]
	}
}
