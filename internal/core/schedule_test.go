package core

import (
	"testing"

	"repro/internal/job"
)

func TestScheduleCostGroupsByMachine(t *testing.T) {
	in := job.NewInstance(2, [2]int64{0, 10}, [2]int64{5, 15}, [2]int64{100, 110})
	s := NewSchedule(in)
	s.Assign(0, 0)
	s.Assign(1, 0)
	s.Assign(2, 1)
	if got := s.Cost(); got != 25 {
		t.Errorf("Cost = %d, want 15+10 = 25", got)
	}
	if s.Machines() != 2 {
		t.Errorf("Machines = %d", s.Machines())
	}
	if s.Throughput() != 3 {
		t.Errorf("Throughput = %d", s.Throughput())
	}
}

func TestScheduleCostDisconnectedMachine(t *testing.T) {
	// A machine with two far-apart jobs is charged only busy measure.
	in := job.NewInstance(1, [2]int64{0, 10}, [2]int64{100, 110})
	s := NewSchedule(in)
	s.Assign(0, 7)
	s.Assign(1, 7)
	if got := s.Cost(); got != 20 {
		t.Errorf("Cost = %d, want 20", got)
	}
}

func TestScheduleSaving(t *testing.T) {
	in := job.NewInstance(2, [2]int64{0, 10}, [2]int64{5, 15})
	s := NewSchedule(in)
	s.Assign(0, 0)
	s.Assign(1, 0)
	if got := s.Saving(); got != 5 {
		t.Errorf("Saving = %d, want overlap 5", got)
	}
}

func TestSchedulePartialThroughput(t *testing.T) {
	in := job.NewInstance(1, [2]int64{0, 10}, [2]int64{5, 15})
	s := NewSchedule(in)
	s.Assign(1, 0)
	if s.Throughput() != 1 {
		t.Errorf("Throughput = %d", s.Throughput())
	}
	in.Jobs[1].Weight = 5
	s.Instance = in
	if s.WeightedThroughput() != 5 {
		t.Errorf("WeightedThroughput = %d", s.WeightedThroughput())
	}
}

func TestValidateCatchesOverload(t *testing.T) {
	in := job.NewInstance(1, [2]int64{0, 10}, [2]int64{5, 15})
	s := NewSchedule(in)
	s.Assign(0, 0)
	s.Assign(1, 0)
	if err := s.Validate(); err == nil {
		t.Fatal("two overlapping jobs on a g=1 machine should be invalid")
	}
	// Touching jobs are fine on one thread.
	in2 := job.NewInstance(1, [2]int64{0, 10}, [2]int64{10, 20})
	s2 := NewSchedule(in2)
	s2.Assign(0, 0)
	s2.Assign(1, 0)
	if err := s2.Validate(); err != nil {
		t.Fatalf("touching jobs rejected: %v", err)
	}
}

func TestValidateCountsDemands(t *testing.T) {
	in := job.NewInstance(3, [2]int64{0, 10}, [2]int64{0, 10})
	in.Jobs[0].Demand = 2
	in.Jobs[1].Demand = 2
	s := NewSchedule(in)
	s.Assign(0, 0)
	s.Assign(1, 0)
	if err := s.Validate(); err == nil {
		t.Fatal("total demand 4 > g=3 should be invalid")
	}
}

func TestValidateLengthMismatch(t *testing.T) {
	in := job.NewInstance(1, [2]int64{0, 10})
	s := Schedule{Instance: in, Machine: []int{0, 1}}
	if err := s.Validate(); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestCompactMachines(t *testing.T) {
	in := job.NewInstance(2, [2]int64{0, 1}, [2]int64{2, 3}, [2]int64{4, 5})
	s := NewSchedule(in)
	s.Assign(0, 17)
	s.Assign(2, 4)
	c := s.CompactMachines()
	if c.Machine[0] != 0 || c.Machine[1] != Unscheduled || c.Machine[2] != 1 {
		t.Errorf("CompactMachines = %v", c.Machine)
	}
	if c.Cost() != s.Cost() {
		t.Error("compaction changed cost")
	}
}

func TestAssignPanicsOnNegativeMachine(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative machine accepted")
		}
	}()
	in := job.NewInstance(1, [2]int64{0, 1})
	s := NewSchedule(in)
	s.Assign(0, -3)
}
