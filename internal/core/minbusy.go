package core

import (
	"context"
	"fmt"
	"math"
	"sort"

	"repro/internal/igraph"
	"repro/internal/job"
	"repro/internal/matching"
	"repro/internal/setcover"
)

// NaivePerJob assigns every job to its own machine. By the length bound
// (Observation 2.1) any schedule — and in particular this one — is a
// g-approximation for MinBusy (Proposition 2.1). It is the baseline the
// saving sav(s) is measured against.
func NaivePerJob(in job.Instance) Schedule {
	s := NewSchedule(in)
	for i := range in.Jobs {
		s.Assign(i, i)
	}
	return s
}

// FirstFit is the 1-D first-fit algorithm of Flammini et al. [13], the
// prior-work baseline the paper improves upon: sort jobs by non-increasing
// length and place each on the first thread of the first machine where it
// fits. It is a 4-approximation for general instances and a
// 2-approximation for proper and for clique instances [13].
func FirstFit(in job.Instance) Schedule {
	s := NewSchedule(in)
	// threads[m][t] holds the end-sorted jobs on thread t of machine m.
	type thread []int
	var machines [][]thread

	fits := func(th thread, p int) bool {
		for _, q := range th {
			if in.Jobs[q].Overlaps(in.Jobs[p]) {
				return false
			}
		}
		return true
	}

	for _, p := range byLenDescOrder(in.Jobs) {
		placed := false
		for m := 0; m < len(machines) && !placed; m++ {
			for t := 0; t < len(machines[m]) && !placed; t++ {
				if fits(machines[m][t], p) {
					machines[m][t] = append(machines[m][t], p)
					s.Assign(p, m)
					placed = true
				}
			}
			if !placed && len(machines[m]) < in.G {
				machines[m] = append(machines[m], thread{p})
				s.Assign(p, m)
				placed = true
			}
		}
		if !placed {
			machines = append(machines, []thread{{p}})
			s.Assign(p, len(machines)-1)
		}
	}
	return s
}

// OneSidedGreedy solves one-sided clique instances of MinBusy optimally
// (Observation 3.1): sort the jobs by non-increasing length and fill
// machines with g jobs each in that order. It returns an error when the
// instance is not a one-sided clique.
func OneSidedGreedy(in job.Instance) (Schedule, error) {
	if igraph.OneSidedness(in.Jobs) == igraph.NotOneSided {
		return Schedule{}, fmt.Errorf("core: OneSidedGreedy requires a one-sided clique instance")
	}
	s := NewSchedule(in)
	for k, p := range byLenDescOrder(in.Jobs) {
		s.Assign(p, k/in.G)
	}
	return s, nil
}

// CliqueMatching solves clique instances of MinBusy with g = 2 exactly
// (Lemma 3.1): a valid schedule pairs up jobs (at most two per machine, as
// all jobs overlap), the saving of a pair is its overlap length, so a
// maximum-weight matching on the overlap graph minimizes total cost.
func CliqueMatching(in job.Instance) (Schedule, error) {
	return CliqueMatchingCtx(context.Background(), in)
}

// CliqueMatchingCtx is CliqueMatching with cooperative cancellation: both
// the O(n²) overlap-graph construction and the O(n³) blossom search check
// ctx and return ctx.Err() once it fires.
func CliqueMatchingCtx(ctx context.Context, in job.Instance) (Schedule, error) {
	if in.G != 2 {
		return Schedule{}, fmt.Errorf("core: CliqueMatching requires g = 2, got g = %d", in.G)
	}
	if !igraph.IsClique(in.Jobs) {
		return Schedule{}, fmt.Errorf("core: CliqueMatching requires a clique instance")
	}
	n := len(in.Jobs)
	var edges []matching.Edge
	for i := 0; i < n; i++ {
		if ctx.Err() != nil {
			return Schedule{}, ctx.Err()
		}
		for j := i + 1; j < n; j++ {
			if w := in.Jobs[i].Interval.OverlapLen(in.Jobs[j].Interval); w > 0 {
				edges = append(edges, matching.Edge{U: i, V: j, Weight: w})
			}
		}
	}
	mate, err := matching.MaxCtx(ctx, n, edges)
	if err != nil {
		return Schedule{}, err
	}
	s := NewSchedule(in)
	machine := 0
	//lint:ignore busylint/ctxloop single O(n) reconstruction pass after the cancellable matching
	for i := 0; i < n; i++ {
		if mate[i] > i {
			s.Assign(i, machine)
			s.Assign(mate[i], machine)
			machine++
		} else if mate[i] == Unscheduled {
			s.Assign(i, machine)
			machine++
		}
	}
	return s, nil
}

// MaxCliqueSetCoverJobs bounds the subset enumeration of CliqueSetCover:
// instances with more than this many candidate subsets are rejected. The
// default admits e.g. n = 60 at g = 3 or n = 30 at g = 4.
const MaxCliqueSetCoverSubsets = 5_000_000

// CliqueSetCover approximates clique instances of MinBusy for any fixed g
// within g·H_g/(H_g + g − 1) (Lemma 3.2). It enumerates all job subsets of
// size ≤ g and runs three schedules, returning the cheapest:
//
//  1. greedy partition on the paper's modified weights g·span(Q) − len(Q)
//     (the scaled excess over the parallelism bound), restricted to
//     disjoint candidate sets so the cover is a partition — the paper's
//     cover-to-schedule step silently assumes this, because the
//     modified-weight accounting charges every job's length exactly once;
//  2. greedy cover on plain span weights (monotone, so dropping duplicate
//     jobs from chosen sets never raises cost), giving the classical
//     cost ≤ H_g·cost* guarantee;
//  3. the naive per-job schedule realizing the length bound cost = g·PB.
//
// The paper combines inequalities (1) and (3) through a convex mix to get
// the g·H_g/(H_g+g−1) ratio; taking the minimum of the three schedules
// inherits that combination (min(a,b) ≤ ρa + (1−ρ)b).
func CliqueSetCover(in job.Instance) (Schedule, error) {
	return CliqueSetCoverCtx(context.Background(), in)
}

// CliqueSetCoverCtx is CliqueSetCover with cooperative cancellation: the
// subset enumeration and both greedy cover loops check ctx and return
// ctx.Err() once it fires, so a Solver deadline can abandon a
// multi-million-subset run mid-enumeration.
func CliqueSetCoverCtx(ctx context.Context, in job.Instance) (Schedule, error) {
	if !igraph.IsClique(in.Jobs) {
		return Schedule{}, fmt.Errorf("core: CliqueSetCover requires a clique instance")
	}
	n := len(in.Jobs)
	if n == 0 {
		return NewSchedule(in), nil
	}
	if c := setcover.Count(n, in.G); c > MaxCliqueSetCoverSubsets {
		return Schedule{}, fmt.Errorf("core: CliqueSetCover would enumerate %d subsets (max %d); reduce g or n", c, MaxCliqueSetCoverSubsets)
	}

	best := NaivePerJob(in)
	bestCost := best.Cost()

	// Enumerate the subset space once; both greedy variants reuse it.
	modified, plain, err := cliqueSubsetSets(ctx, in)
	if err != nil {
		return Schedule{}, err
	}
	if s, err := coverFromModified(ctx, in, modified); err == nil && s.Cost() < bestCost {
		best, bestCost = s, s.Cost()
	} else if ctx.Err() != nil {
		return Schedule{}, ctx.Err()
	}
	s, err := coverFromPlain(ctx, in, plain)
	if err != nil {
		return Schedule{}, err
	}
	if s.Cost() < bestCost {
		best = s
	}
	return best, nil
}

// cliqueSubsetSets enumerates all job subsets of size ≤ g with both weight
// functions used by the set-cover algorithms, abandoning the enumeration
// with ctx.Err() once the context fires.
func cliqueSubsetSets(ctx context.Context, in job.Instance) (modified, plain []setcover.Set, err error) {
	g := int64(in.G)
	err = setcover.EnumerateSubsetsCtx(ctx, len(in.Jobs), in.G, func(subset []int) {
		var length int64
		// All jobs share a common time, so the union of any subset is a
		// single interval [min start, max end).
		lo, hi := int64(math.MaxInt64), int64(math.MinInt64)
		//lint:ignore busylint/ctxloop subset holds at most g elements; EnumerateSubsetsCtx observes ctx between subsets
		for _, p := range subset {
			iv := in.Jobs[p].Interval
			length += iv.Len()
			if iv.Start < lo {
				lo = iv.Start
			}
			if iv.End > hi {
				hi = iv.End
			}
		}
		span := hi - lo
		elems := append([]int(nil), subset...)
		modified = append(modified, setcover.Set{Elements: elems, Weight: g*span - length})
		plain = append(plain, setcover.Set{Elements: elems, Weight: span})
	})
	if err != nil {
		return nil, nil, err
	}
	return modified, plain, nil
}

// CliqueSetCoverModified is the modified-weight variant alone (greedy
// partition over weights g·span(Q)−len(Q)) — exposed for the E14 ablation.
func CliqueSetCoverModified(in job.Instance) (Schedule, error) {
	return cliqueSetCoverModifiedCtx(context.Background(), in)
}

func cliqueSetCoverModifiedCtx(ctx context.Context, in job.Instance) (Schedule, error) {
	if !igraph.IsClique(in.Jobs) {
		return Schedule{}, fmt.Errorf("core: CliqueSetCoverModified requires a clique instance")
	}
	if len(in.Jobs) == 0 {
		return NewSchedule(in), nil
	}
	modified, _, err := cliqueSubsetSets(ctx, in)
	if err != nil {
		return Schedule{}, err
	}
	return coverFromModified(ctx, in, modified)
}

// coverFromModified runs the greedy-partition step over precomputed
// modified-weight sets.
func coverFromModified(ctx context.Context, in job.Instance, modified []setcover.Set) (Schedule, error) {
	n := len(in.Jobs)
	chosen, err := setcover.GreedyPartitionCtx(ctx, n, modified)
	if err != nil {
		if ctx.Err() != nil {
			return Schedule{}, ctx.Err()
		}
		return Schedule{}, fmt.Errorf("core: CliqueSetCoverModified: %v", err)
	}
	return scheduleFromGroups(in, setcover.Partition(n, modified, chosen)), nil
}

// CliqueSetCoverPlain is the plain-span variant alone (classical greedy
// cover, H_g guarantee) — exposed for the E14 ablation.
func CliqueSetCoverPlain(in job.Instance) (Schedule, error) {
	return cliqueSetCoverPlainCtx(context.Background(), in)
}

func cliqueSetCoverPlainCtx(ctx context.Context, in job.Instance) (Schedule, error) {
	if !igraph.IsClique(in.Jobs) {
		return Schedule{}, fmt.Errorf("core: CliqueSetCoverPlain requires a clique instance")
	}
	if len(in.Jobs) == 0 {
		return NewSchedule(in), nil
	}
	_, plain, err := cliqueSubsetSets(ctx, in)
	if err != nil {
		return Schedule{}, err
	}
	return coverFromPlain(ctx, in, plain)
}

// coverFromPlain runs the classical greedy cover over precomputed
// span-weight sets.
func coverFromPlain(ctx context.Context, in job.Instance, plain []setcover.Set) (Schedule, error) {
	n := len(in.Jobs)
	chosen, err := setcover.GreedyCtx(ctx, n, plain)
	if err != nil {
		if ctx.Err() != nil {
			return Schedule{}, ctx.Err()
		}
		return Schedule{}, fmt.Errorf("core: CliqueSetCoverPlain: %v", err)
	}
	return scheduleFromGroups(in, setcover.Partition(n, plain, chosen)), nil
}

// SingleCut is the ablation baseline for BestCut: only the phase-g cut
// (consecutive groups of g from the first job) rather than the best of g
// offsets. Theorem 3.1's averaging argument shows why trying all offsets
// matters; E14 measures the gap.
func SingleCut(in job.Instance) (Schedule, error) {
	if !igraph.IsProper(in.Jobs) {
		return Schedule{}, fmt.Errorf("core: SingleCut requires a proper instance")
	}
	order := byStartOrder(in.Jobs)
	s := NewSchedule(in)
	for k, p := range order {
		s.Assign(p, k/in.G)
	}
	return s, nil
}

// BestCut implements Algorithm 1 of the paper: a (2 − 1/g)-approximation
// for proper instances of MinBusy (Theorem 3.1). It tries the g "phase
// offsets" of cutting the start-sorted job sequence into consecutive groups
// of g, and returns the cheapest resulting schedule.
//
// BestCut does not require connectivity: the cut-cost analysis of Theorem
// 3.1 uses only the span bound, which holds per component, and the
// schedule produced is valid on any proper instance. It returns an error
// when the instance is not proper.
func BestCut(in job.Instance) (Schedule, error) {
	if !igraph.IsProper(in.Jobs) {
		return Schedule{}, fmt.Errorf("core: BestCut requires a proper instance")
	}
	n := len(in.Jobs)
	if n == 0 {
		return NewSchedule(in), nil
	}
	order := byStartOrder(in.Jobs)

	best := Schedule{}
	var bestCost int64 = math.MaxInt64
	for i := 1; i <= in.G; i++ {
		s := NewSchedule(in)
		machine := 0
		// First group: jobs order[0..i).
		for k := 0; k < i && k < n; k++ {
			s.Assign(order[k], machine)
		}
		machine++
		for lo := i; lo < n; lo += in.G {
			hi := lo + in.G
			if hi > n {
				hi = n
			}
			for k := lo; k < hi; k++ {
				s.Assign(order[k], machine)
			}
			machine++
		}
		if c := s.Cost(); c < bestCost {
			best, bestCost = s, c
		}
	}
	return best, nil
}

// FindBestConsecutive solves proper clique instances of MinBusy optimally
// in O(n·g) time (Theorem 3.2, Algorithm 2). By Lemma 3.3 an optimal
// schedule assigns consecutive jobs (in start order) to each machine, so a
// one-dimensional DP over cut positions suffices: dp[i] is the optimal
// cost of the first i jobs, and a machine holding jobs (i−j, i] costs
// c_i − s_{i−j+1} (the union of consecutive proper clique jobs is one
// interval).
func FindBestConsecutive(in job.Instance) (Schedule, error) {
	if !igraph.IsProperClique(in.Jobs) {
		return Schedule{}, fmt.Errorf("core: FindBestConsecutive requires a proper clique instance")
	}
	n := len(in.Jobs)
	if n == 0 {
		return NewSchedule(in), nil
	}
	order := byStartOrder(in.Jobs)
	start := func(k int) int64 { return in.Jobs[order[k]].Start() }
	end := func(k int) int64 { return in.Jobs[order[k]].End() }

	dp := make([]int64, n+1)
	cut := make([]int, n+1)
	for i := 1; i <= n; i++ {
		dp[i] = math.MaxInt64
		for j := 1; j <= in.G && j <= i; j++ {
			c := dp[i-j] + end(i-1) - start(i-j)
			if c < dp[i] {
				dp[i] = c
				cut[i] = j
			}
		}
	}

	s := NewSchedule(in)
	machine := 0
	for i := n; i > 0; {
		j := cut[i]
		for k := i - j; k < i; k++ {
			s.Assign(order[k], machine)
		}
		machine++
		i -= j
	}
	return s, nil
}

// MinBusyAuto picks the strongest applicable algorithm for the instance
// class: exact DPs and matchings where the paper gives polynomial exact
// algorithms, approximation algorithms otherwise. It reports which
// algorithm ran. Connected components are solved independently (Section 2).
func MinBusyAuto(in job.Instance) (Schedule, string) {
	comps := igraph.SplitComponents(in)
	if len(comps) > 1 {
		subs := make([]Schedule, len(comps))
		names := make([]string, len(comps))
		for i, comp := range comps {
			subs[i], names[i] = MinBusyAuto(comp)
		}
		return MergeComponents(in, comps, subs, names)
	}

	switch igraph.Classify(in.Jobs) {
	case igraph.OneSidedClique:
		s, err := OneSidedGreedy(in)
		if err == nil {
			return s, "one-sided-greedy"
		}
	case igraph.ProperClique:
		s, err := FindBestConsecutive(in)
		if err == nil {
			return s, "find-best-consecutive"
		}
	case igraph.Clique:
		if in.G == 2 {
			if s, err := CliqueMatching(in); err == nil {
				return s, "clique-matching"
			}
		}
		if s, err := CliqueSetCover(in); err == nil {
			return s, "clique-set-cover"
		}
	case igraph.Proper:
		if s, err := BestCut(in); err == nil {
			return s, "best-cut"
		}
	}
	return FirstFit(in), "first-fit"
}

// MergeComponents merges per-component schedules produced on the pieces
// of igraph.SplitComponents back onto the original instance: component
// i's machines are renumbered onto a range disjoint from components
// 0..i−1, and the combined run is reported as "components:" plus the
// sorted distinct component algorithm names. subs[i] and names[i] must
// be the schedule and algorithm name obtained on comps[i].
func MergeComponents(in job.Instance, comps []job.Instance, subs []Schedule, names []string) (Schedule, string) {
	s := NewSchedule(in)
	posByID := make(map[int]int, len(in.Jobs))
	for i, j := range in.Jobs {
		posByID[j.ID] = i
	}
	machineBase := 0
	distinct := map[string]bool{}
	for ci, sub := range subs {
		distinct[names[ci]] = true
		maxM := -1
		for k, m := range sub.Machine {
			if m == Unscheduled {
				continue
			}
			s.Assign(posByID[comps[ci].Jobs[k].ID], machineBase+m)
			if m > maxM {
				maxM = m
			}
		}
		machineBase += maxM + 1
	}
	parts := make([]string, 0, len(distinct))
	for name := range distinct {
		parts = append(parts, name)
	}
	sort.Strings(parts)
	return s, "components:" + joinNames(parts)
}

func joinNames(parts []string) string {
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += "+"
		}
		out += p
	}
	return out
}
