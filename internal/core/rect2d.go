package core

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/job"
	"repro/internal/rect"
)

// RectSchedule assigns two-dimensional jobs to machines. Machine[i] is the
// machine of RectInstance.Jobs[i] (2-D MinBusy schedules are total).
type RectSchedule struct {
	Instance job.RectInstance
	Machine  []int
}

// Cost returns the total busy area Σ_i span(J_i) over machines, the 2-D
// objective of Section 3.4.
func (s RectSchedule) Cost() int64 {
	groups := map[int][]rect.Rect{}
	for i, m := range s.Machine {
		groups[m] = append(groups[m], s.Instance.Jobs[i].Rect)
	}
	var total int64
	for _, rs := range groups {
		total += rect.UnionArea(rs)
	}
	return total
}

// Machines returns the number of machines used.
func (s RectSchedule) Machines() int {
	seen := map[int]bool{}
	for _, m := range s.Machine {
		seen[m] = true
	}
	return len(seen)
}

// Validate checks that every job is assigned and no machine exceeds
// capacity g at any point of the plane.
func (s RectSchedule) Validate() error {
	if len(s.Machine) != len(s.Instance.Jobs) {
		return fmt.Errorf("core: rect schedule covers %d jobs, instance has %d", len(s.Machine), len(s.Instance.Jobs))
	}
	groups := map[int][]rect.Rect{}
	for i, m := range s.Machine {
		if m < 0 {
			return fmt.Errorf("core: rect job %d unassigned", i)
		}
		groups[m] = append(groups[m], s.Instance.Jobs[i].Rect)
	}
	for m, rs := range groups {
		if c := rect.MaxConcurrency(rs); c > s.Instance.G {
			return fmt.Errorf("core: machine %d concurrency %d > g = %d", m, c, s.Instance.G)
		}
	}
	return nil
}

// FirstFit2D implements Algorithm 3: sort jobs by non-increasing len₂ and
// assign each to the first thread of the first machine with no
// intersection. Lemma 3.5 shows its approximation ratio on rectangles is
// between 6γ₁+3 and 6γ₁+4 (γ₁ the len₁ max/min ratio); the Figure 3
// adversarial family in internal/workload drives it to the lower bound.
func FirstFit2D(in job.RectInstance) RectSchedule {
	n := len(in.Jobs)
	s := RectSchedule{Instance: in, Machine: make([]int, n)}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return in.Jobs[order[a]].Rect.Len2() > in.Jobs[order[b]].Rect.Len2()
	})

	// threads[m][t] = rect jobs on thread t of machine m.
	var machines [][][]int
	fits := func(thread []int, p int) bool {
		for _, q := range thread {
			if in.Jobs[q].Rect.Overlaps(in.Jobs[p].Rect) {
				return false
			}
		}
		return true
	}

	for _, p := range order {
		placed := false
		for m := 0; m < len(machines) && !placed; m++ {
			for t := 0; t < len(machines[m]) && !placed; t++ {
				if fits(machines[m][t], p) {
					machines[m][t] = append(machines[m][t], p)
					s.Machine[p] = m
					placed = true
				}
			}
			if !placed && len(machines[m]) < in.G {
				machines[m] = append(machines[m], []int{p})
				s.Machine[p] = m
				placed = true
			}
		}
		if !placed {
			machines = append(machines, [][]int{{p}})
			s.Machine[p] = len(machines) - 1
		}
	}
	return s
}

// DefaultBucketBase is the β the paper optimizes in Theorem 3.3, giving the
// min(g, 13.82·log min(γ₁,γ₂)+O(1)) ratio.
const DefaultBucketBase = 3.3

// BucketFirstFit implements Algorithm 4: partition jobs into buckets with
// len₁ ratio at most β, run FirstFit2D per bucket on fresh machines, and
// concatenate. With β = DefaultBucketBase this is the Theorem 3.3
// approximation algorithm. beta must be > 1.
//
// The paper assumes γ₁ ≤ γ₂ w.l.o.g.; callers can transpose instances with
// TransposeRects to enforce it (BucketFirstFitAuto does so automatically).
func BucketFirstFit(in job.RectInstance, beta float64) (RectSchedule, error) {
	if beta <= 1 {
		return RectSchedule{}, fmt.Errorf("core: BucketFirstFit needs beta > 1, got %v", beta)
	}
	n := len(in.Jobs)
	s := RectSchedule{Instance: in, Machine: make([]int, n)}
	if n == 0 {
		return s, nil
	}
	minLen := int64(math.MaxInt64)
	for _, j := range in.Jobs {
		if l := j.Rect.Len1(); l < minLen {
			minLen = l
		}
	}
	if minLen <= 0 {
		return RectSchedule{}, fmt.Errorf("core: BucketFirstFit requires non-degenerate rectangles")
	}

	// Bucket b holds jobs with len1 in [minLen·β^(b-1), minLen·β^b].
	buckets := map[int][]int{}
	for i, j := range in.Jobs {
		ratio := float64(j.Rect.Len1()) / float64(minLen)
		b := 0
		if ratio > 1 {
			b = int(math.Ceil(math.Log(ratio) / math.Log(beta)))
			// Boundary values belong to the lower bucket per the paper's
			// closed-interval bucket definition.
			if math.Pow(beta, float64(b-1)) >= ratio-1e-12 && b > 0 {
				b--
			}
		}
		buckets[b] = append(buckets[b], i)
	}

	keys := make([]int, 0, len(buckets))
	for b := range buckets {
		keys = append(keys, b)
	}
	sort.Ints(keys)

	machineBase := 0
	for _, b := range keys {
		sub := job.RectInstance{G: in.G}
		for _, p := range buckets[b] {
			sub.Jobs = append(sub.Jobs, in.Jobs[p])
		}
		subSched := FirstFit2D(sub)
		maxM := 0
		for k, p := range buckets[b] {
			m := subSched.Machine[k]
			s.Machine[p] = machineBase + m
			if m > maxM {
				maxM = m
			}
		}
		machineBase += maxM + 1
	}
	return s, nil
}

// TransposeRects swaps the two dimensions of every job — used to enforce
// the paper's γ₁ ≤ γ₂ normalization before bucketing.
func TransposeRects(in job.RectInstance) job.RectInstance {
	out := job.RectInstance{G: in.G, Jobs: make([]job.RectJob, len(in.Jobs))}
	for i, j := range in.Jobs {
		out.Jobs[i] = job.RectJob{ID: j.ID, Rect: rect.Rect{D1: j.Rect.D2, D2: j.Rect.D1}}
	}
	return out
}

// BucketFirstFitAuto transposes the instance if needed so that bucketing
// happens on the dimension with the smaller γ (the paper's w.l.o.g.
// normalization), then runs BucketFirstFit with the optimized base.
func BucketFirstFitAuto(in job.RectInstance) (RectSchedule, error) {
	if len(in.Jobs) == 0 {
		return RectSchedule{Instance: in}, nil
	}
	g1 := rect.Gamma(in.Rects(), 1)
	g2 := rect.Gamma(in.Rects(), 2)
	if g1 <= g2 {
		return BucketFirstFit(in, DefaultBucketBase)
	}
	ts, err := BucketFirstFit(TransposeRects(in), DefaultBucketBase)
	if err != nil {
		return RectSchedule{}, err
	}
	return RectSchedule{Instance: in, Machine: ts.Machine}, nil
}

// NaivePerJob2D assigns each rectangle its own machine — the g-approximate
// baseline in two dimensions.
func NaivePerJob2D(in job.RectInstance) RectSchedule {
	s := RectSchedule{Instance: in, Machine: make([]int, len(in.Jobs))}
	for i := range s.Machine {
		s.Machine[i] = i
	}
	return s
}
