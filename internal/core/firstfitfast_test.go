package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/job"
	"repro/internal/workload"
)

// FirstFitFast must produce the identical assignment to FirstFit: same
// thread-visit order, same tie-breaking, only a faster overlap check.
func TestFirstFitFastMatchesFirstFit(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		for _, g := range []int{1, 2, 4} {
			in := workload.General(seed, workload.Config{N: 60, G: g, MaxTime: 300, MaxLen: 80})
			a := FirstFit(in)
			b := FirstFitFast(in)
			for i := range a.Machine {
				if a.Machine[i] != b.Machine[i] {
					t.Fatalf("seed %d g %d: assignments differ at job %d: %d vs %d",
						seed, g, i, a.Machine[i], b.Machine[i])
				}
			}
		}
	}
}

func TestFirstFitFastValid(t *testing.T) {
	in := workload.Lightpaths(3, workload.Config{N: 80, G: 3, MaxTime: 500, MaxLen: 100})
	s := FirstFitFast(in)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Throughput() != len(in.Jobs) {
		t.Fatal("partial schedule")
	}
}

// Property: equivalence holds on arbitrary random instances, including
// heavy-overlap cliques.
func TestPropertyFirstFitFastEquivalence(t *testing.T) {
	f := func(seed int64, nRaw, gRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := int(nRaw%40) + 1
		g := int(gRaw%4) + 1
		jobs := make([]job.Job, n)
		for i := range jobs {
			s := r.Int63n(100)
			jobs[i] = job.New(i, s, s+1+r.Int63n(60))
		}
		in := job.Instance{Jobs: jobs, G: g}
		a := FirstFit(in)
		b := FirstFitFast(in)
		for i := range a.Machine {
			if a.Machine[i] != b.Machine[i] {
				return false
			}
		}
		return b.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
