package core_test

import (
	"testing"

	. "repro/internal/core"
	"repro/internal/job"
	"repro/internal/workload"
)

// CliqueAlg1 with every job left-heavy (or right-heavy) must still work:
// one of the two prefix families is empty.
func TestCliqueAlg1OneSidedHeaviness(t *testing.T) {
	// All share start 100 (one-sided => all right parts are 0 at t=100,
	// so all are left-heavy... depends on the chosen common time). Use
	// explicitly skewed jobs: huge left parts, tiny right parts.
	in := job.NewInstance(2,
		[2]int64{0, 101}, [2]int64{10, 102}, [2]int64{20, 103}, [2]int64{30, 104})
	s, err := CliqueAlg1(in, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Cost() > 1000 {
		t.Fatal("budget exceeded")
	}
}

func TestCliqueAlg1ZeroBudget(t *testing.T) {
	in := workload.Clique(1, workload.Config{N: 6, G: 2, MaxTime: 100, MaxLen: 30})
	s, err := CliqueAlg1(in, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Zero-length heads are impossible here, so nothing fits.
	if s.Cost() > 0 {
		t.Fatalf("cost %d with zero budget", s.Cost())
	}
}

func TestCliqueAlg2BudgetTooSmallForAnyJob(t *testing.T) {
	in := job.NewInstance(2, [2]int64{0, 100}, [2]int64{50, 150})
	s, err := CliqueAlg2(in, 10)
	if err != nil {
		t.Fatal(err)
	}
	if s.Throughput() != 0 {
		t.Fatalf("scheduled %d jobs under an infeasible budget", s.Throughput())
	}
}

func TestCliqueAlg2EmptyInstance(t *testing.T) {
	s, err := CliqueAlg2(job.Instance{G: 2}, 10)
	if err != nil || s.Throughput() != 0 {
		t.Fatalf("empty instance: %v %v", s.Throughput(), err)
	}
}

func TestGreedyThroughputZeroAndNegativeBudget(t *testing.T) {
	in := workload.General(1, workload.Config{N: 8, G: 2, MaxTime: 50, MaxLen: 20})
	for _, b := range []int64{0, -5} {
		s := GreedyThroughput(in, b)
		if s.Throughput() != 0 {
			t.Fatalf("budget %d scheduled %d jobs", b, s.Throughput())
		}
	}
}

func TestGreedyThroughputPrefersShortJobs(t *testing.T) {
	// One short and one long non-overlapping job; budget fits only the
	// short one plus maybe: shortest-first must take the short job.
	in := job.NewInstance(1, [2]int64{0, 100}, [2]int64{200, 210})
	s := GreedyThroughput(in, 10)
	if s.Machine[1] == Unscheduled || s.Machine[0] != Unscheduled {
		t.Fatalf("expected only the short job: %v", s.Machine)
	}
}

func TestMinBusyViaThroughputEmptyInstance(t *testing.T) {
	s, err := MinBusyViaThroughput(job.Instance{G: 1}, MostThroughputConsecutive)
	if err != nil || s.Cost() != 0 {
		t.Fatalf("empty instance: %v %v", s.Cost(), err)
	}
}

func TestMinBusyViaThroughputBrokenSolver(t *testing.T) {
	in := workload.ProperClique(1, workload.Config{N: 5, G: 2, MaxTime: 50, MaxLen: 20})
	never := func(in job.Instance, budget int64) (Schedule, error) {
		return NewSchedule(in), nil // schedules nothing ever
	}
	if _, err := MinBusyViaThroughput(in, never); err == nil {
		t.Fatal("expected error when solver never schedules all jobs")
	}
}

func TestOneSidedGreedySingleJob(t *testing.T) {
	in := job.NewInstance(3, [2]int64{5, 9})
	s, err := OneSidedGreedy(in)
	if err != nil {
		t.Fatal(err)
	}
	if s.Cost() != 4 || s.Machines() != 1 {
		t.Fatalf("cost %d machines %d", s.Cost(), s.Machines())
	}
}

func TestFindBestConsecutiveG1(t *testing.T) {
	// g=1 on a proper clique: every job on its own machine; DP must agree
	// with len(J).
	in := workload.ProperClique(2, workload.Config{N: 7, G: 1, MaxTime: 100, MaxLen: 20})
	s, err := FindBestConsecutive(in)
	if err != nil {
		t.Fatal(err)
	}
	if s.Cost() != in.TotalLen() {
		t.Fatalf("g=1 cost %d != len %d", s.Cost(), in.TotalLen())
	}
}

func TestBestCutGEqualsOneIsExactOnProper(t *testing.T) {
	// g=1: the only valid grouping on a clique is singletons. On general
	// proper instances BestCut with g=1 puts every job alone.
	in := workload.Proper(3, workload.Config{N: 8, G: 1, MaxTime: 100, MaxLen: 20})
	s, err := BestCut(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMostWeightConsecutiveG1(t *testing.T) {
	in := workload.ProperClique(5, workload.Config{N: 6, G: 1, MaxTime: 80, MaxLen: 20})
	for i := range in.Jobs {
		in.Jobs[i].Weight = int64(i%3 + 1)
	}
	full := in.TotalLen()
	s, err := MostWeightConsecutive(in, full)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Throughput() != len(in.Jobs) {
		t.Fatalf("full budget g=1 scheduled %d/%d", s.Throughput(), len(in.Jobs))
	}
}

func TestThroughputAutoReportsGreedyOnGeneral(t *testing.T) {
	in := job.NewInstance(2, [2]int64{0, 10}, [2]int64{2, 5}, [2]int64{100, 120})
	s, name := ThroughputAuto(in, 50)
	if name != "greedy-throughput" {
		t.Fatalf("dispatch = %q", name)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}
