package core

import (
	"math"
	"testing"

	"repro/internal/job"
	"repro/internal/rect"
	"repro/internal/workload"
)

func TestFirstFit2DValid(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		in := workload.BoundedGammaRects(seed, workload.Config{N: 30, G: 3, MaxTime: 100, MaxLen: 30}, 4)
		s := FirstFit2D(in)
		if err := s.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if s.Cost() < in.SpanArea() {
			t.Errorf("seed %d: cost %d below span bound %d", seed, s.Cost(), in.SpanArea())
		}
		if s.Cost() > in.TotalArea() {
			t.Errorf("seed %d: cost %d above length bound %d", seed, s.Cost(), in.TotalArea())
		}
	}
}

func TestFirstFit2DSingleMachineWhenDisjoint(t *testing.T) {
	in := job.RectInstance{G: 1, Jobs: []job.RectJob{
		job.NewRectJob(0, 0, 10, 0, 10),
		job.NewRectJob(1, 20, 30, 0, 10),
		job.NewRectJob(2, 40, 50, 0, 10),
	}}
	s := FirstFit2D(in)
	if s.Machines() != 1 {
		t.Errorf("disjoint rects should share one thread: %d machines", s.Machines())
	}
	if s.Cost() != 300 {
		t.Errorf("cost = %d", s.Cost())
	}
}

// Lemma 3.5 upper bound: FirstFit2D ≤ (6γ₁+4)·OPT. We check against the
// instance lower bound (≤ OPT), which only strengthens the test.
func TestFirstFit2DUpperBound(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		for _, gamma := range []int64{1, 3} {
			in := workload.BoundedGammaRects(seed, workload.Config{N: 25, G: 2, MaxTime: 60, MaxLen: 20}, gamma)
			g1 := rect.Gamma(in.Rects(), 1)
			s := FirstFit2D(in)
			bound := (6*g1 + 4) * float64(in.LowerBound())
			if float64(s.Cost()) > bound+1e-9 {
				t.Errorf("seed %d gamma %d: cost %d > (6γ+4)·LB = %.1f", seed, gamma, s.Cost(), bound)
			}
		}
	}
}

// Figure 3: the adversarial family must drive FirstFit2D to exactly the
// predicted g·span(Y) cost, and its ratio to the optimum upper bound
// approaches 6γ₁+3 as g grows and eps shrinks.
func TestFigure3LowerBound(t *testing.T) {
	g, gamma := 12, int64(2)
	scale, eps := int64(1000), int64(1)
	in, err := workload.Figure3(g, gamma, scale, eps)
	if err != nil {
		t.Fatal(err)
	}
	if got := rect.Gamma(in.Rects(), 1); got != float64(gamma) {
		t.Fatalf("instance gamma1 = %v, want %d", got, gamma)
	}
	s := FirstFit2D(in)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	predicted := workload.Figure3FirstFitCost(g, gamma, scale, eps)
	if s.Cost() != predicted {
		t.Fatalf("FirstFit2D cost = %d, lower-bound proof predicts %d", s.Cost(), predicted)
	}
	if s.Machines() != g {
		t.Errorf("machines = %d, want g = %d", s.Machines(), g)
	}
	optUB := workload.Figure3OptUpperBound(g, gamma, scale, eps)
	ratio := float64(s.Cost()) / float64(optUB)
	// Lemma 3.5's closed form for this family:
	//   g·(1+2γ−ε′)(3−ε′) / (g + 6γ − 1)
	// which tends to 6γ+3 as g → ∞ and ε′ → 0.
	e := float64(eps) / float64(scale)
	want := float64(g) * (1 + 2*float64(gamma) - e) * (3 - e) / float64(g+6*int(gamma)-1)
	if diff := ratio - want; diff > 1e-6 || diff < -1e-6 {
		t.Errorf("ratio = %.6f, closed form predicts %.6f", ratio, want)
	}
}

// The closed-form lower-bound ratio must approach 6γ+3 as g grows — the
// statement of Lemma 3.5 — and the simulated ratio must track it.
func TestFigure3ClosedFormApproachesAsymptote(t *testing.T) {
	gamma := int64(2)
	form := func(g int) float64 {
		return float64(g) * (1 + 2*float64(gamma)) * 3 / float64(g+6*int(gamma)-1)
	}
	if got := form(100000); got < float64(6*gamma+3)-0.01 {
		t.Errorf("closed form at huge g = %.3f, want near %d", got, 6*gamma+3)
	}
}

// Growing g must push the Figure-3 ratio monotonically toward 6γ₁+3.
func TestFigure3RatioImprovesWithG(t *testing.T) {
	gamma, scale, eps := int64(1), int64(1000), int64(1)
	prev := 0.0
	for _, g := range []int{4, 8, 16, 32} {
		in, err := workload.Figure3(g, gamma, scale, eps)
		if err != nil {
			t.Fatal(err)
		}
		s := FirstFit2D(in)
		ratio := float64(s.Cost()) / float64(workload.Figure3OptUpperBound(g, gamma, scale, eps))
		if ratio < prev {
			t.Errorf("ratio decreased at g=%d: %.3f < %.3f", g, ratio, prev)
		}
		prev = ratio
	}
	// Closed form at g=32, γ=1, ε′→0 is 9·32/37 ≈ 7.78.
	if prev < 7.5 {
		t.Errorf("ratio at g=32 is %.3f, expected ≈ 7.78", prev)
	}
}

func TestFigure3Rejects(t *testing.T) {
	if _, err := workload.Figure3(3, 1, 1000, 1); err == nil {
		t.Error("accepted g < 4")
	}
	if _, err := workload.Figure3(4, 0, 1000, 1); err == nil {
		t.Error("accepted gamma < 1")
	}
	if _, err := workload.Figure3(4, 1, 1000, 1000); err == nil {
		t.Error("accepted eps >= scale")
	}
}

func TestBucketFirstFitValidAndBounded(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		in := workload.BoundedGammaRects(seed, workload.Config{N: 40, G: 3, MaxTime: 120, MaxLen: 25}, 8)
		s, err := BucketFirstFit(in, DefaultBucketBase)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// Theorem 3.3 bound against the instance lower bound.
		g1 := rect.Gamma(in.Rects(), 1)
		bound := (13.82*log2(g1) + 30) * float64(in.LowerBound())
		gBound := float64(in.G) * float64(in.LowerBound())
		if b := minf(bound, gBound); float64(s.Cost()) > b+1e-9 {
			t.Errorf("seed %d: cost %d > bound %.1f", seed, s.Cost(), b)
		}
	}
}

func TestBucketFirstFitRejectsBadBeta(t *testing.T) {
	in := workload.BoundedGammaRects(1, workload.Config{N: 5, G: 2, MaxTime: 50, MaxLen: 10}, 2)
	if _, err := BucketFirstFit(in, 1.0); err == nil {
		t.Fatal("accepted beta = 1")
	}
}

func TestBucketFirstFitBucketsSeparateScales(t *testing.T) {
	// Two groups with len1 ratio 100: bucketing must not mix them, and the
	// result must still be valid.
	in := job.RectInstance{G: 2, Jobs: []job.RectJob{
		job.NewRectJob(0, 0, 10, 0, 10),
		job.NewRectJob(1, 0, 10, 5, 15),
		job.NewRectJob(2, 0, 1000, 0, 10),
		job.NewRectJob(3, 0, 1000, 5, 15),
	}}
	s, err := BucketFirstFit(in, DefaultBucketBase)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Machine[0] == s.Machine[2] || s.Machine[1] == s.Machine[3] {
		t.Errorf("buckets mixed scales: %v", s.Machine)
	}
}

func TestBucketFirstFitAutoTransposes(t *testing.T) {
	// gamma1 huge, gamma2 = 1: auto must bucket on dimension 2.
	in := job.RectInstance{G: 2, Jobs: []job.RectJob{
		job.NewRectJob(0, 0, 1000, 0, 10),
		job.NewRectJob(1, 0, 10, 5, 15),
	}}
	s, err := BucketFirstFitAuto(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(s.Machine) != 2 {
		t.Fatal("lost jobs")
	}
}

func TestNaivePerJob2D(t *testing.T) {
	in := workload.BoundedGammaRects(2, workload.Config{N: 6, G: 2, MaxTime: 50, MaxLen: 10}, 2)
	s := NaivePerJob2D(in)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Cost() != in.TotalArea() {
		t.Errorf("naive 2D cost = %d, want %d", s.Cost(), in.TotalArea())
	}
	if s.Machines() != 6 {
		t.Errorf("machines = %d", s.Machines())
	}
}

func TestTransposeRects(t *testing.T) {
	in := job.RectInstance{G: 1, Jobs: []job.RectJob{job.NewRectJob(0, 1, 2, 3, 9)}}
	tr := TransposeRects(in)
	r := tr.Jobs[0].Rect
	if r.D1.Start != 3 || r.D1.End != 9 || r.D2.Start != 1 || r.D2.End != 2 {
		t.Errorf("transpose = %v", r)
	}
}

func log2(x float64) float64 {
	if x < 1 {
		return 0
	}
	return math.Log2(x)
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
