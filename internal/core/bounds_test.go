package core

import (
	"math"
	"testing"

	"repro/internal/job"
)

func TestSavingToCostRatio(t *testing.T) {
	// Lemma 2.1 with BestCut's rho = g/(g-1) must give 2 - 1/g.
	for _, g := range []int{2, 3, 4, 10} {
		rho := float64(g) / float64(g-1)
		want := 2 - 1/float64(g)
		if got := SavingToCostRatio(rho, g); math.Abs(got-want) > 1e-12 {
			t.Errorf("g=%d: ratio = %v, want %v", g, got, want)
		}
	}
	// rho = 1 (optimal saving) must give ratio 1 regardless of g.
	if got := SavingToCostRatio(1, 7); math.Abs(got-1) > 1e-12 {
		t.Errorf("optimal saving ratio = %v", got)
	}
}

func TestBoundsOf(t *testing.T) {
	in := job.NewInstance(2, [2]int64{0, 10}, [2]int64{0, 10}, [2]int64{20, 30})
	b := BoundsOf(in)
	if b.Span != 20 || b.ParallelismBound != 15 || b.Length != 30 {
		t.Fatalf("bounds = %+v", b)
	}
	if b.Lower() != 20 {
		t.Errorf("Lower = %d", b.Lower())
	}
	if !b.Contains(20) || !b.Contains(30) || b.Contains(19) || b.Contains(31) {
		t.Error("Contains misclassifies")
	}
}

func TestBoundsHoldForSchedules(t *testing.T) {
	in := job.NewInstance(2, [2]int64{0, 10}, [2]int64{5, 15}, [2]int64{8, 20})
	b := BoundsOf(in)
	for _, s := range []Schedule{NaivePerJob(in), FirstFit(in)} {
		if !b.Contains(s.Cost()) {
			t.Errorf("cost %d outside bounds %+v", s.Cost(), b)
		}
	}
}
