package core_test

import (
	"testing"

	. "repro/internal/core"
	"repro/internal/exact"
	"repro/internal/igraph"
	"repro/internal/job"
	"repro/internal/setcover"
	"repro/internal/workload"
)

// mustValid fails the test if the schedule is invalid or partial when it
// should be total.
func mustValid(t *testing.T, s Schedule, total bool) {
	t.Helper()
	if err := s.Validate(); err != nil {
		t.Fatalf("invalid schedule: %v", err)
	}
	if total && s.Throughput() != len(s.Instance.Jobs) {
		t.Fatalf("schedule is partial: %d of %d", s.Throughput(), len(s.Instance.Jobs))
	}
}

func optCost(t *testing.T, in job.Instance) int64 {
	t.Helper()
	c, err := exact.MinBusyCost(in)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNaivePerJob(t *testing.T) {
	in := workload.General(1, workload.Config{N: 8, G: 3, MaxTime: 50, MaxLen: 20})
	s := NaivePerJob(in)
	mustValid(t, s, true)
	if s.Cost() != in.TotalLen() {
		t.Errorf("naive cost = %d, want len(J) = %d", s.Cost(), in.TotalLen())
	}
	if s.Saving() != 0 {
		t.Errorf("naive saving = %d", s.Saving())
	}
}

// Proposition 2.1: any schedule is a g-approximation.
func TestNaiveWithinGTimesOpt(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		in := workload.General(seed, workload.Config{N: 9, G: 3, MaxTime: 40, MaxLen: 15})
		opt := optCost(t, in)
		if got := NaivePerJob(in).Cost(); got > int64(in.G)*opt {
			t.Errorf("seed %d: naive %d > g*opt %d", seed, got, int64(in.G)*opt)
		}
	}
}

func TestFirstFitValidAndBounded(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		in := workload.General(seed, workload.Config{N: 10, G: 2, MaxTime: 60, MaxLen: 25})
		s := FirstFit(in)
		mustValid(t, s, true)
		opt := optCost(t, in)
		if s.Cost() > 4*opt {
			t.Errorf("seed %d: FirstFit %d > 4*opt %d", seed, s.Cost(), opt)
		}
		if s.Cost() < opt {
			t.Errorf("seed %d: FirstFit %d beat the oracle %d", seed, s.Cost(), opt)
		}
	}
}

func TestFirstFitCapacityOne(t *testing.T) {
	// g=1: every machine holds pairwise non-overlapping jobs.
	in := workload.General(7, workload.Config{N: 12, G: 1, MaxTime: 50, MaxLen: 20})
	s := FirstFit(in)
	mustValid(t, s, true)
}

func TestOneSidedGreedyOptimal(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		for _, sharedStart := range []bool{true, false} {
			in := workload.OneSided(seed, workload.Config{N: 9, G: 3, MaxTime: 100, MaxLen: 30}, sharedStart)
			s, err := OneSidedGreedy(in)
			if err != nil {
				t.Fatal(err)
			}
			mustValid(t, s, true)
			if opt := optCost(t, in); s.Cost() != opt {
				t.Errorf("seed %d shared-start=%v: greedy %d != opt %d", seed, sharedStart, s.Cost(), opt)
			}
		}
	}
}

func TestOneSidedGreedyRejectsGeneral(t *testing.T) {
	in := job.NewInstance(2, [2]int64{0, 5}, [2]int64{1, 7})
	if _, err := OneSidedGreedy(in); err == nil {
		t.Fatal("accepted non-one-sided instance")
	}
}

// Lemma 3.1: matching solves clique g=2 exactly.
func TestCliqueMatchingOptimal(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		in := workload.Clique(seed, workload.Config{N: 10, G: 2, MaxTime: 100, MaxLen: 40})
		s, err := CliqueMatching(in)
		if err != nil {
			t.Fatal(err)
		}
		mustValid(t, s, true)
		if opt := optCost(t, in); s.Cost() != opt {
			t.Errorf("seed %d: matching %d != opt %d", seed, s.Cost(), opt)
		}
	}
}

func TestCliqueMatchingRejects(t *testing.T) {
	if _, err := CliqueMatching(job.NewInstance(3, [2]int64{0, 5}, [2]int64{1, 6})); err == nil {
		t.Fatal("accepted g != 2")
	}
	if _, err := CliqueMatching(job.NewInstance(2, [2]int64{0, 5}, [2]int64{10, 15})); err == nil {
		t.Fatal("accepted non-clique")
	}
}

// Lemma 3.2: set cover is a g·H_g/(H_g+g−1)-approximation on cliques.
func TestCliqueSetCoverWithinBound(t *testing.T) {
	for _, g := range []int{2, 3, 4} {
		hg := setcover.Harmonic(g)
		bound := float64(g) * hg / (hg + float64(g) - 1)
		for seed := int64(0); seed < 15; seed++ {
			in := workload.Clique(seed, workload.Config{N: 9, G: g, MaxTime: 100, MaxLen: 40})
			s, err := CliqueSetCover(in)
			if err != nil {
				t.Fatal(err)
			}
			mustValid(t, s, true)
			opt := optCost(t, in)
			if float64(s.Cost()) > bound*float64(opt)+1e-9 {
				t.Errorf("g=%d seed %d: setcover %d > %.4f * opt %d", g, seed, s.Cost(), bound, opt)
			}
		}
	}
}

func TestCliqueSetCoverExactForG2(t *testing.T) {
	// For g = 2 weighted set cover with sets of size <= 2 is solved
	// optimally by... greedy is NOT exact in general, but the paper's
	// bound 2H_2/(H_2+1) = 1.2 must hold; additionally compare against
	// matching to confirm both stay within the bound of each other.
	for seed := int64(50); seed < 60; seed++ {
		in := workload.Clique(seed, workload.Config{N: 8, G: 2, MaxTime: 80, MaxLen: 30})
		sc, err := CliqueSetCover(in)
		if err != nil {
			t.Fatal(err)
		}
		opt := optCost(t, in)
		if float64(sc.Cost()) > 1.2*float64(opt)+1e-9 {
			t.Errorf("seed %d: setcover %d > 1.2*opt %d", seed, sc.Cost(), opt)
		}
	}
}

func TestCliqueSetCoverRejects(t *testing.T) {
	if _, err := CliqueSetCover(job.NewInstance(2, [2]int64{0, 5}, [2]int64{10, 15})); err == nil {
		t.Fatal("accepted non-clique")
	}
}

// Theorem 3.1: BestCut is a (2−1/g)-approximation on proper instances.
func TestBestCutWithinBound(t *testing.T) {
	for _, g := range []int{2, 3, 4} {
		bound := 2 - 1/float64(g)
		for seed := int64(0); seed < 15; seed++ {
			in := workload.Proper(seed, workload.Config{N: 10, G: g, MaxTime: 100, MaxLen: 20})
			s, err := BestCut(in)
			if err != nil {
				t.Fatal(err)
			}
			mustValid(t, s, true)
			opt := optCost(t, in)
			if float64(s.Cost()) > bound*float64(opt)+1e-9 {
				t.Errorf("g=%d seed %d: BestCut %d > %.3f * opt %d", g, seed, s.Cost(), bound, opt)
			}
		}
	}
}

func TestBestCutRejectsImproper(t *testing.T) {
	if _, err := BestCut(job.NewInstance(2, [2]int64{0, 10}, [2]int64{2, 5})); err == nil {
		t.Fatal("accepted improper instance")
	}
}

func TestBestCutSingleJob(t *testing.T) {
	in := job.NewInstance(3, [2]int64{2, 9})
	s, err := BestCut(in)
	if err != nil {
		t.Fatal(err)
	}
	if s.Cost() != 7 {
		t.Errorf("cost = %d", s.Cost())
	}
}

// Theorem 3.2: the consecutive DP is optimal on proper cliques.
func TestFindBestConsecutiveOptimal(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		in := workload.ProperClique(seed, workload.Config{N: 10, G: 3, MaxTime: 100, MaxLen: 25})
		if !igraph.IsProperClique(in.Jobs) {
			t.Fatalf("seed %d: generator produced non-proper-clique", seed)
		}
		s, err := FindBestConsecutive(in)
		if err != nil {
			t.Fatal(err)
		}
		mustValid(t, s, true)
		if opt := optCost(t, in); s.Cost() != opt {
			t.Errorf("seed %d: DP %d != opt %d", seed, s.Cost(), opt)
		}
	}
}

func TestFindBestConsecutiveRejects(t *testing.T) {
	if _, err := FindBestConsecutive(job.NewInstance(2, [2]int64{0, 10}, [2]int64{2, 5})); err == nil {
		t.Fatal("accepted non-proper-clique")
	}
}

func TestMinBusyAutoDispatch(t *testing.T) {
	cases := []struct {
		in   job.Instance
		want string
	}{
		{workload.OneSided(1, workload.Config{N: 6, G: 2, MaxTime: 50, MaxLen: 20}, true), "one-sided-greedy"},
		{workload.ProperClique(1, workload.Config{N: 6, G: 2, MaxTime: 50, MaxLen: 20}), "find-best-consecutive"},
		{job.NewInstance(2, [2]int64{0, 20}, [2]int64{1, 8}, [2]int64{2, 9}), "clique-matching"},
		{job.NewInstance(3, [2]int64{0, 20}, [2]int64{1, 8}, [2]int64{2, 9}), "clique-set-cover"},
	}
	for i, c := range cases {
		s, name := MinBusyAuto(c.in)
		if name != c.want {
			t.Errorf("case %d: dispatched to %q, want %q", i, name, c.want)
		}
		mustValid(t, s, true)
	}
}

func TestMinBusyAutoComponents(t *testing.T) {
	// Two far-apart proper cliques: decompose and solve each optimally.
	in := job.NewInstance(2,
		[2]int64{0, 10}, [2]int64{5, 15},
		[2]int64{1000, 1010}, [2]int64{1005, 1015})
	s, name := MinBusyAuto(in)
	mustValid(t, s, true)
	if opt := optCost(t, in); s.Cost() != opt {
		t.Errorf("auto %d != opt %d (via %s)", s.Cost(), opt, name)
	}
	if name != "components:find-best-consecutive" {
		t.Errorf("dispatch = %q", name)
	}
}

func TestMinBusyAutoGeneralFallsBackToFirstFit(t *testing.T) {
	in := job.NewInstance(2, [2]int64{0, 10}, [2]int64{2, 5}, [2]int64{4, 30}, [2]int64{29, 40})
	s, name := MinBusyAuto(in)
	mustValid(t, s, true)
	if name != "first-fit" {
		t.Errorf("dispatch = %q", name)
	}
}

// MinBusyAuto must never lose to the g-approximation guarantee.
func TestMinBusyAutoWithinG(t *testing.T) {
	gens := []func(int64) job.Instance{
		func(s int64) job.Instance {
			return workload.General(s, workload.Config{N: 9, G: 2, MaxTime: 60, MaxLen: 25})
		},
		func(s int64) job.Instance {
			return workload.Clique(s, workload.Config{N: 9, G: 3, MaxTime: 60, MaxLen: 25})
		},
		func(s int64) job.Instance {
			return workload.Proper(s, workload.Config{N: 9, G: 3, MaxTime: 60, MaxLen: 25})
		},
		func(s int64) job.Instance {
			return workload.Cloud(s, workload.Config{N: 9, G: 2, MaxTime: 80, MaxLen: 20})
		},
		func(s int64) job.Instance {
			return workload.Lightpaths(s, workload.Config{N: 9, G: 3, MaxTime: 90, MaxLen: 25})
		},
	}
	for gi, gen := range gens {
		for seed := int64(0); seed < 10; seed++ {
			in := gen(seed)
			s, name := MinBusyAuto(in)
			mustValid(t, s, true)
			opt := optCost(t, in)
			if s.Cost() > int64(in.G)*opt {
				t.Errorf("gen %d seed %d (%s): cost %d > g*opt %d", gi, seed, name, s.Cost(), int64(in.G)*opt)
			}
		}
	}
}
