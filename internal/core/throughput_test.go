package core_test

import (
	"testing"

	. "repro/internal/core"
	"repro/internal/exact"
	"repro/internal/job"
	"repro/internal/workload"
)

func optThroughput(t *testing.T, in job.Instance, budget int64) int {
	t.Helper()
	s, err := exact.MaxThroughput(in, budget)
	if err != nil {
		t.Fatal(err)
	}
	return s.Throughput()
}

// budgets returns a representative sweep of budgets for an instance: zero,
// tight fractions of the optimal full cost, and a generous budget.
func budgets(t *testing.T, in job.Instance) []int64 {
	t.Helper()
	full := optCost(t, in)
	return []int64{0, full / 4, full / 2, (3 * full) / 4, full - 1, full, full + 10}
}

// Proposition 4.1: one-sided throughput is exact.
func TestOneSidedThroughputOptimal(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		for _, sharedStart := range []bool{true, false} {
			in := workload.OneSided(seed, workload.Config{N: 8, G: 3, MaxTime: 100, MaxLen: 30}, sharedStart)
			for _, budget := range budgets(t, in) {
				s, err := OneSidedThroughput(in, budget)
				if err != nil {
					t.Fatal(err)
				}
				if err := s.Validate(); err != nil {
					t.Fatal(err)
				}
				if s.Cost() > budget {
					t.Fatalf("seed %d budget %d: cost %d over budget", seed, budget, s.Cost())
				}
				if want := optThroughput(t, in, budget); s.Throughput() != want {
					t.Errorf("seed %d budget %d: tput %d != opt %d", seed, budget, s.Throughput(), want)
				}
			}
		}
	}
}

func TestOneSidedThroughputRejects(t *testing.T) {
	if _, err := OneSidedThroughput(job.NewInstance(2, [2]int64{0, 5}, [2]int64{1, 7}), 10); err == nil {
		t.Fatal("accepted non-one-sided instance")
	}
}

// Theorem 4.1: combined clique throughput is a 4-approximation.
func TestCliqueThroughputWithin4(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		for _, g := range []int{1, 2, 3} {
			in := workload.Clique(seed, workload.Config{N: 9, G: g, MaxTime: 100, MaxLen: 40})
			for _, budget := range budgets(t, in) {
				s, err := CliqueThroughput(in, budget)
				if err != nil {
					t.Fatal(err)
				}
				if err := s.Validate(); err != nil {
					t.Fatal(err)
				}
				if s.Cost() > budget {
					t.Fatalf("seed %d g %d budget %d: cost %d over budget", seed, g, budget, s.Cost())
				}
				opt := optThroughput(t, in, budget)
				if 4*s.Throughput() < opt {
					t.Errorf("seed %d g %d budget %d: tput %d < opt/4 (opt %d)", seed, g, budget, s.Throughput(), opt)
				}
			}
		}
	}
}

func TestCliqueAlg2CoversSpanPairs(t *testing.T) {
	// Alg2 alone must schedule min(m, g) jobs from the best coverable span.
	in := job.NewInstance(2, [2]int64{0, 10}, [2]int64{1, 9}, [2]int64{2, 8}, [2]int64{0, 100})
	s, err := CliqueAlg2(in, 10)
	if err != nil {
		t.Fatal(err)
	}
	if s.Throughput() != 2 {
		t.Errorf("tput = %d, want g = 2 from the [0,10) coverage", s.Throughput())
	}
	if s.Cost() > 10 {
		t.Errorf("cost = %d over budget", s.Cost())
	}
}

func TestCliqueAlg1BudgetHalving(t *testing.T) {
	// Alg1's schedules must respect the full budget even though it plans
	// with reduced (head-only) costs.
	for seed := int64(0); seed < 10; seed++ {
		in := workload.Clique(seed, workload.Config{N: 10, G: 2, MaxTime: 100, MaxLen: 50})
		for _, budget := range budgets(t, in) {
			s, err := CliqueAlg1(in, budget)
			if err != nil {
				t.Fatal(err)
			}
			if err := s.Validate(); err != nil {
				t.Fatal(err)
			}
			if s.Cost() > budget {
				t.Errorf("seed %d budget %d: Alg1 cost %d over budget", seed, budget, s.Cost())
			}
		}
	}
}

func TestCliqueThroughputRejectsNonClique(t *testing.T) {
	in := job.NewInstance(2, [2]int64{0, 5}, [2]int64{10, 15})
	if _, err := CliqueThroughput(in, 100); err == nil {
		t.Fatal("accepted non-clique")
	}
}

// Theorem 4.2: the consecutive throughput DP is exact on proper cliques.
func TestMostThroughputConsecutiveOptimal(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		for _, g := range []int{1, 2, 3, 4} {
			in := workload.ProperClique(seed, workload.Config{N: 9, G: g, MaxTime: 100, MaxLen: 25})
			for _, budget := range budgets(t, in) {
				s, err := MostThroughputConsecutive(in, budget)
				if err != nil {
					t.Fatal(err)
				}
				if err := s.Validate(); err != nil {
					t.Fatal(err)
				}
				if s.Cost() > budget {
					t.Fatalf("seed %d g %d budget %d: cost %d over budget", seed, g, budget, s.Cost())
				}
				if want := optThroughput(t, in, budget); s.Throughput() != want {
					t.Errorf("seed %d g %d budget %d: tput %d != opt %d", seed, g, budget, s.Throughput(), want)
				}
			}
		}
	}
}

func TestMostThroughputConsecutiveRejects(t *testing.T) {
	if _, err := MostThroughputConsecutive(job.NewInstance(2, [2]int64{0, 10}, [2]int64{2, 5}), 10); err == nil {
		t.Fatal("accepted non-proper-clique")
	}
}

func TestMostThroughputZeroBudget(t *testing.T) {
	in := workload.ProperClique(3, workload.Config{N: 6, G: 2, MaxTime: 50, MaxLen: 20})
	s, err := MostThroughputConsecutive(in, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s.Throughput() != 0 {
		t.Errorf("tput = %d with zero budget", s.Throughput())
	}
}

// Section 5 extension: weighted throughput DP matches the weighted oracle.
func TestMostWeightConsecutiveOptimal(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		in := workload.ProperClique(seed, workload.Config{N: 8, G: 3, MaxTime: 100, MaxLen: 25})
		// Attach pseudo-random weights deterministically.
		for i := range in.Jobs {
			in.Jobs[i].Weight = 1 + (int64(i)*7+seed)%10
		}
		for _, budget := range budgets(t, in) {
			s, err := MostWeightConsecutive(in, budget)
			if err != nil {
				t.Fatal(err)
			}
			if err := s.Validate(); err != nil {
				t.Fatal(err)
			}
			if s.Cost() > budget {
				t.Fatalf("seed %d budget %d: cost %d over budget", seed, budget, s.Cost())
			}
			want, err := exact.MaxWeightThroughput(in, budget)
			if err != nil {
				t.Fatal(err)
			}
			if s.WeightedThroughput() != want.WeightedThroughput() {
				t.Errorf("seed %d budget %d: weight %d != opt %d",
					seed, budget, s.WeightedThroughput(), want.WeightedThroughput())
			}
		}
	}
}

// Unweighted DP and weighted DP with unit weights must agree.
func TestWeightedDPUnitWeightsAgree(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		in := workload.ProperClique(seed, workload.Config{N: 9, G: 2, MaxTime: 80, MaxLen: 20})
		for _, budget := range budgets(t, in) {
			a, err := MostThroughputConsecutive(in, budget)
			if err != nil {
				t.Fatal(err)
			}
			b, err := MostWeightConsecutive(in, budget)
			if err != nil {
				t.Fatal(err)
			}
			if a.Throughput() != b.Throughput() {
				t.Errorf("seed %d budget %d: unweighted %d != weighted-as-count %d",
					seed, budget, a.Throughput(), b.Throughput())
			}
		}
	}
}

// Section 5 weighted extension on one-sided cliques: the group-leader DP
// matches the exhaustive weighted oracle.
func TestOneSidedWeightThroughputOptimal(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		for _, sharedStart := range []bool{true, false} {
			in := workload.OneSided(seed, workload.Config{N: 9, G: 3, MaxTime: 100, MaxLen: 30}, sharedStart)
			for i := range in.Jobs {
				in.Jobs[i].Weight = 1 + (int64(i)*11+seed)%9
			}
			for _, budget := range budgets(t, in) {
				s, err := OneSidedWeightThroughput(in, budget)
				if err != nil {
					t.Fatal(err)
				}
				if err := s.Validate(); err != nil {
					t.Fatal(err)
				}
				if s.Cost() > budget {
					t.Fatalf("seed %d budget %d: cost %d over budget", seed, budget, s.Cost())
				}
				want, err := exact.MaxWeightThroughput(in, budget)
				if err != nil {
					t.Fatal(err)
				}
				if s.WeightedThroughput() != want.WeightedThroughput() {
					t.Errorf("seed %d shared-start=%v budget %d: weight %d != opt %d",
						seed, sharedStart, budget, s.WeightedThroughput(), want.WeightedThroughput())
				}
			}
		}
	}
}

// With unit weights the weighted one-sided DP must match the unweighted
// prefix algorithm's throughput.
func TestOneSidedWeightUnitAgreesWithPrefix(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		in := workload.OneSided(seed, workload.Config{N: 10, G: 2, MaxTime: 100, MaxLen: 25}, true)
		for _, budget := range budgets(t, in) {
			a, err := OneSidedThroughput(in, budget)
			if err != nil {
				t.Fatal(err)
			}
			b, err := OneSidedWeightThroughput(in, budget)
			if err != nil {
				t.Fatal(err)
			}
			if a.Throughput() != b.Throughput() {
				t.Errorf("seed %d budget %d: prefix %d != weighted-unit %d",
					seed, budget, a.Throughput(), b.Throughput())
			}
		}
	}
}

func TestOneSidedWeightThroughputRejects(t *testing.T) {
	if _, err := OneSidedWeightThroughput(job.NewInstance(2, [2]int64{0, 5}, [2]int64{1, 7}), 10); err == nil {
		t.Fatal("accepted non-one-sided instance")
	}
}

// Proposition 2.2: binary search over an exact MaxThroughput solver
// recovers the optimal MinBusy cost.
func TestMinBusyViaThroughput(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		in := workload.ProperClique(seed, workload.Config{N: 8, G: 3, MaxTime: 80, MaxLen: 20})
		s, err := MinBusyViaThroughput(in, MostThroughputConsecutive)
		if err != nil {
			t.Fatal(err)
		}
		mustValid(t, s, true)
		if opt := optCost(t, in); s.Cost() != opt {
			t.Errorf("seed %d: reduction %d != opt %d", seed, s.Cost(), opt)
		}
	}
}

func TestMinBusyViaThroughputGeneralOracle(t *testing.T) {
	in := workload.General(5, workload.Config{N: 8, G: 2, MaxTime: 50, MaxLen: 20})
	solve := func(in job.Instance, budget int64) (Schedule, error) {
		return exact.MaxThroughput(in, budget)
	}
	s, err := MinBusyViaThroughput(in, solve)
	if err != nil {
		t.Fatal(err)
	}
	mustValid(t, s, true)
	if opt := optCost(t, in); s.Cost() != opt {
		t.Errorf("reduction %d != opt %d", s.Cost(), opt)
	}
}
