package core

import "repro/internal/job"

// SavingToCostRatio converts a saving-maximization approximation ratio to
// a MinBusy cost ratio (Lemma 2.1): a 1/ρ-fraction-of-optimal saving
// yields cost ≤ (1/ρ + (1 − 1/ρ)·g)·OPT. BestCut's analysis goes through
// this conversion with ρ = g/(g−1), giving 2 − 1/g.
func SavingToCostRatio(rho float64, g int) float64 {
	inv := 1 / rho
	return inv + (1-inv)*float64(g)
}

// CostBounds bundles the Observation 2.1 bounds for reporting: any valid
// schedule's cost lies in [max(Span, ParallelismBound), Length].
type CostBounds struct {
	Span             int64
	ParallelismBound int64
	Length           int64
}

// BoundsOf computes the Observation 2.1 bounds of an instance.
func BoundsOf(in job.Instance) CostBounds {
	return CostBounds{
		Span:             in.Span(),
		ParallelismBound: in.ParallelismBound(),
		Length:           in.TotalLen(),
	}
}

// Lower returns the best lower bound, max(Span, ParallelismBound).
func (b CostBounds) Lower() int64 {
	if b.Span > b.ParallelismBound {
		return b.Span
	}
	return b.ParallelismBound
}

// Contains reports whether a schedule cost is consistent with the bounds —
// the invariant every test asserts for every schedule produced.
func (b CostBounds) Contains(cost int64) bool {
	return cost >= b.Lower() && cost <= b.Length
}
