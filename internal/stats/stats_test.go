package stats

import (
	"math"
	"strings"
	"testing"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.P50 != 3 {
		t.Errorf("Summary = %+v", s)
	}
	if math.Abs(s.Std-math.Sqrt(2.5)) > 1e-12 {
		t.Errorf("Std = %v", s.Std)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if s := Summarize(nil); s.N != 0 || s.Mean != 0 {
		t.Errorf("empty Summary = %+v", s)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{7})
	if s.Mean != 7 || s.Std != 0 || s.P50 != 7 || s.P95 != 7 {
		t.Errorf("single Summary = %+v", s)
	}
}

func TestQuantile(t *testing.T) {
	sorted := []float64{10, 20, 30, 40}
	if q := Quantile(sorted, 0); q != 10 {
		t.Errorf("q0 = %v", q)
	}
	if q := Quantile(sorted, 1); q != 40 {
		t.Errorf("q1 = %v", q)
	}
	if q := Quantile(sorted, 0.5); q != 25 {
		t.Errorf("q0.5 = %v", q)
	}
}

func TestQuantilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on empty sample")
		}
	}()
	Quantile(nil, 0.5)
}

func TestRatio(t *testing.T) {
	if Ratio(6, 3) != 2 {
		t.Error("6/3")
	}
	if Ratio(0, 0) != 1 {
		t.Error("0/0 should be 1")
	}
	if !math.IsInf(Ratio(5, 0), 1) {
		t.Error("5/0 should be +Inf")
	}
}

func TestTable(t *testing.T) {
	tb := Table{Header: []string{"name", "ratio"}}
	tb.Add("best-cut", 1.25)
	tb.Add("first-fit", 2.0)
	out := tb.String()
	if !strings.Contains(out, "best-cut") || !strings.Contains(out, "1.250") {
		t.Errorf("table output:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // header, separator, two rows
		t.Errorf("got %d lines:\n%s", len(lines), out)
	}
}
