// Package stats provides the small summary-statistics and table-rendering
// toolkit used by the experiment harness (cmd/experiments, bench_test.go,
// EXPERIMENTS.md).
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary condenses a sample of float64 observations.
type Summary struct {
	N    int
	Mean float64
	Std  float64
	Min  float64
	Max  float64
	P50  float64
	P95  float64
}

// Summarize computes a Summary; it returns a zero Summary for an empty
// sample.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	if len(xs) > 1 {
		s.Std = math.Sqrt(ss / float64(len(xs)-1))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.P50 = Quantile(sorted, 0.50)
	s.P95 = Quantile(sorted, 0.95)
	return s
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of an ascending-sorted
// sample using linear interpolation. It panics on an empty sample or an
// out-of-range q — both caller bugs.
func Quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		panic("stats: Quantile of empty sample")
	}
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("stats: Quantile q = %v outside [0,1]", q))
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Ratio returns a/b as float64, treating 0/0 as 1 (two empty costs agree)
// and x/0 for x>0 as +Inf.
func Ratio(a, b int64) float64 {
	if b == 0 {
		if a == 0 {
			return 1
		}
		return math.Inf(1)
	}
	return float64(a) / float64(b)
}

// Table renders rows under a header as fixed-width columns, the output
// format of cmd/experiments. Column widths adapt to content.
type Table struct {
	Header []string
	Rows   [][]string
}

// Add appends a row; values are formatted with %v.
func (t *Table) Add(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table.
func (t *Table) String() string {
	cols := len(t.Header)
	for _, r := range t.Rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	widths := make([]int, cols)
	measure := func(r []string) {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	measure(t.Header)
	for _, r := range t.Rows {
		measure(r)
	}
	var b strings.Builder
	writeRow := func(r []string) {
		for i := 0; i < cols; i++ {
			cell := ""
			if i < len(r) {
				cell = r[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteString("\n")
	}
	writeRow(t.Header)
	sep := make([]string, cols)
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}
