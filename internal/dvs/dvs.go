// Package dvs explores the Dynamic Voltage Scaling tradeoff sketched as
// future work in Section 5: running machines at speed σ ≥ 1 shortens each
// job's occupancy to len/σ but raises power draw to σ^α (α ≈ 2–3 for CMOS,
// following the classical speed-scaling model of Yao, Demers and Shenker).
//
// Jobs keep their release point (start time) and shrink toward it: at
// speed σ, job [s, s+p) occupies [s, s+⌈p/σ⌉). Busy time is measured on
// the rescheduled instance, and energy = busy · σ^α. The package provides
// the sweep and a ternary search for the energy-minimizing speed, which
// exists because busy time is non-increasing and power strictly convex in
// σ — the "wise tradeoff" the paper asks about.
package dvs

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/job"
)

// ScaleInstance returns the instance as seen at speed sigma ≥ 1: each job
// occupies [s, s+ceil(len/sigma)). Job identity, weights and demands are
// preserved.
func ScaleInstance(in job.Instance, sigma float64) (job.Instance, error) {
	if sigma < 1 {
		return job.Instance{}, fmt.Errorf("dvs: speed %v < 1", sigma)
	}
	out := in.Clone()
	for i := range out.Jobs {
		p := float64(out.Jobs[i].Len())
		scaled := int64(math.Ceil(p / sigma))
		if scaled < 1 {
			scaled = 1
		}
		out.Jobs[i].Interval.End = out.Jobs[i].Interval.Start + scaled
	}
	return out, nil
}

// Point is one sweep sample: the busy time of the rescheduled instance at
// the given speed and the resulting energy busy·σ^α.
type Point struct {
	Sigma  float64
	Busy   int64
	Energy float64
}

// Sweep evaluates the busy time and energy across the given speeds using
// the solve callback (typically core.MinBusyAuto).
func Sweep(in job.Instance, alpha float64, sigmas []float64, solve func(job.Instance) core.Schedule) ([]Point, error) {
	pts := make([]Point, 0, len(sigmas))
	for _, sigma := range sigmas {
		scaled, err := ScaleInstance(in, sigma)
		if err != nil {
			return nil, err
		}
		busy := solve(scaled).Cost()
		pts = append(pts, Point{
			Sigma:  sigma,
			Busy:   busy,
			Energy: float64(busy) * math.Pow(sigma, alpha),
		})
	}
	return pts, nil
}

// BestSpeed ternary-searches [1, maxSigma] for the speed minimizing
// energy. The energy curve is unimodal when busy time decreases smoothly;
// with integer rounding plateaus the search still returns a point within
// tol of a local optimum, which the tests cross-check against a fine
// sweep.
func BestSpeed(in job.Instance, alpha, maxSigma, tol float64, solve func(job.Instance) core.Schedule) (Point, error) {
	if maxSigma < 1 {
		return Point{}, fmt.Errorf("dvs: maxSigma %v < 1", maxSigma)
	}
	eval := func(sigma float64) (Point, error) {
		pts, err := Sweep(in, alpha, []float64{sigma}, solve)
		if err != nil {
			return Point{}, err
		}
		return pts[0], nil
	}
	lo, hi := 1.0, maxSigma
	for hi-lo > tol {
		m1 := lo + (hi-lo)/3
		m2 := hi - (hi-lo)/3
		p1, err := eval(m1)
		if err != nil {
			return Point{}, err
		}
		p2, err := eval(m2)
		if err != nil {
			return Point{}, err
		}
		if p1.Energy <= p2.Energy {
			hi = m2
		} else {
			lo = m1
		}
	}
	// Integer rounding creates plateaus that can strand the search a hair
	// above a cliff; the endpoints are the common culprits, so take the
	// best of the interior candidate and both endpoints.
	best, err := eval((lo + hi) / 2)
	if err != nil {
		return Point{}, err
	}
	for _, sigma := range []float64{1, maxSigma} {
		p, err := eval(sigma)
		if err != nil {
			return Point{}, err
		}
		if p.Energy < best.Energy {
			best = p
		}
	}
	return best, nil
}
