package dvs

import (
	"testing"

	"repro/internal/core"
	"repro/internal/job"
	"repro/internal/workload"
)

func autoSolve(in job.Instance) core.Schedule {
	s, _ := core.MinBusyAuto(in)
	return s
}

func TestScaleInstanceShrinksJobs(t *testing.T) {
	in := job.NewInstance(2, [2]int64{0, 10}, [2]int64{5, 8})
	out, err := ScaleInstance(in, 2)
	if err != nil {
		t.Fatal(err)
	}
	if out.Jobs[0].Len() != 5 {
		t.Errorf("job 0 scaled len = %d, want 5", out.Jobs[0].Len())
	}
	if out.Jobs[1].Len() != 2 { // ceil(3/2)
		t.Errorf("job 1 scaled len = %d, want 2", out.Jobs[1].Len())
	}
	if out.Jobs[0].Start() != 0 || out.Jobs[1].Start() != 5 {
		t.Error("starts must be preserved")
	}
	// Original untouched.
	if in.Jobs[0].Len() != 10 {
		t.Error("ScaleInstance mutated input")
	}
}

func TestScaleInstanceMinimumLength(t *testing.T) {
	in := job.NewInstance(1, [2]int64{0, 3})
	out, err := ScaleInstance(in, 100)
	if err != nil {
		t.Fatal(err)
	}
	if out.Jobs[0].Len() != 1 {
		t.Errorf("scaled len = %d, want clamp to 1", out.Jobs[0].Len())
	}
}

func TestScaleInstanceRejectsSlowdown(t *testing.T) {
	if _, err := ScaleInstance(job.NewInstance(1, [2]int64{0, 5}), 0.5); err == nil {
		t.Fatal("accepted sigma < 1")
	}
}

func TestSweepBusyNonIncreasing(t *testing.T) {
	in := workload.General(9, workload.Config{N: 25, G: 3, MaxTime: 150, MaxLen: 50})
	pts, err := Sweep(in, 3, []float64{1, 1.5, 2, 3, 5}, autoSolve)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Busy > pts[i-1].Busy {
			t.Errorf("busy time increased at sigma %v: %d > %d",
				pts[i].Sigma, pts[i].Busy, pts[i-1].Busy)
		}
	}
	// At sigma = 1 energy equals busy time.
	if pts[0].Energy != float64(pts[0].Busy) {
		t.Errorf("sigma=1 energy %v != busy %d", pts[0].Energy, pts[0].Busy)
	}
}

func TestBestSpeedNearFineSweep(t *testing.T) {
	in := workload.General(4, workload.Config{N: 20, G: 2, MaxTime: 120, MaxLen: 40})
	const alpha = 3
	best, err := BestSpeed(in, alpha, 4, 0.01, autoSolve)
	if err != nil {
		t.Fatal(err)
	}
	// Fine sweep reference.
	var sigmas []float64
	for s := 1.0; s <= 4.0; s += 0.05 {
		sigmas = append(sigmas, s)
	}
	pts, err := Sweep(in, alpha, sigmas, autoSolve)
	if err != nil {
		t.Fatal(err)
	}
	fineBest := pts[0]
	for _, p := range pts {
		if p.Energy < fineBest.Energy {
			fineBest = p
		}
	}
	// Ternary search must come within 5% of the sweep optimum despite
	// rounding plateaus.
	if best.Energy > 1.05*fineBest.Energy {
		t.Errorf("BestSpeed energy %v too far above sweep optimum %v (sigma %v vs %v)",
			best.Energy, fineBest.Energy, best.Sigma, fineBest.Sigma)
	}
}

func TestBestSpeedRejectsBadMax(t *testing.T) {
	if _, err := BestSpeed(job.NewInstance(1, [2]int64{0, 5}), 3, 0.5, 0.01, autoSolve); err == nil {
		t.Fatal("accepted maxSigma < 1")
	}
}

// With alpha large, running faster is never worth it: best speed ~ 1.
func TestBestSpeedHighAlphaStaysSlow(t *testing.T) {
	in := workload.General(2, workload.Config{N: 15, G: 2, MaxTime: 100, MaxLen: 30})
	best, err := BestSpeed(in, 10, 4, 0.01, autoSolve)
	if err != nil {
		t.Fatal(err)
	}
	base, err := Sweep(in, 10, []float64{1}, autoSolve)
	if err != nil {
		t.Fatal(err)
	}
	if best.Energy > base[0].Energy*1.0001 {
		t.Errorf("alpha=10: best energy %v worse than sigma=1 energy %v", best.Energy, base[0].Energy)
	}
}
