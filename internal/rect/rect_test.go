package rect

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBasics(t *testing.T) {
	r := New(0, 4, 10, 13)
	if r.Len1() != 4 || r.Len2() != 3 || r.Area() != 12 {
		t.Errorf("projections/area wrong: %v %d %d %d", r, r.Len1(), r.Len2(), r.Area())
	}
	if r.Empty() {
		t.Error("non-degenerate rect reported empty")
	}
	if !New(0, 0, 1, 5).Empty() {
		t.Error("zero-width rect should be empty")
	}
}

func TestOverlapsAndIntersect(t *testing.T) {
	a := New(0, 10, 0, 10)
	cases := []struct {
		b    Rect
		want bool
	}{
		{New(5, 15, 5, 15), true},
		{New(10, 20, 0, 10), false}, // shares an edge only
		{New(0, 10, 10, 20), false}, // shares an edge only
		{New(9, 20, 9, 20), true},
		{New(11, 20, 11, 20), false},
	}
	for _, c := range cases {
		if got := a.Overlaps(c.b); got != c.want {
			t.Errorf("Overlaps(%v, %v) = %v, want %v", a, c.b, got, c.want)
		}
	}
	x := a.Intersect(New(5, 15, -5, 3))
	if x != New(5, 10, 0, 3) {
		t.Errorf("Intersect = %v, want [5,10)x[0,3)", x)
	}
}

func TestContainsAndHull(t *testing.T) {
	a := New(0, 10, 0, 10)
	if !a.Contains(New(2, 8, 3, 7)) {
		t.Error("containment failed")
	}
	if a.Contains(New(2, 11, 3, 7)) {
		t.Error("overhanging rect reported contained")
	}
	h := a.Hull(New(-5, 2, 8, 20))
	if h != New(-5, 10, 0, 20) {
		t.Errorf("Hull = %v", h)
	}
}

func TestUnionAreaDisjoint(t *testing.T) {
	rs := []Rect{New(0, 2, 0, 2), New(10, 12, 10, 12)}
	if got := UnionArea(rs); got != 8 {
		t.Errorf("UnionArea = %d, want 8", got)
	}
}

func TestUnionAreaOverlapping(t *testing.T) {
	// Two 10x10 squares overlapping in a 5x5 corner: 100+100-25.
	rs := []Rect{New(0, 10, 0, 10), New(5, 15, 5, 15)}
	if got := UnionArea(rs); got != 175 {
		t.Errorf("UnionArea = %d, want 175", got)
	}
}

func TestUnionAreaNested(t *testing.T) {
	rs := []Rect{New(0, 10, 0, 10), New(2, 4, 2, 4)}
	if got := UnionArea(rs); got != 100 {
		t.Errorf("UnionArea = %d, want 100", got)
	}
}

func TestUnionAreaCross(t *testing.T) {
	// A plus-sign: horizontal 10x2 and vertical 2x10 crossing at a 2x2 cell.
	rs := []Rect{New(0, 10, 4, 6), New(4, 6, 0, 10)}
	if got := UnionArea(rs); got != 36 {
		t.Errorf("UnionArea = %d, want 36", got)
	}
}

func TestUnionAreaEmpty(t *testing.T) {
	if UnionArea(nil) != 0 {
		t.Error("UnionArea(nil) != 0")
	}
	if UnionArea([]Rect{New(0, 0, 0, 5)}) != 0 {
		t.Error("UnionArea of degenerate rect != 0")
	}
}

func TestBoundingBox(t *testing.T) {
	bb := BoundingBox([]Rect{New(0, 2, 5, 6), New(-3, 1, 0, 9)})
	if bb != New(-3, 2, 0, 9) {
		t.Errorf("BoundingBox = %v", bb)
	}
	if !BoundingBox(nil).Empty() {
		t.Error("BoundingBox(nil) should be empty")
	}
}

func TestMaxConcurrency(t *testing.T) {
	cases := []struct {
		rs   []Rect
		want int
	}{
		{nil, 0},
		{[]Rect{New(0, 10, 0, 10)}, 1},
		{[]Rect{New(0, 10, 0, 10), New(10, 20, 0, 10)}, 1}, // edge-adjacent
		{[]Rect{New(0, 10, 0, 10), New(5, 15, 5, 15), New(8, 9, 8, 9)}, 3},
	}
	for _, c := range cases {
		if got := MaxConcurrency(c.rs); got != c.want {
			t.Errorf("MaxConcurrency(%v) = %d, want %d", c.rs, got, c.want)
		}
	}
}

func TestGamma(t *testing.T) {
	rs := []Rect{New(0, 2, 0, 10), New(0, 8, 0, 5)}
	if g := Gamma(rs, 1); g != 4 {
		t.Errorf("Gamma dim1 = %v, want 4", g)
	}
	if g := Gamma(rs, 2); g != 2 {
		t.Errorf("Gamma dim2 = %v, want 2", g)
	}
	if g := Gamma(nil, 1); g != 1 {
		t.Errorf("Gamma(nil) = %v, want 1", g)
	}
}

func TestGammaPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Gamma with empty rect did not panic")
		}
	}()
	Gamma([]Rect{New(0, 0, 0, 1)}, 1)
}

func randomRects(r *rand.Rand, n int) []Rect {
	rs := make([]Rect, n)
	for i := range rs {
		s1 := r.Int63n(60) - 30
		s2 := r.Int63n(60) - 30
		rs[i] = New(s1, s1+1+r.Int63n(20), s2, s2+1+r.Int63n(20))
	}
	return rs
}

// gridUnionArea is a brute-force oracle: count lattice cells covered by any
// rectangle. Coordinates are small in tests, so this is exact.
func gridUnionArea(rs []Rect) int64 {
	covered := map[[2]int64]bool{}
	for _, r := range rs {
		for x := r.D1.Start; x < r.D1.End; x++ {
			for y := r.D2.Start; y < r.D2.End; y++ {
				covered[[2]int64{x, y}] = true
			}
		}
	}
	return int64(len(covered))
}

// Property: sweep-line union area matches the cell-counting oracle.
func TestPropertyUnionAreaMatchesGrid(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		rs := randomRects(rng, int(nRaw%8))
		return UnionArea(rs) == gridUnionArea(rs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: area bounds — max single area <= union <= total area, and the
// union fits in the bounding box.
func TestPropertyUnionAreaBounds(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		rs := randomRects(rng, int(nRaw%10)+1)
		u := UnionArea(rs)
		if u > TotalArea(rs) {
			return false
		}
		var maxA int64
		for _, r := range rs {
			if r.Area() > maxA {
				maxA = r.Area()
			}
		}
		if u < maxA {
			return false
		}
		return u <= BoundingBox(rs).Area()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
