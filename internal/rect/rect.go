// Package rect implements axis-aligned rectangles on the integer lattice
// and the measure (area) of unions of rectangles.
//
// Rectangles model the two-dimensional jobs of Section 3.4 of the paper:
// a job occupies a time-of-day interval every day over an interval of days
// (or, in the optical interpretation, a segment of a path network over a
// time interval). A machine's busy cost for a set of rectangular jobs is
// the area of their union, computed here by a sweep over the first
// dimension combined with 1-D union measure in the second.
package rect

import (
	"fmt"
	"sort"

	"repro/internal/interval"
)

// Rect is the product of two half-open intervals: D1 × D2. In the periodic
// job reading, D1 is the day range and D2 the daily time window.
type Rect struct {
	D1 interval.Interval
	D2 interval.Interval
}

// New builds the rectangle [s1,c1) × [s2,c2).
func New(s1, c1, s2, c2 int64) Rect {
	return Rect{D1: interval.New(s1, c1), D2: interval.New(s2, c2)}
}

// Len1 returns the projection length in dimension 1 (Definition 3.1).
func (r Rect) Len1() int64 { return r.D1.Len() }

// Len2 returns the projection length in dimension 2 (Definition 3.1).
func (r Rect) Len2() int64 { return r.D2.Len() }

// Area returns len(r) = len1(r)·len2(r) (Definition 3.1).
func (r Rect) Area() int64 { return r.Len1() * r.Len2() }

// Empty reports whether the rectangle has zero area.
func (r Rect) Empty() bool { return r.D1.Empty() || r.D2.Empty() }

// Overlaps reports whether the intersection of r and other has positive
// area, the 2-D analogue of interval overlap. Rectangles sharing only an
// edge or corner do not overlap.
func (r Rect) Overlaps(other Rect) bool {
	return r.D1.Overlaps(other.D1) && r.D2.Overlaps(other.D2)
}

// Intersect returns the rectangle intersection (possibly empty).
func (r Rect) Intersect(other Rect) Rect {
	return Rect{D1: r.D1.Intersect(other.D1), D2: r.D2.Intersect(other.D2)}
}

// Contains reports whether other lies entirely within r.
func (r Rect) Contains(other Rect) bool {
	return r.D1.Contains(other.D1) && r.D2.Contains(other.D2)
}

// Hull returns the bounding box of r and other.
func (r Rect) Hull(other Rect) Rect {
	if r.Empty() {
		return other
	}
	if other.Empty() {
		return r
	}
	return Rect{D1: r.D1.Hull(other.D1), D2: r.D2.Hull(other.D2)}
}

// String renders the rectangle as "[s1,c1)x[s2,c2)".
func (r Rect) String() string {
	return fmt.Sprintf("%vx%v", r.D1, r.D2)
}

// TotalArea returns Σ area(r) over the set, counting overlaps multiply —
// the 2-D len(J) of the parallelism bound.
func TotalArea(rs []Rect) int64 {
	var total int64
	for _, r := range rs {
		total += r.Area()
	}
	return total
}

// UnionArea returns span(R): the area of the union of the rectangles
// (Definition 3.2). It sweeps dimension 1 between consecutive boundary
// coordinates; within each vertical slab the covered measure in dimension 2
// is a 1-D union measure. Runs in O(n² log n).
func UnionArea(rs []Rect) int64 {
	live := make([]Rect, 0, len(rs))
	for _, r := range rs {
		if !r.Empty() {
			live = append(live, r)
		}
	}
	if len(live) == 0 {
		return 0
	}
	cuts := make([]int64, 0, 2*len(live))
	for _, r := range live {
		cuts = append(cuts, r.D1.Start, r.D1.End)
	}
	sort.Slice(cuts, func(i, j int) bool { return cuts[i] < cuts[j] })
	cuts = dedup(cuts)

	var area int64
	slab := make([]interval.Interval, 0, len(live))
	for i := 0; i+1 < len(cuts); i++ {
		lo, hi := cuts[i], cuts[i+1]
		slab = slab[:0]
		for _, r := range live {
			if r.D1.Start <= lo && hi <= r.D1.End {
				slab = append(slab, r.D2)
			}
		}
		if len(slab) == 0 {
			continue
		}
		area += (hi - lo) * interval.Span(slab)
	}
	return area
}

// BoundingBox returns the smallest rectangle containing every rectangle of
// rs (empty when rs has no non-empty member).
func BoundingBox(rs []Rect) Rect {
	var bb Rect
	first := true
	for _, r := range rs {
		if r.Empty() {
			continue
		}
		if first {
			bb, first = r, false
			continue
		}
		bb = bb.Hull(r)
	}
	return bb
}

// MaxConcurrency returns the maximum number of rectangles sharing a common
// point of positive measure — the capacity constraint for 2-D machines.
// It reuses the slab sweep: within a slab, rectangles active in dimension 1
// reduce to 1-D intervals in dimension 2.
func MaxConcurrency(rs []Rect) int {
	live := make([]Rect, 0, len(rs))
	for _, r := range rs {
		if !r.Empty() {
			live = append(live, r)
		}
	}
	if len(live) == 0 {
		return 0
	}
	cuts := make([]int64, 0, 2*len(live))
	for _, r := range live {
		cuts = append(cuts, r.D1.Start, r.D1.End)
	}
	sort.Slice(cuts, func(i, j int) bool { return cuts[i] < cuts[j] })
	cuts = dedup(cuts)

	best := 0
	slab := make([]interval.Interval, 0, len(live))
	for i := 0; i+1 < len(cuts); i++ {
		lo, hi := cuts[i], cuts[i+1]
		slab = slab[:0]
		for _, r := range live {
			if r.D1.Start <= lo && hi <= r.D1.End {
				slab = append(slab, r.D2)
			}
		}
		if c := interval.MaxConcurrency(slab); c > best {
			best = c
		}
	}
	return best
}

// Gamma returns γ_k = max len_k / min len_k over the set for the requested
// dimension k ∈ {1,2} (Section 3.4). It returns 1 for an empty set and
// panics when any rectangle is empty, since γ is undefined there.
func Gamma(rs []Rect, dim int) float64 {
	if len(rs) == 0 {
		return 1
	}
	var lo, hi int64
	for i, r := range rs {
		var l int64
		switch dim {
		case 1:
			l = r.Len1()
		case 2:
			l = r.Len2()
		default:
			panic(fmt.Sprintf("rect: Gamma: dimension %d not in {1,2}", dim))
		}
		if l == 0 {
			panic("rect: Gamma: empty rectangle in set")
		}
		if i == 0 || l < lo {
			lo = l
		}
		if i == 0 || l > hi {
			hi = l
		}
	}
	return float64(hi) / float64(lo)
}

func dedup(xs []int64) []int64 {
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != xs[i-1] {
			out = append(out, x)
		}
	}
	return out
}
