package exact

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/job"
	"repro/internal/workload"
)

func TestMinBusyRectTiny(t *testing.T) {
	// One job: its own area.
	one := job.RectInstance{G: 2, Jobs: []job.RectJob{job.NewRectJob(0, 0, 4, 0, 3)}}
	s, err := MinBusyRect(one)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Cost(); got != 12 {
		t.Fatalf("single job cost %d, want 12", got)
	}

	// Two identical rectangles, g = 2: sharing one machine halves cost.
	two := job.RectInstance{G: 2, Jobs: []job.RectJob{
		job.NewRectJob(0, 0, 4, 0, 3),
		job.NewRectJob(1, 0, 4, 0, 3),
	}}
	s, err = MinBusyRect(two)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Cost(); got != 12 {
		t.Fatalf("two stackable jobs cost %d, want 12", got)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}

	// Same two rectangles at g = 1 cannot share: full area twice.
	two.G = 1
	s, err = MinBusyRect(two)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Cost(); got != 24 {
		t.Fatalf("g=1 cost %d, want 24", got)
	}
}

// TestMinBusyRectDominatesApproximations cross-checks the oracle on
// random small instances: valid schedule, cost at least the Observation
// 2.1 bound and at most every polynomial algorithm's cost.
func TestMinBusyRectDominatesApproximations(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		in := workload.BoundedGammaRects(seed, workload.Config{N: 6, G: 2, MaxTime: 40, MaxLen: 10}, 4)
		opt, err := MinBusyRect(in)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := opt.Validate(); err != nil {
			t.Fatalf("seed %d: oracle schedule invalid: %v", seed, err)
		}
		optCost := opt.Cost()
		if lb := in.LowerBound(); optCost < lb {
			t.Fatalf("seed %d: optimum %d below lower bound %d", seed, optCost, lb)
		}
		for name, cost := range map[string]int64{
			"naive":     core.NaivePerJob2D(in).Cost(),
			"first-fit": core.FirstFit2D(in).Cost(),
		} {
			if cost < optCost {
				t.Fatalf("seed %d: %s cost %d beats the optimum %d", seed, name, cost, optCost)
			}
		}
	}
}

func TestMinBusyRectRejectsOversized(t *testing.T) {
	in := workload.BoundedGammaRects(1, workload.Config{N: MaxRectN + 1, G: 2, MaxTime: 40, MaxLen: 10}, 4)
	if _, err := MinBusyRect(in); err == nil {
		t.Fatal("oversized instance accepted")
	}
}

func TestMinBusyRectCancellation(t *testing.T) {
	in := workload.BoundedGammaRects(1, workload.Config{N: MaxRectN, G: 2, MaxTime: 40, MaxLen: 10}, 4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := MinBusyRectCtx(ctx, in); err != context.Canceled {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

func TestMinBusyRectEmpty(t *testing.T) {
	s, err := MinBusyRect(job.RectInstance{G: 2})
	if err != nil || s.Cost() != 0 {
		t.Fatalf("empty instance: %v cost %d", err, s.Cost())
	}
}
