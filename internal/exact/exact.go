// Package exact provides exponential-time exact solvers for MinBusy and
// MaxThroughput on small instances.
//
// Both solvers run a dynamic program over subsets of jobs: a machine's job
// set is an arbitrary subset of size-compatible jobs, so
//
//	cost*(S) = min over valid Q ⊆ S containing the lowest job of S of
//	           span(Q) + cost*(S \ Q)
//
// which evaluates in O(3^n) time and O(2^n) space. These solvers are the
// ground truth every approximation experiment in EXPERIMENTS.md measures
// against; they are deliberately capped at MaxN jobs.
package exact

import (
	"context"
	"fmt"
	"math"
	"math/bits"

	"repro/internal/core"
	"repro/internal/interval"
	"repro/internal/job"
)

// MaxN is the largest instance size the exact solvers accept. 3^20 subset
// enumerations is already ~3.5·10⁹; 18 keeps unit tests fast while leaving
// benchmarks room to stress the oracle.
const MaxN = 18

// ctxCheckInterval is how many DP iterations run between context checks:
// frequent enough that cancellation lands within microseconds, rare
// enough that the check is free.
const ctxCheckInterval = 1 << 13

// MinBusy computes an optimal MinBusy schedule by subset DP. It returns an
// error (rather than panicking) for oversized instances so callers can fall
// back to approximations.
func MinBusy(in job.Instance) (core.Schedule, error) {
	return MinBusyCtx(context.Background(), in)
}

// MinBusyCtx is MinBusy with cooperative cancellation: the subset DP
// checks ctx at safe points and returns ctx.Err() once it fires, so long
// oracle runs can be abandoned by a Solver deadline.
func MinBusyCtx(ctx context.Context, in job.Instance) (core.Schedule, error) {
	n := len(in.Jobs)
	if n > MaxN {
		return core.Schedule{}, fmt.Errorf("exact: %d jobs exceeds MaxN = %d", n, MaxN)
	}
	if err := in.Validate(); err != nil {
		return core.Schedule{}, err
	}
	if n == 0 {
		return core.NewSchedule(in), nil
	}

	spanOf, validQ, err := subsetTables(ctx, in)
	if err != nil {
		return core.Schedule{}, err
	}
	size := 1 << n
	cost := make([]int64, size)
	pick := make([]int, size)
	for mask := 1; mask < size; mask++ {
		if mask%ctxCheckInterval == 0 && ctx.Err() != nil {
			return core.Schedule{}, ctx.Err()
		}
		cost[mask] = math.MaxInt64
		low := mask & -mask
		rest := mask ^ low
		// Enumerate subsets Q of mask containing low: Q = low | sub for
		// every subset sub of rest.
		for sub := rest; ; sub = (sub - 1) & rest {
			q := low | sub
			if validQ[q] {
				c := spanOf[q] + cost[mask^q]
				if c < cost[mask] {
					cost[mask] = c
					pick[mask] = q
				}
			}
			if sub == 0 {
				break
			}
		}
	}

	s := core.NewSchedule(in)
	machine := 0
	//lint:ignore busylint/ctxloop reconstruction peels one nonempty machine subset per iteration, at most n ≤ MaxN = 18 steps
	for mask := size - 1; mask != 0; {
		q := pick[mask]
		for m := q; m != 0; m &= m - 1 {
			s.Assign(bits.TrailingZeros(uint(m)), machine)
		}
		machine++
		mask ^= q
	}
	return s, nil
}

// MinBusyCost returns only the optimal cost (same DP as MinBusy).
func MinBusyCost(in job.Instance) (int64, error) {
	s, err := MinBusy(in)
	if err != nil {
		return 0, err
	}
	return s.Cost(), nil
}

// MaxThroughput computes an optimal partial schedule of at most budget
// total busy time that maximizes the number of scheduled jobs, breaking
// ties toward lower cost. It runs the MinBusy subset DP once, then scans
// all subsets.
func MaxThroughput(in job.Instance, budget int64) (core.Schedule, error) {
	return MaxThroughputCtx(context.Background(), in, budget)
}

// MaxThroughputCtx is MaxThroughput with cooperative cancellation.
func MaxThroughputCtx(ctx context.Context, in job.Instance, budget int64) (core.Schedule, error) {
	return maxThroughput(ctx, in, budget, func(mask int) int64 {
		return int64(bits.OnesCount(uint(mask)))
	})
}

// MaxWeightThroughput is MaxThroughput with job weights (Section 5
// extension): it maximizes total scheduled weight within the budget.
func MaxWeightThroughput(in job.Instance, budget int64) (core.Schedule, error) {
	return MaxWeightThroughputCtx(context.Background(), in, budget)
}

// MaxWeightThroughputCtx is MaxWeightThroughput with cooperative
// cancellation.
func MaxWeightThroughputCtx(ctx context.Context, in job.Instance, budget int64) (core.Schedule, error) {
	return maxThroughput(ctx, in, budget, func(mask int) int64 {
		var w int64
		//lint:ignore busylint/ctxloop popcount walk over one ≤ MaxN = 18 bit mask; the caller's mask scan observes ctx
		for m := mask; m != 0; m &= m - 1 {
			w += in.Jobs[bits.TrailingZeros(uint(m))].Weight
		}
		return w
	})
}

func maxThroughput(ctx context.Context, in job.Instance, budget int64, value func(mask int) int64) (core.Schedule, error) {
	n := len(in.Jobs)
	if n > MaxN {
		return core.Schedule{}, fmt.Errorf("exact: %d jobs exceeds MaxN = %d", n, MaxN)
	}
	if err := in.Validate(); err != nil {
		return core.Schedule{}, err
	}
	if budget < 0 {
		return core.NewSchedule(in), nil
	}

	spanOf, validQ, err := subsetTables(ctx, in)
	if err != nil {
		return core.Schedule{}, err
	}
	size := 1 << n
	cost := make([]int64, size)
	pick := make([]int, size)
	for mask := 1; mask < size; mask++ {
		if mask%ctxCheckInterval == 0 && ctx.Err() != nil {
			return core.Schedule{}, ctx.Err()
		}
		cost[mask] = math.MaxInt64
		low := mask & -mask
		rest := mask ^ low
		for sub := rest; ; sub = (sub - 1) & rest {
			q := low | sub
			if validQ[q] {
				c := spanOf[q] + cost[mask^q]
				if c < cost[mask] {
					cost[mask] = c
					pick[mask] = q
				}
			}
			if sub == 0 {
				break
			}
		}
	}

	bestMask := 0
	var bestVal int64
	var bestCost int64
	// The winner scan visits all 2^n masks and value() is O(n), so it
	// needs the same strided cancellation point as the DP above.
	for mask := 0; mask < size; mask++ {
		if mask%ctxCheckInterval == 0 && ctx.Err() != nil {
			return core.Schedule{}, ctx.Err()
		}
		if cost[mask] > budget {
			continue
		}
		v := value(mask)
		if v > bestVal || (v == bestVal && cost[mask] < bestCost) {
			bestMask, bestVal, bestCost = mask, v, cost[mask]
		}
	}

	s := core.NewSchedule(in)
	machine := 0
	//lint:ignore busylint/ctxloop reconstruction peels one nonempty machine subset per iteration, at most n ≤ MaxN = 18 steps
	for mask := bestMask; mask != 0; {
		q := pick[mask]
		for m := q; m != 0; m &= m - 1 {
			s.Assign(bits.TrailingZeros(uint(m)), machine)
		}
		machine++
		mask ^= q
	}
	return s, nil
}

// subsetTables precomputes, for every subset mask, the span of its jobs
// and whether it can run on one capacity-g machine (max concurrency ≤ g).
//
// Span composes incrementally: span(Q ∪ {j}) is recomputed from the union
// decomposition. To stay O(2^n · n) we recompute from scratch per mask over
// its members, which is fine for n ≤ MaxN.
func subsetTables(ctx context.Context, in job.Instance) (spanOf []int64, validQ []bool, err error) {
	n := len(in.Jobs)
	size := 1 << n
	spanOf = make([]int64, size)
	validQ = make([]bool, size)
	validQ[0] = false
	ivs := make([]interval.Interval, 0, n)
	demands := make([]int64, 0, n)
	for mask := 1; mask < size; mask++ {
		if mask%ctxCheckInterval == 0 && ctx.Err() != nil {
			return nil, nil, ctx.Err()
		}
		ivs = ivs[:0]
		demands = demands[:0]
		for m := mask; m != 0; m &= m - 1 {
			j := in.Jobs[bits.TrailingZeros(uint(m))]
			ivs = append(ivs, j.Interval)
			demands = append(demands, j.Demand)
		}
		spanOf[mask] = interval.Span(ivs)
		validQ[mask] = interval.WeightedMaxConcurrency(ivs, demands) <= int64(in.G)
	}
	return spanOf, validQ, nil
}
