package exact

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/job"
)

func TestMinBusySingles(t *testing.T) {
	// g=1: pairwise-overlapping jobs must be split across machines, so the
	// optimum is len(J) = 10 + 10 + 3 = 23.
	in := job.NewInstance(1, [2]int64{0, 10}, [2]int64{5, 15}, [2]int64{9, 12})
	s, err := MinBusy(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := s.Cost(); got != in.TotalLen() || got != 23 {
		t.Errorf("cost = %d, want len(J) = 23", got)
	}
}

func TestMinBusyPacksPair(t *testing.T) {
	// Two identical jobs with g=2 share one machine: cost = 10.
	in := job.NewInstance(2, [2]int64{0, 10}, [2]int64{0, 10})
	s, err := MinBusy(in)
	if err != nil {
		t.Fatal(err)
	}
	if s.Cost() != 10 || s.Machines() != 1 {
		t.Errorf("cost = %d machines = %d, want 10 on 1 machine", s.Cost(), s.Machines())
	}
}

func TestMinBusyRespectsCapacity(t *testing.T) {
	// Three identical jobs, g=2: one machine takes 2, another takes 1.
	in := job.NewInstance(2, [2]int64{0, 10}, [2]int64{0, 10}, [2]int64{0, 10})
	s, err := MinBusy(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Cost() != 20 {
		t.Errorf("cost = %d, want 20", s.Cost())
	}
}

func TestMinBusyNonOverlappingChain(t *testing.T) {
	// Non-overlapping jobs can all share one machine even with g=1.
	in := job.NewInstance(1, [2]int64{0, 5}, [2]int64{5, 10}, [2]int64{20, 25})
	s, err := MinBusy(in)
	if err != nil {
		t.Fatal(err)
	}
	if s.Cost() != 15 {
		t.Errorf("cost = %d, want 15", s.Cost())
	}
}

func TestMinBusyEmpty(t *testing.T) {
	s, err := MinBusy(job.Instance{G: 1})
	if err != nil || s.Cost() != 0 {
		t.Fatalf("empty instance: %v %v", s.Cost(), err)
	}
}

func TestMinBusyTooLarge(t *testing.T) {
	jobs := make([]job.Job, MaxN+1)
	for i := range jobs {
		jobs[i] = job.New(i, 0, 1)
	}
	if _, err := MinBusy(job.Instance{Jobs: jobs, G: 1}); err == nil {
		t.Fatal("oversized instance accepted")
	}
}

func TestMinBusyRespectsDemands(t *testing.T) {
	in := job.NewInstance(2, [2]int64{0, 10}, [2]int64{0, 10})
	in.Jobs[0].Demand = 2
	in.Jobs[1].Demand = 2
	s, err := MinBusy(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Cost() != 20 {
		t.Errorf("cost = %d, want 20 (demand-2 jobs cannot share)", s.Cost())
	}
}

func TestMaxThroughputBudgetZero(t *testing.T) {
	in := job.NewInstance(2, [2]int64{0, 10}, [2]int64{0, 10})
	s, err := MaxThroughput(in, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s.Throughput() != 0 {
		t.Errorf("throughput = %d with zero budget", s.Throughput())
	}
}

func TestMaxThroughputFullBudget(t *testing.T) {
	in := job.NewInstance(2, [2]int64{0, 10}, [2]int64{5, 15}, [2]int64{30, 40})
	s, err := MaxThroughput(in, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if s.Throughput() != 3 {
		t.Errorf("throughput = %d, want all 3", s.Throughput())
	}
}

func TestMaxThroughputTightBudget(t *testing.T) {
	// Budget 10 fits the two overlapping jobs on one machine (span 10 each
	// pair? [0,10) and [0,10) share: cost 10) but not the third far job.
	in := job.NewInstance(2, [2]int64{0, 10}, [2]int64{0, 10}, [2]int64{30, 40})
	s, err := MaxThroughput(in, 10)
	if err != nil {
		t.Fatal(err)
	}
	if s.Throughput() != 2 {
		t.Errorf("throughput = %d, want 2", s.Throughput())
	}
	if s.Cost() > 10 {
		t.Errorf("cost %d exceeds budget", s.Cost())
	}
}

func TestMaxThroughputPrefersCheaper(t *testing.T) {
	// Two ways to schedule one job: lengths 10 and 3. Budget 3 fits only
	// the short one.
	in := job.NewInstance(1, [2]int64{0, 10}, [2]int64{0, 3})
	s, err := MaxThroughput(in, 3)
	if err != nil {
		t.Fatal(err)
	}
	if s.Throughput() != 1 || s.Machine[1] == -1 {
		t.Errorf("want only short job scheduled; got machines %v", s.Machine)
	}
}

func TestMaxWeightThroughput(t *testing.T) {
	in := job.NewInstance(1, [2]int64{0, 10}, [2]int64{0, 3})
	in.Jobs[0].Weight = 100 // heavy long job
	s, err := MaxWeightThroughput(in, 10)
	if err != nil {
		t.Fatal(err)
	}
	if s.Machine[0] == -1 {
		t.Errorf("heavy job should win under weight objective: %v", s.Machine)
	}
	if s.WeightedThroughput() != 100 {
		t.Errorf("weighted throughput = %d", s.WeightedThroughput())
	}
}

func TestMaxThroughputNegativeBudget(t *testing.T) {
	in := job.NewInstance(1, [2]int64{0, 10})
	s, err := MaxThroughput(in, -1)
	if err != nil || s.Throughput() != 0 {
		t.Fatalf("negative budget: %d %v", s.Throughput(), err)
	}
}

// Property: the optimal cost respects the Observation 2.1 bounds
// (span and parallelism lower bounds, length upper bound) and every
// returned schedule is valid.
func TestPropertyOptimalWithinBounds(t *testing.T) {
	f := func(seed int64, nRaw, gRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := int(nRaw%9) + 1
		g := int(gRaw%3) + 1
		spans := make([][2]int64, n)
		for i := range spans {
			s := r.Int63n(50)
			spans[i] = [2]int64{s, s + 1 + r.Int63n(30)}
		}
		in := job.NewInstance(g, spans...)
		s, err := MinBusy(in)
		if err != nil || s.Validate() != nil {
			return false
		}
		c := s.Cost()
		return c >= in.Span() && c >= in.ParallelismBound() && c <= in.TotalLen()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// Property: MaxThroughput with budget = optimal MinBusy cost schedules
// every job; with budget one less, it schedules fewer than n only if the
// instance is budget-tight (never more than n, and cost always within
// budget).
func TestPropertyThroughputConsistency(t *testing.T) {
	f := func(seed int64, nRaw, gRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := int(nRaw%7) + 1
		g := int(gRaw%3) + 1
		spans := make([][2]int64, n)
		for i := range spans {
			s := r.Int63n(40)
			spans[i] = [2]int64{s, s + 1 + r.Int63n(20)}
		}
		in := job.NewInstance(g, spans...)
		opt, err := MinBusyCost(in)
		if err != nil {
			return false
		}
		full, err := MaxThroughput(in, opt)
		if err != nil || full.Throughput() != n || full.Cost() > opt {
			return false
		}
		tight, err := MaxThroughput(in, opt-1)
		if err != nil || tight.Throughput() >= n || tight.Cost() > opt-1 {
			return false
		}
		return tight.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestCtxCancellation checks that the oracles abandon their subset DPs
// once the context fires: with n = 16 the tables hold 65536 masks, so
// the periodic check is guaranteed to run, and a pre-canceled context
// must surface context.Canceled without finishing the DP.
func TestCtxCancellation(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	spans := make([][2]int64, 16)
	for i := range spans {
		s := r.Int63n(100)
		spans[i] = [2]int64{s, s + 1 + r.Int63n(40)}
	}
	in := job.NewInstance(3, spans...)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := MinBusyCtx(ctx, in); !errors.Is(err, context.Canceled) {
		t.Errorf("MinBusyCtx: want context.Canceled, got %v", err)
	}
	if _, err := MaxThroughputCtx(ctx, in, 1000); !errors.Is(err, context.Canceled) {
		t.Errorf("MaxThroughputCtx: want context.Canceled, got %v", err)
	}
	if _, err := MaxWeightThroughputCtx(ctx, in, 1000); !errors.Is(err, context.Canceled) {
		t.Errorf("MaxWeightThroughputCtx: want context.Canceled, got %v", err)
	}

	// A live context solves normally through the same code path.
	s, err := MinBusyCtx(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Throughput() != 16 {
		t.Errorf("scheduled %d/16", s.Throughput())
	}
}
