package exact

import (
	"context"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/job"
	"repro/internal/rect"
)

// MaxRectN is the largest 2-D instance the rectangle oracle accepts.
// The search enumerates machine assignments in first-use canonical
// order — one representative per set partition, Bell(7) = 877 shapes —
// with branch-and-bound pruning, so 7 keeps the conformance harness
// (which runs the oracle on every generated 2-D instance and its
// metamorphic variants) effectively free.
const MaxRectN = 7

// MinBusyRect computes an optimal 2-D MinBusy schedule by exhaustive
// machine assignment: every partition of the jobs into machine groups
// with pointwise concurrency at most g, minimizing the summed union
// area. It is the ground truth closing the "no exact 2-D oracle" gap:
// with it, MinBusy2D conformance gets guarantee checks, not just
// certificate and bound checks.
func MinBusyRect(in job.RectInstance) (core.RectSchedule, error) {
	return MinBusyRectCtx(context.Background(), in)
}

// MinBusyRectCtx is MinBusyRect with cooperative cancellation.
func MinBusyRectCtx(ctx context.Context, in job.RectInstance) (core.RectSchedule, error) {
	n := len(in.Jobs)
	if n > MaxRectN {
		return core.RectSchedule{}, fmt.Errorf("exact: %d rect jobs exceeds MaxRectN = %d", n, MaxRectN)
	}
	if err := in.Validate(); err != nil {
		return core.RectSchedule{}, err
	}
	s := core.RectSchedule{Instance: in, Machine: make([]int, n)}
	if n == 0 {
		return s, nil
	}

	b := &rectBound{
		in:       in,
		assign:   make([]int, n),
		best:     make([]int, n),
		bestCost: math.MaxInt64,
		groups:   make([][]rect.Rect, 0, n),
		costs:    make([]int64, 0, n),
	}
	if err := b.search(ctx, 0, 0); err != nil {
		return core.RectSchedule{}, err
	}
	copy(s.Machine, b.best)
	return s, nil
}

// MinBusyRectCost returns only the optimal 2-D cost.
func MinBusyRectCost(in job.RectInstance) (int64, error) {
	s, err := MinBusyRect(in)
	if err != nil {
		return 0, err
	}
	return s.Cost(), nil
}

// rectBound is the branch-and-bound state: jobs are assigned in order,
// machines appear in first-use order (so each set partition is visited
// exactly once), and a branch is cut as soon as the partial cost —
// union areas only grow as jobs are added — reaches the incumbent.
type rectBound struct {
	in       job.RectInstance
	assign   []int
	best     []int
	bestCost int64
	groups   [][]rect.Rect // rects per open machine
	costs    []int64       // union area per open machine
	partial  int64         // sum of costs
}

func (b *rectBound) search(ctx context.Context, i int, used int) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if b.partial >= b.bestCost {
		return nil
	}
	if i == len(b.in.Jobs) {
		b.bestCost = b.partial
		copy(b.best, b.assign)
		return nil
	}
	r := b.in.Jobs[i].Rect
	// Existing machines, then (canonically) at most one fresh machine.
	for m := 0; m <= used && m < len(b.in.Jobs); m++ {
		if m == used {
			b.groups = append(b.groups, []rect.Rect{r})
			b.costs = append(b.costs, r.Area())
			b.partial += r.Area()
			b.assign[i] = m
			if err := b.search(ctx, i+1, used+1); err != nil {
				return err
			}
			b.partial -= r.Area()
			b.groups = b.groups[:used]
			b.costs = b.costs[:used]
			continue
		}
		grown := append(b.groups[m], r)
		if rect.MaxConcurrency(grown) > b.in.G {
			continue
		}
		oldCost := b.costs[m]
		newCost := rect.UnionArea(grown)
		b.groups[m] = grown
		b.costs[m] = newCost
		b.partial += newCost - oldCost
		b.assign[i] = m
		if err := b.search(ctx, i+1, used); err != nil {
			return err
		}
		b.partial -= newCost - oldCost
		b.costs[m] = oldCost
		b.groups[m] = b.groups[m][:len(grown)-1]
	}
	return nil
}
