// Package server is the HTTP serving layer of the library: JSON wire
// types shared by the daemon, the CLIs and the tests, plus the handler
// set behind cmd/busyd. It sits directly on the public Solver API —
// every response carries the Result.Certificate() verdict, so serving
// inherits the conformance story: a client can trust a "certified"
// result without re-deriving the schedule statistics, and can re-check
// them locally from the returned machine assignment.
package server

import (
	"encoding/json"
	"fmt"
	"time"

	busytime "repro"
	"repro/internal/job"
	"repro/internal/online"
	"repro/internal/registry"
	"repro/internal/trace"
)

// Request is the wire form of one solve call. Kind names the problem
// family with the registry's Kind strings ("min-busy", "max-throughput",
// "min-busy-2d", "online"); empty defaults to min-busy, and a non-nil
// rect instance implies min-busy-2d. Exactly one of Instance and Rect
// must be set. TimeoutMS bounds this request's solve wall-clock; the
// server derives a per-request deadline from it, so one slow request in
// a batch fails alone instead of stalling its siblings.
type Request struct {
	Kind      string        `json:"kind,omitempty"`
	Instance  *job.Instance `json:"instance,omitempty"`
	Rect      *RectInstance `json:"rect,omitempty"`
	Budget    int64         `json:"budget,omitempty"`
	TimeoutMS int64         `json:"timeout_ms,omitempty"`
	// BaseID warm-starts the solve from a prior result (Result.ID) when
	// the server runs with a reoptimization cache; TransitionBudget caps
	// how many carried-over jobs the repair may reassign (0 = unbudgeted).
	BaseID           string `json:"base_id,omitempty"`
	TransitionBudget int    `json:"transition_budget,omitempty"`
}

// BatchRequest is the wire form of POST /v1/solve/batch. Algorithm
// optionally pins one registered algorithm (canonical name or alias)
// for the whole batch; empty selects auto dispatch per request.
type BatchRequest struct {
	Algorithm string    `json:"algorithm,omitempty"`
	Requests  []Request `json:"requests"`
}

// batchEnvelope is the server-side decode shape of BatchRequest: the
// items stay raw so one malformed request (the instance codec validates
// eagerly) is unmarshaled — and fails — per item instead of aborting
// the whole batch decode.
type batchEnvelope struct {
	Algorithm string            `json:"algorithm"`
	Requests  []json.RawMessage `json:"requests"`
}

// BatchResponse carries one Result per request, order-stable with the
// batch.
type BatchResponse struct {
	Results []Result `json:"results"`
}

// RectInstance is the wire form of a 2-D instance (job.RectInstance has
// no JSON codec of its own; the 1-D job.Instance codec is reused as-is).
type RectInstance struct {
	G    int       `json:"g"`
	Jobs []RectJob `json:"jobs"`
}

// RectJob is one rectangle [start1, end1) × [start2, end2).
type RectJob struct {
	ID     int   `json:"id"`
	Start1 int64 `json:"start1"`
	End1   int64 `json:"end1"`
	Start2 int64 `json:"start2"`
	End2   int64 `json:"end2"`
}

// Wire sanity caps. Coordinates and weights beyond these bounds cannot
// come from a legitimate client and would push the int64 cost arithmetic
// (sums of n lengths, weight × length products in admission control)
// toward overflow, so decoding rejects them with a structured 400 instead
// of risking silent wraparound deeper in the solve path.
const (
	maxWireCoord  = int64(1) << 40
	maxWireWeight = int64(1) << 40
)

// checkWireInterval rejects the malformed [start, end) shapes a codec
// must never forward: end < start (interval.New panics on it — a decoded
// request must fail, not crash the handler) and coordinates beyond the
// sanity cap.
func checkWireInterval(what string, id int, start, end int64) error {
	if end < start {
		return fmt.Errorf("server: %s %d has end %d < start %d", what, id, end, start)
	}
	if start < -maxWireCoord || start > maxWireCoord || end < -maxWireCoord || end > maxWireCoord {
		return fmt.Errorf("server: %s %d has coordinates [%d, %d) outside the sane range ±2^40", what, id, start, end)
	}
	return nil
}

// checkWireInstance applies the wire sanity caps to a decoded 1-D
// instance on top of the structural checks its own codec already ran.
func checkWireInstance(in *job.Instance) error {
	for _, j := range in.Jobs {
		if err := checkWireInterval("job", j.ID, j.Start(), j.End()); err != nil {
			return err
		}
		if j.Weight > maxWireWeight {
			return fmt.Errorf("server: job %d has weight %d above the sane cap 2^40", j.ID, j.Weight)
		}
		if j.Demand > maxWireWeight {
			return fmt.Errorf("server: job %d has demand %d above the sane cap 2^40", j.ID, j.Demand)
		}
	}
	return nil
}

// ToRectInstance decodes and validates the wire form. Both dimensions are
// checked here before any rect is constructed: job.NewRectJob panics on
// end < start, so a malformed wire rectangle must be rejected at the
// codec, not discovered as a handler crash.
func (r RectInstance) ToRectInstance() (job.RectInstance, error) {
	in := job.RectInstance{G: r.G, Jobs: make([]job.RectJob, len(r.Jobs))}
	for i, j := range r.Jobs {
		if err := checkWireInterval("rect job (dimension 1)", j.ID, j.Start1, j.End1); err != nil {
			return job.RectInstance{}, err
		}
		if err := checkWireInterval("rect job (dimension 2)", j.ID, j.Start2, j.End2); err != nil {
			return job.RectInstance{}, err
		}
		in.Jobs[i] = job.NewRectJob(j.ID, j.Start1, j.End1, j.Start2, j.End2)
	}
	if err := in.Validate(); err != nil {
		return job.RectInstance{}, err
	}
	return in, nil
}

// WireRect encodes a 2-D instance for transport.
func WireRect(in job.RectInstance) RectInstance {
	out := RectInstance{G: in.G, Jobs: make([]RectJob, len(in.Jobs))}
	for i, j := range in.Jobs {
		out.Jobs[i] = RectJob{
			ID:     j.ID,
			Start1: j.Rect.D1.Start, End1: j.Rect.D1.End,
			Start2: j.Rect.D2.Start, End2: j.Rect.D2.End,
		}
	}
	return out
}

// ParseKind resolves a wire kind string. Empty means min-busy; the
// caller promotes to min-busy-2d when a rect instance is present.
func ParseKind(s string) (busytime.ProblemKind, error) {
	switch s {
	case "", registry.MinBusy.String():
		return busytime.KindMinBusy, nil
	case registry.MaxThroughput.String():
		return busytime.KindMaxThroughput, nil
	case registry.MinBusy2D.String():
		return busytime.KindMinBusy2D, nil
	case registry.Online.String():
		return busytime.KindOnline, nil
	default:
		return 0, fmt.Errorf("server: unknown kind %q (want %s, %s, %s or %s)",
			s, registry.MinBusy, registry.MaxThroughput, registry.MinBusy2D, registry.Online)
	}
}

// ToSolverRequest converts the wire request into a busytime.Request,
// validating the kind/instance combination.
func (r Request) ToSolverRequest() (busytime.Request, error) {
	kind, err := ParseKind(r.Kind)
	if err != nil {
		return busytime.Request{}, err
	}
	// The same sanity cap the instance coordinates get: a budget outside
	// ±2^40 cannot be legitimate and would feed the admission-control
	// arithmetic values it is not hardened for.
	if r.Budget < 0 || r.Budget > maxWireCoord {
		return busytime.Request{}, fmt.Errorf("server: budget %d outside [0, 2^40]", r.Budget)
	}
	if r.TransitionBudget < 0 {
		return busytime.Request{}, fmt.Errorf("server: transition budget %d, need >= 0", r.TransitionBudget)
	}
	req := busytime.Request{
		Kind: kind, Budget: r.Budget,
		BaseID: r.BaseID, TransitionBudget: r.TransitionBudget,
	}
	if r.TimeoutMS > 0 {
		req.Timeout = time.Duration(r.TimeoutMS) * time.Millisecond
	}
	switch {
	case r.Rect != nil && r.Instance != nil:
		return busytime.Request{}, fmt.Errorf("server: request carries both an instance and a rect instance")
	case r.Rect != nil:
		if r.Kind != "" && kind != busytime.KindMinBusy2D {
			return busytime.Request{}, fmt.Errorf("server: rect instance with kind %s", kind)
		}
		rin, err := r.Rect.ToRectInstance()
		if err != nil {
			return busytime.Request{}, err
		}
		req.Rect = &rin
		req.Kind = busytime.KindMinBusy2D
	case r.Instance != nil:
		if kind == busytime.KindMinBusy2D {
			return busytime.Request{}, fmt.Errorf("server: kind %s needs a rect instance", kind)
		}
		if err := checkWireInstance(r.Instance); err != nil {
			return busytime.Request{}, err
		}
		req.Instance = *r.Instance
	default:
		return busytime.Request{}, fmt.Errorf("server: request carries no instance")
	}
	return req, nil
}

// Jobs counts the jobs the request asks the solver to place — the size
// admission control compares against the configured cap.
func (r Request) Jobs() int {
	if r.Rect != nil {
		return len(r.Rect.Jobs)
	}
	if r.Instance != nil {
		return len(r.Instance.Jobs)
	}
	return 0
}

// Result is the wire form of a structured solve outcome. Certified is
// the Result.Certificate() verdict re-derived on the server from the
// schedule itself; Machine is the (compacted) job-to-machine assignment
// in instance order, so clients can reconstruct the schedule and
// re-verify locally. Error is the per-request failure of a batch item
// (or of a single solve, alongside a non-2xx status); a Result with a
// non-empty Error carries no schedule.
type Result struct {
	// ID names this result in the server's reoptimization cache (when
	// enabled); a later Request.BaseID may reference it. Cache reports
	// how the result was served ("hit", "repair" or "miss"), BaseID the
	// incumbent a repair started from, and Transition how many
	// carried-over jobs the repair reassigned.
	ID               string  `json:"id,omitempty"`
	BaseID           string  `json:"base_id,omitempty"`
	Transition       int     `json:"transition,omitempty"`
	Cache            string  `json:"cache,omitempty"`
	Algorithm        string  `json:"algorithm,omitempty"`
	Kind             string  `json:"kind,omitempty"`
	Class            string  `json:"class,omitempty"`
	Cost             int64   `json:"cost"`
	Scheduled        int     `json:"scheduled"`
	N                int     `json:"n"`
	Machines         int     `json:"machines"`
	MachinesOpened   int     `json:"machines_opened,omitempty"`
	PeakOpen         int     `json:"peak_open,omitempty"`
	Rejected         int     `json:"rejected,omitempty"`
	LowerBound       int64   `json:"lower_bound"`
	RatioVsBound     float64 `json:"ratio_vs_bound"`
	Budget           int64   `json:"budget,omitempty"`
	ElapsedNS        int64   `json:"elapsed_ns"`
	Machine          []int   `json:"machine,omitempty"`
	Certified        bool    `json:"certified"`
	CertificateError string  `json:"certificate_error,omitempty"`
	Error            string  `json:"error,omitempty"`
	// Trace is the request's span tree, echoed only to clients that sent
	// a traceparent header. WireResult never populates it: the handler
	// attaches it explicitly, so batch siblings and replayed results stay
	// byte-identical with or without tracing.
	Trace *trace.Node `json:"trace,omitempty"`
}

// WireResult encodes a solver Result, re-deriving the certificate
// verdict so every served response carries it.
func WireResult(res busytime.Result) Result {
	out := Result{Kind: res.Kind.String()}
	if res.Err != nil {
		out.Error = res.Err.Error()
		return out
	}
	out.ID = res.ID
	out.BaseID = res.BaseID
	out.Transition = res.Transition
	out.Cache = res.CacheOutcome
	out.Algorithm = res.Algorithm
	out.Class = res.Class.String()
	out.Cost = res.Cost
	out.Scheduled = res.Scheduled
	out.N = res.N
	out.Machines = res.Machines
	out.MachinesOpened = res.MachinesOpened
	out.PeakOpen = res.PeakOpen
	out.Rejected = res.Rejected
	out.LowerBound = res.LowerBound
	out.RatioVsBound = res.RatioVsBound
	out.Budget = res.Budget
	out.ElapsedNS = res.Elapsed.Nanoseconds()
	if res.Rect != nil {
		out.Machine = append([]int(nil), res.Rect.Machine...)
	} else {
		out.Machine = res.Schedule.CompactMachines().Machine
	}
	if cerr := res.Certificate(); cerr != nil {
		out.CertificateError = cerr.Error()
	} else {
		out.Certified = true
	}
	return out
}

// StreamOpen is the first NDJSON line of a POST /v1/stream session: the
// machine capacity, the online strategy to drive (registered name or
// alias; empty picks the strongest registered strategy), and an optional
// busy-time budget for admission-control strategies. Session optionally
// fixes the session id (1–64 chars of [A-Za-z0-9._-]) — the handle for
// resuming after a disconnect and for fetching the journal; when empty
// the server generates one and reports it on the open event.
type StreamOpen struct {
	G        int    `json:"g"`
	Strategy string `json:"strategy,omitempty"`
	Budget   int64  `json:"budget,omitempty"`
	Session  string `json:"session,omitempty"`
}

// StreamArrival is one arrival event line of a stream session: a rigid
// job revealed at its start time. Weight defaults to 1 when omitted.
type StreamArrival struct {
	ID     int   `json:"id"`
	Start  int64 `json:"start"`
	End    int64 `json:"end"`
	Weight int64 `json:"weight,omitempty"`
}

// ToJob decodes and validates the arrival under the wire sanity caps.
func (a StreamArrival) ToJob() (job.Job, error) {
	if err := checkWireInterval("arrival", a.ID, a.Start, a.End); err != nil {
		return job.Job{}, err
	}
	if a.End <= a.Start {
		return job.Job{}, fmt.Errorf("server: arrival %d has empty interval [%d, %d)", a.ID, a.Start, a.End)
	}
	w := a.Weight
	if w == 0 {
		w = 1
	}
	if w < 1 || w > maxWireWeight {
		return job.Job{}, fmt.Errorf("server: arrival %d has weight %d outside [1, 2^40]", a.ID, a.Weight)
	}
	j := job.New(a.ID, a.Start, a.End)
	j.Weight = w
	return j, nil
}

// Stream event types, the "type" discriminator of StreamEvent.
const (
	// StreamEventOpen is the first event of every session: it announces
	// the session id, the canonical strategy, and (on resume) how many
	// arrivals the journal already holds.
	StreamEventOpen = "open"
	// StreamEventAssign reports an arrival committed to a machine.
	StreamEventAssign = "assign"
	// StreamEventReject reports an arrival declined by admission control.
	StreamEventReject = "reject"
	// StreamEventClose carries the session's final report; it is always
	// the last event of a successful stream.
	StreamEventClose = "close"
	// StreamEventError reports a fatal in-stream error; the session ends
	// with it (the HTTP status is already committed to 200 by then).
	StreamEventError = "error"
)

// StreamEvent is one server→client NDJSON line of a stream session:
// exactly one assign/reject event per arrival, a final close event with
// the session report, or a terminal error event. Assign/reject events
// carry the placement (machine id in opening order, whether it was
// freshly opened, the busy time it added) and the live telemetry after
// the event: running cost, the Observation 2.1 lower bound over admitted
// arrivals, and their ratio — the empirical competitive ratio so far.
type StreamEvent struct {
	Type string `json:"type"`
	// Session identifies the journaled session (open and close events).
	Session string `json:"session,omitempty"`
	// Resumed marks an open event continuing an interrupted session;
	// Replay marks a re-emitted journal-tail event on such a resume.
	Resumed bool `json:"resumed,omitempty"`
	Replay  bool `json:"replay,omitempty"`
	// Assign / reject fields.
	Seq      int   `json:"seq,omitempty"`
	JobID    int   `json:"job_id,omitempty"`
	Machine  int   `json:"machine,omitempty"`
	Opened   bool  `json:"opened,omitempty"`
	Marginal int64 `json:"marginal,omitempty"`
	Open     int   `json:"open_machines,omitempty"`
	// Per-stage serving timings for assign/reject events: time queued
	// before the flush, the flush's wall clock, this arrival's strategy
	// time. Telemetry only — deliberately absent from the journal, whose
	// records are a deterministic function of the arrival sequence.
	QueueNS int64 `json:"queue_ns,omitempty"`
	FlushNS int64 `json:"flush_ns,omitempty"`
	SolveNS int64 `json:"solve_ns,omitempty"`
	// Telemetry after the event (also the final totals on close).
	Cost       int64   `json:"cost"`
	LowerBound int64   `json:"lower_bound"`
	Ratio      float64 `json:"ratio"`
	// Close-only fields (Strategy and Arrivals also ride the open event).
	Strategy       string `json:"strategy,omitempty"`
	Arrivals       int    `json:"arrivals,omitempty"`
	Admitted       int    `json:"admitted,omitempty"`
	Rejected       int    `json:"rejected,omitempty"`
	AdmittedWeight int64  `json:"admitted_weight,omitempty"`
	RejectedWeight int64  `json:"rejected_weight,omitempty"`
	MachinesOpened int    `json:"machines_opened,omitempty"`
	PeakOpen       int    `json:"peak_open,omitempty"`
	// Chain is the journal's final hash on close — the certificate a
	// client can verify against GET /v1/stream/journal.
	Chain string `json:"chain,omitempty"`
	// Error-only field.
	Error string `json:"error,omitempty"`
	// Trace rides only a close event, only when the client opened the
	// stream with a traceparent header: the session's root span plus one
	// aggregate node per serving stage. It is serving telemetry, not part
	// of the journaled close report — offline replay comparisons must
	// ignore it.
	Trace *trace.Node `json:"trace,omitempty"`
}

// WireStreamEvent encodes one session event. A rejected arrival has no
// machine: the internal RejectJob sentinel stays off the wire (the
// "reject" type is the whole signal), so clients never see a negative
// machine id.
func WireStreamEvent(ev online.Event) StreamEvent {
	out := StreamEvent{
		Type:       StreamEventAssign,
		Seq:        ev.Seq,
		JobID:      ev.JobID,
		Machine:    ev.Machine,
		Opened:     ev.Opened,
		Marginal:   ev.Marginal,
		Open:       ev.Open,
		Cost:       ev.Cost,
		LowerBound: ev.LowerBound,
		Ratio:      ev.Ratio,
	}
	if ev.Rejected {
		out.Type = StreamEventReject
		out.Machine = 0
	}
	return out
}

// WireStreamClose encodes the session's final report with its identity:
// the session id and the journal chain's final hash. It is shared by
// the handler and the clients that re-derive the expected close event
// from an offline replay (busysim stream -verify, the e2e tests), so
// "byte-equal to the offline harness" — now including the certificate
// chain — is checked against one codec.
func WireStreamClose(sum online.Summary, session, chain string) StreamEvent {
	return StreamEvent{
		Type:           StreamEventClose,
		Session:        session,
		Chain:          chain,
		Strategy:       sum.Strategy,
		Arrivals:       sum.Arrivals,
		Admitted:       sum.Admitted,
		Rejected:       sum.Rejected,
		AdmittedWeight: sum.AdmittedWeight,
		RejectedWeight: sum.RejectedWeight,
		Cost:           sum.Cost,
		MachinesOpened: sum.MachinesOpened,
		PeakOpen:       sum.PeakOpen,
		LowerBound:     sum.LowerBound,
		Ratio:          sum.Ratio,
	}
}

// AlgorithmInfo is the wire form of one registry entry, served by
// GET /v1/algorithms.
type AlgorithmInfo struct {
	Name      string   `json:"name"`
	Aliases   []string `json:"aliases,omitempty"`
	Kind      string   `json:"kind"`
	Classes   []string `json:"classes,omitempty"`
	Guarantee string   `json:"guarantee"`
	Exact     bool     `json:"exact,omitempty"`
	Oracle    bool     `json:"oracle,omitempty"`
	MinG      int      `json:"min_g,omitempty"`
	MaxG      int      `json:"max_g,omitempty"`
	Ref       string   `json:"ref,omitempty"`
}

// WireAlgorithms renders the full registry in registry.List() order.
func WireAlgorithms() []AlgorithmInfo {
	regs := busytime.Algorithms()
	out := make([]AlgorithmInfo, len(regs))
	for i, a := range regs {
		info := AlgorithmInfo{
			Name:      a.Name,
			Aliases:   a.Aliases,
			Kind:      a.Kind.String(),
			Guarantee: a.Guarantee,
			Exact:     a.Exact,
			Oracle:    a.Oracle,
			MinG:      a.MinG,
			MaxG:      a.MaxG,
			Ref:       a.Ref,
		}
		for _, c := range a.Classes {
			info.Classes = append(info.Classes, c.String())
		}
		out[i] = info
	}
	return out
}
