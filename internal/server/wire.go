// Package server is the HTTP serving layer of the library: JSON wire
// types shared by the daemon, the CLIs and the tests, plus the handler
// set behind cmd/busyd. It sits directly on the public Solver API —
// every response carries the Result.Certificate() verdict, so serving
// inherits the conformance story: a client can trust a "certified"
// result without re-deriving the schedule statistics, and can re-check
// them locally from the returned machine assignment.
package server

import (
	"encoding/json"
	"fmt"
	"time"

	busytime "repro"
	"repro/internal/job"
	"repro/internal/registry"
)

// Request is the wire form of one solve call. Kind names the problem
// family with the registry's Kind strings ("min-busy", "max-throughput",
// "min-busy-2d", "online"); empty defaults to min-busy, and a non-nil
// rect instance implies min-busy-2d. Exactly one of Instance and Rect
// must be set. TimeoutMS bounds this request's solve wall-clock; the
// server derives a per-request deadline from it, so one slow request in
// a batch fails alone instead of stalling its siblings.
type Request struct {
	Kind      string        `json:"kind,omitempty"`
	Instance  *job.Instance `json:"instance,omitempty"`
	Rect      *RectInstance `json:"rect,omitempty"`
	Budget    int64         `json:"budget,omitempty"`
	TimeoutMS int64         `json:"timeout_ms,omitempty"`
}

// BatchRequest is the wire form of POST /v1/solve/batch. Algorithm
// optionally pins one registered algorithm (canonical name or alias)
// for the whole batch; empty selects auto dispatch per request.
type BatchRequest struct {
	Algorithm string    `json:"algorithm,omitempty"`
	Requests  []Request `json:"requests"`
}

// batchEnvelope is the server-side decode shape of BatchRequest: the
// items stay raw so one malformed request (the instance codec validates
// eagerly) is unmarshaled — and fails — per item instead of aborting
// the whole batch decode.
type batchEnvelope struct {
	Algorithm string            `json:"algorithm"`
	Requests  []json.RawMessage `json:"requests"`
}

// BatchResponse carries one Result per request, order-stable with the
// batch.
type BatchResponse struct {
	Results []Result `json:"results"`
}

// RectInstance is the wire form of a 2-D instance (job.RectInstance has
// no JSON codec of its own; the 1-D job.Instance codec is reused as-is).
type RectInstance struct {
	G    int       `json:"g"`
	Jobs []RectJob `json:"jobs"`
}

// RectJob is one rectangle [start1, end1) × [start2, end2).
type RectJob struct {
	ID     int   `json:"id"`
	Start1 int64 `json:"start1"`
	End1   int64 `json:"end1"`
	Start2 int64 `json:"start2"`
	End2   int64 `json:"end2"`
}

// ToRectInstance decodes and validates the wire form.
func (r RectInstance) ToRectInstance() (job.RectInstance, error) {
	in := job.RectInstance{G: r.G, Jobs: make([]job.RectJob, len(r.Jobs))}
	for i, j := range r.Jobs {
		in.Jobs[i] = job.NewRectJob(j.ID, j.Start1, j.End1, j.Start2, j.End2)
	}
	if err := in.Validate(); err != nil {
		return job.RectInstance{}, err
	}
	return in, nil
}

// WireRect encodes a 2-D instance for transport.
func WireRect(in job.RectInstance) RectInstance {
	out := RectInstance{G: in.G, Jobs: make([]RectJob, len(in.Jobs))}
	for i, j := range in.Jobs {
		out.Jobs[i] = RectJob{
			ID:     j.ID,
			Start1: j.Rect.D1.Start, End1: j.Rect.D1.End,
			Start2: j.Rect.D2.Start, End2: j.Rect.D2.End,
		}
	}
	return out
}

// ParseKind resolves a wire kind string. Empty means min-busy; the
// caller promotes to min-busy-2d when a rect instance is present.
func ParseKind(s string) (busytime.ProblemKind, error) {
	switch s {
	case "", registry.MinBusy.String():
		return busytime.KindMinBusy, nil
	case registry.MaxThroughput.String():
		return busytime.KindMaxThroughput, nil
	case registry.MinBusy2D.String():
		return busytime.KindMinBusy2D, nil
	case registry.Online.String():
		return busytime.KindOnline, nil
	default:
		return 0, fmt.Errorf("server: unknown kind %q (want %s, %s, %s or %s)",
			s, registry.MinBusy, registry.MaxThroughput, registry.MinBusy2D, registry.Online)
	}
}

// ToSolverRequest converts the wire request into a busytime.Request,
// validating the kind/instance combination.
func (r Request) ToSolverRequest() (busytime.Request, error) {
	kind, err := ParseKind(r.Kind)
	if err != nil {
		return busytime.Request{}, err
	}
	req := busytime.Request{Kind: kind, Budget: r.Budget}
	if r.TimeoutMS > 0 {
		req.Timeout = time.Duration(r.TimeoutMS) * time.Millisecond
	}
	switch {
	case r.Rect != nil && r.Instance != nil:
		return busytime.Request{}, fmt.Errorf("server: request carries both an instance and a rect instance")
	case r.Rect != nil:
		if r.Kind != "" && kind != busytime.KindMinBusy2D {
			return busytime.Request{}, fmt.Errorf("server: rect instance with kind %s", kind)
		}
		rin, err := r.Rect.ToRectInstance()
		if err != nil {
			return busytime.Request{}, err
		}
		req.Rect = &rin
		req.Kind = busytime.KindMinBusy2D
	case r.Instance != nil:
		if kind == busytime.KindMinBusy2D {
			return busytime.Request{}, fmt.Errorf("server: kind %s needs a rect instance", kind)
		}
		req.Instance = *r.Instance
	default:
		return busytime.Request{}, fmt.Errorf("server: request carries no instance")
	}
	return req, nil
}

// Jobs counts the jobs the request asks the solver to place — the size
// admission control compares against the configured cap.
func (r Request) Jobs() int {
	if r.Rect != nil {
		return len(r.Rect.Jobs)
	}
	if r.Instance != nil {
		return len(r.Instance.Jobs)
	}
	return 0
}

// Result is the wire form of a structured solve outcome. Certified is
// the Result.Certificate() verdict re-derived on the server from the
// schedule itself; Machine is the (compacted) job-to-machine assignment
// in instance order, so clients can reconstruct the schedule and
// re-verify locally. Error is the per-request failure of a batch item
// (or of a single solve, alongside a non-2xx status); a Result with a
// non-empty Error carries no schedule.
type Result struct {
	Algorithm        string  `json:"algorithm,omitempty"`
	Kind             string  `json:"kind,omitempty"`
	Class            string  `json:"class,omitempty"`
	Cost             int64   `json:"cost"`
	Scheduled        int     `json:"scheduled"`
	N                int     `json:"n"`
	Machines         int     `json:"machines"`
	MachinesOpened   int     `json:"machines_opened,omitempty"`
	PeakOpen         int     `json:"peak_open,omitempty"`
	LowerBound       int64   `json:"lower_bound"`
	RatioVsBound     float64 `json:"ratio_vs_bound"`
	Budget           int64   `json:"budget,omitempty"`
	ElapsedNS        int64   `json:"elapsed_ns"`
	Machine          []int   `json:"machine,omitempty"`
	Certified        bool    `json:"certified"`
	CertificateError string  `json:"certificate_error,omitempty"`
	Error            string  `json:"error,omitempty"`
}

// WireResult encodes a solver Result, re-deriving the certificate
// verdict so every served response carries it.
func WireResult(res busytime.Result) Result {
	out := Result{Kind: res.Kind.String()}
	if res.Err != nil {
		out.Error = res.Err.Error()
		return out
	}
	out.Algorithm = res.Algorithm
	out.Class = res.Class.String()
	out.Cost = res.Cost
	out.Scheduled = res.Scheduled
	out.N = res.N
	out.Machines = res.Machines
	out.MachinesOpened = res.MachinesOpened
	out.PeakOpen = res.PeakOpen
	out.LowerBound = res.LowerBound
	out.RatioVsBound = res.RatioVsBound
	out.Budget = res.Budget
	out.ElapsedNS = res.Elapsed.Nanoseconds()
	if res.Rect != nil {
		out.Machine = append([]int(nil), res.Rect.Machine...)
	} else {
		out.Machine = res.Schedule.CompactMachines().Machine
	}
	if cerr := res.Certificate(); cerr != nil {
		out.CertificateError = cerr.Error()
	} else {
		out.Certified = true
	}
	return out
}

// AlgorithmInfo is the wire form of one registry entry, served by
// GET /v1/algorithms.
type AlgorithmInfo struct {
	Name      string   `json:"name"`
	Aliases   []string `json:"aliases,omitempty"`
	Kind      string   `json:"kind"`
	Classes   []string `json:"classes,omitempty"`
	Guarantee string   `json:"guarantee"`
	Exact     bool     `json:"exact,omitempty"`
	Oracle    bool     `json:"oracle,omitempty"`
	MinG      int      `json:"min_g,omitempty"`
	MaxG      int      `json:"max_g,omitempty"`
	Ref       string   `json:"ref,omitempty"`
}

// WireAlgorithms renders the full registry in registry.List() order.
func WireAlgorithms() []AlgorithmInfo {
	regs := busytime.Algorithms()
	out := make([]AlgorithmInfo, len(regs))
	for i, a := range regs {
		info := AlgorithmInfo{
			Name:      a.Name,
			Aliases:   a.Aliases,
			Kind:      a.Kind.String(),
			Guarantee: a.Guarantee,
			Exact:     a.Exact,
			Oracle:    a.Oracle,
			MinG:      a.MinG,
			MaxG:      a.MaxG,
			Ref:       a.Ref,
		}
		for _, c := range a.Classes {
			info.Classes = append(info.Classes, c.String())
		}
		out[i] = info
	}
	return out
}
