package server

import (
	"fmt"
	"io"
	"sort"
	"sync/atomic"
	"time"
)

// latencyBounds are the solve-latency histogram bucket upper bounds in
// seconds, spanning microsecond dispatch overhead to multi-second exact
// oracle runs.
var latencyBounds = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// batchSizeBounds bucket the number of requests per batch.
var batchSizeBounds = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512}

// histogram is a fixed-bucket cumulative histogram with atomic counters,
// rendered in the Prometheus text exposition format.
type histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1, last is +Inf
	sum    atomic.Int64   // scaled observations (nanoseconds / raw counts)
	scale  float64        // divides sum on render (1e9 for nanoseconds)
	n      atomic.Int64
}

func newHistogram(bounds []float64, scale float64) *histogram {
	return &histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1), scale: scale}
}

// observe records one value (already in the bounds' unit).
func (h *histogram) observe(v float64, raw int64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.sum.Add(raw)
	h.n.Add(1)
}

// writeTo renders the cumulative buckets under the given metric name.
func (h *histogram) writeTo(w io.Writer, name string) {
	var cum int64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, formatBound(b), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	fmt.Fprintf(w, "%s_sum %g\n", name, float64(h.sum.Load())/h.scale)
	fmt.Fprintf(w, "%s_count %d\n", name, h.n.Load())
}

func formatBound(b float64) string {
	return fmt.Sprintf("%g", b)
}

// metrics is the daemon's plain-text counter set: request counts per
// endpoint, admission rejections, per-request error count, the in-flight
// gauge, and latency/batch-size histograms. All fields are atomics; the
// /metrics handler renders a consistent-enough snapshot without locks.
type metrics struct {
	requestsSolve      atomic.Int64
	requestsBatch      atomic.Int64
	requestsAlgorithms atomic.Int64
	requestsHealth     atomic.Int64
	solveErrors        atomic.Int64 // per-request solve failures (single + batch items)
	rejectedOverload   atomic.Int64 // 429: in-flight cap
	rejectedTooLarge   atomic.Int64 // 413: instance or batch size cap
	badRequests        atomic.Int64 // 400: malformed wire input
	inFlight           atomic.Int64
	batchInstances     atomic.Int64 // total requests across all batches
	solveLatency       *histogram
	batchLatency       *histogram
	batchSize          *histogram
}

func newMetrics() *metrics {
	return &metrics{
		solveLatency: newHistogram(latencyBounds, 1e9),
		batchLatency: newHistogram(latencyBounds, 1e9),
		batchSize:    newHistogram(batchSizeBounds, 1),
	}
}

func (m *metrics) observeSolve(d time.Duration) {
	m.solveLatency.observe(d.Seconds(), d.Nanoseconds())
}

func (m *metrics) observeBatch(d time.Duration, size int) {
	m.batchLatency.observe(d.Seconds(), d.Nanoseconds())
	m.batchSize.observe(float64(size), int64(size))
	m.batchInstances.Add(int64(size))
}

// writeTo renders every counter in the Prometheus text format — plain
// counters and gauges, no client library dependency.
func (m *metrics) writeTo(w io.Writer) {
	fmt.Fprintf(w, "# HELP busyd_requests_total Requests received per endpoint.\n")
	fmt.Fprintf(w, "# TYPE busyd_requests_total counter\n")
	fmt.Fprintf(w, "busyd_requests_total{endpoint=\"solve\"} %d\n", m.requestsSolve.Load())
	fmt.Fprintf(w, "busyd_requests_total{endpoint=\"batch\"} %d\n", m.requestsBatch.Load())
	fmt.Fprintf(w, "busyd_requests_total{endpoint=\"algorithms\"} %d\n", m.requestsAlgorithms.Load())
	fmt.Fprintf(w, "busyd_requests_total{endpoint=\"healthz\"} %d\n", m.requestsHealth.Load())
	fmt.Fprintf(w, "# HELP busyd_rejected_total Requests refused by admission control.\n")
	fmt.Fprintf(w, "# TYPE busyd_rejected_total counter\n")
	fmt.Fprintf(w, "busyd_rejected_total{reason=\"overload\"} %d\n", m.rejectedOverload.Load())
	fmt.Fprintf(w, "busyd_rejected_total{reason=\"too_large\"} %d\n", m.rejectedTooLarge.Load())
	fmt.Fprintf(w, "busyd_rejected_total{reason=\"bad_request\"} %d\n", m.badRequests.Load())
	fmt.Fprintf(w, "# HELP busyd_solve_errors_total Per-request solve failures.\n")
	fmt.Fprintf(w, "# TYPE busyd_solve_errors_total counter\n")
	fmt.Fprintf(w, "busyd_solve_errors_total %d\n", m.solveErrors.Load())
	fmt.Fprintf(w, "# HELP busyd_in_flight Solve and batch requests currently admitted.\n")
	fmt.Fprintf(w, "# TYPE busyd_in_flight gauge\n")
	fmt.Fprintf(w, "busyd_in_flight %d\n", m.inFlight.Load())
	fmt.Fprintf(w, "# HELP busyd_batch_instances_total Requests received inside batches.\n")
	fmt.Fprintf(w, "# TYPE busyd_batch_instances_total counter\n")
	fmt.Fprintf(w, "busyd_batch_instances_total %d\n", m.batchInstances.Load())
	fmt.Fprintf(w, "# HELP busyd_solve_latency_seconds Single-solve wall clock.\n")
	fmt.Fprintf(w, "# TYPE busyd_solve_latency_seconds histogram\n")
	m.solveLatency.writeTo(w, "busyd_solve_latency_seconds")
	fmt.Fprintf(w, "# HELP busyd_batch_latency_seconds Whole-batch wall clock.\n")
	fmt.Fprintf(w, "# TYPE busyd_batch_latency_seconds histogram\n")
	m.batchLatency.writeTo(w, "busyd_batch_latency_seconds")
	fmt.Fprintf(w, "# HELP busyd_batch_size Requests per batch.\n")
	fmt.Fprintf(w, "# TYPE busyd_batch_size histogram\n")
	m.batchSize.writeTo(w, "busyd_batch_size")
}
